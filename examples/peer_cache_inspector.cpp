// Peer cache inspector: a microscope on one verification.
//
// Sets up a query host surrounded by peers with cached results, runs the
// single- and multi-peer verification stages separately, and prints exactly
// which candidate POIs were certified by which mechanism, the terminal heap
// state, and the bounds that would be shipped to the server — the full
// anatomy of Algorithm 1 on one query.
#include <algorithm>
#include <cstdio>
#include <string>

#include "src/common/rng.h"
#include "src/core/multi_peer.h"
#include "src/core/senn.h"

namespace {

using namespace senn;

void PrintHeap(const core::CandidateHeap& heap) {
  std::printf("    heap: state = %s, %zu certain / %zu uncertain\n",
              core::HeapStateName(heap.state()), heap.certain().size(),
              heap.uncertain().size());
  for (const core::RankedPoi& n : heap.certain()) {
    std::printf("      certain   poi %-3lld dist %7.1f m  (exact rank)\n",
                static_cast<long long>(n.id), n.distance);
  }
  for (const core::RankedPoi& n : heap.uncertain()) {
    std::printf("      uncertain poi %-3lld dist %7.1f m\n",
                static_cast<long long>(n.id), n.distance);
  }
}

}  // namespace

int main() {
  Rng rng(20060403);

  // 30 POIs in a 1 km square.
  std::vector<core::Poi> pois;
  for (int i = 0; i < 30; ++i) {
    pois.push_back({i, {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}});
  }
  core::SpatialServer server(pois);

  // Query host at the center; four peers with caches from nearby locations.
  geom::Vec2 q{500, 500};
  std::vector<core::CachedResult> caches;
  for (int p = 0; p < 4; ++p) {
    core::CachedResult c;
    c.query_location = {q.x + rng.Uniform(-140, 140), q.y + rng.Uniform(-140, 140)};
    c.neighbors = server.QueryKnn(c.query_location, 5).neighbors;
    caches.push_back(std::move(c));
  }

  const int k = 5;
  std::printf("query host Q at (%.0f, %.0f), k = %d, %zu peers in range\n\n", q.x, q.y, k,
              caches.size());
  for (size_t p = 0; p < caches.size(); ++p) {
    std::printf("peer %zu: cached query at (%.0f, %.0f), delta = %.1f m, "
                "certain radius = %.1f m, %zu POIs\n",
                p, caches[p].query_location.x, caches[p].query_location.y,
                geom::Dist(q, caches[p].query_location), caches[p].Radius(),
                caches[p].neighbors.size());
  }

  // Stage 1: kNN_single, peer by peer (Heuristic 3.3 order).
  std::printf("\n== stage 1: kNN_single (Lemmas 3.1/3.2) ==\n");
  core::CandidateHeap heap(k);
  std::vector<const core::CachedResult*> peers;
  for (const core::CachedResult& c : caches) peers.push_back(&c);
  std::sort(peers.begin(), peers.end(),
            [&](const core::CachedResult* a, const core::CachedResult* b) {
              return geom::Dist2(q, a->query_location) < geom::Dist2(q, b->query_location);
            });
  for (size_t p = 0; p < peers.size(); ++p) {
    core::VerifyStats s = VerifySinglePeer(q, *peers[p], &heap);
    std::printf("  peer %zu: %d candidates -> %d certified, %d uncertain\n", p,
                s.candidates, s.certified, s.uncertain);
  }
  PrintHeap(heap);

  // Stage 2: kNN_multiple over the merged certain region R_c (Lemma 3.8).
  std::printf("\n== stage 2: kNN_multiple (union of %zu peer disks) ==\n", peers.size());
  core::VerifyStats ms = VerifyMultiPeer(q, peers, &heap);
  std::printf("  %d deduplicated candidates -> %d certified by the merged region\n",
              ms.candidates, ms.certified);
  PrintHeap(heap);

  // Bounds that would accompany a server query.
  rtree::PruneBounds bounds = heap.ComputeBounds();
  std::printf("\n== bounds for the server (Section 3.3) ==\n");
  std::printf("  lower (branch-expanding): %s\n",
              bounds.lower ? std::to_string(*bounds.lower).c_str() : "none");
  std::printf("  upper (branch-expanding): %s\n",
              bounds.upper ? std::to_string(*bounds.upper).c_str() : "none");

  // Ground truth.
  std::printf("\n== ground truth (direct server query) ==\n");
  for (const core::RankedPoi& n : server.QueryKnn(q, k).neighbors) {
    std::printf("  poi %-3lld dist %7.1f m\n", static_cast<long long>(n.id), n.distance);
  }
  std::printf("\nEvery certified entry above must appear at the same rank here.\n");
  return 0;
}
