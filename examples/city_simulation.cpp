// City simulation: runs the paper's Los Angeles County parameter set
// (Table 3, 2x2 miles, road network mode) and prints where queries were
// answered — the experiment behind Figure 9's headline: in a dense area,
// 70-80% of location queries never reach the database server.
//
// Usage: city_simulation [minutes]   (default 30 simulated minutes)
#include <cstdio>
#include <cstdlib>

#include "src/sim/report.h"
#include "src/sim/simulator.h"

int main(int argc, char** argv) {
  using namespace senn;
  double minutes = argc > 1 ? std::strtod(argv[1], nullptr) : 30.0;

  sim::SimulationConfig cfg;
  cfg.params = sim::Table3(sim::Region::kLosAngeles);
  cfg.mode = sim::MovementMode::kRoadNetwork;
  cfg.seed = 2006;
  cfg.duration_s = minutes * 60.0;

  std::printf("Simulating %s, %s mode, %.0f minutes...\n", cfg.params.name.c_str(),
              sim::MovementModeName(cfg.mode), minutes);
  sim::PrintParameterSet(cfg.params);

  sim::Simulator simulator(cfg);
  std::printf("world: %zu POIs, %zu mobile hosts, road graph with %zu nodes / %zu edges\n",
              simulator.pois().size(), simulator.hosts().size(),
              simulator.graph()->node_count(), simulator.graph()->edge_count());

  sim::SimulationResult r = simulator.Run();
  std::printf("\n%llu queries measured after warm-up:\n",
              static_cast<unsigned long long>(r.measured_queries));
  std::printf("  answered by a single peer's cache : %6.1f %%\n", r.pct_single_peer);
  std::printf("  answered by merging peer regions  : %6.1f %%\n", r.pct_multi_peer);
  std::printf("  forwarded to the database server  : %6.1f %%  (the SQRR metric)\n",
              r.pct_server);
  std::printf("  peers reachable per query         : %6.1f (mean)\n",
              r.peers_in_range.mean());
  if (r.by_server > 0) {
    std::printf("  R*-tree pages per server query    : %6.2f with bounds (EINN), "
                "%.2f without (INN)\n",
                r.einn_pages.mean(), r.inn_pages.mean());
  }
  std::printf("\nserver-load reduction vs. always-ask-the-server: %.1f %%\n",
              100.0 - r.pct_server);
  return 0;
}
