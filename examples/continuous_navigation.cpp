// Continuous navigation: the extension APIs in one scenario.
//
// A car drives across town while its navigation screen continuously shows
// (a) the 3 nearest charging stations (continuous kNN) and (b) every
// restaurant within 500 m (sharing-based range query). The example prints
// where each refresh was answered — own cache, peers, or the server — and
// the total communication the sharing machinery avoided.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/continuous.h"
#include "src/core/range.h"
#include "src/mobility/waypoint.h"

int main() {
  using namespace senn;
  Rng rng(1234);
  const double side = 5000.0;

  // Two POI layers on one server: chargers (ids 0..39) and restaurants
  // (ids 100..199) — separate servers per type, as a deployment would shard.
  std::vector<core::Poi> chargers, restaurants;
  for (int i = 0; i < 40; ++i) {
    chargers.push_back({i, {rng.Uniform(0, side), rng.Uniform(0, side)}});
  }
  for (int i = 0; i < 100; ++i) {
    restaurants.push_back({100 + i, {rng.Uniform(0, side), rng.Uniform(0, side)}});
  }
  core::SpatialServer charger_server(chargers);
  core::SpatialServer restaurant_server(restaurants);
  core::SennOptions options;
  options.server_request_k = 10;
  core::SennProcessor senn(&charger_server, options);
  core::ContinuousKnn nearest_chargers(&senn, 3);
  core::RangeProcessor nearby_restaurants(&restaurant_server);

  // Other cars parked around town share their cached restaurant results.
  std::vector<core::CachedResult> parked;
  for (int p = 0; p < 30; ++p) {
    core::CachedResult c;
    c.query_location = {rng.Uniform(0, side), rng.Uniform(0, side)};
    c.neighbors = restaurant_server.QueryKnn(c.query_location, 10).neighbors;
    parked.push_back(std::move(c));
  }
  charger_server.ResetStats();
  restaurant_server.ResetStats();

  mobility::WaypointConfig wcfg;
  wcfg.area_side_m = side;
  wcfg.speed_mps = MphToMps(30.0);
  wcfg.mean_pause_s = 8.0;
  mobility::WaypointMover car(wcfg, {500, 500}, &rng);

  int range_local = 0, range_total = 0;
  for (int tick = 0; tick < 120; ++tick) {
    car.Advance(5.0, &rng);
    geom::Vec2 pos = car.position();

    core::StepResult chargers_now = nearest_chargers.Step(pos);
    std::vector<const core::CachedResult*> peers;
    for (const core::CachedResult& c : parked) {
      if (geom::Dist(c.query_location, pos) <= 400.0) peers.push_back(&c);
    }
    core::RangeOutcome eats = nearby_restaurants.Execute(pos, 500.0, peers);
    ++range_total;
    range_local += eats.resolution != core::RangeResolution::kServer;

    if (tick % 20 == 0) {
      std::printf("t=%3ds at (%4.0f,%4.0f): nearest charger %lld (%.0f m, via %s); "
                  "%zu restaurants within 500 m (via %s)\n",
                  tick * 5, pos.x, pos.y,
                  static_cast<long long>(chargers_now.neighbors[0].id),
                  chargers_now.neighbors[0].distance,
                  core::StepSourceName(chargers_now.source), eats.pois.size(),
                  core::RangeResolutionName(eats.resolution));
    }
  }

  const core::ContinuousStats& cs = nearest_chargers.stats();
  std::printf("\ncontinuous 3-NN over %llu refreshes: %llu own-cache, %llu peers, "
              "%llu server (%.0f%% silent)\n",
              static_cast<unsigned long long>(cs.steps),
              static_cast<unsigned long long>(cs.own_cache_hits),
              static_cast<unsigned long long>(cs.peer_answers),
              static_cast<unsigned long long>(cs.server_answers),
              100.0 * static_cast<double>(cs.own_cache_hits) /
                  static_cast<double>(cs.steps));
  std::printf("range queries: %d of %d fully answered by parked peers (%.0f%%)\n",
              range_local, range_total, 100.0 * range_local / range_total);
  std::printf("charger server saw %llu queries for 120 refreshes; restaurant server "
              "%llu for %d range scans\n",
              static_cast<unsigned long long>(charger_server.stats().queries),
              static_cast<unsigned long long>(restaurant_server.stats().queries),
              range_total);
  return 0;
}
