// Quickstart: the smallest useful SENN program.
//
// Builds a POI database, gives one mobile host a cached kNN result, and
// shows a second host answering its own query from that cache — verified,
// not guessed — falling back to the server only when verification fails.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/senn.h"

int main() {
  using namespace senn;

  // A toy city: 40 gas stations in a 4 x 4 km area.
  Rng rng(42);
  std::vector<core::Poi> stations;
  for (int i = 0; i < 40; ++i) {
    stations.push_back({i, {rng.Uniform(0, 4000), rng.Uniform(0, 4000)}});
  }
  core::SpatialServer server(stations);

  // Host P queried the server a moment ago at (2000, 2000) and cached the
  // result: its query location plus its 10 nearest stations.
  core::CachedResult peer_cache;
  peer_cache.query_location = {2000, 2000};
  peer_cache.neighbors = server.QueryKnn(peer_cache.query_location, 10).neighbors;
  std::printf("peer cache: 10 stations around (2000, 2000), certain radius %.0f m\n",
              peer_cache.Radius());

  // Host Q, 150 m away, wants its 3 nearest stations. SENN harvests the
  // peer's cache and verifies which entries are provably Q's own kNN
  // (Lemma 3.2): a station n is certain iff
  //   dist(Q, n) + dist(Q, P's query location) <= P's certain radius.
  core::SennOptions options;
  options.server_request_k = 10;
  core::SennProcessor senn(&server, options);
  geom::Vec2 q{2150, 2000};
  core::SennOutcome outcome = senn.Execute(q, 3, {&peer_cache});

  std::printf("query at (2150, 2000), k = 3 -> resolved by: %s\n",
              core::ResolutionName(outcome.resolution));
  for (size_t i = 0; i < outcome.neighbors.size(); ++i) {
    const core::RankedPoi& n = outcome.neighbors[i];
    std::printf("  rank %zu: station %lld at (%.0f, %.0f), %.0f m away\n", i + 1,
                static_cast<long long>(n.id), n.position.x, n.position.y, n.distance);
  }

  // Cross-check against the server (the answer is exact, not approximate).
  std::vector<core::RankedPoi> truth = server.QueryKnn(q, 3).neighbors;
  bool match = truth.size() == outcome.neighbors.size();
  for (size_t i = 0; match && i < truth.size(); ++i) {
    match = truth[i].id == outcome.neighbors[i].id;
  }
  std::printf("matches a direct server query: %s\n", match ? "yes" : "NO (bug!)");

  // A host far outside the cached disk cannot verify anything and goes to
  // the server, shipping pruning bounds derived from its candidate heap.
  geom::Vec2 far{300, 3700};
  core::SennOutcome far_outcome = senn.Execute(far, 3, {&peer_cache});
  std::printf("query at (300, 3700)  -> resolved by: %s (heap state: %s)\n",
              core::ResolutionName(far_outcome.resolution),
              core::HeapStateName(far_outcome.heap_state));
  return 0;
}
