// Road trip: network-distance nearest neighbors (SNNN, Algorithm 2).
//
// A car drives across a synthetic street network and periodically asks for
// the k nearest gas stations *by driving distance*. The example shows how
// the Euclidean ranking (what SENN returns) differs from the network
// ranking (what the driver actually wants), and how the IER loop bridges
// the two using the Euclidean-lower-bound property.
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/snnn.h"
#include "src/mobility/road_mover.h"
#include "src/roadnet/generator.h"

int main() {
  using namespace senn;

  // A 3 x 3 km street grid with a diagonal highway.
  Rng rng(7);
  roadnet::RoadNetworkConfig road_cfg;
  road_cfg.area_side_m = 3000;
  road_cfg.block_spacing_m = 250;
  roadnet::Graph graph = roadnet::GenerateRoadNetwork(road_cfg, &rng);
  roadnet::EdgeLocator locator(&graph, 250.0);
  std::printf("road network: %zu nodes, %zu edges\n", graph.node_count(), graph.edge_count());

  // 25 gas stations snapped onto the network.
  std::vector<core::Poi> stations;
  for (int i = 0; i < 25; ++i) {
    geom::Vec2 raw{rng.Uniform(0, 3000), rng.Uniform(0, 3000)};
    stations.push_back({i, graph.PositionOf(locator.Nearest(raw))});
  }
  core::SpatialServer server(stations);

  // Drive a car along the network and query every ~90 seconds.
  roadnet::Router router(&graph);
  mobility::RoadMoverConfig car_cfg;
  car_cfg.nominal_speed_mps = MphToMps(35.0);
  car_cfg.mean_pause_s = 5.0;
  car_cfg.max_trip_m = 2500.0;
  mobility::RoadMover car(car_cfg, &graph, &router, 0, &rng);

  core::SnnnProcessor snnn(&graph, &locator);
  for (int stop = 0; stop < 5; ++stop) {
    for (int s = 0; s < 90; ++s) car.Advance(1.0, &rng);
    geom::Vec2 q = car.position();
    core::ServerNnSource source(&server, q);
    std::vector<core::NetworkRankedPoi> by_road = snnn.Execute(q, 3, &source);
    std::vector<core::RankedPoi> by_air = server.QueryKnn(q, 3).neighbors;

    std::printf("\nat (%.0f, %.0f) on a %s road:\n", q.x, q.y,
                roadnet::RoadClassName(car.current_road_class()));
    std::printf("  %-28s %-30s\n", "3 nearest by driving distance", "3 nearest by air");
    for (int i = 0; i < 3 && i < static_cast<int>(by_road.size()); ++i) {
      char road_buf[64], air_buf[64];
      std::snprintf(road_buf, sizeof(road_buf), "station %lld (%.0f m drive)",
                    static_cast<long long>(by_road[static_cast<size_t>(i)].id),
                    by_road[static_cast<size_t>(i)].network);
      std::snprintf(air_buf, sizeof(air_buf), "station %lld (%.0f m air)",
                    static_cast<long long>(by_air[static_cast<size_t>(i)].id),
                    by_air[static_cast<size_t>(i)].distance);
      std::printf("  %-28s %-30s\n", road_buf, air_buf);
    }
    if (!by_road.empty() && !by_air.empty() && by_road[0].id != by_air[0].id) {
      std::printf("  -> the closest station by air is NOT the closest by road here\n");
    }
  }
  return 0;
}
