// Figure 6 / Table 1: the worked kNN_single example. A query host Q with
// k = 4 consults its two closest peers; after verification the candidate
// heap H holds two certain POIs (at sqrt(2) and sqrt(3) from Q) and two
// uncertain ones (at sqrt(5) and sqrt(8)), reproducing Table 1 of the paper.
#include <cmath>
#include <cstdio>

#include "src/core/single_peer.h"

int main() {
  using namespace senn;
  using core::CachedResult;
  using core::RankedPoi;
  geom::Vec2 q{0, 0};

  // Peer P1 cached three POIs; its certain-area radius is the distance to
  // its farthest cached neighbor.
  CachedResult p1;
  p1.query_location = {0.2, 0};
  RankedPoi a{1, {1, 1}, geom::Dist(p1.query_location, {1, 1})};             // n1-P1
  RankedPoi b{2, {std::sqrt(3.0), 0}, geom::Dist(p1.query_location, {std::sqrt(3.0), 0})};
  RankedPoi c{3, {1, 2}, geom::Dist(p1.query_location, {1, 2})};             // n3-P1
  p1.neighbors = {a, b, c};

  // Peer P2 cached two POIs (sharing n1 with P1).
  CachedResult p2;
  p2.query_location = {0.5, 0.5};
  RankedPoi a2{1, {1, 1}, geom::Dist(p2.query_location, {1, 1})};
  RankedPoi d{4, {2, 2}, geom::Dist(p2.query_location, {2, 2})};  // n2-P2
  p2.neighbors = {a2, d};

  core::CandidateHeap heap(4);
  std::printf("=== Figure 6 / Table 1: kNN_single walkthrough (k = 4) ===\n");
  std::printf("Q = (0,0); peers sorted by cached query location distance (Heuristic 3.3)\n\n");
  core::VerifyStats s1 = VerifySinglePeer(q, p1, &heap);
  std::printf("after P1 (delta=%.3f, radius=%.3f): %d certified, %d uncertain\n",
              geom::Dist(q, p1.query_location), p1.Radius(), s1.certified, s1.uncertain);
  core::VerifyStats s2 = VerifySinglePeer(q, p2, &heap);
  std::printf("after P2 (delta=%.3f, radius=%.3f): %d certified, %d uncertain\n\n",
              geom::Dist(q, p2.query_location), p2.Radius(), s2.certified, s2.uncertain);

  std::printf("heap H (capacity 4), state: %s\n", core::HeapStateName(heap.state()));
  std::printf("%-10s %-6s %-12s %s\n", "class", "poi", "dist(Q,n)", "dist^2");
  for (const RankedPoi& n : heap.certain()) {
    std::printf("%-10s n%-5lld %-12.4f %.1f\n", "certain", static_cast<long long>(n.id),
                n.distance, n.distance * n.distance);
  }
  for (const RankedPoi& n : heap.uncertain()) {
    std::printf("%-10s n%-5lld %-12.4f %.1f\n", "uncertain", static_cast<long long>(n.id),
                n.distance, n.distance * n.distance);
  }
  rtree::PruneBounds bounds = heap.ComputeBounds();
  std::printf("\nbranch-expanding bounds shipped to the server (Section 3.3):\n");
  if (bounds.lower.has_value()) std::printf("  lower = %.4f (last certain entry)\n", *bounds.lower);
  if (bounds.upper.has_value()) std::printf("  upper = %.4f (last entry of H)\n", *bounds.upper);
  std::printf("\nexpected (paper Table 1): certain at sqrt2=1.414, sqrt3=1.732;"
              " uncertain at sqrt5=2.236, sqrt8=2.828\n");
  return 0;
}
