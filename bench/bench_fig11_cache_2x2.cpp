// Figure 11: queries resolved by one peer / multiple peers / the server as a
// function of the mobile host cache capacity (1..9), Table 3 parameter sets,
// 2x2-mile area, road network mode.
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Figure 11: cache capacity sweep, 2x2 mi", args);
  double duration = args.full ? 3600.0 : 1800.0;
  std::vector<double> capacities{1, 3, 5, 7, 9};

  std::vector<sim::FigureSeries> series;
  for (sim::Region region : {sim::Region::kLosAngeles, sim::Region::kSyntheticSuburbia,
                             sim::Region::kRiverside}) {
    series.push_back(bench::RunSweep(
        sim::RegionName(region), sim::Table3(region), sim::MovementMode::kRoadNetwork,
        args, duration, capacities, [](sim::SimulationConfig* cfg, double c) {
          cfg->params.cache_size = static_cast<int>(c);
          // k cannot exceed what a cache can certify; the paper keeps
          // lambda_kNN = 3, so clamp k for the 1-entry point.
          cfg->params.k_nn = std::min(cfg->params.k_nn, cfg->params.cache_size);
        }));
  }
  sim::PrintFigure("Figure 11: queries resolved vs. cache capacity (2x2 mi)",
                   "cache_items", series);
  return 0;
}
