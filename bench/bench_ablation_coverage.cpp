// Ablation: the two kNN_multiple coverage backends — the exact disk-union
// arc-coverage test versus the paper's polygonization + overlay approach at
// several polygon resolutions. Reports verification recall (certified
// candidates relative to the exact backend) and CPU time per verification.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/multi_peer.h"

namespace {

using namespace senn;
using core::CachedResult;
using core::Poi;
using core::RankedPoi;

std::vector<Poi> RandomPois(int n, Rng* rng, double extent) {
  std::vector<Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

CachedResult MakePeerCache(const std::vector<Poi>& pois, geom::Vec2 at, int cache_size) {
  CachedResult r;
  r.query_location = at;
  for (const Poi& p : pois) {
    r.neighbors.push_back({p.id, p.position, geom::Dist(at, p.position)});
  }
  std::sort(r.neighbors.begin(), r.neighbors.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return a.distance < b.distance; });
  if (static_cast<int>(r.neighbors.size()) > cache_size) {
    r.neighbors.resize(static_cast<size_t>(cache_size));
  }
  return r;
}

struct Scenario {
  std::vector<CachedResult> caches;
  geom::Vec2 q;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Ablation: kNN_multiple coverage backend", args);
  const int trials = args.full ? 5000 : 1000;

  Rng rng(args.seed);
  std::vector<Scenario> scenarios;
  for (int t = 0; t < trials; ++t) {
    std::vector<Poi> pois = RandomPois(30, &rng, 500);
    Scenario s;
    s.q = {rng.Uniform(150, 350), rng.Uniform(150, 350)};
    for (int peer = 0; peer < 5; ++peer) {
      s.caches.push_back(MakePeerCache(
          pois, {s.q.x + rng.Uniform(-80, 80), s.q.y + rng.Uniform(-80, 80)}, 6));
    }
    scenarios.push_back(std::move(s));
  }

  struct Backend {
    const char* name;
    core::MultiPeerOptions options;
  };
  std::vector<Backend> backends;
  backends.push_back({"exact disk union", {}});
  for (int sides : {8, 16, 32, 64, 128}) {
    core::MultiPeerOptions o;
    o.backend = core::CoverageBackend::kPolygonized;
    o.polygonize.sides = sides;
    static char names[5][32];
    static int idx = 0;
    std::snprintf(names[idx], sizeof(names[idx]), "polygonized %d-gon", sides);
    backends.push_back({names[idx], o});
    ++idx;
  }

  std::printf("%-22s %12s %12s %14s\n", "backend", "certified", "recall%", "us/verify");
  std::printf("csv,backend,certified,recall_pct,us_per_verify\n");
  long long exact_total = 0;
  for (const Backend& backend : backends) {
    long long certified = 0;
    auto start = std::chrono::steady_clock::now();
    for (const Scenario& s : scenarios) {
      std::vector<const CachedResult*> peers;
      for (const CachedResult& c : s.caches) peers.push_back(&c);
      core::CandidateHeap heap(6);
      core::VerifyStats stats = VerifyMultiPeer(s.q, peers, &heap, backend.options);
      certified += stats.certified;
    }
    auto stop = std::chrono::steady_clock::now();
    double us = std::chrono::duration<double, std::micro>(stop - start).count() /
                static_cast<double>(trials);
    if (exact_total == 0) exact_total = certified;  // first backend is exact
    double recall = exact_total > 0
                        ? 100.0 * static_cast<double>(certified) /
                              static_cast<double>(exact_total)
                        : 100.0;
    std::printf("%-22s %12lld %12.1f %14.2f\n", backend.name, certified, recall, us);
    std::printf("csv,%s,%lld,%.2f,%.3f\n", backend.name, certified, recall, us);
  }
  return 0;
}
