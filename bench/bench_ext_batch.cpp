// Extension bench: server-side batch answering (src/core/batch_server.h).
//
// The paper's heavy-traffic regime (Figs. 13-16) has many hosts querying
// the same hot areas at once, yet the baseline server pays a full R*-tree
// traversal per query. This bench measures what one shared EINN traversal
// per cluster of co-located queries saves, directly against the server (no
// simulator): a fixed POI world, a fixed query stream, and a sweep of the
// batch-size cap over two workloads —
//   * uniform:  query points uniform over the area (few co-located pairs;
//     batching finds little to share and must not cost anything);
//   * hotspot:  query points concentrated in a few tight disks (the
//     co-location regime batching exists for).
//
// Every sweep point answers the SAME queries (the batch path is bitwise
// answer-identical to sequential — tests/core/batch_diff_test.cpp — so only
// the accounting moves) on a freshly built server with a cold bounded pool,
// making logical and physical page counts directly comparable down the
// column. On the hotspot workload, pages/query must fall strictly as the
// cap grows. Emitted machine-readable as BENCH_batch.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/batch_server.h"
#include "src/core/server.h"
#include "src/storage/page.h"

namespace {

using namespace senn;

struct Workload {
  const char* name;
  bool hotspot;
};

struct PointResult {
  int max_group;
  uint64_t queries = 0;
  uint64_t shared_clusters = 0;
  double avg_cluster = 0.0;
  double logical_per_query = 0.0;
  double misses_per_query = 0.0;
  uint64_t shared_misses = 0;
  uint64_t private_misses = 0;
};

std::vector<core::Poi> BuildPois(uint64_t seed, int n, double side) {
  Rng rng = Rng(seed).Stream("bench-batch-pois");
  std::vector<core::Poi> pois;
  pois.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng.Uniform(0, side), rng.Uniform(0, side)}});
  }
  return pois;
}

std::vector<core::BatchQuery> BuildQueries(uint64_t seed, int n, double side,
                                           bool hotspot, int k) {
  Rng rng = Rng(seed).Stream(hotspot ? "bench-batch-hot" : "bench-batch-uni");
  std::vector<geom::Vec2> centers;
  for (int c = 0; c < 8; ++c) {
    centers.push_back({rng.Uniform(0, side), rng.Uniform(0, side)});
  }
  std::vector<core::BatchQuery> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::BatchQuery bq;
    if (hotspot && rng.Bernoulli(0.9)) {
      const geom::Vec2& c = centers[rng.NextIndex(centers.size())];
      bq.q = {c.x + rng.Uniform(-25.0, 25.0), c.y + rng.Uniform(-25.0, 25.0)};
    } else {
      bq.q = {rng.Uniform(0, side), rng.Uniform(0, side)};
    }
    bq.k = k;
    queries.push_back(bq);
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: server-side batch answering", args);

  const double side = 30000.0;  // meters
  const int poi_count = args.full ? 100000 : 20000;
  const int query_count = args.full ? 20000 : 2000;
  const int k = 10;
  const std::vector<int> batch_sizes{1, 2, 4, 8, 16, 32};
  const Workload workloads[] = {{"uniform", false}, {"hotspot", true}};

  std::vector<core::Poi> pois = BuildPois(args.seed, poi_count, side);

  std::printf("%d POIs, %d queries, k=%d, 64-frame LRU pool, cold per point\n\n",
              poi_count, query_count, k);
  std::printf("%8s %6s %9s %9s %12s %12s %12s %12s\n", "workload", "cap",
              "clusters", "avg size", "pages/q", "misses/q", "shared", "private");
  std::printf("csv,workload,max_group,shared_clusters,avg_cluster_size,"
              "logical_pages_per_query,misses_per_query,shared_misses,private_misses\n");

  std::vector<std::vector<PointResult>> all;
  for (const Workload& wl : workloads) {
    std::vector<core::BatchQuery> queries =
        BuildQueries(args.seed, query_count, side, wl.hotspot, k);
    std::vector<PointResult> column;
    for (int max_group : batch_sizes) {
      // Fresh server per point: same tree (same build), cold pool, so the
      // physical miss column is comparable across caps.
      storage::BufferPoolOptions pool;
      pool.capacity_pages = 64;
      core::SpatialServer server(pois, core::SpatialServer::DefaultTreeOptions(),
                                 rtree::AccessCountMode::kOnExpand, pool);
      core::BatchOptions options;
      options.cluster_cell_m = 200.0;
      options.max_group = max_group;
      core::BatchServer batch(&server, options);
      std::vector<size_t> cluster_sizes;
      std::vector<core::ServerReply> replies =
          batch.AnswerBatch(queries, nullptr, nullptr, &cluster_sizes);

      PointResult p;
      p.max_group = max_group;
      p.queries = batch.stats().queries;
      p.shared_clusters = batch.stats().clusters;
      p.avg_cluster =
          cluster_sizes.empty()
              ? 0.0
              : static_cast<double>(p.queries) / static_cast<double>(cluster_sizes.size());
      uint64_t logical = 0;
      uint64_t misses = 0;
      for (const core::ServerReply& r : replies) {
        logical += r.einn_accesses.total();
        misses += r.einn_accesses.misses();
      }
      p.logical_per_query = static_cast<double>(logical) / static_cast<double>(p.queries);
      p.misses_per_query = static_cast<double>(misses) / static_cast<double>(p.queries);
      p.shared_misses = batch.stats().shared_traversal.shared_misses;
      p.private_misses = batch.stats().shared_traversal.private_misses;
      column.push_back(p);

      std::printf("%8s %6d %9llu %9.2f %12.3f %12.3f %12llu %12llu\n", wl.name,
                  max_group, static_cast<unsigned long long>(p.shared_clusters),
                  p.avg_cluster, p.logical_per_query, p.misses_per_query,
                  static_cast<unsigned long long>(p.shared_misses),
                  static_cast<unsigned long long>(p.private_misses));
      std::printf("csv,%s,%d,%llu,%.4f,%.4f,%.4f,%llu,%llu\n", wl.name, max_group,
                  static_cast<unsigned long long>(p.shared_clusters), p.avg_cluster,
                  p.logical_per_query, p.misses_per_query,
                  static_cast<unsigned long long>(p.shared_misses),
                  static_cast<unsigned long long>(p.private_misses));
    }
    all.push_back(std::move(column));
  }

  // The claim the sweep exists to demonstrate: on the hotspot workload the
  // per-query page cost falls STRICTLY with the batch-size cap.
  bool strict = true;
  const std::vector<PointResult>& hot = all[1];
  for (size_t i = 1; i < hot.size(); ++i) {
    if (!(hot[i].logical_per_query < hot[i - 1].logical_per_query)) strict = false;
  }
  std::printf("\nhotspot pages/query strictly decreasing with the cap: %s\n",
              strict ? "yes" : "NO — sharing regressed");

  const char* json_path = "BENCH_batch.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\"seed\":%llu,\"mode\":\"%s\",\"pois\":%d,\"queries\":%d,\"k\":%d,"
               "\"hotspot_strictly_decreasing\":%s,\"workloads\":[",
               static_cast<unsigned long long>(args.seed), args.full ? "full" : "quick",
               poi_count, query_count, k, strict ? "true" : "false");
  for (size_t w = 0; w < 2; ++w) {
    std::fprintf(f, "%s{\"workload\":\"%s\",\"sweep\":[", w > 0 ? "," : "",
                 workloads[w].name);
    for (size_t i = 0; i < all[w].size(); ++i) {
      const PointResult& p = all[w][i];
      std::fprintf(f,
                   "%s{\"max_group\":%d,\"shared_clusters\":%llu,"
                   "\"avg_cluster_size\":%.4f,\"logical_pages_per_query\":%.4f,"
                   "\"misses_per_query\":%.4f,\"shared_misses\":%llu,"
                   "\"private_misses\":%llu}",
                   i > 0 ? "," : "", p.max_group,
                   static_cast<unsigned long long>(p.shared_clusters), p.avg_cluster,
                   p.logical_per_query, p.misses_per_query,
                   static_cast<unsigned long long>(p.shared_misses),
                   static_cast<unsigned long long>(p.private_misses));
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("json: %s\n", json_path);
  return strict ? 0 : 1;
}
