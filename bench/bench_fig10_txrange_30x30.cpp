// Figure 10: queries resolved by one peer / multiple peers / the server as a
// function of the transmission range, for the Table 4 parameter sets in the
// 30x30-mile area, road network mode.
//
// Quick mode shrinks the area linearly by 5x (6x6 miles) with all densities
// preserved (see bench_util.h); --full runs the unscaled 121,500-host world.
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Figure 10: Tx range sweep, 30x30 mi, road network mode", args);
  double scale = args.full ? 1.0 : 5.0;
  double duration = args.full ? 18000.0 : 2400.0;
  std::vector<double> ranges;
  for (double tx = 20.0; tx <= 200.0; tx += 20.0) ranges.push_back(tx);

  std::vector<sim::FigureSeries> series;
  for (sim::Region region : {sim::Region::kLosAngeles, sim::Region::kSyntheticSuburbia,
                             sim::Region::kRiverside}) {
    series.push_back(bench::RunSweep(
        sim::RegionName(region), bench::ScaleDown(sim::Table4(region), scale),
        sim::MovementMode::kRoadNetwork, args, duration, ranges,
        [](sim::SimulationConfig* cfg, double tx) {
          cfg->time_step_s = 2.0;
          cfg->params.tx_range_m = tx;
        }));
  }
  sim::PrintFigure("Figure 10: queries resolved vs. transmission range (30x30 mi)",
                   "tx_range_m", series);
  return 0;
}
