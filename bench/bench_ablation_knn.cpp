// Ablation: the server-side base kNN algorithm — depth-first branch-and-
// bound (Roussopoulos et al.) versus the best-first incremental algorithm
// (Hjaltason & Samet) the paper builds EINN on. Node accesses per query over
// data sets of increasing size motivate the paper's choice.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/rtree/knn.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Ablation: depth-first vs best-first kNN", args);
  const int queries = args.full ? 2000 : 400;
  const int k = 10;

  std::printf("%-10s %16s %16s %10s\n", "POIs", "DF pages/query", "BF pages/query",
              "saving%");
  std::printf("csv,pois,df_pages,bf_pages\n");
  for (int n : {500, 2000, 8000, 32000}) {
    Rng rng(args.seed + static_cast<uint64_t>(n));
    rtree::RStarTree tree;
    for (int i = 0; i < n; ++i) {
      tree.Insert({rng.Uniform(0, 10000), rng.Uniform(0, 10000)}, i);
    }
    rtree::AccessCounter df, bf;
    for (int qi = 0; qi < queries; ++qi) {
      geom::Vec2 q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
      DepthFirstKnn(tree, q, k, &df);
      BestFirstKnn(tree, q, k, {}, &bf);
    }
    double dfq = static_cast<double>(df.total()) / queries;
    double bfq = static_cast<double>(bf.total()) / queries;
    std::printf("%-10d %16.2f %16.2f %10.1f\n", n, dfq, bfq, 100.0 * (1.0 - bfq / dfq));
    std::printf("csv,%d,%.3f,%.3f\n", n, dfq, bfq);
  }
  return 0;
}
