// Figure 17: R*-tree pages accessed per server-bound kNN query for the
// extended algorithm with pruning bounds (EINN) versus the original
// incremental NN algorithm (INN), as a function of k, for all three Table 4
// parameter sets. The server runs both algorithms for every forwarded query
// (exactly as in Section 4.4); we report the mean page counts.
//
// The paper does not pin down when a node access is charged, so the bench
// reports both accountings (see rtree/knn.h):
//   * on-expand  — truthful I/O (only nodes actually read); page counts are
//     small, grow with k, and EINN <= INN with a small margin;
//   * on-enqueue — nodes fetched into the priority queue count; magnitudes
//     match the paper's 5-30 page range and the EINN savings are larger.
// Under BOTH accountings the paper's qualitative claim holds: the pruning
// bounds never increase and consistently decrease the page accesses.
//
// The cache capacity (= server request size, policy 2) is coupled to k so
// the request grows along the x axis, as in the paper's growing curves.
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Figure 17: EINN vs INN page accesses by k", args);
  // Figure 17's phenomenon needs a deep R*-tree, i.e. the (near-)full POI
  // count; quick mode therefore scales only 2x linearly (15x15 mi, ~1000
  // POIs) and uses a shorter run.
  double scale = args.full ? 1.0 : 2.0;
  double duration = args.full ? 18000.0 : 900.0;
  std::vector<int> ks{4, 6, 8, 10, 12, 14};

  // Every (accounting, region, k) cell is one isolated run; build the whole
  // grid first and let the sweep engine spread it over --threads workers.
  const std::vector<rtree::AccessCountMode> modes{rtree::AccessCountMode::kOnEnqueue,
                                                  rtree::AccessCountMode::kOnExpand};
  const std::vector<sim::Region> regions{sim::Region::kLosAngeles,
                                         sim::Region::kSyntheticSuburbia,
                                         sim::Region::kRiverside};
  std::vector<sim::SimulationConfig> configs;
  for (rtree::AccessCountMode mode : modes) {
    for (sim::Region region : regions) {
      for (int k : ks) {
        sim::SimulationConfig cfg;
        cfg.params = bench::ScaleDown(sim::Table4(region), scale);
        cfg.params.k_nn = k;
        cfg.params.cache_size = k;
        cfg.mode = sim::MovementMode::kRoadNetwork;
        cfg.time_step_s = 2.0;
        cfg.page_count_mode = mode;
        cfg.seed = args.seed + static_cast<uint64_t>(k);
        cfg.duration_s = args.duration_s > 0 ? args.duration_s : duration;
        configs.push_back(std::move(cfg));
      }
    }
  }
  std::vector<sim::SimulationResult> results = sim::RunConfigs(configs, args.Sweep());

  size_t cell = 0;
  for (rtree::AccessCountMode mode : modes) {
    std::vector<sim::PageAccessSeries> series;
    for (sim::Region region : regions) {
      sim::PageAccessSeries s;
      s.label = sim::RegionName(region);
      for (int k : ks) {
        const sim::SimulationResult& r = results[cell++];
        s.rows.push_back({k, r.einn_pages.mean(), r.inn_pages.mean()});
      }
      series.push_back(std::move(s));
    }
    sim::PrintPageAccessFigure(
        mode == rtree::AccessCountMode::kOnEnqueue
            ? "Figure 17 (enqueue accounting): R*-tree pages, EINN vs INN"
            : "Figure 17 (expand accounting): R*-tree pages, EINN vs INN",
        series);
  }
  return 0;
}
