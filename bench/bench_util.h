// Shared plumbing for the figure benches: command-line parsing and the
// density-preserving scale-down used to keep default runs laptop-fast.
//
// Every bench accepts:
//   --full        paper-scale run (full area, host count, longer duration)
//   --seed N      master seed (default 20060403; printed with the output)
//   --duration S  simulated seconds per sweep point (overrides defaults)
//   --threads N   worker threads for the sweep engine (default 1; 0 = all
//                 cores). Results are bit-identical for every N: each sweep
//                 point is an isolated run whose randomness is a pure
//                 function of its config (see sim/sweep.h).
//
// Scale-down: the 30x30-mile experiments sweep over 121,500 hosts for five
// simulated hours. Quick mode shrinks the *area* by a linear factor s and
// the host/POI counts and query rate by s^2, preserving every density the
// results depend on (hosts per square mile, POIs per square mile, queries
// per minute per host). Transmission range, velocity, cache size and k are
// untouched. EXPERIMENTS.md records the factors used per experiment.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/report.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep.h"

namespace senn::bench {

struct BenchArgs {
  bool full = false;
  uint64_t seed = 20060403;  // ICDE 2006 :-)
  double duration_s = -1.0;  // <= 0: bench-specific default
  int threads = 1;           // sweep-engine workers; 0 = hardware concurrency

  sim::SweepOptions Sweep() const { return sim::SweepOptions{threads}; }
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      args.duration_s = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      args.threads = static_cast<int>(std::strtol(argv[i] + 10, nullptr, 10));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--full] [--seed N] [--duration S] [--threads N]\n", argv[0]);
      std::exit(0);
    }
  }
  return args;
}

/// Shrinks a parameter set by a linear factor (>= 1), preserving densities.
inline sim::ParameterSet ScaleDown(sim::ParameterSet p, double linear_factor) {
  if (linear_factor <= 1.0) return p;
  double area_factor = linear_factor * linear_factor;
  p.area_side_miles /= linear_factor;
  p.poi_number = std::max(1, static_cast<int>(p.poi_number / area_factor + 0.5));
  p.mh_number = std::max(1, static_cast<int>(p.mh_number / area_factor + 0.5));
  p.queries_per_minute /= area_factor;
  p.name += " (scaled 1/" + std::to_string(static_cast<int>(linear_factor)) + " linear)";
  return p;
}

/// Builds the config of one sweep point (see RunSweep).
inline sim::SimulationConfig SweepPointConfig(
    const sim::ParameterSet& params, sim::MovementMode mode, const BenchArgs& args,
    double duration_s, double x,
    const std::function<void(sim::SimulationConfig*, double)>& tweak) {
  sim::SimulationConfig cfg;
  cfg.params = params;
  cfg.mode = mode;
  cfg.seed = args.seed + static_cast<uint64_t>(x * 1000.0);
  cfg.duration_s = args.duration_s > 0 ? args.duration_s : duration_s;
  tweak(&cfg, x);
  return cfg;
}

/// Runs one series of a Figures 9-16 style sweep: for each x the tweak
/// callback edits the run configuration, then a full simulation runs. The
/// points execute on the sweep engine's thread pool (args.threads workers);
/// the rows are identical for every thread count.
inline sim::FigureSeries RunSweep(
    const std::string& label, const sim::ParameterSet& params, sim::MovementMode mode,
    const BenchArgs& args, double duration_s, const std::vector<double>& xs,
    const std::function<void(sim::SimulationConfig*, double)>& tweak) {
  sim::FigureSeries series;
  series.label = label;
  std::vector<sim::SimulationConfig> configs;
  configs.reserve(xs.size());
  for (double x : xs) {
    configs.push_back(SweepPointConfig(params, mode, args, duration_s, x, tweak));
  }
  std::vector<sim::SimulationResult> results = sim::RunConfigs(configs, args.Sweep());
  for (size_t i = 0; i < xs.size(); ++i) series.rows.push_back({xs[i], results[i]});
  return series;
}

inline void PrintRunBanner(const char* bench, const BenchArgs& args) {
  std::printf("# %s  seed=%llu  mode=%s\n", bench,
              static_cast<unsigned long long>(args.seed), args.full ? "full" : "quick");
}

}  // namespace senn::bench
