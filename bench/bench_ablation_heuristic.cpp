// Ablation: Heuristic 3.3 (process peers in ascending order of cached query
// location distance). With early-exit verification, the sorted order should
// certify k objects after examining fewer candidates.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/senn.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Ablation: Heuristic 3.3 peer ordering", args);
  const int trials = args.full ? 4000 : 1000;

  Rng rng(args.seed);
  std::printf("%-22s %18s %14s\n", "ordering", "candidates/query", "peer-solved%");
  std::printf("csv,ordering,candidates_per_query,peer_solved_pct\n");
  for (bool sorted : {true, false}) {
    Rng trial_rng(args.seed);  // identical worlds for both orderings
    long long candidates = 0;
    long long solved = 0;
    for (int t = 0; t < trials; ++t) {
      std::vector<core::Poi> pois;
      for (int i = 0; i < 30; ++i) {
        pois.push_back({i, {trial_rng.Uniform(0, 500), trial_rng.Uniform(0, 500)}});
      }
      core::SpatialServer server(pois);
      geom::Vec2 q{trial_rng.Uniform(150, 350), trial_rng.Uniform(150, 350)};
      std::vector<core::CachedResult> caches;
      for (int peer = 0; peer < 6; ++peer) {
        core::CachedResult c;
        c.query_location = {q.x + trial_rng.Uniform(-120, 120),
                            q.y + trial_rng.Uniform(-120, 120)};
        core::ServerReply reply = server.QueryKnn(c.query_location, 6);
        c.neighbors = reply.neighbors;
        caches.push_back(std::move(c));
      }
      std::vector<const core::CachedResult*> peers;
      for (const core::CachedResult& c : caches) peers.push_back(&c);
      core::SennOptions options;
      options.server_request_k = 6;
      options.sort_peers = sorted;
      options.early_exit = true;
      core::SennProcessor senn(&server, options);
      core::SennOutcome outcome = senn.Execute(q, 3, peers);
      candidates += outcome.single_peer_stats.candidates;
      solved += outcome.resolution != core::Resolution::kServer;
    }
    double per_query = static_cast<double>(candidates) / trials;
    double solved_pct = 100.0 * static_cast<double>(solved) / trials;
    std::printf("%-22s %18.2f %14.1f\n",
                sorted ? "Heuristic 3.3 (sorted)" : "arrival order", per_query, solved_pct);
    std::printf("csv,%s,%.3f,%.2f\n", sorted ? "sorted" : "unsorted", per_query, solved_pct);
  }
  return 0;
}
