// Figure 16: queries resolved by one peer / multiple peers / the server as a
// function of the number of requested nearest neighbors k (3..15), Table 4
// parameter sets, 30x30-mile area (scaled in quick mode), road network mode.
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Figure 16: k sweep, 30x30 mi", args);
  double scale = args.full ? 1.0 : 5.0;
  double duration = args.full ? 18000.0 : 2400.0;
  std::vector<double> ks{3, 6, 9, 12, 15};

  std::vector<sim::FigureSeries> series;
  for (sim::Region region : {sim::Region::kLosAngeles, sim::Region::kSyntheticSuburbia,
                             sim::Region::kRiverside}) {
    series.push_back(bench::RunSweep(
        sim::RegionName(region), bench::ScaleDown(sim::Table4(region), scale),
        sim::MovementMode::kRoadNetwork, args, duration, ks,
        [](sim::SimulationConfig* cfg, double k) {
          cfg->time_step_s = 2.0;
          cfg->params.k_nn = static_cast<int>(k);
          cfg->params.cache_size = std::max(cfg->params.cache_size, cfg->params.k_nn);
        }));
  }
  sim::PrintFigure("Figure 16: queries resolved vs. k (30x30 mi)", "k", series);
  return 0;
}
