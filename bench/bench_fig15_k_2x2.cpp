// Figure 15: queries resolved by one peer / multiple peers / the server as a
// function of the number of requested nearest neighbors k (1..9), Table 3
// parameter sets, 2x2-mile area, road network mode.
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Figure 15: k sweep, 2x2 mi", args);
  double duration = args.full ? 3600.0 : 1800.0;
  std::vector<double> ks{1, 3, 5, 7, 9};

  std::vector<sim::FigureSeries> series;
  for (sim::Region region : {sim::Region::kLosAngeles, sim::Region::kSyntheticSuburbia,
                             sim::Region::kRiverside}) {
    series.push_back(bench::RunSweep(
        sim::RegionName(region), sim::Table3(region), sim::MovementMode::kRoadNetwork,
        args, duration, ks, [](sim::SimulationConfig* cfg, double k) {
          cfg->params.k_nn = static_cast<int>(k);
          // Hosts cannot request more neighbors than their cache can hold.
          cfg->params.cache_size = std::max(cfg->params.cache_size, cfg->params.k_nn);
        }));
  }
  sim::PrintFigure("Figure 15: queries resolved vs. k (2x2 mi)", "k", series);
  return 0;
}
