// Figure 14: queries resolved by one peer / multiple peers / the server as a
// function of the mobile host movement velocity (10..50 mph), Table 4
// parameter sets, 30x30-mile area (scaled in quick mode), road network mode.
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Figure 14: velocity sweep, 30x30 mi", args);
  double scale = args.full ? 1.0 : 5.0;
  double duration = args.full ? 18000.0 : 2400.0;
  std::vector<double> speeds{10, 20, 30, 40, 50};

  std::vector<sim::FigureSeries> series;
  for (sim::Region region : {sim::Region::kLosAngeles, sim::Region::kSyntheticSuburbia,
                             sim::Region::kRiverside}) {
    series.push_back(bench::RunSweep(
        sim::RegionName(region), bench::ScaleDown(sim::Table4(region), scale),
        sim::MovementMode::kRoadNetwork, args, duration, speeds,
        [](sim::SimulationConfig* cfg, double mph) {
          cfg->time_step_s = 2.0;
          cfg->params.velocity_mph = mph;
        }));
  }
  sim::PrintFigure("Figure 14: queries resolved vs. movement velocity (30x30 mi)",
                   "speed_mph", series);
  return 0;
}
