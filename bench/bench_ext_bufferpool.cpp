// Extension bench: the paged storage engine (src/storage/) under the
// server's R*-tree. The paper equates node accesses with page accesses
// (branching factor 30 sized to a disk page); this bench puts a real buffer
// pool underneath and sweeps its capacity to separate the LOGICAL access
// count (the paper's metric, pool-independent) from the PHYSICAL miss count
// that an actual server would pay.
//
// One sweep on the LA 30x30 set (road mode, density-preserving scale-down
// as in the Fig. 17 bench — the 2x2 set's 16 POIs fit in a single R*-tree
// node, which would leave nothing for a pool to do): pool sizes from 2
// frames to unbounded, crossed with both replacement policies (LRU and
// CLOCK). Every point runs the SAME seed, so the logical reference string
// is identical across the whole grid and the hit-rate column isolates the
// pool. LRU is a stack algorithm, so its hit rate is monotone
// non-decreasing in the pool size; CLOCK approximates it and may cross
// over.
//
// Emitted machine-readable as BENCH_bufferpool.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/storage/page.h"

namespace {

struct Point {
  size_t pages;  // 0 = unbounded
  senn::storage::ReplacementPolicy policy;
};

std::string PagesLabel(size_t pages) {
  return pages == 0 ? "unbounded" : std::to_string(pages);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: buffer-pool sweep under the server R*-tree", args);
  double duration = args.full ? 3600.0 : 600.0;
  double scale = args.full ? 2.0 : 3.0;

  const std::vector<size_t> pool_sizes{2, 4, 8, 16, 32, 64, 128, 0};
  const std::vector<storage::ReplacementPolicy> policies{
      storage::ReplacementPolicy::kLru, storage::ReplacementPolicy::kClock};

  std::vector<Point> points;
  std::vector<sim::SimulationConfig> configs;
  for (storage::ReplacementPolicy policy : policies) {
    for (size_t pages : pool_sizes) {
      sim::SimulationConfig cfg;
      cfg.params = bench::ScaleDown(sim::Table4(sim::Region::kLosAngeles), scale);
      cfg.params.k_nn = 10;
      cfg.params.cache_size = 10;
      cfg.mode = sim::MovementMode::kRoadNetwork;
      cfg.time_step_s = 2.0;
      // Same seed everywhere: identical world and workload, identical
      // logical reference string — the grid isolates the pool.
      cfg.seed = args.seed;
      cfg.duration_s = args.duration_s > 0 ? args.duration_s : duration;
      cfg.paged_storage = true;
      cfg.buffer.capacity_pages = pages;
      cfg.buffer.policy = policy;
      points.push_back({pages, policy});
      configs.push_back(std::move(cfg));
    }
  }
  std::vector<sim::SimulationResult> results = sim::RunConfigs(configs, args.Sweep());

  std::printf("%10s %8s %12s %12s %10s %16s %14s\n", "pool", "policy", "logical",
              "misses", "hit%", "einn pages/q", "miss pages/q");
  std::printf("csv,pool_pages,policy,logical,misses,hit_rate,einn_pages_mean,"
              "miss_pages_mean\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const sim::SimulationResult& r = results[i];
    std::printf("%10s %8s %12llu %12llu %10.2f %16.2f %14.2f\n",
                PagesLabel(points[i].pages).c_str(),
                storage::ReplacementPolicyName(points[i].policy),
                static_cast<unsigned long long>(r.buffer.total()),
                static_cast<unsigned long long>(r.buffer.misses()),
                100.0 * r.buffer.rate(), r.einn_pages.mean(), r.einn_miss_pages.mean());
    std::printf("csv,%s,%s,%llu,%llu,%.6f,%.3f,%.3f\n", PagesLabel(points[i].pages).c_str(),
                storage::ReplacementPolicyName(points[i].policy),
                static_cast<unsigned long long>(r.buffer.total()),
                static_cast<unsigned long long>(r.buffer.misses()),
                r.buffer.rate(), r.einn_pages.mean(), r.einn_miss_pages.mean());
  }
  std::printf("\nThe logical column is constant down each policy's rows — the paper's\n"
              "page-access metric does not see the pool. Only the physical misses\n"
              "move, and for LRU they shrink monotonically with capacity (stack\n"
              "algorithm / inclusion property).\n");

  const char* json_path = "BENCH_bufferpool.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\"seed\":%llu,\"mode\":\"%s\",\"sweep\":[",
               static_cast<unsigned long long>(args.seed), args.full ? "full" : "quick");
  for (size_t i = 0; i < points.size(); ++i) {
    const sim::SimulationResult& r = results[i];
    std::fprintf(f,
                 "%s{\"pool_pages\":%zu,\"policy\":\"%s\",\"logical\":%llu,"
                 "\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.6f,"
                 "\"einn_pages_mean\":%.4f,\"einn_miss_pages_mean\":%.4f}",
                 i > 0 ? "," : "", points[i].pages,
                 storage::ReplacementPolicyName(points[i].policy),
                 static_cast<unsigned long long>(r.buffer.total()),
                 static_cast<unsigned long long>(r.buffer.hits()),
                 static_cast<unsigned long long>(r.buffer.misses()), r.buffer.rate(),
                 r.einn_pages.mean(), r.einn_miss_pages.mean());
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("json: %s\n", json_path);
  return 0;
}
