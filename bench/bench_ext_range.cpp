// Extension bench (beyond the paper, per its future-work section):
// sharing-based RANGE queries. Measures the fraction of range queries fully
// answerable from peer caches and the server page savings from the certain-
// radius pruning, as a function of the query radius.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/range.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: sharing-based range queries", args);
  const int trials = args.full ? 3000 : 800;

  Rng rng(args.seed);
  // A denser POI layer than gas stations (think restaurants): 150 POIs in
  // a 2x2-mile area, peers with 10-entry caches — peer disks are then small
  // relative to the area and coverage is a real constraint.
  sim::ParameterSet params = sim::Table3(sim::Region::kLosAngeles);
  const double side = params.AreaSideMeters();
  const int poi_count = 400;
  std::vector<core::Poi> pois;
  for (int i = 0; i < poi_count; ++i) {
    pois.push_back({i, {rng.Uniform(0, side), rng.Uniform(0, side)}});
  }
  core::SpatialServer server(pois);
  core::RangeProcessor range(&server);

  std::printf("%12s %14s %12s %14s %14s\n", "radius_m", "local%", "server%",
              "pages pruned", "pages plain");
  std::printf("csv,radius_m,local_pct,server_pct,pruned_pages,plain_pages\n");
  for (double radius : {100.0, 200.0, 300.0, 450.0, 600.0, 800.0}) {
    int local = 0;
    RunningStats pruned_pages, plain_pages;
    Rng trial_rng(args.seed + static_cast<uint64_t>(radius));
    for (int t = 0; t < trials; ++t) {
      geom::Vec2 q{trial_rng.Uniform(0, side), trial_rng.Uniform(0, side)};
      // 2-5 peers with caches from locations near q (radio range ~200 m,
      // plus cache staleness scatter).
      std::vector<core::CachedResult> caches;
      int peer_count = static_cast<int>(trial_rng.UniformInt(2, 5));
      for (int p = 0; p < peer_count; ++p) {
        core::CachedResult c;
        c.query_location = {q.x + trial_rng.Uniform(-300, 300),
                            q.y + trial_rng.Uniform(-300, 300)};
        c.neighbors = server.QueryKnn(c.query_location, 25).neighbors;
        caches.push_back(std::move(c));
      }
      std::vector<const core::CachedResult*> peers;
      for (const core::CachedResult& c : caches) peers.push_back(&c);
      core::RangeOutcome out = range.Execute(q, radius, peers);
      if (out.resolution == core::RangeResolution::kServer) {
        pruned_pages.Add(static_cast<double>(out.pruned_accesses.total()));
        plain_pages.Add(static_cast<double>(out.plain_accesses.total()));
      } else {
        ++local;
      }
    }
    double local_pct = 100.0 * local / trials;
    std::printf("%12.0f %14.1f %12.1f %14.2f %14.2f\n", radius, local_pct,
                100.0 - local_pct, pruned_pages.mean(), plain_pages.mean());
    std::printf("csv,%.0f,%.2f,%.2f,%.3f,%.3f\n", radius, local_pct, 100.0 - local_pct,
                pruned_pages.mean(), plain_pages.mean());
  }
  return 0;
}
