// Ablation: scalar bounds (the paper's Section 3.3 protocol) vs. shipping
// the full certain region R_c to the server (our extension). Measures pages
// per server-bound query under truthful (expand) accounting, where the
// scalar protocol's savings vanish at the paper's densities — region
// pruning can skip whole subtrees the scalar lower bound cannot.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/senn.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Ablation: scalar bounds vs region protocol", args);
  const int trials = args.full ? 4000 : 1000;

  Rng rng(args.seed);
  // A dense POI world with a small fan-out so subtree coverage is possible.
  std::vector<core::Poi> pois;
  for (int i = 0; i < 4000; ++i) {
    pois.push_back({i, {rng.Uniform(0, 3000), rng.Uniform(0, 3000)}});
  }
  rtree::RStarTree::Options small_nodes;
  small_nodes.max_entries = 8;
  small_nodes.min_entries = 3;

  std::printf("%-24s %16s %18s %14s\n", "protocol", "pages/query", "server queries",
              "exactness");
  std::printf("csv,protocol,pages_per_query,server_queries\n");
  for (bool ship_region : {false, true}) {
    core::SpatialServer server(pois, small_nodes);
    core::SennOptions options;
    options.server_request_k = 12;
    options.ship_region = ship_region;
    core::SennProcessor senn(&server, options);
    Rng trial_rng(args.seed);
    uint64_t pages = 0, server_queries = 0;
    bool all_exact = true;
    for (int t = 0; t < trials; ++t) {
      geom::Vec2 q{trial_rng.Uniform(500, 2500), trial_rng.Uniform(500, 2500)};
      std::vector<core::CachedResult> caches;
      for (int p = 0; p < 4; ++p) {
        core::CachedResult c;
        c.query_location = {q.x + trial_rng.Uniform(-150, 150),
                            q.y + trial_rng.Uniform(-150, 150)};
        c.neighbors = server.QueryKnn(c.query_location, 12).neighbors;
        caches.push_back(std::move(c));
      }
      std::vector<const core::CachedResult*> peers;
      for (const core::CachedResult& c : caches) peers.push_back(&c);
      core::SennOutcome out = senn.Execute(q, 8, peers);
      if (out.resolution == core::Resolution::kServer) {
        ++server_queries;
        pages += out.einn_accesses.total();
      }
      // Spot-check exactness against a direct server query.
      if (t % 50 == 0) {
        std::vector<core::RankedPoi> truth = server.QueryKnn(q, 8).neighbors;
        for (size_t i = 0; i < truth.size() && i < out.neighbors.size(); ++i) {
          all_exact &= truth[i].id == out.neighbors[i].id;
        }
      }
    }
    double per_query = server_queries > 0
                           ? static_cast<double>(pages) / static_cast<double>(server_queries)
                           : 0.0;
    std::printf("%-24s %16.2f %18llu %14s\n",
                ship_region ? "region (R_c shipped)" : "scalar (paper)", per_query,
                static_cast<unsigned long long>(server_queries),
                all_exact ? "exact" : "MISMATCH");
    std::printf("csv,%s,%.3f,%llu\n", ship_region ? "region" : "scalar", per_query,
                static_cast<unsigned long long>(server_queries));
  }
  return 0;
}
