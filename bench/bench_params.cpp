// Tables 2, 3 and 4: the simulation parameter glossary and the two scales of
// region parameter sets, printed exactly as encoded in sim/params.
#include <cstdio>

#include "src/sim/report.h"

int main() {
  using namespace senn::sim;
  std::printf("=== Table 2: simulation parameters ===\n");
  std::printf("  %-14s %s\n", "POI Number", "number of points of interest in the system");
  std::printf("  %-14s %s\n", "MH Number", "number of mobile hosts in the simulation area");
  std::printf("  %-14s %s\n", "C_Size", "cache capacity of each mobile host");
  std::printf("  %-14s %s\n", "M_Percentage", "mobile host movement percentage");
  std::printf("  %-14s %s\n", "M_Velocity", "mobile host movement velocity (mph)");
  std::printf("  %-14s %s\n", "lambda_Query", "mean number of queries per minute");
  std::printf("  %-14s %s\n", "Tx_Range", "transmission range of queries (m)");
  std::printf("  %-14s %s\n", "lambda_kNN", "mean number of queried nearest neighbors");
  std::printf("  %-14s %s\n", "T_execution", "length of a simulation run");

  std::printf("\n=== Table 3: 2x2-mile parameter sets ===\n");
  for (Region r : {Region::kLosAngeles, Region::kRiverside, Region::kSyntheticSuburbia}) {
    PrintParameterSet(Table3(r));
  }
  std::printf("\n=== Table 4: 30x30-mile parameter sets ===\n");
  for (Region r : {Region::kLosAngeles, Region::kRiverside, Region::kSyntheticSuburbia}) {
    PrintParameterSet(Table4(r));
  }
  return 0;
}
