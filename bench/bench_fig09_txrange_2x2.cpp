// Figure 9: percentage of queries resolved by one peer, multiple peers, and
// the server as a function of the wireless transmission range (20..200 m),
// for the three Table 3 parameter sets in the 2x2-mile area, road network
// mode.
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Figure 9: Tx range sweep, 2x2 mi, road network mode", args);
  double duration = args.full ? 3600.0 : 1800.0;
  std::vector<double> ranges;
  for (double tx = 20.0; tx <= 200.0; tx += 20.0) ranges.push_back(tx);

  std::vector<sim::FigureSeries> series;
  for (sim::Region region : {sim::Region::kLosAngeles, sim::Region::kSyntheticSuburbia,
                             sim::Region::kRiverside}) {
    series.push_back(bench::RunSweep(
        sim::RegionName(region), sim::Table3(region), sim::MovementMode::kRoadNetwork,
        args, duration, ranges,
        [](sim::SimulationConfig* cfg, double tx) { cfg->params.tx_range_m = tx; }));
  }
  sim::PrintFigure("Figure 9: queries resolved vs. transmission range (2x2 mi)",
                   "tx_range_m", series);
  return 0;
}
