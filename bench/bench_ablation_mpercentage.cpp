// Ablation: the two readings of the paper's M_Percentage parameter. The
// duty-cycle reading (every host moves M% of the time) reproduces the
// paper's server-load levels; the population reading (a fixed 1-M% of hosts
// never move) leaves permanently-stationary cache providers and lowers the
// server load considerably. See the discussion in DESIGN.md.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Ablation: M_Percentage interpretation", args);
  double duration = args.full ? 3600.0 : 1800.0;

  const std::vector<sim::Region> regions{sim::Region::kLosAngeles,
                                         sim::Region::kSyntheticSuburbia,
                                         sim::Region::kRiverside};
  std::vector<sim::SimulationConfig> configs;
  for (sim::Region region : regions) {
    for (sim::MPercentageMode mode : {sim::MPercentageMode::kDutyCycle,
                                      sim::MPercentageMode::kStationaryFraction}) {
      sim::SimulationConfig cfg;
      cfg.params = sim::Table3(region);
      cfg.mode = sim::MovementMode::kRoadNetwork;
      cfg.m_percentage_mode = mode;
      cfg.seed = args.seed;
      cfg.duration_s = args.duration_s > 0 ? args.duration_s : duration;
      configs.push_back(std::move(cfg));
    }
  }
  std::vector<sim::SimulationResult> results = sim::RunConfigs(configs, args.Sweep());

  std::printf("%-24s %22s %24s\n", "parameter set", "duty-cycle server%",
              "stationary-frac server%");
  std::printf("csv,set,duty_cycle_server_pct,stationary_fraction_server_pct\n");
  for (size_t i = 0; i < regions.size(); ++i) {
    double duty = results[2 * i].pct_server;
    double stationary = results[2 * i + 1].pct_server;
    std::printf("%-24s %22.1f %24.1f\n", sim::RegionName(regions[i]), duty, stationary);
    std::printf("csv,%s,%.2f,%.2f\n", sim::RegionName(regions[i]), duty, stationary);
  }
  return 0;
}
