// Extension bench: SNNN (Algorithm 2), which the paper proposes but does
// not evaluate. Measures (a) how many extra Euclidean NNs the IER loop pulls
// before the Euclidean-lower-bound cutoff fires, and (b) how peer sharing
// changes the share of those pulls that reach the server, as a function of
// k, on a synthetic street network with on-network POIs.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/snnn.h"
#include "src/roadnet/generator.h"

namespace {

using namespace senn;

// Counts SENN resolutions across the IER loop of one SNNN query.
class CountingSource final : public core::EuclideanNnSource {
 public:
  CountingSource(const core::SennProcessor* senn, geom::Vec2 q,
                 std::vector<const core::CachedResult*> peers)
      : inner_(senn, q, std::move(peers)) {}
  std::vector<core::RankedPoi> TopK(int m) override {
    std::vector<core::RankedPoi> result = inner_.TopK(m);
    ++pulls_;
    server_pulls_ += inner_.last_resolution() == core::Resolution::kServer;
    return result;
  }
  int pulls() const { return pulls_; }
  int server_pulls() const { return server_pulls_; }

 private:
  core::SennNnSource inner_;
  int pulls_ = 0;
  int server_pulls_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: SNNN / IER behaviour", args);
  const int trials = args.full ? 600 : 150;

  Rng rng(args.seed);
  roadnet::RoadNetworkConfig road;
  road.area_side_m = 4000;
  road.block_spacing_m = 250;
  roadnet::Graph graph = roadnet::GenerateRoadNetwork(road, &rng);
  roadnet::EdgeLocator locator(&graph, 250.0);
  std::vector<core::Poi> pois;
  for (int i = 0; i < 80; ++i) {
    geom::Vec2 raw{rng.Uniform(0, 4000), rng.Uniform(0, 4000)};
    pois.push_back({i, graph.PositionOf(locator.Nearest(raw))});
  }
  core::SpatialServer server(pois);
  core::SennOptions options;
  options.server_request_k = 20;
  core::SennProcessor senn(&server, options);
  core::SnnnProcessor snnn(&graph, &locator);

  std::printf("%6s %16s %18s %20s\n", "k", "IER pulls/query", "ED!=ND rank-1 %",
              "server pulls (warm peer)");
  std::printf("csv,k,ier_pulls,rank1_differs_pct,server_pulls_warm\n");
  for (int k : {1, 2, 4, 8}) {
    double pulls = 0, server_pulls_warm = 0;
    int rank1_differs = 0;
    Rng trial_rng(args.seed + static_cast<uint64_t>(k));
    for (int t = 0; t < trials; ++t) {
      geom::Vec2 q{trial_rng.Uniform(400, 3600), trial_rng.Uniform(400, 3600)};
      // A warm colocated peer (e.g., the host's own recent cache).
      core::CachedResult peer;
      peer.query_location = {q.x + trial_rng.Uniform(-60, 60),
                             q.y + trial_rng.Uniform(-60, 60)};
      peer.neighbors = server.QueryKnn(peer.query_location, 20).neighbors;
      CountingSource source(&senn, q, {&peer});
      std::vector<core::NetworkRankedPoi> by_road = snnn.Execute(q, k, &source);
      pulls += source.pulls();
      server_pulls_warm += source.server_pulls();
      core::ServerReply by_air = server.QueryKnn(q, 1);
      if (!by_road.empty() && !by_air.neighbors.empty() &&
          by_road[0].id != by_air.neighbors[0].id) {
        ++rank1_differs;
      }
    }
    std::printf("%6d %16.2f %18.1f %20.2f\n", k, pulls / trials,
                100.0 * rank1_differs / trials, server_pulls_warm / trials);
    std::printf("csv,%d,%.3f,%.2f,%.3f\n", k, pulls / trials,
                100.0 * rank1_differs / trials, server_pulls_warm / trials);
  }
  return 0;
}
