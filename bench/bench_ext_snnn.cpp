// Extension bench: SNNN (Algorithm 2) distance-oracle backends. The paper
// proposes network-NN queries but does not evaluate them; this bench sweeps
// graph size x oracle and answers two questions:
//   (a) end-to-end SNNN cost per query under the three backends — fresh
//       Dijkstra per query (the byte-exact default), the CH point oracle
//       (one bidirectional upward search per candidate) and the CH bucket
//       oracle (one cached upward sweep per query, tiny target sweeps);
//   (b) the per-candidate picture the IER loop actually pays for: a fresh
//       full Dijkstra per (source, target) pair versus one CH query.
// Every backend answers the identical query list and the bench hard-fails
// on any result divergence (ids or network distances), so the speedups it
// reports are speedups of *the same answers*. Exits nonzero if CH loses to
// per-candidate Dijkstra at the largest network. Emits BENCH_snnn.json.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/snnn.h"
#include "src/roadnet/ch.h"
#include "src/roadnet/generator.h"
#include "src/roadnet/shortest_path.h"

namespace {

using namespace senn;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

struct OracleRun {
  const char* label = "";
  double total_ms = 0.0;
  uint64_t settled = 0;
  std::vector<std::vector<core::NetworkRankedPoi>> results;
};

struct SizePoint {
  double side_m = 0.0;
  size_t nodes = 0;
  size_t edges = 0;
  double ch_build_ms = 0.0;
  uint64_t shortcuts = 0;
  OracleRun runs[3];
  double cand_dijkstra_ms = 0.0;  // per-candidate microbench totals
  double cand_ch_ms = 0.0;
  double cand_speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: SNNN distance oracles (dijkstra vs ch)", args);

  std::vector<double> sides = {2000, 4000, 8000};
  if (args.full) {
    sides.push_back(16000);
    sides.push_back(24000);  // ~26k nodes: where CH clears 10x per-candidate
  }
  const int queries = args.full ? 48 : 24;
  const int cand_pairs = args.full ? 400 : 200;
  const int poi_count = 40;  // sparse: IER pulls reach far on big networks
  const int k = 4;

  std::vector<SizePoint> points;
  bool identical = true;

  std::printf("%8s %7s %7s %10s %10s %12s %12s %12s %14s\n", "side_m", "nodes",
              "edges", "shortcuts", "build_ms", "dij_ms/q", "ch_ms/q",
              "bucket_ms/q", "cand_speedup");
  std::printf(
      "csv,side_m,nodes,edges,shortcuts,build_ms,dij_ms_per_q,ch_ms_per_q,"
      "bucket_ms_per_q,dij_settled,ch_settled,bucket_settled,cand_speedup\n");

  for (double side : sides) {
    SizePoint pt;
    pt.side_m = side;
    Rng rng(args.seed);
    roadnet::RoadNetworkConfig road;
    road.area_side_m = side;
    road.block_spacing_m = 150;
    roadnet::Graph graph = roadnet::GenerateRoadNetwork(road, &rng);
    pt.nodes = graph.node_count();
    pt.edges = graph.edge_count();
    roadnet::EdgeLocator locator(&graph, 150.0);

    std::vector<core::Poi> pois;
    Rng poi_rng(args.seed + 1);
    for (int i = 0; i < poi_count; ++i) {
      geom::Vec2 raw{poi_rng.Uniform(0, side), poi_rng.Uniform(0, side)};
      pois.push_back({i, graph.PositionOf(locator.Nearest(raw))});
    }
    core::SpatialServer server(pois);

    auto t0 = std::chrono::steady_clock::now();
    roadnet::ch::Hierarchy hier = roadnet::ch::Hierarchy::Build(graph);
    pt.ch_build_ms = MsSince(t0);
    pt.shortcuts = hier.stats().shortcuts;

    std::vector<geom::Vec2> query_points;
    Rng q_rng(args.seed + 2);
    for (int i = 0; i < queries; ++i) {
      query_points.push_back({q_rng.Uniform(0, side), q_rng.Uniform(0, side)});
    }

    // End-to-end SNNN under each backend, identical query list.
    roadnet::ch::Query ch_point(&hier);
    roadnet::ch::BucketOracle ch_bucket(&hier);
    roadnet::DistanceOracle* oracles[3] = {nullptr, &ch_point, &ch_bucket};
    const char* labels[3] = {"dijkstra", "ch", "ch_bucket"};
    for (int o = 0; o < 3; ++o) {
      pt.runs[o].label = labels[o];
      core::SnnnProcessor snnn(&graph, &locator, {}, oracles[o]);
      uint64_t settled_before =
          oracles[o] != nullptr ? oracles[o]->settled_nodes() : 0;
      t0 = std::chrono::steady_clock::now();
      for (geom::Vec2 q : query_points) {
        core::ServerNnSource source(&server, q);
        pt.runs[o].results.push_back(snnn.Execute(q, k, &source));
      }
      pt.runs[o].total_ms = MsSince(t0);
      pt.runs[o].settled =
          oracles[o] != nullptr ? oracles[o]->settled_nodes() - settled_before : 0;
    }
    for (int o = 1; o < 3; ++o) {
      for (int qi = 0; qi < queries; ++qi) {
        const auto& base = pt.runs[0].results[static_cast<size_t>(qi)];
        const auto& got = pt.runs[o].results[static_cast<size_t>(qi)];
        if (base.size() != got.size()) identical = false;
        for (size_t r = 0; identical && r < base.size(); ++r) {
          if (base[r].id != got[r].id || base[r].network != got[r].network) {
            identical = false;
          }
        }
        if (!identical) {
          std::fprintf(stderr, "DIVERGENCE: side=%.0f oracle=%s query=%d\n", side,
                       labels[o], qi);
          return 1;
        }
      }
    }

    // Per-candidate microbench: what one IER candidate costs under a fresh
    // full Dijkstra versus one CH bidirectional search.
    std::vector<roadnet::EdgePoint> srcs, dsts;
    Rng pair_rng(args.seed + 3);
    for (int i = 0; i < cand_pairs; ++i) {
      srcs.push_back(locator.Nearest(
          {pair_rng.Uniform(0, side), pair_rng.Uniform(0, side)}));
      dsts.push_back(locator.Nearest(
          {pair_rng.Uniform(0, side), pair_rng.Uniform(0, side)}));
    }
    double dij_sum = 0.0, ch_sum = 0.0;
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < cand_pairs; ++i) {
      roadnet::NetworkDistanceOracle oracle(&graph, srcs[static_cast<size_t>(i)]);
      dij_sum += oracle.DistanceTo(dsts[static_cast<size_t>(i)]);
    }
    pt.cand_dijkstra_ms = MsSince(t0);
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < cand_pairs; ++i) {
      ch_point.SetSource(srcs[static_cast<size_t>(i)]);
      ch_sum += ch_point.DistanceTo(dsts[static_cast<size_t>(i)]);
    }
    pt.cand_ch_ms = MsSince(t0);
    if (dij_sum != ch_sum) {  // bitwise-equal sums: same answers, guaranteed
      std::fprintf(stderr, "DIVERGENCE: per-candidate sums differ at side=%.0f\n",
                   side);
      return 1;
    }
    pt.cand_speedup =
        pt.cand_ch_ms > 0.0 ? pt.cand_dijkstra_ms / pt.cand_ch_ms : 0.0;

    std::printf("%8.0f %7zu %7zu %10llu %10.1f %12.3f %12.3f %12.3f %13.1fx\n",
                side, pt.nodes, pt.edges,
                static_cast<unsigned long long>(pt.shortcuts), pt.ch_build_ms,
                pt.runs[0].total_ms / queries, pt.runs[1].total_ms / queries,
                pt.runs[2].total_ms / queries, pt.cand_speedup);
    std::printf("csv,%.0f,%zu,%zu,%llu,%.2f,%.4f,%.4f,%.4f,%llu,%llu,%llu,%.2f\n",
                side, pt.nodes, pt.edges,
                static_cast<unsigned long long>(pt.shortcuts), pt.ch_build_ms,
                pt.runs[0].total_ms / queries, pt.runs[1].total_ms / queries,
                pt.runs[2].total_ms / queries,
                static_cast<unsigned long long>(pt.runs[0].settled),
                static_cast<unsigned long long>(pt.runs[1].settled),
                static_cast<unsigned long long>(pt.runs[2].settled),
                pt.cand_speedup);
    points.push_back(std::move(pt));
  }

  const SizePoint& largest = points.back();
  bool ch_wins = largest.cand_ch_ms < largest.cand_dijkstra_ms;
  std::printf("\nper-candidate CH speedup at the largest network (%.0f m, %zu "
              "nodes): %.1fx — %s\n",
              largest.side_m, largest.nodes, largest.cand_speedup,
              ch_wins ? "CH wins" : "CH LOSES");

  const char* json_path = "BENCH_snnn.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\"seed\":%llu,\"mode\":\"%s\",\"pois\":%d,\"queries\":%d,\"k\":%d,"
               "\"identical_results\":%s,\"ch_wins_at_largest\":%s,\"sweep\":[",
               static_cast<unsigned long long>(args.seed),
               args.full ? "full" : "quick", poi_count, queries, k,
               identical ? "true" : "false", ch_wins ? "true" : "false");
  for (size_t i = 0; i < points.size(); ++i) {
    const SizePoint& p = points[i];
    std::fprintf(
        f,
        "%s{\"side_m\":%.0f,\"nodes\":%zu,\"edges\":%zu,\"shortcuts\":%llu,"
        "\"ch_build_ms\":%.3f,\"snnn_ms_per_query\":{\"dijkstra\":%.4f,"
        "\"ch\":%.4f,\"ch_bucket\":%.4f},\"settled\":{\"ch\":%llu,"
        "\"ch_bucket\":%llu},\"per_candidate\":{\"dijkstra_ms\":%.3f,"
        "\"ch_ms\":%.3f,\"speedup\":%.2f}}",
        i > 0 ? "," : "", p.side_m, p.nodes, p.edges,
        static_cast<unsigned long long>(p.shortcuts), p.ch_build_ms,
        p.runs[0].total_ms / queries, p.runs[1].total_ms / queries,
        p.runs[2].total_ms / queries,
        static_cast<unsigned long long>(p.runs[1].settled),
        static_cast<unsigned long long>(p.runs[2].settled), p.cand_dijkstra_ms,
        p.cand_ch_ms, p.cand_speedup);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("json: %s\n", json_path);
  return ch_wins ? 0 : 1;
}
