// Extension bench (beyond the paper): continuous kNN for a moving query
// point. Compares three strategies along identical drives:
//   naive multi-step  — a server kNN query at every sampled position;
//   own-cache reuse   — the ContinuousKnn fast path (Lemma 3.2 against the
//                       host's own previous result), server on miss;
//   + peer sharing    — ContinuousKnn with warm peers in radio range.
// Reports server queries per kilometer driven.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/continuous.h"
#include "src/mobility/waypoint.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: continuous kNN strategies", args);
  const int drives = args.full ? 40 : 10;
  const double drive_seconds = args.full ? 1800 : 900;
  const double sample_period_s = 5.0;

  Rng rng(args.seed);
  const double side = 4000.0;
  std::vector<core::Poi> pois;
  for (int i = 0; i < 60; ++i) {
    pois.push_back({i, {rng.Uniform(0, side), rng.Uniform(0, side)}});
  }
  core::SpatialServer server(pois);
  core::SennOptions options;
  options.server_request_k = 12;
  core::SennProcessor senn(&server, options);

  // Warm peers scattered across the area (their caches never move — think
  // parked cars).
  std::vector<core::CachedResult> parked;
  for (int p = 0; p < 25; ++p) {
    core::CachedResult c;
    c.query_location = {rng.Uniform(0, side), rng.Uniform(0, side)};
    c.neighbors = server.QueryKnn(c.query_location, 12).neighbors;
    parked.push_back(std::move(c));
  }
  server.ResetStats();

  double naive_queries = 0, cache_queries = 0, shared_queries = 0, km = 0;
  for (int d = 0; d < drives; ++d) {
    mobility::WaypointConfig wcfg;
    wcfg.area_side_m = side;
    wcfg.speed_mps = MphToMps(30.0);
    wcfg.mean_pause_s = 10.0;
    Rng drive_rng(args.seed + static_cast<uint64_t>(d) * 131);
    mobility::WaypointMover car(wcfg, {rng.Uniform(0, side), rng.Uniform(0, side)},
                                &drive_rng);
    core::ContinuousKnn own_only(&senn, 3);
    core::ContinuousKnn with_peers(&senn, 3);
    geom::Vec2 prev = car.position();
    for (double t = 0; t < drive_seconds; t += sample_period_s) {
      car.Advance(sample_period_s, &drive_rng);
      geom::Vec2 pos = car.position();
      km += geom::Dist(prev, pos) / 1000.0;
      prev = pos;
      ++naive_queries;  // the naive strategy queries the server every sample
      own_only.Step(pos);
      // Peers within 400 m radio range of the current position.
      std::vector<const core::CachedResult*> peers;
      for (const core::CachedResult& c : parked) {
        if (geom::Dist(c.query_location, pos) <= 400.0) peers.push_back(&c);
      }
      with_peers.Step(pos, peers);
    }
    cache_queries += static_cast<double>(own_only.stats().server_answers);
    shared_queries += static_cast<double>(with_peers.stats().server_answers);
  }
  km /= 2.0;  // both continuous strategies drove the same route; count once

  std::printf("%-22s %20s %16s\n", "strategy", "server queries/km", "vs naive");
  std::printf("csv,strategy,server_queries_per_km\n");
  struct Row {
    const char* name;
    double queries;
  } rows[] = {{"naive multi-step", naive_queries},
              {"own-cache reuse", cache_queries},
              {"own-cache + peers", shared_queries}};
  for (const Row& row : rows) {
    std::printf("%-22s %20.2f %15.1fx\n", row.name, row.queries / km,
                naive_queries / std::max(row.queries, 1.0));
    std::printf("csv,%s,%.3f\n", row.name, row.queries / km);
  }
  return 0;
}
