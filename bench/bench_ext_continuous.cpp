// Extension bench (beyond the paper): safe-region continuous kNN. A moving
// query point drives identical routes under three validity strategies:
//   off   — the own-cache baseline: the ContinuousKnn fast path is the
//           Lemma 3.2 recheck of the host's own previous result alone;
//   disk  — + the client-only (d_{k+1}-d_k)/2 safe-region disk. Same cached
//           information as the recheck, so its server contacts can tie but
//           never beat the baseline (DESIGN.md "Safe-region soundness") —
//           the win is the O(1) membership test;
//   insq  — + the server-assisted influential-neighbor region: server
//           answers ship the rival set from the full POI table, the region
//           reaches ~d_m instead of (d_m-d_k)/2, and server contacts drop.
// Sweeps speed x k x mode over precomputed drives (every mode replays the
// SAME positions), reports server queries per kilometer driven, and emits
// BENCH_continuous.json. Hard gate: at every (speed, k) the insq region must
// STRICTLY reduce server queries/km versus the own-cache baseline, and disk
// must never exceed it; the binary exits nonzero otherwise. Exactness of all
// three strategies is proven elsewhere (tests/core/continuous_diff_test.cpp)
// — only the accounting moves here.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/continuous.h"
#include "src/mobility/waypoint.h"

namespace {

struct Cell {
  senn::core::SafeRegionMode mode;
  double speed_mph = 0;
  int k = 0;
  uint64_t server = 0;       // resolving steps that reached the server
  uint64_t safe_hits = 0;    // own safe-region fast-path steps
  uint64_t cache_hits = 0;   // Lemma 3.2 own-cache fast-path steps
  uint64_t region_pages = 0; // logical R*-tree accesses of rival fetches
  double area_sum = 0;       // sum of installed region areas (m^2)
  uint64_t area_n = 0;
  double per_km = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: safe-region continuous kNN", args);
  const int drives = args.full ? 24 : 8;
  const double drive_seconds = args.full ? 1800 : 900;
  const double sample_period_s = 5.0;
  std::vector<double> speeds_mph = {15, 30, 60};
  if (args.full) {
    speeds_mph.push_back(90);
    speeds_mph.push_back(120);
  }
  const std::vector<int> ks = {3, 6};
  const core::SafeRegionMode modes[] = {core::SafeRegionMode::kOff,
                                        core::SafeRegionMode::kDisk,
                                        core::SafeRegionMode::kInsq};

  Rng rng(args.seed);
  const double side = 4000.0;
  std::vector<core::Poi> pois;
  for (int i = 0; i < 60; ++i) {
    pois.push_back({i, {rng.Uniform(0, side), rng.Uniform(0, side)}});
  }
  core::SpatialServer server(pois);
  core::SennOptions options;
  options.server_request_k = 12;
  core::SennProcessor senn(&server, options);

  std::vector<Cell> cells;
  bool insq_strict = true;  // insq < off at every (speed, k)
  bool disk_sound = true;   // disk <= off at every (speed, k)
  std::printf("%10s %4s %6s %14s %12s %12s %12s %14s\n", "speed mph", "k", "mode",
              "server q/km", "safe-region", "own-cache", "rival pages", "region km^2");
  std::printf("csv,speed_mph,k,mode,server_queries_per_km,safe_region_steps,"
              "own_cache_steps,region_pages,mean_region_area_km2\n");
  for (double mph : speeds_mph) {
    // Precompute the drives once per speed: every mode and k replays the
    // exact same positions, so the columns differ only by strategy.
    std::vector<std::vector<geom::Vec2>> paths;
    double km = 0;
    for (int d = 0; d < drives; ++d) {
      mobility::WaypointConfig wcfg;
      wcfg.area_side_m = side;
      wcfg.speed_mps = MphToMps(mph);
      wcfg.mean_pause_s = 10.0;
      Rng drive_rng(args.seed + static_cast<uint64_t>(mph) * 7919 +
                    static_cast<uint64_t>(d) * 131);
      mobility::WaypointMover car(
          wcfg, {drive_rng.Uniform(0, side), drive_rng.Uniform(0, side)}, &drive_rng);
      std::vector<geom::Vec2> path = {car.position()};
      for (double t = 0; t < drive_seconds; t += sample_period_s) {
        car.Advance(sample_period_s, &drive_rng);
        km += geom::Dist(path.back(), car.position()) / 1000.0;
        path.push_back(car.position());
      }
      paths.push_back(std::move(path));
    }

    for (int k : ks) {
      Cell row[3];
      for (int m = 0; m < 3; ++m) {
        Cell& cell = row[m];
        cell.mode = modes[m];
        cell.speed_mph = mph;
        cell.k = k;
        core::ContinuousOptions copts;
        copts.safe_region = modes[m];
        for (const std::vector<geom::Vec2>& path : paths) {
          core::ContinuousKnn cknn(&senn, k, copts);
          for (const geom::Vec2& pos : path) {
            uint64_t built_before = cknn.stats().regions_built;
            core::StepResult step = cknn.Step(pos);
            cell.region_pages += step.region_pages;
            if (cknn.stats().regions_built > built_before &&
                cknn.safe_region().Valid()) {
              cell.area_sum += cknn.safe_region().Area();
              ++cell.area_n;
            }
          }
          cell.server += cknn.stats().server_answers;
          cell.safe_hits += cknn.stats().safe_region_hits;
          cell.cache_hits += cknn.stats().own_cache_hits;
        }
        cell.per_km = static_cast<double>(cell.server) / km;
        double mean_area_km2 =
            cell.area_n > 0 ? cell.area_sum / static_cast<double>(cell.area_n) / 1e6 : 0;
        std::printf("%10.0f %4d %6s %14.2f %12llu %12llu %12llu %14.4f\n", mph, k,
                    core::SafeRegionModeName(modes[m]), cell.per_km,
                    static_cast<unsigned long long>(cell.safe_hits),
                    static_cast<unsigned long long>(cell.cache_hits),
                    static_cast<unsigned long long>(cell.region_pages), mean_area_km2);
        std::printf("csv,%.0f,%d,%s,%.4f,%llu,%llu,%llu,%.6f\n", mph, k,
                    core::SafeRegionModeName(modes[m]), cell.per_km,
                    static_cast<unsigned long long>(cell.safe_hits),
                    static_cast<unsigned long long>(cell.cache_hits),
                    static_cast<unsigned long long>(cell.region_pages), mean_area_km2);
        cells.push_back(cell);
      }
      if (!(row[2].server < row[0].server)) insq_strict = false;
      if (row[1].server > row[0].server) disk_sound = false;
    }
  }

  std::printf("\ninsq strictly below the own-cache baseline at every (speed, k): %s\n",
              insq_strict ? "yes" : "NO — the server-assisted region regressed");
  std::printf("disk never above the own-cache baseline: %s\n",
              disk_sound ? "yes" : "NO — the client-only disk is UNSOUND (it must "
                                   "be information-bounded by the recheck)");

  const char* json_path = "BENCH_continuous.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\"seed\":%llu,\"mode\":\"%s\",\"pois\":%d,\"drives_per_speed\":%d,"
               "\"drive_seconds\":%.0f,\"sample_period_s\":%.0f,"
               "\"insq_strictly_reduces_server\":%s,\"disk_at_most_baseline\":%s,"
               "\"sweep\":[",
               static_cast<unsigned long long>(args.seed), args.full ? "full" : "quick",
               static_cast<int>(pois.size()), drives, drive_seconds, sample_period_s,
               insq_strict ? "true" : "false", disk_sound ? "true" : "false");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "%s{\"speed_mph\":%.0f,\"k\":%d,\"region\":\"%s\","
                 "\"server_queries\":%llu,\"server_queries_per_km\":%.6f,"
                 "\"safe_region_steps\":%llu,\"own_cache_steps\":%llu,"
                 "\"region_pages\":%llu,\"mean_region_area_m2\":%.3f}",
                 i == 0 ? "" : ",", c.speed_mph, c.k, core::SafeRegionModeName(c.mode),
                 static_cast<unsigned long long>(c.server), c.per_km,
                 static_cast<unsigned long long>(c.safe_hits),
                 static_cast<unsigned long long>(c.cache_hits),
                 static_cast<unsigned long long>(c.region_pages),
                 c.area_n > 0 ? c.area_sum / static_cast<double>(c.area_n) : 0.0);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);

  if (!insq_strict || !disk_sound) return 1;
  return 0;
}
