// Figure 12: queries resolved by one peer / multiple peers / the server as a
// function of the mobile host cache capacity (4..20), Table 4 parameter
// sets, 30x30-mile area (scaled in quick mode), road network mode.
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Figure 12: cache capacity sweep, 30x30 mi", args);
  double scale = args.full ? 1.0 : 5.0;
  double duration = args.full ? 18000.0 : 2400.0;
  std::vector<double> capacities{4, 8, 12, 16, 20};

  std::vector<sim::FigureSeries> series;
  for (sim::Region region : {sim::Region::kLosAngeles, sim::Region::kSyntheticSuburbia,
                             sim::Region::kRiverside}) {
    series.push_back(bench::RunSweep(
        sim::RegionName(region), bench::ScaleDown(sim::Table4(region), scale),
        sim::MovementMode::kRoadNetwork, args, duration, capacities,
        [](sim::SimulationConfig* cfg, double c) {
          cfg->time_step_s = 2.0;
          cfg->params.cache_size = static_cast<int>(c);
        }));
  }
  sim::PrintFigure("Figure 12: queries resolved vs. cache capacity (30x30 mi)",
                   "cache_items", series);
  return 0;
}
