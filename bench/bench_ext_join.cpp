// Extension bench: sharing-based local spatial joins (the paper's second
// named future-work query). Measures the fraction of "A near me with B
// within d" joins that complete with zero server contact, as a function of
// the query radius, plus the R-tree distance-join substrate's page behaviour
// against nested loops.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/join.h"
#include "src/rtree/bulk_load.h"
#include "src/rtree/spatial_join.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: sharing-based spatial joins", args);
  const int trials = args.full ? 2000 : 500;

  Rng rng(args.seed);
  const double side = 3218.688;  // 2 miles
  std::vector<core::Poi> restaurants, parking;
  for (int i = 0; i < 120; ++i) {
    restaurants.push_back({i, {rng.Uniform(0, side), rng.Uniform(0, side)}});
  }
  for (int i = 0; i < 90; ++i) {
    parking.push_back({1000 + i, {rng.Uniform(0, side), rng.Uniform(0, side)}});
  }
  core::SpatialServer server_a(restaurants);
  core::SpatialServer server_b(parking);
  core::SharingJoinProcessor join(&server_a, &server_b);

  std::printf("%12s %14s %14s %12s\n", "radius_m", "fully local%", "pairs/query",
              "d = 150 m");
  std::printf("csv,radius_m,fully_local_pct,pairs_per_query\n");
  for (double radius : {100.0, 200.0, 350.0, 500.0, 700.0}) {
    Rng trial_rng(args.seed + static_cast<uint64_t>(radius));
    int local = 0;
    double pairs = 0;
    for (int t = 0; t < trials; ++t) {
      geom::Vec2 q{trial_rng.Uniform(0, side), trial_rng.Uniform(0, side)};
      std::vector<core::CachedResult> ca, cb;
      for (int p = 0; p < 4; ++p) {
        geom::Vec2 at{q.x + trial_rng.Uniform(-250, 250),
                      q.y + trial_rng.Uniform(-250, 250)};
        core::CachedResult a;
        a.query_location = at;
        a.neighbors = server_a.QueryKnn(at, 8).neighbors;
        ca.push_back(std::move(a));
        core::CachedResult b;
        b.query_location = at;
        b.neighbors = server_b.QueryKnn(at, 8).neighbors;
        cb.push_back(std::move(b));
      }
      std::vector<const core::CachedResult*> peers_a, peers_b;
      for (const core::CachedResult& c : ca) peers_a.push_back(&c);
      for (const core::CachedResult& c : cb) peers_b.push_back(&c);
      core::JoinOutcome out = join.Execute(q, radius, 150.0, peers_a, peers_b);
      local += out.fully_local;
      pairs += static_cast<double>(out.pairs.size());
    }
    std::printf("%12.0f %14.1f %14.2f\n", radius, 100.0 * local / trials, pairs / trials);
    std::printf("csv,%.0f,%.2f,%.3f\n", radius, 100.0 * local / trials, pairs / trials);
  }

  // Substrate: synchronized-descent distance join vs nested loops (pages).
  Rng join_rng(args.seed);
  std::vector<rtree::ObjectEntry> ea, eb;
  for (int i = 0; i < 3000; ++i) {
    ea.push_back({{join_rng.Uniform(0, 10000), join_rng.Uniform(0, 10000)}, i});
    eb.push_back({{join_rng.Uniform(0, 10000), join_rng.Uniform(0, 10000)}, 100000 + i});
  }
  rtree::RStarTree ta = rtree::BulkLoad(std::move(ea));
  rtree::RStarTree tb = rtree::BulkLoad(std::move(eb));
  std::printf("\n%14s %12s %16s\n", "threshold_m", "pairs", "pages (A+B)");
  std::printf("csv2,threshold_m,pairs,pages\n");
  for (double d : {10.0, 50.0, 200.0}) {
    rtree::AccessCounter pa, pb;
    std::vector<rtree::JoinPair> pairs = rtree::DistanceJoin(ta, tb, d, &pa, &pb);
    std::printf("%14.0f %12zu %16llu\n", d, pairs.size(),
                static_cast<unsigned long long>(pa.total() + pb.total()));
    std::printf("csv2,%.0f,%zu,%llu\n", d, pairs.size(),
                static_cast<unsigned long long>(pa.total() + pb.total()));
  }
  return 0;
}
