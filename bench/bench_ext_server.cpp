// Extension bench: the standalone rpc server (src/rpc/server.h).
//
// bench_ext_batch measures what shared EINN traversals save when the batch
// is handed to the engine directly; this bench measures the same effect at
// the other end of the wire. An in-process rpc::Server answers a hotspot
// query stream over real loopback TCP while the sweep varies the three
// knobs a deployment would tune:
//   * connections     — concurrent pipelined clients (one thread each);
//   * pipeline depth  — requests per burst before the client waits;
//   * --server-batch  — the service's max_group cap (1 = verbatim
//     sequential QueryKnn, the loopback-determinism default).
//
// Each sweep point gets a freshly built server over the same POI world with
// a cold 64-frame LRU pool, so page counts are comparable down a column.
// Replies carry the engine's access counters on the wire, so pages/query is
// summed client-side from decoded replies — the bench doubles as an
// end-to-end check that accounting survives the codec. The claim under
// test: with deep pipelines on a hotspot workload, pages/query falls as the
// batch cap grows (bursts arrive as dispatch groups; co-located group
// members share one traversal). Emitted machine-readable as
// BENCH_server.json.
//
// Wall-clock timing is inherent here (real sockets, real threads); this
// file is a bench, outside the senn_lint determinism scope, and none of the
// timed numbers feed a simulation result.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/server.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"
#include "src/rpc/tcp.h"
#include "src/storage/page.h"

namespace {

using namespace senn;

struct PointResult {
  int connections = 0;
  int depth = 0;
  int max_group = 0;
  uint64_t queries = 0;
  double throughput_qps = 0.0;
  double mean_burst_latency_us = 0.0;
  double pages_per_query = 0.0;
  double misses_per_query = 0.0;
  double avg_group_size = 0.0;
};

struct ClientTally {
  uint64_t queries = 0;
  uint64_t logical_pages = 0;
  uint64_t misses = 0;
  double busy_us = 0.0;  // sum of burst latencies
  uint64_t bursts = 0;
  bool failed = false;
};

std::vector<core::Poi> BuildPois(uint64_t seed, int n, double side) {
  Rng rng = Rng(seed).Stream("bench-server-pois");
  std::vector<core::Poi> pois;
  pois.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng.Uniform(0, side), rng.Uniform(0, side)}});
  }
  return pois;
}

// Hotspot stream: the co-location regime batching exists for (same recipe
// as bench_ext_batch so the two benches describe the same workload).
std::vector<rpc::KnnRequest> BuildQueries(uint64_t seed, uint64_t client, int n,
                                          double side, int k) {
  Rng centers_rng = Rng(seed).Stream("bench-server-hot-centers");
  std::vector<geom::Vec2> centers;
  for (int c = 0; c < 8; ++c) {
    centers.push_back({centers_rng.Uniform(0, side), centers_rng.Uniform(0, side)});
  }
  Rng rng = Rng(seed).Stream("bench-server-hot", client);
  std::vector<rpc::KnnRequest> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rpc::KnnRequest request;
    if (rng.Bernoulli(0.9)) {
      const geom::Vec2& c = centers[rng.NextIndex(centers.size())];
      request.q = {c.x + rng.Uniform(-25.0, 25.0), c.y + rng.Uniform(-25.0, 25.0)};
    } else {
      request.q = {rng.Uniform(0, side), rng.Uniform(0, side)};
    }
    request.k = k;
    queries.push_back(request);
  }
  return queries;
}

// One client thread: answers its query list in pipelined bursts of `depth`.
void RunClient(const rpc::Server& server, const std::vector<rpc::KnnRequest>& queries,
               int depth, ClientTally* tally) {
  auto transport = rpc::TcpClientTransport::Connect("127.0.0.1", server.port());
  if (!transport.ok()) {
    tally->failed = true;
    return;
  }
  rpc::Client client(transport->get());
  size_t next = 0;
  while (next < queries.size()) {
    const size_t burst = std::min<size_t>(static_cast<size_t>(depth),
                                          queries.size() - next);
    std::vector<uint64_t> ids;
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < burst; ++i) ids.push_back(client.SendKnn(queries[next + i]));
    if (!client.Flush().ok()) {
      tally->failed = true;
      return;
    }
    for (uint64_t id : ids) {
      Result<core::ServerReply> reply = client.Wait(id);
      if (!reply.ok()) {
        tally->failed = true;
        return;
      }
      tally->logical_pages += reply->einn_accesses.total();
      tally->misses += reply->einn_accesses.misses();
      ++tally->queries;
    }
    const auto t1 = std::chrono::steady_clock::now();
    tally->busy_us +=
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(t1 - t0)
            .count();
    ++tally->bursts;
    next += burst;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: rpc server throughput/latency", args);

  const double side = 30000.0;  // meters
  const int poi_count = args.full ? 100000 : 20000;
  const int queries_per_point = args.full ? 8192 : 1024;
  const int k = 10;
  const std::vector<int> connection_counts = args.full
                                                 ? std::vector<int>{1, 2, 4, 8}
                                                 : std::vector<int>{1, 4};
  const std::vector<int> depths =
      args.full ? std::vector<int>{1, 8, 32} : std::vector<int>{1, 16};
  const std::vector<int> batch_caps =
      args.full ? std::vector<int>{1, 2, 4, 8, 16, 32} : std::vector<int>{1, 4, 16};

  std::vector<core::Poi> pois = BuildPois(args.seed, poi_count, side);

  std::printf("%d POIs, %d queries/point, k=%d, hotspot stream, "
              "64-frame LRU pool, cold per point\n\n",
              poi_count, queries_per_point, k);
  std::printf("%5s %6s %5s %12s %14s %10s %10s %9s\n", "conns", "depth", "cap",
              "qps", "burst-lat us", "pages/q", "misses/q", "avg group");
  std::printf("csv,connections,depth,max_group,throughput_qps,"
              "mean_burst_latency_us,pages_per_query,misses_per_query,"
              "avg_group_size\n");

  std::vector<PointResult> sweep;
  for (int conns : connection_counts) {
    for (int depth : depths) {
      for (int cap : batch_caps) {
        // Fresh server per point: same tree (same build), cold pool.
        storage::BufferPoolOptions pool;
        pool.capacity_pages = 64;
        core::SpatialServer engine(pois, core::SpatialServer::DefaultTreeOptions(),
                                   rtree::AccessCountMode::kOnExpand, pool);
        rpc::ServerOptions options;
        options.worker_threads = 2;
        options.service.batch.max_group = cap;
        options.service.batch.cluster_cell_m = 200.0;
        rpc::Server server(&engine, options);
        Status started = server.Start();
        if (!started.ok()) {
          std::fprintf(stderr, "server start failed: %s\n",
                       std::string(started.message()).c_str());
          return 1;
        }

        const int per_client = queries_per_point / conns;
        std::vector<ClientTally> tallies(static_cast<size_t>(conns));
        std::vector<std::thread> threads;
        const auto wall0 = std::chrono::steady_clock::now();
        for (int c = 0; c < conns; ++c) {
          threads.emplace_back([&, c] {
            const std::vector<rpc::KnnRequest> queries = BuildQueries(
                args.seed, static_cast<uint64_t>(c), per_client, side, k);
            RunClient(server, queries, depth, &tallies[static_cast<size_t>(c)]);
          });
        }
        for (std::thread& t : threads) t.join();
        const auto wall1 = std::chrono::steady_clock::now();
        const core::BatchStats batch = server.service().batch_stats();
        const rpc::ServerCounters counters = server.counters();
        server.Stop();

        PointResult p;
        p.connections = conns;
        p.depth = depth;
        p.max_group = cap;
        for (const ClientTally& t : tallies) {
          if (t.failed) {
            std::fprintf(stderr, "client thread failed mid-sweep\n");
            return 1;
          }
          p.queries += t.queries;
          p.pages_per_query += static_cast<double>(t.logical_pages);
          p.misses_per_query += static_cast<double>(t.misses);
          p.mean_burst_latency_us += t.busy_us;
        }
        const double wall_s =
            std::chrono::duration_cast<std::chrono::duration<double>>(wall1 - wall0)
                .count();
        uint64_t bursts = 0;
        for (const ClientTally& t : tallies) bursts += t.bursts;
        p.throughput_qps = static_cast<double>(p.queries) / wall_s;
        p.mean_burst_latency_us /= static_cast<double>(bursts);
        p.pages_per_query /= static_cast<double>(p.queries);
        p.misses_per_query /= static_cast<double>(p.queries);
        p.avg_group_size = counters.groups_dispatched == 0
                               ? 0.0
                               : static_cast<double>(batch.queries) /
                                     static_cast<double>(counters.groups_dispatched);
        sweep.push_back(p);

        std::printf("%5d %6d %5d %12.0f %14.1f %10.3f %10.3f %9.2f\n", conns, depth,
                    cap, p.throughput_qps, p.mean_burst_latency_us, p.pages_per_query,
                    p.misses_per_query, p.avg_group_size);
        std::printf("csv,%d,%d,%d,%.1f,%.2f,%.4f,%.4f,%.3f\n", conns, depth, cap,
                    p.throughput_qps, p.mean_burst_latency_us, p.pages_per_query,
                    p.misses_per_query, p.avg_group_size);
      }
    }
  }

  // The claim the sweep exists to demonstrate: with the deepest pipeline,
  // growing the batch cap from 1 (no sharing) to the maximum cuts the
  // per-query page cost — the wire path preserves what bench_ext_batch
  // measures engine-side. Compared endpoint to endpoint (not per step):
  // group composition depends on socket read boundaries, so intermediate
  // caps may jitter, but the no-sharing/full-sharing gap must survive.
  bool pages_drop = true;
  for (int conns : connection_counts) {
    const int deepest = depths.back();
    double at_cap1 = -1.0, at_max = -1.0;
    for (const PointResult& p : sweep) {
      if (p.connections != conns || p.depth != deepest) continue;
      if (p.max_group == batch_caps.front()) at_cap1 = p.pages_per_query;
      if (p.max_group == batch_caps.back()) at_max = p.pages_per_query;
    }
    if (!(at_max < at_cap1)) pages_drop = false;
  }
  std::printf("\nhotspot pages/query drops from cap %d to cap %d at depth %d: %s\n",
              batch_caps.front(), batch_caps.back(), depths.back(),
              pages_drop ? "yes" : "NO — sharing regressed over the wire");

  const char* json_path = "BENCH_server.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\"seed\":%llu,\"mode\":\"%s\",\"pois\":%d,\"queries_per_point\":%d,"
               "\"k\":%d,\"hotspot_pages_drop\":%s,\"sweep\":[",
               static_cast<unsigned long long>(args.seed), args.full ? "full" : "quick",
               poi_count, queries_per_point, k, pages_drop ? "true" : "false");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const PointResult& p = sweep[i];
    std::fprintf(f,
                 "%s{\"connections\":%d,\"depth\":%d,\"max_group\":%d,"
                 "\"queries\":%llu,\"throughput_qps\":%.1f,"
                 "\"mean_burst_latency_us\":%.2f,\"pages_per_query\":%.4f,"
                 "\"misses_per_query\":%.4f,\"avg_group_size\":%.3f}",
                 i > 0 ? "," : "", p.connections, p.depth, p.max_group,
                 static_cast<unsigned long long>(p.queries), p.throughput_qps,
                 p.mean_burst_latency_us, p.pages_per_query, p.misses_per_query,
                 p.avg_group_size);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("json: %s\n", json_path);
  return pages_drop ? 0 : 1;
}
