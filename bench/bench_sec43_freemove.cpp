// Section 4.3: free movement mode versus road network mode. The paper
// reports the server workload with the Los Angeles set decreasing by 5-8%
// (2x2 mi) and 2-5% (30x30 mi) in free movement mode — obstacle-free
// movement raises the local host density (the random-waypoint center bias),
// so more queries find useful peers — with the other sets close to their
// road-network counterparts. The effect is small, so each cell is averaged
// over several seeds.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Section 4.3: free movement vs road network mode", args);
  double duration_small = args.full ? 3600.0 : 1500.0;
  double duration_big = args.full ? 18000.0 : 1800.0;
  double scale = args.full ? 1.0 : 5.0;
  const int repeats = args.full ? 8 : 4;

  // Flatten the whole (area, region, mode, repeat) grid into one batch so
  // the repeats of every cell run concurrently under --threads.
  std::vector<sim::SimulationConfig> configs;
  std::vector<std::string> cell_names;
  for (bool big_area : {false, true}) {
    for (sim::Region region : {sim::Region::kLosAngeles, sim::Region::kSyntheticSuburbia,
                               sim::Region::kRiverside}) {
      sim::ParameterSet params = big_area
                                     ? bench::ScaleDown(sim::Table4(region), scale)
                                     : sim::Table3(region);
      cell_names.push_back(params.name);
      for (sim::MovementMode mode :
           {sim::MovementMode::kRoadNetwork, sim::MovementMode::kFreeMovement}) {
        for (int rep = 0; rep < repeats; ++rep) {
          sim::SimulationConfig cfg;
          cfg.params = params;
          cfg.mode = mode;
          cfg.seed = args.seed + static_cast<uint64_t>(rep) * 7919;
          cfg.time_step_s = big_area ? 2.0 : 1.0;
          cfg.duration_s = args.duration_s > 0
                               ? args.duration_s
                               : (big_area ? duration_big : duration_small);
          configs.push_back(std::move(cfg));
        }
      }
    }
  }
  std::vector<sim::SimulationResult> results = sim::RunConfigs(configs, args.Sweep());

  std::printf("%-52s %14s %14s %8s\n", "parameter set", "road server%", "free server%",
              "delta");
  std::printf("csv,set,road_server_pct,free_server_pct,delta\n");
  size_t run = 0;
  for (const std::string& name : cell_names) {
    double server_pct[2] = {0, 0};
    for (int mode_idx = 0; mode_idx < 2; ++mode_idx) {
      double total = 0.0;
      for (int rep = 0; rep < repeats; ++rep) total += results[run++].pct_server;
      server_pct[mode_idx] = total / repeats;
    }
    std::printf("%-52s %14.1f %14.1f %+8.1f\n", name.c_str(), server_pct[0],
                server_pct[1], server_pct[1] - server_pct[0]);
    std::printf("csv,%s,%.2f,%.2f,%.2f\n", name.c_str(), server_pct[0], server_pct[1],
                server_pct[1] - server_pct[0]);
  }
  return 0;
}
