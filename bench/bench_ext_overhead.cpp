// Extension bench: the P2P communication overhead the paper names as the
// technique's disadvantage ("it may increase the communication overheads
// among mobile hosts") but does not quantify. Two sweeps on the LA 2x2 set:
//
//   1. Transmission range on the ideal channel: server load avoided vs.
//      ad-hoc messages and bytes spent per query.
//   2. Packet loss 0 -> 0.5 on a latent channel (tx = 200 m): how the sharing
//      scheme degrades when replies go missing — server share, the queries
//      that fell back to the server *because* of loss, and the query latency
//      distribution (p50/p95/p99).
//
// Both sweeps are also emitted as machine-readable BENCH_overhead.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

std::string JsonRow(const char* x_key, double x, const senn::sim::SimulationResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"%s\":%g,\"server_pct\":%.4f,\"p2p_msgs_per_query\":%.4f,"
      "\"p2p_bytes_per_query\":%.1f,\"loss_induced_fallback_pct\":%.4f,"
      "\"latency_p50_ms\":%.3f,\"latency_p95_ms\":%.3f,\"latency_p99_ms\":%.3f,"
      "\"retries_per_query\":%.4f}",
      x_key, x, r.pct_server, r.p2p_messages_per_query.mean(),
      r.p2p_bytes_per_query.mean(),
      r.measured_queries > 0
          ? 100.0 * static_cast<double>(r.loss_induced_server_fallbacks) /
                static_cast<double>(r.measured_queries)
          : 0.0,
      r.latency_p50.value() * 1000.0, r.latency_p95.value() * 1000.0,
      r.latency_p99.value() * 1000.0, r.retries_per_query.mean());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: P2P communication overhead", args);
  double duration = args.full ? 3600.0 : 1800.0;

  // --- Sweep 1: transmission range, ideal channel -------------------------
  const std::vector<double> tx_ranges{25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 400.0};
  std::vector<sim::SimulationConfig> configs;
  for (double tx : tx_ranges) {
    sim::SimulationConfig cfg;
    cfg.params = sim::Table3(sim::Region::kLosAngeles);
    cfg.params.tx_range_m = tx;
    cfg.mode = sim::MovementMode::kRoadNetwork;
    cfg.seed = args.seed + static_cast<uint64_t>(tx);
    cfg.duration_s = args.duration_s > 0 ? args.duration_s : duration;
    configs.push_back(std::move(cfg));
  }
  std::vector<sim::SimulationResult> results = sim::RunConfigs(configs, args.Sweep());

  std::printf("%12s %10s %18s %16s\n", "tx_range_m", "server%", "p2p msgs/query",
              "p2p bytes/query");
  std::printf("csv,tx_range_m,server_pct,p2p_msgs,p2p_bytes\n");
  for (size_t i = 0; i < tx_ranges.size(); ++i) {
    const sim::SimulationResult& r = results[i];
    std::printf("%12.0f %10.1f %18.2f %16.0f\n", tx_ranges[i], r.pct_server,
                r.p2p_messages_per_query.mean(), r.p2p_bytes_per_query.mean());
    std::printf("csv,%.0f,%.2f,%.3f,%.1f\n", tx_ranges[i], r.pct_server,
                r.p2p_messages_per_query.mean(), r.p2p_bytes_per_query.mean());
  }
  std::printf("\nThe knee of this curve is the engineering trade-off: past it, extra\n"
              "radio range buys little server relief but keeps adding ad-hoc chatter.\n");

  // --- Sweep 2: packet loss on a latent channel, tx = 200 m ---------------
  const std::vector<double> losses{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  std::vector<sim::SimulationConfig> loss_configs;
  for (double loss : losses) {
    sim::SimulationConfig cfg;
    cfg.params = sim::Table3(sim::Region::kLosAngeles);
    cfg.params.tx_range_m = 200.0;
    cfg.mode = sim::MovementMode::kRoadNetwork;
    // Same seed for every point: identical world and workload, so the curve
    // isolates the channel's effect.
    cfg.seed = args.seed + 1000;
    cfg.duration_s = args.duration_s > 0 ? args.duration_s : duration;
    cfg.channel.loss = loss;
    cfg.channel.latency_mean_s = 0.02;
    cfg.channel.reply_timeout_s = 0.1;
    cfg.channel.max_retries = 2;
    loss_configs.push_back(std::move(cfg));
  }
  std::vector<sim::SimulationResult> loss_results =
      sim::RunConfigs(loss_configs, args.Sweep());

  std::printf("\n%8s %10s %14s %10s %10s %10s %10s\n", "loss", "server%",
              "loss-fallb.%", "p50 ms", "p95 ms", "p99 ms", "retries/q");
  std::printf("csv,loss,server_pct,loss_fallback_pct,p50_ms,p95_ms,p99_ms,retries\n");
  for (size_t i = 0; i < losses.size(); ++i) {
    const sim::SimulationResult& r = loss_results[i];
    double fallback_pct =
        r.measured_queries > 0
            ? 100.0 * static_cast<double>(r.loss_induced_server_fallbacks) /
                  static_cast<double>(r.measured_queries)
            : 0.0;
    std::printf("%8.2f %10.1f %14.2f %10.1f %10.1f %10.1f %10.3f\n", losses[i],
                r.pct_server, fallback_pct, r.latency_p50.value() * 1000.0,
                r.latency_p95.value() * 1000.0, r.latency_p99.value() * 1000.0,
                r.retries_per_query.mean());
    std::printf("csv,%.2f,%.2f,%.3f,%.2f,%.2f,%.2f,%.4f\n", losses[i], r.pct_server,
                fallback_pct, r.latency_p50.value() * 1000.0,
                r.latency_p95.value() * 1000.0, r.latency_p99.value() * 1000.0,
                r.retries_per_query.mean());
  }
  std::printf("\nLoss converts data-sharing hits into server queries: the fallback\n"
              "column is exactly the queries that resolved at the server despite a\n"
              "peer set that could have answered them.\n");

  // --- Machine-readable dump ----------------------------------------------
  const char* json_path = "BENCH_overhead.json";
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\"seed\":%llu,\"mode\":\"%s\",\"tx_sweep\":[",
               static_cast<unsigned long long>(args.seed), args.full ? "full" : "quick");
  for (size_t i = 0; i < tx_ranges.size(); ++i) {
    std::fprintf(f, "%s%s", i > 0 ? "," : "",
                 JsonRow("tx_range_m", tx_ranges[i], results[i]).c_str());
  }
  std::fprintf(f, "],\"loss_sweep\":[");
  for (size_t i = 0; i < losses.size(); ++i) {
    std::fprintf(f, "%s%s", i > 0 ? "," : "",
                 JsonRow("loss", losses[i], loss_results[i]).c_str());
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("json: %s\n", json_path);
  return 0;
}
