// Extension bench: the P2P communication overhead the paper names as the
// technique's disadvantage ("it may increase the communication overheads
// among mobile hosts") but does not quantify. Sweeps the transmission range
// on the LA 2x2 set and reports, per query: server load avoided vs. ad-hoc
// messages and bytes spent.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Extension: P2P communication overhead", args);
  double duration = args.full ? 3600.0 : 1800.0;

  const std::vector<double> tx_ranges{25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 400.0};
  std::vector<sim::SimulationConfig> configs;
  for (double tx : tx_ranges) {
    sim::SimulationConfig cfg;
    cfg.params = sim::Table3(sim::Region::kLosAngeles);
    cfg.params.tx_range_m = tx;
    cfg.mode = sim::MovementMode::kRoadNetwork;
    cfg.seed = args.seed + static_cast<uint64_t>(tx);
    cfg.duration_s = args.duration_s > 0 ? args.duration_s : duration;
    configs.push_back(std::move(cfg));
  }
  std::vector<sim::SimulationResult> results = sim::RunConfigs(configs, args.Sweep());

  std::printf("%12s %10s %18s %16s\n", "tx_range_m", "server%", "p2p msgs/query",
              "p2p bytes/query");
  std::printf("csv,tx_range_m,server_pct,p2p_msgs,p2p_bytes\n");
  for (size_t i = 0; i < tx_ranges.size(); ++i) {
    const sim::SimulationResult& r = results[i];
    std::printf("%12.0f %10.1f %18.2f %16.0f\n", tx_ranges[i], r.pct_server,
                r.p2p_messages_per_query.mean(), r.p2p_bytes_per_query.mean());
    std::printf("csv,%.0f,%.2f,%.3f,%.1f\n", tx_ranges[i], r.pct_server,
                r.p2p_messages_per_query.mean(), r.p2p_bytes_per_query.mean());
  }
  std::printf("\nThe knee of this curve is the engineering trade-off: past it, extra\n"
              "radio range buys little server relief but keeps adding ad-hoc chatter.\n");
  return 0;
}
