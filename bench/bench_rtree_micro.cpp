// google-benchmark microbenchmarks for the R*-tree substrate: insertion,
// range queries, kNN variants, and the exact disk-union coverage test. These
// guard the index against performance regressions; absolute numbers are
// machine-dependent.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/geom/disk_cover.h"
#include "src/rtree/knn.h"
#include "src/rtree/rstar_tree.h"

namespace {

using namespace senn;

rtree::RStarTree BuildTree(int n, uint64_t seed) {
  Rng rng(seed);
  rtree::RStarTree tree;
  for (int i = 0; i < n; ++i) {
    tree.Insert({rng.Uniform(0, 10000), rng.Uniform(0, 10000)}, i);
  }
  return tree;
}

void BM_RStarInsert(benchmark::State& state) {
  Rng rng(1);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rtree::RStarTree tree;
    for (int i = 0; i < n; ++i) {
      tree.Insert({rng.Uniform(0, 10000), rng.Uniform(0, 10000)}, i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RStarInsert)->Arg(1000)->Arg(10000);

void BM_RangeQuery(benchmark::State& state) {
  rtree::RStarTree tree = BuildTree(static_cast<int>(state.range(0)), 2);
  Rng rng(3);
  std::vector<rtree::ObjectEntry> out;
  for (auto _ : state) {
    out.clear();
    double x = rng.Uniform(0, 9000), y = rng.Uniform(0, 9000);
    tree.RangeQuery(geom::Mbr{{x, y}, {x + 1000, y + 1000}}, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RangeQuery)->Arg(10000)->Arg(100000);

void BM_BestFirstKnn(benchmark::State& state) {
  rtree::RStarTree tree = BuildTree(static_cast<int>(state.range(0)), 4);
  Rng rng(5);
  for (auto _ : state) {
    geom::Vec2 q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    benchmark::DoNotOptimize(BestFirstKnn(tree, q, 10));
  }
}
BENCHMARK(BM_BestFirstKnn)->Arg(10000)->Arg(100000);

void BM_DepthFirstKnn(benchmark::State& state) {
  rtree::RStarTree tree = BuildTree(static_cast<int>(state.range(0)), 4);
  Rng rng(5);
  for (auto _ : state) {
    geom::Vec2 q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    benchmark::DoNotOptimize(DepthFirstKnn(tree, q, 10));
  }
}
BENCHMARK(BM_DepthFirstKnn)->Arg(10000)->Arg(100000);

void BM_DiskUnionCoverage(benchmark::State& state) {
  Rng rng(6);
  const int m = static_cast<int>(state.range(0));
  std::vector<std::vector<geom::Circle>> covers;
  std::vector<geom::Circle> subjects;
  for (int i = 0; i < 256; ++i) {
    std::vector<geom::Circle> cover;
    for (int j = 0; j < m; ++j) {
      cover.push_back(geom::Circle({rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
                                   rng.Uniform(0.3, 1.5)));
    }
    covers.push_back(std::move(cover));
    subjects.push_back(geom::Circle({0, 0}, rng.Uniform(0.2, 1.2)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geom::DiskCoveredByUnion(subjects[i & 255], covers[i & 255]));
    ++i;
  }
}
BENCHMARK(BM_DiskUnionCoverage)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
