// Figure 13: queries resolved by one peer / multiple peers / the server as a
// function of the mobile host movement velocity (10..50 mph), Table 3
// parameter sets, 2x2-mile area, road network mode.
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace senn;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Figure 13: velocity sweep, 2x2 mi", args);
  double duration = args.full ? 3600.0 : 1800.0;
  std::vector<double> speeds{10, 15, 20, 25, 30, 35, 40, 45, 50};

  std::vector<sim::FigureSeries> series;
  for (sim::Region region : {sim::Region::kLosAngeles, sim::Region::kSyntheticSuburbia,
                             sim::Region::kRiverside}) {
    series.push_back(bench::RunSweep(
        sim::RegionName(region), sim::Table3(region), sim::MovementMode::kRoadNetwork,
        args, duration, speeds,
        [](sim::SimulationConfig* cfg, double mph) { cfg->params.velocity_mph = mph; }));
  }
  sim::PrintFigure("Figure 13: queries resolved vs. movement velocity (2x2 mi)",
                   "speed_mph", series);
  return 0;
}
