// Lint fixture: the compliant twin of l2_bad.cc — silence expected.
// Membership tests against unordered containers are the allowed idiom;
// anything whose order reaches output walks a sorted structure instead.
#include <set>
#include <unordered_set>
#include <vector>

std::vector<long> Dedup(const std::vector<long>& ids) {
  std::unordered_set<long> seen;
  std::vector<long> out;
  for (long id : ids) {  // iterates the input vector, not the set
    if (seen.insert(id).second) out.push_back(id);
  }
  return out;
}

bool Contains(const std::unordered_set<long>& seen, long id) {
  return seen.find(id) != seen.end();
}

std::vector<long> SortedIds(const std::set<long>& ordered) {
  return std::vector<long>(ordered.begin(), ordered.end());
}
