// Lint fixture: L4-pointer-order must fire on every marked line.
#include <functional>
#include <set>
#include <vector>

struct Poi {
  long id;
};

using PoiSet = std::set<const Poi*, std::less<const Poi*>>;  // LINT-BAD

struct ByAddress {
  bool operator()(const Poi* a, const Poi* b) const {
    return a < b;  // LINT-BAD
  }
};

void SortByAddress(std::vector<Poi*>* pois) {
  std::sort(pois->begin(), pois->end(),
            [](const Poi* a, const Poi* b) { return a < b; });  // LINT-BAD
}
