// Lint fixture: the compliant twin of l5_bad.cc — silence expected.
#include <cmath>

struct Candidate {
  long id;
  double distance;
};

bool NearlyEqual(double a, double b, double eps) { return std::fabs(a - b) <= eps; }

bool SameDistance(const Candidate& a, const Candidate& b) {
  return NearlyEqual(a.distance, b.distance, 1e-9);
}

// Ordering comparisons on distances are fine — only ==/!= is suspect.
bool Closer(double reach, double radius) { return reach < radius; }

// Integer id equality is fine.
bool SameId(const Candidate& a, const Candidate& b) { return a.id == b.id; }

// Null checks on pointer-to-double outputs are fine.
void MaybeStore(double value, double* out_distance) {
  if (out_distance != nullptr) *out_distance = value;
}
