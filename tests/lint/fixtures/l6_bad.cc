// Lint fixture: L6-pin-balance must fire on every marked line.
struct Page {
  long id;
};

struct BufferPool {
  Page* Fetch(long page_id);
  void Unpin(long page_id);
};

long ReadAndLeak(BufferPool* pool, long page_id) {
  Page* page = pool->Fetch(page_id);  // LINT-BAD
  return page->id;
}
