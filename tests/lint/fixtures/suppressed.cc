// Lint fixture: real violations carrying allow() suppressions — the run
// must report zero diagnostics, zero unused suppressions, and count the
// suppressions as used.
#include <algorithm>
#include <vector>

struct Candidate {
  long id;
  double distance;
};

void SortSameLine(std::vector<Candidate>* xs) {
  // senn-lint: allow(L1-raw-order): fixture — exercising own-line suppression.
  std::sort(xs->begin(), xs->end(),
            [](const Candidate& a, const Candidate& b) { return a.distance < b.distance; });
}

bool ExactTie(const Candidate& a, const Candidate& b) {
  return a.distance == b.distance;  // senn-lint: allow(L5-float-eq): fixture — same-line suppression.
}
