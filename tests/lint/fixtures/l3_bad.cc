// Lint fixture: L3-wallclock must fire on every marked line.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned EntropySeed() {
  std::random_device device;  // LINT-BAD
  return device();
}

long WallClockSeed() {
  return time(nullptr);  // LINT-BAD
}

int LibcDraw() {
  return rand();  // LINT-BAD
}

double NowSeconds() {
  auto now = std::chrono::steady_clock::now();  // LINT-BAD
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
