// L10-layering good twin, linted under the label "src/rtree/l10_good.cc":
// every include points down the layer DAG (common, geom) or sideways
// within band 2 (storage), which the band table allows.
#include "src/common/rank.h"
#include "src/geom/vec2.h"
#include "src/storage/buffer_pool.h"

int UsesAll() { return 0; }
