// L9-lock-discipline bad fixture: socket I/O and buffer-pool page faults
// under a mutex, a condvar wait with a second lock held, and a nested
// acquisition against declaration order. Violating lines are marked.
#include <condition_variable>
#include <mutex>

struct Pool {
  bool Fetch(int page);
  void Unpin(int page);
};

void SocketUnderLock(std::mutex& mu, int fd, char* buf) {
  std::lock_guard<std::mutex> lock(mu);
  ::read(fd, buf, 16);  // LINT-BAD: socket I/O can block under the lock
}

void WaitWithTwoLocks(std::mutex& a, std::mutex& b, std::condition_variable& cv) {
  std::unique_lock<std::mutex> la(a);
  std::lock_guard<std::mutex> lb(b);
  cv.wait(la);  // LINT-BAD: wait releases only 'a'; 'b' stays held
}

void FaultUnderLock(std::mutex& mu, Pool& pool) {
  std::lock_guard<std::mutex> lock(mu);
  pool.Fetch(3);  // LINT-BAD: page eviction/IO under a server lock
  pool.Unpin(3);
}

class Queue {
 public:
  void Push();

 private:
  std::mutex work_mu_;
  std::mutex done_mu_;
};

void Queue::Push() {
  std::lock_guard<std::mutex> first(done_mu_);
  std::lock_guard<std::mutex> second(work_mu_);  // LINT-BAD: against declaration order
}
