// Lint fixture: the compliant twin of l3_bad.cc — silence expected.
// Determinism-safe code draws from named Rng streams and reads sim time.
struct Rng {
  double Uniform();
};

struct Clock {
  double sim_time;  // member named `time` via accessor is fine too
  double time() const { return sim_time; }
};

double Draw(Rng* rng) { return rng->Uniform(); }

double Timestamp(const Clock& clock) { return clock.time(); }
