// Lint fixture: a suppression with no matching diagnostic must itself be
// reported (one unused suppression; run is not clean).
struct Candidate {
  long id;
  double distance;
};

bool ById(const Candidate& a, const Candidate& b) {
  // senn-lint: allow(L5-float-eq): stale — nothing on the next line trips L5.  LINT-UNUSED
  return a.id < b.id;
}
