// Lint fixture: the compliant twin of l6_bad.cc — silence expected.
struct Page {
  long id;
};

struct BufferPool {
  Page* Fetch(long page_id);
  void Unpin(long page_id);
};

struct PageGuard {
  PageGuard(BufferPool* pool, long page_id);
  ~PageGuard();
  Page* get() const;
};

long ReadWithUnpin(BufferPool* pool, long page_id) {
  Page* page = pool->Fetch(page_id);
  long id = page->id;
  pool->Unpin(page_id);
  return id;
}

long ReadWithGuard(BufferPool* pool, long page_id) {
  PageGuard guard(pool, page_id);
  return guard.get()->id;
}
