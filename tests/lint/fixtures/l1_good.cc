// Lint fixture: the compliant twin of l1_bad.cc — silence expected.
#include <algorithm>
#include <queue>
#include <vector>

struct RankedPoi {
  long id;
  double distance;
};

bool RanksBefore(const RankedPoi& a, const RankedPoi& b);

void SortByRank(std::vector<RankedPoi>* pois) {
  std::sort(pois->begin(), pois->end(),
            [](const RankedPoi& a, const RankedPoi& b) { return RanksBefore(a, b); });
}

void HeapByRank(std::vector<RankedPoi>* pois) {
  auto by_rank = [](const RankedPoi& a, const RankedPoi& b) { return RanksBefore(a, b); };
  std::make_heap(pois->begin(), pois->end(), by_rank);
}

struct ByRank {
  bool operator()(const RankedPoi& a, const RankedPoi& b) const { return RanksBefore(b, a); }
};

struct RankQueue {
  std::priority_queue<RankedPoi, std::vector<RankedPoi>, ByRank> queue;
};

// Sorting non-distance data with a raw comparator is fine.
void SortIds(std::vector<long>* ids) { std::sort(ids->begin(), ids->end()); }

// A value-only bag of scalars is fine too: only top() is ever read (as a
// pruning bound), so equal-key pop order is unobservable — no identity
// rides along that raw double ordering could leak.
struct DistanceBound {
  std::priority_queue<double> best_distances;
};
