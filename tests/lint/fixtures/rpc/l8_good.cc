// L8-untrusted-decode good twin: every decoded field passes a relational
// bounds check or a Validate*() call before arithmetic, indexing, or
// size-taking use — the FrameDecoder contract.
#include <cstdint>
#include <vector>

struct FrameHeader {
  uint32_t payload_len = 0;
  uint32_t opcode = 0;
};

struct KnnRequest {
  int32_t k = 0;
  double x = 0.0;
};

constexpr uint64_t kHeaderSize = 12;
constexpr uint32_t kMaxPayload = 4096;

void ReadFrameHeader(const uint8_t* bytes, FrameHeader* out);
bool DecodeKnnRequest(const uint8_t* bytes, KnnRequest* out);
bool ValidateKnnRequest(const KnnRequest& req);

void HandleFrame(const std::vector<uint8_t>& buf, std::vector<uint8_t>* out) {
  FrameHeader header;
  ReadFrameHeader(buf.data(), &header);
  if (header.payload_len > kMaxPayload) return;  // bounds check cleanses the field
  out->reserve(header.payload_len);
  uint64_t total = header.payload_len + kHeaderSize;
  (void)total;

  KnnRequest req;
  if (!DecodeKnnRequest(buf.data(), &req)) return;
  if (!ValidateKnnRequest(req)) return;  // Validate*() cleanses every field
  double scaled = req.x * 2.0;
  (void)scaled;
}
