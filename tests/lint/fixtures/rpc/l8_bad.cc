// L8-untrusted-decode bad fixture: decoded wire fields reach arithmetic,
// indexing, and size-taking calls before any Validate*() or relational
// bounds check. Violating lines are marked.
#include <cstdint>
#include <vector>

struct FrameHeader {
  uint32_t payload_len = 0;
  uint32_t opcode = 0;
};

constexpr uint64_t kHeaderSize = 12;

void ReadFrameHeader(const uint8_t* bytes, FrameHeader* out);

void HandleFrame(const std::vector<uint8_t>& buf, std::vector<uint8_t>* out) {
  FrameHeader header;
  ReadFrameHeader(buf.data(), &header);
  out->reserve(header.payload_len);                     // LINT-BAD: size-taking call
  uint64_t total = header.payload_len + kHeaderSize;    // LINT-BAD: arithmetic
  uint8_t tag = buf[header.opcode];                     // LINT-BAD: indexing
  (void)total;
  (void)tag;
}
