// Lint fixture: L5-float-eq must fire on every marked line.
struct Candidate {
  long id;
  double distance;
};

bool SameDistance(const Candidate& a, const Candidate& b) {
  return a.distance == b.distance;  // LINT-BAD
}

bool DistanceChanged(double old_dist, double new_dist) {
  return old_dist != new_dist;  // LINT-BAD
}

bool AtRadius(double reach, double radius) {
  return reach == radius;  // LINT-BAD
}
