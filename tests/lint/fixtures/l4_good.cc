// Lint fixture: the compliant twin of l4_bad.cc — silence expected.
// Comparators dereference and compare stable ids, never addresses.
#include <algorithm>
#include <set>
#include <vector>

struct Poi {
  long id;
};

struct ById {
  bool operator()(const Poi* a, const Poi* b) const { return a->id < b->id; }
};

using PoiSet = std::set<const Poi*, ById>;

void SortById(std::vector<Poi*>* pois) {
  std::sort(pois->begin(), pois->end(),
            [](const Poi* a, const Poi* b) { return a->id < b->id; });
}

// Pointer equality (identity) is fine; only ordering is banned.
bool SameObject(const Poi* a, const Poi* b) { return a == b; }
