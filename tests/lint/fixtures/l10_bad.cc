// L10-layering bad fixture. Linted under the label "src/rtree/l10_bad.cc"
// (the band table keys off the path, so the fixture test supplies a
// banded one): rtree sits in band 2 and must not include core (band 3).
#include "src/core/types.h"  // LINT-BAD: rtree (band 2) -> core (band 3) is upward
#include "src/geom/vec2.h"

int UsesBoth() { return 0; }
