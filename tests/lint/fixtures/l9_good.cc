// L9-lock-discipline good twin: blocking work happens outside every lock
// (or after an explicit unlock), a condvar wait holds only its own lock,
// and nested acquisitions follow mutex declaration order.
#include <condition_variable>
#include <mutex>
#include <vector>

struct Pool {
  bool Fetch(int page);
  void Unpin(int page);
};

void SocketAfterUnlock(std::mutex& mu, std::vector<int>& queue, int fd, char* buf) {
  std::unique_lock<std::mutex> lock(mu);
  queue.push_back(fd);
  lock.unlock();
  ::read(fd, buf, 16);  // the region ended at unlock()
}

void WaitWithOwnLock(std::mutex& a, std::condition_variable& cv) {
  std::unique_lock<std::mutex> la(a);
  cv.wait(la);
}

void FaultBeforeLock(std::mutex& mu, Pool& pool, std::vector<int>& pages) {
  pool.Fetch(3);
  pool.Unpin(3);
  std::lock_guard<std::mutex> lock(mu);
  pages.push_back(3);
}

class Queue {
 public:
  void Push();

 private:
  std::mutex work_mu_;
  std::mutex done_mu_;
};

void Queue::Push() {
  std::lock_guard<std::mutex> first(work_mu_);
  std::lock_guard<std::mutex> second(done_mu_);  // declaration order respected
}
