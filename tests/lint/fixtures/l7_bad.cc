// L7-rng-stream bad fixture: draws from generators that are not named
// streams, and draws gated on a prior draw's outcome (the PR-6 stream
// desync class). Violating lines are marked.
#include <cstdint>

struct Rng {
  Rng Stream(const char* domain, uint64_t id);
  Rng Split();
  uint64_t NextU64();
  double Uniform(double lo, double hi);
  double Exponential(double mean);
  bool Bernoulli(double p);
};

uint64_t ChainedSplit(Rng& parent) {
  return parent.Split().NextU64();  // LINT-BAD: Split() chain is order-dependent
}

double RawLocal(Rng& parent) {
  Rng bare;
  Rng forked = parent.Split();
  double a = bare.Uniform(0.0, 1.0);      // LINT-BAD: bare is not stream-derived
  double b = forked.Exponential(2.0);     // LINT-BAD: forked comes from Split()
  return a + b;
}

double OutcomeGated(Rng& parent) {
  Rng rng = parent.Stream("host", 7);
  bool lost = rng.Bernoulli(0.5);
  double cost = 0.0;
  if (lost) {
    cost = rng.Exponential(2.0);  // LINT-BAD: draw gated on a draw outcome
  } else {
    cost = rng.Uniform(0.0, 1.0);  // LINT-BAD: the else arm desyncs too
  }
  return cost;
}
