// Lint fixture: L2-unordered-iter must fire on every marked line.
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::vector<long> DumpIds(const std::unordered_set<long>& seen) {
  std::vector<long> out;
  for (long id : seen) {  // LINT-BAD
    out.push_back(id);
  }
  return out;
}

long SumViaIterators(const std::unordered_map<long, long>& counts) {
  long total = 0;
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // LINT-BAD
    total += it->second;
  }
  return total;
}
