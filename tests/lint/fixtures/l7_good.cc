// L7-rng-stream good twin: every draw comes from a named stream (or from a
// parameter, whose stream contract belongs to the caller), and branches on
// a draw outcome consume nothing — the dependent value is drawn eagerly
// before the branch and discarded when unused.
#include <cstdint>

struct Rng {
  Rng Stream(const char* domain, uint64_t id);
  uint64_t NextU64();
  double Uniform(double lo, double hi);
  double Exponential(double mean);
  bool Bernoulli(double p);
};

uint64_t ChainedStream(Rng& parent) {
  return parent.Stream("net", 3).NextU64();
}

double NamedLocal(Rng& parent) {
  Rng rng = parent.Stream("host", 7);
  return rng.Uniform(0.0, 1.0);
}

double CallerOwnedParam(Rng& rng) {
  return rng.Exponential(2.0);
}

double EagerThenBranch(Rng& parent) {
  Rng rng = parent.Stream("host", 7);
  bool lost = rng.Bernoulli(0.5);
  double cost = rng.Exponential(2.0);  // drawn unconditionally: stream stays in sync
  if (lost) {
    return cost;
  }
  return 0.0;
}
