// Lint fixture: L1-raw-order must fire on every marked line.
// Not compiled into any target — senn_lint fodder only.
#include <algorithm>
#include <queue>
#include <vector>

struct RankedPoi {
  long id;
  double distance;
};

void SortByDistanceOnly(std::vector<RankedPoi>* pois) {
  std::sort(pois->begin(), pois->end(),  // LINT-BAD
            [](const RankedPoi& a, const RankedPoi& b) { return a.distance < b.distance; });
}

void HeapByDistanceOnly(std::vector<RankedPoi>* pois) {
  auto by_distance = [](const RankedPoi& a, const RankedPoi& b) {
    return a.distance < b.distance;
  };
  std::make_heap(pois->begin(), pois->end(), by_distance);  // LINT-BAD
}

struct DistanceQueue {
  std::priority_queue<RankedPoi> nearest;  // LINT-BAD
};
