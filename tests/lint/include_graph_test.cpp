// Unit tests for the L10-layering half of senn_lint: include extraction,
// the layer band table, upward-edge findings, and the include-cycle hard
// error — all driven over synthetic sources, no filesystem involved.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "tools/lint/include_graph.h"
#include "tools/lint/lint.h"

namespace {

using senn_lint::CheckIncludeCycles;
using senn_lint::CheckLayering;
using senn_lint::CollectIncludes;
using senn_lint::Diagnostic;
using senn_lint::IncludeEdge;
using senn_lint::LayerBand;
using senn_lint::LintFiles;
using senn_lint::RunResult;
using senn_lint::SourceFile;

TEST(CollectIncludes, QuotedIncludesWithLines) {
  const std::string source =
      "// header comment\n"
      "#include \"src/geom/vec2.h\"\n"
      "#include <vector>\n"
      "\n"
      "  #include \"src/common/rank.h\"\n";
  const std::vector<IncludeEdge> includes = CollectIncludes(source);
  ASSERT_EQ(includes.size(), 2u);
  EXPECT_EQ(includes[0].target, "src/geom/vec2.h");
  EXPECT_EQ(includes[0].line, 2);
  EXPECT_EQ(includes[1].target, "src/common/rank.h");
  EXPECT_EQ(includes[1].line, 5);
}

TEST(LayerBands, TableMatchesTheArchitectureDag) {
  EXPECT_EQ(LayerBand("src/common/rank.h"), 0);
  EXPECT_EQ(LayerBand("src/geom/vec2.h"), 1);
  EXPECT_EQ(LayerBand("src/obs/metrics.h"), 1);
  EXPECT_EQ(LayerBand("src/rtree/knn.cc"), 2);
  EXPECT_EQ(LayerBand("src/storage/buffer_pool.h"), 2);
  EXPECT_EQ(LayerBand("src/net/channel.h"), 2);
  EXPECT_EQ(LayerBand("src/core/types.h"), 3);
  EXPECT_EQ(LayerBand("src/roadnet/graph.h"), 3);
  EXPECT_EQ(LayerBand("src/cache/lru.h"), 4);
  EXPECT_EQ(LayerBand("src/mobility/mover.h"), 4);
  EXPECT_EQ(LayerBand("src/rpc/server.h"), 5);
  EXPECT_EQ(LayerBand("src/sim/simulator.cc"), 5);
  EXPECT_EQ(LayerBand("tools/lint/lint.cc"), 6);
  // Outside the banded tree: tests, fixtures, external paths.
  EXPECT_EQ(LayerBand("tests/lint/lint_test.cpp"), -1);
  EXPECT_EQ(LayerBand("fixtures/l10_bad.cc"), -1);
}

TEST(Layering, DownwardAndSidewaysEdgesAreSilent) {
  std::vector<Diagnostic> sink;
  CheckLayering("src/rpc/server.h",
                {{1, "src/common/status.h"},
                 {2, "src/core/server.h"},
                 {3, "src/rpc/wire.h"}},
                &sink);
  // storage -> rtree is sideways within band 2.
  CheckLayering("src/storage/pager.h", {{1, "src/rtree/rstar_tree.h"}}, &sink);
  // core <-> roadnet share band 3 by design.
  CheckLayering("src/core/server.h", {{1, "src/roadnet/graph.h"}}, &sink);
  EXPECT_TRUE(sink.empty());
}

TEST(Layering, UpwardEdgeIsAFinding) {
  std::vector<Diagnostic> sink;
  CheckLayering("src/rtree/knn.cc", {{7, "src/core/types.h"}}, &sink);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0].rule, "L10-layering");
  EXPECT_EQ(sink[0].line, 7);
  EXPECT_FALSE(sink[0].hard);
  EXPECT_NE(sink[0].message.find("rtree"), std::string::npos);
  EXPECT_NE(sink[0].message.find("core"), std::string::npos);
}

TEST(Layering, UnknownLayersAreIgnored) {
  std::vector<Diagnostic> sink;
  // Unbanded includer, unbanded target, and a banded file including an
  // unbanded header: none of these can violate the DAG.
  CheckLayering("tests/lint/lint_test.cpp", {{1, "src/rpc/server.h"}}, &sink);
  CheckLayering("src/common/rank.h", {{1, "third_party/foo.h"}}, &sink);
  EXPECT_TRUE(sink.empty());
}

TEST(Cycles, TwoFileCycleIsAHardErrorAtEveryMember) {
  std::map<std::string, std::vector<IncludeEdge>> graph;
  graph["src/core/a.h"] = {{3, "src/core/b.h"}};
  graph["src/core/b.h"] = {{4, "src/core/a.h"}};
  graph["src/core/leaf.h"] = {};
  const std::vector<Diagnostic> diags = CheckIncludeCycles(graph);
  ASSERT_EQ(diags.size(), 2u);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "L10-layering");
    EXPECT_TRUE(d.hard) << d.file;
    EXPECT_NE(d.message.find("cycle"), std::string::npos);
  }
}

TEST(Cycles, EdgesOutOfTheScanSetAreIgnored) {
  std::map<std::string, std::vector<IncludeEdge>> graph;
  graph["src/core/a.h"] = {{1, "src/core/not_scanned.h"}};
  EXPECT_TRUE(CheckIncludeCycles(graph).empty());
}

// End-to-end through LintFiles: a synthetic three-file tree where one file
// includes upward and two form a cycle. The cycle diagnostics must survive
// an allow() suppression (hard errors are not suppressible).
TEST(LintFilesLayering, SyntheticTreeEndToEnd) {
  std::vector<SourceFile> files;
  files.push_back({"src/geom/shape.h",
                   "#include \"src/common/rank.h\"\n"
                   "inline int Shape() { return 1; }\n"});
  files.push_back({"src/common/rank.h", "inline int Rank() { return 0; }\n"});
  files.push_back({"src/rtree/node.h",
                   "// senn-lint: allow(L10-layering): trying to hide the cycle\n"
                   "#include \"src/storage/page.h\"\n"
                   "#include \"src/core/types.h\"\n"});
  files.push_back({"src/storage/page.h", "#include \"src/rtree/node.h\"\n"});
  files.push_back({"src/core/types.h", "inline int T() { return 2; }\n"});
  const RunResult run = LintFiles(files);

  int upward = 0;
  int cycle = 0;
  for (const Diagnostic& d : run.diagnostics) {
    EXPECT_EQ(d.rule, "L10-layering");
    if (d.message.find("cycle") != std::string::npos) {
      EXPECT_TRUE(d.hard);
      ++cycle;
    } else {
      ++upward;
    }
  }
  // rtree -> core is the one upward edge (rtree <-> storage is sideways);
  // the node.h/page.h cycle is reported at both members despite the
  // allow() annotation sitting above node.h's includes.
  EXPECT_EQ(upward, 1);
  EXPECT_EQ(cycle, 2);
  EXPECT_FALSE(run.Clean());
}

}  // namespace
