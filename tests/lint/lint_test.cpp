// Fixture-driven tests for the senn_lint rule engine (tools/lint/).
//
// Each rule has a bad fixture whose violating lines are tagged with a
// `LINT-BAD` marker comment and a good twin that must stay silent. The
// tests derive the expected line numbers from the markers, so a fixture
// edit cannot silently drift out of sync with the assertions.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace {

using senn_lint::FileReport;
using senn_lint::LintPaths;
using senn_lint::LintSource;
using senn_lint::RunResult;

std::string FixturePath(const std::string& name) {
  return std::string(SENN_LINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name));
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// 1-based line numbers of every line containing `marker`.
std::set<int> MarkedLines(const std::string& source, const std::string& marker) {
  std::set<int> lines;
  std::istringstream in(source);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.find(marker) != std::string::npos) lines.insert(number);
  }
  return lines;
}

// A bad/good fixture twin. `bad_label`/`good_label`, when set, override the
// file path the engine sees: the path-gated rules (L8 keys off "rpc/", L10
// off the src/<layer>/ band table) need a path shaped like the real tree,
// while the fixture itself lives flat in the fixture directory.
struct RuleFixture {
  std::string rule;
  std::string bad;
  std::string good;
  std::string bad_label = "";
  std::string good_label = "";
};

const std::vector<RuleFixture>& Fixtures() {
  static const std::vector<RuleFixture> kFixtures = {
      {"L1-raw-order", "l1_bad.cc", "l1_good.cc"},
      {"L2-unordered-iter", "l2_bad.cc", "l2_good.cc"},
      {"L3-wallclock", "l3_bad.cc", "l3_good.cc"},
      {"L4-pointer-order", "l4_bad.cc", "l4_good.cc"},
      {"L5-float-eq", "l5_bad.cc", "l5_good.cc"},
      {"L6-pin-balance", "l6_bad.cc", "l6_good.cc"},
      {"L7-rng-stream", "l7_bad.cc", "l7_good.cc"},
      {"L8-untrusted-decode", "rpc/l8_bad.cc", "rpc/l8_good.cc"},
      {"L9-lock-discipline", "l9_bad.cc", "l9_good.cc"},
      {"L10-layering", "l10_bad.cc", "l10_good.cc", "src/rtree/l10_bad.cc",
       "src/rtree/l10_good.cc"},
  };
  return kFixtures;
}

TEST(LintRules, BadFixturesFireOnExactlyTheMarkedLines) {
  for (const RuleFixture& fixture : Fixtures()) {
    SCOPED_TRACE(fixture.bad);
    const std::string source = ReadFixture(fixture.bad);
    const std::set<int> expected = MarkedLines(source, "LINT-BAD");
    ASSERT_FALSE(expected.empty()) << "fixture has no LINT-BAD markers";

    const std::string label = fixture.bad_label.empty() ? fixture.bad : fixture.bad_label;
    const FileReport report = LintSource(label, source);
    std::set<int> actual;
    for (const auto& diag : report.diagnostics) {
      EXPECT_EQ(diag.rule, fixture.rule) << "unexpected rule at line " << diag.line;
      EXPECT_FALSE(diag.message.empty());
      actual.insert(diag.line);
    }
    EXPECT_EQ(actual, expected);
  }
}

TEST(LintRules, GoodTwinsStaySilent) {
  for (const RuleFixture& fixture : Fixtures()) {
    SCOPED_TRACE(fixture.good);
    const std::string label =
        fixture.good_label.empty() ? fixture.good : fixture.good_label;
    const FileReport report = LintSource(label, ReadFixture(fixture.good));
    for (const auto& diag : report.diagnostics) {
      ADD_FAILURE() << fixture.good << ":" << diag.line << " [" << diag.rule << "] "
                    << diag.message;
    }
  }
}

TEST(LintSuppressions, AllowAnnotationsSilenceAndAreMarkedUsed) {
  const FileReport report = LintSource("suppressed.cc", ReadFixture("suppressed.cc"));
  EXPECT_TRUE(report.diagnostics.empty());
  ASSERT_EQ(report.suppressions.size(), 2u);
  for (const auto& s : report.suppressions) {
    EXPECT_TRUE(s.used) << "allow(" << s.rule << ") at line " << s.line;
    EXPECT_FALSE(s.justification.empty());
  }
}

TEST(LintSuppressions, StaleAllowIsReportedAtItsOwnLine) {
  const std::string source = ReadFixture("unused_suppression.cc");
  const std::set<int> expected = MarkedLines(source, "LINT-UNUSED");
  ASSERT_EQ(expected.size(), 1u);

  const FileReport report = LintSource("unused_suppression.cc", source);
  EXPECT_TRUE(report.diagnostics.empty());
  ASSERT_EQ(report.suppressions.size(), 1u);
  EXPECT_FALSE(report.suppressions[0].used);
  EXPECT_EQ(report.suppressions[0].line, *expected.begin());

  RunResult run = LintPaths({FixturePath("unused_suppression.cc")});
  EXPECT_EQ(run.UnusedSuppressions().size(), 1u);
  EXPECT_FALSE(run.Clean());
}

TEST(LintRun, FixtureDirectoryIsNotCleanButGoodSubsetIs) {
  const RunResult dirty = LintPaths({std::string(SENN_LINT_FIXTURE_DIR)});
  EXPECT_FALSE(dirty.Clean());
  EXPECT_GE(dirty.files_scanned, 22);

  std::vector<std::string> good_paths;
  for (const RuleFixture& fixture : Fixtures()) good_paths.push_back(FixturePath(fixture.good));
  const RunResult clean = LintPaths(good_paths);
  EXPECT_TRUE(clean.Clean()) << senn_lint::ToHuman(clean);
  EXPECT_EQ(clean.files_scanned, 10);
}

TEST(LintRun, MissingInputsAreReportedAndBreakCleanliness) {
  const RunResult run = LintPaths({FixturePath("does_not_exist.cc")});
  ASSERT_EQ(run.missing_files.size(), 1u);
  EXPECT_FALSE(run.Clean());
}

TEST(LintJson, SchemaCarriesEveryAdvertisedKey) {
  const RunResult run = LintPaths({std::string(SENN_LINT_FIXTURE_DIR)});
  const std::string json = senn_lint::ToJson(run);
  for (const char* key :
       {"\"version\":1", "\"files_scanned\"", "\"diagnostics\"", "\"rule\"", "\"file\"",
        "\"line\"", "\"message\"", "\"unused_suppressions\"", "\"suppressions_used\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in:\n" << json;
  }
  // Diagnostics are emitted in sorted file order — the report itself obeys L2.
  const size_t l1 = json.find("l1_bad.cc");
  const size_t l6 = json.find("l6_bad.cc");
  ASSERT_NE(l1, std::string::npos);
  ASSERT_NE(l6, std::string::npos);
  EXPECT_LT(l1, l6);
}

TEST(LintRegistry, TenRulesInOrder) {
  const auto table = senn_lint::RuleTable();
  ASSERT_EQ(table.size(), 10u);
  const char* expected[] = {"L1-raw-order",   "L2-unordered-iter",   "L3-wallclock",
                            "L4-pointer-order", "L5-float-eq",       "L6-pin-balance",
                            "L7-rng-stream",  "L8-untrusted-decode", "L9-lock-discipline",
                            "L10-layering"};
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(table[i].first, expected[i]);
    EXPECT_FALSE(table[i].second.empty());
  }
}

}  // namespace
