#include "src/geom/angular.h"

#include <gtest/gtest.h>

#include <cmath>

namespace senn::geom {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

TEST(AngularTest, EmptySet) {
  AngularIntervalSet s;
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_FALSE(s.CoversFullCircle());
  EXPECT_DOUBLE_EQ(s.Measure(), 0.0);
}

TEST(AngularTest, SingleArcMeasure) {
  AngularIntervalSet s;
  s.AddArc(0.5, 1.5);
  EXPECT_FALSE(s.IsEmpty());
  EXPECT_FALSE(s.CoversFullCircle());
  EXPECT_NEAR(s.Measure(), 1.0, 1e-12);
}

TEST(AngularTest, WrappingArcSplits) {
  AngularIntervalSet s;
  s.AddArc(kTwoPi - 0.3, kTwoPi + 0.4);  // wraps across 0
  EXPECT_NEAR(s.Measure(), 0.7, 1e-12);
  auto ivs = s.Intervals();
  ASSERT_EQ(ivs.size(), 2u);
}

TEST(AngularTest, WrappedInputArcAccepted) {
  // Callers that pre-normalize both endpoints into [0, 2pi) hand us arcs with
  // end < begin. These straddle 0 and must not be dropped.
  AngularIntervalSet s;
  s.AddArc(kTwoPi - 0.3, 0.4);
  EXPECT_NEAR(s.Measure(), 0.7, 1e-12);
  EXPECT_EQ(s.Intervals().size(), 2u);
}

TEST(AngularTest, WrappedInputMatchesUnwrappedEquivalent) {
  AngularIntervalSet wrapped, unwrapped;
  wrapped.AddArc(kTwoPi - 1.0, 0.5);
  unwrapped.AddArc(kTwoPi - 1.0, kTwoPi + 0.5);
  EXPECT_NEAR(wrapped.Measure(), unwrapped.Measure(), 1e-12);
  auto a = wrapped.Intervals(1e-12);
  auto b = unwrapped.Intervals(1e-12);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].begin, b[i].begin, 1e-12);
    EXPECT_NEAR(a[i].end, b[i].end, 1e-12);
  }
}

TEST(AngularTest, CoverageCompletesAcrossZero) {
  // A wrapped arc plus the complementary interior arc must close the circle.
  AngularIntervalSet s;
  s.AddArc(kTwoPi - 0.3, 0.4);  // wrapped input: covers [2pi-0.3, 2pi) u [0, 0.4)
  s.AddArc(0.3, kTwoPi - 0.2);
  EXPECT_TRUE(s.CoversFullCircle(1e-9));
}

TEST(AngularTest, WrappedInputLeavesGapDetectable) {
  AngularIntervalSet s;
  s.AddArc(kTwoPi - 0.3, 0.4);
  s.AddArc(0.5, kTwoPi - 0.4);  // gaps at [0.4, 0.5) and [2pi-0.4, 2pi-0.3)
  EXPECT_FALSE(s.CoversFullCircle(1e-6));
  EXPECT_NEAR(s.Measure(), kTwoPi - 0.2, 1e-9);
}

TEST(AngularTest, NegativeAnglesNormalize) {
  AngularIntervalSet s;
  s.AddArc(-0.5, 0.5);
  EXPECT_NEAR(s.Measure(), 1.0, 1e-12);
}

TEST(AngularTest, OverlappingArcsMerge) {
  AngularIntervalSet s;
  s.AddArc(0.0, 1.0);
  s.AddArc(0.5, 2.0);
  EXPECT_NEAR(s.Measure(), 2.0, 1e-12);
  EXPECT_EQ(s.Intervals(1e-12).size(), 1u);
}

TEST(AngularTest, FullCoverageFromPieces) {
  AngularIntervalSet s;
  s.AddArc(0.0, 2.5);
  s.AddArc(2.4, 5.0);
  s.AddArc(4.9, kTwoPi);
  EXPECT_TRUE(s.CoversFullCircle());
}

TEST(AngularTest, GapDetected) {
  AngularIntervalSet s;
  s.AddArc(0.0, 3.0);
  s.AddArc(3.1, kTwoPi);
  EXPECT_FALSE(s.CoversFullCircle(1e-6));
  EXPECT_TRUE(s.CoversFullCircle(0.2));  // tolerance above the gap width
}

TEST(AngularTest, AddFull) {
  AngularIntervalSet s;
  s.AddFull();
  EXPECT_TRUE(s.CoversFullCircle());
  EXPECT_NEAR(s.Measure(), kTwoPi, 1e-12);
}

TEST(AngularTest, CenteredArcWidth) {
  AngularIntervalSet s;
  s.AddCenteredArc(1.0, 0.25);
  EXPECT_NEAR(s.Measure(), 0.5, 1e-12);
}

TEST(AngularTest, CenteredArcHalfWidthPiIsFull) {
  AngularIntervalSet s;
  s.AddCenteredArc(2.0, M_PI);
  EXPECT_TRUE(s.CoversFullCircle());
}

TEST(AngularTest, CenteredArcNonPositiveWidthIsEmpty) {
  AngularIntervalSet s;
  s.AddCenteredArc(2.0, 0.0);
  EXPECT_TRUE(s.IsEmpty());
}

TEST(AngularTest, ComplementOfArc) {
  AngularIntervalSet s;
  s.AddArc(1.0, 2.0);
  AngularIntervalSet c = s.Complement();
  EXPECT_NEAR(c.Measure(), kTwoPi - 1.0, 1e-12);
  // Complement of the complement restores the measure.
  EXPECT_NEAR(c.Complement().Measure(), 1.0, 1e-12);
}

TEST(AngularTest, ComplementOfEmptyIsFull) {
  AngularIntervalSet s;
  EXPECT_TRUE(s.Complement().CoversFullCircle());
}

TEST(AngularTest, SubtractRemovesCoveredPart) {
  AngularIntervalSet s, hole;
  s.AddArc(0.0, 3.0);
  hole.AddArc(1.0, 2.0);
  AngularIntervalSet diff = s.Subtract(hole);
  EXPECT_NEAR(diff.Measure(), 2.0, 1e-12);
  AngularIntervalSet all;
  all.AddFull();
  EXPECT_TRUE(s.Subtract(all).IsEmpty());
}

TEST(AngularTest, SubtractWithWrappingHole) {
  AngularIntervalSet s, hole;
  s.AddFull();
  hole.AddArc(-0.5, 0.5);  // wraps
  AngularIntervalSet diff = s.Subtract(hole);
  EXPECT_NEAR(diff.Measure(), kTwoPi - 1.0, 1e-9);
}

TEST(AngularTest, SubtractDisjointLeavesUnchanged) {
  AngularIntervalSet s, hole;
  s.AddArc(0.0, 1.0);
  hole.AddArc(2.0, 3.0);
  EXPECT_NEAR(s.Subtract(hole).Measure(), 1.0, 1e-12);
}

TEST(AngularTest, MeasureIsCappedAtFullCircle) {
  AngularIntervalSet s;
  s.AddArc(0.0, 4.0);
  s.AddArc(3.0, kTwoPi);
  EXPECT_NEAR(s.Measure(), kTwoPi, 1e-12);
}

}  // namespace
}  // namespace senn::geom
