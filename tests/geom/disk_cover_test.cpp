#include "src/geom/disk_cover.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace senn::geom {
namespace {

// Reference implementation: dense sampling of the subject disk. Samples on a
// polar grid; any uncovered sample proves non-coverage.
bool SampledCovered(const Circle& subject, const std::vector<Circle>& cover,
                    int rings = 48, int spokes = 96) {
  for (int i = 0; i <= rings; ++i) {
    double r = subject.radius * i / rings;
    int n = (i == 0) ? 1 : spokes;
    for (int j = 0; j < n; ++j) {
      double a = 2.0 * M_PI * j / n;
      Vec2 p = subject.center + Vec2{r * std::cos(a), r * std::sin(a)};
      bool inside_any = false;
      for (const Circle& c : cover) {
        if (c.Contains(p, 1e-9)) {
          inside_any = true;
          break;
        }
      }
      if (!inside_any) return false;
    }
  }
  return true;
}

TEST(ArcInsideDiskTest, FullWhenContained) {
  Circle subject({0, 0}, 1.0);
  Circle big({0.1, 0}, 5.0);
  EXPECT_TRUE(ArcInsideDisk(subject, big).CoversFullCircle());
}

TEST(ArcInsideDiskTest, EmptyWhenDisjoint) {
  Circle subject({0, 0}, 1.0);
  Circle far({10, 0}, 2.0);
  EXPECT_TRUE(ArcInsideDisk(subject, far).IsEmpty());
}

TEST(ArcInsideDiskTest, EmptyWhenDiskStrictlyInsideSubject) {
  Circle subject({0, 0}, 5.0);
  Circle inner({1, 0}, 1.0);
  EXPECT_TRUE(ArcInsideDisk(subject, inner).IsEmpty());
}

TEST(ArcInsideDiskTest, HalfCoverageGeometry) {
  // Two unit circles with centers sqrt(2) apart intersect at right angles:
  // each boundary has a quarter... actually the arc half-width satisfies
  // cos(h) = d/(2r) scaled; verify against the analytic formula.
  Circle subject({0, 0}, 1.0);
  Circle other({1.2, 0}, 1.0);
  AngularIntervalSet arc = ArcInsideDisk(subject, other);
  double expected_half = std::acos((1.2 * 1.2) / (2 * 1.2 * 1.0));
  EXPECT_NEAR(arc.Measure(), 2 * expected_half, 1e-9);
}

TEST(ArcInsideDiskTest, ArcIsCenteredTowardDiskCenter) {
  Circle subject({0, 0}, 1.0);
  Circle other({0, 1.0}, 0.8);  // above: arc should straddle angle pi/2
  AngularIntervalSet arc = ArcInsideDisk(subject, other);
  ASSERT_FALSE(arc.IsEmpty());
  // The boundary point at angle pi/2 (0,1) is inside `other`.
  bool covers_up = false;
  for (const auto& iv : arc.Intervals()) {
    if (iv.begin <= M_PI / 2 && M_PI / 2 <= iv.end) covers_up = true;
  }
  EXPECT_TRUE(covers_up);
}

TEST(DiskCoverTest, EmptyCoverNeverCovers) {
  EXPECT_FALSE(DiskCoveredByUnion(Circle({0, 0}, 1.0), {}));
  EXPECT_FALSE(DiskCoveredByUnion(Circle({0, 0}, 0.0), {}));
}

TEST(DiskCoverTest, SingleContainingDisk) {
  Circle subject({0, 0}, 1.0);
  EXPECT_TRUE(DiskCoveredByUnion(subject, {Circle({0.5, 0}, 2.0)}));
  EXPECT_FALSE(DiskCoveredByUnion(subject, {Circle({0.5, 0}, 1.2)}));
}

TEST(DiskCoverTest, ExactTangentContainmentCovers) {
  // Inner tangency: |d| + r_subject == r_cover exactly.
  Circle subject({1.0, 0}, 1.0);
  EXPECT_TRUE(DiskCoveredByUnion(subject, {Circle({0, 0}, 2.0)}));
}

TEST(DiskCoverTest, PointSubject) {
  Circle point({3, 4}, 0.0);
  EXPECT_TRUE(DiskCoveredByUnion(point, {Circle({3, 5}, 1.0)}));
  EXPECT_FALSE(DiskCoveredByUnion(point, {Circle({3, 6}, 1.0)}));
}

TEST(DiskCoverTest, TwoHalvesCoverWhenOverlapping) {
  // Two disks of radius 1.5 centered left/right of a unit subject disk.
  Circle subject({0, 0}, 1.0);
  std::vector<Circle> cover{Circle({-0.8, 0}, 1.5), Circle({0.8, 0}, 1.5)};
  EXPECT_TRUE(DiskCoveredByUnion(subject, cover));
  EXPECT_TRUE(SampledCovered(subject, cover));
}

TEST(DiskCoverTest, TwoDisksLeaveLens) {
  // Pull the two disks apart until the middle is exposed.
  Circle subject({0, 0}, 1.0);
  std::vector<Circle> cover{Circle({-1.2, 0}, 1.5), Circle({1.2, 0}, 1.5)};
  EXPECT_FALSE(SampledCovered(subject, cover));
  EXPECT_FALSE(DiskCoveredByUnion(subject, cover));
}

TEST(DiskCoverTest, ThreePetalsWithCenterHole) {
  // Three disks arranged symmetrically covering the subject boundary but
  // leaving a curved-triangle hole at the center: condition (b) must fire.
  // Petal at distance 1.2 with radius 1.15 subtends a boundary arc of
  // 2*acos((1.44 + 1 - 1.3225) / 2.4) ~ 124.5 degrees > 120, so three petals
  // cover the boundary, while the center (1.2 > 1.15 away) stays uncovered.
  Circle subject({0, 0}, 1.0);
  std::vector<Circle> cover;
  for (int i = 0; i < 3; ++i) {
    double a = 2.0 * M_PI * i / 3;
    cover.push_back(Circle({1.2 * std::cos(a), 1.2 * std::sin(a)}, 1.15));
  }
  // Boundary of the subject is covered...
  AngularIntervalSet boundary;
  for (const Circle& c : cover) {
    for (const auto& iv : ArcInsideDisk(subject, c).Intervals()) {
      boundary.AddArc(iv.begin, iv.end);
    }
  }
  ASSERT_TRUE(boundary.CoversFullCircle(1e-9));
  // ...but the center is not.
  EXPECT_FALSE(cover[0].Contains({0, 0}));
  EXPECT_FALSE(DiskCoveredByUnion(subject, cover));
  EXPECT_FALSE(SampledCovered(subject, cover));
}

TEST(DiskCoverTest, ThreePetalsPlusCenterPlugCovers) {
  Circle subject({0, 0}, 1.0);
  std::vector<Circle> cover;
  for (int i = 0; i < 3; ++i) {
    double a = 2.0 * M_PI * i / 3;
    cover.push_back(Circle({1.2 * std::cos(a), 1.2 * std::sin(a)}, 1.15));
  }
  // The central hole extends to ~0.107 in the directions between petals;
  // a radius-0.4 plug closes it.
  cover.push_back(Circle({0, 0}, 0.4));
  EXPECT_TRUE(SampledCovered(subject, cover));
  EXPECT_TRUE(DiskCoveredByUnion(subject, cover));
}

TEST(DiskCoverTest, IrrelevantFarDisksIgnored) {
  Circle subject({0, 0}, 1.0);
  std::vector<Circle> cover{Circle({0, 0}, 1.5), Circle({100, 100}, 0.5)};
  EXPECT_TRUE(DiskCoveredByUnion(subject, cover));
}

TEST(DiskCoverTest, ZeroRadiusCoverDisksAreHarmless) {
  Circle subject({0, 0}, 1.0);
  std::vector<Circle> cover{Circle({0.2, 0}, 0.0), Circle({0, 0}, 2.0)};
  EXPECT_TRUE(DiskCoveredByUnion(subject, cover));
}

// Randomized cross-check against dense sampling using a robustness margin:
// configurations where shrinking every covering disk by `margin` still leaves
// the subject sample-covered are robustly covered (the analytic test must say
// yes); configurations where even inflating every disk by `margin` leaves a
// sampled hole are robustly uncovered (the analytic test must say no).
// Near-degenerate cases in between are skipped — sampling cannot referee them.
TEST(DiskCoverTest, RandomizedAgreesWithSampling) {
  Rng rng(20060406);
  const double margin = 2e-2;
  int robust_covered = 0, robust_uncovered = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Circle subject({0, 0}, rng.Uniform(0.3, 1.5));
    int m = static_cast<int>(rng.UniformInt(1, 6));
    std::vector<Circle> cover, shrunk, inflated;
    for (int i = 0; i < m; ++i) {
      Circle c({rng.Uniform(-1.5, 1.5), rng.Uniform(-1.5, 1.5)}, rng.Uniform(0.2, 1.8));
      cover.push_back(c);
      shrunk.push_back(Circle(c.center, std::max(0.0, c.radius - margin)));
      inflated.push_back(Circle(c.center, c.radius + margin));
    }
    bool analytic = DiskCoveredByUnion(subject, cover);
    if (SampledCovered(subject, shrunk)) {
      ++robust_covered;
      EXPECT_TRUE(analytic) << "false negative on robustly covered trial " << trial;
    } else if (!SampledCovered(subject, inflated)) {
      ++robust_uncovered;
      EXPECT_FALSE(analytic) << "false positive on robustly uncovered trial " << trial;
    }
  }
  // Sanity: the random mix exercises both outcomes.
  EXPECT_GT(robust_covered, 20);
  EXPECT_GT(robust_uncovered, 20);
}

TEST(MaxCoveredRadiusTest, MatchesSingleDiskGeometry) {
  // Cover: one disk radius 2 centered at origin; from query point (0.5, 0)
  // the largest covered disk has radius 1.5.
  std::vector<Circle> cover{Circle({0, 0}, 2.0)};
  double r = MaxCoveredRadius({0.5, 0}, cover, 5.0, 1e-4);
  EXPECT_NEAR(r, 1.5, 1e-3);
}

TEST(MaxCoveredRadiusTest, ZeroWhenCenterUncovered) {
  std::vector<Circle> cover{Circle({10, 0}, 1.0)};
  EXPECT_DOUBLE_EQ(MaxCoveredRadius({0, 0}, cover, 5.0), 0.0);
}

TEST(MaxCoveredRadiusTest, ReturnsHiWhenEverythingCovered) {
  std::vector<Circle> cover{Circle({0, 0}, 100.0)};
  EXPECT_DOUBLE_EQ(MaxCoveredRadius({1, 1}, cover, 5.0), 5.0);
}

}  // namespace
}  // namespace senn::geom
