#include "src/geom/circle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace senn::geom {
namespace {

TEST(CircleTest, ContainsPoint) {
  Circle c({1, 1}, 2.0);
  EXPECT_TRUE(c.Contains({1, 1}));
  EXPECT_TRUE(c.Contains({3, 1}));   // boundary (closed disk)
  EXPECT_FALSE(c.Contains({3.1, 1}));
  EXPECT_TRUE(c.Contains({3.05, 1}, 0.1));  // with tolerance
}

TEST(CircleTest, ZeroRadiusIsAPoint) {
  Circle c({5, 5}, 0.0);
  EXPECT_TRUE(c.Contains({5, 5}));
  EXPECT_FALSE(c.Contains({5, 5.001}));
}

TEST(CircleTest, ContainsCircle) {
  Circle big({0, 0}, 5.0);
  EXPECT_TRUE(big.ContainsCircle(Circle({1, 1}, 2.0)));
  EXPECT_TRUE(big.ContainsCircle(Circle({3, 0}, 2.0)));   // inner tangency
  EXPECT_FALSE(big.ContainsCircle(Circle({4, 0}, 2.0)));  // pokes out
  EXPECT_FALSE(big.ContainsCircle(Circle({10, 0}, 1.0)));
  // A circle contains itself.
  EXPECT_TRUE(big.ContainsCircle(big));
}

TEST(CircleTest, Intersects) {
  Circle a({0, 0}, 2.0);
  EXPECT_TRUE(a.Intersects(Circle({3, 0}, 1.5)));
  EXPECT_TRUE(a.Intersects(Circle({3.5, 0}, 1.5)));  // external tangency
  EXPECT_FALSE(a.Intersects(Circle({4, 0}, 1.5)));
  EXPECT_TRUE(a.Intersects(Circle({0.5, 0}, 0.1)));  // containment intersects
}

TEST(CircleTest, PointAtLiesOnBoundary) {
  Circle c({2, -3}, 4.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    double angle = rng.Uniform(0, 2 * M_PI);
    Vec2 p = c.PointAt(angle);
    EXPECT_NEAR(Dist(p, c.center), 4.0, 1e-12);
  }
  EXPECT_NEAR(c.PointAt(0.0).x, 6.0, 1e-12);
  EXPECT_NEAR(c.PointAt(M_PI / 2).y, 1.0, 1e-12);
}

TEST(CircleTest, ContainsCircleTransitivity) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    Circle a({rng.Uniform(-5, 5), rng.Uniform(-5, 5)}, rng.Uniform(3, 6));
    Circle b({a.center.x + rng.Uniform(-1, 1), a.center.y + rng.Uniform(-1, 1)},
             rng.Uniform(1, 2));
    Circle c({b.center.x + rng.Uniform(-0.3, 0.3), b.center.y + rng.Uniform(-0.3, 0.3)},
             rng.Uniform(0.1, 0.5));
    if (a.ContainsCircle(b) && b.ContainsCircle(c)) {
      EXPECT_TRUE(a.ContainsCircle(c, 1e-12));
    }
  }
}

}  // namespace
}  // namespace senn::geom
