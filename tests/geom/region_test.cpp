#include "src/geom/region.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/geom/disk_cover.h"

namespace senn::geom {
namespace {

TEST(RegionTest, StartsWithOnePiece) {
  ConvexPieceRegion r(ConvexPolygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}}));
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_EQ(r.PieceCount(), 1u);
  EXPECT_DOUBLE_EQ(r.Area(), 4.0);
}

TEST(RegionTest, SubtractDisjointKeepsArea) {
  ConvexPieceRegion r(ConvexPolygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}}));
  r.SubtractConvex(ConvexPolygon({{5, 5}, {6, 5}, {6, 6}, {5, 6}}));
  EXPECT_NEAR(r.Area(), 4.0, 1e-9);
}

TEST(RegionTest, SubtractContainingEmpties) {
  ConvexPieceRegion r(ConvexPolygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}}));
  r.SubtractConvex(ConvexPolygon({{-1, -1}, {3, -1}, {3, 3}, {-1, 3}}));
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
}

TEST(RegionTest, SubtractOverlapAreaArithmetic) {
  ConvexPieceRegion r(ConvexPolygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}}));
  // Remove the unit square overlapping the top-right corner.
  r.SubtractConvex(ConvexPolygon({{1, 1}, {3, 1}, {3, 3}, {1, 3}}));
  EXPECT_NEAR(r.Area(), 3.0, 1e-9);
  EXPECT_FALSE(r.IsEmpty());
}

TEST(RegionTest, SubtractCenterLeavesFrame) {
  ConvexPieceRegion r(ConvexPolygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}}));
  r.SubtractConvex(ConvexPolygon({{1, 1}, {3, 1}, {3, 3}, {1, 3}}));
  EXPECT_NEAR(r.Area(), 12.0, 1e-9);
  EXPECT_GE(r.PieceCount(), 4u);  // a frame cannot be one convex piece
}

TEST(RegionTest, SequentialSubtractionsAccumulate) {
  ConvexPieceRegion r(ConvexPolygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}}));
  r.SubtractConvex(ConvexPolygon({{0, 0}, {2, 0}, {2, 4}, {0, 4}}));  // left half
  EXPECT_NEAR(r.Area(), 8.0, 1e-9);
  r.SubtractConvex(ConvexPolygon({{2, 0}, {4, 0}, {4, 2}, {2, 2}}));  // bottom right
  EXPECT_NEAR(r.Area(), 4.0, 1e-9);
  r.SubtractConvex(ConvexPolygon({{2, 2}, {4, 2}, {4, 4}, {2, 4}}));  // rest
  EXPECT_TRUE(r.IsEmpty());
}

TEST(PolygonizedCoverTest, SingleBigDiskCovers) {
  Circle subject({0, 0}, 1.0);
  EXPECT_TRUE(PolygonizedDiskCoveredByUnion(subject, {Circle({0, 0}, 2.0)}));
}

TEST(PolygonizedCoverTest, ConservativeNearExactContainment) {
  // Exact containment boundary: the polygonized test must NOT claim coverage
  // (inscribed cover polygon is strictly inside the cover disk).
  Circle subject({0.5, 0}, 1.0);
  EXPECT_FALSE(PolygonizedDiskCoveredByUnion(subject, {Circle({0, 0}, 1.5)},
                                             {.sides = 16, .min_area = 1e-9}));
  // With slack it passes even at modest resolution.
  EXPECT_TRUE(PolygonizedDiskCoveredByUnion(subject, {Circle({0, 0}, 1.6)},
                                            {.sides = 32, .min_area = 1e-9}));
}

TEST(PolygonizedCoverTest, PointSubjectUsesExactMembership) {
  EXPECT_TRUE(PolygonizedDiskCoveredByUnion(Circle({1, 1}, 0.0), {Circle({1, 1.5}, 1.0)}));
  EXPECT_FALSE(PolygonizedDiskCoveredByUnion(Circle({1, 1}, 0.0), {Circle({9, 9}, 1.0)}));
}

TEST(PolygonizedCoverTest, DetectsCenterHole) {
  Circle subject({0, 0}, 1.0);
  std::vector<Circle> cover;
  for (int i = 0; i < 3; ++i) {
    double a = 2.0 * M_PI * i / 3;
    cover.push_back(Circle({1.2 * std::cos(a), 1.2 * std::sin(a)}, 1.15));
  }
  EXPECT_FALSE(PolygonizedDiskCoveredByUnion(subject, cover));
}

// One-sided-error property: whenever the polygonized test reports covered,
// the exact disk test agrees.
TEST(PolygonizedCoverTest, NeverFalselyCertifies) {
  Rng rng(777);
  int polygon_yes = 0, exact_yes = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Circle subject({0, 0}, rng.Uniform(0.3, 1.2));
    int m = static_cast<int>(rng.UniformInt(1, 5));
    std::vector<Circle> cover;
    for (int i = 0; i < m; ++i) {
      cover.push_back(Circle({rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)},
                             rng.Uniform(0.3, 1.6)));
    }
    bool poly = PolygonizedDiskCoveredByUnion(subject, cover, {.sides = 24});
    bool exact = DiskCoveredByUnion(subject, cover);
    polygon_yes += poly;
    exact_yes += exact;
    if (poly) {
      EXPECT_TRUE(exact) << "polygonized test over-certified, trial " << trial;
    }
  }
  // The approximation should usually agree with the exact test.
  EXPECT_GT(polygon_yes, 0);
  EXPECT_GE(exact_yes, polygon_yes);
  EXPECT_LT(exact_yes - polygon_yes, 40);
}

TEST(PolygonizedCoverTest, HigherResolutionCertifiesMore) {
  Rng rng(888);
  int low_yes = 0, high_yes = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Circle subject({0, 0}, rng.Uniform(0.3, 1.2));
    std::vector<Circle> cover;
    for (int i = 0; i < 3; ++i) {
      cover.push_back(Circle({rng.Uniform(-0.8, 0.8), rng.Uniform(-0.8, 0.8)},
                             rng.Uniform(0.5, 1.8)));
    }
    bool low = PolygonizedDiskCoveredByUnion(subject, cover, {.sides = 6});
    bool high = PolygonizedDiskCoveredByUnion(subject, cover, {.sides = 64});
    low_yes += low;
    high_yes += high;
    // Monotonicity is not guaranteed per-instance by the construction, but a
    // low-res "yes" is still a conservative certificate of true coverage.
    if (low) {
      EXPECT_TRUE(DiskCoveredByUnion(subject, cover));
    }
  }
  EXPECT_GE(high_yes, low_yes);
}

}  // namespace
}  // namespace senn::geom
