#include "src/geom/vec2.h"

#include <gtest/gtest.h>

#include <cmath>

namespace senn::geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -0.5}));
}

TEST(Vec2Test, DotAndCross) {
  Vec2 a{1.0, 2.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -2.0);
  // Cross is positive when b is CCW from a.
  EXPECT_GT((Vec2{1, 0}).Cross(Vec2{0, 1}), 0.0);
}

TEST(Vec2Test, Norms) {
  Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  Vec2 unit = v.Normalized();
  EXPECT_NEAR(unit.Norm(), 1.0, 1e-15);
  EXPECT_NEAR(unit.x, 0.6, 1e-15);
}

TEST(Vec2Test, NormalizedZeroVectorIsZero) {
  EXPECT_EQ(Vec2{}.Normalized(), Vec2{});
}

TEST(Vec2Test, AngleQuadrants) {
  EXPECT_NEAR((Vec2{1, 0}).Angle(), 0.0, 1e-15);
  EXPECT_NEAR((Vec2{0, 1}).Angle(), M_PI / 2, 1e-15);
  EXPECT_NEAR((Vec2{-1, 0}).Angle(), M_PI, 1e-15);
  EXPECT_NEAR((Vec2{0, -1}).Angle(), -M_PI / 2, 1e-15);
}

TEST(Vec2Test, PerpIsCcwRotation) {
  Vec2 v{2.0, 1.0};
  Vec2 p = v.Perp();
  EXPECT_DOUBLE_EQ(v.Dot(p), 0.0);
  EXPECT_GT(v.Cross(p), 0.0);
}

TEST(Vec2Test, DistanceHelpers) {
  Vec2 a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(Dist(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Dist2(a, b), 25.0);
}

}  // namespace
}  // namespace senn::geom
