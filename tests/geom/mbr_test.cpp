#include "src/geom/mbr.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace senn::geom {
namespace {

TEST(MbrTest, EmptyBehaviour) {
  Mbr m = Mbr::Empty();
  EXPECT_TRUE(m.IsEmpty());
  EXPECT_DOUBLE_EQ(m.Area(), 0.0);
  EXPECT_DOUBLE_EQ(m.Margin(), 0.0);
}

TEST(MbrTest, ExpandPoint) {
  Mbr m = Mbr::Empty();
  m.Expand({1, 2});
  EXPECT_FALSE(m.IsEmpty());
  EXPECT_TRUE(m.Contains({1, 2}));
  EXPECT_DOUBLE_EQ(m.Area(), 0.0);
  m.Expand({3, 5});
  EXPECT_DOUBLE_EQ(m.Area(), 6.0);
  EXPECT_DOUBLE_EQ(m.Margin(), 5.0);
}

TEST(MbrTest, ExpandMbrAndContainment) {
  Mbr a{{0, 0}, {2, 2}};
  Mbr b{{1, 1}, {4, 3}};
  Mbr merged = a;
  merged.Expand(b);
  EXPECT_TRUE(merged.ContainsMbr(a));
  EXPECT_TRUE(merged.ContainsMbr(b));
  EXPECT_DOUBLE_EQ(merged.Area(), 12.0);
}

TEST(MbrTest, OverlapArea) {
  Mbr a{{0, 0}, {2, 2}};
  Mbr b{{1, 1}, {3, 3}};
  Mbr c{{5, 5}, {6, 6}};
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(MbrTest, TouchingRectanglesIntersectWithZeroOverlap) {
  Mbr a{{0, 0}, {1, 1}};
  Mbr b{{1, 0}, {2, 1}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 0.0);
}

TEST(MbrTest, Enlargement) {
  Mbr a{{0, 0}, {2, 2}};
  Mbr b{{3, 0}, {4, 2}};
  // Merged covers [0,4]x[0,2]: area 8, so enlargement over a (area 4) is 4.
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 4.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(MbrTest, MinDistInsideIsZero) {
  Mbr m{{0, 0}, {4, 4}};
  EXPECT_DOUBLE_EQ(m.MinDist({2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(m.MinDist({0, 0}), 0.0);  // boundary counts as inside
}

TEST(MbrTest, MinDistOutside) {
  Mbr m{{0, 0}, {4, 4}};
  EXPECT_DOUBLE_EQ(m.MinDist({7, 8}), 5.0);   // corner distance
  EXPECT_DOUBLE_EQ(m.MinDist({-3, 2}), 3.0);  // edge distance
}

TEST(MbrTest, MaxDistIsFarthestCorner) {
  Mbr m{{0, 0}, {4, 4}};
  EXPECT_DOUBLE_EQ(m.MaxDist({0, 0}), std::sqrt(32.0));
  EXPECT_DOUBLE_EQ(m.MaxDist({2, 2}), std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(m.MaxDist({-3, 0}), std::sqrt(49.0 + 16.0));
}

// Property: for random query points and rectangles, MINDIST <= distance to
// any contained point <= MAXDIST.
TEST(MbrTest, MinMaxDistBracketContainedPoints) {
  Rng rng(424242);
  for (int trial = 0; trial < 500; ++trial) {
    Vec2 a{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    Vec2 b{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    Mbr m = Mbr::OfPoint(a);
    m.Expand(b);
    Vec2 q{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
    for (int i = 0; i < 20; ++i) {
      Vec2 p{rng.Uniform(m.lo.x, m.hi.x), rng.Uniform(m.lo.y, m.hi.y)};
      double d = Dist(q, p);
      EXPECT_LE(m.MinDist(q), d + 1e-9);
      EXPECT_GE(m.MaxDist(q), d - 1e-9);
    }
  }
}

}  // namespace
}  // namespace senn::geom
