#include "src/geom/polygon.h"

#include <gtest/gtest.h>

#include <cmath>

namespace senn::geom {
namespace {

TEST(PolygonTest, SquareArea) {
  ConvexPolygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_DOUBLE_EQ(sq.Area(), 4.0);
}

TEST(PolygonTest, EmptyPolygon) {
  ConvexPolygon p;
  EXPECT_TRUE(p.IsEmpty());
  EXPECT_DOUBLE_EQ(p.Area(), 0.0);
  EXPECT_FALSE(p.Contains({0, 0}));
}

TEST(PolygonTest, ContainsInteriorBoundaryExterior) {
  ConvexPolygon tri({{0, 0}, {4, 0}, {0, 4}});
  EXPECT_TRUE(tri.Contains({1, 1}));
  EXPECT_TRUE(tri.Contains({2, 0}));   // edge
  EXPECT_TRUE(tri.Contains({0, 0}));   // vertex
  EXPECT_FALSE(tri.Contains({3, 3}));  // beyond hypotenuse
  EXPECT_FALSE(tri.Contains({-1, 0}));
}

TEST(PolygonTest, InscribedPolygonVerticesOnCircle) {
  Circle c({1, 2}, 3.0);
  ConvexPolygon p = ConvexPolygon::InscribedInCircle(c, 16);
  ASSERT_EQ(p.vertices().size(), 16u);
  for (Vec2 v : p.vertices()) EXPECT_NEAR(Dist(v, c.center), 3.0, 1e-12);
  // Inscribed area is below the disk area and converges to it.
  EXPECT_LT(p.Area(), M_PI * 9.0);
  EXPECT_GT(p.Area(), 0.95 * M_PI * 9.0);
}

TEST(PolygonTest, InscribedAreaFormula) {
  // Area of a regular m-gon inscribed in radius r: (m/2) r^2 sin(2 pi / m).
  Circle c({0, 0}, 2.0);
  for (int m : {3, 4, 6, 12, 64}) {
    ConvexPolygon p = ConvexPolygon::InscribedInCircle(c, m);
    double expected = 0.5 * m * 4.0 * std::sin(2.0 * M_PI / m);
    EXPECT_NEAR(p.Area(), expected, 1e-9) << "m=" << m;
  }
}

TEST(PolygonTest, CircumscribedContainsCircle) {
  Circle c({-1, 4}, 2.0);
  ConvexPolygon p = ConvexPolygon::CircumscribedAboutCircle(c, 12);
  // Every boundary point of the circle lies inside the polygon.
  for (int i = 0; i < 360; ++i) {
    EXPECT_TRUE(p.Contains(c.PointAt(i * M_PI / 180.0), 1e-9)) << i;
  }
  // And the polygon area exceeds the disk area (but not by much for m=12).
  EXPECT_GT(p.Area(), M_PI * 4.0);
  EXPECT_LT(p.Area(), 1.1 * M_PI * 4.0);
}

TEST(PolygonTest, InscribedInsideCircumscribed) {
  Circle c({0, 0}, 1.0);
  ConvexPolygon in = ConvexPolygon::InscribedInCircle(c, 8);
  ConvexPolygon out = ConvexPolygon::CircumscribedAboutCircle(c, 8);
  for (Vec2 v : in.vertices()) EXPECT_TRUE(out.Contains(v, 1e-9));
}

TEST(PolygonTest, ClipKeepsInsidePart) {
  ConvexPolygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  // Half-plane x <= 1: inside is left of the upward line through (1,0)-(1,2)?
  // The inside of a->b is to the left; a=(1,-1), b=(1,3) has inside x < 1.
  ConvexPolygon clipped = sq.ClipToHalfPlane({{1, -1}, {1, 3}});
  EXPECT_NEAR(clipped.Area(), 2.0, 1e-12);
  EXPECT_TRUE(clipped.Contains({0.5, 1.0}));
  EXPECT_FALSE(clipped.Contains({1.5, 1.0}));
}

TEST(PolygonTest, ClipEntirelyInside) {
  ConvexPolygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  ConvexPolygon clipped = sq.ClipToHalfPlane({{-10, -10}, {10, -10}});
  EXPECT_NEAR(clipped.Area(), 4.0, 1e-12);
}

TEST(PolygonTest, ClipEntirelyOutsideIsEmpty) {
  ConvexPolygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  // Inside of a->b is to the left: for a=(-10,10), b=(10,10) that is y > 10.
  ConvexPolygon clipped = sq.ClipToHalfPlane({{-10, 10}, {10, 10}});
  EXPECT_TRUE(clipped.IsEmpty());
}

TEST(PolygonTest, EdgeHalfPlanesDescribePolygon) {
  ConvexPolygon tri({{0, 0}, {4, 0}, {0, 4}});
  auto edges = tri.EdgeHalfPlanes();
  ASSERT_EQ(edges.size(), 3u);
  Vec2 inside{1, 1}, outside{5, 5};
  for (const HalfPlane& hp : edges) EXPECT_GE(hp.Side(inside), 0.0);
  bool excluded = false;
  for (const HalfPlane& hp : edges) excluded |= hp.Side(outside) < 0.0;
  EXPECT_TRUE(excluded);
}

TEST(HalfPlaneTest, SideSign) {
  HalfPlane hp{{0, 0}, {1, 0}};  // inside is y > 0
  EXPECT_GT(hp.Side({0, 1}), 0.0);
  EXPECT_LT(hp.Side({0, -1}), 0.0);
  EXPECT_DOUBLE_EQ(hp.Side({5, 0}), 0.0);
}

}  // namespace
}  // namespace senn::geom
