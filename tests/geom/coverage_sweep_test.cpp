// Parameterized property sweeps over the coverage machinery: exact vs
// sampled vs polygonized verdicts across cover sizes, and the radius
// monotonicity the kNN_multiple prefix argument relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/geom/disk_cover.h"
#include "src/geom/region.h"

namespace senn::geom {
namespace {

bool SampledCovered(const Circle& subject, const std::vector<Circle>& cover, int rings = 40,
                    int spokes = 80) {
  for (int i = 0; i <= rings; ++i) {
    double r = subject.radius * i / rings;
    int n = (i == 0) ? 1 : spokes;
    for (int j = 0; j < n; ++j) {
      double a = 2.0 * M_PI * j / n;
      Vec2 p = subject.center + Vec2{r * std::cos(a), r * std::sin(a)};
      bool inside = false;
      for (const Circle& c : cover) inside |= c.Contains(p, 1e-9);
      if (!inside) return false;
    }
  }
  return true;
}

class CoverSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoverSizeSweep, ExactTestAgreesWithMarginOracle) {
  const int m = GetParam();
  Rng rng(5000 + m);
  const double margin = 2e-2;
  int robust = 0;
  for (int trial = 0; trial < 150; ++trial) {
    Circle subject({0, 0}, rng.Uniform(0.3, 1.2));
    std::vector<Circle> cover, shrunk, inflated;
    for (int i = 0; i < m; ++i) {
      Circle c({rng.Uniform(-1.2, 1.2), rng.Uniform(-1.2, 1.2)}, rng.Uniform(0.2, 1.4));
      cover.push_back(c);
      shrunk.push_back(Circle(c.center, std::max(0.0, c.radius - margin)));
      inflated.push_back(Circle(c.center, c.radius + margin));
    }
    bool analytic = DiskCoveredByUnion(subject, cover);
    if (SampledCovered(subject, shrunk)) {
      ++robust;
      EXPECT_TRUE(analytic) << "m=" << m << " trial=" << trial;
    } else if (!SampledCovered(subject, inflated)) {
      ++robust;
      EXPECT_FALSE(analytic) << "m=" << m << " trial=" << trial;
    }
  }
  EXPECT_GT(robust, 40);  // the sweep exercises decisive cases
}

TEST_P(CoverSizeSweep, CoverageIsMonotoneInRadius) {
  // If disk(Q, r2) is covered then disk(Q, r1) is covered for r1 < r2 —
  // the property that makes the certified candidates a prefix.
  const int m = GetParam();
  Rng rng(6000 + m);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Circle> cover;
    for (int i = 0; i < m; ++i) {
      cover.push_back(Circle({rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
                             rng.Uniform(0.3, 1.5)));
    }
    Vec2 q{rng.Uniform(-0.5, 0.5), rng.Uniform(-0.5, 0.5)};
    double r2 = rng.Uniform(0.2, 1.2);
    if (!DiskCoveredByUnion(Circle(q, r2), cover)) continue;
    for (double f : {0.25, 0.5, 0.75, 0.95}) {
      EXPECT_TRUE(DiskCoveredByUnion(Circle(q, r2 * f), cover))
          << "m=" << m << " trial=" << trial << " f=" << f;
    }
  }
}

TEST_P(CoverSizeSweep, PolygonizedOneSidedAtEveryCoverSize) {
  const int m = GetParam();
  Rng rng(7000 + m);
  for (int trial = 0; trial < 100; ++trial) {
    Circle subject({0, 0}, rng.Uniform(0.3, 1.0));
    std::vector<Circle> cover;
    for (int i = 0; i < m; ++i) {
      cover.push_back(Circle({rng.Uniform(-0.8, 0.8), rng.Uniform(-0.8, 0.8)},
                             rng.Uniform(0.4, 1.4)));
    }
    if (PolygonizedDiskCoveredByUnion(subject, cover, {.sides = 24})) {
      EXPECT_TRUE(DiskCoveredByUnion(subject, cover)) << "m=" << m << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CoverSizes, CoverSizeSweep, ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace senn::geom
