#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/mobility/mover.h"
#include "src/mobility/road_mover.h"
#include "src/mobility/waypoint.h"
#include "src/roadnet/generator.h"
#include "src/roadnet/locate.h"

namespace senn::mobility {
namespace {

TEST(StationaryMoverTest, NeverMoves) {
  Rng rng(1);
  StationaryMover m({10, 20});
  for (int i = 0; i < 100; ++i) m.Advance(5.0, &rng);
  EXPECT_EQ(m.position(), (geom::Vec2{10, 20}));
  EXPECT_DOUBLE_EQ(m.current_speed(), 0.0);
}

TEST(WaypointMoverTest, StaysInsideArea) {
  Rng rng(2);
  WaypointConfig cfg;
  cfg.area_side_m = 1000;
  cfg.speed_mps = 20;
  cfg.mean_pause_s = 5;
  WaypointMover m(cfg, {500, 500}, &rng);
  for (int i = 0; i < 5000; ++i) {
    m.Advance(1.0, &rng);
    geom::Vec2 p = m.position();
    EXPECT_GE(p.x, 0.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.x, 1000.0);
    EXPECT_LE(p.y, 1000.0);
  }
}

TEST(WaypointMoverTest, SpeedBoundRespected) {
  Rng rng(3);
  WaypointConfig cfg;
  cfg.area_side_m = 1000;
  cfg.speed_mps = 15;
  cfg.mean_pause_s = 2;
  WaypointMover m(cfg, {0, 0}, &rng);
  geom::Vec2 prev = m.position();
  for (int i = 0; i < 2000; ++i) {
    m.Advance(1.0, &rng);
    double moved = geom::Dist(prev, m.position());
    EXPECT_LE(moved, 15.0 + 1e-9) << "step " << i;
    prev = m.position();
  }
}

TEST(WaypointMoverTest, EventuallyReachesWaypointsAndRepicks) {
  Rng rng(4);
  WaypointConfig cfg;
  cfg.area_side_m = 200;
  cfg.speed_mps = 50;
  cfg.mean_pause_s = 1;
  WaypointMover m(cfg, {100, 100}, &rng);
  geom::Vec2 first_dest = m.destination();
  bool changed = false;
  for (int i = 0; i < 1000 && !changed; ++i) {
    m.Advance(1.0, &rng);
    changed = !(m.destination() == first_dest);
  }
  EXPECT_TRUE(changed);
}

TEST(WaypointMoverTest, CoversTheAreaOverTime) {
  Rng rng(5);
  WaypointConfig cfg;
  cfg.area_side_m = 1000;
  cfg.speed_mps = 30;
  cfg.mean_pause_s = 1;
  WaypointMover m(cfg, {0, 0}, &rng);
  // Track quadrant visits: random waypoint should visit all four.
  bool quadrant[4] = {false, false, false, false};
  for (int i = 0; i < 20000; ++i) {
    m.Advance(1.0, &rng);
    geom::Vec2 p = m.position();
    int qx = p.x < 500 ? 0 : 1;
    int qy = p.y < 500 ? 0 : 1;
    quadrant[qy * 2 + qx] = true;
  }
  EXPECT_TRUE(quadrant[0] && quadrant[1] && quadrant[2] && quadrant[3]);
}

class RoadMoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(6);
    roadnet::RoadNetworkConfig cfg;
    cfg.area_side_m = 2000;
    cfg.block_spacing_m = 200;
    graph_ = roadnet::GenerateRoadNetwork(cfg, &rng);
    ASSERT_TRUE(graph_.IsConnected());
    router_ = std::make_unique<roadnet::Router>(&graph_);
  }

  roadnet::Graph graph_;
  std::unique_ptr<roadnet::Router> router_;
};

TEST_F(RoadMoverTest, StaysOnNetwork) {
  Rng rng(7);
  RoadMoverConfig cfg;
  cfg.nominal_speed_mps = 20;
  cfg.mean_pause_s = 3;
  cfg.max_trip_m = 1500;
  RoadMover m(cfg, &graph_, router_.get(), 0, &rng);
  roadnet::EdgeLocator locator(&graph_, 200.0);
  for (int i = 0; i < 2000; ++i) {
    m.Advance(1.0, &rng);
    double snap = 0;
    locator.Nearest(m.position(), &snap);
    EXPECT_LT(snap, 1e-6) << "left the network at step " << i;
  }
}

TEST_F(RoadMoverTest, ScaledLimitsModelTracksRoadClass) {
  // Default model: speed = class limit * nominal / 30 mph. With nominal
  // 30 mph the host drives exactly the posted limit of its current segment.
  Rng rng(8);
  RoadMoverConfig cfg;
  cfg.nominal_speed_mps = MphToMps(30.0);
  cfg.mean_pause_s = 2;
  double max_limit = roadnet::SpeedLimitMps(roadnet::RoadClass::kHighway);
  bool saw_fast_road = false;
  RoadMover m(cfg, &graph_, router_.get(), 3, &rng);
  for (int i = 0; i < 3000; ++i) {
    geom::Vec2 before = m.position();
    m.Advance(1.0, &rng);
    double moved = geom::Dist(before, m.position());
    EXPECT_LE(moved, max_limit + 1e-6) << "step " << i;
    double s = m.current_speed();
    if (s > 0) {
      EXPECT_NEAR(s, roadnet::SpeedLimitMps(m.current_road_class()), 1e-9);
      saw_fast_road |= s > MphToMps(30.0) + 1e-9;
    }
  }
  EXPECT_TRUE(saw_fast_road);  // the network has secondary roads/highways
}

TEST_F(RoadMoverTest, CappedModelNeverExceedsNominal) {
  Rng rng(9);
  RoadMoverConfig cfg;
  cfg.nominal_speed_mps = MphToMps(10.0);
  cfg.speed_model = SpeedModel::kCappedByNominal;
  RoadMover m(cfg, &graph_, router_.get(), 5, &rng);
  for (int i = 0; i < 500; ++i) {
    m.Advance(1.0, &rng);
    EXPECT_LE(m.current_speed(), MphToMps(10.0) + 1e-9);
  }
}

TEST_F(RoadMoverTest, ScaledLimitsVelocityKnobScalesSpeed) {
  // Doubling M_Velocity doubles the speed on every class.
  Rng rng_a(10), rng_b(10);
  RoadMoverConfig slow, fast;
  slow.nominal_speed_mps = MphToMps(15.0);
  fast.nominal_speed_mps = MphToMps(30.0);
  RoadMover a(slow, &graph_, router_.get(), 2, &rng_a);
  RoadMover b(fast, &graph_, router_.get(), 2, &rng_b);
  for (int i = 0; i < 200; ++i) {
    a.Advance(1.0, &rng_a);
    b.Advance(1.0, &rng_b);
    if (a.current_speed() > 0 && b.current_speed() > 0 &&
        a.current_road_class() == b.current_road_class()) {
      EXPECT_NEAR(b.current_speed(), 2.0 * a.current_speed(), 1e-9);
    }
  }
}

TEST_F(RoadMoverTest, MakesProgressAcrossTheMap) {
  Rng rng(10);
  RoadMoverConfig cfg;
  cfg.nominal_speed_mps = 25;
  cfg.mean_pause_s = 1;
  cfg.max_trip_m = 4000;
  RoadMover m(cfg, &graph_, router_.get(), 0, &rng);
  geom::Vec2 start = m.position();
  double max_excursion = 0.0;
  for (int i = 0; i < 3000; ++i) {
    m.Advance(1.0, &rng);
    max_excursion = std::max(max_excursion, geom::Dist(start, m.position()));
  }
  EXPECT_GT(max_excursion, 500.0);
}

TEST_F(RoadMoverTest, DeterministicGivenSeeds) {
  RoadMoverConfig cfg;
  Rng rng_a(11), rng_b(11);
  RoadMover a(cfg, &graph_, router_.get(), 2, &rng_a);
  RoadMover b(cfg, &graph_, router_.get(), 2, &rng_b);
  for (int i = 0; i < 500; ++i) {
    a.Advance(1.0, &rng_a);
    b.Advance(1.0, &rng_b);
    ASSERT_EQ(a.position(), b.position()) << "diverged at step " << i;
  }
}

TEST(RoadMoverSingleNodeTest, DegenerateGraphStaysPut) {
  roadnet::Graph g;
  g.AddNode({5, 5});
  roadnet::Router router(&g);
  Rng rng(12);
  RoadMoverConfig cfg;
  RoadMover m(cfg, &g, &router, 0, &rng);
  for (int i = 0; i < 100; ++i) m.Advance(1.0, &rng);
  EXPECT_EQ(m.position(), (geom::Vec2{5, 5}));
}

}  // namespace
}  // namespace senn::mobility
