// Codec property battery: encode/decode identity over randomized messages
// (deterministic Rng::Stream draws), and the framing decoder's behavior on
// every adversarial byte-stream shape the tentpole promises robustness
// against — truncation at every prefix, arbitrary read fragmentation,
// garbage headers, and the max-payload boundary.
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/rng.h"
#include "src/rpc/wire.h"

namespace senn::rpc {
namespace {

KnnRequest RandomRequest(Rng* rng) {
  KnnRequest request;
  request.q = {rng->Uniform(-1e6, 1e6), rng->Uniform(-1e6, 1e6)};
  request.k = static_cast<int32_t>(rng->UniformInt(1, 64));
  request.already_certified = static_cast<int32_t>(rng->UniformInt(0, request.k));
  if (rng->Bernoulli(0.5)) request.bounds.lower = rng->Uniform(0, 1e4);
  if (rng->Bernoulli(0.5)) {
    double base = request.bounds.lower.value_or(0.0);
    request.bounds.upper = base + rng->Uniform(0, 1e4);
  }
  if (rng->Bernoulli(0.3)) request.bounds.lower_id_cut = rng->UniformInt(0, 1 << 20);
  return request;
}

core::ServerReply RandomReply(Rng* rng) {
  core::ServerReply reply;
  const int n = static_cast<int>(rng->UniformInt(0, 40));
  for (int i = 0; i < n; ++i) {
    reply.neighbors.push_back({static_cast<int64_t>(rng->UniformInt(0, 1 << 20)),
                               {rng->Uniform(-1e6, 1e6), rng->Uniform(-1e6, 1e6)},
                               rng->Uniform(0, 1e5)});
  }
  auto counter = [&] {
    rtree::AccessCounter c;
    c.index_nodes = rng->NextIndex(1000);
    c.leaf_nodes = rng->NextIndex(1000);
    c.index_misses = rng->NextIndex(100);
    c.leaf_misses = rng->NextIndex(100);
    c.shared_misses = rng->NextIndex(50);
    c.private_misses = rng->NextIndex(50);
    return c;
  };
  reply.einn_accesses = counter();
  reply.inn_accesses = counter();
  return reply;
}

bool SameBounds(const rtree::PruneBounds& a, const rtree::PruneBounds& b) {
  return a.lower == b.lower && a.upper == b.upper && a.lower_id_cut == b.lower_id_cut;
}

TEST(CodecPropertyTest, RandomRequestsRoundTripIdentically) {
  Rng rng = Rng(20060403).Stream("codec/request");
  for (int trial = 0; trial < 200; ++trial) {
    const KnnRequest request = RandomRequest(&rng);
    const uint64_t id = rng.NextU64();
    std::vector<uint8_t> bytes;
    EncodeKnnRequest(id, request, &bytes);

    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(bytes.data(), bytes.size()).ok());
    Frame frame;
    ASSERT_TRUE(decoder.Next(&frame));
    EXPECT_EQ(frame.header.request_id, id);
    Result<KnnRequest> decoded = DecodeKnnRequest(frame.payload);
    ASSERT_TRUE(decoded.ok()) << "trial " << trial << ": " << decoded.status().message();
    EXPECT_EQ(decoded->q, request.q) << "trial " << trial;
    EXPECT_EQ(decoded->k, request.k);
    EXPECT_EQ(decoded->already_certified, request.already_certified);
    EXPECT_TRUE(SameBounds(decoded->bounds, request.bounds)) << "trial " << trial;
  }
}

TEST(CodecPropertyTest, RandomRepliesRoundTripIdentically) {
  Rng rng = Rng(20060403).Stream("codec/reply");
  for (int trial = 0; trial < 200; ++trial) {
    const core::ServerReply reply = RandomReply(&rng);
    std::vector<uint8_t> bytes;
    EncodeKnnReply(rng.NextU64(), reply, &bytes);

    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(bytes.data(), bytes.size()).ok());
    Frame frame;
    ASSERT_TRUE(decoder.Next(&frame));
    Result<core::ServerReply> decoded = DecodeKnnReply(frame.payload);
    ASSERT_TRUE(decoded.ok()) << "trial " << trial << ": " << decoded.status().message();
    EXPECT_EQ(*decoded, reply) << "trial " << trial;
  }
}

TEST(CodecPropertyTest, EveryTruncationPrefixYieldsNoFrameAndNoError) {
  // A prefix of a valid frame is simply incomplete: the decoder must wait
  // for more bytes — no frame, no poison — at EVERY cut point.
  Rng rng = Rng(1).Stream("codec/trunc");
  KnnRequest request = RandomRequest(&rng);
  std::vector<uint8_t> bytes;
  EncodeKnnRequest(17, request, &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(bytes.data(), cut).ok()) << "cut " << cut;
    Frame frame;
    EXPECT_FALSE(decoder.Next(&frame)) << "cut " << cut;
    EXPECT_FALSE(decoder.poisoned()) << "cut " << cut;
    // Completing the stream later yields the frame.
    ASSERT_TRUE(decoder.Feed(bytes.data() + cut, bytes.size() - cut).ok());
    ASSERT_TRUE(decoder.Next(&frame)) << "cut " << cut;
    EXPECT_EQ(frame.header.request_id, 17u);
  }
}

TEST(CodecPropertyTest, SplitAcrossReadsInEveryChunkSize) {
  // Three pipelined messages fed in chunks of 1, 2, 3, and 7 bytes decode
  // to the same three frames as one contiguous feed.
  Rng rng = Rng(20060403).Stream("codec/split");
  std::vector<uint8_t> bytes;
  EncodeKnnRequest(1, RandomRequest(&rng), &bytes);
  EncodePing(2, &bytes);
  EncodeKnnReply(3, RandomReply(&rng), &bytes);

  for (size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
    FrameDecoder decoder;
    for (size_t off = 0; off < bytes.size(); off += chunk) {
      const size_t n = std::min(chunk, bytes.size() - off);
      ASSERT_TRUE(decoder.Feed(bytes.data() + off, n).ok());
    }
    Frame frame;
    ASSERT_TRUE(decoder.Next(&frame)) << "chunk " << chunk;
    EXPECT_EQ(frame.header.request_id, 1u);
    EXPECT_EQ(frame.opcode(), Opcode::kKnnRequest);
    ASSERT_TRUE(decoder.Next(&frame));
    EXPECT_EQ(frame.header.request_id, 2u);
    EXPECT_EQ(frame.opcode(), Opcode::kPing);
    ASSERT_TRUE(decoder.Next(&frame));
    EXPECT_EQ(frame.header.request_id, 3u);
    EXPECT_EQ(frame.opcode(), Opcode::kKnnReply);
    EXPECT_FALSE(decoder.Next(&frame));
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(CodecPropertyTest, GarbageHeaderPoisonsButKeepsEarlierFrames) {
  std::vector<uint8_t> bytes;
  EncodePing(1, &bytes);
  const size_t good = bytes.size();
  for (int i = 0; i < 32; ++i) bytes.push_back(static_cast<uint8_t>(0xC0 + i));

  FrameDecoder decoder;
  Status st = decoder.Feed(bytes.data(), bytes.size());
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(decoder.poisoned());
  // The frame decoded before the corruption survives.
  Frame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.opcode(), Opcode::kPing);
  // Later feeds keep failing with the same diagnosis.
  EXPECT_FALSE(decoder.Feed(bytes.data(), good).ok());
  EXPECT_FALSE(decoder.Next(&frame));
}

TEST(CodecPropertyTest, WrongVersionAndReservedFlagsArePoison) {
  std::vector<uint8_t> bytes;
  EncodePing(1, &bytes);
  {
    std::vector<uint8_t> bad = bytes;
    bad[4] = kProtocolVersion + 1;  // version byte
    FrameDecoder decoder;
    EXPECT_FALSE(decoder.Feed(bad.data(), bad.size()).ok());
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[6] = 0x01;  // reserved flags must be zero
    FrameDecoder decoder;
    EXPECT_FALSE(decoder.Feed(bad.data(), bad.size()).ok());
  }
}

TEST(CodecPropertyTest, MaxPayloadBoundaryIsExact) {
  const size_t max = 4096;  // small cap to keep the test cheap
  {
    // Exactly max: accepted.
    std::vector<uint8_t> payload(max, 0x5A);
    std::vector<uint8_t> bytes;
    EncodeFrame(Opcode::kError, 9, payload, &bytes);
    FrameDecoder decoder(max);
    ASSERT_TRUE(decoder.Feed(bytes.data(), bytes.size()).ok());
    Frame frame;
    ASSERT_TRUE(decoder.Next(&frame));
    EXPECT_EQ(frame.payload.size(), max);
  }
  {
    // One past max: rejected at the header, before any payload arrives.
    std::vector<uint8_t> payload(max + 1, 0x5A);
    std::vector<uint8_t> bytes;
    EncodeFrame(Opcode::kError, 9, payload, &bytes);
    FrameDecoder decoder(max);
    EXPECT_FALSE(decoder.Feed(bytes.data(), kHeaderSize).ok());
    EXPECT_TRUE(decoder.poisoned());
  }
}

TEST(CodecPropertyTest, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng = Rng(20060403).Stream("codec/garbage");
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> junk(rng.NextIndex(256));
    for (uint8_t& b : junk) b = static_cast<uint8_t>(rng.NextIndex(256));
    FrameDecoder decoder;
    (void)decoder.Feed(junk.data(), junk.size());  // ok or poisoned, never UB
    Frame frame;
    while (decoder.Next(&frame)) {
      // Any frame that surfaced must at least claim our magic and version.
      EXPECT_EQ(frame.header.magic, kMagic);
      EXPECT_EQ(frame.header.version, kProtocolVersion);
    }
  }
}

}  // namespace
}  // namespace senn::rpc
