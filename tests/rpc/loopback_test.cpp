// LoopbackTransport contract tests: the deterministic in-process byte path
// the simulator's --server-transport loopback rides.
//
//   * a blocking Knn call returns the BITWISE SpatialServer::QueryKnn reply;
//   * a pipelined burst is dispatched as ONE group — one
//     BatchServer::AnswerBatch call — with replies in send order (FIFO);
//   * the whole path is a pure function of the request bytes: two identical
//     bursts produce identical reply bytes.
#include "src/rpc/loopback.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/batch_server.h"
#include "src/core/server.h"
#include "src/rpc/client.h"
#include "src/rpc/service.h"

namespace senn::rpc {
namespace {

using geom::Vec2;

std::vector<core::Poi> RandomPois(int n, Rng* rng, double extent = 1000.0) {
  std::vector<core::Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

KnnRequest RandomRequest(Rng* rng) {
  KnnRequest request;
  request.q = {rng->Uniform(0, 1000), rng->Uniform(0, 1000)};
  request.k = static_cast<int32_t>(rng->UniformInt(1, 12));
  return request;
}

TEST(LoopbackTest, BlockingCallMatchesDirectQueryKnnBitwise) {
  Rng rng = Rng(20060403).Stream("loopback/blocking");
  std::vector<core::Poi> pois = RandomPois(600, &rng);
  core::SpatialServer direct(pois);
  core::SpatialServer served(pois);  // identical world on both sides
  QueryService service(&served, {});
  LoopbackTransport transport(&service);
  Client client(&transport);

  for (int trial = 0; trial < 40; ++trial) {
    const KnnRequest request = RandomRequest(&rng);
    const core::ServerReply want =
        direct.QueryKnn(request.q, request.k, request.bounds, request.already_certified);
    Result<core::ServerReply> got = client.Knn(request);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(*got, want) << "trial " << trial;  // bitwise, accounting included
  }
}

TEST(LoopbackTest, PipelinedBurstIsOneGroupAnsweredLikeAnswerBatch) {
  Rng rng = Rng(20060403).Stream("loopback/burst");
  std::vector<core::Poi> pois = RandomPois(600, &rng);

  // Reference: one AnswerBatch call over the burst, on an identical world.
  core::BatchOptions batch;
  batch.cluster_cell_m = 250.0;
  batch.max_group = 8;
  core::SpatialServer ref_server(pois);
  core::BatchServer ref_batch(&ref_server, batch);

  core::SpatialServer served(pois);
  ServiceOptions options;
  options.batch = batch;
  QueryService service(&served, options);
  LoopbackTransport transport(&service);
  Client client(&transport);

  for (int round = 0; round < 10; ++round) {
    const size_t n = 1 + rng.NextIndex(12);
    std::vector<KnnRequest> requests;
    std::vector<core::BatchQuery> queries;
    for (size_t i = 0; i < n; ++i) {
      KnnRequest request = RandomRequest(&rng);
      requests.push_back(request);
      queries.push_back({request.q, request.k, request.bounds, request.already_certified});
    }
    const std::vector<core::ServerReply> want = ref_batch.AnswerBatch(queries);

    std::vector<uint64_t> ids;
    for (const KnnRequest& request : requests) ids.push_back(client.SendKnn(request));
    ASSERT_TRUE(client.Flush().ok());
    EXPECT_EQ(transport.pending_requests(), n);  // accumulated, not yet dispatched

    const ServiceStats before = service.stats();
    for (size_t i = 0; i < n; ++i) {
      Result<core::ServerReply> got = client.Wait(ids[i]);
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(*got, want[i]) << "round " << round << " slot " << i;
    }
    // The whole burst was one dispatch group.
    EXPECT_EQ(service.stats().groups, before.groups + 1);
    EXPECT_EQ(service.stats().requests, before.requests + n);
  }
}

TEST(LoopbackTest, RepliesArriveInSendOrder) {
  Rng rng = Rng(20060403).Stream("loopback/fifo");
  core::SpatialServer server(RandomPois(400, &rng));
  QueryService service(&server, {});
  LoopbackTransport transport(&service);
  Client client(&transport);

  std::vector<uint64_t> ids;
  for (int i = 0; i < 16; ++i) ids.push_back(client.SendKnn(RandomRequest(&rng)));
  // Wait in REVERSE order: the reply log must still show send order.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    ASSERT_TRUE(client.Wait(*it).ok());
  }
  ASSERT_EQ(client.reply_log().size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(client.reply_log()[i], ids[i]);
}

TEST(LoopbackTest, IdenticalByteStreamsProduceIdenticalReplyBytes) {
  Rng rng = Rng(20060403).Stream("loopback/determinism");
  std::vector<core::Poi> pois = RandomPois(500, &rng);
  std::vector<KnnRequest> burst;
  for (int i = 0; i < 10; ++i) burst.push_back(RandomRequest(&rng));

  auto run = [&pois, &burst] {
    core::SpatialServer server(pois);
    core::BatchOptions batch;
    batch.max_group = 4;
    ServiceOptions options;
    options.batch = batch;
    QueryService service(&server, options);
    LoopbackTransport transport(&service);
    std::vector<uint8_t> bytes;
    uint64_t id = 1;
    for (const KnnRequest& request : burst) EncodeKnnRequest(id++, request, &bytes);
    EXPECT_TRUE(transport.Send(bytes.data(), bytes.size()).ok());
    std::vector<uint8_t> replies;
    EXPECT_TRUE(transport.Receive(&replies).ok());
    return replies;
  };
  EXPECT_EQ(run(), run());
}

TEST(LoopbackTest, ReceiveWithNothingInFlightFails) {
  Rng rng = Rng(20060403).Stream("loopback/empty");
  core::SpatialServer server(RandomPois(50, &rng));
  QueryService service(&server, {});
  LoopbackTransport transport(&service);
  std::vector<uint8_t> out;
  EXPECT_EQ(transport.Receive(&out).code(), Status::Code::kFailedPrecondition);
}

TEST(LoopbackTest, PingRoundTripsThroughTheService) {
  Rng rng = Rng(20060403).Stream("loopback/ping");
  core::SpatialServer server(RandomPois(50, &rng));
  QueryService service(&server, {});
  LoopbackTransport transport(&service);
  Client client(&transport);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(service.stats().pings, 1u);
}

}  // namespace
}  // namespace senn::rpc
