// Frame/codec unit tests: header round trips, every opcode, error replies,
// and the protocol-boundary request validation table.
#include "src/rpc/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace senn::rpc {
namespace {

// Feeds all of `bytes` and pops exactly one frame.
Frame DecodeOne(const std::vector<uint8_t>& bytes) {
  FrameDecoder decoder;
  Status st = decoder.Feed(bytes.data(), bytes.size());
  EXPECT_TRUE(st.ok()) << st.message();
  Frame frame;
  EXPECT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(decoder.pending(), 0u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return frame;
}

TEST(WireTest, FrameHeaderRoundTrips) {
  std::vector<uint8_t> payload{1, 2, 3, 4, 5};
  std::vector<uint8_t> bytes;
  EncodeFrame(Opcode::kKnnRequest, 0xDEADBEEFCAFEF00DULL, payload, &bytes);
  ASSERT_EQ(bytes.size(), kHeaderSize + payload.size());

  Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.header.magic, kMagic);
  EXPECT_EQ(frame.header.version, kProtocolVersion);
  EXPECT_EQ(frame.opcode(), Opcode::kKnnRequest);
  EXPECT_EQ(frame.header.flags, 0);
  EXPECT_EQ(frame.header.request_id, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(frame.payload, payload);
}

TEST(WireTest, MagicBytesSpellSnnqOnTheWire) {
  std::vector<uint8_t> bytes;
  EncodeFrame(Opcode::kPing, 1, {}, &bytes);
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 'S');
  EXPECT_EQ(bytes[1], 'N');
  EXPECT_EQ(bytes[2], 'N');
  EXPECT_EQ(bytes[3], 'Q');
}

TEST(WireTest, KnnRequestRoundTripsWithAllBoundsShapes) {
  const rtree::PruneBounds shapes[] = {
      {},                                    // no bounds
      {12.5, std::nullopt, INT64_MAX},       // lower only
      {std::nullopt, 99.25, INT64_MAX},      // upper only
      {3.0, 47.0, 12345},                    // both + id cut
  };
  uint64_t id = 7;
  for (const rtree::PruneBounds& bounds : shapes) {
    KnnRequest request;
    request.q = {123.456, -789.25};
    request.k = 9;
    request.already_certified = 4;
    request.bounds = bounds;

    std::vector<uint8_t> bytes;
    EncodeKnnRequest(id, request, &bytes);
    Frame frame = DecodeOne(bytes);
    EXPECT_EQ(frame.opcode(), Opcode::kKnnRequest);
    EXPECT_EQ(frame.header.request_id, id);

    Result<KnnRequest> decoded = DecodeKnnRequest(frame.payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->q, request.q);
    EXPECT_EQ(decoded->k, request.k);
    EXPECT_EQ(decoded->already_certified, request.already_certified);
    EXPECT_EQ(decoded->bounds.lower.has_value(), bounds.lower.has_value());
    EXPECT_EQ(decoded->bounds.upper.has_value(), bounds.upper.has_value());
    if (bounds.lower) {
      EXPECT_EQ(*decoded->bounds.lower, *bounds.lower);
    }
    if (bounds.upper) {
      EXPECT_EQ(*decoded->bounds.upper, *bounds.upper);
    }
    EXPECT_EQ(decoded->bounds.lower_id_cut, bounds.lower_id_cut);
    ++id;
  }
}

TEST(WireTest, KnnReplyRoundTripsBitwise) {
  core::ServerReply reply;
  reply.neighbors.push_back({42, {1.5, 2.25}, 3.125});
  reply.neighbors.push_back({7, {-0.5, 1e300}, 0.1});  // 0.1 is not exact: bit test
  reply.einn_accesses = {10, 20, 3, 4, 1, 2};
  reply.inn_accesses = {30, 40, 5, 6, 0, 0};

  std::vector<uint8_t> bytes;
  EncodeKnnReply(99, reply, &bytes);
  Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.opcode(), Opcode::kKnnReply);

  Result<core::ServerReply> decoded = DecodeKnnReply(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(*decoded, reply);  // memberwise, doubles bitwise
}

TEST(WireTest, EmptyReplyRoundTrips) {
  core::ServerReply reply;
  std::vector<uint8_t> bytes;
  EncodeKnnReply(1, reply, &bytes);
  Result<core::ServerReply> decoded = DecodeKnnReply(DecodeOne(bytes).payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, reply);
}

TEST(WireTest, ErrorReplyRoundTrips) {
  ErrorReply error{ErrorCode::kInvalidArgument, "k must be positive, got -3"};
  std::vector<uint8_t> bytes;
  EncodeError(55, error, &bytes);
  Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.opcode(), Opcode::kError);
  EXPECT_EQ(frame.header.request_id, 55u);

  Result<ErrorReply> decoded = DecodeError(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->code, error.code);
  EXPECT_EQ(decoded->message, error.message);
}

TEST(WireTest, PingPongCarryNoPayload) {
  std::vector<uint8_t> bytes;
  EncodePing(3, &bytes);
  EncodePong(3, &bytes);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(bytes.data(), bytes.size()).ok());
  Frame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.opcode(), Opcode::kPing);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.opcode(), Opcode::kPong);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireTest, TrailingGarbageInPayloadIsRejected) {
  KnnRequest request;
  request.q = {1, 2};
  request.k = 3;
  std::vector<uint8_t> bytes;
  EncodeKnnRequest(1, request, &bytes);
  Frame frame = DecodeOne(bytes);
  frame.payload.push_back(0xAB);  // one extra byte past the message
  EXPECT_FALSE(DecodeKnnRequest(frame.payload).ok());
}

TEST(WireTest, TruncatedPayloadIsRejected) {
  core::ServerReply reply;
  reply.neighbors.push_back({1, {2, 3}, 4});
  std::vector<uint8_t> bytes;
  EncodeKnnReply(1, reply, &bytes);
  Frame frame = DecodeOne(bytes);
  frame.payload.pop_back();
  EXPECT_FALSE(DecodeKnnReply(frame.payload).ok());
}

// --- the validation table (satellite: protocol-boundary input validation) --

KnnRequest ValidRequest() {
  KnnRequest request;
  request.q = {100.0, 200.0};
  request.k = 5;
  request.already_certified = 2;
  request.bounds = {1.0, 50.0, 7};
  return request;
}

TEST(ValidateKnnRequestTest, AcceptsAValidRequest) {
  EXPECT_TRUE(ValidateKnnRequest(ValidRequest()).ok());
  KnnRequest bare;
  bare.q = {0, 0};
  bare.k = 1;
  EXPECT_TRUE(ValidateKnnRequest(bare).ok());
}

TEST(ValidateKnnRequestTest, RejectsNonPositiveK) {
  KnnRequest request = ValidRequest();
  request.k = 0;
  request.already_certified = 0;
  EXPECT_EQ(ValidateKnnRequest(request).code(), Status::Code::kInvalidArgument);
  request.k = -5;
  EXPECT_EQ(ValidateKnnRequest(request).code(), Status::Code::kInvalidArgument);
}

TEST(ValidateKnnRequestTest, RejectsNonFiniteCoordinates) {
  const double bad[] = {std::numeric_limits<double>::quiet_NaN(),
                        std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()};
  for (double v : bad) {
    KnnRequest request = ValidRequest();
    request.q.x = v;
    EXPECT_EQ(ValidateKnnRequest(request).code(), Status::Code::kInvalidArgument);
    request = ValidRequest();
    request.q.y = v;
    EXPECT_EQ(ValidateKnnRequest(request).code(), Status::Code::kInvalidArgument);
  }
}

TEST(ValidateKnnRequestTest, RejectsInconsistentBounds) {
  KnnRequest request = ValidRequest();
  request.bounds = {50.0, 1.0, INT64_MAX};  // lower > upper
  EXPECT_EQ(ValidateKnnRequest(request).code(), Status::Code::kInvalidArgument);

  request = ValidRequest();
  request.bounds = {std::numeric_limits<double>::quiet_NaN(), std::nullopt, INT64_MAX};
  EXPECT_EQ(ValidateKnnRequest(request).code(), Status::Code::kInvalidArgument);

  request = ValidRequest();
  request.bounds = {std::nullopt, -1.0, INT64_MAX};  // negative distance bound
  EXPECT_EQ(ValidateKnnRequest(request).code(), Status::Code::kInvalidArgument);
}

TEST(ValidateKnnRequestTest, RejectsAlreadyCertifiedOutsideZeroToK) {
  KnnRequest request = ValidRequest();
  request.already_certified = -1;
  EXPECT_EQ(ValidateKnnRequest(request).code(), Status::Code::kInvalidArgument);
  request.already_certified = request.k + 1;
  EXPECT_EQ(ValidateKnnRequest(request).code(), Status::Code::kInvalidArgument);
  request.already_certified = request.k;  // == k is allowed
  EXPECT_TRUE(ValidateKnnRequest(request).ok());
}

}  // namespace
}  // namespace senn::rpc
