// Protocol-boundary hardening regression tests (satellite: input
// validation). Hand-crafted malformed and semantically invalid frames go
// through the full loopback dispatch path; every one must come back as a
// well-formed kError reply with the right code — never a crash, never a
// silent empty kKnnReply.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/rng.h"
#include "src/core/server.h"
#include "src/rpc/client.h"
#include "src/rpc/loopback.h"
#include "src/rpc/service.h"
#include "src/rpc/wire.h"

namespace senn::rpc {
namespace {

using geom::Vec2;

class ValidationTest : public ::testing::Test {
 protected:
  ValidationTest() {
    Rng rng = Rng(20060403).Stream("validation/world");
    std::vector<core::Poi> pois;
    for (int i = 0; i < 300; ++i) {
      pois.push_back({i, {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}});
    }
    server_ = std::make_unique<core::SpatialServer>(std::move(pois));
    service_ = std::make_unique<QueryService>(server_.get(), ServiceOptions{});
    transport_ = std::make_unique<LoopbackTransport>(service_.get());
  }

  // Sends raw bytes, then decodes every reply frame the dispatch produced.
  std::vector<Frame> Exchange(const std::vector<uint8_t>& bytes) {
    EXPECT_TRUE(transport_->Send(bytes.data(), bytes.size()).ok());
    std::vector<uint8_t> reply_bytes;
    EXPECT_TRUE(transport_->Receive(&reply_bytes).ok());
    FrameDecoder decoder;
    EXPECT_TRUE(decoder.Feed(reply_bytes.data(), reply_bytes.size()).ok());
    std::vector<Frame> frames;
    Frame frame;
    while (decoder.Next(&frame)) frames.push_back(std::move(frame));
    return frames;
  }

  // Asserts the frame is a decodable kError with the given code.
  void ExpectError(const Frame& frame, ErrorCode code, uint64_t request_id) {
    EXPECT_EQ(frame.opcode(), Opcode::kError);
    EXPECT_EQ(frame.header.request_id, request_id);
    Result<ErrorReply> error = DecodeError(frame.payload);
    ASSERT_TRUE(error.ok()) << "kError reply itself must be well-formed";
    EXPECT_EQ(error->code, code);
    EXPECT_FALSE(error->message.empty());
  }

  std::unique_ptr<core::SpatialServer> server_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<LoopbackTransport> transport_;
};

KnnRequest BadRequest(double x, double y, int32_t k, int32_t certified = 0) {
  KnnRequest request;
  request.q = {x, y};
  request.k = k;
  request.already_certified = certified;
  return request;
}

TEST_F(ValidationTest, NonPositiveKGetsInvalidArgument) {
  std::vector<uint8_t> bytes;
  EncodeKnnRequest(1, BadRequest(10, 10, 0), &bytes);
  EncodeKnnRequest(2, BadRequest(10, 10, -5), &bytes);
  std::vector<Frame> replies = Exchange(bytes);
  ASSERT_EQ(replies.size(), 2u);
  ExpectError(replies[0], ErrorCode::kInvalidArgument, 1);
  ExpectError(replies[1], ErrorCode::kInvalidArgument, 2);
}

TEST_F(ValidationTest, NonFiniteCoordinatesGetInvalidArgument) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<uint8_t> bytes;
  EncodeKnnRequest(1, BadRequest(nan, 10, 3), &bytes);
  EncodeKnnRequest(2, BadRequest(10, inf, 3), &bytes);
  EncodeKnnRequest(3, BadRequest(-inf, nan, 3), &bytes);
  std::vector<Frame> replies = Exchange(bytes);
  ASSERT_EQ(replies.size(), 3u);
  for (size_t i = 0; i < replies.size(); ++i) {
    ExpectError(replies[i], ErrorCode::kInvalidArgument, i + 1);
  }
}

TEST_F(ValidationTest, InconsistentPruneBoundsGetInvalidArgument) {
  KnnRequest crossed = BadRequest(10, 10, 3);
  crossed.bounds = {100.0, 5.0, INT64_MAX};  // lower > upper
  KnnRequest nan_bound = BadRequest(10, 10, 3);
  nan_bound.bounds = {std::numeric_limits<double>::quiet_NaN(), std::nullopt, INT64_MAX};
  KnnRequest negative = BadRequest(10, 10, 3);
  negative.bounds = {std::nullopt, -2.0, INT64_MAX};
  KnnRequest over_certified = BadRequest(10, 10, 3, 4);  // certified > k

  std::vector<uint8_t> bytes;
  EncodeKnnRequest(1, crossed, &bytes);
  EncodeKnnRequest(2, nan_bound, &bytes);
  EncodeKnnRequest(3, negative, &bytes);
  EncodeKnnRequest(4, over_certified, &bytes);
  std::vector<Frame> replies = Exchange(bytes);
  ASSERT_EQ(replies.size(), 4u);
  for (size_t i = 0; i < replies.size(); ++i) {
    ExpectError(replies[i], ErrorCode::kInvalidArgument, i + 1);
  }
}

TEST_F(ValidationTest, UndecodablePayloadGetsMalformedFrame) {
  // A kKnnRequest frame whose payload is three garbage bytes: the header is
  // fine (it frames correctly), the payload decoder must reject it.
  std::vector<uint8_t> bytes;
  EncodeFrame(Opcode::kKnnRequest, 7, {0xDE, 0xAD, 0xBF}, &bytes);
  std::vector<Frame> replies = Exchange(bytes);
  ASSERT_EQ(replies.size(), 1u);
  ExpectError(replies[0], ErrorCode::kMalformedFrame, 7);
}

TEST_F(ValidationTest, TrailingGarbageInPayloadGetsMalformedFrame) {
  KnnRequest request = BadRequest(10, 10, 3);
  std::vector<uint8_t> one;
  EncodeKnnRequest(9, request, &one);
  // Graft 4 extra bytes into the payload and fix up the length field.
  std::vector<uint8_t> payload(one.begin() + static_cast<long>(kHeaderSize), one.end());
  payload.insert(payload.end(), {1, 2, 3, 4});
  std::vector<uint8_t> bytes;
  EncodeFrame(Opcode::kKnnRequest, 9, payload, &bytes);
  std::vector<Frame> replies = Exchange(bytes);
  ASSERT_EQ(replies.size(), 1u);
  ExpectError(replies[0], ErrorCode::kMalformedFrame, 9);
}

TEST_F(ValidationTest, UnknownOpcodeGetsUnsupportedOpcode) {
  std::vector<uint8_t> bytes;
  EncodeFrame(static_cast<Opcode>(200), 11, {}, &bytes);
  std::vector<Frame> replies = Exchange(bytes);
  ASSERT_EQ(replies.size(), 1u);
  ExpectError(replies[0], ErrorCode::kUnsupportedOpcode, 11);
}

TEST_F(ValidationTest, ValidRequestsAroundInvalidOnesStillGetAnswered) {
  // The invalid request must not poison its neighbors in the same group.
  KnnRequest good;
  good.q = {500, 500};
  good.k = 5;
  std::vector<uint8_t> bytes;
  EncodeKnnRequest(1, good, &bytes);
  EncodeKnnRequest(2, BadRequest(10, 10, -1), &bytes);
  EncodeKnnRequest(3, good, &bytes);
  std::vector<Frame> replies = Exchange(bytes);
  ASSERT_EQ(replies.size(), 3u);

  const core::ServerReply want = server_->QueryKnn(good.q, good.k);
  EXPECT_EQ(replies[0].opcode(), Opcode::kKnnReply);
  Result<core::ServerReply> first = DecodeKnnReply(replies[0].payload);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->neighbors, want.neighbors);
  ExpectError(replies[1], ErrorCode::kInvalidArgument, 2);
  EXPECT_EQ(replies[2].opcode(), Opcode::kKnnReply);
  EXPECT_EQ(replies[2].header.request_id, 3u);
}

TEST_F(ValidationTest, GarbageByteStreamGetsOneFramingErrorThenPoison) {
  // A valid request followed by header garbage: the valid one is answered,
  // the corruption gets a kError with request id 0, and the transport
  // refuses further sends (the TCP server closes the connection here).
  KnnRequest good;
  good.q = {500, 500};
  good.k = 2;
  std::vector<uint8_t> bytes;
  EncodeKnnRequest(21, good, &bytes);
  for (size_t i = 0; i < kHeaderSize; ++i) bytes.push_back(0xFF);
  std::vector<Frame> replies = Exchange(bytes);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].opcode(), Opcode::kKnnReply);
  EXPECT_EQ(replies[0].header.request_id, 21u);
  ExpectError(replies[1], ErrorCode::kMalformedFrame, 0);

  uint8_t byte = 0;
  EXPECT_EQ(transport_->Send(&byte, 1).code(), Status::Code::kFailedPrecondition);
}

TEST_F(ValidationTest, ClientSurfacesServerErrorsAsStatuses) {
  Client client(transport_.get());
  Result<core::ServerReply> result = client.Knn(BadRequest(10, 10, -7));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  // The engine was never touched and the connection still works.
  KnnRequest good;
  good.q = {1, 1};
  good.k = 1;
  EXPECT_TRUE(client.Knn(good).ok());
}

}  // namespace
}  // namespace senn::rpc
