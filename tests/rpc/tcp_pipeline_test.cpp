// Multi-client pipelined TCP tests of rpc::Server (satellite: concurrency).
// Runs under TSan and ASan via check.sh stages 2-3.
//
// The load test drives an in-process server with several client threads,
// each pipelining bursts of distinguishable queries, and asserts the two
// transport guarantees every client depends on:
//   * reply <-> request-id matching: the reply for id X answers the query
//     sent under X (checked by giving every request a unique query point
//     and comparing against a local SpatialServer oracle);
//   * per-connection FIFO: reply frames arrive in send order.
#include "src/rpc/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/server.h"
#include "src/rpc/client.h"
#include "src/rpc/tcp.h"

namespace senn::rpc {
namespace {

using geom::Vec2;

std::vector<core::Poi> WorldPois(int n = 500, double extent = 1000.0) {
  Rng rng = Rng(20060403).Stream("tcp/world");
  std::vector<core::Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng.Uniform(0, extent), rng.Uniform(0, extent)}});
  }
  return pois;
}

Result<std::unique_ptr<TcpClientTransport>> ConnectTo(const Server& server) {
  return TcpClientTransport::Connect("127.0.0.1", server.port());
}

TEST(TcpPipelineTest, BlockingRoundTripMatchesDirectQuery) {
  std::vector<core::Poi> pois = WorldPois();
  core::SpatialServer oracle(pois);
  core::SpatialServer served(pois);
  Server server(&served, {});
  ASSERT_TRUE(server.Start().ok());

  auto transport = ConnectTo(server);
  ASSERT_TRUE(transport.ok()) << transport.status().message();
  Client client(transport->get());

  KnnRequest request;
  request.q = {400, 600};
  request.k = 7;
  Result<core::ServerReply> reply = client.Knn(request);
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  EXPECT_EQ(*reply, oracle.QueryKnn(request.q, request.k));
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
}

TEST(TcpPipelineTest, MultiClientPipelinedLoadKeepsMatchingAndFifo) {
  constexpr int kClients = 4;
  constexpr int kBursts = 8;
  constexpr int kDepth = 8;  // pipeline depth per burst

  std::vector<core::Poi> pois = WorldPois();
  core::SpatialServer served(pois);
  ServerOptions options;
  options.worker_threads = 3;
  options.service.batch.max_group = 4;  // shared traversals inside bursts
  options.service.batch.cluster_cell_m = 200.0;
  Server server(&served, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &server, &pois, &failures] {
      // QueryKnn bumps the server's access counters, so each thread gets a
      // private oracle over the shared (read-only) POI set.
      core::SpatialServer oracle(pois);
      auto transport = ConnectTo(server);
      if (!transport.ok()) {
        ++failures;
        return;
      }
      Client client(transport->get());
      Rng rng = Rng(20060403).Stream("tcp/client", static_cast<uint64_t>(c));
      for (int burst = 0; burst < kBursts; ++burst) {
        // Every request gets a unique query point, so a mismatched reply
        // (answering some other request) is detectable.
        std::vector<KnnRequest> requests;
        std::vector<uint64_t> ids;
        for (int d = 0; d < kDepth; ++d) {
          KnnRequest request;
          request.q = {rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
          request.k = 1 + static_cast<int32_t>(rng.NextIndex(8));
          requests.push_back(request);
          ids.push_back(client.SendKnn(request));
        }
        if (!client.Flush().ok()) {
          ++failures;
          return;
        }
        for (int d = 0; d < kDepth; ++d) {
          Result<core::ServerReply> reply = client.Wait(ids[static_cast<size_t>(d)]);
          if (!reply.ok()) {
            ++failures;
            return;
          }
          // reply <-> request-id matching, via the oracle. The batched
          // answering path is bitwise-equivalent to QueryKnn (PR 6), so
          // neighbors must match exactly.
          const core::ServerReply want =
              oracle.QueryKnn(requests[static_cast<size_t>(d)].q,
                              requests[static_cast<size_t>(d)].k);
          if (reply->neighbors != want.neighbors) {
            ++failures;
            return;
          }
        }
      }
      // Per-connection FIFO: the reply log is exactly the send order.
      const std::vector<uint64_t>& log = client.reply_log();
      if (log.size() != static_cast<size_t>(kBursts * kDepth)) {
        ++failures;
        return;
      }
      for (size_t i = 0; i < log.size(); ++i) {
        if (log[i] != i + 1) {  // ids are 1-based and consecutive
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(counters.frames_received,
            static_cast<uint64_t>(kClients) * kBursts * kDepth);
  EXPECT_EQ(counters.framing_errors, 0u);
  server.Stop();
  EXPECT_EQ(server.service().stats().requests,
            static_cast<uint64_t>(kClients) * kBursts * kDepth);
}

TEST(TcpPipelineTest, MalformedBytesGetErrorReplyThenClose) {
  std::vector<core::Poi> pois = WorldPois(100);
  core::SpatialServer served(pois);
  Server server(&served, {});
  ASSERT_TRUE(server.Start().ok());

  auto transport = ConnectTo(server);
  ASSERT_TRUE(transport.ok());
  // A valid request followed by garbage: expect its reply, then the framing
  // kError, then the server closes the connection.
  std::vector<uint8_t> bytes;
  KnnRequest request;
  request.q = {100, 100};
  request.k = 2;
  EncodeKnnRequest(31, request, &bytes);
  for (int i = 0; i < 24; ++i) bytes.push_back(0xEE);
  ASSERT_TRUE((*transport)->Send(bytes.data(), bytes.size()).ok());

  FrameDecoder decoder;
  std::vector<Frame> frames;
  bool closed = false;
  while (frames.size() < 2 && !closed) {
    std::vector<uint8_t> chunk;
    Status st = (*transport)->Receive(&chunk);
    if (!st.ok()) {
      closed = true;
      break;
    }
    ASSERT_TRUE(decoder.Feed(chunk.data(), chunk.size()).ok());
    Frame frame;
    while (decoder.Next(&frame)) frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].opcode(), Opcode::kKnnReply);
  EXPECT_EQ(frames[0].header.request_id, 31u);
  EXPECT_EQ(frames[1].opcode(), Opcode::kError);
  Result<ErrorReply> error = DecodeError(frames[1].payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, ErrorCode::kMalformedFrame);
  // The connection is torn down after the error frame.
  std::vector<uint8_t> rest;
  Status st = (*transport)->Receive(&rest);
  EXPECT_EQ(st.code(), Status::Code::kFailedPrecondition) << st.message();
  server.Stop();
}

TEST(TcpPipelineTest, AdmissionControlShedsWithOverloaded) {
  std::vector<core::Poi> pois = WorldPois(100);
  core::SpatialServer served(pois);
  ServerOptions options;
  options.max_inflight_requests = 2;  // tiny cap: a burst of 8 must shed
  Server server(&served, options);
  ASSERT_TRUE(server.Start().ok());

  auto transport = ConnectTo(server);
  ASSERT_TRUE(transport.ok());
  Client client(transport->get());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    KnnRequest request;
    request.q = {10.0 * i, 10.0 * i};
    request.k = 1;
    ids.push_back(client.SendKnn(request));
  }
  ASSERT_TRUE(client.Flush().ok());
  int shed = 0, answered = 0;
  for (uint64_t id : ids) {
    Result<core::ServerReply> reply = client.Wait(id);
    if (reply.ok()) {
      ++answered;
    } else {
      EXPECT_EQ(reply.status().code(), Status::Code::kFailedPrecondition)
          << reply.status().message();
      ++shed;
    }
  }
  // The burst may land as one group (all shed) or split across reads; either
  // way anything beyond the cap came back kOverloaded, and the connection
  // survived.
  EXPECT_GT(shed, 0);
  EXPECT_EQ(shed + answered, 8);
  EXPECT_EQ(server.counters().requests_shed, static_cast<uint64_t>(shed));
  KnnRequest request;
  request.q = {1, 1};
  request.k = 1;
  EXPECT_TRUE(client.Knn(request).ok());  // connection still usable
  server.Stop();
}

TEST(TcpPipelineTest, StopWhileClientsConnectedShutsDownCleanly) {
  std::vector<core::Poi> pois = WorldPois(100);
  core::SpatialServer served(pois);
  Server server(&served, {});
  ASSERT_TRUE(server.Start().ok());
  auto transport = ConnectTo(server);
  ASSERT_TRUE(transport.ok());
  Client client(transport->get());
  KnnRequest request;
  request.q = {5, 5};
  request.k = 1;
  ASSERT_TRUE(client.Knn(request).ok());
  server.Stop();  // with the connection open
  // A second Stop is a no-op.
  server.Stop();
}

}  // namespace
}  // namespace senn::rpc
