#include "src/roadnet/generator.h"

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"

namespace senn::roadnet {
namespace {

TEST(GeneratorTest, DefaultNetworkIsValidAndConnected) {
  Rng rng(1);
  Graph g = GenerateRoadNetwork(RoadNetworkConfig{}, &rng);
  EXPECT_TRUE(g.Validate().ok()) << g.Validate().ToString();
  EXPECT_TRUE(g.IsConnected());
  EXPECT_GT(g.node_count(), 100u);
  EXPECT_GT(g.edge_count(), g.node_count());  // grid-like: E > V
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  Rng rng_a(7), rng_b(7);
  Graph a = GenerateRoadNetwork(RoadNetworkConfig{}, &rng_a);
  Graph b = GenerateRoadNetwork(RoadNetworkConfig{}, &rng_b);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (size_t n = 0; n < a.node_count(); ++n) {
    EXPECT_EQ(a.node_position(static_cast<NodeId>(n)),
              b.node_position(static_cast<NodeId>(n)));
  }
}

TEST(GeneratorTest, ContainsAllRoadClasses) {
  Rng rng(2);
  RoadNetworkConfig cfg;
  cfg.diagonal_highways = 2;
  Graph g = GenerateRoadNetwork(cfg, &rng);
  std::map<RoadClass, int> counts;
  for (size_t e = 0; e < g.edge_count(); ++e) {
    ++counts[g.edge(static_cast<EdgeId>(e)).road_class];
  }
  EXPECT_GT(counts[RoadClass::kHighway], 0);
  EXPECT_GT(counts[RoadClass::kSecondary], 0);
  EXPECT_GT(counts[RoadClass::kResidential], 0);
  // Local streets dominate, as in real street networks.
  EXPECT_GT(counts[RoadClass::kResidential], counts[RoadClass::kHighway]);
}

TEST(GeneratorTest, NodesStayInsideArea) {
  Rng rng(3);
  RoadNetworkConfig cfg;
  cfg.area_side_m = 5000;
  Graph g = GenerateRoadNetwork(cfg, &rng);
  for (size_t n = 0; n < g.node_count(); ++n) {
    geom::Vec2 p = g.node_position(static_cast<NodeId>(n));
    EXPECT_GE(p.x, 0.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.x, 5000.0);
    EXPECT_LE(p.y, 5000.0);
  }
}

TEST(GeneratorTest, RuralConfigUsesRuralClass) {
  Rng rng(4);
  RoadNetworkConfig cfg;
  cfg.local_class = RoadClass::kRural;
  cfg.block_spacing_m = 500;
  cfg.removal_fraction = 0.3;
  Graph g = GenerateRoadNetwork(cfg, &rng);
  EXPECT_TRUE(g.IsConnected());
  int rural = 0;
  for (size_t e = 0; e < g.edge_count(); ++e) {
    rural += g.edge(static_cast<EdgeId>(e)).road_class == RoadClass::kRural;
  }
  EXPECT_GT(rural, 0);
}

TEST(GeneratorTest, HeavyRemovalStaysConnected) {
  Rng rng(5);
  RoadNetworkConfig cfg;
  cfg.removal_fraction = 0.45;
  Graph g = GenerateRoadNetwork(cfg, &rng);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GeneratorTest, LargeAreaScales) {
  Rng rng(6);
  RoadNetworkConfig cfg;
  cfg.area_side_m = MilesToMeters(30.0);
  cfg.block_spacing_m = 400.0;
  Graph g = GenerateRoadNetwork(cfg, &rng);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_GT(g.node_count(), 10000u);
}

TEST(GeneratorTest, NoDiagonalHighwaysWhenDisabled) {
  Rng rng(7);
  RoadNetworkConfig cfg;
  cfg.diagonal_highways = 0;
  cfg.highway_every = 0;  // and no surface highways either
  Graph g = GenerateRoadNetwork(cfg, &rng);
  for (size_t e = 0; e < g.edge_count(); ++e) {
    EXPECT_NE(g.edge(static_cast<EdgeId>(e)).road_class, RoadClass::kHighway);
  }
}

}  // namespace
}  // namespace senn::roadnet
