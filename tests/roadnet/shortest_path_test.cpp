#include "src/roadnet/shortest_path.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/roadnet/generator.h"

namespace senn::roadnet {
namespace {

// 3x3 grid with unit spacing, ids row-major:
//   6 7 8
//   3 4 5
//   0 1 2
Graph MakeGrid3() {
  Graph g;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) g.AddNode({static_cast<double>(x), static_cast<double>(y)});
  }
  auto add = [&](NodeId a, NodeId b) {
    ASSERT_TRUE(g.AddEdge(a, b, RoadClass::kResidential).ok());
  };
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      NodeId n = y * 3 + x;
      if (x < 2) add(n, n + 1);
      if (y < 2) add(n, n + 3);
    }
  }
  return g;
}

TEST(DijkstraTest, GridDistances) {
  Graph g = MakeGrid3();
  std::vector<double> dist = DijkstraFrom(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[4], 2.0);  // Manhattan path
  EXPECT_DOUBLE_EQ(dist[8], 4.0);
}

TEST(DijkstraTest, UnreachableNodesAreInfinite) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  g.AddNode({1, 0});
  std::vector<double> dist = DijkstraFrom(g, a);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_EQ(dist[1], kUnreachable);
}

TEST(DijkstraTest, MaxDistanceCutsOff) {
  Graph g = MakeGrid3();
  std::vector<double> dist = DijkstraFrom(g, 0, 1.5);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  // Nodes beyond the bound may be unreported.
  EXPECT_TRUE(dist[8] == kUnreachable || dist[8] == 4.0);
  EXPECT_NE(dist[8], 3.0);
}

TEST(RouterTest, FindsShortestGridPath) {
  Graph g = MakeGrid3();
  Router router(&g);
  std::vector<NodeId> path = router.FindPath(0, 8);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 8);
  EXPECT_DOUBLE_EQ(router.last_path_length(), 4.0);
  // Path must be a connected chain.
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    bool adjacent = false;
    for (EdgeId eid : g.incident_edges(path[i])) {
      adjacent |= g.edge(eid).OtherEnd(path[i]) == path[i + 1];
    }
    EXPECT_TRUE(adjacent) << "hop " << i;
  }
}

TEST(RouterTest, PathToSelf) {
  Graph g = MakeGrid3();
  Router router(&g);
  std::vector<NodeId> path = router.FindPath(4, 4);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 4);
  EXPECT_DOUBLE_EQ(router.last_path_length(), 0.0);
}

TEST(RouterTest, UnreachableReturnsEmpty) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  Router router(&g);
  EXPECT_TRUE(router.FindPath(a, b).empty());
  EXPECT_EQ(router.last_path_length(), kUnreachable);
}

TEST(RouterTest, RepeatedQueriesMatchDijkstra) {
  Rng rng(42);
  RoadNetworkConfig cfg;
  cfg.area_side_m = 2000;
  cfg.block_spacing_m = 200;
  Graph g = GenerateRoadNetwork(cfg, &rng);
  ASSERT_TRUE(g.Validate().ok());
  Router router(&g);
  for (int trial = 0; trial < 30; ++trial) {
    NodeId src = static_cast<NodeId>(rng.NextIndex(g.node_count()));
    NodeId dst = static_cast<NodeId>(rng.NextIndex(g.node_count()));
    std::vector<double> dist = DijkstraFrom(g, src);
    std::vector<NodeId> path = router.FindPath(src, dst);
    if (dist[static_cast<size_t>(dst)] == kUnreachable) {
      EXPECT_TRUE(path.empty());
    } else {
      ASSERT_FALSE(path.empty());
      EXPECT_NEAR(router.last_path_length(), dist[static_cast<size_t>(dst)], 1e-6)
          << "trial " << trial;
    }
  }
}

TEST(NetworkDistanceTest, SameEdgeDirect) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({10, 0});
  EdgeId e = *g.AddEdge(a, b, RoadClass::kResidential);
  EXPECT_DOUBLE_EQ(NetworkDistance(g, {e, 2.0}, {e, 7.5}), 5.5);
}

TEST(NetworkDistanceTest, AcrossGrid) {
  Graph g = MakeGrid3();
  // Point 0.5 along edge 0-1 to point 0.5 along edge 7-8.
  EdgeId e01 = 0;  // first edge added is 0-1
  // Find the edge between 7 and 8.
  EdgeId e78 = kInvalidEdge;
  for (EdgeId eid : g.incident_edges(7)) {
    if (g.edge(eid).OtherEnd(7) == 8) e78 = eid;
  }
  ASSERT_NE(e78, kInvalidEdge);
  double offset78 = g.edge(e78).a == 7 ? 0.5 : 0.5;  // symmetric either way
  double d = NetworkDistance(g, {e01, 0.5}, {e78, offset78});
  // Shortest route: 0.5 to node 1, up 2 to node 7, 0.5 along 7-8 (or the
  // symmetric variant): total 3.0.
  EXPECT_NEAR(d, 3.0, 1e-9);
}

TEST(NetworkDistanceOracleTest, MatchesDijkstraOnNodes) {
  Rng rng(43);
  RoadNetworkConfig cfg;
  cfg.area_side_m = 1500;
  cfg.block_spacing_m = 150;
  Graph g = GenerateRoadNetwork(cfg, &rng);
  // Source at a node (offset 0 of one of its edges).
  NodeId src = static_cast<NodeId>(rng.NextIndex(g.node_count()));
  ASSERT_FALSE(g.incident_edges(src).empty());
  EdgeId src_edge = g.incident_edges(src)[0];
  double src_offset = g.edge(src_edge).a == src ? 0.0 : g.edge(src_edge).length;
  NetworkDistanceOracle oracle(&g, {src_edge, src_offset});
  std::vector<double> dist = DijkstraFrom(g, src);
  for (int trial = 0; trial < 50; ++trial) {
    NodeId target = static_cast<NodeId>(rng.NextIndex(g.node_count()));
    if (g.incident_edges(target).empty()) continue;
    EdgeId te = g.incident_edges(target)[0];
    double toff = g.edge(te).a == target ? 0.0 : g.edge(te).length;
    double got = oracle.DistanceTo({te, toff});
    EXPECT_NEAR(got, dist[static_cast<size_t>(target)], 1e-6) << "trial " << trial;
  }
}

TEST(NetworkDistanceTest, EuclideanLowerBoundProperty) {
  // ED(a, b) <= ND(a, b) for all point pairs — the property IER relies on.
  Rng rng(44);
  RoadNetworkConfig cfg;
  cfg.area_side_m = 1200;
  cfg.block_spacing_m = 200;
  Graph g = GenerateRoadNetwork(cfg, &rng);
  for (int trial = 0; trial < 60; ++trial) {
    EdgeId e1 = static_cast<EdgeId>(rng.NextIndex(g.edge_count()));
    EdgeId e2 = static_cast<EdgeId>(rng.NextIndex(g.edge_count()));
    EdgePoint p1{e1, rng.Uniform(0, g.edge(e1).length)};
    EdgePoint p2{e2, rng.Uniform(0, g.edge(e2).length)};
    double nd = NetworkDistance(g, p1, p2);
    double ed = geom::Dist(g.PositionOf(p1), g.PositionOf(p2));
    EXPECT_LE(ed, nd + 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace senn::roadnet
