#include "src/roadnet/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/rng.h"
#include "src/roadnet/generator.h"

namespace senn::roadnet {
namespace {

TEST(RoadClassParseTest, AllNamesRoundTrip) {
  for (RoadClass rc : {RoadClass::kHighway, RoadClass::kSecondary,
                       RoadClass::kResidential, RoadClass::kRural}) {
    Result<RoadClass> parsed = ParseRoadClass(RoadClassName(rc));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, rc);
  }
  EXPECT_TRUE(ParseRoadClass("autobahn").status().IsNotFound());
}

TEST(GraphIoTest, RoundTripPreservesEverything) {
  Rng rng(1);
  RoadNetworkConfig cfg;
  cfg.area_side_m = 1500;
  cfg.diagonal_highways = 2;
  Graph original = GenerateRoadNetwork(cfg, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(original, &buffer).ok());
  Result<Graph> loaded = LoadGraph(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->node_count(), original.node_count());
  ASSERT_EQ(loaded->edge_count(), original.edge_count());
  for (size_t n = 0; n < original.node_count(); ++n) {
    EXPECT_EQ(loaded->node_position(static_cast<NodeId>(n)),
              original.node_position(static_cast<NodeId>(n)));
  }
  for (size_t e = 0; e < original.edge_count(); ++e) {
    const Edge& a = original.edge(static_cast<EdgeId>(e));
    const Edge& b = loaded->edge(static_cast<EdgeId>(e));
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.road_class, b.road_class);
    EXPECT_DOUBLE_EQ(a.length, b.length);
  }
  EXPECT_TRUE(loaded->Validate().ok());
}

TEST(GraphIoTest, EmptyGraphRoundTrips) {
  Graph empty;
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(empty, &buffer).ok());
  Result<Graph> loaded = LoadGraph(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->node_count(), 0u);
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "senn-roadnet 1\n"
      "# a comment\n"
      "\n"
      "node 0 0\n"
      "node 3 4\n"
      "edge 0 1 secondary\n");
  Result<Graph> loaded = LoadGraph(&in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->node_count(), 2u);
  EXPECT_EQ(loaded->edge_count(), 1u);
  EXPECT_DOUBLE_EQ(loaded->edge(0).length, 5.0);
}

TEST(GraphIoTest, RejectsBadMagic) {
  std::stringstream in("wrong-magic 1\n");
  EXPECT_TRUE(LoadGraph(&in).status().IsInvalidArgument());
}

TEST(GraphIoTest, RejectsBadVersion) {
  std::stringstream in("senn-roadnet 99\n");
  EXPECT_TRUE(LoadGraph(&in).status().IsInvalidArgument());
}

TEST(GraphIoTest, RejectsDanglingEdgeWithLineNumber) {
  std::stringstream in(
      "senn-roadnet 1\n"
      "node 0 0\n"
      "edge 0 7 residential\n");
  Status s = LoadGraph(&in).status();
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("line 3"), std::string::npos);
}

TEST(GraphIoTest, RejectsUnknownRecord) {
  std::stringstream in(
      "senn-roadnet 1\n"
      "vertex 0 0\n");
  EXPECT_TRUE(LoadGraph(&in).status().IsInvalidArgument());
}

TEST(GraphIoTest, RejectsEmptyInput) {
  std::stringstream in("");
  EXPECT_TRUE(LoadGraph(&in).status().IsInvalidArgument());
}

TEST(GraphIoTest, FileRoundTrip) {
  Rng rng(2);
  RoadNetworkConfig cfg;
  cfg.area_side_m = 800;
  Graph original = GenerateRoadNetwork(cfg, &rng);
  std::string path = ::testing::TempDir() + "/graph_io_test.roadnet";
  ASSERT_TRUE(SaveGraphToFile(original, path).ok());
  Result<Graph> loaded = LoadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->edge_count(), original.edge_count());
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  EXPECT_TRUE(LoadGraphFromFile("/nonexistent/dir/x.roadnet").status().IsNotFound());
}

TEST(PoiIoTest, RoundTrip) {
  std::vector<core::Poi> pois{{7, {1.5, -2.25}}, {9, {0, 0}}, {12, {1e6, 1e-6}}};
  std::stringstream buffer;
  ASSERT_TRUE(SavePois(pois, &buffer).ok());
  Result<std::vector<core::Poi>> loaded = LoadPois(&buffer);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*loaded)[i].id, pois[i].id);
    EXPECT_EQ((*loaded)[i].position, pois[i].position);
  }
}

TEST(PoiIoTest, RejectsWrongMagic) {
  std::stringstream in("senn-roadnet 1\n");
  EXPECT_TRUE(LoadPois(&in).status().IsInvalidArgument());
}

TEST(PoiIoTest, RejectsMalformedPoi) {
  std::stringstream in(
      "senn-pois 1\n"
      "poi 3 not-a-number 5\n");
  Status s = LoadPois(&in).status();
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(PoiIoTest, EmptySetRoundTrips) {
  std::stringstream buffer;
  ASSERT_TRUE(SavePois({}, &buffer).ok());
  Result<std::vector<core::Poi>> loaded = LoadPois(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace senn::roadnet
