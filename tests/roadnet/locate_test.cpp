#include "src/roadnet/locate.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/common/rng.h"
#include "src/roadnet/generator.h"

namespace senn::roadnet {
namespace {

TEST(ProjectTest, InteriorProjection) {
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({0, 0}, {10, 0}, {4, 3}), 4.0);
}

TEST(ProjectTest, ClampsToEndpoints) {
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({0, 0}, {10, 0}, {-5, 2}), 0.0);
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({0, 0}, {10, 0}, {15, 2}), 10.0);
}

TEST(ProjectTest, DegenerateSegment) {
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({3, 3}, {3, 3}, {7, 7}), 0.0);
}

TEST(EdgeLocatorTest, EmptyGraph) {
  Graph g;
  EdgeLocator locator(&g);
  double d = 0;
  EdgePoint p = locator.Nearest({0, 0}, &d);
  EXPECT_FALSE(p.IsValid());
}

TEST(EdgeLocatorTest, SingleEdgeSnap) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({100, 0});
  EdgeId e = *g.AddEdge(a, b, RoadClass::kResidential);
  EdgeLocator locator(&g, 50.0);
  double d = 0;
  EdgePoint p = locator.Nearest({30, 40}, &d);
  EXPECT_EQ(p.edge, e);
  EXPECT_NEAR(p.offset, 30.0, 1e-9);
  EXPECT_NEAR(d, 40.0, 1e-9);
}

TEST(EdgeLocatorTest, MatchesBruteForceOnGeneratedNetwork) {
  Rng rng(9);
  RoadNetworkConfig cfg;
  cfg.area_side_m = 2000;
  cfg.block_spacing_m = 250;
  Graph g = GenerateRoadNetwork(cfg, &rng);
  EdgeLocator locator(&g, 250.0);
  for (int trial = 0; trial < 100; ++trial) {
    geom::Vec2 q{rng.Uniform(-100, 2100), rng.Uniform(-100, 2100)};
    double got_d = 0;
    EdgePoint got = locator.Nearest(q, &got_d);
    // Brute force over all edges.
    double best = std::numeric_limits<double>::infinity();
    for (size_t e = 0; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(static_cast<EdgeId>(e));
      geom::Vec2 a = g.node_position(edge.a), b = g.node_position(edge.b);
      double off = ProjectOntoSegment(a, b, q);
      geom::Vec2 closest = a + (b - a) * (off / edge.length);
      best = std::min(best, geom::Dist(q, closest));
    }
    ASSERT_TRUE(got.IsValid());
    EXPECT_NEAR(got_d, best, 1e-6) << "trial " << trial;
    // The returned EdgePoint reproduces the reported distance.
    EXPECT_NEAR(geom::Dist(q, g.PositionOf(got)), got_d, 1e-6);
  }
}

TEST(EdgeLocatorTest, PointOnNetworkSnapsToItself) {
  Rng rng(10);
  RoadNetworkConfig cfg;
  cfg.area_side_m = 1000;
  Graph g = GenerateRoadNetwork(cfg, &rng);
  EdgeLocator locator(&g);
  for (int trial = 0; trial < 50; ++trial) {
    EdgeId e = static_cast<EdgeId>(rng.NextIndex(g.edge_count()));
    EdgePoint original{e, rng.Uniform(0, g.edge(e).length)};
    geom::Vec2 p = g.PositionOf(original);
    double d = 0;
    locator.Nearest(p, &d);
    EXPECT_NEAR(d, 0.0, 1e-6);
  }
}

}  // namespace
}  // namespace senn::roadnet
