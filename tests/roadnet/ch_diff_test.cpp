// Differential battery for the contraction-hierarchy oracle: CH distances
// must be EXACTLY (bitwise, EXPECT_EQ on doubles — not EXPECT_NEAR) equal
// to the Dijkstra baseline on every sampled pair, across grids, rings,
// degenerate graphs (single node, disconnected components, zero-weight
// edges, parallel edges, deep path chains) and generated road networks.
// Point queries (ch::Query), the many-to-one bucket variant
// (ch::BucketOracle) and EdgePoint queries (vs. NetworkDistanceOracle) are
// all held to the same standard, and preprocessing is checked to be
// deterministic (build twice, identical shortcut sets).
//
// Built twice (the batch_test idiom): the tier-1 ch_test binary defines
// SENN_CH_TRIALS to a cut-down count; ch_full_test uses the compiled-in
// default below for the slow randomized sweep.
#include "src/roadnet/ch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/roadnet/generator.h"
#include "src/roadnet/graph.h"
#include "src/roadnet/locate.h"
#include "src/roadnet/shortest_path.h"

#ifndef SENN_CH_TRIALS
#define SENN_CH_TRIALS 40
#endif

namespace senn::roadnet {
namespace {

constexpr int kTrials = SENN_CH_TRIALS;

// W x H grid, row-major node ids, optionally jittered so edge weights are
// "ugly" doubles with measure-zero ties.
Graph MakeGrid(int w, int h, double spacing, double jitter, Rng* rng) {
  Graph g;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double jx = jitter > 0 ? rng->Uniform(-jitter, jitter) : 0.0;
      double jy = jitter > 0 ? rng->Uniform(-jitter, jitter) : 0.0;
      g.AddNode({x * spacing + jx, y * spacing + jy});
    }
  }
  auto id = [w](int x, int y) { return static_cast<NodeId>(y * w + x); };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) {
        EXPECT_TRUE(g.AddEdge(id(x, y), id(x + 1, y), RoadClass::kResidential).ok());
      }
      if (y + 1 < h) {
        EXPECT_TRUE(g.AddEdge(id(x, y), id(x, y + 1), RoadClass::kResidential).ok());
      }
    }
  }
  return g;
}

Graph MakeRing(int n, double radius) {
  Graph g;
  for (int i = 0; i < n; ++i) {
    double angle = 2.0 * M_PI * i / n;
    g.AddNode({radius * std::cos(angle), radius * std::sin(angle)});
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(
        g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                  RoadClass::kSecondary)
            .ok());
  }
  return g;
}

// Every CH node-to-node distance from each source in `sources` to EVERY
// node must equal the Dijkstra baseline bitwise.
void ExpectNodeDistancesMatch(const Graph& g, const ch::Hierarchy& h,
                              const std::vector<NodeId>& sources,
                              const char* family) {
  ch::Query query(&h);
  for (NodeId s : sources) {
    std::vector<double> base = DijkstraFrom(g, s);
    for (size_t t = 0; t < g.node_count(); ++t) {
      EXPECT_EQ(query.NodeToNode(s, static_cast<NodeId>(t)), base[t])
          << family << ": source " << s << " target " << t;
    }
  }
}

// EdgePoint queries from a random source point: ch::Query and
// ch::BucketOracle must both reproduce NetworkDistanceOracle bitwise.
void ExpectEdgePointDistancesMatch(const Graph& g, const ch::Hierarchy& h,
                                   Rng* rng, int source_count, int target_count,
                                   const char* family) {
  if (g.edge_count() == 0) return;
  ch::Query point(&h);
  ch::BucketOracle bucket(&h);
  for (int s = 0; s < source_count; ++s) {
    EdgeId se = static_cast<EdgeId>(rng->NextIndex(g.edge_count()));
    EdgePoint src{se, rng->Uniform(0, g.edge(se).length)};
    NetworkDistanceOracle base(&g, src);
    point.SetSource(src);
    bucket.SetSource(src);
    for (int t = 0; t < target_count; ++t) {
      EdgeId te = static_cast<EdgeId>(rng->NextIndex(g.edge_count()));
      EdgePoint dst{te, rng->Uniform(0, g.edge(te).length)};
      double want = base.DistanceTo(dst);
      EXPECT_EQ(point.DistanceTo(dst), want)
          << family << ": point query, source edge " << se << " target edge " << te;
      EXPECT_EQ(bucket.DistanceTo(dst), want)
          << family << ": bucket query, source edge " << se << " target edge " << te;
    }
  }
}

TEST(ChDiffTest, ExactGridsAllPairsBitwise) {
  Rng rng = Rng(20060403).Stream("ch/grid-exact");
  for (auto [w, h] : {std::pair{3, 3}, {1, 7}, {5, 4}, {8, 8}}) {
    Graph g = MakeGrid(w, h, 100.0, 0.0, &rng);
    ASSERT_TRUE(g.Validate().ok());
    ch::Hierarchy hier = ch::Hierarchy::Build(g);
    std::vector<NodeId> sources;
    for (size_t s = 0; s < g.node_count(); ++s) sources.push_back(static_cast<NodeId>(s));
    ExpectNodeDistancesMatch(g, hier, sources, "exact-grid");
  }
}

TEST(ChDiffTest, JitteredGridsBitwise) {
  Rng world = Rng(20060403).Stream("ch/grid-jitter");
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng = world.Stream("trial", static_cast<uint64_t>(trial));
    int w = 2 + static_cast<int>(rng.NextIndex(9));
    int h = 2 + static_cast<int>(rng.NextIndex(9));
    Graph g = MakeGrid(w, h, 100.0, 30.0, &rng);
    ch::Hierarchy hier = ch::Hierarchy::Build(g);
    std::vector<NodeId> sources;
    for (int s = 0; s < 4; ++s) {
      sources.push_back(static_cast<NodeId>(rng.NextIndex(g.node_count())));
    }
    ExpectNodeDistancesMatch(g, hier, sources, "jitter-grid");
    ExpectEdgePointDistancesMatch(g, hier, &rng, 3, 12, "jitter-grid");
  }
}

TEST(ChDiffTest, RingsBitwise) {
  // Rings force nested shortcuts (every contraction bridges the gap) and
  // two competing directions around the cycle.
  Rng rng = Rng(20060403).Stream("ch/ring");
  for (int n : {3, 4, 10, 57, 128}) {
    Graph g = MakeRing(n, 500.0);
    ASSERT_TRUE(g.Validate().ok());
    ch::Hierarchy hier = ch::Hierarchy::Build(g);
    std::vector<NodeId> sources{0, static_cast<NodeId>(n / 2),
                                static_cast<NodeId>(rng.NextIndex(static_cast<uint64_t>(n)))};
    ExpectNodeDistancesMatch(g, hier, sources, "ring");
    ExpectEdgePointDistancesMatch(g, hier, &rng, 2, 10, "ring");
  }
}

TEST(ChDiffTest, DeepPathChainsBitwise) {
  // A long path contracted in id order nests shortcuts O(n) deep: exercises
  // the iterative unpacker far beyond any balanced hierarchy.
  Graph g;
  const int n = 600;
  for (int i = 0; i < n; ++i) g.AddNode({i * 10.0, std::sin(i * 0.7) * 3.0});
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(g.AddEdge(i, i + 1, RoadClass::kRural).ok());
  }
  ch::Hierarchy hier = ch::Hierarchy::Build(g);
  ExpectNodeDistancesMatch(g, hier, {0, n / 3, n - 1}, "path");
  Rng rng = Rng(20060403).Stream("ch/path");
  ExpectEdgePointDistancesMatch(g, hier, &rng, 3, 10, "path");
}

TEST(ChDiffTest, SingleNodeAndEmptyGraphs) {
  Graph empty;
  ch::Hierarchy he = ch::Hierarchy::Build(empty);
  EXPECT_EQ(he.edges().size(), 0u);
  ch::Query qe(&he);
  EXPECT_EQ(qe.NodeToNode(0, 0), kUnreachable);  // out of range: no nodes

  Graph single;
  single.AddNode({5, 5});
  ch::Hierarchy hs = ch::Hierarchy::Build(single);
  ch::Query qs(&hs);
  EXPECT_EQ(qs.NodeToNode(0, 0), 0.0);
  EXPECT_EQ(qs.NodeToNode(0, 1), kUnreachable);
  EXPECT_EQ(qs.NodeToNode(-1, 0), kUnreachable);
}

TEST(ChDiffTest, DisconnectedComponentsBitwise) {
  // Two grids with no connection: intra-component distances exact,
  // cross-component unreachable on both sides of the differential.
  Rng rng = Rng(20060403).Stream("ch/disconnected");
  Graph g = MakeGrid(4, 3, 100.0, 10.0, &rng);
  size_t first = g.node_count();
  std::vector<NodeId> island;
  for (int i = 0; i < 6; ++i) {
    island.push_back(g.AddNode({5000.0 + i * 50.0, 5000.0}));
  }
  for (int i = 0; i + 1 < 6; ++i) {
    ASSERT_TRUE(g.AddEdge(island[static_cast<size_t>(i)],
                          island[static_cast<size_t>(i) + 1], RoadClass::kRural)
                    .ok());
  }
  EXPECT_FALSE(g.IsConnected());
  ch::Hierarchy hier = ch::Hierarchy::Build(g);
  ExpectNodeDistancesMatch(g, hier, {0, static_cast<NodeId>(first), island[3]},
                           "disconnected");
  ch::Query q(&hier);
  EXPECT_EQ(q.NodeToNode(0, island[0]), kUnreachable);
}

TEST(ChDiffTest, ZeroWeightEdgesBitwise) {
  // Coincident nodes make zero-length edges (Graph::Validate rejects them,
  // Dijkstra does not — the oracle must agree anyway).
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({0, 0});     // coincident: zero-weight edge a-b
  NodeId c = g.AddNode({100, 0});
  NodeId d = g.AddNode({100, 0});   // coincident with c
  NodeId e = g.AddNode({200, 50});
  ASSERT_TRUE(g.AddEdge(a, b, RoadClass::kResidential).ok());
  ASSERT_TRUE(g.AddEdge(b, c, RoadClass::kResidential).ok());
  ASSERT_TRUE(g.AddEdge(c, d, RoadClass::kResidential).ok());
  ASSERT_TRUE(g.AddEdge(d, e, RoadClass::kResidential).ok());
  ASSERT_TRUE(g.AddEdge(a, d, RoadClass::kResidential).ok());
  ch::Hierarchy hier = ch::Hierarchy::Build(g);
  ExpectNodeDistancesMatch(g, hier, {a, b, c, d, e}, "zero-weight");
}

TEST(ChDiffTest, ParallelEdgesCollapseToMinimum) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({300, 0});
  NodeId c = g.AddNode({300, 400});
  ASSERT_TRUE(g.AddEdge(a, b, RoadClass::kResidential).ok());
  ASSERT_TRUE(g.AddEdge(a, b, RoadClass::kSecondary).ok());  // parallel twin
  ASSERT_TRUE(g.AddEdge(b, c, RoadClass::kResidential).ok());
  ASSERT_TRUE(g.AddEdge(b, c, RoadClass::kResidential).ok());
  ch::Hierarchy hier = ch::Hierarchy::Build(g);
  // One overlay seed edge per pair, but distances unchanged.
  EXPECT_EQ(hier.stats().input_edges, 2u);
  ExpectNodeDistancesMatch(g, hier, {a, b, c}, "parallel");
}

TEST(ChDiffTest, SelfLoopsAreRejectedUpstream) {
  // Graph::AddEdge refuses self-loops, so hierarchies never see them; pin
  // that contract here since CH unpacking relies on a != b.
  Graph g;
  NodeId a = g.AddNode({0, 0});
  EXPECT_TRUE(g.AddEdge(a, a, RoadClass::kResidential).status().IsInvalidArgument());
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(ChDiffTest, RandomGraphsWithChordsBitwise) {
  // Jittered grids plus random chord edges: non-planar shortcuts, parallel
  // duplicates, heterogeneous degrees.
  Rng world = Rng(20060403).Stream("ch/random");
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng = world.Stream("trial", static_cast<uint64_t>(trial));
    int w = 3 + static_cast<int>(rng.NextIndex(6));
    int h = 3 + static_cast<int>(rng.NextIndex(6));
    Graph g = MakeGrid(w, h, 120.0, 25.0, &rng);
    int chords = static_cast<int>(rng.NextIndex(8));
    for (int i = 0; i < chords; ++i) {
      NodeId u = static_cast<NodeId>(rng.NextIndex(g.node_count()));
      NodeId v = static_cast<NodeId>(rng.NextIndex(g.node_count()));
      if (u != v) (void)g.AddEdge(u, v, RoadClass::kHighway);
    }
    ch::Hierarchy hier = ch::Hierarchy::Build(g);
    std::vector<NodeId> sources;
    for (int s = 0; s < 3; ++s) {
      sources.push_back(static_cast<NodeId>(rng.NextIndex(g.node_count())));
    }
    ExpectNodeDistancesMatch(g, hier, sources, "random-chords");
    ExpectEdgePointDistancesMatch(g, hier, &rng, 2, 10, "random-chords");
  }
}

TEST(ChDiffTest, GeneratedRoadNetworksBitwise) {
  // The production graph family: jittered multi-class street grids with
  // diagonal highways and over-passes.
  Rng world = Rng(20060403).Stream("ch/roadnet");
  const int networks = kTrials / 10 + 2;
  for (int trial = 0; trial < networks; ++trial) {
    Rng rng = world.Stream("net", static_cast<uint64_t>(trial));
    RoadNetworkConfig cfg;
    cfg.area_side_m = 2000.0 + 500.0 * static_cast<double>(rng.NextIndex(4));
    cfg.block_spacing_m = 200.0;
    Graph g = GenerateRoadNetwork(cfg, &rng);
    ASSERT_TRUE(g.Validate().ok());
    ch::Hierarchy hier = ch::Hierarchy::Build(g);
    EXPECT_GT(hier.stats().shortcuts, 0u);
    std::vector<NodeId> sources;
    for (int s = 0; s < 3; ++s) {
      sources.push_back(static_cast<NodeId>(rng.NextIndex(g.node_count())));
    }
    ExpectNodeDistancesMatch(g, hier, sources, "roadnet");
    ExpectEdgePointDistancesMatch(g, hier, &rng, 3, 16, "roadnet");
  }
}

TEST(ChDiffTest, WitnessBudgetDoesNotAffectDistances) {
  // Exactness must not depend on the witness budget: a starved budget only
  // adds redundant shortcuts. Compare a budget-1 build against the default.
  Rng rng = Rng(20060403).Stream("ch/budget");
  Graph g = MakeGrid(6, 6, 100.0, 20.0, &rng);
  ch::BuildOptions starved;
  starved.witness_settle_limit = 1;
  ch::Hierarchy cheap = ch::Hierarchy::Build(g, starved);
  ch::Hierarchy normal = ch::Hierarchy::Build(g);
  EXPECT_GE(cheap.stats().shortcuts, normal.stats().shortcuts);
  ch::Query qa(&cheap);
  ch::Query qb(&normal);
  for (size_t s = 0; s < g.node_count(); ++s) {
    std::vector<double> base = DijkstraFrom(g, static_cast<NodeId>(s));
    for (size_t t = 0; t < g.node_count(); ++t) {
      EXPECT_EQ(qa.NodeToNode(static_cast<NodeId>(s), static_cast<NodeId>(t)), base[t]);
      EXPECT_EQ(qb.NodeToNode(static_cast<NodeId>(s), static_cast<NodeId>(t)), base[t]);
    }
  }
}

TEST(ChDiffTest, PreprocessingIsDeterministic) {
  // Build twice over identical inputs: identical ranks, identical shortcut
  // sets (bitwise weights included), identical stats. The build is
  // single-threaded by design, so this plus the senn_lint contract is the
  // whole determinism story.
  Rng rng = Rng(20060403).Stream("ch/determinism");
  RoadNetworkConfig cfg;
  cfg.area_side_m = 2500.0;
  Rng g1_rng = rng.Stream("gen");
  Rng g2_rng = rng.Stream("gen");
  Graph g1 = GenerateRoadNetwork(cfg, &g1_rng);
  Graph g2 = GenerateRoadNetwork(cfg, &g2_rng);
  ch::Hierarchy a = ch::Hierarchy::Build(g1);
  ch::Hierarchy b = ch::Hierarchy::Build(g2);
  EXPECT_EQ(a.rank(), b.rank());
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i], b.edges()[i]) << "overlay edge " << i;
  }
  EXPECT_EQ(a.stats(), b.stats());
}

TEST(ChDiffTest, BucketMatchesPointOracleOnSharedSource) {
  // The many-to-one variant must agree with the point oracle bitwise across
  // a long target stream from one SetSource (IER's access pattern).
  Rng rng = Rng(20060403).Stream("ch/bucket");
  Graph g = MakeGrid(7, 7, 150.0, 40.0, &rng);
  ch::Hierarchy hier = ch::Hierarchy::Build(g);
  ch::Query point(&hier);
  ch::BucketOracle bucket(&hier);
  EdgeId se = static_cast<EdgeId>(rng.NextIndex(g.edge_count()));
  EdgePoint src{se, rng.Uniform(0, g.edge(se).length)};
  point.SetSource(src);
  bucket.SetSource(src);
  for (int t = 0; t < 64; ++t) {
    EdgeId te = static_cast<EdgeId>(rng.NextIndex(g.edge_count()));
    EdgePoint dst{te, rng.Uniform(0, g.edge(te).length)};
    EXPECT_EQ(bucket.DistanceTo(dst), point.DistanceTo(dst)) << "target " << t;
  }
  // The bucket's per-target sweep must not re-settle the whole cone the
  // point oracle pays for every query.
  EXPECT_LT(bucket.settled_nodes(), point.settled_nodes());
}

TEST(ChDiffTest, SettledNodeCountersAdvance) {
  Rng rng = Rng(20060403).Stream("ch/counters");
  Graph g = MakeGrid(5, 5, 100.0, 0.0, &rng);
  ch::Hierarchy hier = ch::Hierarchy::Build(g);
  ch::Query q(&hier);
  EXPECT_EQ(q.settled_nodes(), 0u);
  q.NodeToNode(0, static_cast<NodeId>(g.node_count() - 1));
  EXPECT_GT(q.settled_nodes(), 0u);
}

}  // namespace
}  // namespace senn::roadnet
