#include "src/roadnet/graph.h"

#include <gtest/gtest.h>

namespace senn::roadnet {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphTest, AddNodesAndEdges) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({3, 4});
  Result<EdgeId> e = g.AddEdge(a, b, RoadClass::kSecondary);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(*e).length, 5.0);
  EXPECT_EQ(g.edge(*e).road_class, RoadClass::kSecondary);
  EXPECT_EQ(g.edge(*e).OtherEnd(a), b);
  EXPECT_EQ(g.edge(*e).OtherEnd(b), a);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphTest, RejectsSelfLoop) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  EXPECT_TRUE(g.AddEdge(a, a, RoadClass::kResidential).status().IsInvalidArgument());
}

TEST(GraphTest, RejectsOutOfRangeEndpoints) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  EXPECT_FALSE(g.AddEdge(a, 7, RoadClass::kResidential).ok());
  EXPECT_FALSE(g.AddEdge(-1, a, RoadClass::kResidential).ok());
}

TEST(GraphTest, AdjacencySymmetric) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  NodeId c = g.AddNode({0, 1});
  ASSERT_TRUE(g.AddEdge(a, b, RoadClass::kResidential).ok());
  ASSERT_TRUE(g.AddEdge(a, c, RoadClass::kResidential).ok());
  EXPECT_EQ(g.incident_edges(a).size(), 2u);
  EXPECT_EQ(g.incident_edges(b).size(), 1u);
  EXPECT_EQ(g.incident_edges(c).size(), 1u);
}

TEST(GraphTest, PositionOfInterpolates) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({10, 0});
  Result<EdgeId> e = g.AddEdge(a, b, RoadClass::kResidential);
  ASSERT_TRUE(e.ok());
  geom::Vec2 mid = g.PositionOf({*e, 5.0});
  EXPECT_NEAR(mid.x, 5.0, 1e-12);
  EXPECT_NEAR(mid.y, 0.0, 1e-12);
  EXPECT_EQ(g.PositionOf({*e, 0.0}), g.node_position(a));
  EXPECT_EQ(g.PositionOf({*e, 10.0}), g.node_position(b));
}

TEST(GraphTest, ConnectivityDetection) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  g.AddNode({5, 5});  // isolated
  ASSERT_TRUE(g.AddEdge(a, b, RoadClass::kResidential).ok());
  EXPECT_FALSE(g.IsConnected());
}

TEST(GraphTest, SpeedLimitsOrdered) {
  EXPECT_GT(SpeedLimitMps(RoadClass::kHighway), SpeedLimitMps(RoadClass::kSecondary));
  EXPECT_GT(SpeedLimitMps(RoadClass::kSecondary), SpeedLimitMps(RoadClass::kResidential));
  EXPECT_GT(SpeedLimitMps(RoadClass::kRural), SpeedLimitMps(RoadClass::kSecondary));
  EXPECT_NEAR(SpeedLimitMps(RoadClass::kResidential), MphToMps(30.0), 1e-12);
}

TEST(GraphTest, RoadClassNames) {
  EXPECT_STREQ(RoadClassName(RoadClass::kHighway), "highway");
  EXPECT_STREQ(RoadClassName(RoadClass::kRural), "rural");
}

}  // namespace
}  // namespace senn::roadnet
