#include "src/common/units.h"

#include <gtest/gtest.h>

namespace senn {
namespace {

TEST(UnitsTest, MilesMetersRoundTrip) {
  EXPECT_DOUBLE_EQ(MilesToMeters(1.0), 1609.344);
  EXPECT_DOUBLE_EQ(MetersToMiles(1609.344), 1.0);
  EXPECT_NEAR(MetersToMiles(MilesToMeters(12.75)), 12.75, 1e-12);
}

TEST(UnitsTest, SpeedConversions) {
  EXPECT_NEAR(MphToMps(30.0), 13.4112, 1e-9);
  EXPECT_NEAR(MpsToMph(MphToMps(65.0)), 65.0, 1e-12);
  EXPECT_DOUBLE_EQ(MphToMps(0.0), 0.0);
}

TEST(UnitsTest, CompileTimeUsable) {
  static_assert(MilesToMeters(2.0) > 3218.0 && MilesToMeters(2.0) < 3219.0);
  static_assert(MphToMps(60.0) > 26.0 && MphToMps(60.0) < 27.0);
  SUCCEED();
}

}  // namespace
}  // namespace senn
