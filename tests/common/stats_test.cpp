#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace senn {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic data set: sum sq dev = 32, / (n-1) = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    double x = 0.37 * i - 3.0;
    all.Add(x);
    (i < 20 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats a_copy = a;
  a.Merge(b);  // empty right side: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a_copy);  // empty left side: becomes the right side
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, MergeBothEmptyStaysEmpty) {
  RunningStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(RunningStatsTest, MergeSingleObservationSides) {
  RunningStats a, b, both;
  a.Add(2.0);
  b.Add(6.0);
  both.Add(2.0);
  both.Add(6.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  EXPECT_NEAR(a.variance(), both.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 8.0);
}

TEST(RunningStatsTest, MergeEqualsSinglePassOnRandomSplits) {
  // Merged moments must equal the single-pass moments of the concatenated
  // data for every split point, including the empty and one-sided ones.
  std::vector<double> data;
  unsigned state = 12345;
  for (int i = 0; i < 64; ++i) {
    state = state * 1103515245u + 12345u;
    data.push_back(static_cast<double>(state % 1000) / 7.0 - 40.0);
  }
  RunningStats whole;
  for (double x : data) whole.Add(x);
  for (size_t split : {size_t{0}, size_t{1}, size_t{13}, size_t{63}, size_t{64}}) {
    RunningStats left, right;
    for (size_t i = 0; i < data.size(); ++i) (i < split ? left : right).Add(data[i]);
    left.Merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
  }
}

TEST(RunningStatsTest, MergeOrderInvariant) {
  // Shard order must not matter beyond float round-off: merging A<-B equals
  // merging B<-A on disjoint shards (the sweep engine merges shard results
  // in deterministic input order, but the moments themselves are symmetric).
  RunningStats ab_left, ab_right, ba_left, ba_right;
  for (double x : {1.0, 5.0, 9.0}) {
    ab_left.Add(x);
    ba_right.Add(x);
  }
  for (double x : {-2.0, 0.5}) {
    ab_right.Add(x);
    ba_left.Add(x);
  }
  ab_left.Merge(ab_right);
  ba_left.Merge(ba_right);
  EXPECT_EQ(ab_left.count(), ba_left.count());
  EXPECT_NEAR(ab_left.mean(), ba_left.mean(), 1e-12);
  EXPECT_NEAR(ab_left.variance(), ba_left.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(ab_left.min(), ba_left.min());
  EXPECT_DOUBLE_EQ(ab_left.max(), ba_left.max());
}

TEST(RunningStatsTest, ToStringMentionsCount) {
  RunningStats s;
  s.Add(1.0);
  EXPECT_NE(s.ToString().find("n=1"), std::string::npos);
}

// --- P2Quantile (streaming p50/p95/p99 for the messaging latency metrics) ---

// Deterministic LCG so the tests are reproducible without the library Rng.
double NextUniform(unsigned* state) {
  *state = *state * 1103515245u + 12345u;
  return static_cast<double>(*state % 100000u) / 100000.0;
}

TEST(P2QuantileTest, EmptyIsZero) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.count(), 0u);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

TEST(P2QuantileTest, SmallSamplesAreExactOrderStatistics) {
  P2Quantile median(0.5);
  median.Add(9.0);
  median.Add(1.0);
  median.Add(5.0);
  EXPECT_DOUBLE_EQ(median.value(), 5.0);
  P2Quantile max_like(1.0);
  max_like.Add(2.0);
  max_like.Add(7.0);
  EXPECT_DOUBLE_EQ(max_like.value(), 7.0);
}

TEST(P2QuantileTest, ConstantStreamStaysConstant) {
  P2Quantile q(0.95);
  for (int i = 0; i < 1000; ++i) q.Add(3.25);
  EXPECT_DOUBLE_EQ(q.value(), 3.25);
  EXPECT_EQ(q.count(), 1000u);
}

TEST(P2QuantileTest, TracksUniformQuantiles) {
  P2Quantile p50(0.5), p95(0.95), p99(0.99);
  unsigned state = 42;
  for (int i = 0; i < 20000; ++i) {
    double x = NextUniform(&state);
    p50.Add(x);
    p95.Add(x);
    p99.Add(x);
  }
  EXPECT_NEAR(p50.value(), 0.50, 0.03);
  EXPECT_NEAR(p95.value(), 0.95, 0.02);
  EXPECT_NEAR(p99.value(), 0.99, 0.01);
}

TEST(P2QuantileTest, TracksSkewedDistribution) {
  // Exponential-ish tail via inverse transform; p2 must follow the tail.
  P2Quantile p95(0.95);
  unsigned state = 7;
  for (int i = 0; i < 20000; ++i) {
    double u = NextUniform(&state);
    p95.Add(-std::log(1.0 - 0.99999 * u));  // mean 1 exponential
  }
  // True p95 of Exp(1) is -ln(0.05) = 2.9957.
  EXPECT_NEAR(p95.value(), 2.9957, 0.35);
}

TEST(P2QuantileTest, MergeIsCountAdditive) {
  P2Quantile a(0.5), b(0.5);
  unsigned state = 3;
  for (int i = 0; i < 1000; ++i) a.Add(NextUniform(&state));
  for (int i = 0; i < 500; ++i) b.Add(NextUniform(&state));
  a.Merge(b);
  EXPECT_EQ(a.count(), 1500u);
}

TEST(P2QuantileTest, MergeWithEmptySides) {
  P2Quantile a(0.5), b(0.5);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) a.Add(x);
  P2Quantile a_copy = a;
  a.Merge(b);  // empty right side: unchanged
  EXPECT_EQ(a.count(), 6u);
  EXPECT_DOUBLE_EQ(a.value(), a_copy.value());
  b.Merge(a_copy);  // empty left side: adopts the right side
  EXPECT_EQ(b.count(), 6u);
  EXPECT_DOUBLE_EQ(b.value(), a_copy.value());
}

TEST(P2QuantileTest, MergeSmallBufferSidesAreExactReplays) {
  // A side with fewer than five observations merges by exact replay.
  P2Quantile a(0.5), b(0.5);
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0}) a.Add(x);
  b.Add(35.0);
  b.Add(45.0);
  P2Quantile replay = a;
  replay.Add(35.0);
  replay.Add(45.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), replay.count());
  EXPECT_DOUBLE_EQ(a.value(), replay.value());
}

TEST(P2QuantileTest, MergeApproximatesPooledStream) {
  for (double quant : {0.5, 0.95, 0.99}) {
    P2Quantile whole(quant), left(quant), right(quant);
    unsigned state = 11;
    for (int i = 0; i < 12000; ++i) {
      double x = NextUniform(&state);
      whole.Add(x);
      (i % 3 == 0 ? left : right).Add(x);
    }
    left.Merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.value(), whole.value(), 0.05) << "q=" << quant;
  }
}

TEST(P2QuantileTest, MergeIsDeterministic) {
  // Shard merges must be pure functions of the operands (the determinism
  // guarantee rests on it).
  auto build = [](unsigned seed, int n) {
    P2Quantile q(0.95);
    unsigned state = seed;
    for (int i = 0; i < n; ++i) q.Add(NextUniform(&state));
    return q;
  };
  P2Quantile m1 = build(5, 3000);
  m1.Merge(build(9, 2000));
  P2Quantile m2 = build(5, 3000);
  m2.Merge(build(9, 2000));
  EXPECT_EQ(m1.count(), m2.count());
  EXPECT_DOUBLE_EQ(m1.value(), m2.value());
}

TEST(P2QuantileTest, DisjointRangeMergeLandsBetween) {
  // Left shard all-low, right shard all-high: the merged median must sit at
  // the boundary region, p99 high in the right shard's range.
  P2Quantile p50(0.5), p99(0.99);
  P2Quantile lo50(0.5), lo99(0.99), hi50(0.5), hi99(0.99);
  unsigned state = 23;
  for (int i = 0; i < 4000; ++i) {
    double x = NextUniform(&state);
    lo50.Add(x);
    lo99.Add(x);
    double y = 10.0 + NextUniform(&state);
    hi50.Add(y);
    hi99.Add(y);
  }
  p50.Merge(lo50);
  p50.Merge(hi50);
  p99.Merge(lo99);
  p99.Merge(hi99);
  EXPECT_GT(p50.value(), 0.8);
  EXPECT_LT(p50.value(), 10.2);
  EXPECT_GT(p99.value(), 10.5);
}

TEST(P2QuantileTest, MergeSingleObservationShard) {
  // A seed shard that measured exactly one server query is a legal operand;
  // merging it must behave like appending that one observation.
  P2Quantile a(0.95), b(0.95);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) a.Add(x);
  b.Add(4.5);
  P2Quantile replay = a;
  replay.Add(4.5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 9u);
  EXPECT_DOUBLE_EQ(a.value(), replay.value());
}

TEST(P2QuantileTest, MergeAllIdenticalValuesStaysTheConstant) {
  // Both shards saw only the constant c: every quantile of the pooled
  // stream is c, and the merged markers must not drift off it.
  for (double quant : {0.5, 0.95, 0.99}) {
    P2Quantile a(quant), b(quant);
    for (int i = 0; i < 100; ++i) a.Add(7.25);
    for (int i = 0; i < 3; ++i) b.Add(7.25);
    a.Merge(b);
    EXPECT_EQ(a.count(), 103u);
    EXPECT_DOUBLE_EQ(a.value(), 7.25) << "q=" << quant;
  }
}

// --- HitRate (buffer-pool hit rate of the storage engine) -------------------

TEST(HitRateTest, EmptyRateIsZero) {
  HitRate h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.rate(), 0.0);
}

TEST(HitRateTest, RateIsRecomputedFromTotals) {
  HitRate h;
  h.AddHits(3);
  h.AddMisses(1);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.rate(), 0.75);
}

TEST(HitRateTest, MergeWithEmptySides) {
  HitRate a, empty;
  a.AddHits(10);
  a.AddMisses(5);
  a.Merge(empty);  // empty right side: no change
  EXPECT_EQ(a.hits(), 10u);
  EXPECT_EQ(a.misses(), 5u);
  HitRate b;
  b.Merge(a);  // empty left side: adopts the right side
  EXPECT_EQ(b.hits(), 10u);
  EXPECT_DOUBLE_EQ(b.rate(), a.rate());
}

TEST(HitRateTest, MergeWeightsByCountsNotByRates) {
  // A 1-access shard (rate 0) against a 999-hit shard: averaging the rates
  // would give 0.5; summing the counts gives the true pooled rate.
  HitRate small, large;
  small.AddMisses(1);
  large.AddHits(999);
  small.Merge(large);
  EXPECT_EQ(small.total(), 1000u);
  EXPECT_DOUBLE_EQ(small.rate(), 0.999);
}

TEST(HitRateTest, MergeSingleObservationAndIdenticalValueShards) {
  HitRate a, b, c;
  a.AddHits(1);  // single-observation shard
  b.AddHits(50); // all-identical (all hits)
  c.AddMisses(50);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.rate(), 1.0);
  a.Merge(c);
  EXPECT_EQ(a.total(), 101u);
  EXPECT_DOUBLE_EQ(a.rate(), 51.0 / 101.0);
}

TEST(HitRateTest, MergeMatchesSequentialAndIsOrderInvariant) {
  HitRate seq;
  seq.AddHits(7);
  seq.AddMisses(2);
  seq.AddHits(11);
  seq.AddMisses(9);
  HitRate x, y;
  x.AddHits(7);
  x.AddMisses(2);
  y.AddHits(11);
  y.AddMisses(9);
  HitRate xy = x, yx = y;
  xy.Merge(y);
  yx.Merge(x);
  EXPECT_EQ(xy.hits(), seq.hits());
  EXPECT_EQ(xy.misses(), seq.misses());
  EXPECT_EQ(yx.hits(), seq.hits());
  EXPECT_EQ(yx.misses(), seq.misses());
  EXPECT_DOUBLE_EQ(xy.rate(), yx.rate());
}

}  // namespace
}  // namespace senn
