#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace senn {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic data set: sum sq dev = 32, / (n-1) = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    double x = 0.37 * i - 3.0;
    all.Add(x);
    (i < 20 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats a_copy = a;
  a.Merge(b);  // empty right side: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a_copy);  // empty left side: becomes the right side
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, ToStringMentionsCount) {
  RunningStats s;
  s.Add(1.0);
  EXPECT_NE(s.ToString().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace senn
