#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace senn {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic data set: sum sq dev = 32, / (n-1) = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    double x = 0.37 * i - 3.0;
    all.Add(x);
    (i < 20 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats a_copy = a;
  a.Merge(b);  // empty right side: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a_copy);  // empty left side: becomes the right side
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, MergeBothEmptyStaysEmpty) {
  RunningStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(RunningStatsTest, MergeSingleObservationSides) {
  RunningStats a, b, both;
  a.Add(2.0);
  b.Add(6.0);
  both.Add(2.0);
  both.Add(6.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  EXPECT_NEAR(a.variance(), both.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 8.0);
}

TEST(RunningStatsTest, MergeEqualsSinglePassOnRandomSplits) {
  // Merged moments must equal the single-pass moments of the concatenated
  // data for every split point, including the empty and one-sided ones.
  std::vector<double> data;
  unsigned state = 12345;
  for (int i = 0; i < 64; ++i) {
    state = state * 1103515245u + 12345u;
    data.push_back(static_cast<double>(state % 1000) / 7.0 - 40.0);
  }
  RunningStats whole;
  for (double x : data) whole.Add(x);
  for (size_t split : {size_t{0}, size_t{1}, size_t{13}, size_t{63}, size_t{64}}) {
    RunningStats left, right;
    for (size_t i = 0; i < data.size(); ++i) (i < split ? left : right).Add(data[i]);
    left.Merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
  }
}

TEST(RunningStatsTest, MergeOrderInvariant) {
  // Shard order must not matter beyond float round-off: merging A<-B equals
  // merging B<-A on disjoint shards (the sweep engine merges shard results
  // in deterministic input order, but the moments themselves are symmetric).
  RunningStats ab_left, ab_right, ba_left, ba_right;
  for (double x : {1.0, 5.0, 9.0}) {
    ab_left.Add(x);
    ba_right.Add(x);
  }
  for (double x : {-2.0, 0.5}) {
    ab_right.Add(x);
    ba_left.Add(x);
  }
  ab_left.Merge(ab_right);
  ba_left.Merge(ba_right);
  EXPECT_EQ(ab_left.count(), ba_left.count());
  EXPECT_NEAR(ab_left.mean(), ba_left.mean(), 1e-12);
  EXPECT_NEAR(ab_left.variance(), ba_left.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(ab_left.min(), ba_left.min());
  EXPECT_DOUBLE_EQ(ab_left.max(), ba_left.max());
}

TEST(RunningStatsTest, ToStringMentionsCount) {
  RunningStats s;
  s.Add(1.0);
  EXPECT_NE(s.ToString().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace senn
