#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace senn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, NextIndexCoversAllResidues) {
  Rng rng(99);
  std::vector<int> histogram(7, 0);
  for (int i = 0; i < 70000; ++i) ++histogram[rng.NextIndex(7)];
  for (int count : histogram) {
    EXPECT_GT(count, 9000);
    EXPECT_LT(count, 11000);
  }
}

TEST(RngTest, UniformIntInclusiveBothEnds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    saw_lo |= (v == 2);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesRate) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, PoissonLargeMeanUsesApproximation) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(500.0));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, StreamIsOrderIndependent) {
  // The whole point of Stream(): deriving it before, after, or between any
  // number of draws yields the identical generator.
  Rng fresh(42);
  Rng fresh_stream = fresh.Stream("host", 7);
  Rng used(42);
  for (int i = 0; i < 1000; ++i) used.NextU64();
  Rng other_first = used.Stream("world/poi");
  (void)other_first;
  Rng used_stream = used.Stream("host", 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fresh_stream.NextU64(), used_stream.NextU64());
}

TEST(RngTest, StreamsWithDistinctDomainsDecorrelate) {
  Rng root(42);
  Rng a = root.Stream("workload");
  Rng b = root.Stream("warmstart");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, StreamsWithDistinctIdsDecorrelate) {
  Rng root(42);
  Rng a = root.Stream("host", 0);
  Rng b = root.Stream("host", 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
  // ...and from the root stream itself.
  same = 0;
  Rng root2(42);
  Rng c = root2.Stream("host", 0);
  for (int i = 0; i < 64; ++i) same += (root2.NextU64() == c.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, StreamsWithDistinctSeedsDecorrelate) {
  Rng a = Rng(1).Stream("host", 3);
  Rng b = Rng(2).Stream("host", 3);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, StreamOfStreamNestsBySeed) {
  // A derived stream's own Stream() calls root at the derived seed, so
  // nested derivations are reproducible too.
  Rng root(9);
  Rng child1 = root.Stream("shard", 2).Stream("host", 5);
  Rng child2 = root.Stream("shard", 2).Stream("host", 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.NextU64(), child2.NextU64());
}

TEST(RngTest, SeedAccessorReturnsConstructionSeed) {
  EXPECT_EQ(Rng(123).seed(), 123u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace senn
