#include "src/common/status.h"

#include <gtest/gtest.h>

namespace senn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), Status::Code::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, EachFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::Internal("x").IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no such POI");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "no such POI");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace senn
