#include "src/rtree/rstar_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/common/rng.h"

namespace senn::rtree {
namespace {

using geom::Mbr;
using geom::Vec2;

std::vector<ObjectEntry> MakeRandomObjects(int n, Rng* rng, double extent = 1000.0) {
  std::vector<ObjectEntry> objs;
  objs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    objs.push_back({{rng->Uniform(0, extent), rng->Uniform(0, extent)}, i});
  }
  return objs;
}

RStarTree BuildTree(const std::vector<ObjectEntry>& objs, RStarTree::Options opts = {}) {
  RStarTree tree(opts);
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  return tree;
}

std::set<int64_t> Ids(const std::vector<ObjectEntry>& objs) {
  std::set<int64_t> ids;
  for (const ObjectEntry& o : objs) ids.insert(o.id);
  return ids;
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.bounds().IsEmpty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<ObjectEntry> out;
  tree.RangeQuery(Mbr{{0, 0}, {10, 10}}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RStarTreeTest, SingleInsert) {
  RStarTree tree;
  tree.Insert({5, 5}, 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<ObjectEntry> out;
  tree.RangeQuery(Mbr{{0, 0}, {10, 10}}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 42);
}

TEST(RStarTreeTest, InvariantsHoldAcrossGrowth) {
  Rng rng(1);
  RStarTree tree;
  for (int i = 0; i < 2000; ++i) {
    tree.Insert({rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, i);
    if (i % 100 == 99) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
    }
  }
  EXPECT_EQ(tree.size(), 2000u);
  EXPECT_GE(tree.height(), 2);
}

TEST(RStarTreeTest, RangeQueryMatchesBruteForce) {
  Rng rng(2);
  std::vector<ObjectEntry> objs = MakeRandomObjects(1500, &rng);
  RStarTree tree = BuildTree(objs);
  for (int trial = 0; trial < 50; ++trial) {
    Vec2 a{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    Vec2 b{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    Mbr box = Mbr::OfPoint(a);
    box.Expand(b);
    std::vector<ObjectEntry> got;
    tree.RangeQuery(box, &got);
    std::set<int64_t> expected;
    for (const ObjectEntry& o : objs) {
      if (box.Contains(o.position)) expected.insert(o.id);
    }
    EXPECT_EQ(Ids(got), expected) << "trial " << trial;
  }
}

TEST(RStarTreeTest, CircleQueryMatchesBruteForce) {
  Rng rng(3);
  std::vector<ObjectEntry> objs = MakeRandomObjects(800, &rng);
  RStarTree tree = BuildTree(objs);
  for (int trial = 0; trial < 50; ++trial) {
    geom::Circle c({rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, rng.Uniform(10, 300));
    std::vector<ObjectEntry> got;
    tree.CircleQuery(c, &got);
    std::set<int64_t> expected;
    for (const ObjectEntry& o : objs) {
      if (c.Contains(o.position)) expected.insert(o.id);
    }
    EXPECT_EQ(Ids(got), expected) << "trial " << trial;
  }
}

TEST(RStarTreeTest, DuplicatePositionsAreKept) {
  RStarTree tree;
  for (int i = 0; i < 100; ++i) tree.Insert({7, 7}, i);
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<ObjectEntry> out;
  tree.RangeQuery(Mbr::OfPoint({7, 7}), &out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(RStarTreeTest, RemoveExistingObject) {
  Rng rng(4);
  std::vector<ObjectEntry> objs = MakeRandomObjects(500, &rng);
  RStarTree tree = BuildTree(objs);
  ASSERT_TRUE(tree.Remove(objs[123].position, objs[123].id).ok());
  EXPECT_EQ(tree.size(), 499u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<ObjectEntry> out;
  tree.RangeQuery(Mbr::OfPoint(objs[123].position), &out);
  for (const ObjectEntry& o : out) EXPECT_NE(o.id, objs[123].id);
}

TEST(RStarTreeTest, RemoveMissingObjectReturnsNotFound) {
  RStarTree tree;
  tree.Insert({1, 1}, 1);
  EXPECT_TRUE(tree.Remove({2, 2}, 1).IsNotFound());
  EXPECT_TRUE(tree.Remove({1, 1}, 99).IsNotFound());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RStarTreeTest, RemoveEverythingShrinksTree) {
  Rng rng(5);
  std::vector<ObjectEntry> objs = MakeRandomObjects(1000, &rng);
  RStarTree tree = BuildTree(objs);
  std::vector<size_t> order(objs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng shuffle_rng(6);
  shuffle_rng.Shuffle(&order);
  for (size_t idx : order) {
    ASSERT_TRUE(tree.Remove(objs[idx].position, objs[idx].id).ok());
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, InterleavedInsertRemoveKeepsInvariants) {
  Rng rng(7);
  RStarTree tree;
  std::vector<ObjectEntry> live;
  int64_t next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      ObjectEntry o{{rng.Uniform(0, 100), rng.Uniform(0, 100)}, next_id++};
      tree.Insert(o.position, o.id);
      live.push_back(o);
    } else {
      size_t pick = rng.NextIndex(live.size());
      ASSERT_TRUE(tree.Remove(live[pick].position, live[pick].id).ok());
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (step % 250 == 249) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "step " << step;
      ASSERT_EQ(tree.size(), live.size());
    }
  }
}

TEST(RStarTreeTest, BoundsCoverAllObjects) {
  Rng rng(8);
  std::vector<ObjectEntry> objs = MakeRandomObjects(300, &rng);
  RStarTree tree = BuildTree(objs);
  Mbr b = tree.bounds();
  for (const ObjectEntry& o : objs) EXPECT_TRUE(b.Contains(o.position));
}

TEST(RStarTreeTest, MoveSemantics) {
  Rng rng(9);
  RStarTree tree = BuildTree(MakeRandomObjects(100, &rng));
  RStarTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_TRUE(moved.CheckInvariants().ok());
}

TEST(RStarTreeTest, SmallBranchingFactorStressesSplits) {
  Rng rng(10);
  RStarTree::Options opts;
  opts.max_entries = 4;
  opts.min_entries = 2;
  std::vector<ObjectEntry> objs = MakeRandomObjects(400, &rng);
  RStarTree tree = BuildTree(objs, opts);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GE(tree.height(), 4);  // fan-out 4 forces depth
  std::vector<ObjectEntry> out;
  tree.RangeQuery(tree.bounds(), &out);
  EXPECT_EQ(out.size(), objs.size());
}

TEST(RStarTreeTest, ClusteredDataStillValid) {
  Rng rng(11);
  RStarTree tree;
  int64_t id = 0;
  for (int cluster = 0; cluster < 10; ++cluster) {
    Vec2 center{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    for (int i = 0; i < 150; ++i) {
      tree.Insert({center.x + rng.Normal(0, 2.0), center.y + rng.Normal(0, 2.0)}, id++);
    }
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), 1500u);
}

TEST(RStarTreeTest, AccessCounterCountsNodes) {
  Rng rng(12);
  RStarTree tree = BuildTree(MakeRandomObjects(2000, &rng));
  AccessCounter counter;
  std::vector<ObjectEntry> out;
  tree.RangeQuery(tree.bounds(), &out, &counter);
  // Scanning everything touches every node exactly once; leaves dominate.
  EXPECT_GT(counter.leaf_nodes, 0u);
  EXPECT_GT(counter.index_nodes, 0u);
  EXPECT_GE(counter.leaf_nodes, counter.index_nodes);
  uint64_t full_scan = counter.total();
  counter.Reset();
  tree.RangeQuery(Mbr{{0, 0}, {50, 50}}, &out, &counter);
  EXPECT_LT(counter.total(), full_scan);  // selective query reads fewer pages
}

}  // namespace
}  // namespace senn::rtree
