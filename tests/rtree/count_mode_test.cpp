// Tests of the two page-access accounting modes and the dynamic top-k
// pruning of the best-first iterator (the realistic INN baseline).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/rtree/knn.h"

namespace senn::rtree {
namespace {

using geom::Vec2;

RStarTree BuildTree(int n, uint64_t seed) {
  Rng rng(seed);
  RStarTree tree;
  for (int i = 0; i < n; ++i) {
    tree.Insert({rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, i);
  }
  return tree;
}

TEST(CountModeTest, EnqueueCountsAtLeastExpand) {
  RStarTree tree = BuildTree(3000, 1);
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    BestFirstNnIterator expand_it(tree, q, {}, AccessCountMode::kOnExpand);
    BestFirstNnIterator enqueue_it(tree, q, {}, AccessCountMode::kOnEnqueue);
    for (int i = 0; i < 10; ++i) {
      auto a = expand_it.Next();
      auto b = enqueue_it.Next();
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(a->object.id, b->object.id);  // accounting must not change results
    }
    EXPECT_GE(enqueue_it.accesses().total(), expand_it.accesses().total());
  }
}

TEST(CountModeTest, DynamicBoundDoesNotChangeResults) {
  RStarTree tree = BuildTree(2000, 3);
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const int k = 15;
    BestFirstNnIterator plain(tree, q);
    BestFirstNnIterator pruned(tree, q, {}, AccessCountMode::kOnExpand, k);
    for (int i = 0; i < k; ++i) {
      auto a = plain.Next();
      auto b = pruned.Next();
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(a->object.id, b->object.id) << "trial " << trial << " rank " << i;
    }
  }
}

TEST(CountModeTest, DynamicBoundReducesEnqueues) {
  RStarTree tree = BuildTree(5000, 5);
  Rng rng(6);
  uint64_t plain_total = 0, pruned_total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const int k = 10;
    BestFirstNnIterator plain(tree, q, {}, AccessCountMode::kOnEnqueue);
    BestFirstNnIterator pruned(tree, q, {}, AccessCountMode::kOnEnqueue, k);
    for (int i = 0; i < k; ++i) {
      plain.Next();
      pruned.Next();
    }
    plain_total += plain.accesses().total();
    pruned_total += pruned.accesses().total();
  }
  EXPECT_LT(pruned_total, plain_total);
}

TEST(CountModeTest, DynamicBoundPrunesTheTail) {
  RStarTree tree = BuildTree(200, 7);
  const int k = 5;
  BestFirstNnIterator it(tree, {500, 500}, {}, AccessCountMode::kOnExpand, k);
  std::vector<Neighbor> truth = BestFirstKnn(tree, {500, 500}, k);
  int count = 0;
  while (auto n = it.Next()) {
    if (count < k) {
      // The first k results are the exact top-k.
      EXPECT_EQ(n->object.id, truth[static_cast<size_t>(count)].object.id);
    }
    ++count;
  }
  // Everything beyond rank k is best-effort; most of the 200 objects must
  // have been pruned away.
  EXPECT_GE(count, k);
  EXPECT_LT(count, 100);
}

TEST(CountModeTest, LowerBoundWithPruneToKReturnsCorrectRemainder) {
  // The prune_to_k contract: known objects inside the lower bound count
  // toward k, so the iterator yields exactly the ranks after the client's
  // certified prefix.
  RStarTree tree = BuildTree(1000, 8);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const int k = 12, certified = 5;
    std::vector<Neighbor> truth = BestFirstKnn(tree, q, k);
    PruneBounds bounds;
    bounds.lower = truth[certified - 1].distance;
    bounds.upper = truth.back().distance;
    BestFirstNnIterator it(tree, q, bounds, AccessCountMode::kOnExpand, k);
    for (int i = certified; i < k; ++i) {
      auto n = it.Next();
      ASSERT_TRUE(n.has_value()) << "trial " << trial << " rank " << i;
      EXPECT_EQ(n->object.id, truth[static_cast<size_t>(i)].object.id);
    }
  }
}

TEST(CountModeTest, EinnNeverEnqueuesMoreThanInn) {
  RStarTree tree = BuildTree(4000, 10);
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const int k = 10, certified = 4;
    std::vector<Neighbor> truth = BestFirstKnn(tree, q, k);
    PruneBounds bounds;
    bounds.lower = truth[certified - 1].distance;
    bounds.upper = truth.back().distance;
    for (AccessCountMode mode : {AccessCountMode::kOnExpand, AccessCountMode::kOnEnqueue}) {
      BestFirstNnIterator einn(tree, q, bounds, mode, k);
      BestFirstNnIterator inn(tree, q, {}, mode, k);
      for (int i = 0; i < k - certified; ++i) einn.Next();
      for (int i = 0; i < k; ++i) inn.Next();
      EXPECT_LE(einn.accesses().total(), inn.accesses().total())
          << "trial " << trial << " mode " << static_cast<int>(mode);
    }
  }
}

}  // namespace
}  // namespace senn::rtree
