#include "src/rtree/bulk_load.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.h"
#include "src/rtree/knn.h"

namespace senn::rtree {
namespace {

using geom::Vec2;

std::vector<ObjectEntry> MakeRandomObjects(int n, Rng* rng, double extent = 1000.0) {
  std::vector<ObjectEntry> objs;
  for (int i = 0; i < n; ++i) {
    objs.push_back({{rng->Uniform(0, extent), rng->Uniform(0, extent)}, i});
  }
  return objs;
}

TEST(BulkLoadTest, EmptyInput) {
  RStarTree tree = BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BulkLoadTest, SmallInputFallsBackToInserts) {
  Rng rng(1);
  RStarTree tree = BulkLoad(MakeRandomObjects(20, &rng));
  EXPECT_EQ(tree.size(), 20u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

class BulkLoadSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(BulkLoadSizeTest, InvariantsAndCompleteness) {
  Rng rng(100 + GetParam());
  int n = GetParam();
  std::vector<ObjectEntry> objs = MakeRandomObjects(n, &rng);
  RStarTree tree = BulkLoad(objs);
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  std::vector<ObjectEntry> all;
  tree.RangeQuery(tree.bounds(), &all);
  std::set<int64_t> ids;
  for (const ObjectEntry& o : all) ids.insert(o.id);
  EXPECT_EQ(ids.size(), static_cast<size_t>(n));
}

// Sizes straddling node-capacity boundaries (cap 30, min 12) including the
// awkward tails that force slice/group rebalancing.
INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadSizeTest,
                         ::testing::Values(31, 60, 61, 89, 97, 300, 901, 4050, 12345));

TEST(BulkLoadTest, QueriesMatchIncrementalTree) {
  Rng rng(2);
  std::vector<ObjectEntry> objs = MakeRandomObjects(3000, &rng);
  RStarTree bulk = BulkLoad(objs);
  RStarTree incremental;
  for (const ObjectEntry& o : objs) incremental.Insert(o.position, o.id);
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    std::vector<Neighbor> a = BestFirstKnn(bulk, q, 10);
    std::vector<Neighbor> b = BestFirstKnn(incremental, q, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].object.id, b[i].object.id) << "trial " << trial << " rank " << i;
    }
  }
}

TEST(BulkLoadTest, PackedTreeIsShallowerOrEqual) {
  Rng rng(3);
  std::vector<ObjectEntry> objs = MakeRandomObjects(5000, &rng);
  RStarTree bulk = BulkLoad(objs);
  RStarTree incremental;
  for (const ObjectEntry& o : objs) incremental.Insert(o.position, o.id);
  EXPECT_LE(bulk.height(), incremental.height());
}

TEST(BulkLoadTest, SupportsDynamicUpdatesAfterwards) {
  Rng rng(4);
  std::vector<ObjectEntry> objs = MakeRandomObjects(1000, &rng);
  RStarTree tree = BulkLoad(objs);
  for (int i = 0; i < 200; ++i) {
    tree.Insert({rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, 10000 + i);
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Remove(objs[static_cast<size_t>(i)].position,
                            objs[static_cast<size_t>(i)].id)
                    .ok());
  }
  EXPECT_EQ(tree.size(), 1100u);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
}

TEST(BulkLoadTest, HigherUtilizationThanIncremental) {
  // STR packs near 100%: fewer leaves than one-at-a-time insertion.
  Rng rng(5);
  std::vector<ObjectEntry> objs = MakeRandomObjects(6000, &rng);
  RStarTree bulk = BulkLoad(objs);
  RStarTree incremental;
  for (const ObjectEntry& o : objs) incremental.Insert(o.position, o.id);
  auto count_leaves = [](const RStarTree& tree) {
    int leaves = 0;
    std::vector<const RStarTree::Node*> stack{tree.root()};
    while (!stack.empty()) {
      const RStarTree::Node* n = stack.back();
      stack.pop_back();
      if (n->IsLeaf()) {
        ++leaves;
      } else {
        for (const RStarTree::Slot& s : n->slots) stack.push_back(s.child.get());
      }
    }
    return leaves;
  };
  EXPECT_LT(count_leaves(bulk), count_leaves(incremental));
}

TEST(BulkLoadTest, CustomOptionsRespected) {
  Rng rng(6);
  RStarTree::Options opts;
  opts.max_entries = 8;
  opts.min_entries = 3;
  RStarTree tree = BulkLoad(MakeRandomObjects(500, &rng), opts);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.options().max_entries, 8);
}

}  // namespace
}  // namespace senn::rtree
