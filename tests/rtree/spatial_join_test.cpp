#include "src/rtree/spatial_join.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/rtree/bulk_load.h"

namespace senn::rtree {
namespace {

using geom::Vec2;

std::vector<ObjectEntry> MakeRandomObjects(int n, Rng* rng, double extent,
                                           int64_t id_base = 0) {
  std::vector<ObjectEntry> objs;
  for (int i = 0; i < n; ++i) {
    objs.push_back({{rng->Uniform(0, extent), rng->Uniform(0, extent)}, id_base + i});
  }
  return objs;
}

std::set<std::pair<int64_t, int64_t>> BruteForcePairs(const std::vector<ObjectEntry>& a,
                                                      const std::vector<ObjectEntry>& b,
                                                      double d) {
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const ObjectEntry& x : a) {
    for (const ObjectEntry& y : b) {
      if (geom::Dist(x.position, y.position) <= d) pairs.insert({x.id, y.id});
    }
  }
  return pairs;
}

std::set<std::pair<int64_t, int64_t>> Ids(const std::vector<JoinPair>& pairs) {
  std::set<std::pair<int64_t, int64_t>> ids;
  for (const JoinPair& p : pairs) ids.insert({p.left.id, p.right.id});
  return ids;
}

TEST(DistanceJoinTest, MatchesBruteForce) {
  Rng rng(1);
  std::vector<ObjectEntry> a = MakeRandomObjects(300, &rng, 1000);
  std::vector<ObjectEntry> b = MakeRandomObjects(250, &rng, 1000, 1000);
  RStarTree ta = BulkLoad(a), tb = BulkLoad(b);
  for (double d : {5.0, 25.0, 60.0, 150.0}) {
    std::vector<JoinPair> got = DistanceJoin(ta, tb, d);
    EXPECT_EQ(Ids(got), BruteForcePairs(a, b, d)) << "d=" << d;
    for (const JoinPair& p : got) {
      EXPECT_LE(p.distance, d);
      EXPECT_NEAR(p.distance, geom::Dist(p.left.position, p.right.position), 1e-12);
    }
  }
}

TEST(DistanceJoinTest, DifferentTreeHeights) {
  Rng rng(2);
  std::vector<ObjectEntry> big = MakeRandomObjects(4000, &rng, 1000);
  std::vector<ObjectEntry> small = MakeRandomObjects(15, &rng, 1000, 10000);
  RStarTree tb = BulkLoad(big), ts = BulkLoad(small);
  ASSERT_GT(tb.height(), ts.height());
  std::vector<JoinPair> got = DistanceJoin(tb, ts, 30.0);
  EXPECT_EQ(Ids(got), BruteForcePairs(big, small, 30.0));
  // Symmetric call agrees (with roles swapped).
  std::vector<JoinPair> swapped = DistanceJoin(ts, tb, 30.0);
  std::set<std::pair<int64_t, int64_t>> flipped;
  for (const JoinPair& p : swapped) flipped.insert({p.right.id, p.left.id});
  EXPECT_EQ(Ids(got), flipped);
}

TEST(DistanceJoinTest, EmptyAndZeroCases) {
  Rng rng(3);
  RStarTree empty;
  RStarTree some = BulkLoad(MakeRandomObjects(50, &rng, 100));
  EXPECT_TRUE(DistanceJoin(empty, some, 10.0).empty());
  EXPECT_TRUE(DistanceJoin(some, empty, 10.0).empty());
  EXPECT_TRUE(DistanceJoin(some, some, -1.0).empty());
}

TEST(DistanceJoinTest, SelfJoinIncludesDiagonal) {
  Rng rng(4);
  std::vector<ObjectEntry> objs = MakeRandomObjects(100, &rng, 1000);
  RStarTree tree = BulkLoad(objs);
  std::vector<JoinPair> got = DistanceJoin(tree, tree, 0.0);
  // Threshold 0: only the diagonal pairs (positions are almost surely
  // distinct).
  EXPECT_EQ(got.size(), 100u);
  for (const JoinPair& p : got) EXPECT_EQ(p.left.id, p.right.id);
}

TEST(DistanceJoinTest, PrunesFarSubtrees) {
  // Two well-separated clusters: the join must not touch the far cluster's
  // leaves.
  Rng rng(5);
  std::vector<ObjectEntry> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back({{rng.Uniform(0, 100), rng.Uniform(0, 100)}, i});
    b.push_back({{rng.Uniform(5000, 5100), rng.Uniform(0, 100)}, 1000 + i});
  }
  RStarTree ta = BulkLoad(a), tb = BulkLoad(b);
  AccessCounter ca, cb;
  std::vector<JoinPair> got = DistanceJoin(ta, tb, 50.0, &ca, &cb);
  EXPECT_TRUE(got.empty());
  // Only the roots (and perhaps one level) are touched.
  EXPECT_LE(ca.total() + cb.total(), 6u);
}

TEST(DistanceJoinTest, SortedOutput) {
  Rng rng(6);
  std::vector<ObjectEntry> a = MakeRandomObjects(200, &rng, 300);
  std::vector<ObjectEntry> b = MakeRandomObjects(200, &rng, 300, 1000);
  std::vector<JoinPair> got = DistanceJoin(BulkLoad(a), BulkLoad(b), 40.0);
  for (size_t i = 1; i < got.size(); ++i) {
    bool ordered = got[i - 1].left.id < got[i].left.id ||
                   (got[i - 1].left.id == got[i].left.id &&
                    got[i - 1].right.id < got[i].right.id);
    EXPECT_TRUE(ordered) << "index " << i;
  }
}

}  // namespace
}  // namespace senn::rtree
