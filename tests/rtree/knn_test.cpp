#include "src/rtree/knn.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/common/rng.h"

namespace senn::rtree {
namespace {

using geom::Vec2;

std::vector<ObjectEntry> MakeRandomObjects(int n, Rng* rng, double extent = 1000.0) {
  std::vector<ObjectEntry> objs;
  objs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    objs.push_back({{rng->Uniform(0, extent), rng->Uniform(0, extent)}, i});
  }
  return objs;
}

std::vector<Neighbor> BruteForceKnn(const std::vector<ObjectEntry>& objs, Vec2 q, int k) {
  std::vector<Neighbor> all;
  all.reserve(objs.size());
  for (const ObjectEntry& o : objs) all.push_back({o, geom::Dist(q, o.position)});
  std::sort(all.begin(), all.end(),
            [](const Neighbor& a, const Neighbor& b) { return a.distance < b.distance; });
  if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

std::vector<int64_t> IdsOf(const std::vector<Neighbor>& ns) {
  std::vector<int64_t> ids;
  for (const Neighbor& n : ns) ids.push_back(n.object.id);
  return ids;
}

class KnnAlgorithmsTest : public ::testing::TestWithParam<int> {};

TEST_P(KnnAlgorithmsTest, DepthFirstMatchesBruteForce) {
  Rng rng(100 + GetParam());
  std::vector<ObjectEntry> objs = MakeRandomObjects(700, &rng);
  RStarTree tree;
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  int k = GetParam();
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 q{rng.Uniform(-100, 1100), rng.Uniform(-100, 1100)};
    std::vector<Neighbor> got = DepthFirstKnn(tree, q, k);
    std::vector<Neighbor> want = BruteForceKnn(objs, q, k);
    EXPECT_EQ(IdsOf(got), IdsOf(want)) << "k=" << k << " trial=" << trial;
  }
}

TEST_P(KnnAlgorithmsTest, BestFirstMatchesBruteForce) {
  Rng rng(200 + GetParam());
  std::vector<ObjectEntry> objs = MakeRandomObjects(700, &rng);
  RStarTree tree;
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  int k = GetParam();
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 q{rng.Uniform(-100, 1100), rng.Uniform(-100, 1100)};
    std::vector<Neighbor> got = BestFirstKnn(tree, q, k);
    std::vector<Neighbor> want = BruteForceKnn(objs, q, k);
    EXPECT_EQ(IdsOf(got), IdsOf(want)) << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(VariousK, KnnAlgorithmsTest, ::testing::Values(1, 2, 3, 5, 10, 25));

TEST(KnnTest, KZeroOrNegativeReturnsEmpty) {
  Rng rng(1);
  RStarTree tree;
  tree.Insert({1, 1}, 1);
  EXPECT_TRUE(DepthFirstKnn(tree, {0, 0}, 0).empty());
  EXPECT_TRUE(BestFirstKnn(tree, {0, 0}, -3).empty());
}

TEST(KnnTest, KLargerThanTreeReturnsAll) {
  Rng rng(2);
  std::vector<ObjectEntry> objs = MakeRandomObjects(20, &rng);
  RStarTree tree;
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  EXPECT_EQ(DepthFirstKnn(tree, {500, 500}, 100).size(), 20u);
  EXPECT_EQ(BestFirstKnn(tree, {500, 500}, 100).size(), 20u);
}

TEST(KnnTest, EmptyTreeYieldsNothing) {
  RStarTree tree;
  EXPECT_TRUE(DepthFirstKnn(tree, {0, 0}, 5).empty());
  BestFirstNnIterator it(tree, {0, 0});
  EXPECT_FALSE(it.Next().has_value());
}

TEST(KnnTest, IncrementalIteratorAscendingDistances) {
  Rng rng(3);
  std::vector<ObjectEntry> objs = MakeRandomObjects(500, &rng);
  RStarTree tree;
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  BestFirstNnIterator it(tree, {500, 500});
  double last = -1.0;
  int count = 0;
  while (auto n = it.Next()) {
    EXPECT_GE(n->distance, last);
    last = n->distance;
    ++count;
  }
  EXPECT_EQ(count, 500);
}

TEST(KnnTest, IncrementalIteratorMatchesBruteForceOrder) {
  Rng rng(4);
  std::vector<ObjectEntry> objs = MakeRandomObjects(300, &rng);
  RStarTree tree;
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  Vec2 q{123, 456};
  std::vector<Neighbor> want = BruteForceKnn(objs, q, 300);
  BestFirstNnIterator it(tree, q);
  for (int i = 0; i < 300; ++i) {
    auto n = it.Next();
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(n->object.id, want[static_cast<size_t>(i)].object.id) << "rank " << i;
  }
}

TEST(KnnTest, BestFirstVisitsFewerNodesThanDepthFirstOnAverage) {
  // Hjaltason & Samet's algorithm is I/O-optimal; over many queries it must
  // not access more nodes than depth-first branch-and-bound.
  Rng rng(5);
  std::vector<ObjectEntry> objs = MakeRandomObjects(3000, &rng);
  RStarTree tree;
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  uint64_t df_total = 0, bf_total = 0;
  for (int trial = 0; trial < 100; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    AccessCounter df, bf;
    DepthFirstKnn(tree, q, 10, &df);
    BestFirstKnn(tree, q, 10, {}, &bf);
    df_total += df.total();
    bf_total += bf.total();
  }
  EXPECT_LE(bf_total, df_total);
}

TEST(KnnTest, UpperBoundPruningPreservesResultsWithinBound) {
  Rng rng(6);
  std::vector<ObjectEntry> objs = MakeRandomObjects(1000, &rng);
  RStarTree tree;
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  for (int trial = 0; trial < 25; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    std::vector<Neighbor> plain = BestFirstKnn(tree, q, 10);
    // A valid upper bound: the true 10th distance (exactly what a full heap
    // H of 10 candidates guarantees).
    PruneBounds bounds;
    bounds.upper = plain.back().distance;
    AccessCounter pruned_counter, plain_counter;
    std::vector<Neighbor> pruned = BestFirstKnn(tree, q, 10, bounds, &pruned_counter);
    BestFirstKnn(tree, q, 10, {}, &plain_counter);
    EXPECT_EQ(IdsOf(pruned), IdsOf(plain)) << "trial " << trial;
    EXPECT_LE(pruned_counter.total(), plain_counter.total());
  }
}

TEST(KnnTest, LowerBoundSkipsKnownObjectsAndFindsTheRest) {
  Rng rng(7);
  std::vector<ObjectEntry> objs = MakeRandomObjects(1000, &rng);
  RStarTree tree;
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  for (int trial = 0; trial < 25; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    std::vector<Neighbor> plain = BestFirstKnn(tree, q, 10);
    // Simulate: the client certified the first 4 NNs locally; the server
    // must return exactly ranks 5..10.
    PruneBounds bounds;
    bounds.lower = plain[3].distance;
    std::vector<Neighbor> rest = BestFirstKnn(tree, q, 6, bounds);
    ASSERT_EQ(rest.size(), 6u);
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(rest[static_cast<size_t>(i)].object.id,
                plain[static_cast<size_t>(i + 4)].object.id)
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST(KnnTest, BothBoundsTogetherReduceAccesses) {
  // EINN saves pages when the client's certain disk spans whole leaves:
  // use a small fan-out (small leaf MBRs) and a mostly-certified result set,
  // the regime the paper's Figure 17 measures.
  Rng rng(8);
  std::vector<ObjectEntry> objs = MakeRandomObjects(5000, &rng);
  RStarTree::Options opts;
  opts.max_entries = 8;
  opts.min_entries = 3;
  RStarTree tree(opts);
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  uint64_t einn_total = 0, inn_total = 0;
  const int k = 40, certified = 30;
  for (int trial = 0; trial < 50; ++trial) {
    Vec2 q{rng.Uniform(100, 900), rng.Uniform(100, 900)};
    std::vector<Neighbor> plain = BestFirstKnn(tree, q, k);
    PruneBounds bounds;
    bounds.lower = plain[certified - 1].distance;  // 30 certified locally
    bounds.upper = plain.back().distance;
    AccessCounter einn, inn;
    std::vector<Neighbor> rest = BestFirstKnn(tree, q, k - certified, bounds, &einn);
    BestFirstKnn(tree, q, k, {}, &inn);
    einn_total += einn.total();
    inn_total += inn.total();
    // Merged result (30 known + 10 fetched) equals the plain top-40.
    ASSERT_EQ(rest.size(), static_cast<size_t>(k - certified));
    for (int i = 0; i < k - certified; ++i) {
      EXPECT_EQ(rest[static_cast<size_t>(i)].object.id,
                plain[static_cast<size_t>(i + certified)].object.id);
    }
  }
  EXPECT_LT(einn_total, inn_total);
}

TEST(KnnTest, TightUpperBoundTerminatesEarly) {
  Rng rng(9);
  std::vector<ObjectEntry> objs = MakeRandomObjects(2000, &rng);
  RStarTree tree;
  for (const ObjectEntry& o : objs) tree.Insert(o.position, o.id);
  Vec2 q{500, 500};
  PruneBounds bounds;
  bounds.upper = 1.0;  // almost certainly no POI within 1 m
  BestFirstNnIterator it(tree, q, bounds);
  int count = 0;
  while (it.Next().has_value()) ++count;
  // Either zero results or very few; the iterator must terminate.
  EXPECT_LE(count, 2);
}

TEST(KnnTest, DuplicateDistancesHandled) {
  // Objects arranged on a circle: all equidistant from the center.
  RStarTree tree;
  for (int i = 0; i < 64; ++i) {
    double a = 2.0 * M_PI * i / 64;
    tree.Insert({std::cos(a) * 10, std::sin(a) * 10}, i);
  }
  std::vector<Neighbor> got = BestFirstKnn(tree, {0, 0}, 10);
  ASSERT_EQ(got.size(), 10u);
  for (const Neighbor& n : got) EXPECT_NEAR(n.distance, 10.0, 1e-9);
}

}  // namespace
}  // namespace senn::rtree
