// The simulator-level loopback-determinism contract (the tentpole
// acceptance test): --server-transport loopback routes EVERY server contact
// through the full rpc wire path — encode, frame, decode, validate,
// dispatch — and still produces BYTE-IDENTICAL report JSON to the
// in-process transport, across sequential, batched, and paged
// configurations. The golden prefixes of golden_json_test.cpp therefore
// hold over loopback too.
#include <gtest/gtest.h>

#include <string>

#include "src/sim/report.h"
#include "src/sim/simulator.h"

namespace senn::sim {
namespace {

SimulationConfig BaseConfig(Region region, double duration_s, uint64_t seed) {
  SimulationConfig cfg;
  cfg.params = Table3(region);
  cfg.mode = MovementMode::kFreeMovement;
  cfg.duration_s = duration_s;
  cfg.seed = seed;
  return cfg;
}

std::string RunJson(SimulationConfig cfg, ServerTransport transport) {
  cfg.server_transport = transport;
  return SimulationResultJson(Simulator(cfg).Run());
}

TEST(LoopbackSimTest, SequentialRunIsByteIdenticalAcrossTransports) {
  SimulationConfig cfg = BaseConfig(Region::kLosAngeles, 300.0, 42);
  EXPECT_EQ(RunJson(cfg, ServerTransport::kInProcess),
            RunJson(cfg, ServerTransport::kLoopback));
}

TEST(LoopbackSimTest, SecondRegionAndSeedAgreeToo) {
  SimulationConfig cfg = BaseConfig(Region::kRiverside, 240.0, 7);
  EXPECT_EQ(RunJson(cfg, ServerTransport::kInProcess),
            RunJson(cfg, ServerTransport::kLoopback));
}

TEST(LoopbackSimTest, BatchedDrainIsByteIdenticalAcrossTransports) {
  // server_batch > 1: the loopback path pipelines each step's crop as one
  // group; the QueryService's AnswerBatch call must land exactly where the
  // in-process BatchServer's does — batch_* metrics included.
  SimulationConfig cfg = BaseConfig(Region::kLosAngeles, 300.0, 42);
  cfg.server_batch = 4;
  EXPECT_EQ(RunJson(cfg, ServerTransport::kInProcess),
            RunJson(cfg, ServerTransport::kLoopback));
}

TEST(LoopbackSimTest, PagedBatchedRunIsByteIdenticalAcrossTransports) {
  // The hardest configuration: bounded buffer pool + shared traversals.
  // Physical miss accounting (shared/private splits) must survive the wire.
  SimulationConfig cfg = BaseConfig(Region::kLosAngeles, 300.0, 42);
  cfg.server_batch = 4;
  cfg.paged_storage = true;
  cfg.buffer.capacity_pages = 4;
  EXPECT_EQ(RunJson(cfg, ServerTransport::kInProcess),
            RunJson(cfg, ServerTransport::kLoopback));
}

TEST(LoopbackSimTest, LossyChannelRunAgreesToo) {
  // Channel randomness ("net" streams) is client-side and must be unmoved
  // by the transport swap.
  SimulationConfig cfg = BaseConfig(Region::kLosAngeles, 300.0, 42);
  cfg.channel.loss = 0.2;
  cfg.channel.latency_mean_s = 0.05;
  EXPECT_EQ(RunJson(cfg, ServerTransport::kInProcess),
            RunJson(cfg, ServerTransport::kLoopback));
}

TEST(LoopbackSimTest, LoopbackAddsNoReportFields) {
  // The transport must be invisible in the report schema: same keys, same
  // order, no rpc-specific additions.
  SimulationConfig cfg = BaseConfig(Region::kRiverside, 240.0, 7);
  const std::string json = RunJson(cfg, ServerTransport::kLoopback);
  EXPECT_EQ(json.find("rpc"), std::string::npos);
  EXPECT_NE(json.find("\"simulated_seconds\":"), std::string::npos);
}

}  // namespace
}  // namespace senn::sim
