// Tests of the simulator's modeling options: M_Percentage interpretation,
// page-accounting mode, SENN ablation switches, and the qualitative sweep
// shapes the paper's figures rest on.
#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace senn::sim {
namespace {

SimulationConfig Base(Region region, uint64_t seed) {
  SimulationConfig cfg;
  cfg.params = Table3(region);
  cfg.mode = MovementMode::kFreeMovement;  // cheapest
  cfg.seed = seed;
  cfg.duration_s = 600.0;
  cfg.warmup_fraction = 0.25;
  return cfg;
}

TEST(SimulatorOptionsTest, StationaryFractionLowersServerLoad) {
  SimulationConfig duty = Base(Region::kLosAngeles, 3);
  SimulationConfig frac = Base(Region::kLosAngeles, 3);
  frac.m_percentage_mode = MPercentageMode::kStationaryFraction;
  double duty_server = Simulator(duty).Run().pct_server;
  double frac_server = Simulator(frac).Run().pct_server;
  // Permanently-stationary hosts are immortal cache providers.
  EXPECT_LT(frac_server, duty_server);
}

TEST(SimulatorOptionsTest, StationaryFractionKeepsSomeHostsStill) {
  SimulationConfig cfg = Base(Region::kLosAngeles, 4);
  cfg.m_percentage_mode = MPercentageMode::kStationaryFraction;
  Simulator sim(cfg);
  int moving = 0;
  for (const auto& host : sim.hosts()) moving += host->moving();
  double fraction = static_cast<double>(moving) / static_cast<double>(sim.hosts().size());
  EXPECT_NEAR(fraction, 0.8, 0.08);
}

TEST(SimulatorOptionsTest, DutyCycleMovesEveryone) {
  SimulationConfig cfg = Base(Region::kLosAngeles, 5);
  Simulator sim(cfg);
  for (const auto& host : sim.hosts()) EXPECT_TRUE(host->moving());
}

TEST(SimulatorOptionsTest, EnqueueAccountingCountsMorePages) {
  SimulationConfig expand = Base(Region::kRiverside, 6);
  SimulationConfig enqueue = Base(Region::kRiverside, 6);
  enqueue.page_count_mode = rtree::AccessCountMode::kOnEnqueue;
  SimulationResult expand_r = Simulator(expand).Run();
  SimulationResult enqueue_r = Simulator(enqueue).Run();
  ASSERT_GT(expand_r.by_server, 0u);
  EXPECT_GE(enqueue_r.inn_pages.mean(), expand_r.inn_pages.mean());
}

TEST(SimulatorOptionsTest, DisablingMultiPeerShiftsLoadToServer) {
  SimulationConfig with = Base(Region::kLosAngeles, 7);
  SimulationConfig without = Base(Region::kLosAngeles, 7);
  without.senn.enable_multi_peer = false;
  SimulationResult with_r = Simulator(with).Run();
  SimulationResult without_r = Simulator(without).Run();
  EXPECT_EQ(without_r.by_multi_peer, 0u);
  EXPECT_GE(without_r.pct_server, with_r.pct_server);
}

TEST(SimulatorOptionsTest, PolygonizedBackendStaysExactButShiftsCounts) {
  SimulationConfig poly = Base(Region::kLosAngeles, 8);
  poly.senn.multi_peer.backend = core::CoverageBackend::kPolygonized;
  poly.senn.multi_peer.polygonize.sides = 16;
  SimulationResult r = Simulator(poly).Run();
  // Conservative coverage can only push queries toward the server, never
  // corrupt them; the run must simply complete with consistent accounting.
  EXPECT_EQ(r.by_single_peer + r.by_multi_peer + r.by_server, r.measured_queries);
}

TEST(SimulatorOptionsTest, TxRangeSweepIsBroadlyMonotone) {
  // The Figure 9 shape: server load at 200 m is clearly below 20 m.
  SimulationConfig narrow = Base(Region::kLosAngeles, 9);
  narrow.params.tx_range_m = 20.0;
  narrow.duration_s = 1200.0;
  SimulationConfig wide = Base(Region::kLosAngeles, 9);
  wide.params.tx_range_m = 200.0;
  wide.duration_s = 1200.0;
  EXPECT_GT(Simulator(narrow).Run().pct_server, Simulator(wide).Run().pct_server + 10.0);
}

TEST(SimulatorOptionsTest, KSweepRaisesServerLoad) {
  // The Figure 15 shape: larger k is harder to certify.
  SimulationConfig small_k = Base(Region::kLosAngeles, 10);
  small_k.params.k_nn = 1;
  small_k.duration_s = 1200.0;
  SimulationConfig big_k = Base(Region::kLosAngeles, 10);
  big_k.params.k_nn = 9;
  big_k.duration_s = 1200.0;
  EXPECT_LT(Simulator(small_k).Run().pct_server, Simulator(big_k).Run().pct_server);
}

TEST(SimulatorOptionsTest, RegionProtocolRunsConsistently) {
  SimulationConfig cfg = Base(Region::kLosAngeles, 13);
  cfg.senn.ship_region = true;
  SimulationResult r = Simulator(cfg).Run();
  EXPECT_EQ(r.by_single_peer + r.by_multi_peer + r.by_server, r.measured_queries);
  if (r.by_server > 0) {
    // The region path records pages for its pruned search as EINN pages.
    EXPECT_GT(r.inn_pages.mean(), 0.0);
  }
}

TEST(SimulatorOptionsTest, ExplicitPauseOverridesDerived) {
  SimulationConfig cfg = Base(Region::kRiverside, 11);
  cfg.mean_pause_s = 1e6;  // hosts effectively never move after first pause
  SimulationResult r = Simulator(cfg).Run();
  EXPECT_GT(r.measured_queries, 0u);
}

TEST(SimulatorOptionsTest, FullTExecutionUsedWhenDurationUnset) {
  SimulationConfig cfg = Base(Region::kRiverside, 12);
  cfg.duration_s = -1.0;  // use the paper's T_execution (1 hour)
  SimulationResult r = Simulator(cfg).Run();
  EXPECT_DOUBLE_EQ(r.simulated_seconds, 3600.0);
}

}  // namespace
}  // namespace senn::sim
