#include "src/sim/report.h"

#include <gtest/gtest.h>

namespace senn::sim {
namespace {

TEST(ReportTest, PrintFigureEmitsRowsAndCsv) {
  FigureSeries series;
  series.label = "Testville";
  SimulationResult r;
  r.measured_queries = 100;
  r.pct_server = 25.0;
  r.pct_single_peer = 60.0;
  r.pct_multi_peer = 15.0;
  series.rows.push_back({200.0, r});
  ::testing::internal::CaptureStdout();
  PrintFigure("Figure X", "tx_m", {series});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Figure X"), std::string::npos);
  EXPECT_NE(out.find("Testville"), std::string::npos);
  EXPECT_NE(out.find("csv,Testville,200,25.00,60.00,15.00,100"), std::string::npos);
}

TEST(ReportTest, PrintPageAccessFigureComputesSaving) {
  PageAccessSeries series;
  series.label = "LA";
  series.rows.push_back({4, 8.0, 10.0});
  ::testing::internal::CaptureStdout();
  PrintPageAccessFigure("Fig 17", {series});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("20.0"), std::string::npos);  // 1 - 8/10 = 20% saving
  EXPECT_NE(out.find("csv,LA,4,8.000,10.000"), std::string::npos);
}

TEST(ReportTest, PrintParameterSetShowsPaperValues) {
  ::testing::internal::CaptureStdout();
  PrintParameterSet(Table3(Region::kLosAngeles));
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Los Angeles"), std::string::npos);
  EXPECT_NE(out.find("463"), std::string::npos);   // MH Number
  EXPECT_NE(out.find("23.0"), std::string::npos);  // lambda_Query
}

TEST(ReportTest, ZeroPagesSavingIsZero) {
  PageAccessSeries series;
  series.label = "empty";
  series.rows.push_back({4, 0.0, 0.0});
  ::testing::internal::CaptureStdout();
  PrintPageAccessFigure("Fig", {series});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("0.0"), std::string::npos);
}

}  // namespace
}  // namespace senn::sim
