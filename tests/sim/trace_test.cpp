#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/sim/simulator.h"

namespace senn::sim {
namespace {

TEST(QueryTraceTest, RecordsAndClears) {
  QueryTrace trace;
  trace.Record({1.5, 7, 3, core::Resolution::kServer, 4, 10, 5, 9, true});
  trace.Record({2.0, 8, 3, core::Resolution::kSinglePeer, 2, 3, 0, 0, false});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].host_id, 7);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(QueryTraceTest, CsvFormat) {
  QueryTrace trace;
  trace.Record({1.5, 7, 3, core::Resolution::kServer, 4, 10, 5, 9, true});
  std::stringstream out;
  ASSERT_TRUE(trace.WriteCsv(&out).ok());
  std::string text = out.str();
  EXPECT_NE(text.find("time_s,host,k,resolution"), std::string::npos);
  EXPECT_NE(text.find("1.5,7,3,server,4,10,5,9,1"), std::string::npos);
}

TEST(QueryTraceTest, SimulatorFillsTrace) {
  SimulationConfig cfg;
  cfg.params = Table3(Region::kLosAngeles);
  cfg.mode = MovementMode::kFreeMovement;
  cfg.seed = 77;
  cfg.duration_s = 300.0;
  cfg.warmup_fraction = 0.5;
  Simulator sim(cfg);
  QueryTrace trace;
  sim.AttachTrace(&trace);
  SimulationResult r = sim.Run();
  // Every query (measured or warm-up) produced an event.
  EXPECT_GT(trace.size(), r.measured_queries);
  uint64_t measured = 0, servers = 0;
  double last_time = 0.0;
  for (const QueryEvent& e : trace.events()) {
    EXPECT_GE(e.time_s, last_time);  // chronological
    last_time = e.time_s;
    EXPECT_GE(e.host_id, 0);
    EXPECT_LT(e.host_id, cfg.params.mh_number);
    EXPECT_EQ(e.k, cfg.params.k_nn);
    measured += e.measured;
    if (e.measured && e.resolution == core::Resolution::kServer) {
      ++servers;
      EXPECT_GT(e.inn_pages, 0u);
    }
  }
  EXPECT_EQ(measured, r.measured_queries);
  EXPECT_EQ(servers, r.by_server);
}

TEST(QueryTraceTest, FileWriting) {
  QueryTrace trace;
  trace.Record({0.0, 1, 1, core::Resolution::kMultiPeer, 3, 2, 0, 0, true});
  std::string path = ::testing::TempDir() + "/trace_test.csv";
  ASSERT_TRUE(trace.WriteCsvToFile(path).ok());
  EXPECT_TRUE(trace.WriteCsvToFile("/nonexistent/dir/x.csv").IsNotFound());
}

}  // namespace
}  // namespace senn::sim
