// Determinism regression tests: a simulation run is a pure function of its
// SimulationConfig (see the RNG stream layout in simulator.h), and the sweep
// engine preserves that bit-for-bit under any thread count. Results are
// compared through SimulationResultJson, whose %.17g rendering is round-trip
// exact — byte-identical JSON iff bit-identical metrics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/report.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep.h"

namespace senn::sim {
namespace {

SimulationConfig SmallConfig(Region region, MovementMode mode, uint64_t seed) {
  SimulationConfig cfg;
  cfg.params = Table3(region);
  cfg.mode = mode;
  cfg.seed = seed;
  cfg.duration_s = 180.0;
  cfg.warmup_fraction = 0.25;
  cfg.time_step_s = 1.0;
  return cfg;
}

std::vector<SimulationConfig> SweepConfigs() {
  // A miniature Figure-9-style grid: both movement modes, two regions, two
  // transmission ranges.
  std::vector<SimulationConfig> configs;
  int i = 0;
  for (MovementMode mode : {MovementMode::kFreeMovement, MovementMode::kRoadNetwork}) {
    for (Region region : {Region::kLosAngeles, Region::kRiverside}) {
      for (double tx : {100.0, 200.0}) {
        SimulationConfig cfg = SmallConfig(region, mode, 100 + static_cast<uint64_t>(i++));
        cfg.params.tx_range_m = tx;
        if (i % 2 == 0) {
          // Interleave lossy-channel configs so the batch mixes ideal and
          // degraded runs — the "net" stream must stay per-query either way.
          cfg.channel.loss = 0.2;
          cfg.channel.latency_mean_s = 0.02;
          cfg.channel.reply_timeout_s = 0.1;
        }
        configs.push_back(cfg);
      }
    }
  }
  return configs;
}

TEST(DeterminismTest, SameConfigRunsBitIdentical) {
  for (MovementMode mode : {MovementMode::kFreeMovement, MovementMode::kRoadNetwork}) {
    SimulationConfig cfg = SmallConfig(Region::kSyntheticSuburbia, mode, 42);
    SimulationResult a = Simulator(cfg).Run();
    SimulationResult b = Simulator(cfg).Run();
    EXPECT_EQ(SimulationResultJson(a), SimulationResultJson(b));
    EXPECT_GT(a.measured_queries, 0u);
  }
}

TEST(DeterminismTest, SweepIsThreadCountInvariant) {
  // The acceptance bar of the sweep engine: a 4-thread run of a sweep
  // produces byte-identical JSON metrics to the 1-thread run, per config.
  std::vector<SimulationConfig> configs = SweepConfigs();
  std::vector<SimulationResult> serial = RunConfigs(configs, SweepOptions{1});
  std::vector<SimulationResult> parallel = RunConfigs(configs, SweepOptions{4});
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(SimulationResultJson(serial[i]), SimulationResultJson(parallel[i]))
        << "config " << i;
    EXPECT_GT(serial[i].measured_queries, 0u) << "config " << i;
  }
}

TEST(DeterminismTest, SweepResultsIndependentOfBatchComposition) {
  // A config's result must not depend on what else runs in the same batch.
  std::vector<SimulationConfig> configs = SweepConfigs();
  SimulationResult alone = Simulator(configs[3]).Run();
  std::vector<SimulationResult> batched = RunConfigs(configs, SweepOptions{3});
  EXPECT_EQ(SimulationResultJson(alone), SimulationResultJson(batched[3]));
}

TEST(DeterminismTest, SeedShardingIsThreadCountInvariant) {
  SimulationConfig base = SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 7);
  SimulationResult serial = RunSeedShards(base, 4, SweepOptions{1});
  SimulationResult parallel = RunSeedShards(base, 4, SweepOptions{4});
  EXPECT_EQ(SimulationResultJson(serial), SimulationResultJson(parallel));
  EXPECT_GT(serial.measured_queries, 0u);
}

TEST(DeterminismTest, ShardZeroKeepsTheBaseSeed) {
  SimulationConfig base = SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 11);
  EXPECT_EQ(ShardConfig(base, 0).seed, base.seed);
  EXPECT_NE(ShardConfig(base, 1).seed, base.seed);
  EXPECT_NE(ShardConfig(base, 1).seed, ShardConfig(base, 2).seed);
}

TEST(DeterminismTest, MergeResultsAggregatesCounters) {
  SimulationConfig base = SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 13);
  std::vector<SimulationConfig> shards{ShardConfig(base, 0), ShardConfig(base, 1)};
  std::vector<SimulationResult> parts = RunConfigs(shards, SweepOptions{2});
  SimulationResult merged = MergeResults(parts);
  EXPECT_EQ(merged.measured_queries,
            parts[0].measured_queries + parts[1].measured_queries);
  EXPECT_EQ(merged.by_server, parts[0].by_server + parts[1].by_server);
  EXPECT_EQ(merged.by_single_peer + merged.by_multi_peer + merged.by_server,
            merged.measured_queries);
  EXPECT_NEAR(merged.pct_single_peer + merged.pct_multi_peer + merged.pct_server, 100.0,
              1e-6);
  EXPECT_DOUBLE_EQ(merged.simulated_seconds,
                   parts[0].simulated_seconds + parts[1].simulated_seconds);
  EXPECT_EQ(merged.peers_in_range.count(),
            parts[0].peers_in_range.count() + parts[1].peers_in_range.count());
  EXPECT_EQ(merged.einn_pages.count(), merged.by_server);
}

TEST(DeterminismTest, JsonRendersEveryMetric) {
  SimulationResult r = Simulator(SmallConfig(Region::kRiverside,
                                             MovementMode::kFreeMovement, 17)).Run();
  std::string json = SimulationResultJson(r);
  for (const char* key : {"measured_queries", "by_single_peer", "by_multi_peer",
                          "by_server", "pct_server", "einn_pages", "inn_pages",
                          "peers_in_range", "p2p_messages_per_query",
                          "p2p_bytes_per_query", "simulated_seconds"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace senn::sim
