// Integration tests of the full simulation engine: accounting consistency,
// determinism, and the qualitative effects the paper's evaluation reports
// (density, transmission range, cache size).
#include "src/sim/simulator.h"

#include <gtest/gtest.h>

namespace senn::sim {
namespace {

SimulationConfig SmallConfig(Region region, MovementMode mode, uint64_t seed) {
  SimulationConfig cfg;
  cfg.params = Table3(region);
  cfg.mode = mode;
  cfg.seed = seed;
  cfg.duration_s = 240.0;
  cfg.warmup_fraction = 0.25;
  cfg.time_step_s = 1.0;
  return cfg;
}

TEST(SimulatorTest, CountsAreConsistent) {
  Simulator sim(SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 1));
  SimulationResult r = sim.Run();
  EXPECT_GT(r.measured_queries, 10u);
  EXPECT_EQ(r.by_single_peer + r.by_multi_peer + r.by_server, r.measured_queries);
  EXPECT_NEAR(r.pct_single_peer + r.pct_multi_peer + r.pct_server, 100.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.simulated_seconds, 240.0);
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  SimulationResult a = Simulator(SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 7)).Run();
  SimulationResult b = Simulator(SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 7)).Run();
  EXPECT_EQ(a.measured_queries, b.measured_queries);
  EXPECT_EQ(a.by_single_peer, b.by_single_peer);
  EXPECT_EQ(a.by_multi_peer, b.by_multi_peer);
  EXPECT_EQ(a.by_server, b.by_server);
}

TEST(SimulatorTest, DifferentSeedsDiffer) {
  SimulationResult a = Simulator(SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 1)).Run();
  SimulationResult b = Simulator(SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 2)).Run();
  EXPECT_NE(a.by_server, b.by_server);  // overwhelmingly likely
}

TEST(SimulatorTest, RoadNetworkModeRuns) {
  Simulator sim(SmallConfig(Region::kSyntheticSuburbia, MovementMode::kRoadNetwork, 3));
  ASSERT_NE(sim.graph(), nullptr);
  EXPECT_TRUE(sim.graph()->IsConnected());
  SimulationResult r = sim.Run();
  EXPECT_GT(r.measured_queries, 0u);
}

TEST(SimulatorTest, DenseRegionUsesServerLess) {
  // The headline scalability claim: higher MH density => more peer answers.
  SimulationResult la =
      Simulator(SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 11)).Run();
  SimulationResult rv =
      Simulator(SmallConfig(Region::kRiverside, MovementMode::kFreeMovement, 11)).Run();
  EXPECT_LT(la.pct_server, rv.pct_server);
  // And in LA the majority of queries must be peer-resolvable (paper: only
  // ~20-30% reach the server at 200 m transmission range).
  EXPECT_LT(la.pct_server, 50.0);
}

TEST(SimulatorTest, ZeroTransmissionRangeMeansOnlySelfCache) {
  SimulationConfig cfg = SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 5);
  cfg.params.tx_range_m = 1.0;  // effectively self only
  SimulationResult r = Simulator(cfg).Run();
  // Moving hosts rarely answer from a stale self-cache; far more server
  // traffic than with the default range.
  SimulationResult wide = Simulator(SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 5)).Run();
  EXPECT_GT(r.pct_server, wide.pct_server);
}

TEST(SimulatorTest, LargerCacheReducesServerLoad) {
  SimulationConfig small_cache = SmallConfig(Region::kSyntheticSuburbia, MovementMode::kFreeMovement, 9);
  small_cache.params.cache_size = 1;
  // k must not exceed what a 1-entry cache can certify; keep paper's k=3 and
  // compare against the default 10-entry cache.
  SimulationConfig big_cache = SmallConfig(Region::kSyntheticSuburbia, MovementMode::kFreeMovement, 9);
  big_cache.params.cache_size = 10;
  SimulationResult small_r = Simulator(small_cache).Run();
  SimulationResult big_r = Simulator(big_cache).Run();
  EXPECT_GT(small_r.pct_server, big_r.pct_server);
}

TEST(SimulatorTest, WarmStartReducesInitialServerLoad) {
  SimulationConfig cold = SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 13);
  cold.warm_start = false;
  cold.warmup_fraction = 0.0;
  SimulationConfig warm = SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 13);
  warm.warmup_fraction = 0.0;
  SimulationResult cold_r = Simulator(cold).Run();
  SimulationResult warm_r = Simulator(warm).Run();
  EXPECT_GT(cold_r.pct_server, warm_r.pct_server);
}

TEST(SimulatorTest, ServerPageStatsRecordedOnlyForServerQueries) {
  Simulator sim(SmallConfig(Region::kRiverside, MovementMode::kFreeMovement, 15));
  SimulationResult r = sim.Run();
  EXPECT_EQ(r.einn_pages.count(), r.by_server);
  EXPECT_EQ(r.inn_pages.count(), r.by_server);
  if (r.by_server > 0) {
    EXPECT_LE(r.einn_pages.mean(), r.inn_pages.mean());
    EXPECT_GT(r.inn_pages.mean(), 0.0);
  }
}

TEST(SimulatorTest, RandomizedKStillConsistent) {
  SimulationConfig cfg = SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 17);
  cfg.randomize_k = true;
  cfg.k_min = 1;
  cfg.k_max = 9;
  SimulationResult r = Simulator(cfg).Run();
  EXPECT_EQ(r.by_single_peer + r.by_multi_peer + r.by_server, r.measured_queries);
}

TEST(SimulatorTest, QueryVolumeTracksLambda) {
  // 240 s at 23 queries/min with 25% warm-up => about 69 measured queries.
  SimulationResult r =
      Simulator(SmallConfig(Region::kLosAngeles, MovementMode::kFreeMovement, 19)).Run();
  double expected = 23.0 / 60.0 * 240.0 * 0.75;
  EXPECT_GT(static_cast<double>(r.measured_queries), expected * 0.6);
  EXPECT_LT(static_cast<double>(r.measured_queries), expected * 1.4);
}

}  // namespace
}  // namespace senn::sim
