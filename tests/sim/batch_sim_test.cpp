// Simulation-level behavior of --server-batch: the default (1) is
// byte-identical to a config that never mentions batching, and batched runs
// are internally consistent (counters populated, arithmetic closed) — note
// that batched AGGREGATES legitimately differ from sequential ones, because
// deferred queries store their cache entries at the step-end drain and later
// harvests see different peer state; only the per-query answers for
// identical inputs are bitwise-pinned (tests/core/batch_diff_test.cpp).
#include <gtest/gtest.h>

#include <string>

#include "src/sim/report.h"
#include "src/sim/simulator.h"

namespace senn::sim {
namespace {

SimulationConfig Base(uint64_t seed, int server_batch) {
  SimulationConfig cfg;
  cfg.params = Table3(Region::kLosAngeles);
  cfg.mode = MovementMode::kFreeMovement;
  cfg.seed = seed;
  cfg.duration_s = 600.0;
  cfg.warmup_fraction = 0.25;
  cfg.server_batch = server_batch;
  return cfg;
}

TEST(BatchSimTest, ServerBatchOneIsByteIdenticalToTheSequentialPath) {
  SimulationConfig sequential = Base(11, 1);
  SimulationConfig batch_one = Base(11, 1);
  batch_one.server_batch = 1;  // explicit, same meaning
  const std::string a = SimulationResultJson(Simulator(sequential).Run());
  const std::string b = SimulationResultJson(Simulator(batch_one).Run());
  EXPECT_EQ(a, b);

  SimulationResult r = Simulator(Base(11, 1)).Run();
  EXPECT_EQ(r.batch_clusters, 0u);
  EXPECT_EQ(r.batch_batched_queries, 0u);
  EXPECT_EQ(r.batch_cluster_size.count(), 0u);
}

TEST(BatchSimTest, BatchedRunIsInternallyConsistent) {
  // Table-3 load is far too sparse for two server contacts to share a step
  // (23 queries/min system-wide, ~9 % of them server-bound), so crank the
  // rate and shrink the radio: with almost no peers in range nearly every
  // query reaches the server, dozens per step.
  SimulationConfig cfg = Base(12, 4);
  cfg.duration_s = 120.0;
  cfg.params.queries_per_minute = 3000.0;
  cfg.params.tx_range_m = 10.0;
  SimulationResult r = Simulator(cfg).Run();
  ASSERT_GT(r.measured_queries, 0u);
  EXPECT_GT(r.batch_clusters, 0u);
  EXPECT_GT(r.batch_batched_queries, 0u);
  // The size histogram observes every formed cluster, singletons included;
  // shared clusters (batch_clusters) are the size >= 2 subset.
  EXPECT_GE(r.batch_cluster_size.count(), r.batch_clusters);
  EXPECT_GE(r.batch_cluster_size.max(), 2.0);
  EXPECT_LE(r.batch_cluster_size.max(), 4.0);
  // Shared misses only exist where >= 2 queries wanted the page, which
  // requires clusters; private misses cover the rest.
  EXPECT_GE(r.batch_shared_miss_pages + r.batch_private_miss_pages, 0u);

  // The JSON report carries the batch block (prefix-stable: new keys sit
  // before "simulated_seconds").
  const std::string json = SimulationResultJson(r);
  EXPECT_NE(json.find("\"batch_clusters\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_cluster_size\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_shared_miss_pages\""), std::string::npos);
}

TEST(BatchSimTest, BatchedRunIsDeterministic) {
  SimulationConfig cfg = Base(13, 4);
  cfg.duration_s = 60.0;
  cfg.params.queries_per_minute = 3000.0;
  cfg.params.tx_range_m = 10.0;
  const std::string a = SimulationResultJson(Simulator(cfg).Run());
  const std::string b = SimulationResultJson(Simulator(cfg).Run());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace senn::sim
