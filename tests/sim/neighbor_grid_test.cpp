#include "src/sim/neighbor_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.h"

namespace senn::sim {
namespace {

TEST(NeighborGridTest, InsertAndQuery) {
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {100, 100});
  grid.Insert(1, {150, 100});
  grid.Insert(2, {900, 900});
  std::vector<int32_t> out;
  grid.QueryRadius({120, 100}, 60, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int32_t>{0, 1}));
}

TEST(NeighborGridTest, RadiusIsExact) {
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {500, 500});
  grid.Insert(1, {500, 561});  // 61 m away
  std::vector<int32_t> out;
  grid.QueryRadius({500, 500}, 60, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
  out.clear();
  grid.QueryRadius({500, 500}, 61, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(NeighborGridTest, MoveUpdatesCells) {
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {100, 100});
  grid.Move(0, {100, 100}, {800, 800});
  std::vector<int32_t> out;
  grid.QueryRadius({100, 100}, 150, &out);
  EXPECT_TRUE(out.empty());
  grid.QueryRadius({800, 800}, 10, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
}

TEST(NeighborGridTest, PositionsOutsideAreaAreClamped) {
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {-50, 2000});  // clamped into border cells
  std::vector<int32_t> out;
  grid.QueryRadius({-50, 2000}, 1, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
}

TEST(NeighborGridTest, MatchesBruteForceUnderChurn) {
  Rng rng(1);
  NeighborGrid grid(1000, 120);
  std::vector<geom::Vec2> positions;
  for (int i = 0; i < 300; ++i) {
    positions.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    grid.Insert(i, positions.back());
  }
  for (int round = 0; round < 20; ++round) {
    // Move a random third of the hosts.
    for (int m = 0; m < 100; ++m) {
      int id = static_cast<int>(rng.NextIndex(300));
      geom::Vec2 next{positions[static_cast<size_t>(id)].x + rng.Uniform(-80, 80),
                      positions[static_cast<size_t>(id)].y + rng.Uniform(-80, 80)};
      grid.Move(id, positions[static_cast<size_t>(id)], next);
      positions[static_cast<size_t>(id)] = next;
    }
    geom::Vec2 center{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    double radius = rng.Uniform(50, 300);
    std::vector<int32_t> got;
    grid.QueryRadius(center, radius, &got);
    std::set<int32_t> expected;
    for (int i = 0; i < 300; ++i) {
      if (geom::Dist(positions[static_cast<size_t>(i)], center) <= radius) {
        expected.insert(i);
      }
    }
    EXPECT_EQ(std::set<int32_t>(got.begin(), got.end()), expected) << "round " << round;
  }
}

}  // namespace
}  // namespace senn::sim
