#include "src/sim/neighbor_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.h"

namespace senn::sim {
namespace {

TEST(NeighborGridTest, InsertAndQuery) {
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {100, 100});
  grid.Insert(1, {150, 100});
  grid.Insert(2, {900, 900});
  std::vector<int32_t> out;
  grid.QueryRadius({120, 100}, 60, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int32_t>{0, 1}));
}

TEST(NeighborGridTest, RadiusIsExact) {
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {500, 500});
  grid.Insert(1, {500, 561});  // 61 m away
  std::vector<int32_t> out;
  grid.QueryRadius({500, 500}, 60, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
  out.clear();
  grid.QueryRadius({500, 500}, 61, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(NeighborGridTest, MoveUpdatesCells) {
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {100, 100});
  grid.Move(0, {100, 100}, {800, 800});
  std::vector<int32_t> out;
  grid.QueryRadius({100, 100}, 150, &out);
  EXPECT_TRUE(out.empty());
  grid.QueryRadius({800, 800}, 10, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
}

TEST(NeighborGridTest, PositionsOutsideAreaAreClamped) {
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {-50, 2000});  // clamped into border cells
  std::vector<int32_t> out;
  grid.QueryRadius({-50, 2000}, 1, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
}

TEST(NeighborGridTest, HostsOnCellBoundariesAreFound) {
  // Hosts sitting exactly on cell edges and corners must land in exactly one
  // cell and still be found by radius queries straddling the boundary.
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {100, 100});   // interior corner of four cells
  grid.Insert(1, {200, 150});   // vertical edge
  grid.Insert(2, {150, 300});   // horizontal edge
  grid.Insert(3, {0, 0});       // area corner
  grid.Insert(4, {1000, 1000});  // far area corner (boundary of last cell)
  std::vector<int32_t> out;
  grid.QueryRadius({100, 100}, 0, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
  out.clear();
  grid.QueryRadius({199, 150}, 1, &out);
  EXPECT_EQ(out, std::vector<int32_t>{1});
  out.clear();
  grid.QueryRadius({150, 301}, 1, &out);
  EXPECT_EQ(out, std::vector<int32_t>{2});
  out.clear();
  grid.QueryRadius({0, 0}, 0.5, &out);
  EXPECT_EQ(out, std::vector<int32_t>{3});
  out.clear();
  grid.QueryRadius({1000, 1000}, 0.5, &out);
  EXPECT_EQ(out, std::vector<int32_t>{4});
}

TEST(NeighborGridTest, MoveAlongCellBoundaryKeepsHostFindable) {
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {100, 50});
  // Slide along the x=100 boundary line, then off it; never lose the host.
  grid.Move(0, {100, 50}, {100, 100});
  std::vector<int32_t> out;
  grid.QueryRadius({100, 100}, 0, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
  grid.Move(0, {100, 100}, {100, 199.5});
  out.clear();
  grid.QueryRadius({100, 199.5}, 0.25, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
  grid.Move(0, {100, 199.5}, {99.9, 199.5});
  out.clear();
  grid.QueryRadius({100, 199.5}, 0.25, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
}

TEST(NeighborGridTest, RangeLargerThanWorldSeesEveryone) {
  // Tx range bigger than the whole area: every host is in range of every
  // query point, and the scan must not walk cells out of bounds.
  NeighborGrid grid(500, 100);
  for (int i = 0; i < 25; ++i) {
    grid.Insert(i, {static_cast<double>(20 * i), static_cast<double>(499 - 17 * i)});
  }
  std::vector<int32_t> out;
  grid.QueryRadius({250, 250}, 5000, &out);
  EXPECT_EQ(out.size(), 25u);
  out.clear();
  grid.QueryRadius({-1000, 4000}, 50000, &out);  // center far outside too
  EXPECT_EQ(out.size(), 25u);
}

TEST(NeighborGridTest, CellSizeLargerThanWorldIsOneCell) {
  NeighborGrid grid(300, 1000);  // degenerate: a single cell covers everything
  grid.Insert(0, {10, 10});
  grid.Insert(1, {290, 290});
  std::vector<int32_t> out;
  grid.QueryRadius({10, 10}, 50, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
  out.clear();
  grid.QueryRadius({150, 150}, 500, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(NeighborGridTest, ZeroRangeQueryMatchesOnlyExactPosition) {
  NeighborGrid grid(1000, 100);
  grid.Insert(0, {400, 400});
  grid.Insert(1, {400.0001, 400});
  std::vector<int32_t> out;
  grid.QueryRadius({400, 400}, 0, &out);
  EXPECT_EQ(out, std::vector<int32_t>{0});
  out.clear();
  grid.QueryRadius({401, 400}, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(NeighborGridTest, MatchesBruteForceUnderChurn) {
  Rng rng(1);
  NeighborGrid grid(1000, 120);
  std::vector<geom::Vec2> positions;
  for (int i = 0; i < 300; ++i) {
    positions.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    grid.Insert(i, positions.back());
  }
  for (int round = 0; round < 20; ++round) {
    // Move a random third of the hosts.
    for (int m = 0; m < 100; ++m) {
      int id = static_cast<int>(rng.NextIndex(300));
      geom::Vec2 next{positions[static_cast<size_t>(id)].x + rng.Uniform(-80, 80),
                      positions[static_cast<size_t>(id)].y + rng.Uniform(-80, 80)};
      grid.Move(id, positions[static_cast<size_t>(id)], next);
      positions[static_cast<size_t>(id)] = next;
    }
    geom::Vec2 center{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    double radius = rng.Uniform(50, 300);
    std::vector<int32_t> got;
    grid.QueryRadius(center, radius, &got);
    std::set<int32_t> expected;
    for (int i = 0; i < 300; ++i) {
      if (geom::Dist(positions[static_cast<size_t>(i)], center) <= radius) {
        expected.insert(i);
      }
    }
    EXPECT_EQ(std::set<int32_t>(got.begin(), got.end()), expected) << "round " << round;
  }
}

}  // namespace
}  // namespace senn::sim
