#include "src/sim/params.h"

#include <gtest/gtest.h>

namespace senn::sim {
namespace {

TEST(ParamsTest, Table3ValuesMatchPaper) {
  ParameterSet la = Table3(Region::kLosAngeles);
  EXPECT_EQ(la.poi_number, 16);
  EXPECT_EQ(la.mh_number, 463);
  EXPECT_EQ(la.cache_size, 10);
  EXPECT_DOUBLE_EQ(la.move_percentage, 0.8);
  EXPECT_DOUBLE_EQ(la.velocity_mph, 30.0);
  EXPECT_DOUBLE_EQ(la.queries_per_minute, 23.0);
  EXPECT_DOUBLE_EQ(la.tx_range_m, 200.0);
  EXPECT_EQ(la.k_nn, 3);
  EXPECT_DOUBLE_EQ(la.execution_hours, 1.0);

  ParameterSet syn = Table3(Region::kSyntheticSuburbia);
  EXPECT_EQ(syn.poi_number, 11);
  EXPECT_EQ(syn.mh_number, 257);
  EXPECT_DOUBLE_EQ(syn.queries_per_minute, 13.0);

  ParameterSet rv = Table3(Region::kRiverside);
  EXPECT_EQ(rv.poi_number, 5);
  EXPECT_EQ(rv.mh_number, 50);
  EXPECT_DOUBLE_EQ(rv.queries_per_minute, 2.5);
}

TEST(ParamsTest, Table4ValuesMatchPaper) {
  ParameterSet la = Table4(Region::kLosAngeles);
  EXPECT_EQ(la.poi_number, 4050);
  EXPECT_EQ(la.mh_number, 121500);
  EXPECT_EQ(la.cache_size, 20);
  EXPECT_DOUBLE_EQ(la.queries_per_minute, 8100.0);
  EXPECT_EQ(la.k_nn, 5);
  EXPECT_DOUBLE_EQ(la.execution_hours, 5.0);
  EXPECT_DOUBLE_EQ(la.area_side_miles, 30.0);

  ParameterSet syn = Table4(Region::kSyntheticSuburbia);
  EXPECT_EQ(syn.poi_number, 3105);
  EXPECT_EQ(syn.mh_number, 66600);
  EXPECT_DOUBLE_EQ(syn.queries_per_minute, 4440.0);

  ParameterSet rv = Table4(Region::kRiverside);
  EXPECT_EQ(rv.poi_number, 2160);
  EXPECT_EQ(rv.mh_number, 11700);
  EXPECT_DOUBLE_EQ(rv.queries_per_minute, 780.0);
}

TEST(ParamsTest, UnitConversions) {
  ParameterSet la = Table3(Region::kLosAngeles);
  EXPECT_NEAR(la.AreaSideMeters(), 3218.688, 1e-6);
  EXPECT_NEAR(la.VelocityMps(), 13.4112, 1e-6);
}

TEST(ParamsTest, DensityOrderingHolds) {
  // LA is denser than Suburbia, which is denser than Riverside, in both MH
  // and POI terms — the property the experiments hinge on.
  for (auto table : {Table3, Table4}) {
    ParameterSet la = table(Region::kLosAngeles);
    ParameterSet syn = table(Region::kSyntheticSuburbia);
    ParameterSet rv = table(Region::kRiverside);
    EXPECT_GT(la.mh_number, syn.mh_number);
    EXPECT_GT(syn.mh_number, rv.mh_number);
    EXPECT_GT(la.poi_number, syn.poi_number);
    EXPECT_GT(syn.poi_number, rv.poi_number);
    EXPECT_GT(la.queries_per_minute, syn.queries_per_minute);
    EXPECT_GT(syn.queries_per_minute, rv.queries_per_minute);
  }
}

TEST(ParamsTest, Names) {
  EXPECT_STREQ(RegionName(Region::kLosAngeles), "Los Angeles County");
  EXPECT_STREQ(MovementModeName(MovementMode::kFreeMovement), "free movement");
  EXPECT_NE(Table3(Region::kRiverside).name.find("Riverside"), std::string::npos);
}

}  // namespace
}  // namespace senn::sim
