// End-to-end tests of the lossy/latent channel inside the simulator: the
// degraded channel must shift load to the server monotonically, populate the
// latency/retry metrics, and stay bit-identical across sweep thread counts
// (the "net" RNG stream is keyed per executed query, not per thread).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/report.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep.h"

namespace senn::sim {
namespace {

SimulationConfig LossyConfig(double loss, uint64_t seed) {
  SimulationConfig cfg;
  cfg.params = Table3(Region::kLosAngeles);
  cfg.mode = MovementMode::kFreeMovement;
  cfg.duration_s = 240.0;
  cfg.seed = seed;
  cfg.channel.loss = loss;
  cfg.channel.latency_mean_s = 0.02;
  cfg.channel.reply_timeout_s = 0.1;
  cfg.channel.max_retries = 2;
  return cfg;
}

TEST(ChannelSimTest, LossShiftsLoadToServerMonotonically) {
  // The acceptance sweep: loss 0 -> 0.5 must never lower the server share,
  // and should strictly raise it by the far end.
  double prev_pct = -1.0;
  uint64_t prev_fallbacks = 0;
  for (double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    SimulationResult r = Simulator(LossyConfig(loss, 42)).Run();
    ASSERT_GT(r.measured_queries, 0u);
    EXPECT_GE(r.pct_server, prev_pct - 1e-9) << "loss " << loss;
    EXPECT_GE(r.loss_induced_server_fallbacks, prev_fallbacks) << "loss " << loss;
    prev_pct = r.pct_server;
    prev_fallbacks = r.loss_induced_server_fallbacks;
    if (loss == 0.0) {
      // Lossless: nothing is dropped, though slow replies may still miss
      // the collection deadline (latency-induced, not loss-induced).
      EXPECT_EQ(r.transmissions_lost, 0u);
    }
  }
  SimulationResult ideal = Simulator(LossyConfig(0.0, 42)).Run();
  SimulationResult harsh = Simulator(LossyConfig(0.5, 42)).Run();
  EXPECT_GT(harsh.pct_server, ideal.pct_server);
  EXPECT_GT(harsh.loss_induced_server_fallbacks, 0u);
  EXPECT_GT(harsh.replies_missed, 0u);
  EXPECT_GT(harsh.transmissions_lost, 0u);
}

TEST(ChannelSimTest, LatencyPopulatesQuantilesAndOrdering) {
  SimulationResult r = Simulator(LossyConfig(0.25, 42)).Run();
  ASSERT_GT(r.measured_queries, 0u);
  EXPECT_GT(r.query_latency_s.mean(), 0.0);
  EXPECT_GT(r.latency_p50.value(), 0.0);
  // Quantiles are tracked by independent P^2 estimators, so ordering holds
  // only up to estimation error — allow a few percent of slack.
  EXPECT_LE(r.latency_p50.value(), r.latency_p95.value() * 1.05);
  EXPECT_LE(r.latency_p95.value(), r.latency_p99.value() * 1.05);
  EXPECT_GE(r.latency_p50.value(), r.query_latency_s.min() - 1e-12);
  EXPECT_LE(r.latency_p99.value(), r.query_latency_s.max() + 1e-12);
  EXPECT_EQ(r.latency_p50.count(), r.measured_queries);
  EXPECT_GT(r.retries_per_query.mean(), 0.0);
}

TEST(ChannelSimTest, LossyRunsAreReproducible) {
  SimulationConfig cfg = LossyConfig(0.3, 9);
  EXPECT_EQ(SimulationResultJson(Simulator(cfg).Run()),
            SimulationResultJson(Simulator(cfg).Run()));
}

TEST(ChannelSimTest, LossySweepIsThreadCountInvariant) {
  std::vector<SimulationConfig> configs;
  for (uint64_t seed : {1, 2, 3, 4}) {
    configs.push_back(LossyConfig(0.25, seed));
  }
  std::vector<SimulationResult> serial = RunConfigs(configs, SweepOptions{1});
  std::vector<SimulationResult> parallel = RunConfigs(configs, SweepOptions{4});
  ASSERT_EQ(serial.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(SimulationResultJson(serial[i]), SimulationResultJson(parallel[i]))
        << "config " << i;
  }
}

TEST(ChannelSimTest, MergedShardsAggregateChannelMetrics) {
  SimulationConfig base = LossyConfig(0.3, 21);
  std::vector<SimulationConfig> shards{ShardConfig(base, 0), ShardConfig(base, 1),
                                       ShardConfig(base, 2)};
  std::vector<SimulationResult> parts = RunConfigs(shards, SweepOptions{3});
  SimulationResult merged = MergeResults(parts);
  uint64_t lost = 0, missed = 0, fallbacks = 0, latencies = 0;
  for (const SimulationResult& p : parts) {
    lost += p.transmissions_lost;
    missed += p.replies_missed;
    fallbacks += p.loss_induced_server_fallbacks;
    latencies += p.latency_p95.count();
  }
  EXPECT_EQ(merged.transmissions_lost, lost);
  EXPECT_EQ(merged.replies_missed, missed);
  EXPECT_EQ(merged.loss_induced_server_fallbacks, fallbacks);
  EXPECT_EQ(merged.latency_p95.count(), latencies);
  EXPECT_EQ(merged.query_latency_s.count(), merged.measured_queries);
  // Merging the shards twice must be deterministic.
  SimulationResult merged2 = MergeResults(parts);
  EXPECT_EQ(SimulationResultJson(merged), SimulationResultJson(merged2));
}

TEST(ChannelSimTest, JsonRendersChannelMetrics) {
  std::string json = SimulationResultJson(Simulator(LossyConfig(0.25, 5)).Run());
  for (const char* key :
       {"query_latency_s", "latency_p50_s", "latency_p95_s", "latency_p99_s",
        "retries_per_query", "transmissions_lost", "replies_missed",
        "loss_induced_server_fallbacks"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace senn::sim
