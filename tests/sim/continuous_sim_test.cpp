// Integration tests of the simulator's continuous-query mode: per-source
// step accounting, determinism, safe-region effects, and shard merging of
// the continuous_* metrics.
#include <gtest/gtest.h>

#include "src/sim/report.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep.h"

namespace senn::sim {
namespace {

SimulationConfig ContinuousConfig(core::SafeRegionMode mode, uint64_t seed) {
  SimulationConfig cfg;
  cfg.params = Table3(Region::kLosAngeles);
  cfg.mode = MovementMode::kFreeMovement;
  cfg.seed = seed;
  cfg.duration_s = 240.0;
  cfg.warmup_fraction = 0.25;
  cfg.time_step_s = 1.0;
  cfg.continuous = true;
  cfg.safe_region = mode;
  return cfg;
}

TEST(ContinuousSimTest, StepsPartitionBySource) {
  SimulationResult r = Simulator(ContinuousConfig(core::SafeRegionMode::kInsq, 1)).Run();
  EXPECT_GT(r.measured_queries, 10u);
  // Every measured query is one continuous step, partitioned by source.
  EXPECT_EQ(r.continuous_steps, r.measured_queries);
  EXPECT_EQ(r.continuous_steps,
            r.continuous_safe_region_steps + r.continuous_peer_region_steps +
                r.continuous_own_cache_steps + r.continuous_peer_steps +
                r.continuous_uncertain_steps + r.continuous_server_steps);
  // The paper's by_* classification only covers the communicating steps.
  EXPECT_EQ(r.by_single_peer + r.by_multi_peer + r.by_server,
            r.continuous_peer_steps + r.continuous_uncertain_steps +
                r.continuous_server_steps);
  // Exact mode: nothing may surface as uncertain.
  EXPECT_EQ(r.continuous_uncertain_steps, 0u);
}

TEST(ContinuousSimTest, DeterministicForSameSeed) {
  SimulationResult a = Simulator(ContinuousConfig(core::SafeRegionMode::kInsq, 7)).Run();
  SimulationResult b = Simulator(ContinuousConfig(core::SafeRegionMode::kInsq, 7)).Run();
  EXPECT_EQ(SimulationResultJson(a), SimulationResultJson(b));
}

TEST(ContinuousSimTest, InsqModeBuildsAndUsesRegions) {
  SimulationResult r = Simulator(ContinuousConfig(core::SafeRegionMode::kInsq, 3)).Run();
  EXPECT_GT(r.continuous_safe_region_steps, 0u);
  EXPECT_GT(r.continuous_region_area_m2.count(), 0u);
  EXPECT_GT(r.continuous_region_area_m2.mean(), 0.0);
}

TEST(ContinuousSimTest, OffModeHasNoRegionActivity) {
  SimulationResult r = Simulator(ContinuousConfig(core::SafeRegionMode::kOff, 3)).Run();
  EXPECT_GT(r.continuous_steps, 0u);
  EXPECT_EQ(r.continuous_safe_region_steps, 0u);
  EXPECT_EQ(r.continuous_peer_region_steps, 0u);
  EXPECT_EQ(r.continuous_region_pages, 0u);
  EXPECT_EQ(r.continuous_region_area_m2.count(), 0u);
}

TEST(ContinuousSimTest, SafeRegionsDoNotIncreaseServerSteps) {
  SimulationResult off = Simulator(ContinuousConfig(core::SafeRegionMode::kOff, 5)).Run();
  SimulationResult insq =
      Simulator(ContinuousConfig(core::SafeRegionMode::kInsq, 5)).Run();
  EXPECT_LE(insq.continuous_server_steps, off.continuous_server_steps);
}

TEST(ContinuousSimTest, MergeSumsContinuousMetrics) {
  SimulationResult a = Simulator(ContinuousConfig(core::SafeRegionMode::kInsq, 11)).Run();
  SimulationResult b = Simulator(ContinuousConfig(core::SafeRegionMode::kInsq, 12)).Run();
  SimulationResult merged = MergeResults({a, b});
  EXPECT_EQ(merged.continuous_steps, a.continuous_steps + b.continuous_steps);
  EXPECT_EQ(merged.continuous_safe_region_steps,
            a.continuous_safe_region_steps + b.continuous_safe_region_steps);
  EXPECT_EQ(merged.continuous_peer_region_steps,
            a.continuous_peer_region_steps + b.continuous_peer_region_steps);
  EXPECT_EQ(merged.continuous_own_cache_steps,
            a.continuous_own_cache_steps + b.continuous_own_cache_steps);
  EXPECT_EQ(merged.continuous_peer_steps, a.continuous_peer_steps + b.continuous_peer_steps);
  EXPECT_EQ(merged.continuous_server_steps,
            a.continuous_server_steps + b.continuous_server_steps);
  EXPECT_EQ(merged.continuous_region_pages,
            a.continuous_region_pages + b.continuous_region_pages);
  EXPECT_EQ(merged.continuous_region_area_m2.count(),
            a.continuous_region_area_m2.count() + b.continuous_region_area_m2.count());
}

}  // namespace
}  // namespace senn::sim
