// Trace-golden tests: the query-phase tracing layer must be (a) invisible —
// attaching a span sink never changes any simulation metric — and
// (b) byte-reproducible — a fixed seed produces the identical Chrome trace
// document run after run, even while unrelated simulations execute
// concurrently in the process, and sampling selects exactly every N-th
// query.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/chrome_trace.h"
#include "src/obs/trace.h"
#include "src/sim/report.h"
#include "src/sim/simulator.h"

namespace senn::sim {
namespace {

SimulationConfig TraceConfig(uint64_t seed = 42) {
  SimulationConfig cfg;
  cfg.params = Table3(Region::kLosAngeles);
  cfg.mode = MovementMode::kFreeMovement;
  cfg.duration_s = 120.0;
  cfg.seed = seed;
  return cfg;
}

std::string RunTraced(const SimulationConfig& cfg, uint64_t sample_every,
                      std::string* result_json = nullptr) {
  obs::ChromeTraceWriter writer;
  Simulator sim(cfg);
  sim.AttachSpanSink(&writer, sample_every);
  SimulationResult result = sim.Run();
  if (result_json != nullptr) *result_json = SimulationResultJson(result);
  return writer.ToJson();
}

TEST(TraceGoldenTest, AttachingASinkChangesNoMetric) {
  SimulationConfig cfg = TraceConfig();
  std::string plain = SimulationResultJson(Simulator(cfg).Run());
  std::string traced_result;
  std::string trace = RunTraced(cfg, 1, &traced_result);
  EXPECT_EQ(plain, traced_result) << "tracing must be metrically invisible";
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceGoldenTest, FixedSeedTraceIsByteIdenticalAcrossRuns) {
  SimulationConfig cfg = TraceConfig();
  std::string first = RunTraced(cfg, 1);
  std::string second = RunTraced(cfg, 1);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(TraceGoldenTest, TraceIsByteIdenticalUnderConcurrentLoad) {
  // The traced simulation's spans must not shift while other simulations
  // hammer the process from worker threads (the sweep-engine situation).
  SimulationConfig cfg = TraceConfig();
  std::string baseline = RunTraced(cfg, 1);

  std::vector<std::thread> noise;
  for (int i = 0; i < 3; ++i) {
    noise.emplace_back([i] {
      SimulationConfig other = TraceConfig(100 + static_cast<uint64_t>(i));
      other.duration_s = 90.0;
      Simulator(other).Run();
    });
  }
  std::string contended = RunTraced(cfg, 1);
  for (std::thread& t : noise) t.join();
  EXPECT_EQ(baseline, contended);
}

TEST(TraceGoldenTest, SamplingTracesEveryNthQuery) {
  SimulationConfig cfg = TraceConfig();
  obs::ChromeTraceWriter all, sampled;
  {
    Simulator sim(cfg);
    sim.AttachSpanSink(&all, 1);
    sim.Run();
  }
  {
    Simulator sim(cfg);
    sim.AttachSpanSink(&sampled, 4);
    sim.Run();
  }
  ASSERT_GT(all.span_count(), 0u);
  ASSERT_GT(sampled.span_count(), 0u);
  EXPECT_LT(sampled.span_count(), all.span_count());
  std::set<uint64_t> sampled_qids;
  for (const obs::SpanEvent& e : sampled.spans()) {
    EXPECT_EQ(e.query_id % 4, 0u) << "sampled span from an off-stride query";
    sampled_qids.insert(e.query_id);
  }
  // Sampled queries carry exactly the spans the full trace recorded for them.
  size_t expected = 0;
  for (const obs::SpanEvent& e : all.spans()) {
    if (sampled_qids.count(e.query_id) > 0) ++expected;
  }
  EXPECT_EQ(sampled.span_count(), expected);
}

TEST(TraceGoldenTest, SpanStreamCoversThePeerAndServerPhases) {
  SimulationConfig cfg = TraceConfig();
  obs::ChromeTraceWriter writer;
  Simulator sim(cfg);
  sim.AttachSpanSink(&writer, 1);
  SimulationResult result = sim.Run();
  std::set<obs::Phase> seen;
  uint64_t harvest_spans = 0;
  for (const obs::SpanEvent& e : writer.spans()) {
    seen.insert(e.phase);
    if (e.phase == obs::Phase::kPeerHarvest) ++harvest_spans;
  }
  EXPECT_TRUE(seen.count(obs::Phase::kPeerHarvest));
  EXPECT_TRUE(seen.count(obs::Phase::kVerifySingle));
  EXPECT_TRUE(seen.count(obs::Phase::kHeapClassify));
  EXPECT_TRUE(seen.count(obs::Phase::kServerEinn));
  EXPECT_TRUE(seen.count(obs::Phase::kNetExchange));
  // One harvest span per measured query with peers in range; at minimum the
  // server-answered ones all ran the full pipeline.
  EXPECT_GE(harvest_spans, result.by_server);
}

}  // namespace
}  // namespace senn::sim
