// Golden-JSON regression tests for the ideal channel.
//
// The channel model (src/net/) must be a strict extension: with loss = 0 and
// latency = 0 — the defaults — a simulation reproduces the metrics of the
// pre-messaging engine byte for byte. The goldens below were captured from
// that engine (the fields up to and including "simulated_seconds"); new
// metrics are appended before "simulated_seconds", so each golden must remain
// a field-wise prefix of today's JSON, verbatim. The same convention covers
// the storage engine (src/storage/): logical page counts are charged at the
// historical sites independent of the buffer pool, so paged runs — bounded
// or unbounded — must also reproduce the prefix.
//
// Regenerating (only after an INTENDED metric change — run tools/regen_goldens.sh,
// which builds senn_sim and replays the two configs):
//   senn_sim --mode free --duration 300 --seed 42 --json
//   senn_sim --region riverside --mode free --duration 240 --seed 7 --json
// Paste each "json " line's historical prefix here.
#include <gtest/gtest.h>

#include <string>

#include "src/sim/report.h"
#include "src/sim/simulator.h"

namespace senn::sim {
namespace {

// senn_sim --mode free --duration 300 --seed 42 --json   (pre-channel build)
constexpr const char* kGoldenLosAngeles =
    "{\"measured_queries\":87,\"by_single_peer\":60,\"by_multi_peer\":11,"
    "\"by_server\":16,\"pct_single_peer\":68.965517241379317,"
    "\"pct_multi_peer\":12.64367816091954,\"pct_server\":18.390804597701148,"
    "\"einn_pages\":{\"n\":16,\"mean\":1,\"var\":0,\"sum\":16,\"min\":1,\"max\":1},"
    "\"inn_pages\":{\"n\":16,\"mean\":1,\"var\":0,\"sum\":16,\"min\":1,\"max\":1},"
    "\"peers_in_range\":{\"n\":87,\"mean\":8.0919540229885047,"
    "\"var\":12.619353114140607,\"sum\":704,\"min\":1,\"max\":18},"
    "\"p2p_messages_per_query\":{\"n\":87,\"mean\":8.0919540229885047,"
    "\"var\":12.619353114140607,\"sum\":704,\"min\":1,\"max\":18},"
    "\"p2p_bytes_per_query\":{\"n\":87,\"mean\":1364,\"var\":457143.44186046493,"
    "\"sum\":118668,\"min\":32,\"max\":3456},\"simulated_seconds\":300}";

// senn_sim --region riverside --mode free --duration 240 --seed 7 --json
constexpr const char* kGoldenRiverside =
    "{\"measured_queries\":6,\"by_single_peer\":3,\"by_multi_peer\":0,"
    "\"by_server\":3,\"pct_single_peer\":50,\"pct_multi_peer\":0,"
    "\"pct_server\":50,"
    "\"einn_pages\":{\"n\":3,\"mean\":1,\"var\":0,\"sum\":3,\"min\":1,\"max\":1},"
    "\"inn_pages\":{\"n\":3,\"mean\":1,\"var\":0,\"sum\":3,\"min\":1,\"max\":1},"
    "\"peers_in_range\":{\"n\":6,\"mean\":1.6666666666666667,"
    "\"var\":0.66666666666666663,\"sum\":10,\"min\":1,\"max\":3},"
    "\"p2p_messages_per_query\":{\"n\":6,\"mean\":1.6666666666666667,"
    "\"var\":0.66666666666666663,\"sum\":10,\"min\":1,\"max\":3},"
    "\"p2p_bytes_per_query\":{\"n\":6,\"mean\":116.66666666666666,"
    "\"var\":10274.666666666666,\"sum\":700,\"min\":32,\"max\":276},"
    "\"simulated_seconds\":240}";

SimulationConfig GoldenConfig(Region region, double duration_s, uint64_t seed) {
  // Mirrors what senn_sim builds from the flags above: Table 3 parameters,
  // free movement, everything else at SimulationConfig defaults.
  SimulationConfig cfg;
  cfg.params = Table3(region);
  cfg.mode = MovementMode::kFreeMovement;
  cfg.duration_s = duration_s;
  cfg.seed = seed;
  return cfg;
}

void ExpectGoldenPrefix(const std::string& golden, const std::string& json) {
  // Historical fields must match byte for byte; the channel metrics are
  // inserted just before "simulated_seconds", which must still close the
  // object with the same value.
  const std::string tail_key = ",\"simulated_seconds\":";
  size_t split = golden.rfind(tail_key);
  ASSERT_NE(split, std::string::npos);
  std::string head = golden.substr(0, split);
  std::string tail = golden.substr(split);
  EXPECT_EQ(json.compare(0, head.size(), head), 0)
      << "historical field prefix diverged:\n golden: " << head
      << "\n    got: " << json.substr(0, head.size());
  ASSERT_GE(json.size(), tail.size());
  EXPECT_EQ(json.compare(json.size() - tail.size(), tail.size(), tail), 0)
      << "simulated_seconds tail diverged";
}

TEST(GoldenJsonTest, IdealChannelReproducesLosAngelesGolden) {
  SimulationConfig cfg = GoldenConfig(Region::kLosAngeles, 300.0, 42);
  ASSERT_TRUE(cfg.channel.Ideal());
  ExpectGoldenPrefix(kGoldenLosAngeles, SimulationResultJson(Simulator(cfg).Run()));
}

TEST(GoldenJsonTest, IdealChannelReproducesRiversideGolden) {
  SimulationConfig cfg = GoldenConfig(Region::kRiverside, 240.0, 7);
  ASSERT_TRUE(cfg.channel.Ideal());
  ExpectGoldenPrefix(kGoldenRiverside, SimulationResultJson(Simulator(cfg).Run()));
}

TEST(GoldenJsonTest, IdealChannelZeroesTheChannelMetrics) {
  SimulationConfig cfg = GoldenConfig(Region::kLosAngeles, 300.0, 42);
  SimulationResult r = Simulator(cfg).Run();
  EXPECT_DOUBLE_EQ(r.query_latency_s.max(), 0.0);
  EXPECT_DOUBLE_EQ(r.latency_p50.value(), 0.0);
  EXPECT_DOUBLE_EQ(r.latency_p95.value(), 0.0);
  EXPECT_DOUBLE_EQ(r.latency_p99.value(), 0.0);
  EXPECT_DOUBLE_EQ(r.retries_per_query.sum(), 0.0);
  EXPECT_EQ(r.transmissions_lost, 0u);
  EXPECT_EQ(r.replies_missed, 0u);
  EXPECT_EQ(r.loss_induced_server_fallbacks, 0u);
}

TEST(GoldenJsonTest, TimeoutAndRetriesAreInertOnIdealChannel) {
  // On a lossless zero-latency channel the deadline and retry knobs must not
  // influence anything: no draws, no waiting, identical JSON.
  SimulationConfig base = GoldenConfig(Region::kRiverside, 240.0, 7);
  SimulationConfig tweaked = base;
  tweaked.channel.reply_timeout_s = 5.0;
  tweaked.channel.max_retries = 9;
  ASSERT_TRUE(tweaked.channel.Ideal());
  EXPECT_EQ(SimulationResultJson(Simulator(base).Run()),
            SimulationResultJson(Simulator(tweaked).Run()));
}

TEST(GoldenJsonTest, UnboundedBufferPoolReproducesGoldenPrefix) {
  // senn_sim ... --buffer-pages unbounded: the storage engine observes the
  // traversals without changing them, so the historical fields stay byte
  // identical — for both replacement policies (with no evictions the policy
  // cannot matter).
  for (storage::ReplacementPolicy policy :
       {storage::ReplacementPolicy::kLru, storage::ReplacementPolicy::kClock}) {
    SimulationConfig cfg = GoldenConfig(Region::kLosAngeles, 300.0, 42);
    cfg.paged_storage = true;
    cfg.buffer.capacity_pages = 0;
    cfg.buffer.policy = policy;
    SimulationResult r = Simulator(cfg).Run();
    ExpectGoldenPrefix(kGoldenLosAngeles, SimulationResultJson(r));
    // Every logical EINN page flows through the pool: the tallies agree.
    EXPECT_EQ(r.buffer.total(), static_cast<uint64_t>(r.einn_pages.sum()));
    EXPECT_EQ(static_cast<double>(r.buffer.misses()), r.einn_miss_pages.sum());
  }
}

TEST(GoldenJsonTest, BoundedBufferPoolPreservesLogicalMetrics) {
  // A tiny pool thrashes physically but must not move any historical field.
  SimulationConfig cfg = GoldenConfig(Region::kRiverside, 240.0, 7);
  cfg.paged_storage = true;
  cfg.buffer.capacity_pages = 2;
  SimulationResult r = Simulator(cfg).Run();
  std::string json = SimulationResultJson(r);
  ExpectGoldenPrefix(kGoldenRiverside, json);
  EXPECT_GE(r.buffer.rate(), 0.0);
  EXPECT_LE(r.buffer.rate(), 1.0);
  EXPECT_EQ(r.buffer.total(), r.buffer.hits() + r.buffer.misses());
  // The new fields are present in the report.
  EXPECT_NE(json.find("\"einn_miss_pages\":"), std::string::npos);
  EXPECT_NE(json.find("\"buffer_logical_accesses\":"), std::string::npos);
  EXPECT_NE(json.find("\"buffer_hits\":"), std::string::npos);
  EXPECT_NE(json.find("\"buffer_misses\":"), std::string::npos);
  EXPECT_NE(json.find("\"buffer_hit_rate\":"), std::string::npos);
}

TEST(GoldenJsonTest, DefaultRunEmitsZeroBufferMetrics) {
  SimulationConfig cfg = GoldenConfig(Region::kRiverside, 240.0, 7);
  ASSERT_FALSE(cfg.paged_storage);
  SimulationResult r = Simulator(cfg).Run();
  EXPECT_EQ(r.buffer.total(), 0u);
  EXPECT_DOUBLE_EQ(r.buffer.rate(), 0.0);
  EXPECT_EQ(r.einn_miss_pages.count(), 0u);
  std::string json = SimulationResultJson(r);
  EXPECT_NE(json.find("\"buffer_logical_accesses\":0,"), std::string::npos);
  EXPECT_NE(json.find("\"buffer_hit_rate\":0,"), std::string::npos);
}

TEST(GoldenJsonTest, PagedRunsAreIdenticalUpToPhysicalMisses) {
  // Pool size is invisible to everything except the three miss-derived
  // metrics: strip those and the JSON lines must be equal.
  auto run = [](size_t pages) {
    SimulationConfig cfg = GoldenConfig(Region::kLosAngeles, 300.0, 42);
    cfg.paged_storage = true;
    cfg.buffer.capacity_pages = pages;
    return SimulationResultJson(Simulator(cfg).Run());
  };
  auto strip = [](std::string json) {
    size_t begin = json.find("\"einn_miss_pages\":");
    size_t end = json.find("\"simulated_seconds\":");
    EXPECT_NE(begin, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    return json.substr(0, begin) + json.substr(end);
  };
  EXPECT_EQ(strip(run(4)), strip(run(0)));
}

}  // namespace
}  // namespace senn::sim
