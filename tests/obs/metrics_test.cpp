#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace senn::obs {
namespace {

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry r;
  EXPECT_EQ(r.counter("absent"), 0u);
  r.Inc("queries");
  r.Inc("queries", 4);
  EXPECT_EQ(r.counter("queries"), 5u);
}

TEST(MetricsTest, HistogramsTrackMoments) {
  MetricsRegistry r;
  EXPECT_EQ(r.histogram("absent"), nullptr);
  r.Observe("pages", 10.0);
  r.Observe("pages", 30.0);
  const RunningStats* h = r.histogram("pages");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->mean(), 20.0);
  EXPECT_DOUBLE_EQ(h->min(), 10.0);
  EXPECT_DOUBLE_EQ(h->max(), 30.0);
}

TEST(MetricsTest, MergeIsOrderIndependent) {
  // Shard-merge contract: folding per-shard registries in any order yields
  // the same registry — same bytes out of ToJson.
  MetricsRegistry a, b, c;
  a.Inc("q", 2);
  a.Observe("lat", 1.0);
  b.Inc("q", 3);
  b.Inc("server", 1);
  b.Observe("lat", 5.0);
  c.Observe("lat", 3.0);
  c.Observe("pages", 7.0);

  MetricsRegistry abc;
  abc.Merge(a);
  abc.Merge(b);
  abc.Merge(c);
  MetricsRegistry cba;
  cba.Merge(c);
  cba.Merge(b);
  cba.Merge(a);

  EXPECT_EQ(abc.counter("q"), 5u);
  EXPECT_EQ(abc.counter("server"), 1u);
  EXPECT_EQ(abc.histogram("lat")->count(), 3u);
  EXPECT_DOUBLE_EQ(abc.histogram("lat")->mean(), 3.0);
  EXPECT_EQ(abc.ToJson(), cba.ToJson());
}

TEST(MetricsTest, ToJsonIsLexicographicAndStable) {
  MetricsRegistry r;
  r.Inc("zeta");
  r.Inc("alpha", 2);
  r.Observe("mid", 1.5);
  std::string json = r.ToJson();
  // std::map ordering: "alpha" renders before "zeta" regardless of insert
  // order.
  size_t alpha = json.find("\"alpha\"");
  size_t zeta = json.find("\"zeta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, zeta);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(json, r.ToJson());
}

TEST(MetricsTest, EmptyRegistrySerializes) {
  MetricsRegistry r;
  EXPECT_EQ(r.ToJson(), "{\"counters\":{},\"histograms\":{}}");
}

}  // namespace
}  // namespace senn::obs
