#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/chrome_trace.h"

namespace senn::obs {
namespace {

/// Collects raw span events for inspection.
struct RecordingSink : TraceSink {
  std::vector<SpanEvent> events;
  void OnSpan(const SpanEvent& span) override { events.push_back(span); }
};

TEST(TraceTest, PhaseNamesAreStableAndDistinct) {
  const char* expected[kPhaseCount] = {"peer_harvest", "verify_single", "verify_multi",
                                       "heap_classify", "server_einn", "net_exchange",
                                       "buffer_fetch", "server_batch_einn",
                                       "ch_build", "ch_query"};
  for (int i = 0; i < kPhaseCount; ++i) {
    EXPECT_STREQ(PhaseName(static_cast<Phase>(i)), expected[i]);
  }
}

TEST(TraceTest, NullTracerSpanIsInertNoOp) {
  ScopedSpan span(nullptr, Phase::kVerifySingle);
  EXPECT_FALSE(span.active());
  span.AddArg("peers", 3);  // must not crash or emit anything
}

TEST(TraceTest, ScopedSpanEmitsOnDestruction) {
  RecordingSink sink;
  QueryTracer tracer(&sink, /*query_id=*/7, /*sim_time_us=*/1'000'000);
  {
    ScopedSpan span(&tracer, Phase::kServerEinn);
    EXPECT_TRUE(span.active());
    span.AddArg("pages", 42);
    EXPECT_TRUE(sink.events.empty());  // nothing until the span closes
  }
  ASSERT_EQ(sink.events.size(), 1u);
  const SpanEvent& e = sink.events[0];
  EXPECT_EQ(e.phase, Phase::kServerEinn);
  EXPECT_EQ(e.query_id, 7u);
  EXPECT_EQ(e.ts_us, 1'000'000u);  // first tick = sim time base
  EXPECT_GE(e.dur_us, 1u);
  ASSERT_EQ(e.arg_count, 1);
  EXPECT_STREQ(e.args[0].name, "pages");
  EXPECT_EQ(e.args[0].value, 42u);
}

TEST(TraceTest, TicksAreMonotoneAndNestedSpansOrder) {
  RecordingSink sink;
  QueryTracer tracer(&sink, 1, 500);
  {
    ScopedSpan outer(&tracer, Phase::kPeerHarvest);
    { ScopedSpan inner(&tracer, Phase::kNetExchange); }
    { ScopedSpan inner2(&tracer, Phase::kNetExchange); }
  }
  ASSERT_EQ(sink.events.size(), 3u);
  // Inner spans close (and emit) before the outer one.
  const SpanEvent& inner = sink.events[0];
  const SpanEvent& inner2 = sink.events[1];
  const SpanEvent& outer = sink.events[2];
  EXPECT_EQ(outer.phase, Phase::kPeerHarvest);
  EXPECT_EQ(outer.ts_us, 500u);
  EXPECT_GT(inner.ts_us, outer.ts_us);
  EXPECT_GT(inner2.ts_us, inner.ts_us + inner.dur_us - 1);
  // The outer span encloses both inner spans tick-wise.
  EXPECT_GE(outer.ts_us + outer.dur_us, inner2.ts_us + inner2.dur_us);
}

TEST(TraceTest, ArgsPastTheCapAreDropped) {
  RecordingSink sink;
  QueryTracer tracer(&sink, 1, 0);
  {
    ScopedSpan span(&tracer, Phase::kHeapClassify);
    for (int i = 0; i < kMaxSpanArgs + 3; ++i) span.AddArg("x", static_cast<uint64_t>(i));
  }
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].arg_count, kMaxSpanArgs);
  for (int i = 0; i < kMaxSpanArgs; ++i) {
    EXPECT_EQ(sink.events[0].args[i].value, static_cast<uint64_t>(i));
  }
}

TEST(TraceTest, TimestampsAreIndependentOfOtherQueries) {
  // Two tracers over the same sink: per-query tick counters never interact,
  // so interleaving queries cannot perturb either query's timestamps.
  RecordingSink solo_sink, mixed_sink;
  {
    QueryTracer solo(&solo_sink, 1, 100);
    ScopedSpan a(&solo, Phase::kVerifySingle);
  }
  {
    QueryTracer one(&mixed_sink, 1, 100);
    QueryTracer two(&mixed_sink, 2, 100);
    ScopedSpan other(&two, Phase::kVerifyMulti);
    ScopedSpan a(&one, Phase::kVerifySingle);
  }
  ASSERT_EQ(solo_sink.events.size(), 1u);
  const SpanEvent* mixed = nullptr;
  for (const SpanEvent& e : mixed_sink.events) {
    if (e.query_id == 1) mixed = &e;
  }
  ASSERT_NE(mixed, nullptr);
  EXPECT_EQ(mixed->ts_us, solo_sink.events[0].ts_us);
  EXPECT_EQ(mixed->dur_us, solo_sink.events[0].dur_us);
}

TEST(TraceTest, TeeSinkForwardsInAttachmentOrder) {
  RecordingSink a, b;
  TeeSink tee;
  tee.Add(&a);
  tee.Add(&b);
  QueryTracer tracer(&tee, 9, 0);
  { ScopedSpan span(&tracer, Phase::kBufferFetch); }
  ASSERT_EQ(a.events.size(), 1u);
  ASSERT_EQ(b.events.size(), 1u);
  EXPECT_EQ(a.events[0].query_id, 9u);
  EXPECT_EQ(b.events[0].phase, Phase::kBufferFetch);
}

TEST(TraceTest, ChromeTraceJsonShape) {
  ChromeTraceWriter writer;
  QueryTracer tracer(&writer, 3, 2'000'000);
  {
    ScopedSpan span(&tracer, Phase::kVerifySingle);
    span.AddArg("peers", 2);
  }
  ASSERT_EQ(writer.span_count(), 1u);
  std::string json = writer.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"verify_single\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2000000"), std::string::npos);
  EXPECT_NE(json.find("\"peers\":2"), std::string::npos);
  // Determinism: rendering twice gives the same bytes.
  EXPECT_EQ(json, writer.ToJson());
}

TEST(TraceTest, PhaseMetricsSinkAggregates) {
  MetricsRegistry registry;
  PhaseMetricsSink sink(&registry);
  QueryTracer tracer(&sink, 1, 0);
  {
    ScopedSpan span(&tracer, Phase::kServerEinn);
    span.AddArg("einn_pages", 12);
  }
  {
    ScopedSpan span(&tracer, Phase::kServerEinn);
    span.AddArg("einn_pages", 20);
  }
  EXPECT_EQ(registry.counter("span/server_einn"), 2u);
  const RunningStats* pages = registry.histogram("server_einn/einn_pages");
  ASSERT_NE(pages, nullptr);
  EXPECT_EQ(pages->count(), 2u);
  EXPECT_DOUBLE_EQ(pages->mean(), 16.0);
  ASSERT_NE(registry.histogram("server_einn/ticks"), nullptr);
}

}  // namespace
}  // namespace senn::obs
