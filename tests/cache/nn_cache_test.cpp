#include "src/cache/nn_cache.h"

#include <gtest/gtest.h>

namespace senn::cache {
namespace {

core::CachedResult MakeResult(int n, geom::Vec2 at = {0, 0}) {
  core::CachedResult r;
  r.query_location = at;
  for (int i = 0; i < n; ++i) {
    r.neighbors.push_back({i, {static_cast<double>(i + 1), 0}, static_cast<double>(i + 1)});
  }
  return r;
}

TEST(NnCacheTest, StartsEmpty) {
  NnCache cache(10);
  EXPECT_TRUE(cache.Empty());
  EXPECT_EQ(cache.Get(), nullptr);
  EXPECT_EQ(cache.capacity(), 10);
}

TEST(NnCacheTest, StoreAndGet) {
  NnCache cache(10);
  cache.Store(MakeResult(3, {5, 5}));
  ASSERT_NE(cache.Get(), nullptr);
  EXPECT_EQ(cache.Get()->neighbors.size(), 3u);
  EXPECT_EQ(cache.Get()->query_location, (geom::Vec2{5, 5}));
  EXPECT_FALSE(cache.Empty());
}

TEST(NnCacheTest, TruncatesToCapacity) {
  NnCache cache(4);
  cache.Store(MakeResult(9));
  ASSERT_NE(cache.Get(), nullptr);
  EXPECT_EQ(cache.Get()->neighbors.size(), 4u);
  // Truncation keeps the closest prefix.
  EXPECT_EQ(cache.Get()->neighbors.back().id, 3);
  EXPECT_DOUBLE_EQ(cache.Get()->Radius(), 4.0);
}

TEST(NnCacheTest, MostRecentQueryWins) {
  NnCache cache(10);
  cache.Store(MakeResult(3, {0, 0}));
  cache.Store(MakeResult(5, {9, 9}));
  ASSERT_NE(cache.Get(), nullptr);
  EXPECT_EQ(cache.Get()->neighbors.size(), 5u);
  EXPECT_EQ(cache.Get()->query_location, (geom::Vec2{9, 9}));
  EXPECT_EQ(cache.store_count(), 2u);
}

TEST(NnCacheTest, ClearDropsEntry) {
  NnCache cache(10);
  cache.Store(MakeResult(3));
  cache.Clear();
  EXPECT_TRUE(cache.Empty());
  EXPECT_EQ(cache.Get(), nullptr);
}

TEST(NnCacheTest, CapacityClampedToOne) {
  NnCache cache(0);
  EXPECT_EQ(cache.capacity(), 1);
  cache.Store(MakeResult(3));
  EXPECT_EQ(cache.Get()->neighbors.size(), 1u);
}

TEST(NnCacheTest, EmptyResultCountsAsEmpty) {
  NnCache cache(5);
  cache.Store(core::CachedResult{});
  EXPECT_TRUE(cache.Empty());
  EXPECT_DOUBLE_EQ(cache.Get()->Radius(), 0.0);
}

}  // namespace
}  // namespace senn::cache
