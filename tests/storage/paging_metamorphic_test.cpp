// Metamorphic test for the server under paging: the storage engine is a
// pure observer of the traversals. Across pool sizes {2, 8, unbounded} and
// both replacement policies — and against a server with no storage engine
// at all — every query must return the identical result set with identical
// LOGICAL page-access counts; only the physical miss counters may differ,
// and those never exceed the logical count.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/server.h"
#include "src/storage/page.h"

namespace senn::core {
namespace {

struct ServerVariant {
  const char* label;
  std::unique_ptr<SpatialServer> server;
};

std::vector<ServerVariant> MakeVariants(const std::vector<Poi>& pois,
                                        rtree::AccessCountMode mode) {
  auto make = [&](std::optional<storage::BufferPoolOptions> options) {
    return std::make_unique<SpatialServer>(pois, SpatialServer::DefaultTreeOptions(), mode,
                                           options);
  };
  auto opts = [](size_t pages, storage::ReplacementPolicy policy) {
    storage::BufferPoolOptions o;
    o.capacity_pages = pages;
    o.policy = policy;
    return o;
  };
  std::vector<ServerVariant> variants;
  variants.push_back({"no-storage", make(std::nullopt)});
  variants.push_back({"unbounded-lru", make(opts(0, storage::ReplacementPolicy::kLru))});
  variants.push_back({"2-lru", make(opts(2, storage::ReplacementPolicy::kLru))});
  variants.push_back({"8-lru", make(opts(8, storage::ReplacementPolicy::kLru))});
  variants.push_back({"2-clock", make(opts(2, storage::ReplacementPolicy::kClock))});
  variants.push_back({"8-clock", make(opts(8, storage::ReplacementPolicy::kClock))});
  return variants;
}

void ExpectSameAnswer(const ServerReply& expected, const ServerReply& got,
                      const char* label) {
  ASSERT_EQ(expected.neighbors.size(), got.neighbors.size()) << label;
  for (size_t i = 0; i < expected.neighbors.size(); ++i) {
    EXPECT_EQ(expected.neighbors[i].id, got.neighbors[i].id) << label << " rank " << i;
    EXPECT_EQ(expected.neighbors[i].distance, got.neighbors[i].distance)
        << label << " rank " << i;
  }
  // The paper's metric: logical accesses are pool-independent.
  EXPECT_EQ(expected.einn_accesses.total(), got.einn_accesses.total()) << label;
  EXPECT_EQ(expected.inn_accesses.total(), got.inn_accesses.total()) << label;
  // Only the physical misses may differ, bounded by the logical count. The
  // comparison (INN) run bypasses the pool in every variant.
  EXPECT_LE(got.einn_accesses.misses(), got.einn_accesses.total()) << label;
  EXPECT_EQ(got.inn_accesses.misses(), 0u) << label;
}

TEST(PagingMetamorphicTest, ResultsAndLogicalCountsAreIdenticalAcrossPools) {
  constexpr double kSide = 2000.0;
  for (uint64_t world = 0; world < 100; ++world) {
    Rng rng(1000 + world);
    const int poi_count = 50 + static_cast<int>(rng.NextIndex(351));  // 50..400
    std::vector<Poi> pois;
    pois.reserve(static_cast<size_t>(poi_count));
    for (int i = 0; i < poi_count; ++i) {
      pois.push_back({i, {rng.Uniform(0, kSide), rng.Uniform(0, kSide)}});
    }
    // Alternate the accounting mode: kOnEnqueue holds the expanding node
    // pinned while fetching each child, so it exercises the two-pin floor
    // of the capacity-2 pools.
    const rtree::AccessCountMode mode = world % 2 == 0
                                            ? rtree::AccessCountMode::kOnExpand
                                            : rtree::AccessCountMode::kOnEnqueue;
    std::vector<ServerVariant> variants = MakeVariants(pois, mode);

    // A few kNN queries, some with EINN bounds, plus range queries.
    for (int trial = 0; trial < 4; ++trial) {
      geom::Vec2 q{rng.Uniform(0, kSide), rng.Uniform(0, kSide)};
      const int k = 1 + static_cast<int>(rng.NextIndex(10));
      rtree::PruneBounds bounds;
      if (rng.Bernoulli(0.5)) bounds.lower = rng.Uniform(0, kSide / 10.0);
      if (rng.Bernoulli(0.5)) bounds.upper = rng.Uniform(kSide / 10.0, kSide / 2.0);
      ServerReply expected = variants[0].server->QueryKnn(q, k, bounds);
      for (size_t v = 1; v < variants.size(); ++v) {
        SCOPED_TRACE(testing::Message() << "world " << world << " knn trial " << trial);
        ServerReply got = variants[v].server->QueryKnn(q, k, bounds);
        ExpectSameAnswer(expected, got, variants[v].label);
        if (HasFatalFailure()) return;
      }
    }
    for (int trial = 0; trial < 2; ++trial) {
      geom::Vec2 q{rng.Uniform(0, kSide), rng.Uniform(0, kSide)};
      const double radius = rng.Uniform(kSide / 20.0, kSide / 4.0);
      const double inner = rng.Bernoulli(0.5) ? rng.Uniform(0, radius / 2.0) : 0.0;
      ServerReply expected = variants[0].server->QueryRange(q, radius, inner);
      for (size_t v = 1; v < variants.size(); ++v) {
        SCOPED_TRACE(testing::Message() << "world " << world << " range trial " << trial);
        ServerReply got = variants[v].server->QueryRange(q, radius, inner);
        ExpectSameAnswer(expected, got, variants[v].label);
        if (HasFatalFailure()) return;
      }
    }

    // No traversal leaks a pin.
    for (const ServerVariant& v : variants) {
      if (v.server->pager() != nullptr) {
        EXPECT_EQ(v.server->pager()->pool().pinned_pages(), 0u) << v.label;
      }
    }
  }
}

TEST(PagingMetamorphicTest, UnboundedPoolMissesExactlyThePagesItFirstTouches) {
  Rng rng(7);
  std::vector<Poi> pois;
  for (int i = 0; i < 300; ++i) {
    pois.push_back({i, {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}});
  }
  SpatialServer server(pois, SpatialServer::DefaultTreeOptions(),
                       rtree::AccessCountMode::kOnExpand,
                       storage::BufferPoolOptions{});
  for (int trial = 0; trial < 30; ++trial) {
    geom::Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    server.QueryKnn(q, 5);
  }
  const storage::BufferPoolStats& st = server.pager()->pool().stats();
  // Every miss is a distinct page faulted in exactly once.
  EXPECT_EQ(st.misses, server.pager()->pool().resident_pages());
  EXPECT_EQ(st.logical, st.hits + st.misses);
  EXPECT_LE(st.misses, server.pager()->page_count());
}

}  // namespace
}  // namespace senn::core
