// Property tests for the buffer pool: random fetch/pin/unpin traces are
// replayed against an independently written reference-model simulator, and
// the two must agree on EVERY observable — hit/miss of each fetch, the
// resident set, and per-page pin counts — plus the pool invariants:
//
//   * a pinned page is never evicted,
//   * hits + misses == logical accesses,
//   * the resident set never exceeds the configured capacity,
//   * LRU / CLOCK victim choices match the reference policies exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/storage/buffer_pool.h"

namespace senn::storage {
namespace {

// Straight-line reference model: linear scans, no hash tables, no shared
// code with the implementation beyond the options struct.
class ReferencePool {
 public:
  explicit ReferencePool(BufferPoolOptions options) : options_(options) {}

  struct Result {
    bool ok = false;    // false: every frame pinned, nothing happened
    bool miss = false;
  };

  Result Fetch(PageId id) {
    for (Frame& f : frames_) {
      if (f.id == id) {
        f.pins += 1;
        f.referenced = true;
        f.last_use = ++tick_;
        return {true, false};
      }
    }
    size_t index;
    if (options_.capacity_pages == 0 || frames_.size() < options_.capacity_pages) {
      frames_.push_back(Frame{});
      index = frames_.size() - 1;
    } else {
      index = options_.policy == ReplacementPolicy::kLru ? LruVictim() : ClockVictim();
      if (index == kNone) return {false, false};
      ++evictions_;
    }
    Frame& f = frames_[index];
    f.id = id;
    f.pins = 1;
    f.referenced = true;
    f.last_use = ++tick_;
    return {true, true};
  }

  void Unpin(PageId id) {
    for (Frame& f : frames_) {
      if (f.id == id && f.pins > 0) {
        f.pins -= 1;
        return;
      }
    }
    FAIL() << "reference Unpin of page " << id << " without a pin";
  }

  bool Resident(PageId id) const {
    for (const Frame& f : frames_) {
      if (f.id == id) return true;
    }
    return false;
  }

  uint32_t PinCount(PageId id) const {
    for (const Frame& f : frames_) {
      if (f.id == id) return f.pins;
    }
    return 0;
  }

  size_t resident_pages() const { return frames_.size(); }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    uint32_t pins = 0;
    bool referenced = false;
    uint64_t last_use = 0;
  };
  static constexpr size_t kNone = static_cast<size_t>(-1);

  size_t LruVictim() const {
    size_t victim = kNone;
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].pins > 0) continue;
      if (victim == kNone || frames_[i].last_use < frames_[victim].last_use) victim = i;
    }
    return victim;
  }

  size_t ClockVictim() {
    const size_t n = frames_.size();
    for (size_t step = 0; step < 2 * n; ++step) {
      const size_t i = hand_;
      hand_ = (hand_ + 1) % n;
      if (frames_[i].pins > 0) continue;
      if (frames_[i].referenced) {
        frames_[i].referenced = false;
        continue;
      }
      return i;
    }
    return kNone;
  }

  BufferPoolOptions options_;
  std::vector<Frame> frames_;
  size_t hand_ = 0;
  uint64_t tick_ = 0;
  uint64_t evictions_ = 0;
};

void RunRandomTrace(ReplacementPolicy policy, size_t capacity, uint64_t seed) {
  SCOPED_TRACE(std::string("policy=") + ReplacementPolicyName(policy) +
               " capacity=" + std::to_string(capacity) + " seed=" + std::to_string(seed));
  BufferPoolOptions options;
  options.capacity_pages = capacity;
  options.policy = policy;
  BufferPool pool(options);
  ReferencePool ref(options);

  Rng rng(seed);
  constexpr uint32_t kUniverse = 37;
  std::vector<PageId> pinned;  // one entry per outstanding pin

  for (int step = 0; step < 3000; ++step) {
    // Bias toward fetches but keep the pin population bounded so bounded
    // pools regularly exercise eviction, not just pin exhaustion.
    const bool fetch = pinned.empty() || (pinned.size() < 6 && rng.Bernoulli(0.6));
    if (fetch) {
      const PageId id = static_cast<PageId>(rng.NextIndex(kUniverse));
      const ReferencePool::Result expected = ref.Fetch(id);
      const BufferPool::FetchResult actual = pool.Fetch(id);
      ASSERT_EQ(expected.ok, actual.page != nullptr) << "step " << step << " page " << id;
      if (expected.ok) {
        ASSERT_EQ(expected.miss, actual.miss) << "step " << step << " page " << id;
        ASSERT_EQ(actual.page->id, id);
        pinned.push_back(id);
      }
    } else {
      const size_t i = static_cast<size_t>(rng.NextIndex(pinned.size()));
      const PageId id = pinned[i];
      pinned[i] = pinned.back();
      pinned.pop_back();
      ref.Unpin(id);
      pool.Unpin(id);
    }

    // Invariants.
    const BufferPoolStats& st = pool.stats();
    ASSERT_EQ(st.logical, st.hits + st.misses);
    if (capacity > 0) {
      ASSERT_LE(pool.resident_pages(), capacity);
    }
    for (PageId id : pinned) {
      ASSERT_TRUE(pool.Resident(id)) << "pinned page " << id << " was evicted";
      ASSERT_GE(pool.PinCount(id), 1u);
    }

    // Full observable-state equivalence with the reference model.
    ASSERT_EQ(ref.resident_pages(), pool.resident_pages());
    ASSERT_EQ(ref.evictions(), st.evictions);
    for (uint32_t id = 0; id < kUniverse; ++id) {
      ASSERT_EQ(ref.Resident(id), pool.Resident(id)) << "step " << step << " page " << id;
      ASSERT_EQ(ref.PinCount(id), pool.PinCount(id)) << "step " << step << " page " << id;
    }
  }

  // Balance every pin: the paranoid teardown check treats leaked pins as a
  // bug (a leaked pin in production permanently shrinks the pool).
  for (PageId id : pinned) {
    ref.Unpin(id);
    pool.Unpin(id);
  }
}

TEST(BufferPoolPropertyTest, RandomTracesMatchReferenceModel) {
  for (ReplacementPolicy policy : {ReplacementPolicy::kLru, ReplacementPolicy::kClock}) {
    for (size_t capacity : {size_t{2}, size_t{3}, size_t{7}, size_t{16}, size_t{0}}) {
      for (uint64_t seed : {11ull, 223ull, 4241ull, 900001ull}) {
        RunRandomTrace(policy, capacity, seed);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(BufferPoolPropertyTest, FetchFailsOnlyWhenEveryFrameIsPinned) {
  BufferPoolOptions options;
  options.capacity_pages = 2;
  BufferPool pool(options);
  ASSERT_NE(pool.Fetch(0).page, nullptr);
  ASSERT_NE(pool.Fetch(1).page, nullptr);
  // Both frames pinned: a third page cannot be faulted in and nothing may
  // be charged for the failed attempt.
  const BufferPoolStats before = pool.stats();
  BufferPool::FetchResult r = pool.Fetch(2);
  EXPECT_EQ(r.page, nullptr);
  EXPECT_FALSE(r.miss);
  EXPECT_EQ(pool.stats().logical, before.logical);
  EXPECT_EQ(pool.stats().misses, before.misses);
  // Releasing one pin makes the fetch succeed by evicting the unpinned page.
  pool.Unpin(0);
  r = pool.Fetch(2);
  ASSERT_NE(r.page, nullptr);
  EXPECT_TRUE(r.miss);
  EXPECT_FALSE(pool.Resident(0));
  EXPECT_TRUE(pool.Resident(1));
  // Balance every pin: the paranoid teardown check treats leaked pins as a
  // bug (a leaked pin in production permanently shrinks the pool).
  pool.Unpin(1);
  pool.Unpin(2);
}

TEST(BufferPoolPropertyTest, UnboundedPoolNeverEvicts) {
  BufferPool pool(BufferPoolOptions{});  // capacity 0 = unbounded
  constexpr PageId kPages = 500;
  for (PageId id = 0; id < kPages; ++id) {
    BufferPool::FetchResult r = pool.Fetch(id);
    ASSERT_NE(r.page, nullptr);
    EXPECT_TRUE(r.miss);
    pool.Unpin(id);
  }
  for (PageId id = 0; id < kPages; ++id) {
    BufferPool::FetchResult r = pool.Fetch(id);
    ASSERT_NE(r.page, nullptr);
    EXPECT_FALSE(r.miss) << "page " << id;
    pool.Unpin(id);
  }
  EXPECT_EQ(pool.stats().evictions, 0u);
  EXPECT_EQ(pool.resident_pages(), static_cast<size_t>(kPages));
  EXPECT_EQ(pool.stats().hits, static_cast<uint64_t>(kPages));
  EXPECT_EQ(pool.stats().misses, static_cast<uint64_t>(kPages));
}

TEST(BufferPoolPropertyTest, EvictedFrameIsZeroFilledOnReuse) {
  BufferPoolOptions options;
  options.capacity_pages = 2;
  BufferPool pool(options);
  BufferPool::FetchResult a = pool.Fetch(0);
  ASSERT_NE(a.page, nullptr);
  a.page->data[100] = std::byte{0xAB};
  pool.Unpin(0);
  ASSERT_NE(pool.Fetch(1).page, nullptr);
  pool.Unpin(1);
  BufferPool::FetchResult c = pool.Fetch(2);  // evicts page 0's frame
  ASSERT_NE(c.page, nullptr);
  ASSERT_TRUE(c.miss);
  EXPECT_EQ(c.page->data[100], std::byte{0});
  pool.Unpin(2);
}

// LRU is a stack algorithm: for one fixed reference string, the resident set
// of a k-frame pool is a subset of the (k+1)-frame pool's (inclusion
// property), so hits are monotone non-decreasing in capacity. This is the
// property the bench sweep's acceptance rests on; CLOCK offers no such
// guarantee and is deliberately absent here.
TEST(BufferPoolPropertyTest, LruHitCountMonotoneInCapacity) {
  for (uint64_t seed : {5ull, 77ull, 31337ull}) {
    Rng rng(seed);
    std::vector<PageId> trace;
    for (int i = 0; i < 2000; ++i) {
      trace.push_back(static_cast<PageId>(rng.NextIndex(64)));
    }
    uint64_t previous_hits = 0;
    for (size_t capacity : {size_t{2}, size_t{4}, size_t{8}, size_t{16}, size_t{32},
                            size_t{64}, size_t{0}}) {
      BufferPoolOptions options;
      options.capacity_pages = capacity;
      options.policy = ReplacementPolicy::kLru;
      BufferPool pool(options);
      for (PageId id : trace) {
        ASSERT_NE(pool.Fetch(id).page, nullptr);
        pool.Unpin(id);
      }
      EXPECT_GE(pool.stats().hits, previous_hits)
          << "seed " << seed << " capacity " << capacity;
      previous_hits = pool.stats().hits;
    }
  }
}

TEST(BufferPoolPropertyTest, ResetStatsKeepsResidency) {
  BufferPoolOptions options;
  options.capacity_pages = 4;
  BufferPool pool(options);
  for (PageId id = 0; id < 4; ++id) {
    ASSERT_NE(pool.Fetch(id).page, nullptr);
    pool.Unpin(id);
  }
  pool.ResetStats();
  EXPECT_EQ(pool.stats().logical, 0u);
  EXPECT_EQ(pool.resident_pages(), 4u);  // a warmed pool stays warm
  BufferPool::FetchResult r = pool.Fetch(2);
  ASSERT_NE(r.page, nullptr);
  EXPECT_FALSE(r.miss);
  pool.Unpin(2);
}

}  // namespace
}  // namespace senn::storage
