// NodePager: the node-to-page mapping and serialization layer.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/rtree/bulk_load.h"
#include "src/rtree/knn.h"
#include "src/rtree/rstar_tree.h"
#include "src/storage/node_pager.h"

namespace senn::storage {
namespace {

rtree::RStarTree MakeTree(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<rtree::ObjectEntry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries.push_back({{rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, i});
  }
  rtree::RStarTree::Options options;
  options.max_entries = 8;
  options.min_entries = 3;
  return rtree::BulkLoad(std::move(entries), options);
}

void CollectPreorder(const rtree::RStarTree::Node* node,
                     std::vector<const rtree::RStarTree::Node*>* out) {
  out->push_back(node);
  if (node->IsLeaf()) return;
  for (const rtree::RStarTree::Slot& s : node->slots) CollectPreorder(s.child.get(), out);
}

TEST(NodePagerTest, PageIdsAreAPureFunctionOfTheTreeShape) {
  rtree::RStarTree tree = MakeTree(300, 1);
  NodePager a(&tree, BufferPoolOptions{});
  NodePager b(&tree, BufferPoolOptions{});

  std::vector<const rtree::RStarTree::Node*> nodes;
  CollectPreorder(tree.root(), &nodes);
  ASSERT_EQ(a.page_count(), nodes.size());
  ASSERT_EQ(b.page_count(), nodes.size());
  EXPECT_EQ(a.PageOf(tree.root()), PageId{0});
  for (const rtree::RStarTree::Node* node : nodes) {
    EXPECT_EQ(a.PageOf(node), b.PageOf(node));
    EXPECT_LT(a.PageOf(node), nodes.size());
  }
}

TEST(NodePagerTest, MaterializedPagesRoundTrip) {
  rtree::RStarTree tree = MakeTree(200, 2);
  NodePager pager(&tree, BufferPoolOptions{});

  std::vector<const rtree::RStarTree::Node*> nodes;
  CollectPreorder(tree.root(), &nodes);
  for (const rtree::RStarTree::Node* node : nodes) {
    ASSERT_LE(SerializedNodeBytes(node->slots.size()), kPageSizeBytes);
    EXPECT_TRUE(pager.Fetch(node)) << "first touch must miss";
    const Page* page = pager.pool().Fetch(pager.PageOf(node)).page;
    ASSERT_NE(page, nullptr);

    const PageHeader header = ReadPageHeader(*page);
    EXPECT_EQ(header.level, static_cast<uint32_t>(node->level));
    ASSERT_EQ(header.slot_count, node->slots.size());
    for (size_t i = 0; i < node->slots.size(); ++i) {
      const rtree::RStarTree::Slot& expected = node->slots[i];
      const PageSlot got = ReadPageSlot(*page, i);
      EXPECT_EQ(got.mbr.lo.x, expected.mbr.lo.x);
      EXPECT_EQ(got.mbr.lo.y, expected.mbr.lo.y);
      EXPECT_EQ(got.mbr.hi.x, expected.mbr.hi.x);
      EXPECT_EQ(got.mbr.hi.y, expected.mbr.hi.y);
      if (node->IsLeaf()) {
        EXPECT_EQ(got.object_id, expected.object.id);
        EXPECT_EQ(got.object_x, expected.object.position.x);
        EXPECT_EQ(got.object_y, expected.object.position.y);
      } else {
        EXPECT_EQ(got.child, pager.PageOf(expected.child.get()));
      }
    }
    pager.pool().Unpin(pager.PageOf(node));  // the extra inspection pin
    pager.Unpin(node);
  }
}

TEST(NodePagerTest, UnboundedPoolHitsOnSecondPass) {
  rtree::RStarTree tree = MakeTree(250, 3);
  NodePager pager(&tree, BufferPoolOptions{});
  std::vector<const rtree::RStarTree::Node*> nodes;
  CollectPreorder(tree.root(), &nodes);
  for (const rtree::RStarTree::Node* node : nodes) {
    EXPECT_TRUE(pager.Fetch(node));
    pager.Unpin(node);
  }
  for (const rtree::RStarTree::Node* node : nodes) {
    EXPECT_FALSE(pager.Fetch(node));
    pager.Unpin(node);
  }
  EXPECT_EQ(pager.pool().stats().misses, nodes.size());
  EXPECT_EQ(pager.pool().stats().hits, nodes.size());
  EXPECT_EQ(pager.pool().stats().evictions, 0u);
}

TEST(NodePagerTest, BoundedCapacityIsClampedToTwoFrames) {
  rtree::RStarTree tree = MakeTree(100, 4);
  BufferPoolOptions options;
  options.capacity_pages = 1;  // below the traversal floor
  NodePager pager(&tree, options);
  EXPECT_EQ(pager.pool().options().capacity_pages, 2u);
  // Unbounded stays unbounded.
  NodePager unbounded(&tree, BufferPoolOptions{});
  EXPECT_EQ(unbounded.pool().options().capacity_pages, 0u);
}

TEST(NodePagerTest, HookedKnnMatchesUnhookedAndOnlyMissesDiffer) {
  rtree::RStarTree tree = MakeTree(400, 5);
  NodePager pager(&tree, BufferPoolOptions{});
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    geom::Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const int k = 1 + static_cast<int>(rng.NextIndex(10));
    rtree::AccessCounter plain, paged;
    std::vector<rtree::Neighbor> expected = rtree::BestFirstKnn(tree, q, k, {}, &plain);
    std::vector<rtree::Neighbor> got = rtree::BestFirstKnn(tree, q, k, {}, &paged, &pager);
    ASSERT_EQ(expected.size(), got.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].object.id, got[i].object.id);
      EXPECT_EQ(expected[i].distance, got[i].distance);
    }
    // Identical logical counts; physical misses bounded by the logical.
    EXPECT_EQ(plain.total(), paged.total());
    EXPECT_EQ(plain.misses(), 0u);
    EXPECT_LE(paged.misses(), paged.total());
  }
  // The pool is unbounded: repeating a query touches only pages its first
  // execution faulted in, so the replay misses nothing.
  rtree::AccessCounter cold, warm;
  rtree::BestFirstKnn(tree, {500, 500}, 8, {}, &cold, &pager);
  rtree::BestFirstKnn(tree, {500, 500}, 8, {}, &warm, &pager);
  EXPECT_EQ(warm.total(), cold.total());
  EXPECT_EQ(warm.misses(), 0u);
  EXPECT_EQ(pager.pool().pinned_pages(), 0u);  // all traversal pins released
}

}  // namespace
}  // namespace senn::storage
