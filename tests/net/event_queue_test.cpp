#include "src/net/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace senn::net {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Schedule(3.0, EventKind::kReplyArrival, 30);
  q.Schedule(1.0, EventKind::kReplyArrival, 10);
  q.Schedule(2.0, EventKind::kDeadline, -1);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.PopNext().payload, 10);
  EXPECT_EQ(q.PopNext().kind, EventKind::kDeadline);
  EXPECT_EQ(q.PopNext().payload, 30);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, EqualTimesPopFifo) {
  // Determinism hinges on FIFO among ties — never heap internals.
  EventQueue q;
  for (int i = 0; i < 16; ++i) q.Schedule(5.0, EventKind::kReplyArrival, i);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(q.PopNext().payload, i) << "tie " << i;
  }
}

TEST(EventQueueTest, InterleavedSchedulingKeepsOrder) {
  EventQueue q;
  q.Schedule(2.0, EventKind::kReplyArrival, 0);
  EXPECT_EQ(q.PopNext().payload, 0);
  q.Schedule(1.0, EventKind::kReplyArrival, 1);
  q.Schedule(1.0, EventKind::kReplyArrival, 2);
  q.Schedule(0.5, EventKind::kReplyArrival, 3);
  EXPECT_EQ(q.PopNext().payload, 3);
  EXPECT_EQ(q.PopNext().payload, 1);
  EXPECT_EQ(q.PopNext().payload, 2);
}

TEST(EventQueueTest, ClearResetsQueueAndSequence) {
  EventQueue q;
  q.Schedule(1.0, EventKind::kReplyArrival, 0);
  q.Clear();
  EXPECT_TRUE(q.Empty());
  q.Schedule(7.0, EventKind::kReplyArrival, 1);
  Event e = q.PopNext();
  EXPECT_EQ(e.payload, 1);
  EXPECT_EQ(e.seq, 0u);  // sequence restarted
}

}  // namespace
}  // namespace senn::net
