#include "src/net/exchange.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/net/message.h"

namespace senn::net {
namespace {

std::vector<PeerProfile> Peers(std::initializer_list<size_t> tuples) {
  std::vector<PeerProfile> peers;
  int32_t id = 100;
  for (size_t t : tuples) peers.push_back({id++, t});
  return peers;
}

TEST(ExchangeTest, IdealChannelDeliversEverythingInstantly) {
  ChannelConfig cfg;  // defaults: loss 0, latency 0 => ideal
  ASSERT_TRUE(cfg.Ideal());
  std::vector<PeerProfile> peers = Peers({3, 10, 1});
  Rng rng(1);
  uint64_t before = rng.NextU64();
  Rng rng2(1);
  ExchangeResult res = RunExchange(cfg, peers, &rng2);
  // No draws were made on the ideal channel.
  EXPECT_EQ(rng2.NextU64(), before);
  // All three replies arrive, in candidate order, at t = 0.
  EXPECT_EQ(res.arrived, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(res.elapsed_s, 0.0);
  EXPECT_EQ(res.retries, 0);
  EXPECT_EQ(res.transmissions_lost, 0u);
  EXPECT_EQ(res.replies_late, 0u);
  // One broadcast + three replies; bytes follow the wire model exactly.
  EXPECT_DOUBLE_EQ(res.messages_sent, 4.0);
  EXPECT_DOUBLE_EQ(res.bytes_sent,
                   RequestBytes() + ReplyBytes(3) + ReplyBytes(10) + ReplyBytes(1));
}

TEST(ExchangeTest, NoCandidatesResolvesImmediately) {
  ChannelConfig cfg;
  cfg.loss = 0.5;
  cfg.latency_mean_s = 0.05;
  Rng rng(2);
  ExchangeResult res = RunExchange(cfg, {}, &rng);
  EXPECT_TRUE(res.arrived.empty());
  EXPECT_DOUBLE_EQ(res.elapsed_s, 0.0);
  EXPECT_DOUBLE_EQ(res.messages_sent, 1.0);  // the lone broadcast
  EXPECT_DOUBLE_EQ(res.bytes_sent, RequestBytes());
}

TEST(ExchangeTest, TotalLossExhaustsRetriesAndTimesOut) {
  ChannelConfig cfg;
  cfg.loss = 1.0;
  cfg.reply_timeout_s = 0.2;
  cfg.max_retries = 3;
  std::vector<PeerProfile> peers = Peers({4, 4});
  Rng rng(3);
  ExchangeResult res = RunExchange(cfg, peers, &rng);
  EXPECT_TRUE(res.arrived.empty());
  EXPECT_EQ(res.retries, 3);
  // 4 rounds, each: one REQ on the air, both receptions dropped, no replies.
  EXPECT_DOUBLE_EQ(res.messages_sent, 4.0);
  EXPECT_DOUBLE_EQ(res.bytes_sent, 4.0 * RequestBytes());
  EXPECT_EQ(res.transmissions_lost, 8u);
  // The host waited out every round.
  EXPECT_DOUBLE_EQ(res.elapsed_s, 4.0 * 0.2);
}

TEST(ExchangeTest, LatencyBeyondDeadlineMeansRepliesArriveLate) {
  ChannelConfig cfg;
  cfg.latency_mean_s = 10.0;     // links far slower than the deadline
  cfg.reply_timeout_s = 0.001;
  cfg.max_retries = 1;
  std::vector<PeerProfile> peers = Peers({2, 2, 2});
  Rng rng(4);
  ExchangeResult res = RunExchange(cfg, peers, &rng);
  EXPECT_TRUE(res.arrived.empty());
  EXPECT_EQ(res.retries, 1);
  EXPECT_EQ(res.replies_late, 6u);  // 3 peers x 2 rounds, all transmitted, all late
  EXPECT_DOUBLE_EQ(res.elapsed_s, 2.0 * 0.001);
}

TEST(ExchangeTest, DeterministicForEqualDrawStreams) {
  ChannelConfig cfg;
  cfg.loss = 0.3;
  cfg.latency_mean_s = 0.02;
  cfg.reply_timeout_s = 0.1;
  cfg.max_retries = 2;
  std::vector<PeerProfile> peers = Peers({1, 2, 3, 4, 5, 6, 7, 8});
  Rng a(77), b(77);
  ExchangeResult ra = RunExchange(cfg, peers, &a);
  ExchangeResult rb = RunExchange(cfg, peers, &b);
  EXPECT_EQ(ra.arrived, rb.arrived);
  EXPECT_DOUBLE_EQ(ra.elapsed_s, rb.elapsed_s);
  EXPECT_DOUBLE_EQ(ra.messages_sent, rb.messages_sent);
  EXPECT_DOUBLE_EQ(ra.bytes_sent, rb.bytes_sent);
  EXPECT_EQ(ra.retries, rb.retries);
  EXPECT_EQ(ra.transmissions_lost, rb.transmissions_lost);
  EXPECT_EQ(ra.replies_late, rb.replies_late);
}

TEST(ExchangeTest, PartialHarvestInvariants) {
  // Over many seeds: arrivals are unique candidate indices, elapsed time is
  // bounded by the rounds that could have run, and a partial round bills
  // the full deadline while a full census may resolve earlier.
  ChannelConfig cfg;
  cfg.loss = 0.4;
  cfg.latency_mean_s = 0.01;
  cfg.reply_timeout_s = 0.08;
  cfg.max_retries = 2;
  std::vector<PeerProfile> peers = Peers({3, 3, 3, 3, 3});
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    ExchangeResult res = RunExchange(cfg, peers, &rng);
    std::set<int> unique(res.arrived.begin(), res.arrived.end());
    EXPECT_EQ(unique.size(), res.arrived.size()) << "seed " << seed;
    for (int idx : res.arrived) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, static_cast<int>(peers.size()));
    }
    EXPECT_LE(res.elapsed_s, 3.0 * 0.08 + 1e-12) << "seed " << seed;
    if (res.arrived.size() == peers.size()) {
      EXPECT_LE(res.elapsed_s, 3.0 * 0.08);
    } else if (!res.arrived.empty()) {
      // Partial harvest: the host waited out a full round boundary.
      double rounds = res.elapsed_s / 0.08;
      EXPECT_NEAR(rounds, std::round(rounds), 1e-9) << "seed " << seed;
    }
    EXPECT_LE(res.retries, 2) << "seed " << seed;
  }
}

TEST(ExchangeTest, LossMonotonicallyShrinksExpectedHarvest) {
  // Averaged over seeds, higher loss must not deliver more replies.
  ChannelConfig base;
  base.latency_mean_s = 0.0;
  base.reply_timeout_s = 0.1;
  base.max_retries = 1;
  std::vector<PeerProfile> peers = Peers({2, 2, 2, 2, 2, 2});
  double prev = 1e9;
  for (double loss : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    ChannelConfig cfg = base;
    cfg.loss = loss;
    double arrived = 0;
    for (uint64_t seed = 1; seed <= 300; ++seed) {
      Rng rng(seed);
      arrived += static_cast<double>(RunExchange(cfg, peers, &rng).arrived.size());
    }
    EXPECT_LE(arrived, prev + 1e-9) << "loss " << loss;
    prev = arrived;
  }
}

}  // namespace
}  // namespace senn::net
