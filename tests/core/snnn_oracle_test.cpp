// SNNN must return byte-identical result sets (ids, ranks under
// core::RanksBefore, and bitwise distances) whether its network-distance
// backend is the default per-query Dijkstra or a contraction hierarchy —
// over 100+ generated worlds, the PR-5 postmortem's network-distance-tie
// lattices, peer-permutation invariance, and metamorphic transforms
// (power-of-two scaling, far-POI insertion).
#include "src/core/snnn.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/roadnet/ch.h"
#include "src/roadnet/distance_oracle.h"
#include "src/roadnet/generator.h"

namespace senn::core {
namespace {

using geom::Vec2;

struct NetworkWorld {
  roadnet::Graph graph;
  std::unique_ptr<roadnet::EdgeLocator> locator;
  std::vector<Poi> pois;
  std::unique_ptr<SpatialServer> server;
};

NetworkWorld MakeWorld(uint64_t seed, int poi_count, double side,
                       double block_spacing) {
  NetworkWorld w;
  Rng rng(seed);
  roadnet::RoadNetworkConfig cfg;
  cfg.area_side_m = side;
  cfg.block_spacing_m = block_spacing;
  w.graph = roadnet::GenerateRoadNetwork(cfg, &rng);
  w.locator = std::make_unique<roadnet::EdgeLocator>(&w.graph, block_spacing);
  for (int i = 0; i < poi_count; ++i) {
    Vec2 raw{rng.Uniform(0, side), rng.Uniform(0, side)};
    roadnet::EdgePoint ep = w.locator->Nearest(raw);
    w.pois.push_back({i, w.graph.PositionOf(ep)});
  }
  w.server = std::make_unique<SpatialServer>(w.pois);
  return w;
}

// An exact-coordinate lattice (the PR-5 postmortem family): unit blocks of
// 100 m, POIs at node positions symmetric around the center, so several
// POIs share the SAME network distance bitwise and only the (distance, id)
// order decides ranks.
NetworkWorld MakeTieLattice(int side_blocks, double spacing) {
  NetworkWorld w;
  for (int y = 0; y <= side_blocks; ++y) {
    for (int x = 0; x <= side_blocks; ++x) {
      w.graph.AddNode({x * spacing, y * spacing});
    }
  }
  auto id = [side_blocks](int x, int y) {
    return static_cast<roadnet::NodeId>(y * (side_blocks + 1) + x);
  };
  for (int y = 0; y <= side_blocks; ++y) {
    for (int x = 0; x <= side_blocks; ++x) {
      if (x < side_blocks) {
        EXPECT_TRUE(
            w.graph.AddEdge(id(x, y), id(x + 1, y), roadnet::RoadClass::kResidential).ok());
      }
      if (y < side_blocks) {
        EXPECT_TRUE(
            w.graph.AddEdge(id(x, y), id(x, y + 1), roadnet::RoadClass::kResidential).ok());
      }
    }
  }
  w.locator = std::make_unique<roadnet::EdgeLocator>(&w.graph, spacing);
  // POIs on the 4-fold symmetric orbit of the center: equidistant rings.
  int c = side_blocks / 2;
  int poi_id = 0;
  for (int r = 1; r <= c; ++r) {
    for (auto [dx, dy] : {std::pair{r, 0}, {-r, 0}, {0, r}, {0, -r}}) {
      Vec2 p = w.graph.node_position(id(c + dx, c + dy));
      w.pois.push_back({poi_id++, p});
    }
  }
  w.server = std::make_unique<SpatialServer>(w.pois);
  return w;
}

void ExpectIdenticalResults(const std::vector<NetworkRankedPoi>& a,
                            const std::vector<NetworkRankedPoi>& b,
                            const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " rank " << i;
    EXPECT_EQ(a[i].position, b[i].position) << label << " rank " << i;
    EXPECT_EQ(a[i].euclidean, b[i].euclidean) << label << " rank " << i;
    EXPECT_EQ(a[i].network, b[i].network) << label << " rank " << i;
  }
}

TEST(SnnnOracleTest, DijkstraAndChIdenticalOverManyWorlds) {
  // The headline differential: 108 worlds x 2 queries, bucket-CH backend
  // vs. the default Dijkstra, byte-identical results (EXPECT_EQ doubles).
  int worlds = 0;
  for (uint64_t seed = 1; seed <= 36; ++seed) {
    for (int variant = 0; variant < 3; ++variant) {
      double side = 1400.0 + 300.0 * variant;
      int poi_count = 12 + 10 * variant;
      NetworkWorld w = MakeWorld(seed * 101 + static_cast<uint64_t>(variant),
                                 poi_count, side, 220.0);
      roadnet::ch::Hierarchy hier = roadnet::ch::Hierarchy::Build(w.graph);
      roadnet::ch::BucketOracle ch_oracle(&hier);
      SnnnProcessor dijkstra_snnn(&w.graph, w.locator.get());
      SnnnProcessor ch_snnn(&w.graph, w.locator.get(), {}, &ch_oracle);
      Rng q_rng = Rng(seed).Stream("snnn-oracle/query", static_cast<uint64_t>(variant));
      for (int trial = 0; trial < 2; ++trial) {
        Vec2 q{q_rng.Uniform(0.1 * side, 0.9 * side),
               q_rng.Uniform(0.1 * side, 0.9 * side)};
        int k = 1 + static_cast<int>(q_rng.NextIndex(5));
        ServerNnSource source_a(w.server.get(), q);
        ServerNnSource source_b(w.server.get(), q);
        ExpectIdenticalResults(dijkstra_snnn.Execute(q, k, &source_a),
                               ch_snnn.Execute(q, k, &source_b), "world");
      }
      ++worlds;
    }
  }
  EXPECT_GE(worlds, 100);
}

TEST(SnnnOracleTest, PointOracleAgreesToo) {
  // ch::Query (bidirectional per target) must match as well — the two CH
  // variants and Dijkstra form a three-way agreement on a world subset.
  for (uint64_t seed : {3u, 7u, 11u, 19u, 23u}) {
    NetworkWorld w = MakeWorld(seed, 24, 1800.0, 220.0);
    roadnet::ch::Hierarchy hier = roadnet::ch::Hierarchy::Build(w.graph);
    roadnet::ch::Query point_oracle(&hier);
    roadnet::ch::BucketOracle bucket_oracle(&hier);
    SnnnProcessor dijkstra_snnn(&w.graph, w.locator.get());
    SnnnProcessor point_snnn(&w.graph, w.locator.get(), {}, &point_oracle);
    SnnnProcessor bucket_snnn(&w.graph, w.locator.get(), {}, &bucket_oracle);
    Rng q_rng = Rng(seed).Stream("snnn-oracle/point");
    Vec2 q{q_rng.Uniform(200, 1600), q_rng.Uniform(200, 1600)};
    ServerNnSource sa(w.server.get(), q);
    ServerNnSource sb(w.server.get(), q);
    ServerNnSource sc(w.server.get(), q);
    std::vector<NetworkRankedPoi> base = dijkstra_snnn.Execute(q, 4, &sa);
    ExpectIdenticalResults(base, point_snnn.Execute(q, 4, &sb), "point");
    ExpectIdenticalResults(base, bucket_snnn.Execute(q, 4, &sc), "bucket");
  }
}

TEST(SnnnOracleTest, NetworkDistanceTieLattices) {
  // Exact-tie worlds: whole POI rings share one bitwise network distance;
  // the (distance, id) order must decide ranks identically under both
  // backends, and the tied distances must be bitwise equal.
  for (int side_blocks : {6, 8, 10}) {
    NetworkWorld w = MakeTieLattice(side_blocks, 100.0);
    roadnet::ch::Hierarchy hier = roadnet::ch::Hierarchy::Build(w.graph);
    roadnet::ch::BucketOracle ch_oracle(&hier);
    SnnnProcessor dijkstra_snnn(&w.graph, w.locator.get());
    SnnnProcessor ch_snnn(&w.graph, w.locator.get(), {}, &ch_oracle);
    // Query exactly at the center node: every ring is an exact tie.
    double center = (side_blocks / 2) * 100.0;
    Vec2 q{center, center};
    for (int k : {1, 3, 4, 7}) {
      ServerNnSource sa(w.server.get(), q);
      ServerNnSource sb(w.server.get(), q);
      std::vector<NetworkRankedPoi> a = dijkstra_snnn.Execute(q, k, &sa);
      std::vector<NetworkRankedPoi> b = ch_snnn.Execute(q, k, &sb);
      ExpectIdenticalResults(a, b, "lattice");
      // Sanity: the family really produces ties (k=4 is one full ring).
      if (k == 4) {
        EXPECT_EQ(a.front().network, a.back().network);
      }
    }
  }
}

TEST(SnnnOracleTest, PeerPermutationInvariantUnderBothOracles) {
  // Shuffling the harvested-peer order must not change SNNN output, with
  // either backend — and the two backends must agree on every permutation.
  NetworkWorld w = MakeWorld(77, 30, 2000.0, 220.0);
  roadnet::ch::Hierarchy hier = roadnet::ch::Hierarchy::Build(w.graph);
  roadnet::ch::BucketOracle ch_oracle(&hier);
  SnnnProcessor dijkstra_snnn(&w.graph, w.locator.get());
  SnnnProcessor ch_snnn(&w.graph, w.locator.get(), {}, &ch_oracle);
  SennOptions options;
  options.server_request_k = 14;
  SennProcessor senn(w.server.get(), options);
  Rng rng(78);
  Vec2 q{rng.Uniform(300, 1700), rng.Uniform(300, 1700)};
  std::vector<CachedResult> peers(3);
  for (auto& peer : peers) {
    peer.query_location = {q.x + rng.Uniform(-120, 120), q.y + rng.Uniform(-120, 120)};
    peer.neighbors = w.server->QueryKnn(peer.query_location, 14).neighbors;
  }
  std::vector<const CachedResult*> order{&peers[0], &peers[1], &peers[2]};
  std::vector<NetworkRankedPoi> reference;
  for (int perm = 0; perm < 6; ++perm) {
    SennNnSource sa(&senn, q, order);
    SennNnSource sb(&senn, q, order);
    std::vector<NetworkRankedPoi> a = dijkstra_snnn.Execute(q, 3, &sa);
    std::vector<NetworkRankedPoi> b = ch_snnn.Execute(q, 3, &sb);
    ExpectIdenticalResults(a, b, "permutation");
    if (perm == 0) {
      reference = a;
    } else {
      ExpectIdenticalResults(reference, a, "permutation-vs-reference");
    }
    std::next_permutation(order.begin(), order.end());
  }
}

TEST(SnnnOracleTest, MetamorphicPowerOfTwoScaling) {
  // Doubling every coordinate is EXACT in binary floating point, so the
  // scaled world must return the same ids with network distances exactly
  // 2x — and the scaled CH backend must match the unscaled Dijkstra
  // backend through both transforms at once.
  NetworkWorld w = MakeWorld(91, 24, 1800.0, 220.0);
  NetworkWorld scaled;
  for (size_t n = 0; n < w.graph.node_count(); ++n) {
    scaled.graph.AddNode(w.graph.node_position(static_cast<roadnet::NodeId>(n)) * 2.0);
  }
  for (size_t e = 0; e < w.graph.edge_count(); ++e) {
    const roadnet::Edge& edge = w.graph.edge(static_cast<roadnet::EdgeId>(e));
    ASSERT_TRUE(scaled.graph.AddEdge(edge.a, edge.b, edge.road_class).ok());
  }
  scaled.locator = std::make_unique<roadnet::EdgeLocator>(&scaled.graph, 440.0);
  for (const Poi& p : w.pois) scaled.pois.push_back({p.id, p.position * 2.0});
  scaled.server = std::make_unique<SpatialServer>(scaled.pois);

  roadnet::ch::Hierarchy hier = roadnet::ch::Hierarchy::Build(scaled.graph);
  roadnet::ch::BucketOracle ch_oracle(&hier);
  SnnnProcessor base_snnn(&w.graph, w.locator.get());
  SnnnProcessor scaled_snnn(&scaled.graph, scaled.locator.get(), {}, &ch_oracle);
  Rng rng(92);
  for (int trial = 0; trial < 8; ++trial) {
    Vec2 q{rng.Uniform(200, 1600), rng.Uniform(200, 1600)};
    ServerNnSource sa(w.server.get(), q);
    ServerNnSource sb(scaled.server.get(), q * 2.0);
    std::vector<NetworkRankedPoi> a = base_snnn.Execute(q, 4, &sa);
    std::vector<NetworkRankedPoi> b = scaled_snnn.Execute(q * 2.0, 4, &sb);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "trial " << trial << " rank " << i;
      EXPECT_EQ(a[i].euclidean * 2.0, b[i].euclidean) << "trial " << trial;
      EXPECT_EQ(a[i].network * 2.0, b[i].network) << "trial " << trial;
    }
  }
}

TEST(SnnnOracleTest, MetamorphicFarPoiInsertion) {
  // Adding a POI far outside every candidate ring must not disturb the
  // top-k under either backend.
  NetworkWorld w = MakeWorld(95, 20, 1600.0, 220.0);
  roadnet::ch::Hierarchy hier = roadnet::ch::Hierarchy::Build(w.graph);
  roadnet::ch::BucketOracle ch_oracle(&hier);
  SnnnProcessor dijkstra_snnn(&w.graph, w.locator.get());
  SnnnProcessor ch_snnn(&w.graph, w.locator.get(), {}, &ch_oracle);
  Vec2 q{800, 800};
  ServerNnSource sa(w.server.get(), q);
  std::vector<NetworkRankedPoi> before = dijkstra_snnn.Execute(q, 3, &sa);

  std::vector<Poi> extended = w.pois;
  Vec2 corner_raw{1590.0, 1590.0};
  extended.push_back(
      {static_cast<PoiId>(extended.size()), w.graph.PositionOf(w.locator->Nearest(corner_raw))});
  SpatialServer bigger(extended);
  ServerNnSource sb(&bigger, q);
  ServerNnSource sc(&bigger, q);
  ExpectIdenticalResults(before, dijkstra_snnn.Execute(q, 3, &sb), "far-poi dijkstra");
  ExpectIdenticalResults(before, ch_snnn.Execute(q, 3, &sc), "far-poi ch");
}

}  // namespace
}  // namespace senn::core
