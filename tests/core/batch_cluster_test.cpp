// Cluster formation and the degenerate corners of the batch path: empty
// batches, singletons, tiles of identical points, straddled tile
// boundaries, k = 0 requests, option clamps, and determinism of the formed
// clusters under shuffled input.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "src/core/batch_server.h"
#include "tests/core/batch_test_util.h"

namespace senn::core {
namespace {

using batch_testing::BatchWorld;
using batch_testing::BuildBatchWorld;
using batch_testing::ExpectSameNeighbors;
using batch_testing::WorldOptions;

/// A content signature of one request — everything that feeds the answer,
/// printed bit-exactly (%a) so signature equality is content equality.
std::string Signature(const BatchQuery& bq) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%a,%a,k%d,c%d,l%d:%a,i%lld,u%d:%a", bq.q.x,
                bq.q.y, bq.k, bq.already_certified, bq.bounds.lower.has_value(),
                bq.bounds.lower.value_or(0.0),
                static_cast<long long>(bq.bounds.lower_id_cut),
                bq.bounds.upper.has_value(), bq.bounds.upper.value_or(0.0));
  return buf;
}

std::vector<std::vector<std::string>> ClusterSignatures(
    const std::vector<BatchQuery>& queries,
    const std::vector<std::vector<size_t>>& clusters) {
  std::vector<std::vector<std::string>> out;
  for (const std::vector<size_t>& cluster : clusters) {
    std::vector<std::string> sig;
    for (size_t i : cluster) sig.push_back(Signature(queries[i]));
    out.push_back(std::move(sig));
  }
  return out;
}

TEST(BatchClusterTest, EmptyBatchYieldsNothing) {
  BatchWorld w = BuildBatchWorld(0, WorldOptions{});
  BatchServer batch(w.server.get());
  EXPECT_TRUE(batch.FormClusters({}).empty());
  EXPECT_TRUE(batch.AnswerBatch({}).empty());
  EXPECT_EQ(batch.stats().queries, 0u);
  EXPECT_EQ(batch.stats().clusters, 0u);
}

TEST(BatchClusterTest, SingleQueryIsASingletonDelegation) {
  BatchWorld w = BuildBatchWorld(1, WorldOptions{});
  BatchQuery bq;
  bq.q = {300.0, 400.0};
  bq.k = 4;
  BatchServer batch(w.server.get());
  std::vector<std::vector<size_t>> clusters = batch.FormClusters({bq});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], std::vector<size_t>{0});
  std::vector<ServerReply> replies = batch.AnswerBatch({bq});
  ASSERT_EQ(replies.size(), 1u);
  ExpectSameNeighbors(replies[0].neighbors,
                      w.server->QueryKnn(bq.q, bq.k).neighbors, 1, 0, "singleton");
  EXPECT_EQ(batch.stats().singleton_queries, 1u);
  EXPECT_EQ(batch.stats().batched_queries, 0u);
  EXPECT_EQ(batch.stats().clusters, 0u);
}

TEST(BatchClusterTest, IdenticalPointsChunkByMaxGroup) {
  BatchWorld w = BuildBatchWorld(2, WorldOptions{});
  BatchQuery bq;
  bq.q = {500.0, 500.0};
  bq.k = 3;
  std::vector<BatchQuery> queries(10, bq);
  BatchOptions options;
  options.max_group = 4;
  BatchServer batch(w.server.get(), options);
  std::vector<std::vector<size_t>> clusters = batch.FormClusters(queries);
  std::vector<size_t> sizes;
  std::vector<bool> seen(queries.size(), false);
  for (const std::vector<size_t>& cluster : clusters) {
    sizes.push_back(cluster.size());
    for (size_t i : cluster) {
      ASSERT_LT(i, seen.size());
      EXPECT_FALSE(seen[i]) << "index " << i << " in two clusters";
      seen[i] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  EXPECT_EQ(sizes, (std::vector<size_t>{4, 4, 2}));

  // Ten identical requests produce ten identical replies, each equal to the
  // sequential answer.
  std::vector<ServerReply> replies = batch.AnswerBatch(queries);
  const ServerReply sequential = w.server->QueryKnn(bq.q, bq.k);
  for (size_t i = 0; i < replies.size(); ++i) {
    ExpectSameNeighbors(replies[i].neighbors, sequential.neighbors, 2, i,
                        "identical points");
  }
  // Every chunk — including the size-2 remainder — is a shared traversal.
  EXPECT_EQ(batch.stats().batched_queries, 10u);
  EXPECT_EQ(batch.stats().singleton_queries, 0u);
  EXPECT_EQ(batch.stats().clusters, 3u);
}

// Tiling is floor(p / cell): a pair 0.2 m apart straddling a boundary lands
// in different tiles (proximity clustering is tile-grained, not radial), a
// point EXACTLY on the boundary belongs to the higher tile, and negative
// coordinates floor toward -inf (not toward zero).
TEST(BatchClusterTest, TileBoundaryStraddlingAndNegativeCoordinates) {
  BatchWorld w = BuildBatchWorld(3, WorldOptions{});
  BatchOptions options;
  options.cluster_cell_m = 100.0;
  options.max_group = 8;
  BatchServer batch(w.server.get(), options);

  auto at = [](double x) {
    BatchQuery bq;
    bq.q = {x, 50.0};
    bq.k = 2;
    return bq;
  };
  // 99.9 | 100.0 100.1 — the boundary point shares the HIGHER tile.
  std::vector<std::vector<size_t>> clusters =
      batch.FormClusters({at(99.9), at(100.0), at(100.1)});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], std::vector<size_t>{0});
  ASSERT_EQ(clusters[1].size(), 2u);

  // -50 and +50 are 100 m apart AND in different tiles (-1 vs 0); a
  // truncation bug would fold them both into tile 0.
  clusters = batch.FormClusters({at(-50.0), at(50.0)});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size(), 1u);
  EXPECT_EQ(clusters[1].size(), 1u);

  // Straddling pairs still get correct (sequential-identical) answers.
  std::vector<BatchQuery> queries = {at(99.9), at(100.0), at(100.1)};
  std::vector<ServerReply> replies = batch.AnswerBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameNeighbors(replies[i].neighbors,
                        w.server->QueryKnn(queries[i].q, queries[i].k).neighbors,
                        3, i, "straddle");
  }
}

// k = 0 and already_certified >= k are degenerate requests: an empty reply,
// also when the request rides inside a shared traversal next to live ones.
TEST(BatchClusterTest, DegenerateRequestsInsideASharedTraversal) {
  BatchWorld w = BuildBatchWorld(4, WorldOptions{});
  BatchQuery live;
  live.q = {250.0, 250.0};
  live.k = 5;
  BatchQuery zero = live;
  zero.k = 0;
  BatchQuery certified = live;
  certified.bounds.lower = 1e9;  // everything certified: nothing to return
  certified.already_certified = live.k;

  BatchOptions options;
  options.max_group = 8;
  BatchServer batch(w.server.get(), options);
  std::vector<ServerReply> replies = batch.AnswerBatch({zero, live, certified});
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_TRUE(replies[0].neighbors.empty());
  ExpectSameNeighbors(replies[1].neighbors, w.server->QueryKnn(live.q, live.k).neighbors,
                      4, 1, "live beside degenerate");
  EXPECT_TRUE(replies[2].neighbors.empty());
  EXPECT_EQ(batch.stats().batched_queries, 3u);
}

TEST(BatchClusterTest, FormedClustersAreInvariantUnderInputShuffle) {
  for (int trial = 0; trial < 20; ++trial) {
    WorldOptions wopt;
    wopt.hotspot = true;
    BatchWorld w = BuildBatchWorld(trial, wopt);
    BatchOptions options;
    options.cluster_cell_m = 250.0;
    options.max_group = 4;
    BatchServer batch(w.server.get(), options);
    const std::vector<std::vector<std::string>> baseline =
        ClusterSignatures(w.queries, batch.FormClusters(w.queries));

    Rng rng = Rng(0xC1u).Stream("cluster-shuffle", static_cast<uint64_t>(trial));
    std::vector<BatchQuery> shuffled = w.queries;
    rng.Shuffle(&shuffled);
    EXPECT_EQ(ClusterSignatures(shuffled, batch.FormClusters(shuffled)), baseline)
        << "trial " << trial;
  }
}

TEST(BatchClusterTest, OptionClampsKeepTheBatchWellFormed) {
  BatchWorld w = BuildBatchWorld(5, WorldOptions{});
  BatchQuery bq;
  bq.q = {100.0, 100.0};
  bq.k = 3;

  // max_group < 1 clamps to 1: everything is a singleton.
  BatchOptions options;
  options.max_group = 0;
  BatchServer ones(w.server.get(), options);
  std::vector<std::vector<size_t>> clusters = ones.FormClusters({bq, bq, bq});
  ASSERT_EQ(clusters.size(), 3u);
  for (const std::vector<size_t>& cluster : clusters) EXPECT_EQ(cluster.size(), 1u);

  // cluster_cell_m <= 0 clamps to 1 m; identical points still share a tile.
  options = BatchOptions{};
  options.cluster_cell_m = -5.0;
  BatchServer tiny(w.server.get(), options);
  clusters = tiny.FormClusters({bq, bq});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 2u);
  std::vector<ServerReply> replies = tiny.AnswerBatch({bq, bq});
  ExpectSameNeighbors(replies[0].neighbors, w.server->QueryKnn(bq.q, bq.k).neighbors,
                      5, 0, "clamped cell");
  ExpectSameNeighbors(replies[1].neighbors, replies[0].neighbors, 5, 1, "clamped cell");
}

}  // namespace
}  // namespace senn::core
