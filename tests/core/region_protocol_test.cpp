// Tests of the region-aware server protocol extension (SennOptions::
// ship_region + SpatialServer::QueryKnnWithRegion) and its geometric
// primitive MbrCoveredByDiskUnion.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/core/senn.h"
#include "src/geom/region.h"

namespace senn::core {
namespace {

using geom::Circle;
using geom::Mbr;
using geom::Vec2;

TEST(MbrCoverTest, SingleDiskCoversViaFarthestCorner) {
  Mbr box{{0, 0}, {2, 2}};
  EXPECT_TRUE(geom::MbrCoveredByDiskUnion(box, {Circle({1, 1}, 1.5)}));
  EXPECT_FALSE(geom::MbrCoveredByDiskUnion(box, {Circle({1, 1}, 1.0)}));
}

TEST(MbrCoverTest, TwoHalvesCover) {
  Mbr box{{0, 0}, {4, 2}};
  // Neither disk alone covers (farthest corner > radius), together they do.
  std::vector<Circle> cover{Circle({1, 1}, 2.4), Circle({3, 1}, 2.4)};
  for (const Circle& c : cover) {
    EXPECT_FALSE(geom::MbrCoveredByDiskUnion(box, {c}));
  }
  EXPECT_TRUE(geom::MbrCoveredByDiskUnion(box, cover));
}

TEST(MbrCoverTest, GapDetected) {
  Mbr box{{0, 0}, {4, 2}};
  std::vector<Circle> cover{Circle({0.5, 1}, 1.2), Circle({3.5, 1}, 1.2)};
  EXPECT_FALSE(geom::MbrCoveredByDiskUnion(box, cover));
}

TEST(MbrCoverTest, EmptyBoxAndEmptyCover) {
  EXPECT_TRUE(geom::MbrCoveredByDiskUnion(Mbr::Empty(), {Circle({0, 0}, 1)}));
  EXPECT_FALSE(geom::MbrCoveredByDiskUnion(Mbr{{0, 0}, {1, 1}}, {}));
}

TEST(MbrCoverTest, ConservativeNeverFalselyCovers) {
  // Sampling oracle: if any sample point in the box is uncovered, the test
  // must not report covered.
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    Vec2 lo{rng.Uniform(-2, 0), rng.Uniform(-2, 0)};
    Vec2 hi{lo.x + rng.Uniform(0.5, 3), lo.y + rng.Uniform(0.5, 3)};
    Mbr box{lo, hi};
    std::vector<Circle> cover;
    for (int i = 0; i < 3; ++i) {
      cover.push_back(Circle({rng.Uniform(-2, 2), rng.Uniform(-2, 2)},
                             rng.Uniform(0.5, 2.5)));
    }
    if (!geom::MbrCoveredByDiskUnion(box, cover)) continue;
    for (int s = 0; s < 200; ++s) {
      Vec2 p{rng.Uniform(lo.x, hi.x), rng.Uniform(lo.y, hi.y)};
      bool inside = false;
      for (const Circle& c : cover) inside |= c.Contains(p, 1e-9);
      ASSERT_TRUE(inside) << "trial " << trial;
    }
  }
}

// ---- end-to-end region protocol ----

std::vector<Poi> RandomPois(int n, Rng* rng, double extent) {
  std::vector<Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

std::vector<RankedPoi> TrueKnn(const std::vector<Poi>& pois, Vec2 q, int k) {
  std::vector<RankedPoi> all;
  for (const Poi& p : pois) all.push_back({p.id, p.position, geom::Dist(q, p.position)});
  std::sort(all.begin(), all.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return a.distance < b.distance; });
  if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

TEST(RegionProtocolTest, ExactAcrossRandomWorlds) {
  Rng rng(2);
  int region_used = 0;
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<Poi> pois = RandomPois(static_cast<int>(rng.UniformInt(10, 60)), &rng, 600);
    SpatialServer server(pois);
    SennOptions options;
    options.server_request_k = 8;
    options.ship_region = true;
    SennProcessor senn(&server, options);
    Vec2 q{rng.Uniform(150, 450), rng.Uniform(150, 450)};
    std::vector<CachedResult> caches;
    for (int i = 0; i < 4; ++i) {
      CachedResult c;
      c.query_location = {q.x + rng.Uniform(-200, 200), q.y + rng.Uniform(-200, 200)};
      c.neighbors = server.QueryKnn(c.query_location, 8).neighbors;
      caches.push_back(std::move(c));
    }
    server.ResetStats();
    std::vector<const CachedResult*> peers;
    for (const CachedResult& c : caches) peers.push_back(&c);
    int k = static_cast<int>(rng.UniformInt(1, 6));
    SennOutcome outcome = senn.Execute(q, k, peers);
    std::vector<RankedPoi> truth = TrueKnn(pois, q, k);
    ASSERT_EQ(outcome.neighbors.size(), truth.size()) << "trial " << trial;
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(outcome.neighbors[i].id, truth[i].id)
          << "trial " << trial << " rank " << i << " ("
          << ResolutionName(outcome.resolution) << ")";
    }
    if (outcome.resolution == Resolution::kServer && outcome.bounds.upper.has_value()) {
      ++region_used;
    }
  }
  EXPECT_GT(region_used, 5);  // the region path must actually be exercised
}

TEST(RegionProtocolTest, MatchesScalarProtocolResults) {
  Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Poi> pois = RandomPois(50, &rng, 600);
    SpatialServer server(pois);
    Vec2 q{rng.Uniform(150, 450), rng.Uniform(150, 450)};
    std::vector<CachedResult> caches;
    for (int i = 0; i < 3; ++i) {
      CachedResult c;
      c.query_location = {q.x + rng.Uniform(-250, 250), q.y + rng.Uniform(-250, 250)};
      c.neighbors = server.QueryKnn(c.query_location, 8).neighbors;
      caches.push_back(std::move(c));
    }
    std::vector<const CachedResult*> peers;
    for (const CachedResult& c : caches) peers.push_back(&c);
    SennOptions scalar;
    scalar.server_request_k = 8;
    SennOptions region = scalar;
    region.ship_region = true;
    SennOutcome a = SennProcessor(&server, scalar).Execute(q, 4, peers);
    SennOutcome b = SennProcessor(&server, region).Execute(q, 4, peers);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id) << "trial " << trial;
    }
  }
}

TEST(RegionProtocolTest, RegionQueryExcludesKnownAndKeepsRest) {
  Rng rng(4);
  std::vector<Poi> pois = RandomPois(200, &rng, 1000);
  SpatialServer server(pois);
  Vec2 q{500, 500};
  std::vector<geom::Circle> region{Circle({480, 500}, 120.0)};
  const double horizon = 300.0;
  const int k = 10;
  ServerReply reply = server.QueryKnnWithRegion(q, k, horizon, region);
  for (const RankedPoi& n : reply.neighbors) {
    EXPECT_LE(n.distance, horizon);
    EXPECT_FALSE(region[0].Contains(n.position)) << "known POI returned";
  }
  // Ascending order, at most k results.
  EXPECT_LE(reply.neighbors.size(), static_cast<size_t>(k));
  for (size_t i = 1; i < reply.neighbors.size(); ++i) {
    EXPECT_GE(reply.neighbors[i].distance, reply.neighbors[i - 1].distance);
  }
  // The merge contract: region POIs (client-known) plus the reply contain
  // the exact top-k within the horizon.
  std::vector<RankedPoi> truth = TrueKnn(pois, q, k);
  for (const RankedPoi& t : truth) {
    if (t.distance > horizon) continue;
    bool known = region[0].Contains(t.position);
    bool returned = std::any_of(reply.neighbors.begin(), reply.neighbors.end(),
                                [&](const RankedPoi& n) { return n.id == t.id; });
    EXPECT_TRUE(known || returned) << "top-k POI " << t.id << " unreachable by merge";
  }
}

TEST(RegionProtocolTest, RegionPruningSavesPagesOnCoveredLeaves) {
  // Small fan-out => small leaves => peer disks can cover whole subtrees.
  Rng rng(5);
  std::vector<Poi> pois = RandomPois(4000, &rng, 1000);
  rtree::RStarTree::Options opts;
  opts.max_entries = 8;
  opts.min_entries = 3;
  SpatialServer server(pois, opts);
  // Isolate the pruning mechanism: the identical search once with the
  // region and once without (empty region), same k and horizon. A large
  // known disk overlapping the search area lets the saturated search skip
  // covered subtrees it would otherwise read.
  uint64_t with_region = 0, without_region = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 q{rng.Uniform(300, 700), rng.Uniform(300, 700)};
    std::vector<geom::Circle> region{Circle({q.x + 100, q.y}, 200.0)};
    ServerReply a = server.QueryKnnWithRegion(q, 60, 250.0, region);
    ServerReply b = server.QueryKnnWithRegion(q, 60, 250.0, {});
    with_region += a.einn_accesses.total();
    without_region += b.einn_accesses.total();
  }
  EXPECT_LT(with_region, without_region);
}

}  // namespace
}  // namespace senn::core
