// Randomized differential test of the SENN correctness core against a
// brute-force O(n) oracle.
//
// Over a few hundred randomized worlds (POI set, peer caches, query point,
// k) it checks the three exactness contracts the whole system rests on:
//   * the server's (E)INN answer is exactly the oracle's top-k;
//   * every kNN_single certain set (Lemmas 3.1/3.2) is a correct,
//     correctly-ranked prefix of the oracle ranking;
//   * every kNN_multiple certain set (Lemma 3.8) is such a prefix too;
//   * the full SENN pipeline returns exactly the oracle's top-k and caches
//     only certain (oracle-prefix) objects.
// Peer caches are built the way the system builds them — as exact server
// answers at the peer's past query location — so the CachedResult invariant
// holds by construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/multi_peer.h"
#include "src/core/senn.h"
#include "src/core/server.h"
#include "src/core/single_peer.h"

namespace senn::core {
namespace {

constexpr int kTrials = 220;
constexpr double kSide = 1000.0;

/// One randomized world, fully determined by (master seed, trial index).
struct World {
  std::vector<Poi> pois;
  std::unique_ptr<SpatialServer> server;
  std::vector<CachedResult> peer_caches;
  geom::Vec2 q;
  int k = 1;
};

World BuildWorld(int trial) {
  World w;
  Rng rng = Rng(0xD1FFu).Stream("oracle-trial", static_cast<uint64_t>(trial));
  int n = static_cast<int>(rng.UniformInt(1, 80));
  w.pois.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    w.pois.push_back({i, {rng.Uniform(0, kSide), rng.Uniform(0, kSide)}});
  }
  w.server = std::make_unique<SpatialServer>(w.pois);
  w.q = {rng.Uniform(0, kSide), rng.Uniform(0, kSide)};
  w.k = static_cast<int>(rng.UniformInt(1, 10));

  // Peer caches: exact server answers at random past query locations, with
  // random sizes — precisely what cache policies 1 and 2 produce. Clustering
  // half of them near Q makes single/multi-peer certification actually fire.
  int peers = static_cast<int>(rng.UniformInt(0, 8));
  for (int p = 0; p < peers; ++p) {
    geom::Vec2 loc;
    if (rng.Bernoulli(0.5)) {
      loc = {w.q.x + rng.Uniform(-80.0, 80.0), w.q.y + rng.Uniform(-80.0, 80.0)};
    } else {
      loc = {rng.Uniform(0, kSide), rng.Uniform(0, kSide)};
    }
    int size = static_cast<int>(rng.UniformInt(1, 12));
    CachedResult cached;
    cached.query_location = loc;
    cached.neighbors = w.server->QueryKnn(loc, size).neighbors;
    if (!cached.Empty()) w.peer_caches.push_back(std::move(cached));
  }
  return w;
}

/// Lattice worlds: POIs on a regular integer grid, query snapped to a
/// lattice point or a cell center, peer locations snapped to lattice points.
/// Axis-aligned spacing makes whole families of POIs *exactly* co-distant
/// from Q (4-way and 8-way ties), so any comparator that breaks ties by
/// arrival or exploration order — instead of the (distance, id) rank — gets
/// caught here rather than in the (measure-zero) random worlds above.
World BuildLatticeWorld(int trial) {
  World w;
  Rng rng = Rng(0x1A77CEu).Stream("lattice-trial", static_cast<uint64_t>(trial));
  const double spacing = 60.0;
  const int cols = static_cast<int>(rng.UniformInt(3, 8));
  const int rows = static_cast<int>(rng.UniformInt(3, 8));
  int id = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      w.pois.push_back({id++, {c * spacing, r * spacing}});
    }
  }
  w.server = std::make_unique<SpatialServer>(w.pois);
  const int qc = static_cast<int>(rng.UniformInt(0, static_cast<uint64_t>(cols - 1)));
  const int qr = static_cast<int>(rng.UniformInt(0, static_cast<uint64_t>(rows - 1)));
  w.q = {qc * spacing, qr * spacing};
  if (rng.Bernoulli(0.5)) {
    // Cell center: the four cell corners are exactly co-distant.
    w.q.x += spacing / 2.0;
    w.q.y += spacing / 2.0;
  }
  w.k = static_cast<int>(rng.UniformInt(1, 10));

  int peers = static_cast<int>(rng.UniformInt(0, 6));
  for (int p = 0; p < peers; ++p) {
    // Peer past-query location: a lattice point at most two cells from Q's
    // cell, so its certain disk overlaps Q and the tied POIs.
    int pc = qc + static_cast<int>(rng.UniformInt(0, 4)) - 2;
    int pr = qr + static_cast<int>(rng.UniformInt(0, 4)) - 2;
    pc = std::max(0, std::min(cols - 1, pc));
    pr = std::max(0, std::min(rows - 1, pr));
    geom::Vec2 loc{pc * spacing, pr * spacing};
    int size = static_cast<int>(rng.UniformInt(1, 12));
    CachedResult cached;
    cached.query_location = loc;
    cached.neighbors = w.server->QueryKnn(loc, size).neighbors;
    if (!cached.Empty()) w.peer_caches.push_back(std::move(cached));
  }
  return w;
}

std::vector<RankedPoi> OracleKnn(const std::vector<Poi>& pois, geom::Vec2 q) {
  std::vector<RankedPoi> ranked;
  ranked.reserve(pois.size());
  for (const Poi& p : pois) ranked.push_back({p.id, p.position, geom::Dist(q, p.position)});
  std::sort(ranked.begin(), ranked.end(), [](const RankedPoi& a, const RankedPoi& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  });
  return ranked;
}

void ExpectRankedPrefix(const std::vector<RankedPoi>& prefix,
                        const std::vector<RankedPoi>& oracle, const char* what, int trial) {
  ASSERT_LE(prefix.size(), oracle.size()) << what << ", trial " << trial;
  for (size_t i = 0; i < prefix.size(); ++i) {
    ASSERT_EQ(prefix[i].id, oracle[i].id)
        << what << ", trial " << trial << ": wrong POI at rank " << i;
    EXPECT_NEAR(prefix[i].distance, oracle[i].distance, 1e-9)
        << what << ", trial " << trial << ", rank " << i;
  }
}

std::vector<const CachedResult*> CachePointers(const World& w) {
  std::vector<const CachedResult*> ptrs;
  for (const CachedResult& c : w.peer_caches) ptrs.push_back(&c);
  return ptrs;
}

TEST(OracleDiffTest, ServerKnnMatchesBruteForce) {
  for (int trial = 0; trial < kTrials; ++trial) {
    World w = BuildWorld(trial);
    std::vector<RankedPoi> oracle = OracleKnn(w.pois, w.q);
    ServerReply reply = w.server->QueryKnn(w.q, w.k);
    size_t expect = std::min<size_t>(static_cast<size_t>(w.k), w.pois.size());
    ASSERT_EQ(reply.neighbors.size(), expect) << "trial " << trial;
    ExpectRankedPrefix(reply.neighbors, oracle, "server kNN", trial);
  }
}

TEST(OracleDiffTest, SinglePeerCertainSetsAreOraclePrefixes) {
  int certified_somewhere = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    World w = BuildWorld(trial);
    std::vector<RankedPoi> oracle = OracleKnn(w.pois, w.q);
    for (const CachedResult& peer : w.peer_caches) {
      CandidateHeap heap(w.k);
      VerifyStats stats = VerifySinglePeer(w.q, peer, &heap);
      EXPECT_EQ(stats.candidates, static_cast<int>(peer.neighbors.size()));
      ExpectRankedPrefix(heap.certain(), oracle, "kNN_single certain set", trial);
      certified_somewhere += heap.certain().empty() ? 0 : 1;
    }
  }
  // The generator must actually exercise Lemma 3.2, not just vacuous cases.
  EXPECT_GT(certified_somewhere, kTrials / 4);
}

TEST(OracleDiffTest, MultiPeerCertainSetsAreOraclePrefixes) {
  int certified = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    World w = BuildWorld(trial);
    if (w.peer_caches.size() < 2) continue;
    std::vector<RankedPoi> oracle = OracleKnn(w.pois, w.q);
    std::vector<const CachedResult*> peers = CachePointers(w);
    for (CoverageBackend backend : {CoverageBackend::kExactDisk,
                                    CoverageBackend::kPolygonized}) {
      CandidateHeap heap(w.k);
      MultiPeerOptions options;
      options.backend = backend;
      VerifyMultiPeer(w.q, peers, &heap, options);
      ExpectRankedPrefix(heap.certain(), oracle, "kNN_multiple certain set", trial);
      certified += heap.certain().empty() ? 0 : 1;
    }
  }
  EXPECT_GT(certified, kTrials / 8);
}

TEST(OracleDiffTest, SennPipelineMatchesBruteForce) {
  int peer_answered = 0, server_answered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    World w = BuildWorld(trial);
    std::vector<RankedPoi> oracle = OracleKnn(w.pois, w.q);
    SennOptions options;
    options.server_request_k = std::max(w.k, 10);
    SennProcessor processor(w.server.get(), options);
    SennOutcome outcome = processor.Execute(w.q, w.k, CachePointers(w));
    ASSERT_NE(outcome.resolution, Resolution::kUncertain);
    size_t expect = std::min<size_t>(static_cast<size_t>(w.k), w.pois.size());
    ASSERT_EQ(outcome.neighbors.size(), expect) << "trial " << trial;
    ExpectRankedPrefix(outcome.neighbors, oracle, "SENN answer", trial);
    // Whatever the host would cache afterwards must be certain, i.e. again
    // an exact rank prefix (the CachedResult invariant for the next query).
    ExpectRankedPrefix(outcome.certain_prefix, oracle, "SENN certain prefix", trial);
    (outcome.resolution == Resolution::kServer ? server_answered : peer_answered) += 1;
  }
  // Both resolution families must occur, or the test lost its teeth.
  EXPECT_GT(peer_answered, 10);
  EXPECT_GT(server_answered, 10);
}

TEST(OracleDiffTest, LatticeWorldServerKnnMatchesBruteForce) {
  for (int trial = 0; trial < kTrials; ++trial) {
    World w = BuildLatticeWorld(trial);
    std::vector<RankedPoi> oracle = OracleKnn(w.pois, w.q);
    ServerReply reply = w.server->QueryKnn(w.q, w.k);
    size_t expect = std::min<size_t>(static_cast<size_t>(w.k), w.pois.size());
    ASSERT_EQ(reply.neighbors.size(), expect) << "lattice trial " << trial;
    ExpectRankedPrefix(reply.neighbors, oracle, "lattice server kNN", trial);
  }
}

TEST(OracleDiffTest, LatticeWorldCertainSetsAreOraclePrefixes) {
  int single_certified = 0, multi_certified = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    World w = BuildLatticeWorld(trial);
    std::vector<RankedPoi> oracle = OracleKnn(w.pois, w.q);
    for (const CachedResult& peer : w.peer_caches) {
      CandidateHeap heap(w.k);
      VerifySinglePeer(w.q, peer, &heap);
      ExpectRankedPrefix(heap.certain(), oracle, "lattice kNN_single certain set", trial);
      single_certified += heap.certain().empty() ? 0 : 1;
    }
    if (w.peer_caches.size() >= 2) {
      CandidateHeap heap(w.k);
      VerifyMultiPeer(w.q, CachePointers(w), &heap, MultiPeerOptions{});
      ExpectRankedPrefix(heap.certain(), oracle, "lattice kNN_multiple certain set", trial);
      multi_certified += heap.certain().empty() ? 0 : 1;
    }
  }
  // The lattice generator must actually produce certifying configurations.
  EXPECT_GT(single_certified, kTrials / 8);
  EXPECT_GT(multi_certified, kTrials / 16);
}

TEST(OracleDiffTest, LatticeWorldSennPipelineMatchesBruteForce) {
  int peer_answered = 0, server_answered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    World w = BuildLatticeWorld(trial);
    std::vector<RankedPoi> oracle = OracleKnn(w.pois, w.q);
    SennOptions options;
    options.server_request_k = std::max(w.k, 10);
    SennProcessor processor(w.server.get(), options);
    SennOutcome outcome = processor.Execute(w.q, w.k, CachePointers(w));
    ASSERT_NE(outcome.resolution, Resolution::kUncertain);
    size_t expect = std::min<size_t>(static_cast<size_t>(w.k), w.pois.size());
    ASSERT_EQ(outcome.neighbors.size(), expect) << "lattice trial " << trial;
    ExpectRankedPrefix(outcome.neighbors, oracle, "lattice SENN answer", trial);
    ExpectRankedPrefix(outcome.certain_prefix, oracle, "lattice SENN certain prefix", trial);
    (outcome.resolution == Resolution::kServer ? server_answered : peer_answered) += 1;
  }
  EXPECT_GT(peer_answered, 5);
  EXPECT_GT(server_answered, 5);
}

}  // namespace
}  // namespace senn::core
