#include "src/core/server.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace senn::core {
namespace {

using geom::Vec2;

std::vector<Poi> RandomPois(int n, Rng* rng, double extent = 1000.0) {
  std::vector<Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

std::vector<RankedPoi> TrueKnn(const std::vector<Poi>& pois, Vec2 q, int k) {
  std::vector<RankedPoi> all;
  for (const Poi& p : pois) all.push_back({p.id, p.position, geom::Dist(q, p.position)});
  std::sort(all.begin(), all.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return a.distance < b.distance; });
  if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

TEST(SpatialServerTest, BuildsTreeWithPaperBranchingFactor) {
  Rng rng(1);
  SpatialServer server(RandomPois(500, &rng));
  EXPECT_EQ(server.poi_count(), 500u);
  EXPECT_EQ(server.tree().options().max_entries, 30);
  EXPECT_TRUE(server.tree().CheckInvariants().ok());
}

TEST(SpatialServerTest, PlainQueryMatchesBruteForce) {
  Rng rng(2);
  std::vector<Poi> pois = RandomPois(800, &rng);
  SpatialServer server(pois);
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    ServerReply reply = server.QueryKnn(q, 7);
    std::vector<RankedPoi> want = TrueKnn(pois, q, 7);
    ASSERT_EQ(reply.neighbors.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(reply.neighbors[i].id, want[i].id) << "trial " << trial << " rank " << i;
    }
  }
}

TEST(SpatialServerTest, BoundsProduceSameMergedAnswer) {
  Rng rng(3);
  std::vector<Poi> pois = RandomPois(800, &rng);
  SpatialServer server(pois);
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    std::vector<RankedPoi> want = TrueKnn(pois, q, 10);
    int certified = 4;
    rtree::PruneBounds bounds;
    bounds.lower = want[static_cast<size_t>(certified - 1)].distance;
    bounds.upper = want.back().distance;
    ServerReply reply = server.QueryKnn(q, 10, bounds, certified);
    ASSERT_EQ(reply.neighbors.size(), static_cast<size_t>(10 - certified));
    for (size_t i = 0; i < reply.neighbors.size(); ++i) {
      EXPECT_EQ(reply.neighbors[i].id, want[i + static_cast<size_t>(certified)].id);
    }
  }
}

TEST(SpatialServerTest, EinnNeverAccessesMorePagesThanInn) {
  Rng rng(4);
  std::vector<Poi> pois = RandomPois(3000, &rng);
  SpatialServer server(pois);
  for (int trial = 0; trial < 50; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    std::vector<RankedPoi> want = TrueKnn(pois, q, 12);
    rtree::PruneBounds bounds;
    bounds.lower = want[5].distance;
    bounds.upper = want.back().distance;
    ServerReply reply = server.QueryKnn(q, 12, bounds, 6);
    EXPECT_LE(reply.einn_accesses.total(), reply.inn_accesses.total()) << trial;
  }
  EXPECT_LE(server.stats().einn.total(), server.stats().inn.total());
  EXPECT_EQ(server.stats().queries, 50u);
}

TEST(SpatialServerTest, KLargerThanDataSet) {
  Rng rng(5);
  std::vector<Poi> pois = RandomPois(5, &rng);
  SpatialServer server(pois);
  ServerReply reply = server.QueryKnn({0, 0}, 10);
  EXPECT_EQ(reply.neighbors.size(), 5u);
}

TEST(SpatialServerTest, AlreadyCertifiedExceedsK) {
  Rng rng(6);
  SpatialServer server(RandomPois(100, &rng));
  ServerReply reply = server.QueryKnn({500, 500}, 3, {}, 5);
  EXPECT_TRUE(reply.neighbors.empty());
}

TEST(SpatialServerTest, ResetStatsClearsCounters) {
  Rng rng(7);
  SpatialServer server(RandomPois(100, &rng));
  server.QueryKnn({1, 1}, 3);
  EXPECT_GT(server.stats().queries, 0u);
  server.ResetStats();
  EXPECT_EQ(server.stats().queries, 0u);
  EXPECT_EQ(server.stats().inn.total(), 0u);
}

}  // namespace
}  // namespace senn::core
