// Metamorphic properties of the batched answering path.
//
// The differential battery (batch_diff_test) pins the batch path to the
// sequential one; this file pins it to ITSELF under input transformations
// whose effect on the output is known exactly:
//   * permuting the request vector permutes the replies and nothing else;
//   * splitting one AnswerBatch call into several (any grouping) changes no
//     per-query reply — answers are pure functions of (query, world);
//   * on inclusion-property worlds (tiles of content-identical queries, so
//     a cluster's shared traversal IS one member's traversal), total logical
//     page charges are monotone non-increasing in the batch size;
//   * one shared traversal charges each visited node ONCE: per-query miss
//     counts partition the cluster's unique-miss count (the double-charge
//     regression), shared + private misses add up, and every pin is
//     returned to the pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/core/batch_server.h"
#include "tests/core/batch_test_util.h"

namespace senn::core {
namespace {

using batch_testing::BatchWorld;
using batch_testing::BuildBatchWorld;
using batch_testing::ExpectSameNeighbors;
using batch_testing::WorldOptions;

constexpr int kTrials = 40;

WorldOptions Variant(int trial, bool hotspot) {
  WorldOptions options;
  options.hotspot = hotspot;
  options.paged = trial % 2 == 1;
  options.count_mode =
      trial % 4 < 2 ? rtree::AccessCountMode::kOnExpand : rtree::AccessCountMode::kOnEnqueue;
  return options;
}

TEST(BatchMetamorphicTest, ShuffledInputPermutesRepliesOnly) {
  for (int trial = 0; trial < kTrials; ++trial) {
    BatchWorld w = BuildBatchWorld(trial, Variant(trial, true));
    BatchOptions options;
    options.cluster_cell_m = 250.0;
    options.max_group = 8;
    BatchServer batch(w.server.get(), options);
    std::vector<ServerReply> baseline = batch.AnswerBatch(w.queries);

    Rng rng = Rng(0x5489u).Stream("perm-trial", static_cast<uint64_t>(trial));
    for (int round = 0; round < 3; ++round) {
      std::vector<int32_t> perm(w.queries.size());
      std::iota(perm.begin(), perm.end(), 0);
      rng.Shuffle(&perm);
      std::vector<BatchQuery> shuffled;
      shuffled.reserve(w.queries.size());
      for (int32_t i : perm) shuffled.push_back(w.queries[static_cast<size_t>(i)]);
      BatchServer batch2(w.server.get(), options);
      std::vector<ServerReply> replies = batch2.AnswerBatch(shuffled);
      for (size_t pos = 0; pos < perm.size(); ++pos) {
        ExpectSameNeighbors(replies[pos].neighbors,
                            baseline[static_cast<size_t>(perm[pos])].neighbors, trial,
                            pos, "shuffled batch");
      }
    }
  }
}

TEST(BatchMetamorphicTest, SplittingABatchChangesNoReply) {
  for (int trial = 0; trial < kTrials; ++trial) {
    BatchWorld w = BuildBatchWorld(trial, Variant(trial, true));
    if (w.queries.size() < 2) continue;
    BatchOptions options;
    options.cluster_cell_m = 250.0;
    options.max_group = 8;
    BatchServer batch(w.server.get(), options);
    std::vector<ServerReply> merged = batch.AnswerBatch(w.queries);

    Rng rng = Rng(0x511Du).Stream("split-trial", static_cast<uint64_t>(trial));
    const size_t cut = 1 + rng.NextIndex(w.queries.size() - 1);
    std::vector<BatchQuery> head(w.queries.begin(),
                                 w.queries.begin() + static_cast<ptrdiff_t>(cut));
    std::vector<BatchQuery> tail(w.queries.begin() + static_cast<ptrdiff_t>(cut),
                                 w.queries.end());
    BatchServer batch2(w.server.get(), options);
    std::vector<ServerReply> head_replies = batch2.AnswerBatch(head);
    std::vector<ServerReply> tail_replies = batch2.AnswerBatch(tail);
    for (size_t i = 0; i < head.size(); ++i) {
      ExpectSameNeighbors(head_replies[i].neighbors, merged[i].neighbors, trial, i,
                          "split batch head");
    }
    for (size_t i = 0; i < tail.size(); ++i) {
      ExpectSameNeighbors(tail_replies[i].neighbors, merged[cut + i].neighbors, trial,
                          cut + i, "split batch tail");
    }
  }
}

// Inclusion-property worlds: every tile holds copies of ONE request, so a
// cluster's shared traversal visits exactly the node set of a single member
// and total logical charges are (number of clusters) x (per-traversal
// pages) — provably non-increasing in max_group.
TEST(BatchMetamorphicTest, PageChargesMonotoneNonIncreasingInBatchSize) {
  for (int trial = 0; trial < kTrials; ++trial) {
    WorldOptions wopt = Variant(trial, false);
    BatchWorld w = BuildBatchWorld(trial, wopt);
    Rng rng = Rng(0x30107u).Stream("mono-trial", static_cast<uint64_t>(trial));
    std::vector<BatchQuery> queries;
    const int groups = static_cast<int>(rng.UniformInt(1, 4));
    for (int g = 0; g < groups; ++g) {
      BatchQuery bq;
      bq.q = {rng.Uniform(0, batch_testing::kSide), rng.Uniform(0, batch_testing::kSide)};
      bq.k = static_cast<int>(rng.UniformInt(1, 10));
      const int copies = static_cast<int>(rng.UniformInt(1, 9));
      for (int c = 0; c < copies; ++c) queries.push_back(bq);
    }

    uint64_t previous_total = ~0ull;
    for (int max_group : {1, 2, 4, 8, 16, 32}) {
      BatchOptions options;
      options.cluster_cell_m = 250.0;
      options.max_group = max_group;
      BatchServer batch(w.server.get(), options);
      std::vector<ServerReply> replies = batch.AnswerBatch(queries);
      uint64_t total = 0;
      for (const ServerReply& r : replies) total += r.einn_accesses.total();
      EXPECT_LE(total, previous_total)
          << "trial " << trial << ", max_group " << max_group;
      previous_total = total;
    }
  }
}

// The double-charge regression: one cluster of co-located queries over a
// cold unbounded pool. Every page the shared traversal touches faults in
// exactly once, so the pool's miss delta IS the unique-page count — and the
// per-query miss counters, the cluster counter, and the shared/private
// split must all agree with it. Afterwards the pool holds zero pins.
TEST(BatchMetamorphicTest, SharedTraversalChargesEachUniquePageOnce) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng = Rng(0xDC4A6u).Stream("charge-trial", static_cast<uint64_t>(trial));
    const int n = static_cast<int>(rng.UniformInt(20, 160));
    std::vector<Poi> pois;
    for (int i = 0; i < n; ++i) {
      pois.push_back({i, {rng.Uniform(0, batch_testing::kSide),
                          rng.Uniform(0, batch_testing::kSide)}});
    }
    const rtree::AccessCountMode mode = trial % 2 == 0
                                            ? rtree::AccessCountMode::kOnExpand
                                            : rtree::AccessCountMode::kOnEnqueue;
    storage::BufferPoolOptions pool;
    pool.capacity_pages = 0;  // unbounded: every unique page misses once
    SpatialServer server(pois, SpatialServer::DefaultTreeOptions(), mode, pool);

    geom::Vec2 center{rng.Uniform(100, batch_testing::kSide - 100),
                      rng.Uniform(100, batch_testing::kSide - 100)};
    std::vector<BatchQuery> queries;
    const int m = static_cast<int>(rng.UniformInt(2, 8));
    for (int i = 0; i < m; ++i) {
      BatchQuery bq;
      bq.q = {center.x + rng.Uniform(-40.0, 40.0), center.y + rng.Uniform(-40.0, 40.0)};
      bq.k = static_cast<int>(rng.UniformInt(1, 10));
      queries.push_back(bq);
    }

    BatchOptions options;
    options.cluster_cell_m = 10.0 * batch_testing::kSide;  // one tile for all
    options.max_group = m;
    BatchServer batch(&server, options);
    const storage::BufferPoolStats before = server.pager()->pool().stats();
    std::vector<ServerReply> replies = batch.AnswerBatch(queries);
    const storage::BufferPoolStats& after = server.pager()->pool().stats();

    ASSERT_EQ(batch.stats().clusters, 1u) << "trial " << trial;
    const rtree::AccessCounter& cluster = batch.stats().shared_traversal;
    const uint64_t unique_pages_faulted = after.misses - before.misses;
    uint64_t per_query_misses = 0;
    uint64_t per_query_pages = 0;
    for (const ServerReply& r : replies) {
      per_query_misses += r.einn_accesses.misses();
      per_query_pages += r.einn_accesses.total();
    }
    // Per-query attribution partitions the cluster's charges: the sums
    // reproduce the cluster counter exactly, and the cluster's misses are
    // the pool's faults — each visited node charged once, never per query.
    EXPECT_EQ(per_query_misses, cluster.misses()) << "trial " << trial;
    EXPECT_EQ(per_query_pages, cluster.total()) << "trial " << trial;
    EXPECT_EQ(cluster.misses(), unique_pages_faulted) << "trial " << trial;
    EXPECT_EQ(cluster.shared_misses + cluster.private_misses, cluster.misses())
        << "trial " << trial;
    // A cold unbounded pool faults every LOGICAL charge that is a first
    // touch; a second charge of the same node would be a hit, so equality
    // of total charges and unique faults means no node was charged twice.
    EXPECT_EQ(cluster.total(), unique_pages_faulted) << "trial " << trial;
    EXPECT_EQ(server.pager()->pool().pinned_pages(), 0u) << "trial " << trial;
  }
}

}  // namespace
}  // namespace senn::core
