// Cross-module integration tests: the full stack (road network + snapped
// POIs + mobility + caches + SENN + SNNN + server) wired together outside
// the Simulator, exercising the public API the way a downstream application
// would.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/cache/nn_cache.h"
#include "src/common/rng.h"
#include "src/core/senn.h"
#include "src/core/snnn.h"
#include "src/mobility/road_mover.h"
#include "src/roadnet/generator.h"
#include "src/roadnet/locate.h"

namespace senn {
namespace {

class FullStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    roadnet::RoadNetworkConfig cfg;
    cfg.area_side_m = 3000;
    cfg.block_spacing_m = 250;
    graph_ = roadnet::GenerateRoadNetwork(cfg, &rng);
    locator_ = std::make_unique<roadnet::EdgeLocator>(&graph_, 250.0);
    for (int i = 0; i < 40; ++i) {
      geom::Vec2 raw{rng.Uniform(0, 3000), rng.Uniform(0, 3000)};
      pois_.push_back({i, graph_.PositionOf(locator_->Nearest(raw))});
    }
    server_ = std::make_unique<core::SpatialServer>(pois_);
    core::SennOptions options;
    options.server_request_k = 8;
    senn_ = std::make_unique<core::SennProcessor>(server_.get(), options);
  }

  std::vector<core::RankedPoi> Truth(geom::Vec2 q, int k) {
    std::vector<core::RankedPoi> all;
    for (const core::Poi& p : pois_) {
      all.push_back({p.id, p.position, geom::Dist(q, p.position)});
    }
    std::sort(all.begin(), all.end(), [](const core::RankedPoi& a, const core::RankedPoi& b) {
      return a.distance < b.distance;
    });
    all.resize(static_cast<size_t>(k));
    return all;
  }

  roadnet::Graph graph_;
  std::unique_ptr<roadnet::EdgeLocator> locator_;
  std::vector<core::Poi> pois_;
  std::unique_ptr<core::SpatialServer> server_;
  std::unique_ptr<core::SennProcessor> senn_;
};

TEST_F(FullStackTest, DrivingHostsShareAndStayExact) {
  // Three cars drive around; each queries periodically, caches its certain
  // prefix, and serves as a peer for the others. Every answer must be the
  // exact kNN, and over time some queries must resolve without the server.
  Rng rng(7);
  roadnet::Router router(&graph_);
  mobility::RoadMoverConfig mcfg;
  mcfg.nominal_speed_mps = 15;
  mcfg.mean_pause_s = 5;
  mcfg.max_trip_m = 2000;
  std::vector<std::unique_ptr<mobility::RoadMover>> cars;
  std::vector<cache::NnCache> caches(3, cache::NnCache(8));
  for (int i = 0; i < 3; ++i) {
    cars.push_back(std::make_unique<mobility::RoadMover>(
        mcfg, &graph_, &router, static_cast<roadnet::NodeId>(i * 7), &rng));
  }
  int peer_answers = 0, total = 0;
  for (int step = 0; step < 600; ++step) {
    for (auto& car : cars) car->Advance(1.0, &rng);
    if (step % 20 != 19) continue;
    int who = step / 20 % 3;
    geom::Vec2 q = cars[static_cast<size_t>(who)]->position();
    std::vector<const core::CachedResult*> peers;
    for (int i = 0; i < 3; ++i) {
      // Everyone is "in range" in this toy world.
      const core::CachedResult* c = caches[static_cast<size_t>(i)].Get();
      if (c != nullptr && !c->Empty()) peers.push_back(c);
    }
    core::SennOutcome out = senn_->Execute(q, 3, peers);
    ++total;
    peer_answers += out.resolution != core::Resolution::kServer;
    // Exactness at every step.
    std::vector<core::RankedPoi> truth = Truth(q, 3);
    ASSERT_EQ(out.neighbors.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(out.neighbors[i].id, truth[i].id) << "step " << step;
    }
    core::CachedResult to_cache;
    to_cache.query_location = q;
    to_cache.neighbors = out.certain_prefix;
    caches[static_cast<size_t>(who)].Store(std::move(to_cache));
  }
  EXPECT_EQ(total, 30);
  EXPECT_GT(peer_answers, 0);  // sharing must kick in
}

TEST_F(FullStackTest, SnnnOverSennSourceIsExact) {
  Rng rng(8);
  core::SnnnProcessor snnn(&graph_, locator_.get());
  for (int trial = 0; trial < 10; ++trial) {
    geom::Vec2 q{rng.Uniform(300, 2700), rng.Uniform(300, 2700)};
    // Warm peer colocated with the query point.
    core::CachedResult peer;
    peer.query_location = q;
    peer.neighbors = server_->QueryKnn(q, 8).neighbors;
    core::SennNnSource source(senn_.get(), q, {&peer});
    std::vector<core::NetworkRankedPoi> got = snnn.Execute(q, 3, &source);
    ASSERT_EQ(got.size(), 3u);
    // Brute-force network kNN.
    roadnet::NetworkDistanceOracle oracle(&graph_, locator_->Nearest(q));
    std::vector<double> nds;
    for (const core::Poi& p : pois_) {
      nds.push_back(oracle.DistanceTo(locator_->Nearest(p.position)));
    }
    std::sort(nds.begin(), nds.end());
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(got[static_cast<size_t>(i)].network, nds[static_cast<size_t>(i)], 1e-6)
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST_F(FullStackTest, CachePolicyKeepsExactPrefixThroughChains) {
  // Sharing chains: host A caches from the server, B verifies from A and
  // caches its (thinner) prefix, C verifies from B. Every link must keep
  // the exact-rank-prefix invariant, or C's answers would silently rot.
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    geom::Vec2 a_pos{rng.Uniform(500, 2500), rng.Uniform(500, 2500)};
    core::CachedResult a;
    a.query_location = a_pos;
    a.neighbors = server_->QueryKnn(a_pos, 8).neighbors;

    geom::Vec2 b_pos = a_pos + geom::Vec2{rng.Uniform(-80, 80), rng.Uniform(-80, 80)};
    core::SennOutcome b_out = senn_->Execute(b_pos, 3, {&a});
    if (b_out.resolution == core::Resolution::kServer) continue;
    core::CachedResult b;
    b.query_location = b_pos;
    b.neighbors = b_out.certain_prefix;

    geom::Vec2 c_pos = b_pos + geom::Vec2{rng.Uniform(-40, 40), rng.Uniform(-40, 40)};
    core::SennOutcome c_out = senn_->Execute(c_pos, 2, {&b});
    std::vector<core::RankedPoi> truth = Truth(c_pos, 2);
    ASSERT_EQ(c_out.neighbors.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(c_out.neighbors[i].id, truth[i].id)
          << "trial " << trial << " (resolution "
          << core::ResolutionName(c_out.resolution) << ")";
    }
  }
}

}  // namespace
}  // namespace senn
