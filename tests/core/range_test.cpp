// Tests of the sharing-based range query extension (core/range.h):
// completeness and exactness across resolution paths, pruning correctness,
// and the PrunedCircleQuery server primitive.
#include "src/core/range.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.h"

namespace senn::core {
namespace {

using geom::Vec2;

std::vector<Poi> RandomPois(int n, Rng* rng, double extent) {
  std::vector<Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

std::set<PoiId> TrueRange(const std::vector<Poi>& pois, Vec2 q, double r) {
  std::set<PoiId> ids;
  for (const Poi& p : pois) {
    if (geom::Dist(q, p.position) <= r) ids.insert(p.id);
  }
  return ids;
}

CachedResult MakePeerCache(SpatialServer* server, Vec2 at, int cache_size) {
  CachedResult c;
  c.query_location = at;
  c.neighbors = server->QueryKnn(at, cache_size).neighbors;
  return c;
}

std::set<PoiId> Ids(const std::vector<RankedPoi>& pois) {
  std::set<PoiId> ids;
  for (const RankedPoi& p : pois) ids.insert(p.id);
  return ids;
}

TEST(PrunedCircleQueryTest, PoiAtQueryPointReturnedWithZeroInner) {
  // Regression: with inner = 0, a POI exactly at the query point must still
  // be returned (strict d > inner would drop it).
  SpatialServer server({{7, {100, 100}}});
  std::vector<RankedPoi> got = PrunedCircleQuery(server.tree(), {100, 100}, 50.0, 0.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 7);
  EXPECT_DOUBLE_EQ(got[0].distance, 0.0);
}

TEST(PrunedCircleQueryTest, MatchesBruteForceWithoutInner) {
  Rng rng(1);
  std::vector<Poi> pois = RandomPois(500, &rng, 1000);
  SpatialServer server(pois);
  for (int trial = 0; trial < 40; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    double r = rng.Uniform(20, 300);
    std::vector<RankedPoi> got = PrunedCircleQuery(server.tree(), q, r, 0.0);
    EXPECT_EQ(Ids(got), TrueRange(pois, q, r)) << "trial " << trial;
    // Ascending distances.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_GE(got[i].distance, got[i - 1].distance);
    }
  }
}

TEST(PrunedCircleQueryTest, InnerDiskExcludedExactly) {
  Rng rng(2);
  std::vector<Poi> pois = RandomPois(500, &rng, 1000);
  SpatialServer server(pois);
  for (int trial = 0; trial < 40; ++trial) {
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    double r = rng.Uniform(100, 300);
    double inner = rng.Uniform(0, r);
    std::vector<RankedPoi> got = PrunedCircleQuery(server.tree(), q, r, inner);
    std::set<PoiId> expected;
    for (const Poi& p : pois) {
      double d = geom::Dist(q, p.position);
      if (d <= r && d > inner) expected.insert(p.id);
    }
    EXPECT_EQ(Ids(got), expected) << "trial " << trial;
  }
}

TEST(PrunedCircleQueryTest, InnerPruningSavesPages) {
  Rng rng(3);
  std::vector<Poi> pois = RandomPois(5000, &rng, 1000);
  rtree::RStarTree::Options opts;
  opts.max_entries = 8;
  opts.min_entries = 3;
  rtree::RStarTree tree(opts);
  for (const Poi& p : pois) tree.Insert(p.position, p.id);
  uint64_t pruned_total = 0, plain_total = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 q{rng.Uniform(200, 800), rng.Uniform(200, 800)};
    rtree::AccessCounter pruned, plain;
    PrunedCircleQuery(tree, q, 200.0, 150.0, &pruned);
    PrunedCircleQuery(tree, q, 200.0, 0.0, &plain);
    pruned_total += pruned.total();
    plain_total += plain.total();
  }
  EXPECT_LT(pruned_total, plain_total);
}

TEST(RangeProcessorTest, CoveredByOnePeerResolvesLocally) {
  Rng rng(4);
  std::vector<Poi> pois = RandomPois(60, &rng, 1000);
  SpatialServer server(pois);
  RangeProcessor range(&server);
  Vec2 q{500, 500};
  CachedResult peer = MakePeerCache(&server, q, 20);  // big disk around q
  double r = peer.Radius() * 0.4;                     // well inside
  server.ResetStats();
  RangeOutcome out = range.Execute(q, r, {&peer});
  EXPECT_EQ(out.resolution, RangeResolution::kSinglePeer);
  EXPECT_EQ(Ids(out.pois), TrueRange(pois, q, r));
  EXPECT_EQ(server.stats().queries, 0u);
  EXPECT_DOUBLE_EQ(out.certain_radius, r);
}

TEST(RangeProcessorTest, NoPeersGoesToServer) {
  Rng rng(5);
  std::vector<Poi> pois = RandomPois(60, &rng, 1000);
  SpatialServer server(pois);
  RangeProcessor range(&server);
  RangeOutcome out = range.Execute({400, 400}, 250.0, {});
  EXPECT_EQ(out.resolution, RangeResolution::kServer);
  EXPECT_EQ(Ids(out.pois), TrueRange(pois, {400, 400}, 250.0));
  EXPECT_DOUBLE_EQ(out.certain_radius, 0.0);
}

TEST(RangeProcessorTest, AlwaysCompleteAcrossRandomWorlds) {
  Rng rng(6);
  int local = 0, remote = 0;
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<Poi> pois = RandomPois(static_cast<int>(rng.UniformInt(10, 80)), &rng, 600);
    SpatialServer server(pois);
    RangeProcessor range(&server);
    Vec2 q{rng.Uniform(150, 450), rng.Uniform(150, 450)};
    std::vector<CachedResult> caches;
    int peer_count = static_cast<int>(rng.UniformInt(0, 5));
    for (int i = 0; i < peer_count; ++i) {
      caches.push_back(MakePeerCache(
          &server, {q.x + rng.Uniform(-150, 150), q.y + rng.Uniform(-150, 150)},
          static_cast<int>(rng.UniformInt(3, 12))));
    }
    std::vector<const CachedResult*> peers;
    for (const CachedResult& c : caches) peers.push_back(&c);
    double r = rng.Uniform(20, 250);
    RangeOutcome out = range.Execute(q, r, peers);
    EXPECT_EQ(Ids(out.pois), TrueRange(pois, q, r)) << "trial " << trial;
    // Results sorted ascending.
    for (size_t i = 1; i < out.pois.size(); ++i) {
      EXPECT_GE(out.pois[i].distance, out.pois[i - 1].distance);
    }
    (out.resolution == RangeResolution::kServer ? remote : local) += 1;
  }
  EXPECT_GT(local, 0);   // sharing resolves some queries entirely
  EXPECT_GT(remote, 0);  // and some need the server
}

TEST(RangeProcessorTest, CertainRadiusNeverExceedsQueryRadius) {
  Rng rng(7);
  std::vector<Poi> pois = RandomPois(50, &rng, 600);
  SpatialServer server(pois);
  RangeProcessor range(&server);
  for (int trial = 0; trial < 40; ++trial) {
    Vec2 q{rng.Uniform(100, 500), rng.Uniform(100, 500)};
    CachedResult peer = MakePeerCache(
        &server, {q.x + rng.Uniform(-100, 100), q.y + rng.Uniform(-100, 100)}, 8);
    double r = rng.Uniform(50, 400);
    RangeOutcome out = range.Execute(q, r, {&peer});
    EXPECT_GE(out.certain_radius, 0.0);
    EXPECT_LE(out.certain_radius, r + 1e-9);
    if (out.resolution != RangeResolution::kServer) {
      EXPECT_DOUBLE_EQ(out.certain_radius, r);
    }
  }
}

TEST(RangeProcessorTest, PrunedNeverCostsMoreThanPlain) {
  Rng rng(8);
  std::vector<Poi> pois = RandomPois(2000, &rng, 1000);
  SpatialServer server(pois);
  RangeProcessor range(&server);
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 q{rng.Uniform(200, 800), rng.Uniform(200, 800)};
    CachedResult peer = MakePeerCache(
        &server, {q.x + rng.Uniform(-30, 30), q.y + rng.Uniform(-30, 30)}, 20);
    RangeOutcome out = range.Execute(q, 300.0, {&peer});
    if (out.resolution == RangeResolution::kServer) {
      EXPECT_LE(out.pruned_accesses.total(), out.plain_accesses.total());
    }
  }
}

TEST(RangeProcessorTest, ZeroRadiusIsEmptyOrSelf) {
  Rng rng(9);
  std::vector<Poi> pois = RandomPois(20, &rng, 100);
  SpatialServer server(pois);
  RangeProcessor range(&server);
  RangeOutcome out = range.Execute({50, 50}, 0.0, {});
  EXPECT_EQ(Ids(out.pois), TrueRange(pois, {50, 50}, 0.0));
}

TEST(RangeResolutionTest, Names) {
  EXPECT_STREQ(RangeResolutionName(RangeResolution::kSinglePeer), "single-peer");
  EXPECT_STREQ(RangeResolutionName(RangeResolution::kServer), "server");
}

}  // namespace
}  // namespace senn::core
