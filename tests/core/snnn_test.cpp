// Tests of Algorithm 2 (SNNN): network-distance kNN via IER over SENN,
// verified against a brute-force network-distance oracle.
#include "src/core/snnn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/roadnet/generator.h"

namespace senn::core {
namespace {

using geom::Vec2;

struct NetworkWorld {
  roadnet::Graph graph;
  std::unique_ptr<roadnet::EdgeLocator> locator;
  std::vector<Poi> pois;
  std::unique_ptr<SpatialServer> server;
};

NetworkWorld MakeWorld(uint64_t seed, int poi_count, double side = 2000.0) {
  NetworkWorld w;
  Rng rng(seed);
  roadnet::RoadNetworkConfig cfg;
  cfg.area_side_m = side;
  cfg.block_spacing_m = 200.0;
  w.graph = roadnet::GenerateRoadNetwork(cfg, &rng);
  w.locator = std::make_unique<roadnet::EdgeLocator>(&w.graph, 200.0);
  for (int i = 0; i < poi_count; ++i) {
    // POIs snapped onto the network (gas stations sit on roads).
    Vec2 raw{rng.Uniform(0, side), rng.Uniform(0, side)};
    roadnet::EdgePoint ep = w.locator->Nearest(raw);
    w.pois.push_back({i, w.graph.PositionOf(ep)});
  }
  w.server = std::make_unique<SpatialServer>(w.pois);
  return w;
}

// Brute force: network distance from q to every POI, sorted ascending.
std::vector<NetworkRankedPoi> TrueNetworkKnn(const NetworkWorld& w, Vec2 q, int k) {
  roadnet::EdgePoint qp = w.locator->Nearest(q);
  roadnet::NetworkDistanceOracle oracle(&w.graph, qp);
  std::vector<NetworkRankedPoi> all;
  for (const Poi& p : w.pois) {
    double nd = oracle.DistanceTo(w.locator->Nearest(p.position));
    all.push_back({p.id, p.position, geom::Dist(q, p.position), nd});
  }
  std::sort(all.begin(), all.end(), [](const NetworkRankedPoi& a, const NetworkRankedPoi& b) {
    return a.network < b.network;
  });
  if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

TEST(SnnnTest, MatchesBruteForceOnServerSource) {
  NetworkWorld w = MakeWorld(11, 40);
  SnnnProcessor snnn(&w.graph, w.locator.get());
  Rng rng(12);
  for (int trial = 0; trial < 25; ++trial) {
    Vec2 q{rng.Uniform(200, 1800), rng.Uniform(200, 1800)};
    ServerNnSource source(w.server.get(), q);
    std::vector<NetworkRankedPoi> got = snnn.Execute(q, 4, &source);
    std::vector<NetworkRankedPoi> want = TrueNetworkKnn(w, q, 4);
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (size_t i = 0; i < want.size(); ++i) {
      // Compare by network distance (ids may differ only on exact ties).
      EXPECT_NEAR(got[i].network, want[i].network, 1e-6)
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST(SnnnTest, NetworkDistanceAtLeastEuclidean) {
  NetworkWorld w = MakeWorld(13, 30);
  SnnnProcessor snnn(&w.graph, w.locator.get());
  Rng rng(14);
  for (int trial = 0; trial < 10; ++trial) {
    Vec2 q{rng.Uniform(200, 1800), rng.Uniform(200, 1800)};
    ServerNnSource source(w.server.get(), q);
    for (const NetworkRankedPoi& n : snnn.Execute(q, 5, &source)) {
      // The query point itself may sit off-network (snap distance), so allow
      // that slack on the lower bound.
      double snap = 0;
      w.locator->Nearest(q, &snap);
      EXPECT_GE(n.network + snap + 1e-6, n.euclidean) << "trial " << trial;
    }
  }
}

TEST(SnnnTest, NetworkOrderDiffersFromEuclideanOrderSometimes) {
  // The whole point of SNNN: Euclidean rank != network rank. Check the
  // phenomenon occurs on a grid network.
  NetworkWorld w = MakeWorld(15, 60);
  SnnnProcessor snnn(&w.graph, w.locator.get());
  Rng rng(16);
  int differs = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Vec2 q{rng.Uniform(200, 1800), rng.Uniform(200, 1800)};
    ServerNnSource source(w.server.get(), q);
    std::vector<NetworkRankedPoi> by_network = snnn.Execute(q, 3, &source);
    ServerReply euclid = w.server->QueryKnn(q, 3);
    ASSERT_EQ(by_network.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      if (by_network[static_cast<size_t>(i)].id !=
          euclid.neighbors[static_cast<size_t>(i)].id) {
        ++differs;
        break;
      }
    }
  }
  EXPECT_GT(differs, 0);
}

TEST(SnnnTest, SennSourceMatchesServerSource) {
  NetworkWorld w = MakeWorld(17, 40);
  SnnnProcessor snnn(&w.graph, w.locator.get());
  SennOptions options;
  options.server_request_k = 12;
  SennProcessor senn(w.server.get(), options);
  Rng rng(18);
  for (int trial = 0; trial < 15; ++trial) {
    Vec2 q{rng.Uniform(200, 1800), rng.Uniform(200, 1800)};
    // A colocated warm peer: SENN answers locally for small k.
    CachedResult peer;
    peer.query_location = q;
    ServerReply warm = w.server->QueryKnn(q, 12);
    peer.neighbors = warm.neighbors;
    SennNnSource senn_source(&senn, q, {&peer});
    ServerNnSource server_source(w.server.get(), q);
    std::vector<NetworkRankedPoi> a = snnn.Execute(q, 3, &senn_source);
    std::vector<NetworkRankedPoi> b = snnn.Execute(q, 3, &server_source);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].network, b[i].network, 1e-6) << "trial " << trial << " rank " << i;
    }
  }
}

TEST(SnnnTest, KZeroReturnsEmpty) {
  NetworkWorld w = MakeWorld(19, 10);
  SnnnProcessor snnn(&w.graph, w.locator.get());
  ServerNnSource source(w.server.get(), {100, 100});
  EXPECT_TRUE(snnn.Execute({100, 100}, 0, &source).empty());
}

TEST(SnnnTest, KLargerThanPoiCount) {
  NetworkWorld w = MakeWorld(20, 5);
  SnnnProcessor snnn(&w.graph, w.locator.get());
  ServerNnSource source(w.server.get(), {500, 500});
  std::vector<NetworkRankedPoi> got = snnn.Execute({500, 500}, 10, &source);
  EXPECT_EQ(got.size(), 5u);
  // Ascending network order.
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(got[i].network, got[i - 1].network);
  }
}

TEST(SnnnTest, EmptyRoadNetworkYieldsNothing) {
  roadnet::Graph empty_graph;
  roadnet::EdgeLocator locator(&empty_graph);
  SnnnProcessor snnn(&empty_graph, &locator);
  SpatialServer server({{0, {1, 1}}});
  ServerNnSource source(&server, {0, 0});
  EXPECT_TRUE(snnn.Execute({0, 0}, 3, &source).empty());
}

}  // namespace
}  // namespace senn::core
