// End-to-end tests of Algorithm 1 (SENN): correctness of the final answer
// regardless of resolution path, resolution classification, bound shipping,
// and the ablation switches.
#include "src/core/senn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace senn::core {
namespace {

using geom::Vec2;

std::vector<Poi> RandomPois(int n, Rng* rng, double extent) {
  std::vector<Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

std::vector<RankedPoi> TrueKnn(const std::vector<Poi>& pois, Vec2 q, int k) {
  std::vector<RankedPoi> all;
  for (const Poi& p : pois) all.push_back({p.id, p.position, geom::Dist(q, p.position)});
  std::sort(all.begin(), all.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return a.distance < b.distance; });
  if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

CachedResult MakePeerCache(const std::vector<Poi>& pois, Vec2 at, int cache_size) {
  CachedResult r;
  r.query_location = at;
  r.neighbors = TrueKnn(pois, at, cache_size);
  return r;
}

void ExpectSameIds(const std::vector<RankedPoi>& got, const std::vector<RankedPoi>& want,
                   const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << label << " rank " << i;
  }
}

TEST(SennTest, NoPeersGoesToServerAndIsExact) {
  Rng rng(1);
  std::vector<Poi> pois = RandomPois(200, &rng, 1000);
  SpatialServer server(pois);
  SennOptions options;
  options.server_request_k = 10;
  SennProcessor senn(&server, options);
  Vec2 q{321, 456};
  SennOutcome outcome = senn.Execute(q, 3, {});
  EXPECT_EQ(outcome.resolution, Resolution::kServer);
  EXPECT_EQ(outcome.heap_state, HeapState::kEmpty);
  ExpectSameIds(outcome.neighbors, TrueKnn(pois, q, 3), "server path");
  // Cache policy 2: the certain prefix covers the full server request.
  EXPECT_EQ(outcome.certain_prefix.size(), 10u);
  EXPECT_FALSE(outcome.bounds.lower.has_value());
  EXPECT_FALSE(outcome.bounds.upper.has_value());
}

TEST(SennTest, ColocatedPeerSolvesLocally) {
  Rng rng(2);
  std::vector<Poi> pois = RandomPois(200, &rng, 1000);
  SpatialServer server(pois);
  SennProcessor senn(&server, SennOptions{});
  Vec2 q{500, 500};
  CachedResult peer = MakePeerCache(pois, q, 10);
  SennOutcome outcome = senn.Execute(q, 3, {&peer});
  EXPECT_EQ(outcome.resolution, Resolution::kSinglePeer);
  ExpectSameIds(outcome.neighbors, TrueKnn(pois, q, 3), "single-peer path");
  EXPECT_EQ(server.stats().queries, 0u);  // the server was never contacted
}

TEST(SennTest, AnswerAlwaysExactAcrossRandomWorlds) {
  Rng rng(3);
  int by_single = 0, by_multi = 0, by_server = 0;
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<Poi> pois = RandomPois(static_cast<int>(rng.UniformInt(5, 60)), &rng, 600);
    SpatialServer server(pois);
    SennOptions options;
    options.server_request_k = 8;
    SennProcessor senn(&server, options);
    Vec2 q{rng.Uniform(100, 500), rng.Uniform(100, 500)};
    std::vector<CachedResult> caches;
    int peer_count = static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < peer_count; ++i) {
      caches.push_back(MakePeerCache(
          pois, {q.x + rng.Uniform(-150, 150), q.y + rng.Uniform(-150, 150)}, 8));
    }
    std::vector<const CachedResult*> peers;
    for (const CachedResult& c : caches) peers.push_back(&c);
    int k = static_cast<int>(rng.UniformInt(1, 5));
    SennOutcome outcome = senn.Execute(q, k, peers);
    ExpectSameIds(outcome.neighbors, TrueKnn(pois, q, k), "random world");
    switch (outcome.resolution) {
      case Resolution::kSinglePeer:
        ++by_single;
        break;
      case Resolution::kMultiPeer:
        ++by_multi;
        break;
      case Resolution::kServer:
        ++by_server;
        break;
      case Resolution::kUncertain:
        FAIL() << "uncertain disabled";
    }
    // The cached prefix must itself be an exact rank prefix.
    std::vector<RankedPoi> truth =
        TrueKnn(pois, q, static_cast<int>(outcome.certain_prefix.size()));
    for (size_t i = 0; i < outcome.certain_prefix.size(); ++i) {
      EXPECT_EQ(outcome.certain_prefix[i].id, truth[i].id) << "prefix rank " << i;
    }
  }
  // All three resolution paths must be exercised by the mix.
  EXPECT_GT(by_single, 0);
  EXPECT_GT(by_multi, 0);
  EXPECT_GT(by_server, 0);
}

TEST(SennTest, BoundsShippedMatchHeapState) {
  Rng rng(4);
  std::vector<Poi> pois = RandomPois(300, &rng, 1000);
  SpatialServer server(pois);
  SennOptions options;
  options.server_request_k = 6;
  SennProcessor senn(&server, options);
  Vec2 q{500, 500};
  // A peer somewhat away: typically certifies some but not all.
  CachedResult peer = MakePeerCache(pois, {540, 500}, 6);
  SennOutcome outcome = senn.Execute(q, 6, {&peer});
  if (outcome.resolution == Resolution::kServer) {
    if (!outcome.certain_prefix.empty() &&
        (outcome.heap_state == HeapState::kFullMixed ||
         outcome.heap_state == HeapState::kPartialMixed ||
         outcome.heap_state == HeapState::kPartialCertainOnly)) {
      EXPECT_TRUE(outcome.bounds.lower.has_value());
    }
    EXPECT_LE(outcome.einn_accesses.total(), outcome.inn_accesses.total());
  }
}

TEST(SennTest, AcceptUncertainReturnsFullHeap) {
  Rng rng(5);
  std::vector<Poi> pois = RandomPois(100, &rng, 1000);
  SpatialServer server(pois);
  SennOptions options;
  options.server_request_k = 4;
  options.accept_uncertain = true;
  SennProcessor senn(&server, options);
  Vec2 q{0, 0};
  // Far peer: uncertain candidates only; heap (capacity 4) fills with them.
  CachedResult peer = MakePeerCache(pois, {900, 900}, 6);
  SennOutcome outcome = senn.Execute(q, 4, {&peer});
  EXPECT_EQ(outcome.resolution, Resolution::kUncertain);
  EXPECT_EQ(outcome.neighbors.size(), 4u);
  EXPECT_EQ(server.stats().queries, 0u);
}

TEST(SennTest, DisablingMultiPeerFallsBackToServer) {
  Rng rng(6);
  int multi_with = 0, multi_without = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Poi> pois = RandomPois(40, &rng, 500);
    SpatialServer server(pois);
    Vec2 q{rng.Uniform(150, 350), rng.Uniform(150, 350)};
    std::vector<CachedResult> caches;
    for (int i = 0; i < 4; ++i) {
      caches.push_back(MakePeerCache(
          pois, {q.x + rng.Uniform(-60, 60), q.y + rng.Uniform(-60, 60)}, 6));
    }
    std::vector<const CachedResult*> peers;
    for (const CachedResult& c : caches) peers.push_back(&c);
    SennOptions with;
    with.server_request_k = 6;
    SennOptions without = with;
    without.enable_multi_peer = false;
    SennOutcome a = SennProcessor(&server, with).Execute(q, 4, peers);
    SennOutcome b = SennProcessor(&server, without).Execute(q, 4, peers);
    multi_with += a.resolution == Resolution::kMultiPeer;
    multi_without += b.resolution == Resolution::kMultiPeer;
    // Both must still be exact.
    ExpectSameIds(a.neighbors, TrueKnn(pois, q, 4), "with multi");
    ExpectSameIds(b.neighbors, TrueKnn(pois, q, 4), "without multi");
  }
  EXPECT_GT(multi_with, 0);
  EXPECT_EQ(multi_without, 0);
}

TEST(SennTest, KBelowServerRequestGetsFatCachePrefix) {
  Rng rng(7);
  std::vector<Poi> pois = RandomPois(100, &rng, 1000);
  SpatialServer server(pois);
  SennOptions options;
  options.server_request_k = 10;
  SennProcessor senn(&server, options);
  SennOutcome outcome = senn.Execute({500, 500}, 2, {});
  EXPECT_EQ(outcome.neighbors.size(), 2u);
  EXPECT_EQ(outcome.certain_prefix.size(), 10u);  // policy 2
}

TEST(SennTest, EmptyDatabase) {
  SpatialServer server({});
  SennProcessor senn(&server, SennOptions{});
  SennOutcome outcome = senn.Execute({0, 0}, 3, {});
  EXPECT_EQ(outcome.resolution, Resolution::kServer);
  EXPECT_TRUE(outcome.neighbors.empty());
}

TEST(SennTest, PeerOrderingAblationStillExact) {
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Poi> pois = RandomPois(40, &rng, 500);
    SpatialServer server(pois);
    Vec2 q{rng.Uniform(100, 400), rng.Uniform(100, 400)};
    std::vector<CachedResult> caches;
    for (int i = 0; i < 4; ++i) {
      caches.push_back(MakePeerCache(
          pois, {rng.Uniform(0, 500), rng.Uniform(0, 500)}, 6));
    }
    std::vector<const CachedResult*> peers;
    for (const CachedResult& c : caches) peers.push_back(&c);
    SennOptions unsorted;
    unsorted.sort_peers = false;
    unsorted.server_request_k = 6;
    SennOutcome outcome = SennProcessor(&server, unsorted).Execute(q, 3, peers);
    ExpectSameIds(outcome.neighbors, TrueKnn(pois, q, 3), "unsorted peers");
  }
}

}  // namespace
}  // namespace senn::core
