// Property tests for the kNN_single / kNN_multiple verification algorithms
// (Lemmas 3.1-3.8): soundness (certified objects are true kNN members with
// exact ranks) against a brute-force oracle over randomized worlds.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/core/multi_peer.h"
#include "src/core/single_peer.h"

namespace senn::core {
namespace {

using geom::Vec2;

std::vector<Poi> RandomPois(int n, Rng* rng, double extent) {
  std::vector<Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

// Exact kNN by brute force, ascending.
std::vector<RankedPoi> TrueKnn(const std::vector<Poi>& pois, Vec2 q, int k) {
  std::vector<RankedPoi> all;
  for (const Poi& p : pois) all.push_back({p.id, p.position, geom::Dist(q, p.position)});
  std::sort(all.begin(), all.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return a.distance < b.distance; });
  if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

// A peer cache: the true kNN prefix at a random location (what a host would
// hold after a server-answered query).
CachedResult MakePeerCache(const std::vector<Poi>& pois, Vec2 at, int cache_size) {
  CachedResult r;
  r.query_location = at;
  r.neighbors = TrueKnn(pois, at, cache_size);
  return r;
}

// Asserts the core soundness property: heap.certain() is exactly the first
// |certain| elements of the true kNN ordering (exact rank prefix).
void ExpectExactRankPrefix(const CandidateHeap& heap, const std::vector<Poi>& pois, Vec2 q,
                           const char* label) {
  std::vector<RankedPoi> truth = TrueKnn(pois, q, static_cast<int>(heap.certain().size()));
  ASSERT_LE(heap.certain().size(), truth.size()) << label;
  for (size_t i = 0; i < heap.certain().size(); ++i) {
    EXPECT_EQ(heap.certain()[i].id, truth[i].id)
        << label << ": rank " << i + 1 << " mismatch";
  }
}

TEST(SinglePeerTest, PeerAtQueryLocationCertifiesItsWholeCache) {
  Rng rng(1);
  std::vector<Poi> pois = RandomPois(50, &rng, 1000);
  Vec2 q{500, 500};
  CachedResult peer = MakePeerCache(pois, q, 5);  // delta = 0
  CandidateHeap heap(5);
  VerifyStats stats = VerifySinglePeer(q, peer, &heap);
  EXPECT_EQ(stats.certified, 5);
  EXPECT_EQ(stats.uncertain, 0);
  ExpectExactRankPrefix(heap, pois, q, "delta=0");
}

TEST(SinglePeerTest, FarPeerCertifiesNothing) {
  Rng rng(2);
  std::vector<Poi> pois = RandomPois(50, &rng, 1000);
  Vec2 q{0, 0};
  CachedResult peer = MakePeerCache(pois, {1000, 1000}, 5);
  CandidateHeap heap(5);
  VerifyStats stats = VerifySinglePeer(q, peer, &heap);
  EXPECT_EQ(stats.certified, 0);
  EXPECT_EQ(stats.uncertain, 5);
  EXPECT_TRUE(heap.certain().empty());
}

TEST(SinglePeerTest, EmptyPeerCacheIsNoop) {
  CandidateHeap heap(3);
  CachedResult empty;
  VerifyStats stats = VerifySinglePeer({0, 0}, empty, &heap);
  EXPECT_EQ(stats.candidates, 0);
  EXPECT_EQ(heap.state(), HeapState::kEmpty);
}

TEST(SinglePeerTest, Lemma32BoundaryCase) {
  // Hand-built: peer P at (10, 0) with POIs at distances 5 and 10 from P.
  // Query Q at (6, 0): delta = 4.
  //   n1 at (10, 5):  Dist(Q,n1) = sqrt(16+25) = 6.40; 6.40 + 4 > 10 -> uncertain
  //   n2 at (10, -10): Dist(Q,n2) = sqrt(16+100) = 10.77 > 10 -> uncertain
  //   n0 at (8, 0):   Dist(Q,n0) = 2; 2 + 4 <= 10 -> certain
  CachedResult peer;
  peer.query_location = {10, 0};
  peer.neighbors = {
      {0, {8, 0}, 2.0},     // dist to P = 2
      {1, {10, 5}, 5.0},    // dist to P = 5
      {2, {10, -10}, 10.0}  // dist to P = 10 (farthest: radius)
  };
  CandidateHeap heap(3);
  VerifyStats stats = VerifySinglePeer({6, 0}, peer, &heap);
  EXPECT_EQ(stats.certified, 1);
  EXPECT_EQ(stats.uncertain, 2);
  ASSERT_EQ(heap.certain().size(), 1u);
  EXPECT_EQ(heap.certain()[0].id, 0);
}

TEST(SinglePeerTest, ExactEqualityIsCertain) {
  // Dist(Q,n) + delta == radius exactly (Lemma 3.2 uses <=).
  CachedResult peer;
  peer.query_location = {4, 0};
  peer.neighbors = {{0, {1, 0}, 3.0}, {1, {10, 0}, 6.0}};
  // Q at (2,0): delta = 2, Dist(Q, n0) = 1; radius 6. Check n1: 8 + 2 > 6.
  // Tweak: use n0 with Dist+delta = 3 <= 6 certain. Exact equality case:
  // place Q at (0,0): delta 4, Dist(Q,n0) = 1, 1+4=5 <= 6 certain;
  // n1: 10+4 > 6 uncertain.
  CandidateHeap heap(2);
  VerifySinglePeer({0, 0}, peer, &heap);
  ASSERT_EQ(heap.certain().size(), 1u);
  EXPECT_EQ(heap.certain()[0].id, 0);
}

// Parameterized randomized soundness sweep over cache sizes.
class SinglePeerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SinglePeerPropertyTest, CertifiedObjectsAreExactRankPrefix) {
  const int cache_size = GetParam();
  Rng rng(1000 + cache_size);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Poi> pois = RandomPois(static_cast<int>(rng.UniformInt(5, 60)), &rng, 1000);
    Vec2 q{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    Vec2 p{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    CachedResult peer = MakePeerCache(pois, p, cache_size);
    CandidateHeap heap(cache_size);
    VerifySinglePeer(q, peer, &heap);
    ExpectExactRankPrefix(heap, pois, q, "single-peer sweep");
  }
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, SinglePeerPropertyTest, ::testing::Values(1, 2, 5, 10));

TEST(SinglePeerTest, MultiplePeersAccumulateIntoPrefix) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Poi> pois = RandomPois(40, &rng, 500);
    Vec2 q{rng.Uniform(100, 400), rng.Uniform(100, 400)};
    CandidateHeap heap(8);
    for (int peer = 0; peer < 5; ++peer) {
      Vec2 p{rng.Uniform(0, 500), rng.Uniform(0, 500)};
      CachedResult cache = MakePeerCache(pois, p, 8);
      VerifySinglePeer(q, cache, &heap);
    }
    ExpectExactRankPrefix(heap, pois, q, "accumulated");
  }
}

class MultiPeerPropertyTest : public ::testing::TestWithParam<CoverageBackend> {};

TEST_P(MultiPeerPropertyTest, CertifiedObjectsAreExactRankPrefix) {
  Rng rng(4);
  MultiPeerOptions options;
  options.backend = GetParam();
  for (int trial = 0; trial < 80; ++trial) {
    std::vector<Poi> pois = RandomPois(40, &rng, 500);
    Vec2 q{rng.Uniform(100, 400), rng.Uniform(100, 400)};
    std::vector<CachedResult> caches;
    for (int peer = 0; peer < 4; ++peer) {
      caches.push_back(MakePeerCache(
          pois, {rng.Uniform(0, 500), rng.Uniform(0, 500)}, 6));
    }
    std::vector<const CachedResult*> peers;
    for (const CachedResult& c : caches) peers.push_back(&c);
    CandidateHeap heap(6);
    VerifyMultiPeer(q, peers, &heap, options);
    ExpectExactRankPrefix(heap, pois, q, "multi-peer sweep");
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, MultiPeerPropertyTest,
                         ::testing::Values(CoverageBackend::kExactDisk,
                                           CoverageBackend::kPolygonized));

TEST(MultiPeerTest, UnionCertifiesWhatNoSinglePeerCan) {
  // Figure 7 scenario: a POI verified only by the merged region of two
  // peers. Count such cases across random trials — they must occur.
  Rng rng(5);
  int multi_wins = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Poi> pois = RandomPois(30, &rng, 400);
    Vec2 q{rng.Uniform(100, 300), rng.Uniform(100, 300)};
    std::vector<CachedResult> caches;
    for (int peer = 0; peer < 4; ++peer) {
      // Peers close to Q so their disks overlap around it.
      caches.push_back(MakePeerCache(
          pois, {q.x + rng.Uniform(-60, 60), q.y + rng.Uniform(-60, 60)}, 6));
    }
    std::vector<const CachedResult*> peers;
    for (const CachedResult& c : caches) peers.push_back(&c);
    CandidateHeap single_heap(6), multi_heap(6);
    for (const CachedResult* p : peers) VerifySinglePeer(q, *p, &single_heap);
    VerifyMultiPeer(q, peers, &multi_heap);
    EXPECT_GE(multi_heap.certain().size(), single_heap.certain().size())
        << "multi-peer certified fewer than single-peer at trial " << trial;
    if (multi_heap.certain().size() > single_heap.certain().size()) ++multi_wins;
  }
  EXPECT_GT(multi_wins, 10);
}

TEST(MultiPeerTest, NoPeersCertifiesNothing) {
  CandidateHeap heap(3);
  VerifyStats stats = VerifyMultiPeer({0, 0}, {}, &heap);
  EXPECT_EQ(stats.candidates, 0);
  EXPECT_EQ(heap.state(), HeapState::kEmpty);
}

TEST(MultiPeerTest, DeduplicatesSharedPois) {
  Rng rng(6);
  std::vector<Poi> pois = RandomPois(10, &rng, 100);
  Vec2 q{50, 50};
  // Two peers at the same location: identical caches.
  CachedResult a = MakePeerCache(pois, {48, 50}, 5);
  CachedResult b = MakePeerCache(pois, {48, 50}, 5);
  CandidateHeap heap(5);
  VerifyStats stats = VerifyMultiPeer(q, {&a, &b}, &heap);
  EXPECT_EQ(stats.candidates, 5);  // not 10
}

TEST(MultiPeerTest, PolygonizedNeverExceedsExact) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Poi> pois = RandomPois(30, &rng, 400);
    Vec2 q{rng.Uniform(100, 300), rng.Uniform(100, 300)};
    std::vector<CachedResult> caches;
    for (int peer = 0; peer < 3; ++peer) {
      caches.push_back(MakePeerCache(
          pois, {q.x + rng.Uniform(-80, 80), q.y + rng.Uniform(-80, 80)}, 6));
    }
    std::vector<const CachedResult*> peers;
    for (const CachedResult& c : caches) peers.push_back(&c);
    CandidateHeap exact_heap(6), poly_heap(6);
    MultiPeerOptions exact;
    exact.backend = CoverageBackend::kExactDisk;
    VerifyMultiPeer(q, peers, &exact_heap, exact);
    MultiPeerOptions poly;
    poly.backend = CoverageBackend::kPolygonized;
    VerifyMultiPeer(q, peers, &poly_heap, poly);
    EXPECT_LE(poly_heap.certain().size(), exact_heap.certain().size()) << trial;
  }
}

}  // namespace
}  // namespace senn::core
