#include "src/core/join.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"

namespace senn::core {
namespace {

using geom::Vec2;

std::vector<Poi> RandomPois(int n, Rng* rng, double extent, PoiId base = 0) {
  std::vector<Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({base + i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

std::set<std::pair<PoiId, PoiId>> BruteForceJoin(const std::vector<Poi>& a,
                                                 const std::vector<Poi>& b, Vec2 q,
                                                 double radius, double d) {
  std::set<std::pair<PoiId, PoiId>> pairs;
  for (const Poi& x : a) {
    if (geom::Dist(q, x.position) > radius) continue;
    for (const Poi& y : b) {
      if (geom::Dist(x.position, y.position) <= d) pairs.insert({x.id, y.id});
    }
  }
  return pairs;
}

std::set<std::pair<PoiId, PoiId>> Ids(const std::vector<PoiPair>& pairs) {
  std::set<std::pair<PoiId, PoiId>> ids;
  for (const PoiPair& p : pairs) ids.insert({p.a.id, p.b.id});
  return ids;
}

CachedResult MakePeerCache(SpatialServer* server, Vec2 at, int cache_size) {
  CachedResult c;
  c.query_location = at;
  c.neighbors = server->QueryKnn(at, cache_size).neighbors;
  return c;
}

TEST(SharingJoinTest, ExactAcrossRandomWorlds) {
  Rng rng(1);
  int local_count = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Poi> restaurants = RandomPois(40, &rng, 800);
    std::vector<Poi> parking = RandomPois(30, &rng, 800, 1000);
    SpatialServer server_a(restaurants);
    SpatialServer server_b(parking);
    SharingJoinProcessor join(&server_a, &server_b);
    Vec2 q{rng.Uniform(200, 600), rng.Uniform(200, 600)};
    std::vector<CachedResult> ca, cb;
    for (int p = 0; p < 3; ++p) {
      Vec2 at{q.x + rng.Uniform(-100, 100), q.y + rng.Uniform(-100, 100)};
      ca.push_back(MakePeerCache(&server_a, at, 12));
      cb.push_back(MakePeerCache(&server_b, at, 12));
    }
    std::vector<const CachedResult*> peers_a, peers_b;
    for (const CachedResult& c : ca) peers_a.push_back(&c);
    for (const CachedResult& c : cb) peers_b.push_back(&c);
    double radius = rng.Uniform(50, 200);
    double d = rng.Uniform(20, 120);
    JoinOutcome out = join.Execute(q, radius, d, peers_a, peers_b);
    EXPECT_EQ(Ids(out.pairs), BruteForceJoin(restaurants, parking, q, radius, d))
        << "trial " << trial;
    local_count += out.fully_local;
  }
  EXPECT_GT(local_count, 0);  // some joins resolve without any server
}

TEST(SharingJoinTest, NoPeersStillExactViaServers) {
  Rng rng(2);
  std::vector<Poi> a = RandomPois(30, &rng, 500);
  std::vector<Poi> b = RandomPois(30, &rng, 500, 1000);
  SpatialServer sa(a), sb(b);
  SharingJoinProcessor join(&sa, &sb);
  JoinOutcome out = join.Execute({250, 250}, 150, 60, {}, {});
  EXPECT_FALSE(out.fully_local);
  EXPECT_EQ(out.a_resolution, RangeResolution::kServer);
  EXPECT_EQ(Ids(out.pairs), BruteForceJoin(a, b, {250, 250}, 150, 60));
}

TEST(SharingJoinTest, PairDistancesReported) {
  std::vector<Poi> a{{1, {100, 100}}};
  std::vector<Poi> b{{2, {100, 130}}, {3, {100, 300}}};
  SpatialServer sa(a), sb(b);
  SharingJoinProcessor join(&sa, &sb);
  JoinOutcome out = join.Execute({100, 100}, 50, 40, {}, {});
  ASSERT_EQ(out.pairs.size(), 1u);
  EXPECT_EQ(out.pairs[0].a.id, 1);
  EXPECT_EQ(out.pairs[0].b.id, 2);
  EXPECT_NEAR(out.pairs[0].pair_distance, 30.0, 1e-12);
}

TEST(SharingJoinTest, FullyLocalWhenPeersCoverBothDisks) {
  Rng rng(3);
  std::vector<Poi> a = RandomPois(25, &rng, 600);
  std::vector<Poi> b = RandomPois(25, &rng, 600, 1000);
  SpatialServer sa(a), sb(b);
  SharingJoinProcessor join(&sa, &sb);
  Vec2 q{300, 300};
  // Colocated peers with fat caches: their disks dwarf the query disks.
  CachedResult pa = MakePeerCache(&sa, q, 25);
  CachedResult pb = MakePeerCache(&sb, q, 25);
  sa.ResetStats();
  sb.ResetStats();
  JoinOutcome out = join.Execute(q, pa.Radius() * 0.3, pb.Radius() * 0.2, {&pa}, {&pb});
  EXPECT_TRUE(out.fully_local);
  EXPECT_EQ(sa.stats().queries + sb.stats().queries, 0u);
}

}  // namespace
}  // namespace senn::core
