// Differential battery for safe-region continuous kNN: at EVERY sampled
// step of a randomized drive, the ContinuousKnn answer — whichever path
// produced it (safe region, own-cache recheck, peer region, SENN, server) —
// must be BITWISE identical (ids, positions, distances) to a fresh snapshot
// SENN execution at that position. Runs over generated worlds x speeds x
// both region modes.
//
// Like the batch battery, this file builds twice: the tier-1 binary cuts the
// trial count via SENN_CONT_TRIALS; the slow-label binary runs the full
// sweep (36 worlds x 3 speeds x 2 modes >= the "100+ worlds x speeds"
// acceptance bar).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/core/continuous.h"
#include "src/mobility/waypoint.h"

#ifndef SENN_CONT_TRIALS
#define SENN_CONT_TRIALS 36
#endif

namespace senn::core {
namespace {

using geom::Vec2;

std::vector<Poi> RandomPois(int n, Rng* rng, double extent) {
  std::vector<Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

TEST(ContinuousDiffTest, BitwiseEqualToSnapshotSennAtEveryStep) {
  const double speeds_mps[] = {5.0, 15.0, 35.0};
  const SafeRegionMode modes[] = {SafeRegionMode::kDisk, SafeRegionMode::kInsq};
  uint64_t steps_checked = 0;
  uint64_t region_hits = 0;
  for (int trial = 0; trial < SENN_CONT_TRIALS; ++trial) {
    Rng rng = Rng(20060403).Stream("cont-diff", static_cast<uint64_t>(trial));
    const double extent = rng.Uniform(600, 6000);
    const int n = static_cast<int>(rng.UniformInt(20, 119));
    std::vector<Poi> pois = RandomPois(n, &rng, extent);
    const int k = static_cast<int>(rng.UniformInt(1, 6));
    SpatialServer server(pois);
    SennOptions options;
    options.server_request_k = 12;
    SennProcessor senn(&server, options);
    for (double speed : speeds_mps) {
      for (SafeRegionMode mode : modes) {
        ContinuousOptions copts;
        copts.safe_region = mode;
        ContinuousKnn cknn(&senn, k, copts);
        mobility::WaypointConfig wcfg;
        wcfg.area_side_m = extent;
        wcfg.speed_mps = speed;
        wcfg.mean_pause_s = 5.0;
        Rng drive_rng = rng.Stream("drive", static_cast<uint64_t>(
                                                speed * 1000.0 + (mode == SafeRegionMode::kInsq)));
        mobility::WaypointMover car(
            wcfg, {drive_rng.Uniform(0, extent), drive_rng.Uniform(0, extent)},
            &drive_rng);
        for (int step = 0; step < 60; ++step) {
          car.Advance(5.0, &drive_rng);
          const Vec2 pos = car.position();
          StepResult r = cknn.Step(pos);
          SennOutcome snapshot = senn.Execute(pos, k, {});
          ASSERT_EQ(r.neighbors, snapshot.neighbors)
              << "trial " << trial << " speed " << speed << " mode "
              << SafeRegionModeName(mode) << " step " << step << " source "
              << StepSourceName(r.source);
          ++steps_checked;
        }
        region_hits += cknn.stats().safe_region_hits;
        const ContinuousStats& s = cknn.stats();
        EXPECT_EQ(s.steps, s.safe_region_hits + s.peer_region_hits + s.own_cache_hits +
                               s.peer_answers + s.uncertain_answers + s.server_answers);
      }
    }
  }
  // The battery is vacuous if the safe-region path never fires.
  EXPECT_GT(region_hits, steps_checked / 20);
#if SENN_CONT_TRIALS >= 36
  // Acceptance bar: 100+ generated world x speed combinations, both modes.
  EXPECT_GE(SENN_CONT_TRIALS * 3, 100);
#endif
}

TEST(ContinuousDiffTest, PeerRegionSharingStaysExact) {
  // Host A leads, host B trails 40 m behind on the same track. B receives
  // A's rolling cache and safe region every step; adopting them must keep
  // B's answers bitwise exact and must actually fire the peer-region path.
  Rng rng(99);
  const double extent = 3000;
  std::vector<Poi> pois = RandomPois(70, &rng, extent);
  SpatialServer server(pois);
  SennOptions options;
  options.server_request_k = 12;
  SennProcessor senn(&server, options);
  ContinuousOptions copts;
  copts.safe_region = SafeRegionMode::kInsq;
  ContinuousKnn a(&senn, 3, copts);
  ContinuousKnn b(&senn, 3, copts);
  uint64_t b_peer_region_hits = 0;
  for (int step = 0; step < 200; ++step) {
    const Vec2 pos_a{200.0 + step * 12.0, 1500.0};
    const Vec2 pos_b{pos_a.x - 40.0, 1500.0};
    a.Step(pos_a);
    StepResult rb = b.Step(pos_b, {&a.shared_cache()}, {&a.safe_region()});
    SennOutcome snapshot = senn.Execute(pos_b, 3, {});
    ASSERT_EQ(rb.neighbors, snapshot.neighbors) << "step " << step;
    b_peer_region_hits = b.stats().peer_region_hits;
  }
  EXPECT_GT(b_peer_region_hits, 0u);
}

}  // namespace
}  // namespace senn::core
