// Tests of the continuous kNN extension (core/continuous.h): exactness at
// every step, own-cache reuse while the certification holds, and the
// communication savings over naive multi-step re-querying.
#include "src/core/continuous.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/rng.h"

namespace senn::core {
namespace {

using geom::Vec2;

std::vector<Poi> RandomPois(int n, Rng* rng, double extent) {
  std::vector<Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

std::vector<PoiId> TrueKnnIds(const std::vector<Poi>& pois, Vec2 q, int k) {
  std::vector<RankedPoi> all;
  for (const Poi& p : pois) all.push_back({p.id, p.position, geom::Dist(q, p.position)});
  std::sort(all.begin(), all.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return a.distance < b.distance; });
  std::vector<PoiId> ids;
  for (int i = 0; i < k && i < static_cast<int>(all.size()); ++i) ids.push_back(all[static_cast<size_t>(i)].id);
  return ids;
}

class ContinuousKnnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    pois_ = RandomPois(80, &rng, 2000);
    server_ = std::make_unique<SpatialServer>(pois_);
    SennOptions options;
    options.server_request_k = 12;
    senn_ = std::make_unique<SennProcessor>(server_.get(), options);
  }

  std::vector<Poi> pois_;
  std::unique_ptr<SpatialServer> server_;
  std::unique_ptr<SennProcessor> senn_;
};

TEST_F(ContinuousKnnTest, ExactAtEveryStepAlongStraightPath) {
  ContinuousKnn cknn(senn_.get(), 3);
  for (int step = 0; step <= 100; ++step) {
    Vec2 pos{200.0 + step * 16.0, 1000.0};
    StepResult r = cknn.Step(pos);
    std::vector<PoiId> got;
    for (const RankedPoi& n : r.neighbors) got.push_back(n.id);
    EXPECT_EQ(got, TrueKnnIds(pois_, pos, 3)) << "step " << step;
  }
  EXPECT_EQ(cknn.stats().steps, 101u);
}

TEST_F(ContinuousKnnTest, OwnCacheServesDenselySampledMovement) {
  // With 5 m steps the cached 12-NN disk covers many consecutive positions:
  // the vast majority of steps must need no communication at all.
  ContinuousKnn cknn(senn_.get(), 3);
  for (int step = 0; step <= 400; ++step) {
    cknn.Step({500.0 + step * 2.5, 900.0});
  }
  const ContinuousStats& s = cknn.stats();
  EXPECT_GT(s.own_cache_hits, s.steps * 3 / 4);
  EXPECT_EQ(s.steps, s.safe_region_hits + s.peer_region_hits + s.own_cache_hits +
                         s.peer_answers + s.uncertain_answers + s.server_answers);
}

TEST_F(ContinuousKnnTest, FirstStepGoesOut) {
  ContinuousKnn cknn(senn_.get(), 3);
  StepResult r = cknn.Step({700, 700});
  EXPECT_NE(r.source, StepSource::kOwnCache);
  EXPECT_EQ(cknn.stats().own_cache_hits, 0u);
}

TEST_F(ContinuousKnnTest, TeleportInvalidatesCache) {
  ContinuousKnn cknn(senn_.get(), 3);
  cknn.Step({100, 100});
  StepResult near = cknn.Step({101, 100});
  EXPECT_EQ(near.source, StepSource::kOwnCache);
  StepResult far = cknn.Step({1900, 1900});
  EXPECT_NE(far.source, StepSource::kOwnCache);
  std::vector<PoiId> got;
  for (const RankedPoi& n : far.neighbors) got.push_back(n.id);
  EXPECT_EQ(got, TrueKnnIds(pois_, {1900, 1900}, 3));
}

TEST_F(ContinuousKnnTest, PeersReduceServerContacts) {
  // A warm peer mid-route lets the host refresh without the server.
  CachedResult peer;
  peer.query_location = {1000, 500};
  peer.neighbors = server_->QueryKnn(peer.query_location, 12).neighbors;
  server_->ResetStats();

  ContinuousKnn with_peer(senn_.get(), 3);
  for (int step = 0; step <= 50; ++step) {
    with_peer.Step({750.0 + step * 10.0, 500.0}, {&peer});
  }
  uint64_t with_peer_server = with_peer.stats().server_answers;

  ContinuousKnn alone(senn_.get(), 3);
  for (int step = 0; step <= 50; ++step) {
    alone.Step({750.0 + step * 10.0, 500.0});
  }
  EXPECT_LE(with_peer_server, alone.stats().server_answers);
  EXPECT_GT(with_peer.stats().peer_answers, 0u);
}

TEST_F(ContinuousKnnTest, BeatsNaiveMultiStepByOrdersOfMagnitude) {
  // Naive multi-step search: one server query per sampled position.
  const int steps = 200;
  ContinuousKnn cknn(senn_.get(), 3);
  server_->ResetStats();
  Rng rng(5);
  Vec2 pos{300, 300};
  for (int step = 0; step < steps; ++step) {
    pos = pos + Vec2{rng.Uniform(0, 12), rng.Uniform(-6, 6)};  // drifting walk
    cknn.Step(pos);
  }
  uint64_t shared_queries = server_->stats().queries;
  EXPECT_LT(shared_queries, static_cast<uint64_t>(steps) / 4);  // >4x reduction
  EXPECT_EQ(cknn.stats().steps, static_cast<uint64_t>(steps));
}

TEST_F(ContinuousKnnTest, KOneWorks) {
  ContinuousKnn cknn(senn_.get(), 1);
  for (int step = 0; step < 30; ++step) {
    Vec2 pos{400.0 + step * 20.0, 1500.0};
    StepResult r = cknn.Step(pos);
    ASSERT_EQ(r.neighbors.size(), 1u);
    EXPECT_EQ(r.neighbors[0].id, TrueKnnIds(pois_, pos, 1)[0]);
  }
}

TEST_F(ContinuousKnnTest, UncertainAnswersAreCountedSeparately) {
  // An accept_uncertain processor can return best-effort answers (senn.h);
  // the continuous layer must surface them as kUncertain, never disguised
  // as a verified peer answer.
  SennOptions options;
  options.server_request_k = 12;
  options.accept_uncertain = true;
  SennProcessor uncertain_senn(server_.get(), options);

  // A peer anchored far beyond its own prefix radius: its candidates fill
  // the heap but none can be certified at the query point.
  CachedResult far_peer;
  far_peer.query_location = {1800, 1800};
  far_peer.neighbors = server_->QueryKnn(far_peer.query_location, 12).neighbors;

  ContinuousKnn cknn(&uncertain_senn, 3);
  StepResult r = cknn.Step({200, 200}, {&far_peer});
  EXPECT_EQ(r.source, StepSource::kUncertain);
  const ContinuousStats& s = cknn.stats();
  EXPECT_EQ(s.uncertain_answers, 1u);
  EXPECT_EQ(s.peer_answers, 0u);
  EXPECT_EQ(s.server_answers, 0u);
  EXPECT_EQ(s.steps, s.safe_region_hits + s.peer_region_hits + s.own_cache_hits +
                         s.peer_answers + s.uncertain_answers + s.server_answers);
}

TEST_F(ContinuousKnnTest, RejectsDegenerateK) {
  EXPECT_FALSE(ContinuousKnn::ValidateK(0).ok());
  EXPECT_FALSE(ContinuousKnn::ValidateK(-7).ok());
  EXPECT_EQ(ContinuousKnn::ValidateK(0).message(), "k must be positive");
  EXPECT_TRUE(ContinuousKnn::ValidateK(1).ok());
}

TEST_F(ContinuousKnnTest, StepIsInvariantUnderPeerListPermutation) {
  // Harvest order over the air is nondeterministic; the answer and the
  // accounting must not depend on it.
  std::vector<CachedResult> peers;
  for (int p = 0; p < 4; ++p) {
    CachedResult c;
    c.query_location = {600.0 + p * 150.0, 1000.0 + (p % 2) * 120.0};
    c.neighbors = server_->QueryKnn(c.query_location, 12).neighbors;
    peers.push_back(std::move(c));
  }
  ContinuousOptions copts;
  copts.safe_region = SafeRegionMode::kInsq;
  ContinuousKnn forward(senn_.get(), 3, copts);
  ContinuousKnn reversed(senn_.get(), 3, copts);
  for (int step = 0; step <= 60; ++step) {
    Vec2 pos{450.0 + step * 12.0, 1020.0};
    std::vector<const CachedResult*> fwd;
    for (const CachedResult& c : peers) fwd.push_back(&c);
    std::vector<const CachedResult*> rev(fwd.rbegin(), fwd.rend());
    // Both hosts also see each OTHER's pre-step region (snapshotted so the
    // first Step cannot leak its refreshed region into the second).
    SafeRegion fwd_region = forward.safe_region();
    SafeRegion rev_region = reversed.safe_region();
    StepResult rf = forward.Step(pos, fwd, {&rev_region});
    StepResult rr = reversed.Step(pos, rev, {&fwd_region});
    ASSERT_EQ(rf.neighbors, rr.neighbors) << "step " << step;
    EXPECT_EQ(rf.source, rr.source) << "step " << step;
  }
  EXPECT_EQ(forward.stats().steps, reversed.stats().steps);
  EXPECT_EQ(forward.stats().safe_region_hits, reversed.stats().safe_region_hits);
  EXPECT_EQ(forward.stats().peer_region_hits, reversed.stats().peer_region_hits);
  EXPECT_EQ(forward.stats().own_cache_hits, reversed.stats().own_cache_hits);
  EXPECT_EQ(forward.stats().peer_answers, reversed.stats().peer_answers);
  EXPECT_EQ(forward.stats().server_answers, reversed.stats().server_answers);
}

TEST(ContinuousKnnEdgeTest, EmptyDatabase) {
  SpatialServer server({});
  SennProcessor senn(&server, SennOptions{});
  ContinuousKnn cknn(&senn, 3);
  StepResult r = cknn.Step({0, 0});
  EXPECT_TRUE(r.neighbors.empty());
  EXPECT_EQ(r.source, StepSource::kServer);
}

TEST(ContinuousKnnEdgeTest, StepSourceNames) {
  EXPECT_STREQ(StepSourceName(StepSource::kOwnCache), "own-cache");
  EXPECT_STREQ(StepSourceName(StepSource::kServer), "server");
  EXPECT_STREQ(StepSourceName(StepSource::kSafeRegion), "safe-region");
  EXPECT_STREQ(StepSourceName(StepSource::kUncertain), "uncertain");
}

TEST(ContinuousKnnEdgeTest, EveryStepSourceHasADistinctName) {
  // Round-trip over the whole enum: every value maps to a real, pairwise
  // distinct label (reports key on these strings).
  std::vector<std::string> names;
  for (int v = 0; v < static_cast<int>(StepSource::kStepSourceCount); ++v) {
    const char* name = StepSourceName(static_cast<StepSource>(v));
    ASSERT_NE(name, nullptr) << "value " << v;
    EXPECT_STRNE(name, "unknown") << "value " << v;
    names.push_back(name);
  }
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]) << i << " vs " << j;
    }
  }
}

}  // namespace
}  // namespace senn::core
