#include "src/core/candidate_heap.h"

#include <gtest/gtest.h>

#include <cmath>

namespace senn::core {
namespace {

RankedPoi P(PoiId id, double dist) { return {id, {dist, 0}, dist}; }

TEST(CandidateHeapTest, StartsEmpty) {
  CandidateHeap h(4);
  EXPECT_EQ(h.state(), HeapState::kEmpty);
  EXPECT_EQ(h.size(), 0);
  EXPECT_FALSE(h.IsFull());
  EXPECT_FALSE(h.HasCertain(1));
  rtree::PruneBounds b = h.ComputeBounds();
  EXPECT_FALSE(b.lower.has_value());
  EXPECT_FALSE(b.upper.has_value());
}

TEST(CandidateHeapTest, PaperTable1Example) {
  // Table 1: k = 4; after processing peers P1 and P2 the heap holds certain
  // {n2-P1, n1-P1} at sqrt(2), sqrt(3) and uncertain {n3-P1, n3-P2} at
  // sqrt(5), sqrt(8).
  CandidateHeap h(4);
  h.InsertCertain(P(21, std::sqrt(2.0)));
  h.InsertCertain(P(11, std::sqrt(3.0)));
  h.InsertUncertain(P(31, std::sqrt(5.0)));
  h.InsertUncertain(P(32, std::sqrt(8.0)));
  ASSERT_EQ(h.certain().size(), 2u);
  ASSERT_EQ(h.uncertain().size(), 2u);
  EXPECT_EQ(h.certain()[0].id, 21);
  EXPECT_EQ(h.certain()[1].id, 11);
  EXPECT_EQ(h.uncertain()[0].id, 31);
  EXPECT_EQ(h.uncertain()[1].id, 32);
  EXPECT_TRUE(h.IsFull());
  EXPECT_EQ(h.state(), HeapState::kFullMixed);
  rtree::PruneBounds b = h.ComputeBounds();
  ASSERT_TRUE(b.lower.has_value());
  ASSERT_TRUE(b.upper.has_value());
  EXPECT_DOUBLE_EQ(*b.lower, std::sqrt(3.0));  // last certain entry
  EXPECT_DOUBLE_EQ(*b.upper, std::sqrt(8.0));  // last entry overall
}

TEST(CandidateHeapTest, CertainInsertKeepsAscendingOrder) {
  CandidateHeap h(5);
  h.InsertCertain(P(1, 3.0));
  h.InsertCertain(P(2, 1.0));
  h.InsertCertain(P(3, 2.0));
  ASSERT_EQ(h.certain().size(), 3u);
  EXPECT_EQ(h.certain()[0].id, 2);
  EXPECT_EQ(h.certain()[1].id, 3);
  EXPECT_EQ(h.certain()[2].id, 1);
}

TEST(CandidateHeapTest, CertainDisplacesFarthestUncertain) {
  CandidateHeap h(3);
  h.InsertUncertain(P(1, 1.0));
  h.InsertUncertain(P(2, 2.0));
  h.InsertUncertain(P(3, 3.0));
  EXPECT_TRUE(h.IsFull());
  h.InsertCertain(P(4, 5.0));  // distance does not matter for displacement
  EXPECT_EQ(h.certain().size(), 1u);
  EXPECT_EQ(h.uncertain().size(), 2u);
  EXPECT_EQ(h.uncertain().back().id, 2);  // id 3 (farthest) evicted
}

TEST(CandidateHeapTest, DuplicateCertainIgnored) {
  CandidateHeap h(3);
  h.InsertCertain(P(1, 1.0));
  h.InsertCertain(P(1, 1.5));
  EXPECT_EQ(h.certain().size(), 1u);
  EXPECT_DOUBLE_EQ(h.certain()[0].distance, 1.0);
}

TEST(CandidateHeapTest, ResightingKeepsMinimumDistance) {
  // Regression: a re-sighting of an already-certain id with a SMALLER
  // distance (a fresher peer cache measured the same POI) must replace the
  // stored sighting — keeping the larger distance would inflate the lower
  // bound shipped to the server.
  CandidateHeap h(3);
  h.InsertCertain(P(1, 1.5));
  h.InsertCertain(P(2, 2.0));
  h.InsertCertain(P(1, 1.0));  // better sighting of id 1
  ASSERT_EQ(h.certain().size(), 2u);
  EXPECT_EQ(h.certain()[0].id, 1);
  EXPECT_DOUBLE_EQ(h.certain()[0].distance, 1.0);
  EXPECT_EQ(h.certain()[1].id, 2);
  h.AssertInvariants();
}

TEST(CandidateHeapTest, ResightingNeverGrowsTheList) {
  CandidateHeap h(2);
  h.InsertCertain(P(1, 3.0));
  h.InsertCertain(P(2, 4.0));
  ASSERT_EQ(h.state(), HeapState::kSolved);
  h.InsertCertain(P(2, 1.0));  // re-sighting at capacity: replace in place
  ASSERT_EQ(h.certain().size(), 2u);
  EXPECT_EQ(h.certain()[0].id, 2);
  EXPECT_DOUBLE_EQ(h.certain()[0].distance, 1.0);
  EXPECT_EQ(h.certain()[1].id, 1);
  h.AssertInvariants();
}

TEST(CandidateHeapTest, CertainSupersedesUncertainSameId) {
  CandidateHeap h(3);
  h.InsertUncertain(P(1, 1.0));
  h.InsertCertain(P(1, 1.0));
  EXPECT_EQ(h.certain().size(), 1u);
  EXPECT_TRUE(h.uncertain().empty());
}

TEST(CandidateHeapTest, UncertainDuplicateIgnored) {
  CandidateHeap h(3);
  h.InsertCertain(P(1, 1.0));
  h.InsertUncertain(P(1, 2.0));  // already certain
  EXPECT_TRUE(h.uncertain().empty());
  h.InsertUncertain(P(2, 2.0));
  h.InsertUncertain(P(2, 3.0));  // already uncertain
  EXPECT_EQ(h.uncertain().size(), 1u);
}

TEST(CandidateHeapTest, FullHeapRejectsWorseUncertain) {
  CandidateHeap h(2);
  h.InsertUncertain(P(1, 1.0));
  h.InsertUncertain(P(2, 2.0));
  h.InsertUncertain(P(3, 5.0));  // worse than everything: rejected
  ASSERT_EQ(h.uncertain().size(), 2u);
  EXPECT_EQ(h.uncertain().back().id, 2);
  h.InsertUncertain(P(4, 0.5));  // better: replaces the worst
  ASSERT_EQ(h.uncertain().size(), 2u);
  EXPECT_EQ(h.uncertain()[0].id, 4);
  EXPECT_EQ(h.uncertain()[1].id, 1);
}

TEST(CandidateHeapTest, SolvedState) {
  CandidateHeap h(2);
  h.InsertCertain(P(1, 1.0));
  h.InsertCertain(P(2, 2.0));
  EXPECT_EQ(h.state(), HeapState::kSolved);
  EXPECT_TRUE(h.HasCertain(2));
  // Solved heaps still expose both bounds (used by SNNN re-queries).
  rtree::PruneBounds b = h.ComputeBounds();
  EXPECT_DOUBLE_EQ(*b.lower, 2.0);
  EXPECT_DOUBLE_EQ(*b.upper, 2.0);
}

TEST(CandidateHeapTest, StateTwoFullUncertainOnly) {
  CandidateHeap h(2);
  h.InsertUncertain(P(1, 1.0));
  h.InsertUncertain(P(2, 2.0));
  EXPECT_EQ(h.state(), HeapState::kFullUncertainOnly);
  rtree::PruneBounds b = h.ComputeBounds();
  EXPECT_FALSE(b.lower.has_value());
  ASSERT_TRUE(b.upper.has_value());
  EXPECT_DOUBLE_EQ(*b.upper, 2.0);
}

TEST(CandidateHeapTest, StateThreePartialMixed) {
  CandidateHeap h(5);
  h.InsertCertain(P(1, 1.0));
  h.InsertUncertain(P(2, 2.0));
  EXPECT_EQ(h.state(), HeapState::kPartialMixed);
  rtree::PruneBounds b = h.ComputeBounds();
  ASSERT_TRUE(b.lower.has_value());
  EXPECT_DOUBLE_EQ(*b.lower, 1.0);
  EXPECT_FALSE(b.upper.has_value());
}

TEST(CandidateHeapTest, StateFourPartialCertainOnly) {
  CandidateHeap h(5);
  h.InsertCertain(P(1, 1.0));
  EXPECT_EQ(h.state(), HeapState::kPartialCertainOnly);
  rtree::PruneBounds b = h.ComputeBounds();
  EXPECT_TRUE(b.lower.has_value());
  EXPECT_FALSE(b.upper.has_value());
}

TEST(CandidateHeapTest, StateFivePartialUncertainOnly) {
  CandidateHeap h(5);
  h.InsertUncertain(P(1, 1.0));
  EXPECT_EQ(h.state(), HeapState::kPartialUncertainOnly);
  rtree::PruneBounds b = h.ComputeBounds();
  EXPECT_FALSE(b.lower.has_value());
  EXPECT_FALSE(b.upper.has_value());
}

TEST(CandidateHeapTest, MixedFullUpperBoundIsMaxOfBothLists) {
  // Certain objects can be farther than uncertain ones; the upper bound is
  // the distance of the last element of H regardless of class.
  CandidateHeap h(3);
  h.InsertUncertain(P(1, 1.0));
  h.InsertUncertain(P(2, 2.0));
  h.InsertCertain(P(3, 9.0));
  EXPECT_EQ(h.state(), HeapState::kFullMixed);
  rtree::PruneBounds b = h.ComputeBounds();
  EXPECT_DOUBLE_EQ(*b.upper, 9.0);
  EXPECT_DOUBLE_EQ(*b.lower, 9.0);
}

TEST(CandidateHeapTest, CloserCertainDisplacesFarthestCertainWhenAtCapacity) {
  // Regression: a certified object can have any rank up to the certifying
  // peer's cache size, so a later peer may certify something closer than an
  // already-full certain list. The heap must keep the closest `capacity`.
  CandidateHeap h(3);
  h.InsertCertain(P(1, 10.0));
  h.InsertCertain(P(2, 12.0));
  h.InsertCertain(P(3, 15.0));
  ASSERT_EQ(h.state(), HeapState::kSolved);
  h.InsertCertain(P(4, 8.0));  // closer: must displace id 3
  ASSERT_EQ(h.certain().size(), 3u);
  EXPECT_EQ(h.certain()[0].id, 4);
  EXPECT_EQ(h.certain()[1].id, 1);
  EXPECT_EQ(h.certain()[2].id, 2);
  h.InsertCertain(P(5, 99.0));  // farther: ignored
  EXPECT_EQ(h.certain().back().id, 2);
}

TEST(CandidateHeapTest, CapacityClamp) {
  CandidateHeap h(0);
  EXPECT_EQ(h.capacity(), 1);
}

TEST(CandidateHeapTest, CapacityOneBoundsAcrossAllSixStates) {
  // ComputeBounds at the capacity-1 edge, for every terminal state the heap
  // can reach (kPartialMixed and kFullUncertainOnly need size >= 2 and are
  // unreachable at capacity 1 — kFullMixed degenerates to kSolved and a
  // single uncertain entry already fills the heap).
  {
    CandidateHeap h(1);  // state 6: empty
    EXPECT_EQ(h.state(), HeapState::kEmpty);
    rtree::PruneBounds b = h.ComputeBounds();
    EXPECT_FALSE(b.lower.has_value());
    EXPECT_FALSE(b.upper.has_value());
  }
  {
    CandidateHeap h(1);  // one uncertain entry fills capacity 1: state 2
    h.InsertUncertain(P(1, 2.0));
    EXPECT_EQ(h.state(), HeapState::kFullUncertainOnly);
    rtree::PruneBounds b = h.ComputeBounds();
    EXPECT_FALSE(b.lower.has_value());
    ASSERT_TRUE(b.upper.has_value());
    EXPECT_DOUBLE_EQ(*b.upper, 2.0);
    h.AssertInvariants();
  }
  {
    CandidateHeap h(1);  // one certain entry: solved
    h.InsertCertain(P(1, 1.0));
    EXPECT_EQ(h.state(), HeapState::kSolved);
    rtree::PruneBounds b = h.ComputeBounds();
    EXPECT_DOUBLE_EQ(*b.lower, 1.0);
    EXPECT_DOUBLE_EQ(*b.upper, 1.0);
  }
  {
    CandidateHeap h(1);  // certain displaces the uncertain occupant
    h.InsertUncertain(P(1, 0.5));
    h.InsertCertain(P(2, 3.0));
    EXPECT_EQ(h.state(), HeapState::kSolved);
    EXPECT_TRUE(h.uncertain().empty());
    rtree::PruneBounds b = h.ComputeBounds();
    EXPECT_DOUBLE_EQ(*b.lower, 3.0);
    EXPECT_DOUBLE_EQ(*b.upper, 3.0);
    h.AssertInvariants();
  }
}

TEST(CandidateHeapTest, EquidistantInsertionOrderInvariant) {
  // Four co-distant POIs inserted in different orders must produce the same
  // heap layout: ties rank by id, never by arrival.
  const PoiId orders[4][4] = {
      {1, 2, 3, 4}, {4, 3, 2, 1}, {3, 1, 4, 2}, {2, 4, 1, 3}};
  for (const auto& order : orders) {
    CandidateHeap h(3);
    for (PoiId id : order) h.InsertCertain(P(id, 7.0));
    ASSERT_EQ(h.certain().size(), 3u);
    EXPECT_EQ(h.certain()[0].id, 1);
    EXPECT_EQ(h.certain()[1].id, 2);
    EXPECT_EQ(h.certain()[2].id, 3);  // id 4 loses every tie
    h.AssertInvariants();
  }
}

TEST(CandidateHeapTest, StateNamesCoverAllStates) {
  EXPECT_STREQ(HeapStateName(HeapState::kSolved), "solved");
  EXPECT_STREQ(HeapStateName(HeapState::kEmpty), "empty (state 6)");
  EXPECT_NE(std::string(HeapStateName(HeapState::kFullMixed)).find("state 1"),
            std::string::npos);
}

TEST(CandidateHeapTest, ContainsChecksBothLists) {
  CandidateHeap h(4);
  h.InsertCertain(P(1, 1.0));
  h.InsertUncertain(P(2, 2.0));
  EXPECT_TRUE(h.Contains(1));
  EXPECT_TRUE(h.Contains(2));
  EXPECT_FALSE(h.Contains(3));
}

}  // namespace
}  // namespace senn::core
