// Shared world/request generators of the batch-answering test battery
// (batch_diff_test, batch_metamorphic_test, batch_cluster_test).
//
// Worlds follow the oracle_diff_test recipe — everything derives from
// (fixed master seed, trial index) through named counter-based streams —
// extended with the two ingredients batching cares about:
//   * query-point SKEW: a "hotspot" mode clusters most query points inside a
//     few small disks, so tiles actually collect multi-query clusters;
//   * SYSTEM-CONSISTENT prune bounds: built exactly the way SennProcessor
//     ships them — a CandidateHeap filled by kNN_single verification of a
//     peer cache that is itself an exact server answer, then
//     ComputeBounds() + the certified prefix size. Consistency matters:
//     for arbitrary (inconsistent) bounds the sequential EINN answer is
//     traversal-order-DEPENDENT, so only system-consistent inputs carry the
//     bitwise-equality contract the differential tests check.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/core/batch_server.h"
#include "src/core/candidate_heap.h"
#include "src/core/server.h"
#include "src/core/single_peer.h"
#include "src/storage/page.h"

namespace senn::core::batch_testing {

constexpr double kSide = 1000.0;

struct BatchWorld {
  std::vector<Poi> pois;
  std::unique_ptr<SpatialServer> server;
  std::vector<BatchQuery> queries;
};

struct WorldOptions {
  /// Cluster most query points inside a few small disks.
  bool hotspot = false;
  /// Run the server over the paged storage engine (small bounded pool, so
  /// miss accounting and pinning are exercised, not just counted).
  bool paged = false;
  rtree::AccessCountMode count_mode = rtree::AccessCountMode::kOnExpand;
  int max_queries = 14;
};

/// System-consistent prune bounds for (q, k): a peer cache (exact server
/// answer at `peer_loc`) verified through kNN_single into a heap of
/// capacity k. Returns the bounds plus the certified prefix size.
inline void ConsistentBounds(SpatialServer* server, geom::Vec2 q, int k,
                             geom::Vec2 peer_loc, int peer_size, BatchQuery* out) {
  CachedResult cached;
  cached.query_location = peer_loc;
  cached.neighbors = server->QueryKnn(peer_loc, peer_size).neighbors;
  CandidateHeap heap(k);
  if (!cached.Empty()) VerifySinglePeer(q, cached, &heap);
  out->bounds = heap.ComputeBounds();
  out->already_certified = static_cast<int>(heap.certain().size());
}

/// One randomized world: POIs, server, and a co-locatable request group.
inline BatchWorld BuildBatchWorld(int trial, const WorldOptions& options) {
  BatchWorld w;
  Rng rng = Rng(0xBA7C4u).Stream(options.hotspot ? "batch-hot" : "batch-uni",
                                 static_cast<uint64_t>(trial));
  const int n = static_cast<int>(rng.UniformInt(1, 120));
  geom::Vec2 hot[2] = {{rng.Uniform(0, kSide), rng.Uniform(0, kSide)},
                       {rng.Uniform(0, kSide), rng.Uniform(0, kSide)}};
  w.pois.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    geom::Vec2 p{rng.Uniform(0, kSide), rng.Uniform(0, kSide)};
    if (options.hotspot && rng.Bernoulli(0.6)) {
      const geom::Vec2& c = hot[rng.Bernoulli(0.5) ? 1 : 0];
      p = {c.x + rng.Uniform(-60.0, 60.0), c.y + rng.Uniform(-60.0, 60.0)};
    }
    w.pois.push_back({i, p});
  }
  storage::BufferPoolOptions pool;
  pool.capacity_pages = 8;  // small on purpose: evictions under traversal
  w.server = std::make_unique<SpatialServer>(
      w.pois, SpatialServer::DefaultTreeOptions(), options.count_mode,
      options.paged ? std::optional<storage::BufferPoolOptions>(pool) : std::nullopt);

  const int m = static_cast<int>(rng.UniformInt(1, static_cast<uint64_t>(options.max_queries)));
  for (int i = 0; i < m; ++i) {
    BatchQuery bq;
    if (options.hotspot && rng.Bernoulli(0.75)) {
      const geom::Vec2& c = hot[rng.Bernoulli(0.5) ? 1 : 0];
      bq.q = {c.x + rng.Uniform(-40.0, 40.0), c.y + rng.Uniform(-40.0, 40.0)};
    } else {
      bq.q = {rng.Uniform(0, kSide), rng.Uniform(0, kSide)};
    }
    // k = 0 is the degenerate request (empty reply on both paths).
    bq.k = static_cast<int>(rng.UniformInt(0, 10));
    if (bq.k > 0 && rng.Bernoulli(0.66)) {
      geom::Vec2 peer_loc{bq.q.x + rng.Uniform(-80.0, 80.0),
                          bq.q.y + rng.Uniform(-80.0, 80.0)};
      ConsistentBounds(w.server.get(), bq.q, bq.k, peer_loc,
                       static_cast<int>(rng.UniformInt(1, 12)), &bq);
    }
    w.queries.push_back(bq);
  }
  return w;
}

/// Lattice worlds (the PR-4 tie generator, batched): POIs on a regular grid
/// and every query point snapped to a lattice point or cell center, so
/// whole POI families are EXACTLY co-distant from each query and equal-key
/// pops actually happen inside the shared queue.
inline BatchWorld BuildLatticeBatchWorld(int trial, const WorldOptions& options) {
  BatchWorld w;
  Rng rng = Rng(0xBA1A77u).Stream("batch-lattice", static_cast<uint64_t>(trial));
  const double spacing = 60.0;
  const int cols = static_cast<int>(rng.UniformInt(3, 8));
  const int rows = static_cast<int>(rng.UniformInt(3, 8));
  int id = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      w.pois.push_back({id++, {c * spacing, r * spacing}});
    }
  }
  storage::BufferPoolOptions pool;
  pool.capacity_pages = 8;
  w.server = std::make_unique<SpatialServer>(
      w.pois, SpatialServer::DefaultTreeOptions(), options.count_mode,
      options.paged ? std::optional<storage::BufferPoolOptions>(pool) : std::nullopt);

  const int m = static_cast<int>(rng.UniformInt(1, static_cast<uint64_t>(options.max_queries)));
  for (int i = 0; i < m; ++i) {
    BatchQuery bq;
    const int qc = static_cast<int>(rng.UniformInt(0, static_cast<uint64_t>(cols - 1)));
    const int qr = static_cast<int>(rng.UniformInt(0, static_cast<uint64_t>(rows - 1)));
    bq.q = {qc * spacing, qr * spacing};
    if (rng.Bernoulli(0.5)) {
      bq.q.x += spacing / 2.0;  // cell center: 4 corners exactly co-distant
      bq.q.y += spacing / 2.0;
    }
    bq.k = static_cast<int>(rng.UniformInt(0, 10));
    if (bq.k > 0 && rng.Bernoulli(0.66)) {
      int pc = std::max(0, std::min(cols - 1, qc + static_cast<int>(rng.UniformInt(0, 4)) - 2));
      int pr = std::max(0, std::min(rows - 1, qr + static_cast<int>(rng.UniformInt(0, 4)) - 2));
      ConsistentBounds(w.server.get(), bq.q, bq.k, {pc * spacing, pr * spacing},
                       static_cast<int>(rng.UniformInt(1, 12)), &bq);
    }
    w.queries.push_back(bq);
  }
  return w;
}

/// Bitwise reply comparison: same POIs in the same order, bit-identical
/// distances and positions (both sides must run the same geom::Dist code
/// path — "close enough" would hide a divergent computation).
inline void ExpectSameNeighbors(const std::vector<RankedPoi>& got,
                                const std::vector<RankedPoi>& want, int trial,
                                size_t query_index, const char* what) {
  ASSERT_EQ(got.size(), want.size())
      << what << ", trial " << trial << ", query " << query_index;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].id, want[i].id)
        << what << ", trial " << trial << ", query " << query_index << ", rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance)
        << what << ", trial " << trial << ", query " << query_index << ", rank " << i;
    EXPECT_EQ(got[i].position.x, want[i].position.x)
        << what << ", trial " << trial << ", query " << query_index << ", rank " << i;
    EXPECT_EQ(got[i].position.y, want[i].position.y)
        << what << ", trial " << trial << ", query " << query_index << ", rank " << i;
  }
}

}  // namespace senn::core::batch_testing
