// Regression tests for deterministic tie-breaking: every comparator in the
// query path ranks POIs by the shared (distance, id) strict weak order
// (core::RanksBefore), so co-distant objects never depend on insertion
// order, peer arrival order, or R*-tree exploration order.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/core/candidate_heap.h"
#include "src/core/senn.h"
#include "src/core/server.h"
#include "src/core/single_peer.h"
#include "src/core/types.h"
#include "src/rtree/knn.h"
#include "src/rtree/rstar_tree.h"

namespace senn::core {
namespace {

constexpr double kTie = 60.0;  // the four co-distant POIs sit at this radius

/// Query point plus four POIs at identical distance kTie (ids 0..3) and a
/// ring of filler POIs further out. Every distance is exact in binary
/// (axis-aligned offsets), so the ties are real, not approximate.
struct TieWorld {
  geom::Vec2 q{500.0, 500.0};
  std::vector<Poi> pois;
  std::unique_ptr<SpatialServer> server;
  std::vector<CachedResult> peer_caches;
};

TieWorld BuildTieWorld() {
  TieWorld w;
  w.pois.push_back({0, {w.q.x + kTie, w.q.y}});
  w.pois.push_back({1, {w.q.x, w.q.y + kTie}});
  w.pois.push_back({2, {w.q.x - kTie, w.q.y}});
  w.pois.push_back({3, {w.q.x, w.q.y - kTie}});
  // Fillers well outside the tie radius, at pairwise-distinct distances.
  w.pois.push_back({4, {w.q.x + 200.0, w.q.y}});
  w.pois.push_back({5, {w.q.x, w.q.y + 230.0}});
  w.pois.push_back({6, {w.q.x - 260.0, w.q.y}});
  w.pois.push_back({7, {w.q.x, w.q.y - 290.0}});
  w.server = std::make_unique<SpatialServer>(w.pois);
  // Four peers just off Q in each direction; each caches the exact server
  // answer at its own location (the CachedResult invariant), large enough
  // that its certain disk around Q spans the tie radius.
  const geom::Vec2 peer_locs[4] = {{w.q.x + 30.0, w.q.y},
                                   {w.q.x, w.q.y + 30.0},
                                   {w.q.x - 30.0, w.q.y},
                                   {w.q.x, w.q.y - 30.0}};
  for (const geom::Vec2& loc : peer_locs) {
    CachedResult cached;
    cached.query_location = loc;
    cached.neighbors = w.server->QueryKnn(loc, 6).neighbors;
    w.peer_caches.push_back(std::move(cached));
  }
  return w;
}

void ExpectSameRanking(const std::vector<RankedPoi>& got, const std::vector<RankedPoi>& want,
                       const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << ", rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << what << ", rank " << i;
  }
}

TEST(TieBreakTest, ServerKnnRanksCoDistantPoisById) {
  TieWorld w = BuildTieWorld();
  // k=2 cuts through the four-way tie: only the two smallest ids survive.
  ServerReply reply = w.server->QueryKnn(w.q, 2);
  ASSERT_EQ(reply.neighbors.size(), 2u);
  EXPECT_EQ(reply.neighbors[0].id, 0);
  EXPECT_EQ(reply.neighbors[1].id, 1);
  // k=4 returns all four, ascending by id.
  reply = w.server->QueryKnn(w.q, 4);
  ASSERT_EQ(reply.neighbors.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(reply.neighbors[static_cast<size_t>(i)].id, i);
}

TEST(TieBreakTest, RtreeSearchesRankCoDistantObjectsById) {
  // Straight at the R*-tree layer, with enough objects to force real node
  // structure. Insertion order is adversarial (descending id).
  TieWorld w = BuildTieWorld();
  std::vector<Poi> pois = w.pois;
  for (int i = 8; i < 64; ++i) {
    pois.push_back({i, {w.q.x + 150.0 + 3.0 * i, w.q.y + 2.0 * i}});
  }
  rtree::RStarTree tree;
  for (auto it = pois.rbegin(); it != pois.rend(); ++it) tree.Insert(it->position, it->id);
  std::vector<rtree::Neighbor> df = rtree::DepthFirstKnn(tree, w.q, 3);
  std::vector<rtree::Neighbor> bf = rtree::BestFirstKnn(tree, w.q, 3);
  ASSERT_EQ(df.size(), 3u);
  ASSERT_EQ(bf.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(df[static_cast<size_t>(i)].object.id, i) << "depth-first rank " << i;
    EXPECT_EQ(bf[static_cast<size_t>(i)].object.id, i) << "best-first rank " << i;
  }
}

TEST(TieBreakTest, HeapIdenticalUnderShuffledPeerHarvest) {
  // The four co-distant POIs arrive from peers in every possible order; the
  // candidate heap must end up byte-for-byte identical each time.
  TieWorld w = BuildTieWorld();
  std::vector<size_t> order = {0, 1, 2, 3};
  std::vector<RankedPoi> baseline_certain, baseline_uncertain;
  bool first = true;
  do {
    CandidateHeap heap(3);
    for (size_t p : order) VerifySinglePeer(w.q, w.peer_caches[p], &heap);
    heap.AssertInvariants();
    if (first) {
      baseline_certain = heap.certain();
      baseline_uncertain = heap.uncertain();
      first = false;
      // The tie must actually be cut: rank 3 excludes exactly id 3.
      ASSERT_GE(baseline_certain.size(), 3u);
      for (int i = 0; i < 3; ++i) EXPECT_EQ(baseline_certain[static_cast<size_t>(i)].id, i);
    } else {
      ExpectSameRanking(heap.certain(), baseline_certain, "certain under shuffle");
      ExpectSameRanking(heap.uncertain(), baseline_uncertain, "uncertain under shuffle");
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(TieBreakTest, SennReportIdenticalUnderShuffledPeerOrder) {
  TieWorld w = BuildTieWorld();
  for (bool sort_peers : {true, false}) {
    SennOptions options;
    options.server_request_k = 6;
    options.sort_peers = sort_peers;
    SennProcessor processor(w.server.get(), options);

    std::vector<size_t> order = {0, 1, 2, 3};
    SennOutcome baseline;
    bool first = true;
    do {
      std::vector<const CachedResult*> peers;
      for (size_t p : order) peers.push_back(&w.peer_caches[p]);
      SennOutcome outcome = processor.Execute(w.q, 3, peers);
      if (first) {
        baseline = outcome;
        first = false;
        ASSERT_EQ(baseline.neighbors.size(), 3u) << "sort_peers=" << sort_peers;
        for (int i = 0; i < 3; ++i) EXPECT_EQ(baseline.neighbors[static_cast<size_t>(i)].id, i);
      } else {
        EXPECT_EQ(outcome.resolution, baseline.resolution) << "sort_peers=" << sort_peers;
        EXPECT_EQ(outcome.heap_state, baseline.heap_state) << "sort_peers=" << sort_peers;
        ExpectSameRanking(outcome.neighbors, baseline.neighbors, "SENN neighbors");
        ExpectSameRanking(outcome.certain_prefix, baseline.certain_prefix,
                          "SENN certain prefix");
      }
    } while (std::next_permutation(order.begin(), order.end()));
  }
}

}  // namespace
}  // namespace senn::core
