// Tests of the safe-region constructions (core/safe_region.h): the guard
// formulas, the degenerate/invalid cases, and — the part everything else
// leans on — soundness: inside CoversExact the locally ranked answer must be
// bitwise identical to a brute-force snapshot, and inside Contains the top-k
// SET must equal the members.
#include "src/core/safe_region.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/core/types.h"

namespace senn::core {
namespace {

using geom::Vec2;

constexpr double kPi = 3.14159265358979323846;

std::vector<RankedPoi> RankAll(const std::vector<Poi>& pois, Vec2 q) {
  std::vector<RankedPoi> all;
  for (const Poi& p : pois) all.push_back({p.id, p.position, geom::Dist(q, p.position)});
  std::sort(all.begin(), all.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return RanksBefore(a, b); });
  return all;
}

std::vector<RankedPoi> BruteTopK(const std::vector<Poi>& pois, Vec2 q, int k) {
  std::vector<RankedPoi> all = RankAll(pois, q);
  if (all.size() > static_cast<size_t>(k)) all.resize(static_cast<size_t>(k));
  return all;
}

std::vector<Poi> RandomPois(int n, Rng* rng, double extent) {
  std::vector<Poi> pois;
  for (int i = 0; i < n; ++i) {
    pois.push_back({i, {rng->Uniform(0, extent), rng->Uniform(0, extent)}});
  }
  return pois;
}

/// Rivals exactly as the INSQ fetch contract demands: every POI within
/// d_k + 2*horizon of the center.
std::vector<RankedPoi> FetchRivals(const std::vector<Poi>& pois, Vec2 center,
                                   double radius) {
  std::vector<RankedPoi> out;
  for (const RankedPoi& r : RankAll(pois, center)) {
    if (r.distance <= radius) out.push_back(r);
  }
  return out;
}

TEST(SafeRegionDiskTest, GuardRadiusFormula) {
  // Hand-placed prefix: d_1 = 100, d_2 = 300 around the origin.
  std::vector<RankedPoi> prefix = {{0, {100, 0}, 100.0}, {1, {0, 300}, 300.0}};
  SafeRegion r = SafeRegion::BuildDisk({0, 0}, prefix, 1);
  ASSERT_TRUE(r.Valid());
  EXPECT_EQ(r.mode(), SafeRegionMode::kDisk);
  EXPECT_EQ(r.k(), 1);
  EXPECT_DOUBLE_EQ(r.guard_radius(), 0.5 * (300.0 - 100.0) - kSafeRegionFpMargin * 301.0);
  EXPECT_DOUBLE_EQ(r.Area(), kPi * r.guard_radius() * r.guard_radius());
  ASSERT_EQ(r.members().size(), 1u);
  EXPECT_EQ(r.members()[0].id, 0);
  EXPECT_TRUE(r.rivals().empty());
}

TEST(SafeRegionDiskTest, DegeneratePrefixesAreInvalid) {
  std::vector<RankedPoi> prefix = {{0, {100, 0}, 100.0}, {1, {0, 300}, 300.0}};
  EXPECT_FALSE(SafeRegion::BuildDisk({0, 0}, prefix, 2).Valid());  // needs k+1
  EXPECT_FALSE(SafeRegion::BuildDisk({0, 0}, prefix, 0).Valid());
  EXPECT_FALSE(SafeRegion::BuildDisk({0, 0}, prefix, -3).Valid());
  EXPECT_FALSE(SafeRegion::BuildDisk({0, 0}, {}, 1).Valid());
  // A co-distant boundary tie leaves no room between d_k and d_{k+1}.
  std::vector<RankedPoi> tie = {{0, {100, 0}, 100.0}, {1, {0, 100}, 100.0}};
  EXPECT_FALSE(SafeRegion::BuildDisk({0, 0}, tie, 1).Valid());
}

TEST(SafeRegionDiskTest, ContainsIsTheStrictGuardedDisk) {
  std::vector<RankedPoi> prefix = {{0, {100, 0}, 100.0}, {1, {0, 300}, 300.0}};
  SafeRegion r = SafeRegion::BuildDisk({0, 0}, prefix, 1);
  ASSERT_TRUE(r.Valid());
  double g = r.guard_radius();
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({0.99 * g, 0}));
  EXPECT_FALSE(r.Contains({g, 0}));  // strict: the boundary is out
  EXPECT_FALSE(r.Contains({1.01 * g, 0}));
  // Contains and CoversExact coincide for the client-only disk.
  EXPECT_TRUE(r.CoversExact({0.99 * g, 0}));
  EXPECT_FALSE(r.CoversExact({g, 0}));
}

TEST(SafeRegionTest, InvalidRegionContainsNothing) {
  SafeRegion none;
  EXPECT_FALSE(none.Valid());
  EXPECT_FALSE(none.Contains({0, 0}));
  EXPECT_FALSE(none.CoversExact({0, 0}));
  EXPECT_DOUBLE_EQ(none.Area(), 0.0);
}

TEST(SafeRegionDiskTest, SoundOverRandomWorlds) {
  Rng rng(20060403);
  int contained_samples = 0;
  for (int world = 0; world < 40; ++world) {
    const double extent = rng.Uniform(500, 5000);
    std::vector<Poi> pois = RandomPois(static_cast<int>(rng.UniformInt(10, 80)), &rng, extent);
    const int k = static_cast<int>(rng.UniformInt(1, 5));
    Vec2 center{rng.Uniform(0, extent), rng.Uniform(0, extent)};
    std::vector<RankedPoi> prefix = RankAll(pois, center);
    if (prefix.size() <= static_cast<size_t>(k)) continue;
    SafeRegion r = SafeRegion::BuildDisk(center, prefix, k);
    if (!r.Valid()) continue;
    for (int s = 0; s < 30; ++s) {
      const double ang = rng.Uniform(0, 2 * kPi);
      const double rad = rng.Uniform(0, 2.0 * r.guard_radius());
      Vec2 p = center + Vec2{rad * std::cos(ang), rad * std::sin(ang)};
      if (!r.Contains(p)) continue;
      ++contained_samples;
      // Bitwise: same ids, same table positions, same recomputed distances.
      EXPECT_EQ(r.TopKAt(p, k), BruteTopK(pois, p, k)) << "world " << world;
    }
  }
  EXPECT_GT(contained_samples, 100);
}

TEST(SafeRegionInsqTest, RivalFetchMembersAreFiltered) {
  Rng rng(7);
  std::vector<Poi> pois = RandomPois(40, &rng, 2000);
  Vec2 center{1000, 1000};
  std::vector<RankedPoi> prefix = RankAll(pois, center);
  prefix.resize(12);
  const int k = 3;
  const double horizon = prefix.back().distance;
  const double fetch = prefix[k - 1].distance + 2.0 * horizon;
  SafeRegion r = SafeRegion::BuildInsq(center, prefix, k, horizon,
                                       FetchRivals(pois, center, fetch));
  ASSERT_TRUE(r.Valid());
  EXPECT_EQ(r.mode(), SafeRegionMode::kInsq);
  ASSERT_EQ(r.members().size(), static_cast<size_t>(k));
  for (const RankedPoi& m : r.members()) {
    for (const RankedPoi& v : r.rivals()) EXPECT_NE(m.id, v.id);
  }
  // Area: never larger than the horizon disk, and positive here (the guard
  // disk survives at least partially).
  EXPECT_GT(r.Area(), 0.0);
  EXPECT_LE(r.Area(), kPi * r.guard_radius() * r.guard_radius() + 1e-6);
}

TEST(SafeRegionInsqTest, InvalidCases) {
  std::vector<RankedPoi> prefix = {{0, {100, 0}, 100.0}, {1, {0, 300}, 300.0}};
  EXPECT_FALSE(SafeRegion::BuildInsq({0, 0}, prefix, 0, 100.0, {}).Valid());
  EXPECT_FALSE(SafeRegion::BuildInsq({0, 0}, prefix, 3, 100.0, {}).Valid());  // short
  EXPECT_FALSE(SafeRegion::BuildInsq({0, 0}, prefix, 1, 0.0, {}).Valid());    // no horizon
  EXPECT_FALSE(SafeRegion::BuildInsq({0, 0}, {}, 1, 100.0, {}).Valid());
}

TEST(SafeRegionInsqTest, CoversBeyondTheDiskAndStaysExact) {
  // The whole point of the server-assisted region: it answers positions the
  // client-only disk cannot reach, and stays bitwise exact there.
  Rng rng(20060403);
  int covered_samples = 0;
  int beyond_disk = 0;
  int answer_changed = 0;
  for (int world = 0; world < 40; ++world) {
    const double extent = rng.Uniform(800, 5000);
    std::vector<Poi> pois = RandomPois(static_cast<int>(rng.UniformInt(15, 90)), &rng, extent);
    const int k = static_cast<int>(rng.UniformInt(1, 5));
    Vec2 center{rng.Uniform(0.3 * extent, 0.7 * extent),
                rng.Uniform(0.3 * extent, 0.7 * extent)};
    std::vector<RankedPoi> prefix = RankAll(pois, center);
    if (prefix.size() < static_cast<size_t>(k) + 1) continue;
    if (prefix.size() > 12u) prefix.resize(12);
    const double horizon = prefix.back().distance;
    const double fetch = prefix[static_cast<size_t>(k) - 1].distance + 2.0 * horizon;
    SafeRegion insq =
        SafeRegion::BuildInsq(center, prefix, k, horizon, FetchRivals(pois, center, fetch));
    SafeRegion disk = SafeRegion::BuildDisk(center, prefix, k);
    if (!insq.Valid()) continue;
    // The horizon reaches d_m; the disk only (d_{k+1}-d_k)/2 <= d_m / 2.
    if (disk.Valid()) {
      EXPECT_GE(insq.guard_radius(), disk.guard_radius());
    }
    for (int s = 0; s < 30; ++s) {
      const double ang = rng.Uniform(0, 2 * kPi);
      // Sample to 90% depth: at the very rim the FP margin is the only
      // defense, which is sound but not what this test is measuring.
      const double rad = rng.Uniform(0, 0.9 * insq.guard_radius());
      Vec2 p = center + Vec2{rad * std::cos(ang), rad * std::sin(ang)};
      if (!insq.CoversExact(p)) continue;
      ++covered_samples;
      if (disk.Valid() && !disk.CoversExact(p)) ++beyond_disk;
      std::vector<RankedPoi> got = insq.TopKAt(p, k);
      EXPECT_EQ(got, BruteTopK(pois, p, k)) << "world " << world;
      if (insq.Contains(p)) {
        // Unchanged-answer cell: the set must still be the members.
        std::vector<PoiId> ids;
        for (const RankedPoi& g : got) ids.push_back(g.id);
        std::vector<PoiId> member_ids;
        for (const RankedPoi& m : insq.members()) member_ids.push_back(m.id);
        std::sort(ids.begin(), ids.end());
        std::sort(member_ids.begin(), member_ids.end());
        EXPECT_EQ(ids, member_ids);
      } else {
        ++answer_changed;
      }
    }
  }
  EXPECT_GT(covered_samples, 200);
  EXPECT_GT(beyond_disk, 50);      // the insq region genuinely reaches farther
  EXPECT_GT(answer_changed, 20);   // ... including where the answer moved
}

TEST(SafeRegionTest, TopKAtCapsAtTheRegionPrefix) {
  std::vector<RankedPoi> prefix = {
      {0, {10, 0}, 10.0}, {1, {0, 40}, 40.0}, {2, {90, 0}, 90.0}};
  SafeRegion r = SafeRegion::BuildDisk({0, 0}, prefix, 2);
  ASSERT_TRUE(r.Valid());
  // Asking for more than k() must not fabricate ranks the guard does not
  // cover.
  EXPECT_EQ(r.TopKAt({1, 1}, 5).size(), 2u);
  EXPECT_EQ(r.TopKAt({1, 1}, 1).size(), 1u);
}

}  // namespace
}  // namespace senn::core
