// Differential battery for the batched answering path: over hundreds of
// generated worlds — uniform and hotspot-skewed, random and lattice-tied,
// in-memory and paged, both access-accounting modes — every per-query reply
// of BatchServer::AnswerBatch must be BITWISE identical to the sequential
// SpatialServer::QueryKnn answer, at every batch size.
//
// This is the enforcement of the equivalence contract in batch_server.h: the
// shared traversal may visit nodes in a completely different order (and
// fewer of them), but for system-consistent inputs the per-query answer is a
// pure function of (query, world, bounds), so any divergence — a tie broken
// by traversal order, a prune that is too eager for one member, a candidate
// heap displaced by another query's objects — shows up as a wrong id or a
// non-identical double.
//
// The trial count is a compile definition: the same source builds the quick
// tier-1 binary (SENN_BATCH_TRIALS small) and the full sweep (slow label).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/core/batch_server.h"
#include "src/core/senn.h"
#include "tests/core/batch_test_util.h"

#ifndef SENN_BATCH_TRIALS
#define SENN_BATCH_TRIALS 200
#endif

namespace senn::core {
namespace {

using batch_testing::BatchWorld;
using batch_testing::BuildBatchWorld;
using batch_testing::BuildLatticeBatchWorld;
using batch_testing::ExpectSameNeighbors;
using batch_testing::WorldOptions;

constexpr int kTrials = SENN_BATCH_TRIALS;
constexpr int kBatchSizes[] = {1, 2, 8, 32};

/// Variant matrix per trial: storage engine and accounting mode rotate so
/// every combination appears many times across the sweep.
WorldOptions VariantFor(int trial, bool hotspot) {
  WorldOptions options;
  options.hotspot = hotspot;
  options.paged = trial % 2 == 1;
  options.count_mode =
      trial % 4 < 2 ? rtree::AccessCountMode::kOnExpand : rtree::AccessCountMode::kOnEnqueue;
  return options;
}

void RunDiff(const BatchWorld& w, int trial, const char* family) {
  // Sequential baseline. Answers do not depend on server state (stats and
  // pool residency never reach the result), so one server serves both paths.
  std::vector<ServerReply> sequential;
  sequential.reserve(w.queries.size());
  for (const BatchQuery& bq : w.queries) {
    sequential.push_back(
        w.server->QueryKnn(bq.q, bq.k, bq.bounds, bq.already_certified));
  }
  for (int max_group : kBatchSizes) {
    BatchOptions options;
    options.cluster_cell_m = 250.0;
    options.max_group = max_group;
    BatchServer batch(w.server.get(), options);
    std::vector<ServerReply> replies = batch.AnswerBatch(w.queries);
    ASSERT_EQ(replies.size(), w.queries.size());
    for (size_t i = 0; i < replies.size(); ++i) {
      ExpectSameNeighbors(replies[i].neighbors, sequential[i].neighbors, trial, i,
                          family);
      // The comparison INN run is per query in both paths and never touches
      // the pool: its logical counters must agree exactly.
      EXPECT_EQ(replies[i].inn_accesses.total(), sequential[i].inn_accesses.total())
          << family << ", trial " << trial << ", query " << i
          << ", max_group " << max_group;
    }
    EXPECT_EQ(batch.stats().queries, w.queries.size());
    EXPECT_EQ(batch.stats().batched_queries + batch.stats().singleton_queries,
              batch.stats().queries);
    if (max_group == 1) {
      EXPECT_EQ(batch.stats().batched_queries, 0u);
    }
  }
}

TEST(BatchDiffTest, UniformWorldsMatchSequentialAtEveryBatchSize) {
  for (int trial = 0; trial < kTrials; ++trial) {
    RunDiff(BuildBatchWorld(trial, VariantFor(trial, false)), trial, "uniform");
  }
}

TEST(BatchDiffTest, HotspotWorldsMatchSequentialAtEveryBatchSize) {
  int clustered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    BatchWorld w = BuildBatchWorld(trial, VariantFor(trial, true));
    RunDiff(w, trial, "hotspot");
    BatchOptions options;
    options.cluster_cell_m = 250.0;
    options.max_group = 32;
    BatchServer batch(w.server.get(), options);
    for (const std::vector<size_t>& cluster : batch.FormClusters(w.queries)) {
      if (cluster.size() >= 2) ++clustered;
    }
  }
  // The skew generator must actually produce shared traversals, or every
  // "batched" reply above went through the sequential delegation and the
  // test lost its teeth.
  EXPECT_GT(clustered, kTrials / 2);
}

TEST(BatchDiffTest, LatticeTieWorldsMatchSequentialAtEveryBatchSize) {
  for (int trial = 0; trial < kTrials; ++trial) {
    RunDiff(BuildLatticeBatchWorld(trial, VariantFor(trial, false)), trial, "lattice");
  }
}

// The full pipeline seam: SennProcessor::Execute must equal Prepare + a
// BatchServer drain + Finish — including the case where the same pending
// query is answered inside a genuine shared traversal (duplicated request,
// max_group 2).
TEST(BatchDiffTest, PreparePlusBatchDrainMatchesExecute) {
  int server_bound = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    WorldOptions wopt = VariantFor(trial, trial % 2 == 0);
    BatchWorld w = BuildBatchWorld(trial, wopt);
    // Peer caches: exact server answers near the first query point, the way
    // the simulator's hosts hold them.
    Rng rng = Rng(0x5EA2u).Stream("drain-trial", static_cast<uint64_t>(trial));
    geom::Vec2 q{rng.Uniform(0, batch_testing::kSide),
                 rng.Uniform(0, batch_testing::kSide)};
    const int k = static_cast<int>(rng.UniformInt(1, 10));
    std::vector<CachedResult> caches;
    const int peers = static_cast<int>(rng.UniformInt(0, 5));
    for (int p = 0; p < peers; ++p) {
      CachedResult cached;
      cached.query_location = {q.x + rng.Uniform(-80.0, 80.0),
                               q.y + rng.Uniform(-80.0, 80.0)};
      cached.neighbors =
          w.server->QueryKnn(cached.query_location,
                             static_cast<int>(rng.UniformInt(1, 12)))
              .neighbors;
      if (!cached.Empty()) caches.push_back(std::move(cached));
    }
    std::vector<const CachedResult*> cache_ptrs;
    for (const CachedResult& c : caches) cache_ptrs.push_back(&c);

    SennOptions sopt;
    sopt.server_request_k = std::max(k, 10);
    SennProcessor processor(w.server.get(), sopt);
    SennOutcome sequential = processor.Execute(q, k, cache_ptrs);

    PendingSenn pending = processor.Prepare(q, k, cache_ptrs);
    ASSERT_EQ(pending.needs_server, sequential.resolution == Resolution::kServer)
        << "trial " << trial;
    if (pending.needs_server) {
      ++server_bound;
      BatchQuery bq{pending.q, pending.heap_capacity, pending.outcome.bounds,
                    static_cast<int>(pending.certain.size())};
      BatchOptions options;
      options.max_group = 2;
      BatchServer batch(w.server.get(), options);
      // Duplicate the request: a cluster of two identical queries forces the
      // shared-traversal path (a singleton would delegate to QueryKnn and
      // prove nothing).
      std::vector<ServerReply> replies = batch.AnswerBatch({bq, bq});
      ASSERT_EQ(batch.stats().batched_queries, 2u) << "trial " << trial;
      ExpectSameNeighbors(replies[0].neighbors, replies[1].neighbors, trial, 0,
                          "duplicated request");
      processor.Finish(&pending, replies[0], nullptr);
    }
    ASSERT_EQ(pending.outcome.resolution, sequential.resolution) << "trial " << trial;
    ExpectSameNeighbors(pending.outcome.neighbors, sequential.neighbors, trial, 0,
                        "drained outcome");
    ExpectSameNeighbors(pending.outcome.certain_prefix, sequential.certain_prefix,
                        trial, 0, "drained certified prefix");
  }
  EXPECT_GT(server_bound, kTrials / 8);
}

}  // namespace
}  // namespace senn::core
