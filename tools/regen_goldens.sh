#!/usr/bin/env bash
# Regenerates the golden JSON lines pinned in tests/sim/golden_json_test.cpp.
#
# Run this ONLY after an intended metric change (a new field appended before
# "simulated_seconds", or a deliberate behavior change) — never to paper over
# an unexplained diff. The goldens pin the historical field prefix; compare
# the output below against the constants in the test and update the prefix
# by hand, keeping the prefix convention intact.
#
# Usage: tools/regen_goldens.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "${BUILD}" -S . >/dev/null
cmake --build "${BUILD}" -j "${JOBS}" --target senn_sim >/dev/null

echo "# kGoldenLosAngeles  (senn_sim --mode free --duration 300 --seed 42 --json)"
"${BUILD}/tools/senn_sim" --mode free --duration 300 --seed 42 --json | grep '^json ' | cut -c6-

echo
echo "# kGoldenRiverside  (senn_sim --region riverside --mode free --duration 240 --seed 7 --json)"
"${BUILD}/tools/senn_sim" --region riverside --mode free --duration 240 --seed 7 --json | grep '^json ' | cut -c6-
