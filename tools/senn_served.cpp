// senn_served — the standalone kNN query server (src/rpc/).
//
// Builds the same POI world a simulator with the same --seed/--pois/
// --area-side-m would build (the "world/poi" Rng stream), puts a
// SpatialServer (optionally paged) under an rpc::Server, and serves the
// binary wire protocol until SIGINT/SIGTERM. On shutdown it prints the
// dispatch and engine counters plus the metrics registry JSON.
//
// Drive it with the rpc::Client library, e.g. bench_ext_server against a
// already-running instance, or a quick smoke test:
//
//   ./build/tools/senn_served --port 7707 &
//   (the client side of tests/rpc/tcp_pipeline_test.cpp shows the calls)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "src/common/rng.h"
#include "src/core/server.h"
#include "src/obs/metrics.h"
#include "src/rpc/server.h"
#include "src/sim/params.h"
#include "src/storage/page.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N               listen port (default 0 = ephemeral, printed)\n"
      "  --bind ADDR            numeric IPv4 bind address (default 127.0.0.1)\n"
      "  --workers N            worker threads (default 2)\n"
      "  --batch N              answer a pipelined burst in shared EINN\n"
      "                         traversals of <= N co-located queries\n"
      "                         (default 1 = verbatim per-query answering)\n"
      "  --batch-cell M         co-location tile side in meters (default 500)\n"
      "  --pois N               POI count (default 10000)\n"
      "  --area-side-m M        world side length in meters (default 10000)\n"
      "  --seed S               world seed (default 1; a simulator with the\n"
      "                         same seed/pois/area sees the same POIs)\n"
      "  --buffer-pages N       paged storage with an N-frame pool (0 =\n"
      "                         unbounded; default: in-memory, no pool)\n"
      "  --replacement lru|clock  pool replacement policy (default lru)\n"
      "  --max-inflight N       admission-control cap on in-flight requests\n"
      "                         (default 4096; 0 disables shedding)\n",
      argv0);
  std::exit(2);
}

// Signal flag: the handler only sets it; the main loop polls.
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace senn;

  uint16_t port = 0;
  std::string bind = "127.0.0.1";
  int workers = 2;
  int batch = 1;
  double batch_cell = 500.0;
  int pois = 10000;
  double side = 10000.0;
  uint64_t seed = 1;
  bool paged = false;
  storage::BufferPoolOptions pool;
  size_t max_inflight = 4096;

  auto need = [&](int i) {
    if (i + 1 >= argc) Usage(argv[0]);
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port") {
      port = static_cast<uint16_t>(std::strtoul(need(i++), nullptr, 10));
    } else if (arg == "--bind") {
      bind = need(i++);
    } else if (arg == "--workers") {
      workers = static_cast<int>(std::strtol(need(i++), nullptr, 10));
      if (workers < 1) Usage(argv[0]);
    } else if (arg == "--batch") {
      batch = static_cast<int>(std::strtol(need(i++), nullptr, 10));
      if (batch < 1) Usage(argv[0]);
    } else if (arg == "--batch-cell") {
      batch_cell = std::strtod(need(i++), nullptr);
      if (batch_cell <= 0) Usage(argv[0]);
    } else if (arg == "--pois") {
      pois = static_cast<int>(std::strtol(need(i++), nullptr, 10));
      if (pois < 1) Usage(argv[0]);
    } else if (arg == "--area-side-m") {
      side = std::strtod(need(i++), nullptr);
      if (side <= 0) Usage(argv[0]);
    } else if (arg == "--seed") {
      seed = std::strtoull(need(i++), nullptr, 10);
    } else if (arg == "--buffer-pages") {
      paged = true;
      pool.capacity_pages = std::strtoul(need(i++), nullptr, 10);
    } else if (arg == "--replacement") {
      std::string v = need(i++);
      if (v == "lru") {
        pool.policy = storage::ReplacementPolicy::kLru;
      } else if (v == "clock") {
        pool.policy = storage::ReplacementPolicy::kClock;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--max-inflight") {
      max_inflight = std::strtoul(need(i++), nullptr, 10);
    } else {
      Usage(argv[0]);
    }
  }

  // The simulator's world recipe: POIs uniform over the area, from the
  // seed's "world/poi" stream.
  Rng rng(seed);
  Rng poi_rng = rng.Stream("world/poi");
  std::vector<core::Poi> poi_set;
  poi_set.reserve(static_cast<size_t>(pois));
  for (int i = 0; i < pois; ++i) {
    poi_set.push_back({i, {poi_rng.Uniform(0, side), poi_rng.Uniform(0, side)}});
  }
  core::SpatialServer spatial(
      std::move(poi_set), core::SpatialServer::DefaultTreeOptions(),
      rtree::AccessCountMode::kOnExpand,
      paged ? std::optional<storage::BufferPoolOptions>(pool) : std::nullopt);

  obs::MetricsRegistry metrics;
  rpc::ServerOptions options;
  options.bind_address = bind;
  options.port = port;
  options.worker_threads = workers;
  options.service.batch.max_group = batch;
  options.service.batch.cluster_cell_m = batch_cell;
  options.max_inflight_requests = max_inflight;
  rpc::Server server(&spatial, options, &metrics);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "senn_served: %s\n", st.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "senn_served: listening on %s:%u (%d workers, batch %d)\n",
               bind.c_str(), server.port(), workers, batch);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    // Idle wait; all work happens on the server's threads.
    ::poll(nullptr, 0, 200);
  }
  server.Stop();

  const rpc::ServerCounters c = server.counters();
  const rpc::ServiceStats s = server.service().stats();
  const core::BatchStats b = server.service().batch_stats();
  std::fprintf(stderr,
               "senn_served: shutting down\n"
               "  connections  accepted=%llu closed=%llu\n"
               "  frames       received=%llu framing_errors=%llu\n"
               "  dispatch     groups=%llu requests=%llu replies=%llu errors=%llu "
               "pings=%llu shed=%llu\n"
               "  engine       clusters=%llu batched_queries=%llu singleton=%llu\n",
               static_cast<unsigned long long>(c.connections_accepted),
               static_cast<unsigned long long>(c.connections_closed),
               static_cast<unsigned long long>(c.frames_received),
               static_cast<unsigned long long>(c.framing_errors),
               static_cast<unsigned long long>(s.groups),
               static_cast<unsigned long long>(s.requests),
               static_cast<unsigned long long>(s.replies),
               static_cast<unsigned long long>(s.errors),
               static_cast<unsigned long long>(s.pings),
               static_cast<unsigned long long>(c.requests_shed),
               static_cast<unsigned long long>(b.clusters),
               static_cast<unsigned long long>(b.batched_queries),
               static_cast<unsigned long long>(b.singleton_queries));
  std::printf("%s\n", metrics.ToJson().c_str());
  return 0;
}
