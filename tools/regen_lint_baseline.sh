#!/usr/bin/env bash
# Regenerates tools/lint_baseline.txt — the reviewed list of senn_lint
# allow() suppressions that `senn_lint --baseline` gates against (check.sh
# stage 6 and the senn_lint_src tier1 test).
#
# Run this after adding or removing a `// senn-lint: allow(<rule>): why`
# annotation, and commit the resulting diff: the baseline exists so every
# new suppression shows up in code review as a one-line change with its
# justification, instead of vanishing into a lint that "still passes".
#
# Usage: tools/regen_lint_baseline.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
LINT="${BUILD}/tools/senn_lint"
if [[ ! -x "${LINT}" ]]; then
  echo "regen_lint_baseline.sh: ${LINT} not built — run: cmake --build ${BUILD} --target senn_lint" >&2
  exit 1
fi

"${LINT}" --list-suppressions src tools > tools/lint_baseline.txt
echo "wrote tools/lint_baseline.txt ($(wc -l < tools/lint_baseline.txt) suppression(s))"
