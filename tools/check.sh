#!/usr/bin/env bash
# Repository check gate:
#   1. regular Release build + the full ctest suite;
#   2. ThreadSanitizer build of the library + the sim/core test binaries
#      (sweep-engine races, determinism under real concurrency);
#   3. (optional, CHECK_ASAN=1) AddressSanitizer pass over the same binaries.
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/3] Release build + full test suite ==="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "=== [2/3] ThreadSanitizer: sim + core test binaries ==="
cmake -B "${PREFIX}-tsan" -S . -DSENN_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target sim_test core_test common_test
"${PREFIX}-tsan/tests/sim_test"
"${PREFIX}-tsan/tests/core_test" --gtest_filter='OracleDiffTest.*'
"${PREFIX}-tsan/tests/common_test" --gtest_filter='Rng*:RunningStats*'

if [[ "${CHECK_ASAN:-0}" == "1" ]]; then
  echo "=== [3/3] AddressSanitizer: sim + core test binaries ==="
  cmake -B "${PREFIX}-asan" -S . -DSENN_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${PREFIX}-asan" -j "${JOBS}" --target sim_test core_test
  "${PREFIX}-asan/tests/sim_test"
  "${PREFIX}-asan/tests/core_test"
else
  echo "=== [3/3] AddressSanitizer pass skipped (set CHECK_ASAN=1 to enable) ==="
fi

echo "check.sh: all green"
