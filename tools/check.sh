#!/usr/bin/env bash
# Repository check gate:
#   1. regular Release build + the full ctest suite;
#   2. ThreadSanitizer build of the library + the net/sim/core test binaries
#      (sweep-engine races, determinism under real concurrency);
#   3. AddressSanitizer pass over the same binaries;
#   4. UndefinedBehaviorSanitizer pass (distance arithmetic, comparator and
#      angular-interval edge cases) over the same binaries + geom + obs;
#   5. SENN_PARANOID build (algorithmic invariant checks compiled in:
#      heap rank order, bounds sanity, buffer-pool pin balance) running the
#      tier1 label — any tripped invariant aborts the test binary and fails
#      the gate.
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/5] Release build + full test suite ==="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"
# Quick gate first: the fast tier-1 suites fail in seconds when something is
# fundamentally broken, before the slow simulation suites spin up.
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}" -L tier1 -LE slow
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "=== [2/5] ThreadSanitizer: net + sim + core + storage test binaries ==="
cmake -B "${PREFIX}-tsan" -S . -DSENN_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target net_test sim_test core_test common_test storage_test
"${PREFIX}-tsan/tests/net_test"
"${PREFIX}-tsan/tests/sim_test"
"${PREFIX}-tsan/tests/core_test" --gtest_filter='OracleDiffTest.*'
"${PREFIX}-tsan/tests/common_test" --gtest_filter='Rng*:RunningStats*:P2Quantile*:HitRate*'
"${PREFIX}-tsan/tests/storage_test"

echo "=== [3/5] AddressSanitizer: net + sim + core + storage test binaries ==="
cmake -B "${PREFIX}-asan" -S . -DSENN_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target net_test sim_test core_test storage_test
"${PREFIX}-asan/tests/net_test"
"${PREFIX}-asan/tests/sim_test"
"${PREFIX}-asan/tests/core_test"
"${PREFIX}-asan/tests/storage_test"

echo "=== [4/5] UBSan: net + sim + core + storage + geom + obs test binaries ==="
cmake -B "${PREFIX}-ubsan" -S . -DSENN_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${PREFIX}-ubsan" -j "${JOBS}" --target net_test sim_test core_test storage_test geom_test obs_test
"${PREFIX}-ubsan/tests/net_test"
"${PREFIX}-ubsan/tests/sim_test"
"${PREFIX}-ubsan/tests/core_test"
"${PREFIX}-ubsan/tests/storage_test"
"${PREFIX}-ubsan/tests/geom_test"
"${PREFIX}-ubsan/tests/obs_test"

echo "=== [5/5] SENN_PARANOID: invariant-checked tier1 suite ==="
cmake -B "${PREFIX}-paranoid" -S . -DSENN_PARANOID=ON >/dev/null
cmake --build "${PREFIX}-paranoid" -j "${JOBS}"
ctest --test-dir "${PREFIX}-paranoid" --output-on-failure -j "${JOBS}" -L tier1

echo "check.sh: all green"
