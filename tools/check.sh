#!/usr/bin/env bash
# Repository check gate:
#   1. regular Release build + the full ctest suite;
#   2. ThreadSanitizer build of the library + the net/sim/core test binaries
#      (sweep-engine races, determinism under real concurrency);
#   3. AddressSanitizer pass over the same binaries.
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/3] Release build + full test suite ==="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"
# Quick gate first: the fast tier-1 suites fail in seconds when something is
# fundamentally broken, before the slow simulation suites spin up.
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}" -L tier1 -LE slow
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "=== [2/3] ThreadSanitizer: net + sim + core + storage test binaries ==="
cmake -B "${PREFIX}-tsan" -S . -DSENN_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target net_test sim_test core_test common_test storage_test
"${PREFIX}-tsan/tests/net_test"
"${PREFIX}-tsan/tests/sim_test"
"${PREFIX}-tsan/tests/core_test" --gtest_filter='OracleDiffTest.*'
"${PREFIX}-tsan/tests/common_test" --gtest_filter='Rng*:RunningStats*:P2Quantile*:HitRate*'
"${PREFIX}-tsan/tests/storage_test"

echo "=== [3/3] AddressSanitizer: net + sim + core + storage test binaries ==="
cmake -B "${PREFIX}-asan" -S . -DSENN_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target net_test sim_test core_test storage_test
"${PREFIX}-asan/tests/net_test"
"${PREFIX}-asan/tests/sim_test"
"${PREFIX}-asan/tests/core_test"
"${PREFIX}-asan/tests/storage_test"

echo "check.sh: all green"
