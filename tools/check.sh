#!/usr/bin/env bash
# Repository check gate:
#   1. regular Release build + the full ctest suite;
#   2. ThreadSanitizer build of the library + the net/sim/core test binaries
#      (sweep-engine races, determinism under real concurrency);
#   3. AddressSanitizer pass over the same binaries;
#   4. UndefinedBehaviorSanitizer pass (distance arithmetic, comparator and
#      angular-interval edge cases) over the same binaries + geom + obs;
#   5. SENN_PARANOID build (algorithmic invariant checks compiled in:
#      heap rank order, bounds sanity, buffer-pool pin balance) running the
#      tier1 label — any tripped invariant aborts the test binary and fails
#      the gate;
#   6. static analysis: senn_lint (the determinism/soundness rules of
#      DESIGN.md's "Determinism contract") over src/ and tools/, with the
#      suppression list gated against tools/lint_baseline.txt by the
#      binary's own --baseline diff (regenerate with
#      tools/regen_lint_baseline.sh after review), and — when clang-tidy
#      is installed — the curated .clang-tidy checks over the stage-1
#      compile_commands.json. A missing clang-tidy binary skips that half
#      with a notice; senn_lint always gates.
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Stage banners: `stage "title"` prints "=== [k/N] title ===" with k
# auto-incremented and N derived by counting the stage calls in this very
# script — adding a stage means writing its body, nothing else, where the
# hardcoded STAGES=6 this replaces silently lied the moment a stage was
# added without the bump.
STAGES="$(grep -cE '^stage "' "$0")"
STAGE_NO=0
stage() {
  STAGE_NO=$((STAGE_NO + 1))
  echo "=== [${STAGE_NO}/${STAGES}] $1 ==="
}

stage "Release build + full test suite"
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"
# Quick gate first: the fast tier-1 suites fail in seconds when something is
# fundamentally broken, before the slow simulation suites spin up.
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}" -L tier1 -LE slow
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

stage "ThreadSanitizer: net + rpc + sim + core + storage + ch + continuous test binaries"
cmake -B "${PREFIX}-tsan" -S . -DSENN_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target net_test rpc_test sim_test core_test common_test storage_test batch_test ch_test snnn_oracle_test continuous_diff_test
"${PREFIX}-tsan/tests/net_test"
"${PREFIX}-tsan/tests/rpc_test"
"${PREFIX}-tsan/tests/sim_test"
"${PREFIX}-tsan/tests/core_test" --gtest_filter='OracleDiffTest.*'
"${PREFIX}-tsan/tests/common_test" --gtest_filter='Rng*:RunningStats*:P2Quantile*:HitRate*'
"${PREFIX}-tsan/tests/storage_test"
"${PREFIX}-tsan/tests/batch_test" --gtest_filter="BatchDiffTest.*"
"${PREFIX}-tsan/tests/ch_test" --gtest_filter='ChDiffTest.GeneratedRoadNetworksBitwise'
"${PREFIX}-tsan/tests/snnn_oracle_test" --gtest_filter='SnnnOracleTest.PointOracleAgreesToo'
"${PREFIX}-tsan/tests/continuous_diff_test" --gtest_filter='ContinuousDiffTest.PeerRegionSharingStaysExact'

stage "AddressSanitizer: net + rpc + sim + core + storage + ch + continuous test binaries"
cmake -B "${PREFIX}-asan" -S . -DSENN_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target net_test rpc_test sim_test core_test storage_test batch_test ch_test snnn_oracle_test continuous_diff_test
"${PREFIX}-asan/tests/net_test"
"${PREFIX}-asan/tests/rpc_test"
"${PREFIX}-asan/tests/sim_test"
"${PREFIX}-asan/tests/core_test"
"${PREFIX}-asan/tests/storage_test"
"${PREFIX}-asan/tests/batch_test"
"${PREFIX}-asan/tests/ch_test"
"${PREFIX}-asan/tests/snnn_oracle_test"
"${PREFIX}-asan/tests/continuous_diff_test"

stage "UBSan: net + sim + core + storage + geom + obs + ch + continuous test binaries"
cmake -B "${PREFIX}-ubsan" -S . -DSENN_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${PREFIX}-ubsan" -j "${JOBS}" --target net_test sim_test core_test storage_test geom_test obs_test batch_test ch_test snnn_oracle_test continuous_diff_test
"${PREFIX}-ubsan/tests/net_test"
"${PREFIX}-ubsan/tests/sim_test"
"${PREFIX}-ubsan/tests/core_test"
"${PREFIX}-ubsan/tests/storage_test"
"${PREFIX}-ubsan/tests/geom_test"
"${PREFIX}-ubsan/tests/obs_test"
"${PREFIX}-ubsan/tests/batch_test"
"${PREFIX}-ubsan/tests/ch_test"
"${PREFIX}-ubsan/tests/snnn_oracle_test"
"${PREFIX}-ubsan/tests/continuous_diff_test"

stage "SENN_PARANOID: invariant-checked tier1 suite"
cmake -B "${PREFIX}-paranoid" -S . -DSENN_PARANOID=ON >/dev/null
cmake --build "${PREFIX}-paranoid" -j "${JOBS}"
ctest --test-dir "${PREFIX}-paranoid" --output-on-failure -j "${JOBS}" -L tier1

stage "Static analysis: senn_lint + suppression baseline + clang-tidy"
LINT="${PREFIX}/tools/senn_lint"
# One gating run: findings, unused suppressions, AND baseline drift all fail
# it (the binary diffs the suppression list against the baseline itself —
# a new allow() lands by running tools/regen_lint_baseline.sh and
# committing the diff, never silently). The JSON run proves the
# machine-readable path stays parseable for CI consumers.
"${LINT}" --baseline tools/lint_baseline.txt src tools
"${LINT}" --json --baseline tools/lint_baseline.txt src tools >/dev/null
if command -v clang-tidy >/dev/null 2>&1; then
  # Library sources only — test fixtures under tests/lint/ are deliberately
  # broken and gtest macros trip bugprone checks.
  git ls-files 'src/*.cc' | xargs -P "${JOBS}" -n 8 clang-tidy -p "${PREFIX}" --quiet
else
  echo "clang-tidy not installed — skipping the optional tidy half of stage ${STAGE_NO}"
fi

echo "check.sh: all green"
