// senn_sim — command-line front end for the simulation engine.
//
// Runs one simulation with any parameter overridden from the shell and
// prints the aggregate metrics (plus an optional per-query CSV trace), so
// experiments beyond the canned benches need no C++:
//
//   senn_sim --region la --area 2x2 --mode road --tx 150 --duration 1800
//   senn_sim --region riverside --area 30x30 --scale 5 --k 7 --trace /tmp/q.csv
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/snnn.h"
#include "src/obs/chrome_trace.h"
#include "src/roadnet/ch.h"
#include "src/roadnet/locate.h"
#include "src/sim/report.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep.h"
#include "src/sim/trace.h"

namespace {

using namespace senn;

[[noreturn]] void Usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --region la|suburbia|riverside   parameter set (default la)\n"
      "  --area 2x2|30x30                 Table 3 or Table 4 scale (default 2x2)\n"
      "  --mode road|free                 movement mode (default road)\n"
      "  --scale S                        linear density-preserving scale-down (default 1)\n"
      "  --duration S                     simulated seconds (default: the set's T_execution)\n"
      "  --tx METERS                      transmission range override\n"
      "  --cache N                        cache capacity override\n"
      "  --speed MPH                      M_Velocity override\n"
      "  --k N                            lambda_kNN override\n"
      "  --seed N                         master seed (default 1)\n"
      "  --step S                         movement time step seconds (default 1)\n"
      "  --stationary-fraction            M_Percentage as population split (default: duty cycle)\n"
      "  --no-multi-peer                  disable kNN_multiple (ablation)\n"
      "  --ship-region                    region-aware server protocol (extension)\n"
      "  --loss P                         per-transmission loss probability (default 0)\n"
      "  --latency-mean S                 mean one-way link latency seconds (default 0)\n"
      "  --reply-timeout S                reply collection deadline seconds (default 0.25)\n"
      "  --retries N                      rebroadcasts after silent rounds (default 2)\n"
      "  --buffer-pages N|unbounded       answer through the paged storage engine with an\n"
      "                                   N-frame buffer pool (unbounded = every page resident)\n"
      "  --replacement lru|clock          buffer-pool replacement policy (default lru)\n"
      "  --server-batch N                 answer each step's server contacts in shared\n"
      "                                   EINN traversals of <= N co-located queries\n"
      "                                   (default 1 = sequential per-query path)\n"
      "  --server-transport inproc|loopback\n"
      "                                   how server contacts reach the spatial server:\n"
      "                                   direct calls (default) or the full rpc wire\n"
      "                                   path through src/rpc/ in process (byte-identical\n"
      "                                   outputs; golden-tested)\n"
      "  --continuous                     continuous-query mode: every host advances one\n"
      "                                   long-lived kNN query (core/continuous.h) instead\n"
      "                                   of issuing independent snapshot queries; needs\n"
      "                                   the sequential in-process transport and no\n"
      "                                   --trace/--trace-out (steps are not span-traced)\n"
      "  --safe-region off|disk|insq      validity-region construction continuous queries\n"
      "                                   maintain (default off; see core/safe_region.h)\n"
      "  --shards N                       run N decorrelated seed shards and merge\n"
      "  --threads N                      sweep-engine workers for the shards\n"
      "                                   (default 1; 0 = all cores)\n"
      "  --snnn N                         after the run, answer N network-NN (SNNN)\n"
      "                                   queries over shard 0's world and report the\n"
      "                                   oracle cost (road mode only)\n"
      "  --distance-oracle dijkstra|ch    SNNN network-distance backend: fresh Dijkstra\n"
      "                                   per candidate (default) or the contraction-\n"
      "                                   hierarchy bucket oracle — identical answers,\n"
      "                                   different cost\n"
      "  --json                           also print the metrics as one JSON line\n"
      "  --trace FILE                     write a per-query CSV trace (shard 0 only)\n"
      "  --trace-out FILE                 write a Chrome trace_event JSON of per-query\n"
      "                                   phase spans (shard 0 only; open in Perfetto)\n"
      "  --trace-sample N                 trace every N-th query only (default 1)\n",
      argv0);
  std::exit(2);
}

double ScaledDown(double value, double area_factor) { return value / area_factor; }

}  // namespace

int main(int argc, char** argv) {
  sim::Region region = sim::Region::kLosAngeles;
  bool big_area = false;
  sim::SimulationConfig cfg;
  double scale = 1.0;
  std::string trace_path;
  std::string trace_out_path;
  uint64_t trace_sample = 1;
  double tx = -1, cache = -1, speed = -1, k = -1;
  int shards = 1, threads = 1;
  bool print_json = false;
  int snnn_queries = 0;
  bool snnn_use_ch = false;

  auto need = [&](int i) {
    if (i + 1 >= argc) Usage(argv[0]);
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--region") {
      std::string v = need(i++);
      if (v == "la") {
        region = sim::Region::kLosAngeles;
      } else if (v == "suburbia") {
        region = sim::Region::kSyntheticSuburbia;
      } else if (v == "riverside") {
        region = sim::Region::kRiverside;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--area") {
      std::string v = need(i++);
      big_area = v == "30x30";
      if (!big_area && v != "2x2") Usage(argv[0]);
    } else if (arg == "--mode") {
      std::string v = need(i++);
      cfg.mode = v == "free" ? sim::MovementMode::kFreeMovement
                             : sim::MovementMode::kRoadNetwork;
      if (v != "free" && v != "road") Usage(argv[0]);
    } else if (arg == "--scale") {
      scale = std::strtod(need(i++), nullptr);
    } else if (arg == "--duration") {
      cfg.duration_s = std::strtod(need(i++), nullptr);
    } else if (arg == "--tx") {
      tx = std::strtod(need(i++), nullptr);
    } else if (arg == "--cache") {
      cache = std::strtod(need(i++), nullptr);
    } else if (arg == "--speed") {
      speed = std::strtod(need(i++), nullptr);
    } else if (arg == "--k") {
      k = std::strtod(need(i++), nullptr);
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(need(i++), nullptr, 10);
    } else if (arg == "--step") {
      cfg.time_step_s = std::strtod(need(i++), nullptr);
    } else if (arg == "--stationary-fraction") {
      cfg.m_percentage_mode = sim::MPercentageMode::kStationaryFraction;
    } else if (arg == "--no-multi-peer") {
      cfg.senn.enable_multi_peer = false;
    } else if (arg == "--ship-region") {
      cfg.senn.ship_region = true;
    } else if (arg == "--loss") {
      cfg.channel.loss = std::strtod(need(i++), nullptr);
      if (cfg.channel.loss < 0.0 || cfg.channel.loss > 1.0) Usage(argv[0]);
    } else if (arg == "--latency-mean") {
      cfg.channel.latency_mean_s = std::strtod(need(i++), nullptr);
      if (cfg.channel.latency_mean_s < 0.0) Usage(argv[0]);
    } else if (arg == "--reply-timeout") {
      cfg.channel.reply_timeout_s = std::strtod(need(i++), nullptr);
      if (cfg.channel.reply_timeout_s < 0.0) Usage(argv[0]);
    } else if (arg == "--retries") {
      cfg.channel.max_retries = static_cast<int>(std::strtol(need(i++), nullptr, 10));
      if (cfg.channel.max_retries < 0) Usage(argv[0]);
    } else if (arg == "--buffer-pages") {
      std::string v = need(i++);
      cfg.paged_storage = true;
      if (v == "unbounded") {
        cfg.buffer.capacity_pages = 0;
      } else {
        long pages = std::strtol(v.c_str(), nullptr, 10);
        if (pages < 1) Usage(argv[0]);
        cfg.buffer.capacity_pages = static_cast<size_t>(pages);
      }
    } else if (arg == "--server-batch") {
      cfg.server_batch = static_cast<int>(std::strtol(need(i++), nullptr, 10));
      if (cfg.server_batch < 1) Usage(argv[0]);
    } else if (arg == "--server-transport") {
      std::string v = need(i++);
      if (v == "inproc") {
        cfg.server_transport = sim::ServerTransport::kInProcess;
      } else if (v == "loopback") {
        cfg.server_transport = sim::ServerTransport::kLoopback;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--replacement") {
      std::string v = need(i++);
      if (v == "lru") {
        cfg.buffer.policy = storage::ReplacementPolicy::kLru;
      } else if (v == "clock") {
        cfg.buffer.policy = storage::ReplacementPolicy::kClock;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--continuous") {
      cfg.continuous = true;
    } else if (arg == "--safe-region") {
      std::string v = need(i++);
      if (v == "off") {
        cfg.safe_region = core::SafeRegionMode::kOff;
      } else if (v == "disk") {
        cfg.safe_region = core::SafeRegionMode::kDisk;
      } else if (v == "insq") {
        cfg.safe_region = core::SafeRegionMode::kInsq;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--shards") {
      shards = static_cast<int>(std::strtol(need(i++), nullptr, 10));
      if (shards < 1) Usage(argv[0]);
    } else if (arg == "--threads") {
      threads = static_cast<int>(std::strtol(need(i++), nullptr, 10));
    } else if (arg == "--snnn") {
      snnn_queries = static_cast<int>(std::strtol(need(i++), nullptr, 10));
      if (snnn_queries < 1) Usage(argv[0]);
    } else if (arg == "--distance-oracle") {
      std::string v = need(i++);
      if (v == "dijkstra") {
        snnn_use_ch = false;
      } else if (v == "ch") {
        snnn_use_ch = true;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--json") {
      print_json = true;
    } else if (arg == "--trace") {
      trace_path = need(i++);
    } else if (arg == "--trace-out") {
      trace_out_path = need(i++);
    } else if (arg == "--trace-sample") {
      trace_sample = std::strtoull(need(i++), nullptr, 10);
      if (trace_sample < 1) Usage(argv[0]);
    } else {
      Usage(argv[0]);
    }
  }

  cfg.params = big_area ? sim::Table4(region) : sim::Table3(region);
  if (scale > 1.0) {
    double area_factor = scale * scale;
    cfg.params.area_side_miles /= scale;
    cfg.params.poi_number =
        std::max(1, static_cast<int>(ScaledDown(cfg.params.poi_number, area_factor) + 0.5));
    cfg.params.mh_number =
        std::max(1, static_cast<int>(ScaledDown(cfg.params.mh_number, area_factor) + 0.5));
    cfg.params.queries_per_minute = ScaledDown(cfg.params.queries_per_minute, area_factor);
  }
  if (tx > 0) cfg.params.tx_range_m = tx;
  if (cache > 0) cfg.params.cache_size = static_cast<int>(cache);
  if (speed > 0) cfg.params.velocity_mph = speed;
  if (k > 0) {
    cfg.params.k_nn = static_cast<int>(k);
    cfg.params.cache_size = std::max(cfg.params.cache_size, cfg.params.k_nn);
  }
  if (cfg.continuous) {
    // Continuous steps run on the sequential in-process path (simulator.h)
    // and are not span-traced; reject conflicting flags up front.
    if (cfg.server_batch > 1) {
      std::fprintf(stderr, "--continuous requires --server-batch 1\n");
      return 2;
    }
    if (cfg.server_transport == sim::ServerTransport::kLoopback) {
      std::fprintf(stderr, "--continuous requires --server-transport inproc\n");
      return 2;
    }
    if (!trace_path.empty() || !trace_out_path.empty()) {
      std::fprintf(stderr, "--continuous steps are not traced; drop --trace/--trace-out\n");
      return 2;
    }
  }

  sim::PrintParameterSet(cfg.params);
  std::printf("  %-22s %10s\n", "Movement mode", sim::MovementModeName(cfg.mode));
  std::printf("  %-22s %10llu\n", "Seed",
              static_cast<unsigned long long>(cfg.seed));
  if (!cfg.channel.Ideal()) {
    std::printf("  %-22s loss=%.2f latency=%.0fms timeout=%.0fms retries=%d\n", "Channel",
                cfg.channel.loss, cfg.channel.latency_mean_s * 1000.0,
                cfg.channel.reply_timeout_s * 1000.0, cfg.channel.max_retries);
  }
  if (cfg.continuous) {
    std::printf("  %-22s safe-region=%s\n", "Continuous mode",
                core::SafeRegionModeName(cfg.safe_region));
  }
  if (shards > 1) {
    std::printf("  %-22s %10d (x%d threads)\n", "Seed shards", shards,
                sim::ResolveThreads(threads));
  }
  if (cfg.paged_storage) {
    if (cfg.buffer.capacity_pages == 0) {
      std::printf("  %-22s  unbounded (%s)\n", "Buffer pool",
                  storage::ReplacementPolicyName(cfg.buffer.policy));
    } else {
      std::printf("  %-22s %10zu pages (%s)\n", "Buffer pool", cfg.buffer.capacity_pages,
                  storage::ReplacementPolicyName(cfg.buffer.policy));
    }
  }

  std::vector<sim::SimulationConfig> shard_cfgs;
  shard_cfgs.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) shard_cfgs.push_back(sim::ShardConfig(cfg, s));

  sim::QueryTrace trace;
  obs::ChromeTraceWriter chrome_trace;
  obs::MetricsRegistry phase_metrics;
  obs::PhaseMetricsSink metrics_sink(&phase_metrics);
  obs::TeeSink span_tee;
  span_tee.Add(&chrome_trace);
  span_tee.Add(&metrics_sink);
  std::vector<sim::SimulationResult> parts;
  if (!trace_path.empty() || !trace_out_path.empty()) {
    // The trace sinks are single-threaded; run the traced shard on its own
    // simulator and the rest on the pool. Shard 0 alone is deterministic
    // regardless of how the remaining shards are scheduled, so the trace
    // files are byte-identical at any --threads.
    sim::Simulator traced(shard_cfgs[0]);
    if (!trace_path.empty()) traced.AttachTrace(&trace);
    if (!trace_out_path.empty()) traced.AttachSpanSink(&span_tee, trace_sample);
    parts.push_back(traced.Run());
    std::vector<sim::SimulationConfig> rest(shard_cfgs.begin() + 1, shard_cfgs.end());
    std::vector<sim::SimulationResult> rest_results =
        sim::RunConfigs(rest, sim::SweepOptions{threads});
    parts.insert(parts.end(), rest_results.begin(), rest_results.end());
  } else {
    parts = sim::RunConfigs(shard_cfgs, sim::SweepOptions{threads});
  }
  sim::SimulationResult r = sim::MergeResults(parts);

  std::printf("\nresults over %llu measured queries (%.0f simulated seconds):\n",
              static_cast<unsigned long long>(r.measured_queries), r.simulated_seconds);
  std::printf("  server           %6.1f %%   (SQRR)\n", r.pct_server);
  std::printf("  single-peer      %6.1f %%\n", r.pct_single_peer);
  std::printf("  multi-peer       %6.1f %%\n", r.pct_multi_peer);
  std::printf("  peers in range   %6.1f (mean)\n", r.peers_in_range.mean());
  std::printf("  p2p msgs/query   %6.2f   (%.0f bytes)\n", r.p2p_messages_per_query.mean(),
              r.p2p_bytes_per_query.mean());
  std::printf("  query latency    p50 %.1f ms   p95 %.1f ms   p99 %.1f ms\n",
              r.latency_p50.value() * 1000.0, r.latency_p95.value() * 1000.0,
              r.latency_p99.value() * 1000.0);
  if (r.transmissions_lost > 0 || r.replies_missed > 0 || r.retries_per_query.sum() > 0) {
    std::printf("  channel          %llu transmissions lost, %llu replies missed, "
                "%.2f retries/query\n",
                static_cast<unsigned long long>(r.transmissions_lost),
                static_cast<unsigned long long>(r.replies_missed),
                r.retries_per_query.mean());
    std::printf("  loss-induced server fallbacks %llu (%.1f %% of queries)\n",
                static_cast<unsigned long long>(r.loss_induced_server_fallbacks),
                r.measured_queries > 0
                    ? 100.0 * static_cast<double>(r.loss_induced_server_fallbacks) /
                          static_cast<double>(r.measured_queries)
                    : 0.0);
  }
  if (r.by_server > 0) {
    std::printf("  pages/server q   %6.2f EINN, %.2f INN\n", r.einn_pages.mean(),
                r.inn_pages.mean());
  }
  if (cfg.paged_storage && r.buffer.total() > 0) {
    std::printf("  buffer pool      %6.1f %% hit rate (%llu hits / %llu accesses), "
                "%.2f miss pages/server q\n",
                100.0 * r.buffer.rate(), static_cast<unsigned long long>(r.buffer.hits()),
                static_cast<unsigned long long>(r.buffer.total()),
                r.einn_miss_pages.mean());
  }
  if (cfg.server_batch > 1) {
    std::printf("  server batching  %6.2f avg cluster size, %llu shared traversals "
                "answered %llu queries\n",
                r.batch_cluster_size.mean(),
                static_cast<unsigned long long>(r.batch_clusters),
                static_cast<unsigned long long>(r.batch_batched_queries));
  }
  if (cfg.continuous && r.continuous_steps > 0) {
    const double n = static_cast<double>(r.continuous_steps);
    std::printf("  continuous steps %llu by source: safe-region %.1f %%  peer-region "
                "%.1f %%  own-cache %.1f %%  peer %.1f %%  server %.1f %%\n",
                static_cast<unsigned long long>(r.continuous_steps),
                100.0 * static_cast<double>(r.continuous_safe_region_steps) / n,
                100.0 * static_cast<double>(r.continuous_peer_region_steps) / n,
                100.0 * static_cast<double>(r.continuous_own_cache_steps) / n,
                100.0 * static_cast<double>(r.continuous_peer_steps) / n,
                100.0 * static_cast<double>(r.continuous_server_steps) / n);
    if (r.continuous_uncertain_steps > 0) {
      std::printf("  uncertain steps  %llu (best-effort answers)\n",
                  static_cast<unsigned long long>(r.continuous_uncertain_steps));
    }
    if (r.continuous_region_area_m2.count() > 0) {
      std::printf("  safe regions     %llu built, %.4f km^2 mean area, %llu rival-fetch "
                  "pages\n",
                  static_cast<unsigned long long>(r.continuous_region_area_m2.count()),
                  r.continuous_region_area_m2.mean() * 1e-6,
                  static_cast<unsigned long long>(r.continuous_region_pages));
    }
  }

  if (print_json) std::printf("json %s\n", sim::SimulationResultJson(r).c_str());

  if (!trace_path.empty()) {
    Status s = trace.WriteCsvToFile(trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("trace: %zu events -> %s\n", trace.size(), trace_path.c_str());
  }
  if (!trace_out_path.empty()) {
    // Per-phase cost table (shard 0): the phase decomposition behind the
    // paper's Figs. 10-13 aggregates. Ticks are logical span ticks, not
    // wall time; the arg histograms carry the physical quantities.
    std::printf("\nper-phase costs (traced shard, %llu spans):\n",
                static_cast<unsigned long long>(chrome_trace.span_count()));
    std::printf("  %-14s %10s %12s\n", "phase", "spans", "mean args");
    for (int p = 0; p < obs::kPhaseCount; ++p) {
      const char* name = obs::PhaseName(static_cast<obs::Phase>(p));
      uint64_t count = phase_metrics.counter(std::string("span/") + name);
      if (count == 0) continue;
      std::printf("  %-14s %10llu", name, static_cast<unsigned long long>(count));
      for (const auto& [hname, stats] : phase_metrics.histograms()) {
        const std::string prefix = std::string(name) + "/";
        if (hname.rfind(prefix, 0) != 0 || hname == prefix + "ticks") continue;
        std::printf("  %s=%.2f", hname.c_str() + prefix.size(), stats.mean());
      }
      std::printf("\n");
    }
    Status s = chrome_trace.WriteToFile(trace_out_path);
    if (!s.ok()) {
      std::fprintf(stderr, "trace-out write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("trace-out: %zu spans -> %s (open in https://ui.perfetto.dev)\n",
                chrome_trace.span_count(), trace_out_path.c_str());
  }

  if (snnn_queries > 0) {
    // Post-run SNNN evaluation (Algorithm 2): rebuild shard 0's world —
    // deterministic, so this is exactly the road network and POI set the
    // simulation used — and answer N network-NN queries through the chosen
    // distance oracle. Both backends return identical result sets
    // (tests/core/snnn_oracle_test.cpp); the point of the flag is the cost
    // comparison, reported below as settled nodes and wall time.
    sim::Simulator world(shard_cfgs[0]);
    const roadnet::Graph* graph = world.graph();
    if (graph == nullptr) {
      std::fprintf(stderr, "--snnn requires --mode road (free movement has no road graph)\n");
      return 1;
    }
    roadnet::EdgeLocator locator(graph, 150.0);
    core::SpatialServer server(world.pois());

    obs::MetricsRegistry snnn_metrics;
    roadnet::DijkstraOracle dijkstra(graph);
    std::unique_ptr<roadnet::ch::Hierarchy> hier;
    std::unique_ptr<roadnet::ch::BucketOracle> bucket;
    roadnet::DistanceOracle* oracle = &dijkstra;
    std::printf("\nSNNN over shard 0's world (%zu nodes, %zu edges, %zu POIs):\n",
                graph->node_count(), graph->edge_count(), world.pois().size());
    if (snnn_use_ch) {
      auto t0 = std::chrono::steady_clock::now();
      hier = std::make_unique<roadnet::ch::Hierarchy>(
          roadnet::ch::Hierarchy::Build(*graph, {}, &snnn_metrics));
      double build_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      bucket = std::make_unique<roadnet::ch::BucketOracle>(hier.get(), &snnn_metrics);
      oracle = bucket.get();
      std::printf("  ch build         %6.1f ms   (%llu overlay edges + %llu shortcuts)\n",
                  build_ms,
                  static_cast<unsigned long long>(hier->stats().input_edges),
                  static_cast<unsigned long long>(hier->stats().shortcuts));
    }

    core::SnnnProcessor snnn(graph, &locator, {}, oracle);
    double side = cfg.params.AreaSideMeters();
    Rng snnn_rng = Rng(cfg.seed).Stream("snnn_cli");
    int snnn_k = cfg.params.k_nn;
    size_t results_returned = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (int q = 0; q < snnn_queries; ++q) {
      geom::Vec2 point{snnn_rng.Uniform(0, side), snnn_rng.Uniform(0, side)};
      core::ServerNnSource source(&server, point);
      results_returned += snnn.Execute(point, snnn_k, &source).size();
    }
    double total_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::printf("  oracle           %10s\n", oracle->name());
    std::printf("  queries          %10d   (k=%d, %zu results)\n", snnn_queries, snnn_k,
                results_returned);
    std::printf("  settled nodes    %10llu   (%.0f per query)\n",
                static_cast<unsigned long long>(oracle->settled_nodes()),
                static_cast<double>(oracle->settled_nodes()) / snnn_queries);
    std::printf("  query time       %10.2f ms total, %.3f ms per query\n", total_ms,
                total_ms / snnn_queries);
  }
  return 0;
}
