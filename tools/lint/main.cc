// senn_lint CLI — see tools/lint/lint.h for the rule catalogue.
//
// Usage:
//   senn_lint [--json] [--list-suppressions] [--rules] [--baseline FILE] PATH...
//
// Exit codes: 0 clean, 1 findings (or unused suppressions / unreadable
// inputs / baseline drift), 2 usage error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: senn_lint [--json] [--list-suppressions] [--rules]\n"
               "                 [--baseline FILE] PATH...\n"
               "  PATH                 file or directory (directories walk *.h/*.cc/*.cpp)\n"
               "  --json               machine-readable report on stdout\n"
               "  --list-suppressions  print every 'senn-lint: allow(...)' annotation\n"
               "                       (the tools/lint_baseline.txt format) and exit 0\n"
               "  --baseline FILE      diff the suppression list against FILE and exit\n"
               "                       nonzero on drift (regen: tools/regen_lint_baseline.sh)\n"
               "  --rules              print the rule catalogue and exit 0\n"
               "suppress a finding with a justification comment on or above its line:\n"
               "  // senn-lint: allow(L5-float-eq): <why this exact comparison is sound>\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_suppressions = false;
  bool show_rules = false;
  std::string baseline_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--rules") {
      show_rules = true;
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "senn_lint: --baseline needs a file argument\n");
        PrintUsage();
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "senn_lint: unknown option '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (show_rules) {
    for (const auto& [name, summary] : senn_lint::RuleTable()) {
      std::printf("%-20s %s\n", name.c_str(), summary.c_str());
    }
    return 0;
  }
  if (paths.empty()) {
    PrintUsage();
    return 2;
  }

  senn_lint::RunResult result = senn_lint::LintPaths(paths);
  if (list_suppressions) {
    std::fputs(senn_lint::ToSuppressionList(result).c_str(), stdout);
    return result.missing_files.empty() ? 0 : 1;
  }

  bool baseline_drift = false;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "senn_lint: cannot read baseline '%s'\n", baseline_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    senn_lint::BaselineDiff diff = senn_lint::DiffBaseline(result, buf.str());
    if (!diff.Clean()) {
      baseline_drift = true;
      std::fprintf(stderr, "senn_lint: suppression list drifted from %s:\n",
                   baseline_path.c_str());
      for (const std::string& l : diff.added) {
        std::fprintf(stderr, "  + %s\n", l.c_str());
      }
      for (const std::string& l : diff.removed) {
        std::fprintf(stderr, "  - %s\n", l.c_str());
      }
      std::fprintf(stderr,
                   "  review the drift, then run tools/regen_lint_baseline.sh and commit "
                   "the diff\n");
    }
  }

  if (json) {
    std::printf("%s\n", senn_lint::ToJson(result).c_str());
  } else {
    std::fputs(senn_lint::ToHuman(result).c_str(), stdout);
  }
  return (result.Clean() && !baseline_drift) ? 0 : 1;
}
