// senn_lint CLI — see tools/lint/lint.h for the rule catalogue.
//
// Usage:
//   senn_lint [--json] [--list-suppressions] [--rules] PATH...
//
// Exit codes: 0 clean, 1 findings (or unused suppressions / unreadable
// inputs), 2 usage error.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: senn_lint [--json] [--list-suppressions] [--rules] PATH...\n"
               "  PATH                 file or directory (directories walk *.h/*.cc/*.cpp)\n"
               "  --json               machine-readable report on stdout\n"
               "  --list-suppressions  print every 'senn-lint: allow(...)' annotation\n"
               "                       (the tools/lint_baseline.txt format) and exit 0\n"
               "  --rules              print the rule catalogue and exit 0\n"
               "suppress a finding with a justification comment on or above its line:\n"
               "  // senn-lint: allow(L5-float-eq): <why this exact comparison is sound>\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_suppressions = false;
  bool show_rules = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--rules") {
      show_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "senn_lint: unknown option '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (show_rules) {
    for (const auto& [name, summary] : senn_lint::RuleTable()) {
      std::printf("%-18s %s\n", name.c_str(), summary.c_str());
    }
    return 0;
  }
  if (paths.empty()) {
    PrintUsage();
    return 2;
  }

  senn_lint::RunResult result = senn_lint::LintPaths(paths);
  if (list_suppressions) {
    std::fputs(senn_lint::ToSuppressionList(result).c_str(), stdout);
    return result.missing_files.empty() ? 0 : 1;
  }
  if (json) {
    std::printf("%s\n", senn_lint::ToJson(result).c_str());
  } else {
    std::fputs(senn_lint::ToHuman(result).c_str(), stdout);
  }
  return result.Clean() ? 0 : 1;
}
