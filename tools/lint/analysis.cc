#include "tools/lint/analysis.h"

#include <algorithm>
#include <cctype>

namespace senn_lint {

namespace {

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "while" || s == "for" || s == "switch" || s == "catch";
}

bool IsFuncSpecifier(const std::string& s) {
  return s == "const" || s == "noexcept" || s == "override" || s == "final" || s == "mutable";
}

// Keywords that can never open a declaration's type or be a declared name.
bool IsStmtKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",      "else",     "for",      "while",   "do",       "switch",   "case",
      "default", "break",    "continue", "return",  "goto",     "try",      "catch",
      "throw",   "new",      "delete",   "using",   "typedef",  "template", "typename",
      "public",  "private",  "protected","friend",  "operator", "sizeof",   "alignof",
      "static_assert", "namespace", "class", "struct", "union", "enum", "co_return",
      "co_yield", "co_await", "this", "true", "false", "nullptr", "extern", "asm"};
  return kKeywords.count(s) > 0;
}

// Declaration specifiers skipped before (and within) the type.
bool IsDeclSpecifier(const std::string& s) {
  return s == "const" || s == "static" || s == "constexpr" || s == "consteval" ||
         s == "constinit" || s == "inline" || s == "mutable" || s == "volatile" ||
         s == "thread_local" || s == "register" || s == "virtual" || s == "explicit";
}

}  // namespace

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

// Identifier heuristic for "this value is a distance": the conventional
// names the codebase uses for Euclidean / network distances and radii.
bool DistanceIsh(const std::string& ident) {
  static const std::set<std::string> kExact = {"d", "d2", "nd", "radius", "reach", "network"};
  return Lower(ident).find("dist") != std::string::npos || kExact.count(ident) > 0;
}

// L5 additionally treats `key` as a distance: the best-first queue items
// carry their MINDIST/distance under that name.
bool DistanceIshForEquality(const std::string& ident) {
  return DistanceIsh(ident) || ident == "key";
}

size_t AngleMatch(const Ctx& ctx, size_t open) {
  int angle = 0;
  int paren = 0;
  for (size_t i = open; i < ctx.Size(); ++i) {
    const Token& t = ctx.At(i);
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") ++paren;
    if (t.text == ")") {
      if (paren == 0) return kNpos;
      --paren;
    }
    if (paren > 0) continue;
    if (t.text == "<") ++angle;
    if (t.text == ">") {
      --angle;
      if (angle == 0) return i;
    }
    if (t.text == ";" || t.text == "{") return kNpos;
  }
  return kNpos;
}

void PrecomputeBrackets(Ctx* ctx) {
  ctx->paren_match.assign(ctx->Size(), kNpos);
  ctx->brace_match.assign(ctx->Size(), kNpos);
  std::vector<size_t> parens;
  std::vector<size_t> braces;
  for (size_t i = 0; i < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") parens.push_back(i);
    if (t.text == ")" && !parens.empty()) {
      ctx->paren_match[i] = parens.back();
      ctx->paren_match[parens.back()] = i;
      parens.pop_back();
    }
    if (t.text == "{") braces.push_back(i);
    if (t.text == "}" && !braces.empty()) {
      ctx->brace_match[i] = braces.back();
      ctx->brace_match[braces.back()] = i;
      braces.pop_back();
    }
  }
}

// Records `name = [...](...) ... { body }` lambda assignments so L1 can see
// through a named comparator at its use site and L6 can recover the name of
// a lambda-shaped helper.
void CollectLambdas(Ctx* ctx) {
  for (size_t i = 2; i < ctx->Size(); ++i) {
    if (!ctx->IsPunct(i, "[")) continue;
    if (!ctx->IsPunct(i - 1, "=") || ctx->At(i - 2).kind != TokKind::kIdent) continue;
    // Find the capture list's ']' (captures contain no brackets in practice).
    size_t rb = i + 1;
    while (rb < ctx->Size() && !ctx->IsPunct(rb, "]")) ++rb;
    if (rb >= ctx->Size()) continue;
    size_t body = kNpos;
    if (ctx->IsPunct(rb + 1, "(")) {
      size_t close = ctx->paren_match[rb + 1];
      if (close == kNpos) continue;
      // Skip trailing-return / specifier tokens up to the body brace.
      for (size_t j = close + 1; j < std::min(close + 12, ctx->Size()); ++j) {
        if (ctx->IsPunct(j, "{")) {
          body = j;
          break;
        }
        if (ctx->IsPunct(j, ";") || ctx->IsPunct(j, ",")) break;
      }
    } else if (ctx->IsPunct(rb + 1, "{")) {
      body = rb + 1;
    }
    if (body == kNpos || ctx->brace_match[body] == kNpos) continue;
    ctx->lambda_body[ctx->At(i - 2).text] = {body, ctx->brace_match[body]};
  }
}

// Classifies every '{' as function-body or not. A function body is a brace
// whose preceding tokens lead back to a parameter-list ')' that is not a
// control statement's condition. Constructor init lists and trailing return
// types are walked through; `if (...) {` / `for (...) {` are excluded.
void CollectFuncBodies(Ctx* ctx) {
  for (size_t i = 1; i < ctx->Size(); ++i) {
    if (!ctx->IsPunct(i, "{") || ctx->brace_match[i] == kNpos) continue;
    size_t j = i - 1;
    // Walk back over specifiers and a trailing return type.
    size_t steps = 0;
    while (j > 0 && steps < 12) {
      const Token& t = ctx->At(j);
      if (t.kind == TokKind::kIdent && IsFuncSpecifier(t.text)) {
        --j;
        ++steps;
        continue;
      }
      if (t.kind == TokKind::kIdent || t.text == "::" || t.text == "<" || t.text == ">" ||
          t.text == "*" || t.text == "&") {
        // Part of a trailing return type only if an `->` precedes it.
        if (j >= 1 && (ctx->IsPunct(j - 1, "->") || ctx->At(j - 1).kind == TokKind::kIdent ||
                       ctx->IsPunct(j - 1, "::") || ctx->IsPunct(j - 1, "<") ||
                       ctx->IsPunct(j - 1, ">"))) {
          --j;
          ++steps;
          continue;
        }
        if (j >= 1 && ctx->IsPunct(j - 1, ")")) {
          // `) -> T {` without the arrow merged: treat like specifier.
          --j;
          ++steps;
          continue;
        }
        break;
      }
      if (t.text == "->") {
        --j;
        ++steps;
        continue;
      }
      break;
    }
    if (!ctx->IsPunct(j, ")")) continue;
    size_t open = ctx->paren_match[j];
    if (open == kNpos) continue;
    // Constructor init lists: `Foo(...) : a_(1), b_(2) {` — the ')' before
    // '{' belongs to the last initializer. Walk initializers back to the
    // parameter list proper.
    size_t param_close = j;
    size_t param_open = open;
    while (param_open > 0 &&
           (ctx->IsPunct(param_open - 1, ",") ||
            (ctx->At(param_open - 1).kind == TokKind::kIdent && param_open >= 2 &&
             (ctx->IsPunct(param_open - 2, ",") || ctx->IsPunct(param_open - 2, ":"))))) {
      // `..., name(expr)` or `: name(expr)` — step to the preceding ')'.
      size_t k = param_open - 1;
      while (k > 0 && !ctx->IsPunct(k, ")")) {
        if (ctx->IsPunct(k, ";") || ctx->IsPunct(k, "{") || ctx->IsPunct(k, "}")) {
          k = 0;
          break;
        }
        --k;
      }
      if (k == 0 || ctx->paren_match[k] == kNpos) break;
      param_close = k;
      param_open = ctx->paren_match[k];
    }
    if (param_open > 0 && ctx->At(param_open - 1).kind == TokKind::kIdent &&
        IsControlKeyword(ctx->At(param_open - 1).text)) {
      continue;
    }
    ctx->func_bodies.push_back({i, ctx->brace_match[i], param_open, param_close});
  }
}

const FuncBody* EnclosingFuncBody(const Ctx& ctx, size_t i) {
  const FuncBody* best = nullptr;
  for (const FuncBody& b : ctx.func_bodies) {
    if (b.open < i && i < b.close && (best == nullptr || b.open > best->open)) best = &b;
  }
  return best;
}

namespace {

// Classification of one '{' at token index `i`; assumes func_bodies and
// lambda_body are already collected.
ScopeNode ClassifyBrace(const Ctx& ctx, size_t i) {
  ScopeNode node;
  node.open = i;
  node.close = ctx.brace_match[i];
  for (const FuncBody& b : ctx.func_bodies) {
    if (b.open != i) continue;
    node.kind = ScopeNode::kFunction;
    node.head_open = b.param_open;
    node.head_close = b.param_close;
    // `Type Class::Name(params)` — the identifier right before '(' is the
    // function's name; a ']' there means lambda.
    if (b.param_open != kNpos && b.param_open > 0) {
      if (ctx.At(b.param_open - 1).kind == TokKind::kIdent) {
        node.name = ctx.At(b.param_open - 1).text;
      } else if (ctx.IsPunct(b.param_open - 1, "]")) {
        node.kind = ScopeNode::kLambda;
        for (const auto& [lname, range] : ctx.lambda_body) {
          if (range.first == i) {
            node.name = lname;
            break;
          }
        }
      }
    }
    return node;
  }
  // `] {` — a capture list directly followed by the body (no parameters).
  if (i > 0 && ctx.IsPunct(i - 1, "]")) {
    node.kind = ScopeNode::kLambda;
    for (const auto& [lname, range] : ctx.lambda_body) {
      if (range.first == i) {
        node.name = lname;
        break;
      }
    }
    return node;
  }
  // `<keyword> (...) {`
  if (i > 0 && ctx.IsPunct(i - 1, ")")) {
    size_t open = ctx.paren_match[i - 1];
    if (open != kNpos && open > 0 && ctx.At(open - 1).kind == TokKind::kIdent &&
        IsControlKeyword(ctx.At(open - 1).text)) {
      node.kind = ScopeNode::kControl;
      node.name = ctx.At(open - 1).text;
      node.head_open = open;
      node.head_close = i - 1;
      return node;
    }
  }
  // `else {` / `do {` / `try {`
  if (i > 0 && ctx.At(i - 1).kind == TokKind::kIdent) {
    const std::string& prev = ctx.At(i - 1).text;
    if (prev == "else" || prev == "do" || prev == "try") {
      node.kind = ScopeNode::kControl;
      node.name = prev;
      return node;
    }
  }
  // Walk the statement prefix back to the previous boundary looking for
  // namespace / class / struct / union / enum.
  size_t j = i;
  size_t steps = 0;
  std::string last_ident;
  while (j > 0 && steps < 24) {
    --j;
    ++steps;
    const Token& t = ctx.At(j);
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ")")) {
      break;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "namespace") {
      node.kind = ScopeNode::kNamespace;
      node.name = last_ident;
      return node;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union" || t.text == "enum") {
      node.kind = ScopeNode::kClass;
      // The name is the identifier right after the keyword (`class Foo :
      // public Bar {` — base-clause identifiers come later and were seen
      // first on this backward walk).
      if (j + 1 < ctx.Size() && ctx.At(j + 1).kind == TokKind::kIdent) {
        node.name = ctx.At(j + 1).text;
      }
      return node;
    }
    last_ident = t.text;
  }
  return node;  // kBlock (includes brace initializers — harmless)
}

}  // namespace

void BuildScopes(Ctx* ctx) {
  ctx->scopes.clear();
  ScopeNode file_scope;
  file_scope.kind = ScopeNode::kFile;
  file_scope.open = kNpos;
  file_scope.close = ctx->Size();
  ctx->scopes.push_back(file_scope);
  ctx->scope_at.assign(ctx->Size(), 0);
  std::vector<int> stack = {0};
  for (size_t i = 0; i < ctx->Size(); ++i) {
    if (ctx->IsPunct(i, "{") && ctx->brace_match[i] != kNpos) {
      ScopeNode node = ClassifyBrace(*ctx, i);
      node.parent = stack.back();
      ctx->scopes.push_back(node);
      stack.push_back(static_cast<int>(ctx->scopes.size()) - 1);
    }
    ctx->scope_at[i] = stack.back();
    if (ctx->IsPunct(i, "}") && stack.size() > 1 &&
        ctx->scopes[stack.back()].close == i) {
      stack.pop_back();
    }
  }
}

int Ctx::EnclosingScope(size_t i, ScopeNode::Kind kind) const {
  for (int s = ScopeAt(i); s >= 0; s = scopes[s].parent) {
    if (scopes[s].kind == kind) return s;
  }
  return -1;
}

std::string EnclosingFunctionName(const Ctx& ctx, size_t i) {
  for (int s = ctx.ScopeAt(i); s >= 0; s = ctx.scopes[s].parent) {
    if (ctx.scopes[s].kind == ScopeNode::kFunction ||
        ctx.scopes[s].kind == ScopeNode::kLambda) {
      return ctx.scopes[s].name;
    }
  }
  return "";
}

const Symbol* Ctx::Lookup(size_t i, const std::string& name) const {
  const Symbol* best = nullptr;
  int at = ScopeAt(i);
  for (const Symbol& sym : symbols) {
    if (sym.name != name) continue;
    if (!sym.is_param && sym.name_tok > i) continue;  // declared after use
    // sym.scope must be `at` or an ancestor of it; prefer the deepest match.
    for (int s = at; s >= 0; s = scopes[s].parent) {
      if (s == sym.scope) {
        if (best == nullptr || sym.scope > best->scope ||
            (sym.scope == best->scope && sym.name_tok > best->name_tok)) {
          best = &sym;
        }
        break;
      }
    }
  }
  return best;
}

bool TypeContains(const Symbol& sym, const char* ident) {
  for (const std::string& t : sym.type) {
    if (t == ident) return true;
  }
  return false;
}

namespace {

// Attempts to parse a declaration whose type starts at token `i` inside
// scope `scope`. On success appends the symbol(s) and returns the index one
// past the declaration's statement; on failure returns kNpos.
size_t ParseDeclaration(Ctx* ctx, size_t i, int scope, bool function_like) {
  std::vector<std::string> type;
  bool is_pointer = false;
  bool is_ref = false;
  size_t j = i;
  while (j < ctx->Size() && ctx->At(j).kind == TokKind::kIdent &&
         IsDeclSpecifier(ctx->At(j).text)) {
    ++j;
  }
  if (j >= ctx->Size() || ctx->At(j).kind != TokKind::kIdent ||
      IsStmtKeyword(ctx->At(j).text)) {
    return kNpos;
  }
  // Type: ident (:: ident)* with optional template argument lists, then any
  // number of '*' / '&' / cv tokens.
  bool saw_type = false;
  while (j < ctx->Size()) {
    const Token& t = ctx->At(j);
    if (t.kind == TokKind::kIdent && !IsStmtKeyword(t.text)) {
      if (IsDeclSpecifier(t.text)) {
        ++j;
        continue;
      }
      // An identifier followed by a declarator-ending token is the NAME,
      // not part of the type — stop type parsing here.
      if (saw_type && j + 1 < ctx->Size()) {
        const Token& n = ctx->At(j + 1);
        if (n.kind == TokKind::kPunct &&
            (n.text == "=" || n.text == ";" || n.text == "(" || n.text == "{" ||
             n.text == "," || n.text == ":" || n.text == "[")) {
          break;
        }
      }
      type.push_back(t.text);
      saw_type = true;
      ++j;
      if (ctx->IsPunct(j, "::")) {
        ++j;
        continue;
      }
      if (ctx->IsPunct(j, "<")) {
        size_t close = AngleMatch(*ctx, j);
        if (close == kNpos) return kNpos;
        for (size_t k = j + 1; k < close; ++k) {
          if (ctx->At(k).kind == TokKind::kIdent && !IsDeclSpecifier(ctx->At(k).text)) {
            type.push_back(ctx->At(k).text);
          }
        }
        j = close + 1;
      }
      continue;
    }
    if (t.kind == TokKind::kPunct && (t.text == "*" || t.text == "&")) {
      if (!saw_type) return kNpos;
      if (t.text == "*") is_pointer = true;
      if (t.text == "&") is_ref = true;
      ++j;
      continue;
    }
    break;
  }
  if (!saw_type || j >= ctx->Size() || ctx->At(j).kind != TokKind::kIdent ||
      IsStmtKeyword(ctx->At(j).text)) {
    return kNpos;
  }
  size_t name_tok = j;
  const std::string& name = ctx->At(j).text;
  size_t after = j + 1;
  if (after >= ctx->Size() || ctx->At(after).kind != TokKind::kPunct) return kNpos;
  const std::string& punct = ctx->At(after).text;

  Symbol sym;
  sym.name = name;
  sym.type = type;
  sym.is_pointer = is_pointer;
  sym.is_ref = is_ref;
  sym.scope = scope;
  sym.name_tok = name_tok;

  auto stmt_end = [&](size_t from) {
    int paren = 0;
    int brace = 0;
    for (size_t k = from; k < ctx->Size(); ++k) {
      const Token& t = ctx->At(k);
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(") ++paren;
      if (t.text == ")") --paren;
      if (t.text == "{") ++brace;
      if (t.text == "}") {
        if (brace == 0) return k;
        --brace;
      }
      if (t.text == ";" && paren == 0 && brace == 0) return k;
    }
    return ctx->Size();
  };

  if (punct == "=") {
    size_t end = stmt_end(after + 1);
    sym.init_begin = after + 1;
    sym.init_end = end;
    ctx->symbols.push_back(sym);
    return end + 1;
  }
  if (punct == ";") {
    ctx->symbols.push_back(sym);
    return after + 1;
  }
  if (punct == "(") {
    // `Type name(args);` is a constructor call in function-like scopes and a
    // function declaration at class / namespace / file scope.
    if (!function_like) return kNpos;
    size_t close = ctx->paren_match[after];
    if (close == kNpos) return kNpos;
    sym.init_begin = after + 1;
    sym.init_end = close;
    ctx->symbols.push_back(sym);
    return close + 1;
  }
  if (punct == "{") {
    size_t close = ctx->brace_match[after];
    if (close == kNpos || !ctx->IsPunct(close + 1, ";")) return kNpos;
    sym.init_begin = after + 1;
    sym.init_end = close;
    ctx->symbols.push_back(sym);
    return close + 2;
  }
  if (punct == ",") {
    // Multi-declarator `int a, b = 0;` — register each name with the same
    // type; initializer tracking per declarator.
    ctx->symbols.push_back(sym);
    size_t k = after;
    while (k < ctx->Size() && ctx->IsPunct(k, ",") && k + 1 < ctx->Size() &&
           ctx->At(k + 1).kind == TokKind::kIdent) {
      Symbol extra = sym;
      extra.name = ctx->At(k + 1).text;
      extra.name_tok = k + 1;
      extra.init_begin = kNpos;
      extra.init_end = kNpos;
      ctx->symbols.push_back(extra);
      k += 2;
      if (ctx->IsPunct(k, "=")) {
        size_t end = stmt_end(k + 1);
        ctx->symbols.back().init_begin = k + 1;
        ctx->symbols.back().init_end = end;
        return end + 1;
      }
    }
    return stmt_end(k) + 1;
  }
  return kNpos;
}

// Registers parameters of a function/lambda scope from its head range.
void CollectParams(Ctx* ctx, int scope_idx) {
  const ScopeNode& scope = ctx->scopes[scope_idx];
  if (scope.head_open == kNpos || scope.head_open + 1 >= scope.head_close) return;
  size_t seg_start = scope.head_open + 1;
  int angle = 0;
  int paren = 0;
  for (size_t j = scope.head_open + 1; j <= scope.head_close; ++j) {
    if (ctx->IsPunct(j, "<")) ++angle;
    if (ctx->IsPunct(j, ">")) --angle;
    if (ctx->IsPunct(j, "(")) ++paren;
    if (ctx->IsPunct(j, ")") && j != scope.head_close) --paren;
    bool at_comma = ctx->IsPunct(j, ",") && angle == 0 && paren == 0;
    if (j != scope.head_close && !at_comma) continue;
    // Segment [seg_start, j): last identifier before any '=' is the name.
    std::vector<std::string> idents;
    bool has_star = false;
    bool has_amp = false;
    size_t limit = j;
    for (size_t k = seg_start; k < j; ++k) {
      if (ctx->IsPunct(k, "=")) {
        limit = k;
        break;
      }
    }
    for (size_t k = seg_start; k < limit; ++k) {
      const Token& t = ctx->At(k);
      if (t.kind == TokKind::kIdent && !IsDeclSpecifier(t.text) &&
          !IsStmtKeyword(t.text)) {
        idents.push_back(t.text);
      }
      if (ctx->IsPunct(k, "*")) has_star = true;
      if (ctx->IsPunct(k, "&")) has_amp = true;
    }
    if (idents.size() >= 2) {
      Symbol sym;
      sym.name = idents.back();
      sym.type.assign(idents.begin(), idents.end() - 1);
      sym.is_pointer = has_star;
      sym.is_ref = has_amp;
      sym.is_param = true;
      sym.scope = scope_idx;
      sym.name_tok = scope.head_open;
      ctx->symbols.push_back(sym);
    }
    seg_start = j + 1;
  }
}

}  // namespace

void CollectSymbols(Ctx* ctx) {
  ctx->symbols.clear();
  for (size_t s = 0; s < ctx->scopes.size(); ++s) {
    const ScopeNode& scope = ctx->scopes[s];
    if (scope.kind == ScopeNode::kFunction || scope.kind == ScopeNode::kLambda) {
      CollectParams(ctx, static_cast<int>(s));
    }
    // Range-for declarations live in the control head: `for (Type name : r)`.
    if (scope.kind == ScopeNode::kControl && scope.name == "for" &&
        scope.head_open != kNpos) {
      int paren = 0;
      for (size_t j = scope.head_open + 1; j < scope.head_close; ++j) {
        if (ctx->IsPunct(j, "(")) ++paren;
        if (ctx->IsPunct(j, ")")) --paren;
        if (paren == 0 && ctx->IsPunct(j, ":")) {
          if (j > scope.head_open + 1 && ctx->At(j - 1).kind == TokKind::kIdent &&
              !IsStmtKeyword(ctx->At(j - 1).text)) {
            Symbol sym;
            sym.name = ctx->At(j - 1).text;
            for (size_t k = scope.head_open + 1; k + 1 < j; ++k) {
              if (ctx->At(k).kind == TokKind::kIdent && !IsDeclSpecifier(ctx->At(k).text)) {
                sym.type.push_back(ctx->At(k).text);
              }
            }
            sym.scope = static_cast<int>(s);
            sym.name_tok = j - 1;
            sym.init_begin = j + 1;
            sym.init_end = scope.head_close;
            ctx->symbols.push_back(sym);
          }
          break;
        }
      }
    }
  }
  // Statement-start declarations: tokens following ';', '{', '}' (and the
  // class-scope access-specifier colon) begin a potential declaration.
  for (size_t i = 0; i < ctx->Size(); ++i) {
    bool stmt_start = (i == 0);
    if (i > 0 && ctx->At(i - 1).kind == TokKind::kPunct) {
      const std::string& p = ctx->At(i - 1).text;
      stmt_start = (p == ";" || p == "{" || p == "}");
      if (p == ":" && i >= 2 && ctx->At(i - 2).kind == TokKind::kIdent) {
        const std::string& kw = ctx->At(i - 2).text;
        stmt_start = (kw == "public" || kw == "private" || kw == "protected");
      }
    }
    if (!stmt_start) continue;
    int scope = ctx->ScopeAt(i);
    ScopeNode::Kind kind = ctx->scopes[scope].kind;
    bool function_like = false;
    for (int s = scope; s >= 0; s = ctx->scopes[s].parent) {
      if (ctx->scopes[s].kind == ScopeNode::kFunction ||
          ctx->scopes[s].kind == ScopeNode::kLambda) {
        function_like = true;
        break;
      }
      if (ctx->scopes[s].kind == ScopeNode::kClass ||
          ctx->scopes[s].kind == ScopeNode::kNamespace) {
        break;
      }
    }
    if (kind == ScopeNode::kControl && !function_like) continue;
    ParseDeclaration(ctx, i, scope, function_like);
  }
  // Mutex member declarations feed the run-level acquisition-order rule.
  if (ctx->facts != nullptr) {
    for (const Symbol& sym : ctx->symbols) {
      if (!sym.is_param && TypeContains(sym, "mutex") &&
          ctx->scopes[sym.scope].kind == ScopeNode::kClass) {
        ctx->facts->mutex_decls.push_back({sym.name, ctx->At(sym.name_tok).line});
      }
    }
  }
}

}  // namespace senn_lint
