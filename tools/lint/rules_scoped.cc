// L7-L9: the scoped rule families that need the symbol table.
//
//   L7-rng-stream       every Rng draw must come from a named stream
//                       (Rng::Stream) — raw-seeded or Split()-derived locals
//                       are order-dependent; and no draw may sit inside a
//                       branch whose predicate is itself a draw outcome
//                       (the PR-6 stream-desync bug class).
//   L8-untrusted-decode in src/rpc/, fields read out of a decoded frame are
//                       tainted until a Validate*() call or a relational
//                       bounds check touches them; tainted values in
//                       arithmetic, indexing, or size-taking calls are
//                       findings.
//   L9-lock-discipline  no socket I/O, no condvar wait with a second mutex
//                       held, no buffer-pool Fetch/PageGuard page faults
//                       while holding a mutex; nested acquisitions are
//                       recorded for the run-level declaration-order check.
//
// All three degrade to silence when the heuristics cannot resolve a
// receiver or a declaration — a lint finding must always be actionable.
#include "tools/lint/analysis.h"

namespace senn_lint {

namespace {

const std::set<std::string>& DrawMethods() {
  static const std::set<std::string> kDraws = {
      "NextU64", "NextDouble", "Uniform",     "UniformInt", "NextIndex",
      "Bernoulli", "Exponential", "Poisson",  "Normal",     "Shuffle"};
  return kDraws;
}

// True when [lo, hi) contains an RNG draw: a Rng draw-method member call or
// a Draw* helper call (net::DrawLost / DrawLatency / DrawServerRtt...).
bool RangeHasDraw(const Ctx& ctx, size_t lo, size_t hi) {
  for (size_t j = lo; j < hi && j + 1 < ctx.Size(); ++j) {
    const Token& t = ctx.At(j);
    if (t.kind != TokKind::kIdent || !ctx.IsPunct(j + 1, "(")) continue;
    if (DrawMethods().count(t.text) > 0 && j > 0 &&
        (ctx.IsPunct(j - 1, ".") || ctx.IsPunct(j - 1, "->"))) {
      return true;
    }
    if (t.text.size() > 4 && t.text.rfind("Draw", 0) == 0) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// L7-rng-stream
// ---------------------------------------------------------------------------

void RuleRngStream(Ctx* ctx) {
  if (PathContains(ctx->file, "common/rng.")) return;  // the generator itself

  // Part 1: draw receivers must trace to a named stream.
  for (size_t i = 2; i + 1 < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kIdent || DrawMethods().count(t.text) == 0) continue;
    if (!ctx->IsPunct(i + 1, "(")) continue;
    if (!ctx->IsPunct(i - 1, ".") && !ctx->IsPunct(i - 1, "->")) continue;
    size_t r = i - 2;
    if (ctx->IsPunct(r, ")")) {
      // Chained call receiver: `X.Stream("net", id).NextU64()` is the named
      // stream idiom; `X.Split().NextU64()` is draw-order-dependent.
      size_t open = ctx->paren_match[r];
      if (open != kNpos && open >= 1 && ctx->At(open - 1).kind == TokKind::kIdent) {
        const std::string& callee = ctx->At(open - 1).text;
        if (callee == "Split") {
          ctx->Report("L7-rng-stream", t.line,
                      "draw from a Split()-derived generator — Split() is draw-order "
                      "dependent; derive a named, order-independent stream with "
                      "Rng::Stream(domain, id)");
        }
      }
      continue;
    }
    if (ctx->At(r).kind != TokKind::kIdent) continue;
    const Symbol* sym = ctx->Lookup(i, ctx->At(r).text);
    if (sym == nullptr || !TypeContains(*sym, "Rng")) continue;  // unresolved: skip
    if (sym->is_param) continue;  // the caller owns the stream contract
    bool has_stream = false;
    bool has_split = false;
    if (sym->init_begin != kNpos) {
      for (size_t j = sym->init_begin; j < sym->init_end; ++j) {
        if (ctx->At(j).kind != TokKind::kIdent) continue;
        if (ctx->At(j).text == "Stream") has_stream = true;
        if (ctx->At(j).text == "Split") has_split = true;
      }
    }
    if (has_stream) continue;
    ctx->Report("L7-rng-stream", t.line,
                has_split
                    ? "draw from Split()-derived Rng '" + sym->name +
                          "' — Split() is draw-order dependent; use the named "
                          "Rng::Stream(domain, id) derivation"
                    : "draw from Rng '" + sym->name +
                          "' which is not derived from a named stream — seed it via "
                          "Rng::Stream(domain, id) so draw order cannot desync replicas");
  }

  // Part 2: outcome-conditioned draws (the PR-6 stream-desync hazard).
  // An "outcome variable" holds the result of a prior draw; a draw inside a
  // branch predicated on one consumes the stream only on some outcomes,
  // desyncing it from any replica that took the other branch.
  std::set<const Symbol*> outcome;
  for (const Symbol& sym : ctx->symbols) {
    if (sym.init_begin != kNpos && RangeHasDraw(*ctx, sym.init_begin, sym.init_end)) {
      outcome.insert(&sym);
    }
  }
  for (size_t i = 0; i + 2 < ctx->Size(); ++i) {  // assignments: `x = ...draw...;`
    if (ctx->At(i).kind != TokKind::kIdent || !ctx->IsPunct(i + 1, "=")) continue;
    if (i > 0 && (ctx->IsPunct(i - 1, ".") || ctx->IsPunct(i - 1, "->"))) continue;
    size_t end = i + 2;
    while (end < ctx->Size() && !ctx->IsPunct(end, ";") && !ctx->IsPunct(end, "{")) ++end;
    if (RangeHasDraw(*ctx, i + 2, end)) {
      const Symbol* sym = ctx->Lookup(i, ctx->At(i).text);
      if (sym != nullptr) outcome.insert(sym);
    }
  }
  if (outcome.empty()) return;

  auto scan_block = [&](size_t lo, size_t hi, const std::string& var) {
    for (size_t j = lo; j < hi && j + 1 < ctx->Size(); ++j) {
      const Token& t = ctx->At(j);
      if (t.kind != TokKind::kIdent || !ctx->IsPunct(j + 1, "(")) continue;
      bool member_draw = DrawMethods().count(t.text) > 0 && j > 0 &&
                         (ctx->IsPunct(j - 1, ".") || ctx->IsPunct(j - 1, "->"));
      bool helper_draw = t.text.size() > 4 && t.text.rfind("Draw", 0) == 0;
      if (member_draw || helper_draw) {
        ctx->Report("L7-rng-stream", t.line,
                    "stream-desync hazard: RNG draw inside a branch conditioned on '" +
                        var + "', itself a draw outcome — replicas that take the other "
                        "branch skip the draw and fall out of stream sync; draw eagerly "
                        "before branching and discard if unused (PR-6 net contract)");
      }
    }
  };

  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    if ((!ctx->IsIdent(i, "if") && !ctx->IsIdent(i, "while")) || !ctx->IsPunct(i + 1, "(")) {
      continue;
    }
    size_t close = ctx->paren_match[i + 1];
    if (close == kNpos) continue;
    std::string var;
    for (size_t j = i + 2; j < close; ++j) {
      const Token& c = ctx->At(j);
      if (c.kind != TokKind::kIdent) continue;
      // Only a plain local read is an outcome reference: `obj->moving()` is
      // a method call, and `x.lost` a member, not the drawn flag itself.
      if (j > 0 && (ctx->IsPunct(j - 1, ".") || ctx->IsPunct(j - 1, "->"))) continue;
      if (ctx->IsPunct(j + 1, "(")) continue;
      const Symbol* sym = ctx->Lookup(j, c.text);
      if (sym != nullptr && outcome.count(sym) > 0) {
        var = c.text;
        break;
      }
    }
    if (var.empty()) continue;
    // Body: `{...}` or a single statement; then an optional else block.
    size_t body_end;
    if (ctx->IsPunct(close + 1, "{") && ctx->brace_match[close + 1] != kNpos) {
      body_end = ctx->brace_match[close + 1];
      scan_block(close + 2, body_end, var);
    } else {
      body_end = close + 1;
      while (body_end < ctx->Size() && !ctx->IsPunct(body_end, ";")) ++body_end;
      scan_block(close + 1, body_end, var);
    }
    if (ctx->IsIdent(body_end + 1, "else") && ctx->IsPunct(body_end + 2, "{") &&
        ctx->brace_match[body_end + 2] != kNpos) {
      scan_block(body_end + 3, ctx->brace_match[body_end + 2], var);
    }
  }
}

// ---------------------------------------------------------------------------
// L8-untrusted-decode
// ---------------------------------------------------------------------------

namespace {

// Wire-format aggregate types whose fields arrive straight off the socket.
bool IsWireType(const Symbol& sym) {
  return TypeContains(sym, "Frame") || TypeContains(sym, "FrameHeader") ||
         TypeContains(sym, "KnnRequest") || TypeContains(sym, "KnnReply") ||
         TypeContains(sym, "ErrorReply");
}

bool IsArithOp(const Token& t) {
  return t.kind == TokKind::kPunct &&
         (t.text == "+" || t.text == "-" || t.text == "*" || t.text == "/" ||
          t.text == "%");
}

bool IsRelOp(const Token& t) {
  return t.kind == TokKind::kPunct &&
         (t.text == "<" || t.text == ">" || t.text == "<=" || t.text == ">=" ||
          t.text == "==" || t.text == "!=");
}

// Indexable sequence whose subscript must be bounds-checked (maps are
// excluded on purpose: operator[] on a map accepts any key).
bool IsSequenceType(const Symbol& sym) {
  return sym.is_pointer || TypeContains(sym, "vector") || TypeContains(sym, "array") ||
         TypeContains(sym, "deque") || TypeContains(sym, "string") ||
         TypeContains(sym, "span");
}

}  // namespace

void RuleUntrustedDecode(Ctx* ctx) {
  if (!PathContains(ctx->file, "rpc/")) return;

  // Statement boundaries: nearest ';' / '{' / '}' on either side.
  auto stmt_range = [&](size_t i) {
    size_t lo = i;
    while (lo > 0) {
      const Token& t = ctx->At(lo - 1);
      if (t.kind == TokKind::kPunct && (t.text == ";" || t.text == "{" || t.text == "}")) {
        break;
      }
      --lo;
    }
    size_t hi = i;
    while (hi < ctx->Size()) {
      const Token& t = ctx->At(hi);
      if (t.kind == TokKind::kPunct && (t.text == ";" || t.text == "{" || t.text == "}")) {
        break;
      }
      ++hi;
    }
    return std::pair<size_t, size_t>(lo, hi);
  };

  for (size_t fi = 0; fi < ctx->scopes.size(); ++fi) {
    const ScopeNode& fn = ctx->scopes[fi];
    if (fn.kind != ScopeNode::kFunction) continue;
    if (fn.parent != -1 && ctx->scopes[fn.parent].kind == ScopeNode::kFunction) continue;

    auto in_function = [&](int scope) {
      for (int s = scope; s >= 0; s = ctx->scopes[s].parent) {
        if (s == static_cast<int>(fi)) return true;
      }
      return false;
    };

    // Taint roots: wire-typed locals, Decode*() results, Read*(&x) fills,
    // then one propagation pass through initializers.
    std::set<std::string> tainted;
    for (const Symbol& sym : ctx->symbols) {
      if (!in_function(sym.scope) || sym.is_param) continue;
      if (IsWireType(sym)) tainted.insert(sym.name);
      if (sym.init_begin != kNpos) {
        for (size_t j = sym.init_begin; j < sym.init_end; ++j) {
          const Token& t = ctx->At(j);
          if (t.kind == TokKind::kIdent && t.text.rfind("Decode", 0) == 0 &&
              ctx->IsPunct(j + 1, "(")) {
            tainted.insert(sym.name);
          }
        }
      }
    }
    for (size_t i = fn.open + 1; i + 1 < fn.close; ++i) {
      const Token& t = ctx->At(i);
      if (t.kind != TokKind::kIdent || t.text.rfind("Read", 0) != 0 ||
          !ctx->IsPunct(i + 1, "(")) {
        continue;
      }
      size_t close = ctx->paren_match[i + 1];
      if (close == kNpos) continue;
      for (size_t j = i + 2; j + 1 < close; ++j) {
        if (ctx->IsPunct(j, "&") && ctx->At(j + 1).kind == TokKind::kIdent) {
          tainted.insert(ctx->At(j + 1).text);
        }
      }
    }
    for (const Symbol& sym : ctx->symbols) {  // propagation: `id = frame.header.request_id`
      if (!in_function(sym.scope) || sym.is_param || sym.init_begin == kNpos) continue;
      for (size_t j = sym.init_begin; j < sym.init_end; ++j) {
        if (ctx->At(j).kind == TokKind::kIdent && tainted.count(ctx->At(j).text) > 0) {
          tainted.insert(sym.name);
          break;
        }
      }
    }
    if (tainted.empty()) continue;

    // Walk the body once; guards cleanse as they are passed, sinks report.
    std::set<std::string> cleansed;  // "root" (whole var) or "root.member"
    for (size_t i = fn.open + 1; i < fn.close; ++i) {
      const Token& t = ctx->At(i);
      if (t.kind != TokKind::kIdent) continue;
      // Validate*(x) cleanses every field of x.
      if (t.text.rfind("Validate", 0) == 0 && ctx->IsPunct(i + 1, "(")) {
        size_t close = ctx->paren_match[i + 1];
        for (size_t j = i + 2; j < close && j < ctx->Size(); ++j) {
          if (ctx->At(j).kind == TokKind::kIdent && tainted.count(ctx->At(j).text) > 0) {
            cleansed.insert(ctx->At(j).text);
          }
        }
        continue;
      }
      if (tainted.count(t.text) == 0) continue;
      if (i > 0 && (ctx->IsPunct(i - 1, ".") || ctx->IsPunct(i - 1, "->"))) {
        continue;  // a member named like a tainted root, not the root itself
      }
      // Resolve the access chain `root(.member)*`; the chain key is the
      // final field the bytes land in.
      size_t chain_end = i;
      std::string key = t.text;
      while (chain_end + 2 < ctx->Size() &&
             (ctx->IsPunct(chain_end + 1, ".") || ctx->IsPunct(chain_end + 1, "->")) &&
             ctx->At(chain_end + 2).kind == TokKind::kIdent) {
        chain_end += 2;
        key = t.text + "." + ctx->At(chain_end).text;
      }
      if (ctx->IsPunct(chain_end + 1, "(")) continue;  // method call, not a field read
      auto [slo, shi] = stmt_range(i);
      bool guard_stmt = false;
      for (size_t j = slo; j < shi; ++j) {
        if (IsRelOp(ctx->At(j))) {
          guard_stmt = true;
          break;
        }
      }
      if (guard_stmt) {
        // The comparison itself is the bounds check; from here on this
        // field counts as validated.
        cleansed.insert(key);
        continue;
      }
      if (cleansed.count(key) > 0 || cleansed.count(t.text) > 0) continue;

      bool arith = (i > 0 && IsArithOp(ctx->At(i - 1))) ||
                   (chain_end + 1 < ctx->Size() && IsArithOp(ctx->At(chain_end + 1)));
      bool index_sink = false;
      if (i > 0 && ctx->IsPunct(i - 1, "[") && i >= 2) {
        if (ctx->At(i - 2).kind == TokKind::kIdent) {
          const Symbol* base = ctx->Lookup(i, ctx->At(i - 2).text);
          index_sink = base != nullptr && IsSequenceType(*base);
        }
        // `new T[len]` — the '[' follows the element type of a new-expression.
        for (size_t j = (i >= 6 ? i - 6 : 0); j + 1 < i; ++j) {
          if (ctx->IsIdent(j, "new")) index_sink = true;
        }
      }
      bool size_sink = false;
      if (i >= 2 && ctx->IsPunct(i - 1, "(") && ctx->At(i - 2).kind == TokKind::kIdent) {
        const std::string& callee = ctx->At(i - 2).text;
        size_sink = callee == "reserve" || callee == "resize" || callee == "memcpy" ||
                    callee == "memset" || callee == "memmove" || callee == "alloca";
      }
      if (arith || index_sink || size_sink) {
        const char* what = arith ? "arithmetic on" : (index_sink ? "indexing with" : "size-taking call on");
        ctx->Report("L8-untrusted-decode", t.line,
                    std::string(what) + " undecoded wire field '" + key +
                        "' before any Validate*() or relational bounds check — malformed "
                        "frames drive this value; guard it first (FrameDecoder contract)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L9-lock-discipline
// ---------------------------------------------------------------------------

void RuleLockDiscipline(Ctx* ctx) {
  struct Region {
    size_t begin = 0;
    size_t end = 0;
    std::string mutex;
    std::string holder;  // the guard variable
    int line = 0;
  };
  std::vector<Region> regions;
  for (const Symbol& sym : ctx->symbols) {
    if (sym.is_param) continue;
    if (!TypeContains(sym, "lock_guard") && !TypeContains(sym, "unique_lock") &&
        !TypeContains(sym, "scoped_lock")) {
      continue;
    }
    Region region;
    region.begin = sym.name_tok;
    region.end = ctx->scopes[sym.scope].close;
    region.holder = sym.name;
    region.line = ctx->At(sym.name_tok).line;
    if (sym.init_begin != kNpos) {
      for (size_t j = sym.init_begin; j < sym.init_end; ++j) {
        const Token& t = ctx->At(j);
        if (t.kind == TokKind::kIdent && t.text != "std" && t.text != "mutex" &&
            t.text != "adopt_lock" && t.text != "defer_lock" && t.text != "try_to_lock") {
          region.mutex = t.text;
          break;
        }
      }
    }
    // `guard.unlock()` ends the region early.
    for (size_t j = region.begin; j + 3 < region.end; ++j) {
      if (ctx->IsIdent(j, sym.name.c_str()) && ctx->IsPunct(j + 1, ".") &&
          ctx->IsIdent(j + 2, "unlock") && ctx->IsPunct(j + 3, "(")) {
        region.end = j;
        break;
      }
    }
    if (!region.mutex.empty()) regions.push_back(region);
  }
  if (regions.empty()) return;

  // Nested acquisitions feed the run-level declaration-order check.
  if (ctx->facts != nullptr) {
    for (const Region& outer : regions) {
      for (const Region& inner : regions) {
        if (outer.begin < inner.begin && inner.begin < outer.end &&
            outer.mutex != inner.mutex) {
          ctx->facts->nested_locks.push_back({inner.line, outer.mutex, inner.mutex});
        }
      }
    }
  }

  static const std::set<std::string> kSocketCalls = {
      "read", "write", "send", "recv", "recvfrom", "sendto",  "accept",
      "connect", "poll", "select", "sendmsg", "recvmsg"};

  for (size_t i = 1; i + 1 < ctx->Size(); ++i) {
    std::vector<const Region*> live;
    for (const Region& r : regions) {
      if (r.begin < i && i < r.end) live.push_back(&r);
    }
    if (live.empty()) continue;
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kIdent) continue;

    // Blocking socket/file syscalls (the repo spells them `::read(...)`).
    if (ctx->IsPunct(i - 1, "::") && kSocketCalls.count(t.text) > 0 &&
        ctx->IsPunct(i + 1, "(") &&
        (i < 2 || ctx->At(i - 2).kind != TokKind::kIdent)) {
      ctx->Report("L9-lock-discipline", t.line,
                  "'::" + t.text + "' under mutex '" + live.back()->mutex +
                      "' — socket I/O can block indefinitely; release the lock before "
                      "touching the network (rpc::Server keeps I/O on the network "
                      "thread, outside every mutex)");
      continue;
    }
    // Condvar wait while holding a second mutex: the wait releases only its
    // own lock, so the other mutex is held across an unbounded sleep.
    if ((t.text == "wait" || t.text == "wait_for" || t.text == "wait_until") &&
        ctx->IsPunct(i + 1, "(") && ctx->IsPunct(i - 1, ".") && live.size() >= 2) {
      ctx->Report("L9-lock-discipline", t.line,
                  "condition-variable " + t.text + " while holding a second mutex ('" +
                      live.front()->mutex + "') — the wait releases only its own lock; "
                      "the other mutex is held across an unbounded sleep");
      continue;
    }
    // Buffer-pool page faults under a mutex: Fetch can evict + re-read a
    // page (storage I/O); the pool is single-threaded by contract and must
    // be serialized *outside* fine-grained server locks.
    if ((t.text == "Fetch" && ctx->IsPunct(i + 1, "(")) || t.text == "PageGuard") {
      ctx->Report("L9-lock-discipline", t.line,
                  "'" + t.text + "' (buffer-pool page fault) under mutex '" +
                      live.back()->mutex + "' — page eviction/IO under a server lock "
                      "stalls every other thread; serialize pool access at the "
                      "QueryService boundary instead");
      continue;
    }
  }
}

}  // namespace senn_lint
