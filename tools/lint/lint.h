// senn_lint — the repo's determinism & soundness static-analysis pass.
//
// Six token-level rules enforce the contract that PR 4's tie-break
// postmortems made explicit (see DESIGN.md, "Determinism contract"):
//
//   L1-raw-order       distance-carrying sorts/heaps must rank through
//                      core::RanksBefore, never a raw `<` on distance alone.
//   L2-unordered-iter  no iteration over unordered_map/unordered_set
//                      (membership tests are fine; iteration order is a
//                      function of the hash seed and allocation history).
//   L3-wallclock       no rand()/std::random_device/time()/std::chrono
//                      clocks outside common/rng.* and the CLI entry point.
//   L4-pointer-order   no ordering comparisons on pointer values (heap
//                      addresses vary run to run).
//   L5-float-eq        no ==/!= on double distances outside geom/ epsilon
//                      helpers (exact ties are only sound when both sides
//                      come from the identical computation — say why).
//   L6-pin-balance     every pinning Fetch()/ChargeNodeAccess()/
//                      ChargeBatchNodeAccess() in a scope needs a matching
//                      Unpin()/PageGuard in that scope.
//
// A finding is silenced with a justification comment on the same line or
// the comment block directly above it:
//
//   // senn-lint: allow(L5-float-eq): cached radius comes from the same
//   // Dist() computation, so the tie is bit-exact by construction.
//
// Unused allow() annotations are themselves findings: a suppression that
// no longer suppresses anything must be deleted, which keeps the baseline
// (tools/lint_baseline.txt) honest.
//
// The rules are heuristic by design (a tokenizer, not a compiler): they
// trade completeness for zero build-time dependencies and for diagnostics
// precise enough to gate check.sh stage 6. False positives are expected
// occasionally and are what allow() is for.
#pragma once

#include <string>
#include <vector>

namespace senn_lint {

struct Diagnostic {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

struct Suppression {
  std::string rule;
  std::string file;
  int line = 0;
  std::string justification;
  bool used = false;
};

/// Per-file lint outcome: diagnostics that survived suppression plus every
/// suppression annotation found (with usage marked).
struct FileReport {
  std::vector<Diagnostic> diagnostics;
  std::vector<Suppression> suppressions;
};

/// All registered rules as (name, summary) pairs, in L1..L6 order.
std::vector<std::pair<std::string, std::string>> RuleTable();

/// Lints one translation unit. `file` is the label used in diagnostics and
/// in path-based rule exemptions, so pass repo-relative paths.
FileReport LintSource(const std::string& file, const std::string& source);

/// Aggregated run over many files.
struct RunResult {
  std::vector<Diagnostic> diagnostics;       // unsuppressed findings
  std::vector<Suppression> suppressions;     // every allow() annotation seen
  std::vector<std::string> missing_files;    // paths that could not be read
  int files_scanned = 0;

  std::vector<Suppression> UnusedSuppressions() const;
  /// True when the run should exit 0: no findings, no unused suppressions,
  /// no unreadable inputs.
  bool Clean() const;
};

/// Lints every *.h / *.cc / *.cpp under `paths` (files or directories,
/// directories walked recursively in sorted order — the tool's own output
/// must be deterministic).
RunResult LintPaths(const std::vector<std::string>& paths);

/// Machine-readable report (schema: {"version", "files_scanned",
/// "diagnostics": [{"rule","file","line","message"}], "unused_suppressions":
/// [{"rule","file","line"}], "suppressions_used"}).
std::string ToJson(const RunResult& result);

/// Human-readable report: one "file:line: [rule] message" per finding.
std::string ToHuman(const RunResult& result);

/// Baseline format for tools/regen_lint_baseline.sh: one sorted
/// "file:line: allow(rule): justification" per annotation, so intentional
/// suppressions show up in code review diffs.
std::string ToSuppressionList(const RunResult& result);

}  // namespace senn_lint
