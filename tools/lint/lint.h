// senn_lint — the repo's determinism & soundness static-analysis pass.
//
// v2: a lightweight semantic engine (brace/paren-matched scope tree,
// per-scope symbol table with declared-type chains, cross-file include
// graph) hosting ten rule families. L1-L6 encode the PR-4 tie-break
// postmortems; L7-L10 encode the PR-6/PR-7 stream- and wire-safety
// contracts (see DESIGN.md, "Determinism contract"):
//
//   L1-raw-order        distance-carrying sorts/heaps must rank through
//                       core::RanksBefore, never a raw `<` on distance alone.
//   L2-unordered-iter   no iteration over unordered_map/unordered_set
//                       (membership tests are fine; iteration order is a
//                       function of the hash seed and allocation history).
//   L3-wallclock        no rand()/std::random_device/time()/std::chrono
//                       clocks outside common/rng.* and the CLI entry point.
//   L4-pointer-order    no ordering comparisons on pointer values (heap
//                       addresses vary run to run).
//   L5-float-eq         no ==/!= on double distances outside geom/ epsilon
//                       helpers (exact ties are only sound when both sides
//                       come from the identical computation — say why).
//   L6-pin-balance      every pinning Fetch()/ChargeNodeAccess()/
//                       ChargeBatchNodeAccess() in a scope needs a matching
//                       Unpin()/PageGuard in that scope.
//   L7-rng-stream       every Rng draw comes from a named Rng::Stream
//                       derivation; no draw inside a branch predicated on a
//                       prior draw's outcome (stream-desync hazard).
//   L8-untrusted-decode in src/rpc/, decoded-frame fields are tainted until
//                       a Validate*() or relational bounds check; tainted
//                       arithmetic/indexing/size-taking is a finding.
//   L9-lock-discipline  no socket I/O, second-mutex condvar waits, or
//                       buffer-pool page faults under a mutex; nested
//                       acquisitions must follow declaration order.
//   L10-layering        includes may only point down (or sideways in) the
//                       layer DAG common -> geom/obs -> rtree/storage/net ->
//                       core/roadnet -> cache/mobility -> rpc/sim -> tools;
//                       include cycles are hard errors and cannot be
//                       suppressed.
//
// A finding is silenced with a justification comment on the same line or
// the comment block directly above it:
//
//   // senn-lint: allow(L5-float-eq): cached radius comes from the same
//   // Dist() computation, so the tie is bit-exact by construction.
//
// Unused allow() annotations are themselves findings: a suppression that
// no longer suppresses anything must be deleted, which keeps the baseline
// (tools/lint_baseline.txt) honest.
//
// The rules are heuristic by design (a tokenizer + scope heuristics, not a
// compiler): they trade completeness for zero build-time dependencies and
// for diagnostics precise enough to gate check.sh stage 6. When the engine
// cannot resolve a receiver or declaration it stays silent; false positives
// are expected occasionally and are what allow() is for.
#pragma once

#include <string>
#include <vector>

namespace senn_lint {

struct Diagnostic {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
  bool hard = false;  // hard errors (include cycles) ignore allow() comments
};

struct Suppression {
  std::string rule;
  std::string file;
  int line = 0;
  std::string justification;
  bool used = false;
};

/// Per-file lint outcome: diagnostics that survived suppression plus every
/// suppression annotation found (with usage marked).
struct FileReport {
  std::vector<Diagnostic> diagnostics;
  std::vector<Suppression> suppressions;
};

/// All registered rules as (name, summary) pairs, in L1..L10 order.
std::vector<std::pair<std::string, std::string>> RuleTable();

/// Lints one translation unit. `file` is the label used in diagnostics and
/// in path-based rule exemptions (L8 gates on "rpc/", L10 bands on the
/// "src/<layer>/" component), so pass repo-relative paths.
FileReport LintSource(const std::string& file, const std::string& source);

/// An in-memory translation unit for LintFiles — the run-level entry point
/// the include-graph tests drive with synthetic file trees.
struct SourceFile {
  std::string path;
  std::string source;
};

/// Aggregated run over many files.
struct RunResult {
  std::vector<Diagnostic> diagnostics;       // unsuppressed findings
  std::vector<Suppression> suppressions;     // every allow() annotation seen
  std::vector<std::string> missing_files;    // paths that could not be read
  int files_scanned = 0;

  std::vector<Suppression> UnusedSuppressions() const;
  /// True when the run should exit 0: no findings, no unused suppressions,
  /// no unreadable inputs.
  bool Clean() const;
};

/// Lints a set of in-memory files as one run: per-file rules plus the
/// cross-file rules (include cycles, lock acquisition order) that need the
/// whole set in view.
RunResult LintFiles(const std::vector<SourceFile>& files);

/// Lints every *.h / *.cc / *.cpp under `paths` (files or directories,
/// directories walked recursively in sorted order — the tool's own output
/// must be deterministic).
RunResult LintPaths(const std::vector<std::string>& paths);

/// Machine-readable report (schema: {"version", "files_scanned",
/// "diagnostics": [{"rule","file","line","message"}], "unused_suppressions":
/// [{"rule","file","line"}], "suppressions_used"}).
std::string ToJson(const RunResult& result);

/// Human-readable report: one "file:line: [rule] message" per finding.
std::string ToHuman(const RunResult& result);

/// Baseline format for tools/regen_lint_baseline.sh: one sorted
/// "file:line: allow(rule): justification" per annotation, so intentional
/// suppressions show up in code review diffs.
std::string ToSuppressionList(const RunResult& result);

/// Line-set diff of the run's suppression list against checked-in baseline
/// text (`--baseline FILE`): `added` are annotations not in the baseline,
/// `removed` are baseline entries no longer in the tree.
struct BaselineDiff {
  std::vector<std::string> added;
  std::vector<std::string> removed;
  bool Clean() const { return added.empty() && removed.empty(); }
};
BaselineDiff DiffBaseline(const RunResult& result, const std::string& baseline_text);

}  // namespace senn_lint
