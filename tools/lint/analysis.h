// Shared analysis context for senn_lint rules.
//
// PR 5's rules worked straight off the token stream. The v2 engine adds
// three precomputed structures that the scoped rules (L7-L10) need and the
// token rules (L1-L6) use to cut false positives:
//
//   * bracket matching ('()'/'{}' partner indices),
//   * a scope tree: every '{...}' block classified as namespace / class /
//     function / lambda / control / plain block, with the innermost scope
//     computable per token,
//   * a per-scope symbol table: declarations recovered heuristically from
//     statement starts and parameter lists, carrying the declared type's
//     identifier chain, pointer/reference-ness, and the initializer's token
//     range (so a rule can ask "was this Rng derived via .Stream(...)?").
//
// All of it stays a heuristic over tokens — no preprocessor, no name lookup
// across headers beyond the run-level facts below. Rules must degrade to
// silence when the heuristics cannot resolve something.
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "tools/lint/lexer.h"
#include "tools/lint/lint.h"

namespace senn_lint {

inline constexpr size_t kNpos = static_cast<size_t>(-1);

struct FuncBody {
  size_t open = 0;        // index of '{'
  size_t close = 0;       // index of matching '}'
  size_t param_open = 0;  // index of the preceding '(' (kNpos when absent)
  size_t param_close = 0;
};

struct ScopeNode {
  enum Kind { kFile, kNamespace, kClass, kFunction, kLambda, kControl, kBlock };
  Kind kind = kBlock;
  size_t open = kNpos;   // '{' token index (kNpos for the file scope)
  size_t close = 0;      // matching '}' index (token count for the file scope)
  int parent = -1;
  std::string name;        // function / class / namespace name when recoverable
  size_t head_open = kNpos;   // '(' of the parameter list or control condition
  size_t head_close = kNpos;  // its matching ')'
};

struct Symbol {
  std::string name;
  std::vector<std::string> type;  // identifier tokens of the declared type,
                                  // template arguments included
  bool is_pointer = false;
  bool is_ref = false;
  bool is_param = false;
  int scope = 0;          // index into Ctx::scopes
  size_t name_tok = 0;    // token index of the declared name
  size_t init_begin = kNpos;  // [init_begin, init_end) initializer tokens
  size_t init_end = kNpos;
};

// Per-file side data consumed by the run-level rules (lock acquisition
// order across headers, include cycles).
struct MutexDecl {
  std::string name;
  int line = 0;
};

struct NestedLock {
  int line = 0;  // line the inner lock is taken on
  std::string outer;
  std::string inner;
};

struct IncludeEdge {
  int line = 0;
  std::string target;  // repo-relative quoted include path
};

struct FileFacts {
  std::vector<IncludeEdge> includes;
  std::vector<MutexDecl> mutex_decls;
  std::vector<NestedLock> nested_locks;
};

struct Ctx {
  std::string file;
  std::vector<Token> tokens;
  std::vector<size_t> paren_match;  // '('/')' partner index or kNpos
  std::vector<size_t> brace_match;  // '{'/'}' partner index or kNpos
  std::unordered_map<std::string, std::pair<size_t, size_t>> lambda_body;
  std::vector<FuncBody> func_bodies;
  std::vector<ScopeNode> scopes;  // [0] is the file scope
  std::vector<int> scope_at;      // innermost scope index per token
  std::vector<Symbol> symbols;
  std::vector<Diagnostic>* sink = nullptr;
  FileFacts* facts = nullptr;

  const Token& At(size_t i) const { return tokens[i]; }
  size_t Size() const { return tokens.size(); }
  bool IsIdent(size_t i, const char* text) const {
    return i < tokens.size() && tokens[i].kind == TokKind::kIdent && tokens[i].text == text;
  }
  bool IsPunct(size_t i, const char* text) const {
    return i < tokens.size() && tokens[i].kind == TokKind::kPunct && tokens[i].text == text;
  }
  void Report(const std::string& rule, int line, std::string message) {
    // One diagnostic per (rule, line): two `==` on one line are one finding.
    for (const Diagnostic& d : *sink) {
      if (d.rule == rule && d.line == line) return;
    }
    sink->push_back({rule, file, line, std::move(message), false});
  }

  /// Innermost scope containing token `i`.
  int ScopeAt(size_t i) const { return i < scope_at.size() ? scope_at[i] : 0; }
  /// Nearest enclosing scope of `kind` starting from token `i` (-1 if none).
  int EnclosingScope(size_t i, ScopeNode::Kind kind) const;
  /// Innermost visible symbol named `name` at token `i`, declared before `i`.
  const Symbol* Lookup(size_t i, const std::string& name) const;
};

/// True when the symbol's declared-type identifier chain contains `ident`.
bool TypeContains(const Symbol& sym, const char* ident);

bool PathContains(const std::string& path, const char* needle);
std::string Lower(const std::string& s);
bool DistanceIsh(const std::string& ident);
bool DistanceIshForEquality(const std::string& ident);

/// Matches '<'..'>' starting at `open` (index of '<'). kNpos when the '<'
/// reads as a comparison rather than a template argument list.
size_t AngleMatch(const Ctx& ctx, size_t open);

void PrecomputeBrackets(Ctx* ctx);
void CollectLambdas(Ctx* ctx);
void CollectFuncBodies(Ctx* ctx);
void BuildScopes(Ctx* ctx);
void CollectSymbols(Ctx* ctx);

/// Smallest function body whose braces enclose token index `i`.
const FuncBody* EnclosingFuncBody(const Ctx& ctx, size_t i);

/// Name of the innermost enclosing function or lambda at token `i`
/// ("" when unknown — e.g. an unnamed lambda or file scope).
std::string EnclosingFunctionName(const Ctx& ctx, size_t i);

// Rule entry points (each file defines a family; the registry in lint.cc
// wires them up in L1..L10 order).
void RuleRawOrder(Ctx* ctx);         // L1
void RuleUnorderedIter(Ctx* ctx);    // L2
void RuleWallclock(Ctx* ctx);        // L3
void RulePointerOrder(Ctx* ctx);     // L4
void RuleFloatEq(Ctx* ctx);          // L5
void RulePinBalance(Ctx* ctx);       // L6
void RuleRngStream(Ctx* ctx);        // L7
void RuleUntrustedDecode(Ctx* ctx);  // L8
void RuleLockDiscipline(Ctx* ctx);   // L9

}  // namespace senn_lint
