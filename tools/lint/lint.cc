// Driver for senn_lint: per-file analysis pipeline, run-level (cross-file)
// rules, suppression application, and the report/baseline formats. The rule
// bodies live in rules_core.cc (L1-L6), rules_scoped.cc (L7-L9), and
// include_graph.cc (L10).
#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "tools/lint/analysis.h"
#include "tools/lint/include_graph.h"
#include "tools/lint/lexer.h"

namespace senn_lint {

namespace {

struct Rule {
  const char* name;
  const char* summary;
  void (*fn)(Ctx*);
};

const std::vector<Rule>& Registry() {
  static const std::vector<Rule> kRules = {
      {"L1-raw-order", "distance sorts/heaps must rank through core::RanksBefore",
       RuleRawOrder},
      {"L2-unordered-iter", "no iteration over unordered containers", RuleUnorderedIter},
      {"L3-wallclock", "no entropy/wall-clock sources outside common/rng", RuleWallclock},
      {"L4-pointer-order", "no ordering comparisons on pointer values", RulePointerOrder},
      {"L5-float-eq", "no ==/!= on double distances outside geom/", RuleFloatEq},
      {"L6-pin-balance", "every pin needs an Unpin/PageGuard in scope", RulePinBalance},
      {"L7-rng-stream", "every Rng draw comes from a named stream; no outcome-gated draws",
       RuleRngStream},
      {"L8-untrusted-decode", "rpc/ decoded fields need Validate*/bounds checks before use",
       RuleUntrustedDecode},
      {"L9-lock-discipline", "no I/O, condvar waits, or page faults under server mutexes",
       RuleLockDiscipline},
      {"L10-layering", "includes follow the layer DAG; cycles are hard errors", nullptr},
  };
  return kRules;
}

// Parses allow() annotations: the marker is the tool name, a colon, then
// the rule in parentheses and an optional justification after a colon.
std::vector<Suppression> ParseSuppressions(const std::string& file,
                                           const std::vector<Comment>& comments) {
  std::vector<Suppression> out;
  for (const Comment& c : comments) {
    size_t pos = c.text.find("senn-lint:");
    if (pos == std::string::npos) continue;
    // Quoted examples in documentation are not annotations: a marker inside
    // backticks or a nested `//` comment (doc showing doc) is prose.
    if (pos > 0 && c.text[pos - 1] == '`') continue;
    if (c.text.find("//") != std::string::npos && c.text.find("//") < pos) continue;
    size_t allow = c.text.find("allow(", pos);
    if (allow == std::string::npos) continue;
    size_t open = allow + 6;
    size_t close = c.text.find(')', open);
    if (close == std::string::npos) continue;
    std::string rule = c.text.substr(open, close - open);
    std::string justification;
    size_t rest = close + 1;
    if (rest < c.text.size() && c.text[rest] == ':') ++rest;
    while (rest < c.text.size() && std::isspace(static_cast<unsigned char>(c.text[rest]))) {
      ++rest;
    }
    justification = c.text.substr(rest);
    while (!justification.empty() &&
           std::isspace(static_cast<unsigned char>(justification.back()))) {
      justification.pop_back();
    }
    out.push_back({rule, file, c.line, justification, false});
  }
  return out;
}

// One file's full analysis state, kept until the run-level rules have had
// their say — only then are suppressions applied.
struct FileAnalysis {
  std::string file;
  std::vector<Diagnostic> raw;  // pre-suppression findings
  std::vector<Suppression> suppressions;
  std::set<int> code_lines;
  FileFacts facts;
};

FileAnalysis Analyze(const std::string& file, const std::string& source) {
  FileAnalysis fa;
  fa.file = file;
  LexedFile lexed = Lex(source);
  Ctx ctx;
  ctx.file = file;
  ctx.tokens = std::move(lexed.tokens);
  ctx.sink = &fa.raw;
  ctx.facts = &fa.facts;
  PrecomputeBrackets(&ctx);
  CollectLambdas(&ctx);
  CollectFuncBodies(&ctx);
  BuildScopes(&ctx);
  CollectSymbols(&ctx);
  for (const Rule& r : Registry()) {
    if (r.fn != nullptr) r.fn(&ctx);
  }
  // L10 per-file half: include extraction (off the raw source — the lexer
  // drops string contents) and the upward-edge band check.
  fa.facts.includes = CollectIncludes(source);
  CheckLayering(file, fa.facts.includes, &fa.raw);

  fa.suppressions = ParseSuppressions(file, lexed.comments);
  // Lines that carry code tokens: a suppression comment "directly above" a
  // finding may be separated from it only by comment/blank lines.
  for (const Token& t : ctx.tokens) fa.code_lines.insert(t.line);
  return fa;
}

// Run-level rule: nested lock acquisitions must follow the mutexes'
// declaration order within their declaring file (the class definition).
void CheckLockOrder(std::vector<FileAnalysis>* files) {
  // name -> (declaring file, line); first declaration wins per name, and
  // order is only enforced between mutexes declared in the same file.
  std::map<std::string, std::pair<std::string, int>> decls;
  for (const FileAnalysis& fa : *files) {
    for (const MutexDecl& d : fa.facts.mutex_decls) {
      decls.emplace(d.name, std::make_pair(fa.file, d.line));
    }
  }
  for (FileAnalysis& fa : *files) {
    for (const NestedLock& nl : fa.facts.nested_locks) {
      auto outer = decls.find(nl.outer);
      auto inner = decls.find(nl.inner);
      if (outer == decls.end() || inner == decls.end()) continue;
      if (outer->second.first != inner->second.first) continue;
      if (inner->second.second >= outer->second.second) continue;
      fa.raw.push_back(
          {"L9-lock-discipline", fa.file, nl.line,
           "acquired '" + nl.inner + "' while holding '" + nl.outer + "', but '" +
               nl.inner + "' is declared first (" + inner->second.first + ":" +
               std::to_string(inner->second.second) +
               ") — nested acquisitions must follow declaration order to rule out "
               "lock-order inversions",
           false});
    }
  }
}

// Applies suppressions and sorts: the finish step for one analyzed file.
FileReport Finalize(FileAnalysis* fa) {
  std::sort(fa->raw.begin(), fa->raw.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  FileReport report;
  report.suppressions = fa->suppressions;
  auto suppressed = [&](const Diagnostic& d) {
    if (d.hard) return false;  // include cycles gate unconditionally
    for (Suppression& s : report.suppressions) {
      if (s.rule != d.rule) continue;
      if (s.line == d.line) {
        s.used = true;
        return true;
      }
      if (s.line < d.line) {
        bool contiguous = true;
        for (int l = s.line; l < d.line; ++l) {
          if (fa->code_lines.count(l) > 0) {
            contiguous = false;
            break;
          }
        }
        if (contiguous) {
          s.used = true;
          return true;
        }
      }
    }
    return false;
  };
  for (const Diagnostic& d : fa->raw) {
    if (!suppressed(d)) report.diagnostics.push_back(d);
  }
  return report;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> RuleTable() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const Rule& r : Registry()) out.emplace_back(r.name, r.summary);
  return out;
}

FileReport LintSource(const std::string& file, const std::string& source) {
  std::vector<FileAnalysis> files;
  files.push_back(Analyze(file, source));
  // Run-level rules still run — over the one-file "set" (same-file lock
  // order and self-include cycles remain detectable).
  CheckLockOrder(&files);
  std::map<std::string, std::vector<IncludeEdge>> graph;
  graph[file] = files[0].facts.includes;
  for (Diagnostic& d : CheckIncludeCycles(graph)) files[0].raw.push_back(std::move(d));
  return Finalize(&files[0]);
}

std::vector<Suppression> RunResult::UnusedSuppressions() const {
  std::vector<Suppression> out;
  for (const Suppression& s : suppressions) {
    if (!s.used) out.push_back(s);
  }
  return out;
}

bool RunResult::Clean() const {
  return diagnostics.empty() && UnusedSuppressions().empty() && missing_files.empty();
}

RunResult LintFiles(const std::vector<SourceFile>& files) {
  RunResult result;
  std::vector<FileAnalysis> analyses;
  analyses.reserve(files.size());
  std::map<std::string, std::vector<IncludeEdge>> graph;
  for (const SourceFile& f : files) {
    analyses.push_back(Analyze(f.path, f.source));
    graph[f.path] = analyses.back().facts.includes;
    ++result.files_scanned;
  }
  CheckLockOrder(&analyses);
  std::vector<Diagnostic> cycles = CheckIncludeCycles(graph);
  for (FileAnalysis& fa : analyses) {
    for (const Diagnostic& d : cycles) {
      if (d.file == fa.file) fa.raw.push_back(d);
    }
    FileReport report = Finalize(&fa);
    result.diagnostics.insert(result.diagnostics.end(), report.diagnostics.begin(),
                              report.diagnostics.end());
    result.suppressions.insert(result.suppressions.end(), report.suppressions.begin(),
                               report.suppressions.end());
  }
  return result;
}

RunResult LintPaths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  RunResult result;
  std::vector<std::string> files;
  auto is_source = [](const fs::path& p) {
    std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
  };
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && is_source(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      result.missing_files.push_back(path);
    }
  }
  // Directory iteration order is filesystem-dependent; the lint's own output
  // must not be (rule L2 in spirit).
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceFile> sources;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      result.missing_files.push_back(file);
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back({file, buf.str()});
  }
  RunResult run = LintFiles(sources);
  run.missing_files = result.missing_files;
  return run;
}

std::string ToJson(const RunResult& result) {
  std::ostringstream out;
  out << "{\"version\":1,\"files_scanned\":" << result.files_scanned << ",\"diagnostics\":[";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    if (i > 0) out << ",";
    out << "{\"rule\":\"" << JsonEscape(d.rule) << "\",\"file\":\"" << JsonEscape(d.file)
        << "\",\"line\":" << d.line << ",\"message\":\"" << JsonEscape(d.message) << "\"}";
  }
  out << "],\"unused_suppressions\":[";
  std::vector<Suppression> unused = result.UnusedSuppressions();
  for (size_t i = 0; i < unused.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"rule\":\"" << JsonEscape(unused[i].rule) << "\",\"file\":\""
        << JsonEscape(unused[i].file) << "\",\"line\":" << unused[i].line << "}";
  }
  size_t used = 0;
  for (const Suppression& s : result.suppressions) used += s.used ? 1 : 0;
  out << "],\"suppressions_used\":" << used << "}";
  return out.str();
}

std::string ToHuman(const RunResult& result) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    out << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message << "\n";
  }
  for (const Suppression& s : result.UnusedSuppressions()) {
    out << s.file << ":" << s.line << ": [unused-suppression] allow(" << s.rule
        << ") no longer suppresses anything — delete it\n";
  }
  for (const std::string& f : result.missing_files) {
    out << f << ": [io-error] cannot read input\n";
  }
  out << result.files_scanned << " file(s) scanned, " << result.diagnostics.size()
      << " finding(s), " << result.UnusedSuppressions().size() << " unused suppression(s)\n";
  return out.str();
}

std::string ToSuppressionList(const RunResult& result) {
  std::vector<std::string> lines;
  for (const Suppression& s : result.suppressions) {
    std::ostringstream line;
    line << s.file << ":" << s.line << ": allow(" << s.rule << "): " << s.justification;
    lines.push_back(line.str());
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream out;
  for (const std::string& l : lines) out << l << "\n";
  return out.str();
}

BaselineDiff DiffBaseline(const RunResult& result, const std::string& baseline_text) {
  auto split = [](const std::string& text) {
    std::set<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.insert(line);
    }
    return lines;
  };
  std::set<std::string> current = split(ToSuppressionList(result));
  std::set<std::string> baseline = split(baseline_text);
  BaselineDiff diff;
  for (const std::string& l : current) {
    if (baseline.count(l) == 0) diff.added.push_back(l);
  }
  for (const std::string& l : baseline) {
    if (current.count(l) == 0) diff.removed.push_back(l);
  }
  return diff;
}

}  // namespace senn_lint
