#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "tools/lint/lexer.h"

namespace senn_lint {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

// ---------------------------------------------------------------------------
// Analysis context shared by the rules: tokens plus precomputed structure
// (bracket matching, lambda bodies, function-body blocks).
// ---------------------------------------------------------------------------

struct FuncBody {
  size_t open = 0;        // index of '{'
  size_t close = 0;       // index of matching '}'
  size_t param_open = 0;  // index of the preceding '(' (kNpos when absent)
  size_t param_close = 0;
};

struct Ctx {
  std::string file;
  std::vector<Token> tokens;
  std::vector<size_t> paren_match;  // '('/')' partner index or kNpos
  std::vector<size_t> brace_match;  // '{'/'}' partner index or kNpos
  std::unordered_map<std::string, std::pair<size_t, size_t>> lambda_body;
  std::vector<FuncBody> func_bodies;
  std::vector<Diagnostic>* sink = nullptr;

  const Token& At(size_t i) const { return tokens[i]; }
  size_t Size() const { return tokens.size(); }
  bool IsIdent(size_t i, const char* text) const {
    return i < tokens.size() && tokens[i].kind == TokKind::kIdent && tokens[i].text == text;
  }
  bool IsPunct(size_t i, const char* text) const {
    return i < tokens.size() && tokens[i].kind == TokKind::kPunct && tokens[i].text == text;
  }
  void Report(const std::string& rule, int line, std::string message) {
    // One diagnostic per (rule, line): two `==` on one line are one finding.
    for (const Diagnostic& d : *sink) {
      if (d.rule == rule && d.line == line) return;
    }
    sink->push_back({rule, file, line, std::move(message)});
  }
};

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

// Identifier heuristic for "this value is a distance": the conventional
// names the codebase uses for Euclidean / network distances and radii.
bool DistanceIsh(const std::string& ident) {
  static const std::set<std::string> kExact = {"d", "d2", "nd", "radius", "reach", "network"};
  return Lower(ident).find("dist") != std::string::npos || kExact.count(ident) > 0;
}

// L5 additionally treats `key` as a distance: the best-first queue items
// carry their MINDIST/distance under that name.
bool DistanceIshForEquality(const std::string& ident) {
  return DistanceIsh(ident) || ident == "key";
}

// Matches '<'..'>' starting at `open` (index of '<'). Tracks nested angles
// and parens; gives up (kNpos) on ';' or '{', which means the '<' was a
// comparison, not a template argument list.
size_t AngleMatch(const Ctx& ctx, size_t open) {
  int angle = 0;
  int paren = 0;
  for (size_t i = open; i < ctx.Size(); ++i) {
    const Token& t = ctx.At(i);
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") ++paren;
    if (t.text == ")") {
      if (paren == 0) return kNpos;
      --paren;
    }
    if (paren > 0) continue;
    if (t.text == "<") ++angle;
    if (t.text == ">") {
      --angle;
      if (angle == 0) return i;
    }
    if (t.text == ";" || t.text == "{") return kNpos;
  }
  return kNpos;
}

void PrecomputeBrackets(Ctx* ctx) {
  ctx->paren_match.assign(ctx->Size(), kNpos);
  ctx->brace_match.assign(ctx->Size(), kNpos);
  std::vector<size_t> parens;
  std::vector<size_t> braces;
  for (size_t i = 0; i < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") parens.push_back(i);
    if (t.text == ")" && !parens.empty()) {
      ctx->paren_match[i] = parens.back();
      ctx->paren_match[parens.back()] = i;
      parens.pop_back();
    }
    if (t.text == "{") braces.push_back(i);
    if (t.text == "}" && !braces.empty()) {
      ctx->brace_match[i] = braces.back();
      ctx->brace_match[braces.back()] = i;
      braces.pop_back();
    }
  }
}

// Records `name = [...](...) ... { body }` lambda assignments so L1 can see
// through a named comparator at its use site.
void CollectLambdas(Ctx* ctx) {
  for (size_t i = 2; i < ctx->Size(); ++i) {
    if (!ctx->IsPunct(i, "[")) continue;
    if (!ctx->IsPunct(i - 1, "=") || ctx->At(i - 2).kind != TokKind::kIdent) continue;
    // Find the capture list's ']' (captures contain no brackets in practice).
    size_t rb = i + 1;
    while (rb < ctx->Size() && !ctx->IsPunct(rb, "]")) ++rb;
    if (rb >= ctx->Size()) continue;
    size_t body = kNpos;
    if (ctx->IsPunct(rb + 1, "(")) {
      size_t close = ctx->paren_match[rb + 1];
      if (close == kNpos) continue;
      // Skip trailing-return / specifier tokens up to the body brace.
      for (size_t j = close + 1; j < std::min(close + 12, ctx->Size()); ++j) {
        if (ctx->IsPunct(j, "{")) {
          body = j;
          break;
        }
        if (ctx->IsPunct(j, ";") || ctx->IsPunct(j, ",")) break;
      }
    } else if (ctx->IsPunct(rb + 1, "{")) {
      body = rb + 1;
    }
    if (body == kNpos || ctx->brace_match[body] == kNpos) continue;
    ctx->lambda_body[ctx->At(i - 2).text] = {body, ctx->brace_match[body]};
  }
}

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "while" || s == "for" || s == "switch" || s == "catch";
}

bool IsFuncSpecifier(const std::string& s) {
  return s == "const" || s == "noexcept" || s == "override" || s == "final" || s == "mutable";
}

// Classifies every '{' as function-body or not. A function body is a brace
// whose preceding tokens lead back to a parameter-list ')' that is not a
// control statement's condition. Constructor init lists and trailing return
// types are walked through; `if (...) {` / `for (...) {` are excluded.
void CollectFuncBodies(Ctx* ctx) {
  for (size_t i = 1; i < ctx->Size(); ++i) {
    if (!ctx->IsPunct(i, "{") || ctx->brace_match[i] == kNpos) continue;
    size_t j = i - 1;
    // Walk back over specifiers and a trailing return type.
    size_t steps = 0;
    while (j > 0 && steps < 12) {
      const Token& t = ctx->At(j);
      if (t.kind == TokKind::kIdent && IsFuncSpecifier(t.text)) {
        --j;
        ++steps;
        continue;
      }
      if (t.kind == TokKind::kIdent || t.text == "::" || t.text == "<" || t.text == ">" ||
          t.text == "*" || t.text == "&") {
        // Part of a trailing return type only if an `->` precedes it.
        if (j >= 1 && (ctx->IsPunct(j - 1, "->") || ctx->At(j - 1).kind == TokKind::kIdent ||
                       ctx->IsPunct(j - 1, "::") || ctx->IsPunct(j - 1, "<") ||
                       ctx->IsPunct(j - 1, ">"))) {
          --j;
          ++steps;
          continue;
        }
        if (j >= 1 && ctx->IsPunct(j - 1, ")")) {
          // `) -> T {` without the arrow merged: treat like specifier.
          --j;
          ++steps;
          continue;
        }
        break;
      }
      if (t.text == "->") {
        --j;
        ++steps;
        continue;
      }
      break;
    }
    if (!ctx->IsPunct(j, ")")) continue;
    size_t open = ctx->paren_match[j];
    if (open == kNpos) continue;
    // Constructor init lists: `Foo(...) : a_(1), b_(2) {` — the ')' before
    // '{' belongs to the last initializer. Walk initializers back to the
    // parameter list proper.
    size_t param_close = j;
    size_t param_open = open;
    while (param_open > 0 &&
           (ctx->IsPunct(param_open - 1, ",") ||
            (ctx->At(param_open - 1).kind == TokKind::kIdent && param_open >= 2 &&
             (ctx->IsPunct(param_open - 2, ",") || ctx->IsPunct(param_open - 2, ":"))))) {
      // `..., name(expr)` or `: name(expr)` — step to the preceding ')'.
      size_t k = param_open - 1;
      while (k > 0 && !ctx->IsPunct(k, ")")) {
        if (ctx->IsPunct(k, ";") || ctx->IsPunct(k, "{") || ctx->IsPunct(k, "}")) {
          k = 0;
          break;
        }
        --k;
      }
      if (k == 0 || ctx->paren_match[k] == kNpos) break;
      param_close = k;
      param_open = ctx->paren_match[k];
    }
    if (param_open > 0 && ctx->At(param_open - 1).kind == TokKind::kIdent &&
        IsControlKeyword(ctx->At(param_open - 1).text)) {
      continue;
    }
    ctx->func_bodies.push_back({i, ctx->brace_match[i], param_open, param_close});
  }
}

// Smallest function body whose braces enclose token index `i` (kNpos-open
// sentinel when none).
const FuncBody* EnclosingFuncBody(const Ctx& ctx, size_t i) {
  const FuncBody* best = nullptr;
  for (const FuncBody& b : ctx.func_bodies) {
    if (b.open < i && i < b.close && (best == nullptr || b.open > best->open)) best = &b;
  }
  return best;
}

// ---------------------------------------------------------------------------
// L1-raw-order
// ---------------------------------------------------------------------------

const std::set<std::string>& SortLikeNames() {
  static const std::set<std::string> kNames = {
      "sort",      "stable_sort", "partial_sort", "nth_element",
      "make_heap", "push_heap",   "pop_heap",     "sort_heap"};
  return kNames;
}

void RuleRawOrder(Ctx* ctx) {
  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kIdent) continue;
    if (SortLikeNames().count(t.text) > 0 && ctx->IsPunct(i + 1, "(")) {
      size_t close = ctx->paren_match[i + 1];
      if (close == kNpos) continue;
      bool has_ranks = false;
      bool has_dist = false;
      std::string witness;
      auto scan = [&](size_t lo, size_t hi, bool resolve) {
        for (size_t j = lo; j < hi; ++j) {
          const Token& u = ctx->At(j);
          if (u.kind != TokKind::kIdent) continue;
          if (u.text == "RanksBefore") has_ranks = true;
          if (DistanceIsh(u.text) && !has_dist) {
            has_dist = true;
            witness = u.text;
          }
          if (resolve) {
            auto it = ctx->lambda_body.find(u.text);
            if (it != ctx->lambda_body.end()) {
              for (size_t k = it->second.first; k < it->second.second; ++k) {
                const Token& v = ctx->At(k);
                if (v.kind != TokKind::kIdent) continue;
                if (v.text == "RanksBefore") has_ranks = true;
                if (DistanceIsh(v.text) && !has_dist) {
                  has_dist = true;
                  witness = v.text;
                }
              }
            }
          }
        }
      };
      scan(i + 2, close, /*resolve=*/true);
      if (has_dist && !has_ranks) {
        ctx->Report("L1-raw-order", t.line,
                    "std::" + t.text + " over distance-carrying data ('" + witness +
                        "') without core::RanksBefore — a distance-only comparator ranks "
                        "co-distant entries by insertion order");
      }
    }
    if (t.text == "priority_queue" && ctx->IsPunct(i + 1, "<")) {
      size_t close = AngleMatch(*ctx, i + 1);
      if (close == kNpos) continue;
      int commas = 0;
      int angle = 0;
      int paren = 0;
      for (size_t j = i + 1; j < close; ++j) {
        const Token& u = ctx->At(j);
        if (u.kind != TokKind::kPunct) continue;
        if (u.text == "<") ++angle;
        if (u.text == ">") --angle;
        if (u.text == "(") ++paren;
        if (u.text == ")") --paren;
        if (u.text == "," && angle == 1 && paren == 0) ++commas;
      }
      if (commas == 0) {
        ctx->Report("L1-raw-order", t.line,
                    "std::priority_queue with the default '<' comparator — equal-key "
                    "entries pop in heap-internal order; supply a (distance, id) rank "
                    "comparator");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L2-unordered-iter
// ---------------------------------------------------------------------------

void RuleUnorderedIter(Ctx* ctx) {
  // Pass 1: names declared with an unordered container type.
  std::set<std::string> tracked;
  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kIdent ||
        (t.text != "unordered_map" && t.text != "unordered_set" &&
         t.text != "unordered_multimap" && t.text != "unordered_multiset")) {
      continue;
    }
    if (!ctx->IsPunct(i + 1, "<")) continue;
    size_t close = AngleMatch(*ctx, i + 1);
    if (close == kNpos) continue;
    size_t j = close + 1;
    while (j < ctx->Size() &&
           (ctx->IsPunct(j, "&") || ctx->IsPunct(j, "*") || ctx->IsIdent(j, "const"))) {
      ++j;
    }
    if (j < ctx->Size() && ctx->At(j).kind == TokKind::kIdent) tracked.insert(ctx->At(j).text);
  }
  if (tracked.empty()) return;

  // Pass 2: iteration over a tracked name.
  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    if (ctx->IsIdent(i, "for") && ctx->IsPunct(i + 1, "(")) {
      size_t close = ctx->paren_match[i + 1];
      if (close == kNpos) continue;
      size_t colon = kNpos;
      int paren = 0;
      for (size_t j = i + 2; j < close; ++j) {
        if (ctx->IsPunct(j, "(")) ++paren;
        if (ctx->IsPunct(j, ")")) --paren;
        if (paren == 0 && ctx->IsPunct(j, ":")) {
          colon = j;
          break;
        }
      }
      if (colon == kNpos) continue;
      for (size_t j = colon + 1; j < close; ++j) {
        const Token& u = ctx->At(j);
        if (u.kind == TokKind::kIdent && tracked.count(u.text) > 0) {
          ctx->Report("L2-unordered-iter", ctx->At(i).line,
                      "range-for over unordered container '" + u.text +
                          "' — iteration order is hash-layout dependent and must not "
                          "feed results, JSON, traces, or RNG draws");
          break;
        }
      }
    }
    const Token& t = ctx->At(i);
    if (t.kind == TokKind::kIdent && tracked.count(t.text) > 0 &&
        (ctx->IsPunct(i + 1, ".") || ctx->IsPunct(i + 1, "->")) && i + 2 < ctx->Size()) {
      // `m.find(k) != m.end()` is the membership idiom, not iteration: skip
      // begin/end mentions that are one side of an equality comparison.
      // Walk back over `obj->member.` qualifier chains so `it !=
      // ctx->lambda_body.end()` reads the same as `it != m.end()`.
      size_t q = i;
      while (q >= 2 && (ctx->IsPunct(q - 1, ".") || ctx->IsPunct(q - 1, "->")) &&
             ctx->At(q - 2).kind == TokKind::kIdent) {
        q -= 2;
      }
      if (q > 0 && (ctx->IsPunct(q - 1, "==") || ctx->IsPunct(q - 1, "!="))) continue;
      size_t call_end = (i + 3 < ctx->Size() && ctx->IsPunct(i + 3, "("))
                            ? ctx->paren_match[i + 3]
                            : kNpos;
      if (call_end != kNpos && call_end + 1 < ctx->Size() &&
          (ctx->IsPunct(call_end + 1, "==") || ctx->IsPunct(call_end + 1, "!="))) {
        continue;
      }
      const std::string& m = ctx->At(i + 2).text;
      if (m == "begin" || m == "end" || m == "cbegin" || m == "cend" || m == "rbegin" ||
          m == "rend") {
        ctx->Report("L2-unordered-iter", t.line,
                    "iterator walk over unordered container '" + t.text +
                        "' — iteration order is hash-layout dependent");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L3-wallclock
// ---------------------------------------------------------------------------

void RuleWallclock(Ctx* ctx) {
  if (PathContains(ctx->file, "common/rng.") || PathContains(ctx->file, "senn_sim.cpp")) {
    return;
  }
  static const std::set<std::string> kCallOnly = {"rand",  "srand",       "drand48",
                                                  "time",  "clock",       "gettimeofday",
                                                  "random"};
  static const std::set<std::string> kBareType = {"random_device", "steady_clock",
                                                  "system_clock", "high_resolution_clock"};
  for (size_t i = 0; i < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kIdent) continue;
    // Member accesses (`foo.time`, `x->clock`) are not the libc functions.
    if (i > 0 && (ctx->IsPunct(i - 1, ".") || ctx->IsPunct(i - 1, "->"))) continue;
    if (kCallOnly.count(t.text) > 0 && ctx->IsPunct(i + 1, "(")) {
      // `double time() const` declares a member named `time`: a preceding
      // identifier is a type name, so this is a declaration, not a call.
      // Statement keywords (`return time(...)`) still read as calls.
      static const std::set<std::string> kStmtKeyword = {
          "return", "co_return", "co_yield", "co_await", "throw", "case", "else", "do"};
      if (i > 0 && ctx->At(i - 1).kind == TokKind::kIdent &&
          kStmtKeyword.count(ctx->At(i - 1).text) == 0) {
        continue;
      }
      ctx->Report("L3-wallclock", t.line,
                  "'" + t.text + "()' is a nondeterministic source — draw from a named "
                  "common/rng.h stream instead");
    } else if (kBareType.count(t.text) > 0) {
      ctx->Report("L3-wallclock", t.line,
                  "'std::" + t.text + "' leaks wall-clock/hardware entropy into the run — "
                  "deterministic replays require common/rng.h streams and sim time");
    }
  }
}

// ---------------------------------------------------------------------------
// L4-pointer-order
// ---------------------------------------------------------------------------

void RulePointerOrder(Ctx* ctx) {
  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind == TokKind::kIdent && (t.text == "less" || t.text == "greater") &&
        ctx->IsPunct(i + 1, "<")) {
      size_t close = AngleMatch(*ctx, i + 1);
      if (close == kNpos) continue;
      for (size_t j = i + 2; j < close; ++j) {
        if (ctx->IsPunct(j, "*")) {
          ctx->Report("L4-pointer-order", t.line,
                      "std::" + t.text + " over a pointer type orders by address — heap "
                      "addresses vary per run; compare stable ids instead");
          break;
        }
      }
    }
  }
  // Comparator bodies whose pointer-typed parameters are compared directly.
  for (const FuncBody& b : ctx->func_bodies) {
    if (b.param_open == kNpos || b.param_open + 1 >= b.param_close) continue;
    std::set<std::string> pointer_params;
    size_t seg_start = b.param_open + 1;
    for (size_t j = b.param_open + 1; j <= b.param_close; ++j) {
      if (j == b.param_close || (ctx->IsPunct(j, ",") && ctx->paren_match[j] == kNpos)) {
        bool has_star = false;
        std::string last_ident;
        for (size_t k = seg_start; k < j; ++k) {
          if (ctx->IsPunct(k, "*")) has_star = true;
          if (ctx->At(k).kind == TokKind::kIdent) last_ident = ctx->At(k).text;
        }
        if (has_star && !last_ident.empty()) pointer_params.insert(last_ident);
        seg_start = j + 1;
      }
    }
    if (pointer_params.empty()) continue;
    for (size_t j = b.open + 1; j + 2 < b.close; ++j) {
      const Token& a = ctx->At(j);
      const Token& op = ctx->At(j + 1);
      const Token& c = ctx->At(j + 2);
      if (a.kind == TokKind::kIdent && c.kind == TokKind::kIdent &&
          pointer_params.count(a.text) > 0 && pointer_params.count(c.text) > 0 &&
          op.kind == TokKind::kPunct &&
          (op.text == "<" || op.text == ">" || op.text == "<=" || op.text == ">=")) {
        ctx->Report("L4-pointer-order", a.line,
                    "ordering comparison '" + a.text + " " + op.text + " " + c.text +
                        "' on pointer parameters — addresses vary per run; compare "
                        "stable ids");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L5-float-eq
// ---------------------------------------------------------------------------

void RuleFloatEq(Ctx* ctx) {
  if (PathContains(ctx->file, "geom/")) return;  // the epsilon-helper home
  for (size_t i = 1; i + 1 < ctx->Size(); ++i) {
    const Token& op = ctx->At(i);
    if (op.kind != TokKind::kPunct || (op.text != "==" && op.text != "!=")) continue;
    // Null checks on pointer out-params (`out_distance != nullptr`) are not
    // value comparisons.
    if (ctx->IsIdent(i + 1, "nullptr") || ctx->IsIdent(i - 1, "nullptr")) continue;
    // Comparisons against char/string literals (`d == '.'`) are character
    // processing, never distance arithmetic.
    if (ctx->At(i - 1).kind == TokKind::kString || ctx->At(i + 1).kind == TokKind::kString) {
      continue;
    }
    std::string witness;
    const Token& prev = ctx->At(i - 1);
    if (prev.kind == TokKind::kIdent && DistanceIshForEquality(prev.text)) witness = prev.text;
    if (witness.empty()) {
      size_t j = i + 1;
      while (j < ctx->Size() && (ctx->IsPunct(j, "*") || ctx->IsPunct(j, "("))) ++j;
      // Resolve member chains: in `s.line == d.line` the compared value is
      // the final member (`line`), not the object (`d`).
      while (j + 2 < ctx->Size() && ctx->At(j).kind == TokKind::kIdent &&
             (ctx->IsPunct(j + 1, ".") || ctx->IsPunct(j + 1, "->")) &&
             ctx->At(j + 2).kind == TokKind::kIdent) {
        j += 2;
      }
      if (j < ctx->Size() && ctx->At(j).kind == TokKind::kIdent &&
          DistanceIshForEquality(ctx->At(j).text)) {
        witness = ctx->At(j).text;
      }
    }
    if (witness.empty()) continue;
    ctx->Report("L5-float-eq", op.line,
                "'" + op.text + "' on double distance '" + witness +
                    "' — exact float equality is only sound when both sides come from "
                    "the identical computation; use geom/ epsilon helpers or justify");
  }
}

// ---------------------------------------------------------------------------
// L6-pin-balance
// ---------------------------------------------------------------------------

void RulePinBalance(Ctx* ctx) {
  if (PathContains(ctx->file, "storage/buffer_pool") ||
      PathContains(ctx->file, "storage/node_pager")) {
    return;  // the pin layer itself; its balance is enforced by tests + paranoid mode
  }
  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kIdent ||
        (t.text != "Fetch" && t.text != "ChargeNodeAccess" &&
         t.text != "ChargeBatchNodeAccess")) {
      continue;
    }
    if (!ctx->IsPunct(i + 1, "(")) continue;
    const FuncBody* body = EnclosingFuncBody(*ctx, i);
    if (body == nullptr) continue;  // declaration, not a call in a definition
    bool balanced = false;
    for (size_t j = body->open + 1; j < body->close; ++j) {
      const Token& u = ctx->At(j);
      if (u.kind == TokKind::kIdent && (u.text == "Unpin" || u.text == "PageGuard")) {
        balanced = true;
        break;
      }
    }
    if (!balanced) {
      ctx->Report("L6-pin-balance", t.line,
                  "'" + t.text + "' pins a page but the enclosing scope has no "
                  "Unpin()/PageGuard — leaked pins starve the buffer pool");
    }
  }
}

// ---------------------------------------------------------------------------
// Registry, suppressions, driver
// ---------------------------------------------------------------------------

struct Rule {
  const char* name;
  const char* summary;
  void (*fn)(Ctx*);
};

const std::vector<Rule>& Registry() {
  static const std::vector<Rule> kRules = {
      {"L1-raw-order", "distance sorts/heaps must rank through core::RanksBefore",
       RuleRawOrder},
      {"L2-unordered-iter", "no iteration over unordered containers", RuleUnorderedIter},
      {"L3-wallclock", "no entropy/wall-clock sources outside common/rng", RuleWallclock},
      {"L4-pointer-order", "no ordering comparisons on pointer values", RulePointerOrder},
      {"L5-float-eq", "no ==/!= on double distances outside geom/", RuleFloatEq},
      {"L6-pin-balance", "every pin needs an Unpin/PageGuard in scope", RulePinBalance},
  };
  return kRules;
}

// Parses allow() annotations: the marker is the tool name, a colon, then
// the rule in parentheses and an optional justification after a colon.
std::vector<Suppression> ParseSuppressions(const std::string& file,
                                           const std::vector<Comment>& comments) {
  std::vector<Suppression> out;
  for (const Comment& c : comments) {
    size_t pos = c.text.find("senn-lint:");
    if (pos == std::string::npos) continue;
    // Quoted examples in documentation are not annotations: a marker inside
    // backticks or a nested `//` comment (doc showing doc) is prose.
    if (pos > 0 && c.text[pos - 1] == '`') continue;
    if (c.text.find("//") != std::string::npos && c.text.find("//") < pos) continue;
    size_t allow = c.text.find("allow(", pos);
    if (allow == std::string::npos) continue;
    size_t open = allow + 6;
    size_t close = c.text.find(')', open);
    if (close == std::string::npos) continue;
    std::string rule = c.text.substr(open, close - open);
    std::string justification;
    size_t rest = close + 1;
    if (rest < c.text.size() && c.text[rest] == ':') ++rest;
    while (rest < c.text.size() && std::isspace(static_cast<unsigned char>(c.text[rest]))) {
      ++rest;
    }
    justification = c.text.substr(rest);
    while (!justification.empty() &&
           std::isspace(static_cast<unsigned char>(justification.back()))) {
      justification.pop_back();
    }
    out.push_back({rule, file, c.line, justification, false});
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> RuleTable() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const Rule& r : Registry()) out.emplace_back(r.name, r.summary);
  return out;
}

FileReport LintSource(const std::string& file, const std::string& source) {
  LexedFile lexed = Lex(source);
  Ctx ctx;
  ctx.file = file;
  ctx.tokens = std::move(lexed.tokens);
  std::vector<Diagnostic> raw;
  ctx.sink = &raw;
  PrecomputeBrackets(&ctx);
  CollectLambdas(&ctx);
  CollectFuncBodies(&ctx);
  for (const Rule& r : Registry()) r.fn(&ctx);
  std::sort(raw.begin(), raw.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });

  FileReport report;
  report.suppressions = ParseSuppressions(file, lexed.comments);

  // Lines that carry code tokens: a suppression comment "directly above" a
  // finding may be separated from it only by comment/blank lines.
  std::set<int> code_lines;
  for (const Token& t : ctx.tokens) code_lines.insert(t.line);
  std::set<int> own_line_comments;
  for (const Comment& c : lexed.comments) {
    if (c.own_line) own_line_comments.insert(c.line);
  }

  auto suppressed = [&](const Diagnostic& d) {
    for (Suppression& s : report.suppressions) {
      if (s.rule != d.rule) continue;
      if (s.line == d.line) {
        s.used = true;
        return true;
      }
      if (s.line < d.line) {
        bool contiguous = true;
        for (int l = s.line; l < d.line; ++l) {
          if (code_lines.count(l) > 0) {
            contiguous = false;
            break;
          }
        }
        if (contiguous) {
          s.used = true;
          return true;
        }
      }
    }
    return false;
  };
  for (const Diagnostic& d : raw) {
    if (!suppressed(d)) report.diagnostics.push_back(d);
  }
  return report;
}

std::vector<Suppression> RunResult::UnusedSuppressions() const {
  std::vector<Suppression> out;
  for (const Suppression& s : suppressions) {
    if (!s.used) out.push_back(s);
  }
  return out;
}

bool RunResult::Clean() const {
  return diagnostics.empty() && UnusedSuppressions().empty() && missing_files.empty();
}

RunResult LintPaths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  RunResult result;
  std::vector<std::string> files;
  auto is_source = [](const fs::path& p) {
    std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
  };
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && is_source(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      result.missing_files.push_back(path);
    }
  }
  // Directory iteration order is filesystem-dependent; the lint's own output
  // must not be (rule L2 in spirit).
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      result.missing_files.push_back(file);
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    FileReport report = LintSource(file, buf.str());
    ++result.files_scanned;
    result.diagnostics.insert(result.diagnostics.end(), report.diagnostics.begin(),
                              report.diagnostics.end());
    result.suppressions.insert(result.suppressions.end(), report.suppressions.begin(),
                               report.suppressions.end());
  }
  return result;
}

std::string ToJson(const RunResult& result) {
  std::ostringstream out;
  out << "{\"version\":1,\"files_scanned\":" << result.files_scanned << ",\"diagnostics\":[";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    if (i > 0) out << ",";
    out << "{\"rule\":\"" << JsonEscape(d.rule) << "\",\"file\":\"" << JsonEscape(d.file)
        << "\",\"line\":" << d.line << ",\"message\":\"" << JsonEscape(d.message) << "\"}";
  }
  out << "],\"unused_suppressions\":[";
  std::vector<Suppression> unused = result.UnusedSuppressions();
  for (size_t i = 0; i < unused.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"rule\":\"" << JsonEscape(unused[i].rule) << "\",\"file\":\""
        << JsonEscape(unused[i].file) << "\",\"line\":" << unused[i].line << "}";
  }
  size_t used = 0;
  for (const Suppression& s : result.suppressions) used += s.used ? 1 : 0;
  out << "],\"suppressions_used\":" << used << "}";
  return out.str();
}

std::string ToHuman(const RunResult& result) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    out << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message << "\n";
  }
  for (const Suppression& s : result.UnusedSuppressions()) {
    out << s.file << ":" << s.line << ": [unused-suppression] allow(" << s.rule
        << ") no longer suppresses anything — delete it\n";
  }
  for (const std::string& f : result.missing_files) {
    out << f << ": [io-error] cannot read input\n";
  }
  out << result.files_scanned << " file(s) scanned, " << result.diagnostics.size()
      << " finding(s), " << result.UnusedSuppressions().size() << " unused suppression(s)\n";
  return out.str();
}

std::string ToSuppressionList(const RunResult& result) {
  std::vector<std::string> lines;
  for (const Suppression& s : result.suppressions) {
    std::ostringstream line;
    line << s.file << ":" << s.line << ": allow(" << s.rule << "): " << s.justification;
    lines.push_back(line.str());
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream out;
  for (const std::string& l : lines) out << l << "\n";
  return out.str();
}

}  // namespace senn_lint
