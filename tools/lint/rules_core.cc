// L1-L6: the PR-4/PR-5 determinism rules, re-hosted on the scoped engine.
//
// Two false-positive classes the flat scanner could not express are now
// handled structurally:
//   * L1 skips `std::priority_queue<double>`-style value-only scalar bags —
//     equal keys are indistinguishable, so heap-internal pop order cannot be
//     observed; the rule is about (distance, payload) entries.
//   * L6 skips the pinning helpers' own definitions and lambda-shaped
//     pass-throughs (enclosing function/lambda named `*charge*`): the
//     balance obligation sits with their callers, which the rule still sees.
#include "tools/lint/analysis.h"

namespace senn_lint {

namespace {

const std::set<std::string>& SortLikeNames() {
  static const std::set<std::string> kNames = {
      "sort",      "stable_sort", "partial_sort", "nth_element",
      "make_heap", "push_heap",   "pop_heap",     "sort_heap"};
  return kNames;
}

// Scalar types whose values carry no identity: a container of these cannot
// leak heap-internal ordering because equal elements are interchangeable.
bool IsScalarTypeName(const std::string& s) {
  static const std::set<std::string> kScalar = {
      "double", "float",    "int",     "long",     "short",    "unsigned", "size_t",
      "int8_t", "int16_t",  "int32_t", "int64_t",  "uint8_t",  "uint16_t", "uint32_t",
      "uint64_t", "char",   "bool",    "ptrdiff_t"};
  return kScalar.count(s) > 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// L1-raw-order
// ---------------------------------------------------------------------------

void RuleRawOrder(Ctx* ctx) {
  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kIdent) continue;
    if (SortLikeNames().count(t.text) > 0 && ctx->IsPunct(i + 1, "(")) {
      size_t close = ctx->paren_match[i + 1];
      if (close == kNpos) continue;
      bool has_ranks = false;
      bool has_dist = false;
      std::string witness;
      auto scan = [&](size_t lo, size_t hi, bool resolve) {
        for (size_t j = lo; j < hi; ++j) {
          const Token& u = ctx->At(j);
          if (u.kind != TokKind::kIdent) continue;
          if (u.text == "RanksBefore") has_ranks = true;
          if (DistanceIsh(u.text) && !has_dist) {
            has_dist = true;
            witness = u.text;
          }
          if (resolve) {
            auto it = ctx->lambda_body.find(u.text);
            if (it != ctx->lambda_body.end()) {
              for (size_t k = it->second.first; k < it->second.second; ++k) {
                const Token& v = ctx->At(k);
                if (v.kind != TokKind::kIdent) continue;
                if (v.text == "RanksBefore") has_ranks = true;
                if (DistanceIsh(v.text) && !has_dist) {
                  has_dist = true;
                  witness = v.text;
                }
              }
            }
          }
        }
      };
      scan(i + 2, close, /*resolve=*/true);
      if (has_dist && !has_ranks) {
        ctx->Report("L1-raw-order", t.line,
                    "std::" + t.text + " over distance-carrying data ('" + witness +
                        "') without core::RanksBefore — a distance-only comparator ranks "
                        "co-distant entries by insertion order");
      }
    }
    if (t.text == "priority_queue" && ctx->IsPunct(i + 1, "<")) {
      size_t close = AngleMatch(*ctx, i + 1);
      if (close == kNpos) continue;
      int commas = 0;
      int angle = 0;
      int paren = 0;
      std::vector<std::string> first_arg;
      for (size_t j = i + 2; j < close; ++j) {
        const Token& u = ctx->At(j);
        if (u.kind == TokKind::kIdent && commas == 0) first_arg.push_back(u.text);
        if (u.kind != TokKind::kPunct) continue;
        if (u.text == "<") ++angle;
        if (u.text == ">") --angle;
        if (u.text == "(") ++paren;
        if (u.text == ")") --paren;
        if (u.text == "," && angle == 0 && paren == 0) ++commas;
      }
      if (commas == 0) {
        // A queue of bare scalars is a value-only bag: equal keys are
        // indistinguishable, so the default comparator cannot leak
        // heap-internal order into results.
        bool scalar_bag = first_arg.size() == 1 && IsScalarTypeName(first_arg[0]);
        if (!scalar_bag) {
          ctx->Report("L1-raw-order", t.line,
                      "std::priority_queue with the default '<' comparator — equal-key "
                      "entries pop in heap-internal order; supply a (distance, id) rank "
                      "comparator");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L2-unordered-iter
// ---------------------------------------------------------------------------

void RuleUnorderedIter(Ctx* ctx) {
  // Pass 1: names declared with an unordered container type.
  std::set<std::string> tracked;
  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kIdent ||
        (t.text != "unordered_map" && t.text != "unordered_set" &&
         t.text != "unordered_multimap" && t.text != "unordered_multiset")) {
      continue;
    }
    if (!ctx->IsPunct(i + 1, "<")) continue;
    size_t close = AngleMatch(*ctx, i + 1);
    if (close == kNpos) continue;
    size_t j = close + 1;
    while (j < ctx->Size() &&
           (ctx->IsPunct(j, "&") || ctx->IsPunct(j, "*") || ctx->IsIdent(j, "const"))) {
      ++j;
    }
    if (j < ctx->Size() && ctx->At(j).kind == TokKind::kIdent) tracked.insert(ctx->At(j).text);
  }
  if (tracked.empty()) return;

  // Pass 2: iteration over a tracked name.
  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    if (ctx->IsIdent(i, "for") && ctx->IsPunct(i + 1, "(")) {
      size_t close = ctx->paren_match[i + 1];
      if (close == kNpos) continue;
      size_t colon = kNpos;
      int paren = 0;
      for (size_t j = i + 2; j < close; ++j) {
        if (ctx->IsPunct(j, "(")) ++paren;
        if (ctx->IsPunct(j, ")")) --paren;
        if (paren == 0 && ctx->IsPunct(j, ":")) {
          colon = j;
          break;
        }
      }
      if (colon == kNpos) continue;
      for (size_t j = colon + 1; j < close; ++j) {
        const Token& u = ctx->At(j);
        if (u.kind == TokKind::kIdent && tracked.count(u.text) > 0) {
          ctx->Report("L2-unordered-iter", ctx->At(i).line,
                      "range-for over unordered container '" + u.text +
                          "' — iteration order is hash-layout dependent and must not "
                          "feed results, JSON, traces, or RNG draws");
          break;
        }
      }
    }
    const Token& t = ctx->At(i);
    if (t.kind == TokKind::kIdent && tracked.count(t.text) > 0 &&
        (ctx->IsPunct(i + 1, ".") || ctx->IsPunct(i + 1, "->")) && i + 2 < ctx->Size()) {
      // `m.find(k) != m.end()` is the membership idiom, not iteration: skip
      // begin/end mentions that are one side of an equality comparison.
      // Walk back over `obj->member.` qualifier chains so `it !=
      // ctx->lambda_body.end()` reads the same as `it != m.end()`.
      size_t q = i;
      while (q >= 2 && (ctx->IsPunct(q - 1, ".") || ctx->IsPunct(q - 1, "->")) &&
             ctx->At(q - 2).kind == TokKind::kIdent) {
        q -= 2;
      }
      if (q > 0 && (ctx->IsPunct(q - 1, "==") || ctx->IsPunct(q - 1, "!="))) continue;
      size_t call_end = (i + 3 < ctx->Size() && ctx->IsPunct(i + 3, "("))
                            ? ctx->paren_match[i + 3]
                            : kNpos;
      if (call_end != kNpos && call_end + 1 < ctx->Size() &&
          (ctx->IsPunct(call_end + 1, "==") || ctx->IsPunct(call_end + 1, "!="))) {
        continue;
      }
      const std::string& m = ctx->At(i + 2).text;
      if (m == "begin" || m == "end" || m == "cbegin" || m == "cend" || m == "rbegin" ||
          m == "rend") {
        ctx->Report("L2-unordered-iter", t.line,
                    "iterator walk over unordered container '" + t.text +
                        "' — iteration order is hash-layout dependent");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L3-wallclock
// ---------------------------------------------------------------------------

void RuleWallclock(Ctx* ctx) {
  if (PathContains(ctx->file, "common/rng.") || PathContains(ctx->file, "senn_sim.cpp")) {
    return;
  }
  static const std::set<std::string> kCallOnly = {"rand",  "srand",       "drand48",
                                                  "time",  "clock",       "gettimeofday",
                                                  "random"};
  static const std::set<std::string> kBareType = {"random_device", "steady_clock",
                                                  "system_clock", "high_resolution_clock"};
  for (size_t i = 0; i < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kIdent) continue;
    // Member accesses (`foo.time`, `x->clock`) are not the libc functions.
    if (i > 0 && (ctx->IsPunct(i - 1, ".") || ctx->IsPunct(i - 1, "->"))) continue;
    if (kCallOnly.count(t.text) > 0 && ctx->IsPunct(i + 1, "(")) {
      // `double time() const` declares a member named `time`: a preceding
      // identifier is a type name, so this is a declaration, not a call.
      // Statement keywords (`return time(...)`) still read as calls.
      static const std::set<std::string> kStmtKeyword = {
          "return", "co_return", "co_yield", "co_await", "throw", "case", "else", "do"};
      if (i > 0 && ctx->At(i - 1).kind == TokKind::kIdent &&
          kStmtKeyword.count(ctx->At(i - 1).text) == 0) {
        continue;
      }
      ctx->Report("L3-wallclock", t.line,
                  "'" + t.text + "()' is a nondeterministic source — draw from a named "
                  "common/rng.h stream instead");
    } else if (kBareType.count(t.text) > 0) {
      ctx->Report("L3-wallclock", t.line,
                  "'std::" + t.text + "' leaks wall-clock/hardware entropy into the run — "
                  "deterministic replays require common/rng.h streams and sim time");
    }
  }
}

// ---------------------------------------------------------------------------
// L4-pointer-order
// ---------------------------------------------------------------------------

void RulePointerOrder(Ctx* ctx) {
  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind == TokKind::kIdent && (t.text == "less" || t.text == "greater") &&
        ctx->IsPunct(i + 1, "<")) {
      size_t close = AngleMatch(*ctx, i + 1);
      if (close == kNpos) continue;
      for (size_t j = i + 2; j < close; ++j) {
        if (ctx->IsPunct(j, "*")) {
          ctx->Report("L4-pointer-order", t.line,
                      "std::" + t.text + " over a pointer type orders by address — heap "
                      "addresses vary per run; compare stable ids instead");
          break;
        }
      }
    }
  }
  // Comparator bodies whose pointer-typed parameters are compared directly.
  for (const FuncBody& b : ctx->func_bodies) {
    if (b.param_open == kNpos || b.param_open + 1 >= b.param_close) continue;
    std::set<std::string> pointer_params;
    size_t seg_start = b.param_open + 1;
    for (size_t j = b.param_open + 1; j <= b.param_close; ++j) {
      if (j == b.param_close || (ctx->IsPunct(j, ",") && ctx->paren_match[j] == kNpos)) {
        bool has_star = false;
        std::string last_ident;
        for (size_t k = seg_start; k < j; ++k) {
          if (ctx->IsPunct(k, "*")) has_star = true;
          if (ctx->At(k).kind == TokKind::kIdent) last_ident = ctx->At(k).text;
        }
        if (has_star && !last_ident.empty()) pointer_params.insert(last_ident);
        seg_start = j + 1;
      }
    }
    if (pointer_params.empty()) continue;
    for (size_t j = b.open + 1; j + 2 < b.close; ++j) {
      const Token& a = ctx->At(j);
      const Token& op = ctx->At(j + 1);
      const Token& c = ctx->At(j + 2);
      if (a.kind == TokKind::kIdent && c.kind == TokKind::kIdent &&
          pointer_params.count(a.text) > 0 && pointer_params.count(c.text) > 0 &&
          op.kind == TokKind::kPunct &&
          (op.text == "<" || op.text == ">" || op.text == "<=" || op.text == ">=")) {
        ctx->Report("L4-pointer-order", a.line,
                    "ordering comparison '" + a.text + " " + op.text + " " + c.text +
                        "' on pointer parameters — addresses vary per run; compare "
                        "stable ids");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L5-float-eq
// ---------------------------------------------------------------------------

void RuleFloatEq(Ctx* ctx) {
  if (PathContains(ctx->file, "geom/")) return;  // the epsilon-helper home
  for (size_t i = 1; i + 1 < ctx->Size(); ++i) {
    const Token& op = ctx->At(i);
    if (op.kind != TokKind::kPunct || (op.text != "==" && op.text != "!=")) continue;
    // Null checks on pointer out-params (`out_distance != nullptr`) are not
    // value comparisons.
    if (ctx->IsIdent(i + 1, "nullptr") || ctx->IsIdent(i - 1, "nullptr")) continue;
    // Comparisons against char/string literals (`d == '.'`) are character
    // processing, never distance arithmetic.
    if (ctx->At(i - 1).kind == TokKind::kString || ctx->At(i + 1).kind == TokKind::kString) {
      continue;
    }
    std::string witness;
    const Token& prev = ctx->At(i - 1);
    if (prev.kind == TokKind::kIdent && DistanceIshForEquality(prev.text)) witness = prev.text;
    if (witness.empty()) {
      size_t j = i + 1;
      while (j < ctx->Size() && (ctx->IsPunct(j, "*") || ctx->IsPunct(j, "("))) ++j;
      // Resolve member chains: in `s.line == d.line` the compared value is
      // the final member (`line`), not the object (`d`).
      while (j + 2 < ctx->Size() && ctx->At(j).kind == TokKind::kIdent &&
             (ctx->IsPunct(j + 1, ".") || ctx->IsPunct(j + 1, "->")) &&
             ctx->At(j + 2).kind == TokKind::kIdent) {
        j += 2;
      }
      if (j < ctx->Size() && ctx->At(j).kind == TokKind::kIdent &&
          DistanceIshForEquality(ctx->At(j).text)) {
        witness = ctx->At(j).text;
      }
    }
    if (witness.empty()) continue;
    ctx->Report("L5-float-eq", op.line,
                "'" + op.text + "' on double distance '" + witness +
                    "' — exact float equality is only sound when both sides come from "
                    "the identical computation; use geom/ epsilon helpers or justify");
  }
}

// ---------------------------------------------------------------------------
// L6-pin-balance
// ---------------------------------------------------------------------------

void RulePinBalance(Ctx* ctx) {
  if (PathContains(ctx->file, "storage/buffer_pool") ||
      PathContains(ctx->file, "storage/node_pager")) {
    return;  // the pin layer itself; its balance is enforced by tests + paranoid mode
  }
  for (size_t i = 0; i + 1 < ctx->Size(); ++i) {
    const Token& t = ctx->At(i);
    if (t.kind != TokKind::kIdent ||
        (t.text != "Fetch" && t.text != "ChargeNodeAccess" &&
         t.text != "ChargeBatchNodeAccess")) {
      continue;
    }
    if (!ctx->IsPunct(i + 1, "(")) continue;
    const FuncBody* body = EnclosingFuncBody(*ctx, i);
    if (body == nullptr) continue;  // declaration, not a call in a definition
    // The pinning helpers themselves (and lambda pass-throughs named after
    // them) forward the charge; the balance obligation is their callers'.
    if (Lower(EnclosingFunctionName(*ctx, i)).find("charge") != std::string::npos) {
      continue;
    }
    bool balanced = false;
    for (size_t j = body->open + 1; j < body->close; ++j) {
      const Token& u = ctx->At(j);
      if (u.kind == TokKind::kIdent && (u.text == "Unpin" || u.text == "PageGuard")) {
        balanced = true;
        break;
      }
    }
    if (!balanced) {
      ctx->Report("L6-pin-balance", t.line,
                  "'" + t.text + "' pins a page but the enclosing scope has no "
                  "Unpin()/PageGuard — leaked pins starve the buffer pool");
    }
  }
}

}  // namespace senn_lint
