// Cross-file include graph for L10-layering.
//
// The repo's include convention — every include is written repo-relative
// (`#include "src/geom/vec2.h"`) — makes the graph recoverable with a plain
// line scan, no preprocessor needed. (The lexer drops string-literal
// contents, so this works off the raw source, not the token stream.)
//
// Layer bands encode the architecture DAG from DESIGN.md:
//
//   band 0  common
//   band 1  geom, obs
//   band 2  rtree, storage, net
//   band 3  core, roadnet
//   band 4  cache, mobility
//   band 5  rpc, sim
//   band 6  tools
//
// An include may point sideways (same band: storage -> rtree, core <->
// roadnet) or down, never up: an upward edge is an L10 finding at the
// `#include` line. A file-level include *cycle* is a hard error — it is
// reported unconditionally and cannot be suppressed, because a cycle makes
// the layering claim meaningless for every file involved.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tools/lint/analysis.h"
#include "tools/lint/lint.h"

namespace senn_lint {

/// Extracts `#include "..."` targets with their line numbers from raw
/// source. Angle-bracket (system) includes are ignored.
std::vector<IncludeEdge> CollectIncludes(const std::string& source);

/// Layer band of a path per the table above; -1 when the path is outside
/// the banded tree (tests, fixtures, external).
int LayerBand(const std::string& path);

/// Layer directory name of a path ("" when outside the banded tree).
std::string LayerName(const std::string& path);

/// Per-file band check: reports one L10 finding per upward include edge.
void CheckLayering(const std::string& file, const std::vector<IncludeEdge>& includes,
                   std::vector<Diagnostic>* sink);

/// Run-level cycle check over the scanned files' edges (edges to files
/// outside the scan set are ignored — a cycle needs every participant in
/// view). Returned diagnostics are hard errors (Diagnostic::hard set);
/// the driver exempts them from allow() suppression.
std::vector<Diagnostic> CheckIncludeCycles(
    const std::map<std::string, std::vector<IncludeEdge>>& graph);

}  // namespace senn_lint
