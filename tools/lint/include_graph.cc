#include "tools/lint/include_graph.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace senn_lint {

namespace {

// The architecture DAG, as bands. Same-band edges are allowed (they are the
// deliberate sideways dependencies: storage consults rtree node layouts,
// core and roadnet share the query/result vocabulary).
const std::map<std::string, int>& BandTable() {
  static const std::map<std::string, int> kBands = {
      {"common", 0}, {"geom", 1},    {"obs", 1},   {"rtree", 2},
      {"storage", 2}, {"net", 2},    {"core", 3},  {"roadnet", 3},
      {"cache", 4},  {"mobility", 4}, {"rpc", 5},  {"sim", 5},
  };
  return kBands;
}

// Extracts the layer directory from a path: the component following "src/"
// (e.g. "src/geom/vec2.h" -> "geom"), or "tools" for anything under tools/.
std::string LayerComponent(const std::string& path) {
  size_t pos;
  if (path.rfind("src/", 0) == 0) {
    pos = 4;
  } else if ((pos = path.find("/src/")) != std::string::npos) {
    pos += 5;
  } else if (path.rfind("tools/", 0) == 0 || path.find("/tools/") != std::string::npos) {
    return "tools";
  } else {
    return "";
  }
  size_t slash = path.find('/', pos);
  if (slash == std::string::npos) return "";
  return path.substr(pos, slash - pos);
}

}  // namespace

std::vector<IncludeEdge> CollectIncludes(const std::string& source) {
  std::vector<IncludeEdge> out;
  std::istringstream in(source);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t i = 0;
    auto skip_ws = [&] {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    };
    skip_ws();
    if (i >= line.size() || line[i] != '#') continue;
    ++i;
    skip_ws();
    if (line.compare(i, 7, "include") != 0) continue;
    i += 7;
    skip_ws();
    if (i >= line.size() || line[i] != '"') continue;
    size_t close = line.find('"', i + 1);
    if (close == std::string::npos) continue;
    out.push_back({lineno, line.substr(i + 1, close - i - 1)});
  }
  return out;
}

int LayerBand(const std::string& path) {
  std::string layer = LayerComponent(path);
  if (layer == "tools") return 6;
  auto it = BandTable().find(layer);
  return it == BandTable().end() ? -1 : it->second;
}

std::string LayerName(const std::string& path) { return LayerComponent(path); }

void CheckLayering(const std::string& file, const std::vector<IncludeEdge>& includes,
                   std::vector<Diagnostic>* sink) {
  int from_band = LayerBand(file);
  if (from_band < 0) return;
  for (const IncludeEdge& e : includes) {
    int to_band = LayerBand(e.target);
    if (to_band < 0 || to_band <= from_band) continue;
    sink->push_back(
        {"L10-layering", file, e.line,
         "include of \"" + e.target + "\" jumps up the layer DAG: " + LayerName(file) +
             " (band " + std::to_string(from_band) + ") must not depend on " +
             LayerName(e.target) + " (band " + std::to_string(to_band) +
             "); allowed order is common -> geom/obs -> rtree/storage/net -> "
             "core/roadnet -> cache/mobility -> rpc/sim -> tools",
         false});
  }
}

namespace {

// Iterative Tarjan SCC over the file graph. Node ids are indices into a
// sorted file list so the output is deterministic regardless of map order.
struct Tarjan {
  const std::vector<std::vector<int>>& adj;
  std::vector<int> index, lowlink, on_stack;
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int counter = 0;

  explicit Tarjan(const std::vector<std::vector<int>>& a)
      : adj(a), index(a.size(), -1), lowlink(a.size(), 0), on_stack(a.size(), 0) {}

  void Run(int root) {
    // Explicit stack of (node, next-edge-index) frames.
    std::vector<std::pair<int, size_t>> frames = {{root, 0}};
    while (!frames.empty()) {
      auto& [v, ei] = frames.back();
      if (ei == 0) {
        index[v] = lowlink[v] = counter++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      while (ei < adj[v].size()) {
        int w = adj[v][ei++];
        if (index[w] == -1) {
          frames.emplace_back(w, 0);
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      if (lowlink[v] == index[v]) {
        std::vector<int> scc;
        while (true) {
          int w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc.push_back(w);
          if (w == v) break;
        }
        sccs.push_back(std::move(scc));
      }
      int finished = v;
      frames.pop_back();
      if (!frames.empty()) {
        int parent = frames.back().first;
        lowlink[parent] = std::min(lowlink[parent], lowlink[finished]);
      }
    }
  }
};

}  // namespace

std::vector<Diagnostic> CheckIncludeCycles(
    const std::map<std::string, std::vector<IncludeEdge>>& graph) {
  std::vector<std::string> files;
  files.reserve(graph.size());
  for (const auto& [file, edges] : graph) files.push_back(file);
  std::sort(files.begin(), files.end());
  std::map<std::string, int> id;
  for (size_t i = 0; i < files.size(); ++i) id[files[i]] = static_cast<int>(i);

  std::vector<std::vector<int>> adj(files.size());
  std::vector<bool> self_loop(files.size(), false);
  for (const auto& [file, edges] : graph) {
    int from = id[file];
    for (const IncludeEdge& e : edges) {
      auto it = id.find(e.target);
      if (it == id.end()) continue;  // outside the scan set
      if (it->second == from) self_loop[from] = true;
      adj[from].push_back(it->second);
    }
  }

  Tarjan tarjan(adj);
  for (size_t i = 0; i < files.size(); ++i) {
    if (tarjan.index[i] == -1) tarjan.Run(static_cast<int>(i));
  }

  std::vector<Diagnostic> out;
  for (std::vector<int>& scc : tarjan.sccs) {
    if (scc.size() < 2 && !(scc.size() == 1 && self_loop[scc[0]])) continue;
    std::sort(scc.begin(), scc.end());
    std::string cycle;
    for (int v : scc) {
      if (!cycle.empty()) cycle += " -> ";
      cycle += files[v];
    }
    cycle += " -> " + files[scc[0]];
    // Anchor the diagnostic on each member's first in-cycle include line so
    // every participating file fails loudly.
    std::set<int> members(scc.begin(), scc.end());
    for (int v : scc) {
      int line = 1;
      for (const IncludeEdge& e : graph.at(files[v])) {
        auto it = id.find(e.target);
        if (it != id.end() && members.count(it->second) > 0) {
          line = e.line;
          break;
        }
      }
      out.push_back({"L10-layering", files[v], line,
                     "include cycle (hard error, not suppressible): " + cycle, true});
    }
  }
  return out;
}

}  // namespace senn_lint
