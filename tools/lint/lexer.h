// Minimal C++ tokenizer for senn_lint.
//
// This is not a compiler front end: it splits a translation unit into
// identifier / number / string / punctuation tokens with line numbers,
// strips comments into a side list (so suppression annotations stay
// addressable), and merges just enough multi-character punctuation
// (`::`, `->`, `==`, `!=`, `<=`, `>=`, ...) for the rules to tell a
// range-for colon from a scope operator and an equality test from an
// assignment. `<<` and `>>` are deliberately left as two tokens so that
// template-angle matching works on nested template argument lists.
#pragma once

#include <string>
#include <vector>

namespace senn_lint {

enum class TokKind {
  kIdent,
  kNumber,
  kString,  // string or character literal (contents dropped)
  kPunct,
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;        // line the comment starts on
  std::string text;    // comment body without the // or /* */ markers
  bool own_line = false;  // no code token precedes it on its line
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `source`. Never fails: unrecognized bytes become single-char
/// punctuation tokens, unterminated literals run to end of file.
LexedFile Lex(const std::string& source);

}  // namespace senn_lint
