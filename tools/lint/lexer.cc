#include "tools/lint/lexer.h"

#include <cctype>

namespace senn_lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Two-character punctuators worth keeping whole. `<<`/`>>` are intentionally
// absent (see lexer.h).
bool IsMergedPair(char a, char b) {
  switch (a) {
    case ':':
      return b == ':';
    case '-':
      return b == '>' || b == '-' || b == '=';
    case '=':
      return b == '=';
    case '!':
      return b == '=';
    case '<':
      return b == '=';
    case '>':
      return b == '=';
    case '&':
      return b == '&' || b == '=';
    case '|':
      return b == '|' || b == '=';
    case '+':
      return b == '+' || b == '=';
    case '*':
      return b == '=';
    case '/':
      return b == '=';
    default:
      return false;
  }
}

}  // namespace

LexedFile Lex(const std::string& source) {
  LexedFile out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  // Index into out.tokens of the first token on the current line, or -1 if
  // no token has been seen on this line yet (drives Comment::own_line).
  bool code_on_line = false;

  auto advance_line = [&]() {
    ++line;
    code_on_line = false;
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      advance_line();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t start = i + 2;
      size_t end = start;
      while (end < n && source[end] != '\n') ++end;
      out.comments.push_back({line, source.substr(start, end - start), !code_on_line});
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      int start_line = line;
      bool own = !code_on_line;
      size_t start = i + 2;
      size_t end = start;
      while (end + 1 < n && !(source[end] == '*' && source[end + 1] == '/')) {
        if (source[end] == '\n') advance_line();
        ++end;
      }
      out.comments.push_back({start_line, source.substr(start, end - start), own});
      i = (end + 1 < n) ? end + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      size_t delim_start = i + 2;
      size_t paren = source.find('(', delim_start);
      if (paren != std::string::npos && paren - delim_start <= 16) {
        std::string closer;
        closer.reserve(paren - delim_start + 2);
        closer.push_back(')');
        closer.append(source, delim_start, paren - delim_start);
        closer.push_back('"');
        size_t end = source.find(closer, paren + 1);
        int start_line = line;
        size_t stop = (end == std::string::npos) ? n : end + closer.size();
        for (size_t j = i; j < stop; ++j) {
          if (source[j] == '\n') advance_line();
        }
        out.tokens.push_back({TokKind::kString, "\"\"", start_line});
        code_on_line = true;
        i = stop;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) ++j;
        if (source[j] == '\n') advance_line();
        ++j;
      }
      out.tokens.push_back({TokKind::kString, std::string(1, quote) + std::string(1, quote), line});
      code_on_line = true;
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(source[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, source.substr(i, j - i), line});
      code_on_line = true;
      i = j;
      continue;
    }
    // Number (loose: digits, dots, exponent signs, digit separators, suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t j = i + 1;
      while (j < n) {
        char d = source[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                                              source[j - 1] == 'p' || source[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::kNumber, source.substr(i, j - i), line});
      code_on_line = true;
      i = j;
      continue;
    }
    // Punctuation, merging the pairs the rules care about.
    if (i + 1 < n && IsMergedPair(c, source[i + 1])) {
      out.tokens.push_back({TokKind::kPunct, source.substr(i, 2), line});
      code_on_line = true;
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    code_on_line = true;
    ++i;
  }
  return out;
}

}  // namespace senn_lint
