file(REMOVE_RECURSE
  "CMakeFiles/rtree_test.dir/rtree/bulk_load_test.cpp.o"
  "CMakeFiles/rtree_test.dir/rtree/bulk_load_test.cpp.o.d"
  "CMakeFiles/rtree_test.dir/rtree/count_mode_test.cpp.o"
  "CMakeFiles/rtree_test.dir/rtree/count_mode_test.cpp.o.d"
  "CMakeFiles/rtree_test.dir/rtree/knn_test.cpp.o"
  "CMakeFiles/rtree_test.dir/rtree/knn_test.cpp.o.d"
  "CMakeFiles/rtree_test.dir/rtree/rstar_tree_test.cpp.o"
  "CMakeFiles/rtree_test.dir/rtree/rstar_tree_test.cpp.o.d"
  "CMakeFiles/rtree_test.dir/rtree/spatial_join_test.cpp.o"
  "CMakeFiles/rtree_test.dir/rtree/spatial_join_test.cpp.o.d"
  "rtree_test"
  "rtree_test.pdb"
  "rtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
