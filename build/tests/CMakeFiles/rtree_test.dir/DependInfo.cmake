
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rtree/bulk_load_test.cpp" "tests/CMakeFiles/rtree_test.dir/rtree/bulk_load_test.cpp.o" "gcc" "tests/CMakeFiles/rtree_test.dir/rtree/bulk_load_test.cpp.o.d"
  "/root/repo/tests/rtree/count_mode_test.cpp" "tests/CMakeFiles/rtree_test.dir/rtree/count_mode_test.cpp.o" "gcc" "tests/CMakeFiles/rtree_test.dir/rtree/count_mode_test.cpp.o.d"
  "/root/repo/tests/rtree/knn_test.cpp" "tests/CMakeFiles/rtree_test.dir/rtree/knn_test.cpp.o" "gcc" "tests/CMakeFiles/rtree_test.dir/rtree/knn_test.cpp.o.d"
  "/root/repo/tests/rtree/rstar_tree_test.cpp" "tests/CMakeFiles/rtree_test.dir/rtree/rstar_tree_test.cpp.o" "gcc" "tests/CMakeFiles/rtree_test.dir/rtree/rstar_tree_test.cpp.o.d"
  "/root/repo/tests/rtree/spatial_join_test.cpp" "tests/CMakeFiles/rtree_test.dir/rtree/spatial_join_test.cpp.o" "gcc" "tests/CMakeFiles/rtree_test.dir/rtree/spatial_join_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/senn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
