
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/roadnet/generator_test.cpp" "tests/CMakeFiles/roadnet_test.dir/roadnet/generator_test.cpp.o" "gcc" "tests/CMakeFiles/roadnet_test.dir/roadnet/generator_test.cpp.o.d"
  "/root/repo/tests/roadnet/graph_test.cpp" "tests/CMakeFiles/roadnet_test.dir/roadnet/graph_test.cpp.o" "gcc" "tests/CMakeFiles/roadnet_test.dir/roadnet/graph_test.cpp.o.d"
  "/root/repo/tests/roadnet/io_test.cpp" "tests/CMakeFiles/roadnet_test.dir/roadnet/io_test.cpp.o" "gcc" "tests/CMakeFiles/roadnet_test.dir/roadnet/io_test.cpp.o.d"
  "/root/repo/tests/roadnet/locate_test.cpp" "tests/CMakeFiles/roadnet_test.dir/roadnet/locate_test.cpp.o" "gcc" "tests/CMakeFiles/roadnet_test.dir/roadnet/locate_test.cpp.o.d"
  "/root/repo/tests/roadnet/shortest_path_test.cpp" "tests/CMakeFiles/roadnet_test.dir/roadnet/shortest_path_test.cpp.o" "gcc" "tests/CMakeFiles/roadnet_test.dir/roadnet/shortest_path_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/senn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
