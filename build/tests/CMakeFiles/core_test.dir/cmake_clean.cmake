file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/candidate_heap_test.cpp.o"
  "CMakeFiles/core_test.dir/core/candidate_heap_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/continuous_test.cpp.o"
  "CMakeFiles/core_test.dir/core/continuous_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/integration_test.cpp.o"
  "CMakeFiles/core_test.dir/core/integration_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/join_test.cpp.o"
  "CMakeFiles/core_test.dir/core/join_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/range_test.cpp.o"
  "CMakeFiles/core_test.dir/core/range_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/region_protocol_test.cpp.o"
  "CMakeFiles/core_test.dir/core/region_protocol_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/senn_test.cpp.o"
  "CMakeFiles/core_test.dir/core/senn_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/server_test.cpp.o"
  "CMakeFiles/core_test.dir/core/server_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/snnn_test.cpp.o"
  "CMakeFiles/core_test.dir/core/snnn_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/verification_test.cpp.o"
  "CMakeFiles/core_test.dir/core/verification_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
