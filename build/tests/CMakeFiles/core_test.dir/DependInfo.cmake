
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/candidate_heap_test.cpp" "tests/CMakeFiles/core_test.dir/core/candidate_heap_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/candidate_heap_test.cpp.o.d"
  "/root/repo/tests/core/continuous_test.cpp" "tests/CMakeFiles/core_test.dir/core/continuous_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/continuous_test.cpp.o.d"
  "/root/repo/tests/core/integration_test.cpp" "tests/CMakeFiles/core_test.dir/core/integration_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/integration_test.cpp.o.d"
  "/root/repo/tests/core/join_test.cpp" "tests/CMakeFiles/core_test.dir/core/join_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/join_test.cpp.o.d"
  "/root/repo/tests/core/range_test.cpp" "tests/CMakeFiles/core_test.dir/core/range_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/range_test.cpp.o.d"
  "/root/repo/tests/core/region_protocol_test.cpp" "tests/CMakeFiles/core_test.dir/core/region_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/region_protocol_test.cpp.o.d"
  "/root/repo/tests/core/senn_test.cpp" "tests/CMakeFiles/core_test.dir/core/senn_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/senn_test.cpp.o.d"
  "/root/repo/tests/core/server_test.cpp" "tests/CMakeFiles/core_test.dir/core/server_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/server_test.cpp.o.d"
  "/root/repo/tests/core/snnn_test.cpp" "tests/CMakeFiles/core_test.dir/core/snnn_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/snnn_test.cpp.o.d"
  "/root/repo/tests/core/verification_test.cpp" "tests/CMakeFiles/core_test.dir/core/verification_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/verification_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/senn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
