file(REMOVE_RECURSE
  "CMakeFiles/geom_test.dir/geom/angular_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/angular_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/circle_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/circle_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/coverage_sweep_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/coverage_sweep_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/disk_cover_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/disk_cover_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/mbr_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/mbr_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/polygon_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/polygon_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/region_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/region_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/vec2_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/vec2_test.cpp.o.d"
  "geom_test"
  "geom_test.pdb"
  "geom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
