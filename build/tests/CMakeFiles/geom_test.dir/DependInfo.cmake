
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geom/angular_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/angular_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/angular_test.cpp.o.d"
  "/root/repo/tests/geom/circle_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/circle_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/circle_test.cpp.o.d"
  "/root/repo/tests/geom/coverage_sweep_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/coverage_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/coverage_sweep_test.cpp.o.d"
  "/root/repo/tests/geom/disk_cover_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/disk_cover_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/disk_cover_test.cpp.o.d"
  "/root/repo/tests/geom/mbr_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/mbr_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/mbr_test.cpp.o.d"
  "/root/repo/tests/geom/polygon_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/polygon_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/polygon_test.cpp.o.d"
  "/root/repo/tests/geom/region_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/region_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/region_test.cpp.o.d"
  "/root/repo/tests/geom/vec2_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/vec2_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/vec2_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/senn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
