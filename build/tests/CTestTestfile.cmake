# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/roadnet_test[1]_include.cmake")
include("/root/repo/build/tests/mobility_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
