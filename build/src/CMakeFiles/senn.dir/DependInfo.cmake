
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/nn_cache.cc" "src/CMakeFiles/senn.dir/cache/nn_cache.cc.o" "gcc" "src/CMakeFiles/senn.dir/cache/nn_cache.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/senn.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/senn.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/senn.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/senn.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/senn.dir/common/status.cc.o" "gcc" "src/CMakeFiles/senn.dir/common/status.cc.o.d"
  "/root/repo/src/core/candidate_heap.cc" "src/CMakeFiles/senn.dir/core/candidate_heap.cc.o" "gcc" "src/CMakeFiles/senn.dir/core/candidate_heap.cc.o.d"
  "/root/repo/src/core/continuous.cc" "src/CMakeFiles/senn.dir/core/continuous.cc.o" "gcc" "src/CMakeFiles/senn.dir/core/continuous.cc.o.d"
  "/root/repo/src/core/join.cc" "src/CMakeFiles/senn.dir/core/join.cc.o" "gcc" "src/CMakeFiles/senn.dir/core/join.cc.o.d"
  "/root/repo/src/core/multi_peer.cc" "src/CMakeFiles/senn.dir/core/multi_peer.cc.o" "gcc" "src/CMakeFiles/senn.dir/core/multi_peer.cc.o.d"
  "/root/repo/src/core/range.cc" "src/CMakeFiles/senn.dir/core/range.cc.o" "gcc" "src/CMakeFiles/senn.dir/core/range.cc.o.d"
  "/root/repo/src/core/senn.cc" "src/CMakeFiles/senn.dir/core/senn.cc.o" "gcc" "src/CMakeFiles/senn.dir/core/senn.cc.o.d"
  "/root/repo/src/core/server.cc" "src/CMakeFiles/senn.dir/core/server.cc.o" "gcc" "src/CMakeFiles/senn.dir/core/server.cc.o.d"
  "/root/repo/src/core/single_peer.cc" "src/CMakeFiles/senn.dir/core/single_peer.cc.o" "gcc" "src/CMakeFiles/senn.dir/core/single_peer.cc.o.d"
  "/root/repo/src/core/snnn.cc" "src/CMakeFiles/senn.dir/core/snnn.cc.o" "gcc" "src/CMakeFiles/senn.dir/core/snnn.cc.o.d"
  "/root/repo/src/geom/angular.cc" "src/CMakeFiles/senn.dir/geom/angular.cc.o" "gcc" "src/CMakeFiles/senn.dir/geom/angular.cc.o.d"
  "/root/repo/src/geom/disk_cover.cc" "src/CMakeFiles/senn.dir/geom/disk_cover.cc.o" "gcc" "src/CMakeFiles/senn.dir/geom/disk_cover.cc.o.d"
  "/root/repo/src/geom/mbr.cc" "src/CMakeFiles/senn.dir/geom/mbr.cc.o" "gcc" "src/CMakeFiles/senn.dir/geom/mbr.cc.o.d"
  "/root/repo/src/geom/polygon.cc" "src/CMakeFiles/senn.dir/geom/polygon.cc.o" "gcc" "src/CMakeFiles/senn.dir/geom/polygon.cc.o.d"
  "/root/repo/src/geom/region.cc" "src/CMakeFiles/senn.dir/geom/region.cc.o" "gcc" "src/CMakeFiles/senn.dir/geom/region.cc.o.d"
  "/root/repo/src/mobility/road_mover.cc" "src/CMakeFiles/senn.dir/mobility/road_mover.cc.o" "gcc" "src/CMakeFiles/senn.dir/mobility/road_mover.cc.o.d"
  "/root/repo/src/mobility/waypoint.cc" "src/CMakeFiles/senn.dir/mobility/waypoint.cc.o" "gcc" "src/CMakeFiles/senn.dir/mobility/waypoint.cc.o.d"
  "/root/repo/src/roadnet/generator.cc" "src/CMakeFiles/senn.dir/roadnet/generator.cc.o" "gcc" "src/CMakeFiles/senn.dir/roadnet/generator.cc.o.d"
  "/root/repo/src/roadnet/graph.cc" "src/CMakeFiles/senn.dir/roadnet/graph.cc.o" "gcc" "src/CMakeFiles/senn.dir/roadnet/graph.cc.o.d"
  "/root/repo/src/roadnet/io.cc" "src/CMakeFiles/senn.dir/roadnet/io.cc.o" "gcc" "src/CMakeFiles/senn.dir/roadnet/io.cc.o.d"
  "/root/repo/src/roadnet/locate.cc" "src/CMakeFiles/senn.dir/roadnet/locate.cc.o" "gcc" "src/CMakeFiles/senn.dir/roadnet/locate.cc.o.d"
  "/root/repo/src/roadnet/shortest_path.cc" "src/CMakeFiles/senn.dir/roadnet/shortest_path.cc.o" "gcc" "src/CMakeFiles/senn.dir/roadnet/shortest_path.cc.o.d"
  "/root/repo/src/rtree/bulk_load.cc" "src/CMakeFiles/senn.dir/rtree/bulk_load.cc.o" "gcc" "src/CMakeFiles/senn.dir/rtree/bulk_load.cc.o.d"
  "/root/repo/src/rtree/knn.cc" "src/CMakeFiles/senn.dir/rtree/knn.cc.o" "gcc" "src/CMakeFiles/senn.dir/rtree/knn.cc.o.d"
  "/root/repo/src/rtree/rstar_tree.cc" "src/CMakeFiles/senn.dir/rtree/rstar_tree.cc.o" "gcc" "src/CMakeFiles/senn.dir/rtree/rstar_tree.cc.o.d"
  "/root/repo/src/rtree/spatial_join.cc" "src/CMakeFiles/senn.dir/rtree/spatial_join.cc.o" "gcc" "src/CMakeFiles/senn.dir/rtree/spatial_join.cc.o.d"
  "/root/repo/src/sim/mobile_host.cc" "src/CMakeFiles/senn.dir/sim/mobile_host.cc.o" "gcc" "src/CMakeFiles/senn.dir/sim/mobile_host.cc.o.d"
  "/root/repo/src/sim/neighbor_grid.cc" "src/CMakeFiles/senn.dir/sim/neighbor_grid.cc.o" "gcc" "src/CMakeFiles/senn.dir/sim/neighbor_grid.cc.o.d"
  "/root/repo/src/sim/params.cc" "src/CMakeFiles/senn.dir/sim/params.cc.o" "gcc" "src/CMakeFiles/senn.dir/sim/params.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/senn.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/senn.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/senn.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/senn.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/senn.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/senn.dir/sim/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
