file(REMOVE_RECURSE
  "libsenn.a"
)
