# Empty dependencies file for senn.
# This may be replaced when dependencies are built.
