file(REMOVE_RECURSE
  "CMakeFiles/senn_sim.dir/senn_sim.cpp.o"
  "CMakeFiles/senn_sim.dir/senn_sim.cpp.o.d"
  "senn_sim"
  "senn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
