# Empty dependencies file for senn_sim.
# This may be replaced when dependencies are built.
