# Empty compiler generated dependencies file for bench_fig09_txrange_2x2.
# This may be replaced when dependencies are built.
