# Empty compiler generated dependencies file for bench_ablation_mpercentage.
# This may be replaced when dependencies are built.
