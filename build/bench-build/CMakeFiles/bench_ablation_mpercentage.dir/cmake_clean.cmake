file(REMOVE_RECURSE
  "../bench/bench_ablation_mpercentage"
  "../bench/bench_ablation_mpercentage.pdb"
  "CMakeFiles/bench_ablation_mpercentage.dir/bench_ablation_mpercentage.cpp.o"
  "CMakeFiles/bench_ablation_mpercentage.dir/bench_ablation_mpercentage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mpercentage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
