# Empty dependencies file for bench_fig13_speed_2x2.
# This may be replaced when dependencies are built.
