file(REMOVE_RECURSE
  "../bench/bench_ablation_knn"
  "../bench/bench_ablation_knn.pdb"
  "CMakeFiles/bench_ablation_knn.dir/bench_ablation_knn.cpp.o"
  "CMakeFiles/bench_ablation_knn.dir/bench_ablation_knn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
