# Empty dependencies file for bench_fig16_k_30x30.
# This may be replaced when dependencies are built.
