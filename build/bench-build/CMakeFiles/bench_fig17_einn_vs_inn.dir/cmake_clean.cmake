file(REMOVE_RECURSE
  "../bench/bench_fig17_einn_vs_inn"
  "../bench/bench_fig17_einn_vs_inn.pdb"
  "CMakeFiles/bench_fig17_einn_vs_inn.dir/bench_fig17_einn_vs_inn.cpp.o"
  "CMakeFiles/bench_fig17_einn_vs_inn.dir/bench_fig17_einn_vs_inn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_einn_vs_inn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
