# Empty compiler generated dependencies file for bench_fig17_einn_vs_inn.
# This may be replaced when dependencies are built.
