# Empty compiler generated dependencies file for bench_fig15_k_2x2.
# This may be replaced when dependencies are built.
