file(REMOVE_RECURSE
  "../bench/bench_fig12_cache_30x30"
  "../bench/bench_fig12_cache_30x30.pdb"
  "CMakeFiles/bench_fig12_cache_30x30.dir/bench_fig12_cache_30x30.cpp.o"
  "CMakeFiles/bench_fig12_cache_30x30.dir/bench_fig12_cache_30x30.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cache_30x30.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
