# Empty dependencies file for bench_fig12_cache_30x30.
# This may be replaced when dependencies are built.
