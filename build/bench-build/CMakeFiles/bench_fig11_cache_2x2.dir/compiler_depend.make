# Empty compiler generated dependencies file for bench_fig11_cache_2x2.
# This may be replaced when dependencies are built.
