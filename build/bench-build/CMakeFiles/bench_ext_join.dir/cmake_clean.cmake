file(REMOVE_RECURSE
  "../bench/bench_ext_join"
  "../bench/bench_ext_join.pdb"
  "CMakeFiles/bench_ext_join.dir/bench_ext_join.cpp.o"
  "CMakeFiles/bench_ext_join.dir/bench_ext_join.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
