# Empty dependencies file for bench_ext_snnn.
# This may be replaced when dependencies are built.
