file(REMOVE_RECURSE
  "../bench/bench_ext_snnn"
  "../bench/bench_ext_snnn.pdb"
  "CMakeFiles/bench_ext_snnn.dir/bench_ext_snnn.cpp.o"
  "CMakeFiles/bench_ext_snnn.dir/bench_ext_snnn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_snnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
