# Empty dependencies file for bench_fig14_speed_30x30.
# This may be replaced when dependencies are built.
