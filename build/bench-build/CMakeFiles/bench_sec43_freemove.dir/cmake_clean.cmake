file(REMOVE_RECURSE
  "../bench/bench_sec43_freemove"
  "../bench/bench_sec43_freemove.pdb"
  "CMakeFiles/bench_sec43_freemove.dir/bench_sec43_freemove.cpp.o"
  "CMakeFiles/bench_sec43_freemove.dir/bench_sec43_freemove.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_freemove.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
