file(REMOVE_RECURSE
  "../bench/bench_params"
  "../bench/bench_params.pdb"
  "CMakeFiles/bench_params.dir/bench_params.cpp.o"
  "CMakeFiles/bench_params.dir/bench_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
