# Empty dependencies file for bench_fig10_txrange_30x30.
# This may be replaced when dependencies are built.
