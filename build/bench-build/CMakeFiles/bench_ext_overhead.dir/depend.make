# Empty dependencies file for bench_ext_overhead.
# This may be replaced when dependencies are built.
