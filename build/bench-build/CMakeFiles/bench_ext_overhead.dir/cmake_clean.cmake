file(REMOVE_RECURSE
  "../bench/bench_ext_overhead"
  "../bench/bench_ext_overhead.pdb"
  "CMakeFiles/bench_ext_overhead.dir/bench_ext_overhead.cpp.o"
  "CMakeFiles/bench_ext_overhead.dir/bench_ext_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
