file(REMOVE_RECURSE
  "../bench/bench_ablation_region"
  "../bench/bench_ablation_region.pdb"
  "CMakeFiles/bench_ablation_region.dir/bench_ablation_region.cpp.o"
  "CMakeFiles/bench_ablation_region.dir/bench_ablation_region.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
