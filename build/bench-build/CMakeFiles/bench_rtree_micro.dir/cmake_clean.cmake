file(REMOVE_RECURSE
  "../bench/bench_rtree_micro"
  "../bench/bench_rtree_micro.pdb"
  "CMakeFiles/bench_rtree_micro.dir/bench_rtree_micro.cpp.o"
  "CMakeFiles/bench_rtree_micro.dir/bench_rtree_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtree_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
