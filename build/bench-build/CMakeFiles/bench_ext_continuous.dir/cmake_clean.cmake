file(REMOVE_RECURSE
  "../bench/bench_ext_continuous"
  "../bench/bench_ext_continuous.pdb"
  "CMakeFiles/bench_ext_continuous.dir/bench_ext_continuous.cpp.o"
  "CMakeFiles/bench_ext_continuous.dir/bench_ext_continuous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_continuous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
