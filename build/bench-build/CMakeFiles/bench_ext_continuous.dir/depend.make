# Empty dependencies file for bench_ext_continuous.
# This may be replaced when dependencies are built.
