# Empty compiler generated dependencies file for continuous_navigation.
# This may be replaced when dependencies are built.
