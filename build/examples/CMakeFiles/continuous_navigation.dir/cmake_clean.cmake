file(REMOVE_RECURSE
  "CMakeFiles/continuous_navigation.dir/continuous_navigation.cpp.o"
  "CMakeFiles/continuous_navigation.dir/continuous_navigation.cpp.o.d"
  "continuous_navigation"
  "continuous_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
