file(REMOVE_RECURSE
  "CMakeFiles/road_trip.dir/road_trip.cpp.o"
  "CMakeFiles/road_trip.dir/road_trip.cpp.o.d"
  "road_trip"
  "road_trip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_trip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
