# Empty dependencies file for road_trip.
# This may be replaced when dependencies are built.
