file(REMOVE_RECURSE
  "CMakeFiles/peer_cache_inspector.dir/peer_cache_inspector.cpp.o"
  "CMakeFiles/peer_cache_inspector.dir/peer_cache_inspector.cpp.o.d"
  "peer_cache_inspector"
  "peer_cache_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_cache_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
