# Empty compiler generated dependencies file for peer_cache_inspector.
# This may be replaced when dependencies are built.
