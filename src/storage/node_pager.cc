#include "src/storage/node_pager.h"

#include <cassert>
#include <cstring>

namespace senn::storage {

namespace {

// Per-slot wire size: MBR (4 doubles) + the larger of the two slot bodies
// (leaf object: int64 id + 2 doubles). Index slots waste the difference —
// pages are fixed-size, slack is the point.
constexpr size_t kHeaderBytes = sizeof(uint32_t) * 2;
constexpr size_t kMbrBytes = sizeof(double) * 4;
constexpr size_t kBodyBytes = sizeof(int64_t) + sizeof(double) * 2;
constexpr size_t kSlotBytes = kMbrBytes + kBodyBytes;

size_t SlotOffset(size_t index) { return kHeaderBytes + index * kSlotBytes; }

void WriteBytes(Page* page, size_t offset, const void* src, size_t n) {
  assert(offset + n <= kPageSizeBytes);
  std::memcpy(page->data.data() + offset, src, n);
}

void ReadBytes(const Page& page, size_t offset, void* dst, size_t n) {
  assert(offset + n <= kPageSizeBytes);
  std::memcpy(dst, page.data.data() + offset, n);
}

}  // namespace

size_t SerializedNodeBytes(size_t slot_count) { return SlotOffset(slot_count); }

PageHeader ReadPageHeader(const Page& page) {
  PageHeader header;
  ReadBytes(page, 0, &header.level, sizeof(header.level));
  ReadBytes(page, sizeof(uint32_t), &header.slot_count, sizeof(header.slot_count));
  return header;
}

PageSlot ReadPageSlot(const Page& page, size_t index) {
  PageSlot slot;
  size_t offset = SlotOffset(index);
  double mbr[4];
  ReadBytes(page, offset, mbr, sizeof(mbr));
  slot.mbr.lo = {mbr[0], mbr[1]};
  slot.mbr.hi = {mbr[2], mbr[3]};
  offset += kMbrBytes;
  const PageHeader header = ReadPageHeader(page);
  if (header.level == 0) {
    ReadBytes(page, offset, &slot.object_id, sizeof(slot.object_id));
    ReadBytes(page, offset + sizeof(int64_t), &slot.object_x, sizeof(double));
    ReadBytes(page, offset + sizeof(int64_t) + sizeof(double), &slot.object_y,
              sizeof(double));
  } else {
    ReadBytes(page, offset, &slot.child, sizeof(slot.child));
  }
  return slot;
}

NodePager::NodePager(const rtree::RStarTree* tree, BufferPoolOptions options)
    : pool_([&] {
        if (options.capacity_pages > 0 && options.capacity_pages < 2) {
          options.capacity_pages = 2;
        }
        return options;
      }()) {
  RegisterSubtree(tree->root());
}

void NodePager::RegisterSubtree(const rtree::RStarTree::Node* node) {
  page_of_.emplace(node, static_cast<PageId>(page_of_.size()));
  if (node->IsLeaf()) return;
  for (const rtree::RStarTree::Slot& slot : node->slots) {
    RegisterSubtree(slot.child.get());
  }
}

PageId NodePager::PageOf(const rtree::RStarTree::Node* node) {
  auto [it, inserted] = page_of_.emplace(node, static_cast<PageId>(page_of_.size()));
  return it->second;
}

bool NodePager::Fetch(const rtree::RStarTree::Node* node) {
  const PageId id = PageOf(node);
  BufferPool::FetchResult result = pool_.Fetch(id);
  if (result.page == nullptr) {
    // Every frame pinned — unreachable through the tree traversals (at most
    // two concurrent pins vs. the clamped minimum capacity of two), but a
    // hostile caller gets a degraded answer, not UB: treat the access as an
    // unbuffered physical read. Unpin() below tolerates the missing pin.
    assert(false && "buffer pool exhausted by pins");
    return true;
  }
  if (result.miss) Materialize(node, result.page);
  return result.miss;
}

void NodePager::Unpin(const rtree::RStarTree::Node* node) {
  const PageId id = PageOf(node);
  if (pool_.PinCount(id) > 0) pool_.Unpin(id);
}

void NodePager::Materialize(const rtree::RStarTree::Node* node, Page* page) {
  assert(SerializedNodeBytes(node->slots.size()) <= kPageSizeBytes &&
         "node fan-out exceeds the fixed page size");
  const uint32_t level = static_cast<uint32_t>(node->level);
  const uint32_t slot_count = static_cast<uint32_t>(node->slots.size());
  WriteBytes(page, 0, &level, sizeof(level));
  WriteBytes(page, sizeof(uint32_t), &slot_count, sizeof(slot_count));
  for (size_t i = 0; i < node->slots.size(); ++i) {
    const rtree::RStarTree::Slot& slot = node->slots[i];
    size_t offset = SlotOffset(i);
    const double mbr[4] = {slot.mbr.lo.x, slot.mbr.lo.y, slot.mbr.hi.x, slot.mbr.hi.y};
    WriteBytes(page, offset, mbr, sizeof(mbr));
    offset += kMbrBytes;
    if (node->IsLeaf()) {
      WriteBytes(page, offset, &slot.object.id, sizeof(int64_t));
      WriteBytes(page, offset + sizeof(int64_t), &slot.object.position.x, sizeof(double));
      WriteBytes(page, offset + sizeof(int64_t) + sizeof(double), &slot.object.position.y,
                 sizeof(double));
    } else {
      const PageId child = PageOf(slot.child.get());
      WriteBytes(page, offset, &child, sizeof(child));
    }
  }
}

}  // namespace senn::storage
