// The node-to-page mapping layer: maps every R*-tree node onto one
// fixed-size storage page and routes traversal accesses through a
// BufferPool, turning the paper's "page accesses" metric (Figure 17 /
// Table 1) from a node counter into physical storage behavior — residency,
// pinning, eviction, warm vs. cold fetches.
//
// Page ids are assigned by preorder enumeration of the tree at
// construction (root = page 0), so the mapping is a pure function of the
// tree shape: two pagers over equal trees agree on every id, and a
// simulation with a bounded pool stays bit-reproducible. Nodes created by
// later tree mutations are registered lazily in first-touch order.
//
// On a physical miss the node's contents are serialized into the page
// frame (the simulated disk read): a PageHeader followed by per-slot
// records — MBR + child page id at index levels, MBR + object at the leaf
// level. A branching-factor-30 node fills well under half of a 4 KiB page,
// which is exactly why the paper equates nodes with pages.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/geom/mbr.h"
#include "src/rtree/rstar_tree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page.h"

namespace senn::storage {

/// On-page record layout (exposed for tests and inspection tools).
struct PageHeader {
  uint32_t level = 0;       // 0 = leaf
  uint32_t slot_count = 0;
};

/// One serialized slot. `child` is valid at index levels, `object_id` /
/// `object_x` / `object_y` at the leaf level.
struct PageSlot {
  geom::Mbr mbr;
  PageId child = kInvalidPageId;
  int64_t object_id = -1;
  double object_x = 0.0;
  double object_y = 0.0;
};

/// Bytes one serialized node occupies (header + slots); used by the static
/// fan-out check below and by capacity planning in the docs.
size_t SerializedNodeBytes(size_t slot_count);

/// Decodes the header / i-th slot of a materialized page.
PageHeader ReadPageHeader(const Page& page);
PageSlot ReadPageSlot(const Page& page, size_t index);

class NodePager : public rtree::NodePageHook {
 public:
  /// Builds the page table for the tree's current shape. `tree` must
  /// outlive the pager. A bounded capacity is clamped to >= 2: best-first
  /// enqueue accounting holds a parent pinned while transiently fetching a
  /// child, so two frames is the traversal floor.
  NodePager(const rtree::RStarTree* tree, BufferPoolOptions options);

  /// rtree::NodePageHook: fetch + pin the node's page, materializing the
  /// payload on a miss; returns whether the fetch physically missed.
  bool Fetch(const rtree::RStarTree::Node* node) override;
  void Unpin(const rtree::RStarTree::Node* node) override;

  /// Page id of a node (assigning one first-touch if the tree grew since
  /// construction).
  PageId PageOf(const rtree::RStarTree::Node* node);
  /// Registered pages (== nodes seen so far).
  size_t page_count() const { return page_of_.size(); }

  BufferPool& pool() { return pool_; }
  const BufferPool& pool() const { return pool_; }

 private:
  void RegisterSubtree(const rtree::RStarTree::Node* node);
  void Materialize(const rtree::RStarTree::Node* node, Page* page);

  BufferPool pool_;
  std::unordered_map<const rtree::RStarTree::Node*, PageId> page_of_;
};

}  // namespace senn::storage
