// A buffer pool over fixed-size pages with pin/unpin semantics and
// pluggable replacement (LRU, CLOCK).
//
// Single-threaded by design: the spatial server processes one query at a
// time per simulation, and the sweep engine isolates whole simulations per
// worker, so the pool needs no locking (ASan/TSan stages of tools/check.sh
// run the storage tests to keep this honest). When a multi-threaded caller
// sits above (the rpc server's worker pool), synchronization is EXTERNAL:
// rpc::QueryService::mu_ is the documented serialization boundary, and its
// GUARDED_BY annotations (src/common/thread_annotations.h) plus the
// senn_lint L9 lock-discipline rule keep every Fetch inside that critical
// section rather than adding a second lock layer here.
//
// Determinism: eviction decisions depend only on the fetch/unpin sequence —
// frames are scanned by index, recency is a logical tick counter, and no
// hash-map iteration order ever reaches a decision — so a simulation with a
// bounded pool remains a pure function of its config.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/storage/page.h"

namespace senn::storage {

class BufferPool {
 public:
  explicit BufferPool(BufferPoolOptions options);
  /// Paranoid builds verify pin balance here: every Fetch must have been
  /// matched by an Unpin before the pool is torn down.
  ~BufferPool();

  /// Outcome of a Fetch.
  struct FetchResult {
    /// The pinned page frame, or nullptr when the pool is at capacity with
    /// every frame pinned (nothing is charged in that case).
    Page* page = nullptr;
    /// True when the page was not resident: the caller must materialize the
    /// payload (the simulated disk read).
    bool miss = false;
  };

  /// Pins page `id`, faulting it into a frame on a miss. A miss on a full
  /// pool evicts one unpinned resident page chosen by the replacement
  /// policy; a freshly loaded frame has a zeroed payload.
  FetchResult Fetch(PageId id);

  /// Releases one pin of a resident page. Fetch/Unpin calls must pair.
  void Unpin(PageId id);

  bool Resident(PageId id) const { return table_.find(id) != table_.end(); }
  /// Pin count of a page (0 when unpinned or not resident).
  uint32_t PinCount(PageId id) const;
  size_t resident_pages() const { return table_.size(); }
  size_t pinned_pages() const;

  const BufferPoolOptions& options() const { return options_; }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

 private:
  struct Frame {
    Page page;
    uint32_t pins = 0;
    bool referenced = false;  // CLOCK second-chance bit
    uint64_t last_use = 0;    // LRU recency (logical fetch tick)
  };
  static constexpr size_t kNoFrame = static_cast<size_t>(-1);

  /// Index of the frame to evict, or kNoFrame when every frame is pinned.
  size_t PickVictim();
  size_t PickVictimLru() const;
  size_t PickVictimClock();

  BufferPoolOptions options_;
  BufferPoolStats stats_;
  // unique_ptr frames so Page* handed to callers stay stable across growth.
  std::vector<std::unique_ptr<Frame>> frames_;
  std::unordered_map<PageId, size_t> table_;  // page id -> frame index
  size_t clock_hand_ = 0;
  uint64_t tick_ = 0;
};

/// RAII pin: fetches on construction, unpins on destruction. `hit()` and
/// `page()` expose the outcome; a failed fetch leaves page() null.
class PageGuard {
 public:
  PageGuard(BufferPool* pool, PageId id) : pool_(pool), id_(id), result_(pool->Fetch(id)) {}
  ~PageGuard() {
    if (result_.page != nullptr) pool_->Unpin(id_);
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  Page* page() const { return result_.page; }
  bool miss() const { return result_.miss; }

 private:
  BufferPool* pool_;
  PageId id_;
  BufferPool::FetchResult result_;
};

}  // namespace senn::storage
