// Fixed-size storage pages — the unit the buffer pool caches and the unit
// the paper's evaluation counts ("page accesses", Figure 17 / Table 1).
//
// The paper's R*-tree uses branching factor 30 because one node fills one
// disk page; with ~56-byte slot records (MBR + child reference or object)
// a 30-slot node serializes into well under kPageSizeBytes, so the node ==
// page identification holds physically, not just by convention (the
// node-to-page serializer lives in storage/node_pager.cc).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace senn::storage {

/// Identifies one page of the (simulated) backing store. Assigned densely
/// from 0 by the mapping layer (node_pager.h).
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Fixed page payload size (a classic 4 KiB disk page).
inline constexpr size_t kPageSizeBytes = 4096;

/// One page frame's payload: the id of the page currently materialized in
/// it plus the raw bytes. The buffer pool hands out pinned `Page*`s; the
/// pager reads/writes the payload through the record layout it defines.
struct Page {
  PageId id = kInvalidPageId;
  std::array<std::byte, kPageSizeBytes> data{};
};

/// Which unpinned page a full pool evicts on a miss.
///
///  * kLru   — evict the least recently fetched page. A stack algorithm:
///    for a fixed access sequence, the hit count is monotonically
///    non-decreasing in the pool size (the inclusion property), which the
///    buffer-pool bench relies on.
///  * kClock — the classic second-chance approximation: a hand sweeps the
///    frames, clearing reference bits, and evicts the first unpinned frame
///    whose bit is already clear. Cheaper bookkeeping, near-LRU behavior,
///    but not a stack algorithm.
enum class ReplacementPolicy {
  kLru = 0,
  kClock = 1,
};

const char* ReplacementPolicyName(ReplacementPolicy policy);

/// Buffer pool sizing and policy.
struct BufferPoolOptions {
  /// Maximum resident pages; 0 = unbounded (nothing is ever evicted, every
  /// page faults in exactly once — the in-memory engine this repo had
  /// before the storage layer, with cold misses made visible).
  size_t capacity_pages = 0;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
};

/// Cumulative pool counters. `logical` counts successful fetches only, so
/// logical == hits + misses always holds (a fetch that fails because every
/// frame is pinned charges nothing).
struct BufferPoolStats {
  uint64_t logical = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRatio() const {
    return logical > 0 ? static_cast<double>(hits) / static_cast<double>(logical) : 0.0;
  }
};

}  // namespace senn::storage
