#include "src/storage/buffer_pool.h"

#include <cassert>

#include "src/obs/paranoid.h"

namespace senn::storage {

const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kClock:
      return "clock";
  }
  return "?";
}

BufferPool::BufferPool(BufferPoolOptions options) : options_(options) {
  if (options_.capacity_pages > 0) frames_.reserve(options_.capacity_pages);
}

BufferPool::~BufferPool() {
  SENN_PARANOID_CHECK(pinned_pages() == 0, "pin leak at pool teardown");
}

BufferPool::FetchResult BufferPool::Fetch(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& frame = *frames_[it->second];
    frame.pins += 1;
    frame.referenced = true;
    frame.last_use = ++tick_;
    ++stats_.logical;
    ++stats_.hits;
    return {&frame.page, false};
  }

  // Miss: find a frame — grow while below capacity (or unbounded), evict
  // otherwise.
  size_t index;
  if (options_.capacity_pages == 0 || frames_.size() < options_.capacity_pages) {
    frames_.push_back(std::make_unique<Frame>());
    index = frames_.size() - 1;
  } else {
    index = PickVictim();
    if (index == kNoFrame) return {nullptr, false};  // every frame pinned
    table_.erase(frames_[index]->page.id);
    ++stats_.evictions;
  }
  Frame& frame = *frames_[index];
  frame.page.id = id;
  frame.page.data.fill(std::byte{0});  // no stale bytes from the evicted page
  frame.pins = 1;
  frame.referenced = true;
  frame.last_use = ++tick_;
  table_[id] = index;
  ++stats_.logical;
  ++stats_.misses;
  return {&frame.page, true};
}

void BufferPool::Unpin(PageId id) {
  auto it = table_.find(id);
  assert(it != table_.end() && "Unpin of a non-resident page");
  SENN_PARANOID_CHECK(it != table_.end(), "Unpin of a non-resident page");
  if (it == table_.end()) return;
  Frame& frame = *frames_[it->second];
  assert(frame.pins > 0 && "Unpin without a matching Fetch");
  SENN_PARANOID_CHECK(frame.pins > 0, "Unpin without a matching Fetch");
  if (frame.pins > 0) frame.pins -= 1;
}

uint32_t BufferPool::PinCount(PageId id) const {
  auto it = table_.find(id);
  return it == table_.end() ? 0 : frames_[it->second]->pins;
}

size_t BufferPool::pinned_pages() const {
  size_t n = 0;
  for (const std::unique_ptr<Frame>& frame : frames_) {
    if (frame->pins > 0) ++n;
  }
  return n;
}

size_t BufferPool::PickVictim() {
  return options_.policy == ReplacementPolicy::kLru ? PickVictimLru() : PickVictimClock();
}

size_t BufferPool::PickVictimLru() const {
  // Least recently fetched among the unpinned frames. Ticks are unique, so
  // the choice is total-ordered and deterministic.
  size_t victim = kNoFrame;
  uint64_t oldest = 0;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = *frames_[i];
    if (frame.pins > 0) continue;
    if (victim == kNoFrame || frame.last_use < oldest) {
      victim = i;
      oldest = frame.last_use;
    }
  }
  return victim;
}

size_t BufferPool::PickVictimClock() {
  // Two sweeps suffice: the first clears every unpinned frame's reference
  // bit, so the second must find a victim — unless every frame is pinned.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    const size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    Frame& frame = *frames_[index];
    if (frame.pins > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    return index;
  }
  return kNoFrame;
}

}  // namespace senn::storage
