// Random waypoint mobility (Broch et al., MobiCom 1998), free movement mode:
// each host picks a uniform random destination in the area, travels there in
// a straight line at fixed speed, pauses for a random interval, and repeats.
#pragma once

#include "src/geom/vec2.h"
#include "src/mobility/mover.h"

namespace senn::mobility {

/// Configuration of the free-movement random waypoint model.
struct WaypointConfig {
  /// Square simulation area [0, side] x [0, side], meters.
  double area_side_m = 3218.688;
  /// Travel speed (meters per second); the paper uses a fixed velocity in
  /// free movement mode.
  double speed_mps = 13.4112;  // 30 mph
  /// Mean pause duration at each waypoint (seconds, exponential).
  double mean_pause_s = 30.0;
};

/// Free-movement random waypoint mover.
class WaypointMover final : public Mover {
 public:
  /// Starts at `start`, already moving toward a random destination chosen
  /// with `rng`.
  WaypointMover(const WaypointConfig& config, geom::Vec2 start, Rng* rng);

  void Advance(double dt, Rng* rng) override;
  geom::Vec2 position() const override { return position_; }
  double current_speed() const override { return pause_left_s_ > 0.0 ? 0.0 : config_.speed_mps; }

  /// Destination of the current trip (test hook).
  geom::Vec2 destination() const { return destination_; }

 private:
  void PickDestination(Rng* rng);

  WaypointConfig config_;
  geom::Vec2 position_;
  geom::Vec2 destination_;
  double pause_left_s_ = 0.0;
};

}  // namespace senn::mobility
