// Common interface for mobile-host movement models.
//
// The simulator drives every mobile host through this interface once per
// time step. Two models are provided, matching the paper's two modes:
//   * free movement mode  (WaypointMover)  — obstacle-free random waypoint
//     with a fixed velocity, and
//   * road network mode   (RoadMover)      — random waypoint over the road
//     graph, with the travel speed governed by each segment's speed limit.
#pragma once

#include "src/common/rng.h"
#include "src/geom/vec2.h"

namespace senn::mobility {

/// Abstract movement model. Advance() moves simulated time forward; the
/// position is piecewise-linear between steps.
class Mover {
 public:
  virtual ~Mover() = default;

  /// Advances the model by dt seconds.
  virtual void Advance(double dt, Rng* rng) = 0;

  /// Current Cartesian position (meters).
  virtual geom::Vec2 position() const = 0;

  /// Current speed in meters per second (0 while pausing).
  virtual double current_speed() const = 0;
};

/// A mover that never moves (the paper's M_Percentage parameter leaves a
/// fraction of hosts stationary).
class StationaryMover final : public Mover {
 public:
  explicit StationaryMover(geom::Vec2 position) : position_(position) {}
  void Advance(double /*dt*/, Rng* /*rng*/) override {}
  geom::Vec2 position() const override { return position_; }
  double current_speed() const override { return 0.0; }

 private:
  geom::Vec2 position_;
};

}  // namespace senn::mobility
