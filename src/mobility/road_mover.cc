#include "src/mobility/road_mover.h"

#include <algorithm>
#include <cmath>

namespace senn::mobility {

using roadnet::EdgeId;
using roadnet::kInvalidEdge;
using roadnet::kInvalidNode;
using roadnet::NodeId;

RoadMover::RoadMover(const RoadMoverConfig& config, const roadnet::Graph* graph,
                     roadnet::Router* router, NodeId start, Rng* rng)
    : config_(config), graph_(graph), router_(router) {
  position_ = graph_->node_position(start);
  route_ = {start};
  leg_ = 0;
  PlanTrip(rng);
}

void RoadMover::PlanTrip(Rng* rng) {
  NodeId here = route_.empty() ? kInvalidNode : route_.back();
  if (here == kInvalidNode) return;
  geom::Vec2 here_pos = graph_->node_position(here);
  NodeId best = kInvalidNode;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int i = 0; i < std::max(1, config_.destination_samples); ++i) {
    NodeId cand = static_cast<NodeId>(rng->NextIndex(graph_->node_count()));
    if (cand == here) continue;
    double d = geom::Dist(graph_->node_position(cand), here_pos);
    if (config_.max_trip_m > 0.0 && d <= config_.max_trip_m) {
      best = cand;
      break;  // any candidate within the preferred radius will do
    }
    if (d < best_dist) {
      best_dist = d;
      best = cand;
    }
  }
  if (best == kInvalidNode) {  // single-node graph: stay put
    route_ = {here};
    leg_ = 0;
    leg_edge_ = kInvalidEdge;
    return;
  }
  std::vector<NodeId> path = router_->FindPath(here, best);
  if (path.size() < 2) {  // unreachable (should not happen: graph connected)
    route_ = {here};
    leg_ = 0;
    leg_edge_ = kInvalidEdge;
    return;
  }
  route_ = std::move(path);
  leg_ = 0;
  BeginLeg();
}

EdgeId RoadMover::ConnectingEdge(NodeId a, NodeId b) const {
  EdgeId best = kInvalidEdge;
  double best_len = std::numeric_limits<double>::infinity();
  for (EdgeId eid : graph_->incident_edges(a)) {
    const roadnet::Edge& e = graph_->edge(eid);
    if (e.OtherEnd(a) == b && e.length < best_len) {
      best = eid;
      best_len = e.length;
    }
  }
  return best;
}

void RoadMover::BeginLeg() {
  leg_progress_m_ = 0.0;
  if (leg_ + 1 >= route_.size()) {
    leg_edge_ = kInvalidEdge;
    return;
  }
  leg_edge_ = ConnectingEdge(route_[leg_], route_[leg_ + 1]);
}

roadnet::RoadClass RoadMover::current_road_class() const {
  if (leg_edge_ == kInvalidEdge) return roadnet::RoadClass::kResidential;
  return graph_->edge(leg_edge_).road_class;
}

double RoadMover::current_speed() const {
  if (pause_left_s_ > 0.0 || leg_edge_ == kInvalidEdge) return 0.0;
  double limit = roadnet::SpeedLimitMps(graph_->edge(leg_edge_).road_class);
  if (config_.speed_model == SpeedModel::kCappedByNominal) {
    return std::min(config_.nominal_speed_mps, limit);
  }
  // kScaledLimits: M_Velocity is the residential-road speed; other classes
  // scale by their limit ratio.
  return limit * config_.nominal_speed_mps /
         roadnet::SpeedLimitMps(roadnet::RoadClass::kResidential);
}

void RoadMover::Advance(double dt, Rng* rng) {
  while (dt > 1e-12) {
    if (pause_left_s_ > 0.0) {
      double pause = std::min(pause_left_s_, dt);
      pause_left_s_ -= pause;
      dt -= pause;
      if (pause_left_s_ <= 0.0) PlanTrip(rng);
      continue;
    }
    if (leg_ + 1 >= route_.size() || leg_edge_ == kInvalidEdge) {
      // Arrived (or stranded): pause, then plan the next trip.
      pause_left_s_ = rng->Exponential(std::max(config_.mean_pause_s, 1e-9));
      continue;
    }
    const roadnet::Edge& e = graph_->edge(leg_edge_);
    double speed = current_speed();
    if (speed <= 0.0) return;  // defensive: zero nominal velocity
    double remaining_m = e.length - leg_progress_m_;
    double step_m = speed * dt;
    geom::Vec2 from = graph_->node_position(route_[leg_]);
    geom::Vec2 to = graph_->node_position(route_[leg_ + 1]);
    if (step_m < remaining_m) {
      leg_progress_m_ += step_m;
      double t = leg_progress_m_ / e.length;
      position_ = from + (to - from) * t;
      return;
    }
    // Finish this leg and roll leftover time into the next one.
    dt -= remaining_m / speed;
    position_ = to;
    ++leg_;
    BeginLeg();
  }
}

}  // namespace senn::mobility
