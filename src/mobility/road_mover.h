// Road network mobility: random waypoint over the road graph. A host picks a
// random destination node, routes to it along the network (A*), and travels
// each segment at that segment's speed limit (capped by the host's own
// nominal velocity), pausing at each destination — the paper's road network
// mode, where "travel speed s is determined by the speed limit on the
// corresponding road segment".
#pragma once

#include <vector>

#include "src/mobility/mover.h"
#include "src/roadnet/graph.h"
#include "src/roadnet/shortest_path.h"

namespace senn::mobility {

/// How the nominal M_Velocity interacts with per-segment speed limits.
enum class SpeedModel {
  /// Speed on a segment = limit(class) * nominal / 30 mph: M_Velocity is the
  /// residential-road speed and faster road classes scale proportionally —
  /// the paper's "travel speed is determined by the speed limit on the
  /// corresponding road segment", with M_Velocity as the sweep knob.
  kScaledLimits = 0,
  /// Speed = min(nominal, limit(class)): hosts never exceed their nominal
  /// velocity even on highways.
  kCappedByNominal = 1,
};

/// Configuration of the road-constrained random waypoint model.
struct RoadMoverConfig {
  /// Nominal host velocity (meters per second). This is the paper's
  /// M_Velocity knob; see SpeedModel for how it maps to segment speeds.
  double nominal_speed_mps = 13.4112;  // 30 mph
  /// Speed-limit interaction model.
  SpeedModel speed_model = SpeedModel::kScaledLimits;
  /// Mean pause duration at each waypoint (seconds, exponential).
  double mean_pause_s = 30.0;
  /// Preferred maximum trip length (meters, Euclidean). Trips are sampled
  /// within this radius when possible, bounding route-planning cost on
  /// county-scale graphs. <= 0 means unbounded.
  double max_trip_m = 8000.0;
  /// Random destination candidates sampled per trip.
  int destination_samples = 12;
};

/// A mover constrained to the road network. The graph and router are shared
/// across all hosts and must outlive the mover.
class RoadMover final : public Mover {
 public:
  RoadMover(const RoadMoverConfig& config, const roadnet::Graph* graph,
            roadnet::Router* router, roadnet::NodeId start, Rng* rng);

  void Advance(double dt, Rng* rng) override;
  geom::Vec2 position() const override { return position_; }
  double current_speed() const override;

  /// Node the host is currently heading to (kInvalidNode while pausing).
  roadnet::NodeId current_destination() const {
    return route_.empty() ? roadnet::kInvalidNode : route_.back();
  }
  /// The road class of the segment being traversed (test hook); returns
  /// kResidential while pausing.
  roadnet::RoadClass current_road_class() const;

 private:
  void PlanTrip(Rng* rng);
  /// Finds the edge joining two adjacent route nodes (shortest if parallel).
  roadnet::EdgeId ConnectingEdge(roadnet::NodeId a, roadnet::NodeId b) const;
  void BeginLeg();

  RoadMoverConfig config_;
  const roadnet::Graph* graph_;
  roadnet::Router* router_;
  std::vector<roadnet::NodeId> route_;  // remaining nodes, route_[0] = leg start
  size_t leg_ = 0;                      // index of the current leg's start node
  roadnet::EdgeId leg_edge_ = roadnet::kInvalidEdge;
  double leg_progress_m_ = 0.0;
  geom::Vec2 position_;
  double pause_left_s_ = 0.0;
};

}  // namespace senn::mobility
