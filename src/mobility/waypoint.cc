#include "src/mobility/waypoint.h"

#include <algorithm>

namespace senn::mobility {

WaypointMover::WaypointMover(const WaypointConfig& config, geom::Vec2 start, Rng* rng)
    : config_(config), position_(start) {
  PickDestination(rng);
}

void WaypointMover::PickDestination(Rng* rng) {
  destination_ = {rng->Uniform(0.0, config_.area_side_m),
                  rng->Uniform(0.0, config_.area_side_m)};
}

void WaypointMover::Advance(double dt, Rng* rng) {
  while (dt > 0.0) {
    if (pause_left_s_ > 0.0) {
      double pause = std::min(pause_left_s_, dt);
      pause_left_s_ -= pause;
      dt -= pause;
      if (pause_left_s_ <= 0.0) PickDestination(rng);
      continue;
    }
    double remaining = geom::Dist(position_, destination_);
    double step = config_.speed_mps * dt;
    if (step < remaining) {
      position_ = position_ + (destination_ - position_).Normalized() * step;
      return;
    }
    // Arrive and start the pause with the leftover time budget.
    position_ = destination_;
    dt -= config_.speed_mps > 0.0 ? remaining / config_.speed_mps : dt;
    pause_left_s_ = rng->Exponential(std::max(config_.mean_pause_s, 1e-9));
  }
}

}  // namespace senn::mobility
