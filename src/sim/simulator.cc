#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>

namespace senn::sim {

Simulator::Simulator(SimulationConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  // Policy 2: server queries always request cache_size POIs.
  config_.senn.server_request_k = config_.params.cache_size;
  // Continuous mode advances one long-lived query per host on the
  // sequential in-process path with a fixed k (simulator.h); senn_sim
  // rejects conflicting flags before construction.
  assert(!(config_.continuous && config_.server_batch > 1) &&
         "continuous mode requires server_batch == 1");
  assert(!(config_.continuous && config_.server_transport == ServerTransport::kLoopback) &&
         "continuous mode requires the in-process transport");
  assert(!(config_.continuous && config_.randomize_k) &&
         "continuous queries keep k fixed for their lifetime");
  BuildWorld();
}

Simulator::~Simulator() = default;

void Simulator::BuildWorld() {
  const ParameterSet& p = config_.params;
  const double side = p.AreaSideMeters();

  // POIs uniformly distributed over the area (gas stations). Every
  // subsystem draws from its own named stream (see the RNG stream layout in
  // simulator.h) so the world is a pure function of the seed, independent of
  // build order or thread schedule.
  Rng poi_rng = rng_.Stream("world/poi");
  pois_.reserve(static_cast<size_t>(p.poi_number));
  for (int i = 0; i < p.poi_number; ++i) {
    pois_.push_back({i, {poi_rng.Uniform(0, side), poi_rng.Uniform(0, side)}});
  }
  server_ = std::make_unique<core::SpatialServer>(
      pois_, core::SpatialServer::DefaultTreeOptions(), config_.page_count_mode,
      config_.paged_storage ? std::optional<storage::BufferPoolOptions>(config_.buffer)
                            : std::nullopt);
  senn_ = std::make_unique<core::SennProcessor>(server_.get(), config_.senn);
  // Co-location tiles of Tx_Range: hosts that can hear each other land in
  // the same tile, which is exactly the population whose search regions
  // overlap the same R*-tree pages.
  core::BatchOptions batch;
  batch.cluster_cell_m = std::max(p.tx_range_m, 50.0);
  batch.max_group = config_.server_batch;
  if (config_.server_transport == ServerTransport::kLoopback) {
    // Every server contact crosses the full rpc wire path. The QueryService
    // carries the same batch options the in-process BatchServer would get
    // (max_group = 1 when batching is off, which disables sharing and makes
    // each request a verbatim QueryKnn).
    rpc::ServiceOptions service;
    service.batch = batch;
    rpc_service_ = std::make_unique<rpc::QueryService>(server_.get(), service);
    rpc_transport_ = std::make_unique<rpc::LoopbackTransport>(rpc_service_.get());
    rpc_client_ = std::make_unique<rpc::Client>(rpc_transport_.get());
  } else if (config_.server_batch > 1) {
    batch_server_ = std::make_unique<core::BatchServer>(server_.get(), batch);
  }

  // Road network (road mode only).
  if (config_.mode == MovementMode::kRoadNetwork) {
    roadnet::RoadNetworkConfig road;
    road.area_side_m = side;
    if (config_.road_block_spacing_m > 0) {
      road.block_spacing_m = config_.road_block_spacing_m;
    } else {
      // Denser street grid for small areas, coarser for county scale so the
      // graph stays tractable; both preserve class structure.
      road.block_spacing_m = side <= 10000.0 ? 200.0 : 400.0;
    }
    road.diagonal_highways = side <= 10000.0 ? 1 : 4;
    Rng road_rng = rng_.Stream("world/road");
    graph_ = std::make_unique<roadnet::Graph>(GenerateRoadNetwork(road, &road_rng));
    router_ = std::make_unique<roadnet::Router>(graph_.get());
  }

  // Mobile hosts. Trips span the whole area by default (classic random
  // waypoint); max_trip_m can cap them to bound route-planning cost.
  double max_trip = config_.max_trip_m > 0 ? config_.max_trip_m : side;
  // Duty-cycle mode: every host moves, pausing so that the moving fraction
  // of time equals M_Percentage. The mean trip duration is estimated from
  // the trip sampling scheme (mean distance between uniform points in a
  // square is 0.5214 * side, capped by the trip radius whose mean uniform
  // distance is 2R/3; network paths run ~25% longer than Euclidean).
  double mean_pause = config_.mean_pause_s;
  if (mean_pause <= 0.0) {
    double trip_len = config_.mode == MovementMode::kRoadNetwork
                          ? std::min(max_trip * (2.0 / 3.0), 0.5214 * side) * 1.25
                          : 0.5214 * side;
    double trip_duration = trip_len / std::max(p.VelocityMps(), 0.1);
    double m = std::clamp(p.move_percentage, 0.05, 1.0);
    mean_pause = trip_duration * (1.0 - m) / m;
  }
  hosts_.reserve(static_cast<size_t>(p.mh_number));
  grid_ = std::make_unique<NeighborGrid>(side, std::max(p.tx_range_m, 50.0));
  for (int i = 0; i < p.mh_number; ++i) {
    // One stream per host: its placement, M_Percentage draw, and every later
    // movement decision depend only on (seed, host id).
    Rng host_rng = rng_.Stream("host", static_cast<uint64_t>(i));
    bool moving =
        config_.m_percentage_mode == MPercentageMode::kDutyCycle
            ? p.move_percentage > 0.0
            : host_rng.Bernoulli(p.move_percentage);
    std::unique_ptr<mobility::Mover> mover;
    if (!moving) {
      // senn-lint: allow(L7-rng-stream): sound outcome-gated draw —
      // host_rng is private to this host and both the Bernoulli above and
      // every branch below consume the SAME per-host stream, so any replica
      // that re-derives (seed, host id) takes the identical branch and
      // stays in sync. The hazard the rule targets is a shared stream
      // gated on a per-replica outcome; this stream is not shared.
      geom::Vec2 start{host_rng.Uniform(0, side), host_rng.Uniform(0, side)};
      mover = std::make_unique<mobility::StationaryMover>(start);
    } else if (config_.mode == MovementMode::kRoadNetwork) {
      roadnet::NodeId start =
          static_cast<roadnet::NodeId>(host_rng.NextIndex(graph_->node_count()));
      mobility::RoadMoverConfig mcfg;
      mcfg.nominal_speed_mps = p.VelocityMps();
      mcfg.mean_pause_s = mean_pause;
      mcfg.max_trip_m = max_trip;
      mover = std::make_unique<mobility::RoadMover>(mcfg, graph_.get(), router_.get(),
                                                    start, &host_rng);
    } else {
      mobility::WaypointConfig wcfg;
      wcfg.area_side_m = side;
      wcfg.speed_mps = p.VelocityMps();
      wcfg.mean_pause_s = mean_pause;
      geom::Vec2 start{host_rng.Uniform(0, side), host_rng.Uniform(0, side)};
      mover = std::make_unique<mobility::WaypointMover>(wcfg, start, &host_rng);
    }
    auto host = std::make_unique<MobileHost>(static_cast<int32_t>(i), std::move(mover),
                                             p.cache_size, moving, host_rng);
    grid_->Insert(host->id(), host->position());
    hosts_.push_back(std::move(host));
  }

  if (config_.warm_start) WarmStartCaches();

  // Continuous mode: one long-lived query per host, seeded from whatever the
  // warm start put in its cache (an exact server/SENN prefix, so priming —
  // including the INSQ rival fetch — is sound). Priming page traffic models
  // state accumulated before the measured window and is not charged.
  if (config_.continuous) {
    core::ContinuousOptions copts;
    copts.safe_region = config_.safe_region;
    for (std::unique_ptr<MobileHost>& host : hosts_) {
      auto cont = std::make_unique<core::ContinuousKnn>(senn_.get(), p.k_nn, copts);
      const core::CachedResult* cached = host->cache().Get();
      if (cached != nullptr && !cached->Empty()) cont->Prime(*cached);
      host->AttachContinuous(std::move(cont));
    }
  }
}

void Simulator::WarmStartCaches() {
  // Prime every host's cache to approximate the steady state a long run
  // converges to, in two sweeps:
  //  1. every host gets the exact server answer of a query issued at a
  //     synthetic past location (its position displaced by a draw of the
  //     time since its last query times its travel speed);
  //  2. each host's *last query* is then replayed through the real SENN
  //     pipeline against the sweep-1 world, in random order, so the cache
  //     SIZE distribution matches steady state too: hosts whose last query
  //     was peer-answered keep only the (thin) certain prefix, exactly as
  //     cache policy 1 prescribes, while server-answered hosts keep C_Size
  //     POIs (policy 2).
  const ParameterSet& p = config_.params;
  const double side = p.AreaSideMeters();
  // Mean time since a host's last query: hosts / system query rate.
  const double mean_gap_s =
      p.queries_per_minute > 0
          ? static_cast<double>(p.mh_number) / p.queries_per_minute * 60.0
          : 900.0;
  // Effective travel speed: nominal velocity discounted by pause time.
  const double travel_speed = p.VelocityMps() * std::clamp(p.move_percentage, 0.1, 1.0);
  std::vector<geom::Vec2> warm_qloc(hosts_.size());
  for (std::unique_ptr<MobileHost>& host : hosts_) {
    geom::Vec2 qloc = host->position();
    if (host->moving()) {
      double gap = host->rng().Exponential(mean_gap_s);
      double dist = std::min(gap * travel_speed, side);
      double angle = host->rng().Uniform(0, 2.0 * M_PI);
      qloc.x = std::clamp(qloc.x + dist * std::cos(angle), 0.0, side);
      qloc.y = std::clamp(qloc.y + dist * std::sin(angle), 0.0, side);
    }
    warm_qloc[static_cast<size_t>(host->id())] = qloc;
    core::ServerReply reply = server_->QueryKnn(qloc, p.cache_size);
    core::CachedResult result;
    result.query_location = qloc;
    result.neighbors = std::move(reply.neighbors);
    result.timestamp = 0.0;
    host->cache().Store(std::move(result));
  }
  // Sweep 2: replay, in random order. Peers are gathered around the warm
  // query location with a grid over the warm locations.
  NeighborGrid warm_grid(side, std::max(p.tx_range_m, 50.0));
  for (const std::unique_ptr<MobileHost>& host : hosts_) {
    // A peer shares what it cached *at its current position*; during the
    // replayed (past) query the provider population is approximated by the
    // hosts' current positions.
    warm_grid.Insert(host->id(), host->position());
  }
  std::vector<int32_t> order(hosts_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
  Rng warm_rng = rng_.Stream("warmstart");
  warm_rng.Shuffle(&order);
  std::vector<int32_t> ids;
  std::vector<const core::CachedResult*> caches;
  for (int32_t id : order) {
    MobileHost* host = hosts_[static_cast<size_t>(id)].get();
    geom::Vec2 qloc = warm_qloc[static_cast<size_t>(id)];
    ids.clear();
    warm_grid.QueryRadius(qloc, p.tx_range_m, &ids);
    caches.clear();
    for (int32_t peer : ids) {
      if (peer == id) continue;  // replaying this host's own query
      const core::CachedResult* cached = hosts_[static_cast<size_t>(peer)]->cache().Get();
      if (cached != nullptr && !cached->Empty()) caches.push_back(cached);
    }
    int k = config_.randomize_k
                ? static_cast<int>(host->rng().UniformInt(config_.k_min, config_.k_max))
                : p.k_nn;
    core::SennOutcome outcome = senn_->Execute(qloc, k, caches);
    if (outcome.certain_prefix.empty()) continue;
    core::CachedResult result;
    result.query_location = qloc;
    result.neighbors = outcome.certain_prefix;
    result.timestamp = 0.0;
    host->cache().Store(std::move(result));
  }
  server_->ResetStats();  // priming traffic is not part of the experiment
}

core::SennOutcome Simulator::ExecuteQuery(MobileHost* host, double now, int k) {
  PendingQuery pq;
  PrepareQuery(host, now, k, &pq);
  if (pq.pending.needs_server) {
    obs::QueryTracer* tracer = pq.tracer.has_value() ? &*pq.tracer : nullptr;
    obs::ScopedSpan server_span(tracer, obs::Phase::kServerEinn);
    if (rpc_client_ != nullptr) {
      // Loopback rpc: a blocking call is a dispatch group of one — a
      // verbatim QueryKnn on the far side, bitwise reply included.
      rpc_transport_->SetDispatchObservers(tracer, nullptr);
      const core::ServerReply reply = KnnOverRpc(pq.pending);
      rpc_transport_->SetDispatchObservers(nullptr, nullptr);
      senn_->Finish(&pq.pending, reply, &server_span);
    } else {
      const core::ServerReply reply =
          server_->QueryKnn(pq.pending.q, pq.pending.heap_capacity, pq.pending.outcome.bounds,
                            static_cast<int>(pq.pending.certain.size()), tracer);
      senn_->Finish(&pq.pending, reply, &server_span);
    }
  }
  FinalizeQuery(&pq);
  return std::move(pq.pending.outcome);
}

core::ServerReply Simulator::KnnOverRpc(const core::PendingSenn& pending) {
  rpc::KnnRequest request;
  request.q = pending.q;
  request.k = pending.heap_capacity;
  request.already_certified = static_cast<int32_t>(pending.certain.size());
  request.bounds = pending.outcome.bounds;
  Result<core::ServerReply> reply = rpc_client_->Knn(request);
  // The engine only emits valid requests over a transport that cannot drop
  // bytes, so a failure here is a wiring bug, not an input problem.
  assert(reply.ok() && "loopback rpc rejected an engine-generated request");
  if (!reply.ok()) return core::ServerReply{};
  return std::move(*reply);
}

void Simulator::PrepareQuery(MobileHost* host, double now, int k, PendingQuery* out) {
  const uint64_t qid = query_seq_++;
  out->host = host;
  out->qid = qid;
  out->now = now;
  out->k = k;
  // Structured tracing: the tracer exists only for sampled queries; a null
  // pointer keeps every span site a single pointer compare. Timestamps are
  // sim time in microseconds — never wall clock — so traces are
  // byte-reproducible regardless of thread count (see src/obs/trace.h).
  if (span_sink_ != nullptr && qid % span_sample_ == 0) {
    out->tracer.emplace(span_sink_, qid, static_cast<uint64_t>(std::llround(now * 1e6)));
  }
  obs::QueryTracer* tracer = out->tracer.has_value() ? &*out->tracer : nullptr;

  geom::Vec2 q = host->position();
  out->q = q;
  Rng net_rng = rng_.Stream("net", qid);
  net::ExchangeResult ex;
  {
    obs::ScopedSpan harvest(tracer, obs::Phase::kPeerHarvest);
    neighbor_ids_.clear();
    grid_->QueryRadius(q, config_.params.tx_range_m, &neighbor_ids_);

    // Radio candidates: reachable peers with non-empty caches, in grid scan
    // order. The querying host's own cache participates ("a mobile host will
    // first attempt to answer each spatial query from its local cache") but
    // never crosses the air, so it is not an exchange candidate.
    candidates_.clear();
    candidate_caches_.clear();
    full_caches_.clear();
    int self_slot = -1;
    for (int32_t id : neighbor_ids_) {
      const core::CachedResult* cached = hosts_[static_cast<size_t>(id)]->cache().Get();
      if (cached == nullptr || cached->Empty()) continue;
      full_caches_.push_back(cached);
      if (id == host->id()) {
        self_slot = static_cast<int>(full_caches_.size()) - 1;
        continue;
      }
      candidates_.push_back({id, cached->neighbors.size()});
      candidate_caches_.push_back(cached);
    }

    // Run the wireless exchange: broadcast REQ, collect replies until the
    // deadline, rebroadcast after silent rounds. Channel draws come from the
    // query's own named stream, so the run stays a pure function of the seed.
    {
      obs::ScopedSpan exchange(tracer, obs::Phase::kNetExchange);
      ex = net::RunExchange(config_.channel, candidates_, &net_rng);
      exchange.AddArg("candidates", static_cast<uint64_t>(candidates_.size()));
      exchange.AddArg("arrived", static_cast<uint64_t>(ex.arrived.size()));
      exchange.AddArg("retries", static_cast<uint64_t>(ex.retries));
      exchange.AddArg("lost", ex.transmissions_lost);
    }
    arrived_.assign(candidates_.size(), 0);
    for (int idx : ex.arrived) arrived_[static_cast<size_t>(idx)] = 1;

    // Assemble the harvested peer set, preserving grid scan order (what the
    // pre-networking simulator passed; SENN re-sorts by Heuristic 3.3). A
    // partial harvest is a normal case — SENN verifies with what arrived.
    peer_caches_.clear();
    size_t cursor = 0;
    for (size_t slot = 0; slot < full_caches_.size(); ++slot) {
      if (static_cast<int>(slot) == self_slot) {
        peer_caches_.push_back(full_caches_[slot]);
        continue;
      }
      if (arrived_[cursor++]) peer_caches_.push_back(full_caches_[slot]);
    }
    harvest.AddArg("reachable", static_cast<uint64_t>(full_caches_.size()));
    harvest.AddArg("harvested", static_cast<uint64_t>(peer_caches_.size()));
  }

  out->p2p_messages = ex.messages_sent;
  out->p2p_bytes = ex.bytes_sent;
  out->retries = ex.retries;
  out->transmissions_lost = ex.transmissions_lost;
  out->replies_missed = candidates_.size() - ex.arrived.size();

  out->pending = senn_->Prepare(q, k, peer_caches_, tracer);
  const core::SennOutcome& outcome = out->pending.outcome;
  out->latency_s = ex.elapsed_s;
  // The RTT is drawn here even when the reply is deferred: the "net" stream
  // must consume the same draws in the same order whether the contact runs
  // now (sequential) or at the step's batched drain.
  if (outcome.resolution == core::Resolution::kServer) {
    out->latency_s += net::DrawServerRtt(config_.channel, &net_rng);
  }
  // A server contact is loss-induced when the complete peer set (the ideal
  // channel's harvest) would have certified the answer locally. Evaluated
  // while the full_caches_ scratch is still this query's.
  out->loss_induced = outcome.resolution == core::Resolution::kServer &&
                      out->replies_missed > 0 && senn_->ResolvesLocally(q, k, full_caches_);
}

void Simulator::FinalizeQuery(PendingQuery* pq) {
  last_p2p_messages_ = pq->p2p_messages;
  last_p2p_bytes_ = pq->p2p_bytes;
  last_latency_s_ = pq->latency_s;
  last_retries_ = pq->retries;
  last_transmissions_lost_ = pq->transmissions_lost;
  last_replies_missed_ = pq->replies_missed;
  last_loss_induced_fallback_ = pq->loss_induced;
  // Cache policy 1: keep the certain neighbors of the most recent query.
  const core::SennOutcome& outcome = pq->pending.outcome;
  if (!outcome.certain_prefix.empty()) {
    core::CachedResult result;
    result.query_location = pq->q;
    result.neighbors = outcome.certain_prefix;
    result.timestamp = pq->now;
    pq->host->cache().Store(std::move(result));
  }
}

void Simulator::DrainBatch(SimulationResult* result) {
  if (deferred_.empty()) return;
  // One drain-scoped tracer (named by the first deferred query) carries the
  // per-cluster server_batch_einn spans; per-query tracers already closed
  // their client-side spans in PrepareQuery.
  std::optional<obs::QueryTracer> drain_tracer;
  if (span_sink_ != nullptr) {
    drain_tracer.emplace(span_sink_, deferred_.front().qid,
                         static_cast<uint64_t>(std::llround(deferred_.front().now * 1e6)));
  }
  obs::QueryTracer* tracer = drain_tracer.has_value() ? &*drain_tracer : nullptr;
  const core::BatchStats before =
      rpc_service_ != nullptr ? rpc_service_->batch_stats() : batch_server_->stats();
  std::vector<size_t> cluster_sizes;
  std::vector<core::ServerReply> replies;
  replies.reserve(deferred_.size());
  if (rpc_client_ != nullptr) {
    // Loopback rpc: pipeline the whole crop, then wait in send order. The
    // burst reaches the QueryService as ONE dispatch group, answered by the
    // same single AnswerBatch call the in-process path makes.
    rpc_transport_->SetDispatchObservers(tracer, &cluster_sizes);
    std::vector<uint64_t> ids;
    ids.reserve(deferred_.size());
    for (const PendingQuery& pq : deferred_) {
      rpc::KnnRequest request;
      request.q = pq.pending.q;
      request.k = pq.pending.heap_capacity;
      request.already_certified = static_cast<int32_t>(pq.pending.certain.size());
      request.bounds = pq.pending.outcome.bounds;
      ids.push_back(rpc_client_->SendKnn(request));
    }
    for (uint64_t id : ids) {
      Result<core::ServerReply> reply = rpc_client_->Wait(id);
      assert(reply.ok() && "loopback rpc rejected an engine-generated request");
      replies.push_back(reply.ok() ? std::move(*reply) : core::ServerReply{});
    }
    rpc_transport_->SetDispatchObservers(nullptr, nullptr);
  } else {
    std::vector<core::BatchQuery> queries;
    queries.reserve(deferred_.size());
    for (const PendingQuery& pq : deferred_) {
      queries.push_back({pq.pending.q, pq.pending.heap_capacity, pq.pending.outcome.bounds,
                         static_cast<int>(pq.pending.certain.size())});
    }
    replies = batch_server_->AnswerBatch(queries, tracer, nullptr, &cluster_sizes);
  }
  for (size_t i = 0; i < deferred_.size(); ++i) {
    PendingQuery& pq = deferred_[i];
    senn_->Finish(&pq.pending, replies[i], nullptr);
    FinalizeQuery(&pq);
    AccountQuery(pq.pending.outcome, pq.host, pq.now, pq.k, pq.measuring, result);
  }
  // All of a drain's queries launched in the same step, so one flag covers
  // the batch-path counters too.
  if (deferred_.front().measuring) {
    const core::BatchStats after =
        rpc_service_ != nullptr ? rpc_service_->batch_stats() : batch_server_->stats();
    result->batch_clusters += after.clusters - before.clusters;
    result->batch_batched_queries += after.batched_queries - before.batched_queries;
    for (size_t size : cluster_sizes) {
      result->batch_cluster_size.Add(static_cast<double>(size));
    }
    result->batch_shared_miss_pages +=
        after.shared_traversal.shared_misses - before.shared_traversal.shared_misses;
    result->batch_private_miss_pages +=
        after.shared_traversal.private_misses - before.shared_traversal.private_misses;
  }
  deferred_.clear();
}

void Simulator::AccountQuery(const core::SennOutcome& outcome, MobileHost* host,
                             double now, int k, bool measuring,
                             SimulationResult* result) {
  if (trace_ != nullptr) {
    QueryEvent event;
    event.time_s = now;
    event.host_id = host->id();
    event.k = k;
    event.resolution = outcome.resolution;
    event.peers_in_range = outcome.peers_consulted;
    event.certain_count = static_cast<int>(outcome.certain_prefix.size());
    event.einn_pages = outcome.einn_accesses.total();
    event.inn_pages = outcome.inn_accesses.total();
    event.measured = measuring;
    trace_->Record(event);
  }
  if (!measuring) return;
  ++result->measured_queries;
  result->peers_in_range.Add(static_cast<double>(outcome.peers_consulted));
  result->p2p_messages_per_query.Add(last_p2p_messages_);
  result->p2p_bytes_per_query.Add(last_p2p_bytes_);
  result->query_latency_s.Add(last_latency_s_);
  result->latency_p50.Add(last_latency_s_);
  result->latency_p95.Add(last_latency_s_);
  result->latency_p99.Add(last_latency_s_);
  result->retries_per_query.Add(static_cast<double>(last_retries_));
  result->transmissions_lost += last_transmissions_lost_;
  result->replies_missed += last_replies_missed_;
  if (last_loss_induced_fallback_) ++result->loss_induced_server_fallbacks;
  switch (outcome.resolution) {
    case core::Resolution::kSinglePeer:
      ++result->by_single_peer;
      break;
    case core::Resolution::kMultiPeer:
      ++result->by_multi_peer;
      break;
    case core::Resolution::kUncertain:
      // Counted with the peer-answered fraction (no server contact);
      // disabled in the default configuration.
      ++result->by_multi_peer;
      break;
    case core::Resolution::kServer:
      ++result->by_server;
      result->einn_pages.Add(static_cast<double>(outcome.einn_accesses.total()));
      result->inn_pages.Add(static_cast<double>(outcome.inn_accesses.total()));
      if (config_.paged_storage) {
        // Physical (buffer-pool miss) cost of the answering run. The
        // logical count above is pool-independent; only this differs
        // across pool sizes and policies.
        const uint64_t logical = outcome.einn_accesses.total();
        const uint64_t misses = outcome.einn_accesses.misses();
        result->einn_miss_pages.Add(static_cast<double>(misses));
        result->buffer.AddMisses(misses);
        result->buffer.AddHits(logical - misses);
      }
      break;
  }
}

void Simulator::ExecuteContinuousStep(MobileHost* host, double now, bool measuring,
                                      SimulationResult* result) {
  (void)now;
  core::ContinuousKnn* cont = host->continuous();
  assert(cont != nullptr && "continuous mode attaches a ContinuousKnn per host");
  const geom::Vec2 q = host->position();
  const uint64_t regions_before = cont->stats().regions_built;

  core::StepResult step;
  double p2p_messages = 0.0;
  double p2p_bytes = 0.0;
  double latency_s = 0.0;
  int retries = 0;
  uint64_t transmissions_lost = 0;
  uint64_t replies_missed = 0;

  if (std::optional<core::StepResult> local = cont->TryLocal(q)) {
    // Zero-communication step: nothing crosses the air and no channel draws
    // happen ("net" streams name only communicating launches, so skipping
    // the qid here keeps the run a pure function of the config).
    step = *std::move(local);
  } else {
    const uint64_t qid = query_seq_++;
    Rng net_rng = rng_.Stream("net", qid);
    neighbor_ids_.clear();
    grid_->QueryRadius(q, config_.params.tx_range_m, &neighbor_ids_);
    // Radio candidates: reachable peers with a non-empty rolling cache (the
    // continuous cache — the snapshot NnCache is stale past the warm start
    // here). A peer's safe region rides in the same reply as its cached
    // POIs: the region members are a prefix of them, so reply sizing is
    // unchanged. The querying host's own state never crosses the air; the
    // ContinuousKnn consults it internally.
    candidates_.clear();
    candidate_caches_.clear();
    peer_regions_.clear();
    for (int32_t id : neighbor_ids_) {
      if (id == host->id()) continue;
      const MobileHost* peer = hosts_[static_cast<size_t>(id)].get();
      const core::ContinuousKnn* peer_cont = peer->continuous();
      const core::CachedResult& cached = peer_cont->shared_cache();
      if (cached.Empty()) continue;
      candidates_.push_back({id, cached.neighbors.size()});
      candidate_caches_.push_back(&cached);
      peer_regions_.push_back(&peer_cont->safe_region());
    }
    net::ExchangeResult ex = net::RunExchange(config_.channel, candidates_, &net_rng);
    arrived_.assign(candidates_.size(), 0);
    for (int idx : ex.arrived) arrived_[static_cast<size_t>(idx)] = 1;
    // Keep caches and regions of the peers whose reply made a deadline,
    // compacting the region list in place to stay aligned with the caches.
    peer_caches_.clear();
    size_t kept = 0;
    for (size_t slot = 0; slot < candidates_.size(); ++slot) {
      if (arrived_[slot] == 0) continue;
      peer_caches_.push_back(candidate_caches_[slot]);
      peer_regions_[kept++] = peer_regions_[slot];
    }
    peer_regions_.resize(kept);

    step = cont->ResolveWithPeers(q, peer_caches_, peer_regions_);
    p2p_messages = ex.messages_sent;
    p2p_bytes = ex.bytes_sent;
    retries = ex.retries;
    transmissions_lost = ex.transmissions_lost;
    replies_missed = candidates_.size() - ex.arrived.size();
    latency_s = ex.elapsed_s;
    if (step.source == core::StepSource::kServer) {
      latency_s += net::DrawServerRtt(config_.channel, &net_rng);
    }
  }

  if (!measuring) return;
  ++result->measured_queries;
  ++result->continuous_steps;
  result->peers_in_range.Add(static_cast<double>(step.peers_consulted));
  result->p2p_messages_per_query.Add(p2p_messages);
  result->p2p_bytes_per_query.Add(p2p_bytes);
  result->query_latency_s.Add(latency_s);
  result->latency_p50.Add(latency_s);
  result->latency_p95.Add(latency_s);
  result->latency_p99.Add(latency_s);
  result->retries_per_query.Add(static_cast<double>(retries));
  result->transmissions_lost += transmissions_lost;
  result->replies_missed += replies_missed;
  switch (step.source) {
    case core::StepSource::kSafeRegion:
      ++result->continuous_safe_region_steps;
      break;
    case core::StepSource::kPeerRegion:
      ++result->continuous_peer_region_steps;
      break;
    case core::StepSource::kOwnCache:
      ++result->continuous_own_cache_steps;
      break;
    case core::StepSource::kSinglePeer:
      ++result->continuous_peer_steps;
      ++result->by_single_peer;
      break;
    case core::StepSource::kMultiPeer:
      ++result->continuous_peer_steps;
      ++result->by_multi_peer;
      break;
    case core::StepSource::kUncertain:
      // Best-effort answer (accept_uncertain runs only). Grouped with the
      // peer-answered fraction for the by_* classification — matching the
      // snapshot path — but visible separately in its own counter.
      ++result->continuous_uncertain_steps;
      ++result->by_multi_peer;
      break;
    case core::StepSource::kServer:
      ++result->continuous_server_steps;
      ++result->by_server;
      result->einn_pages.Add(static_cast<double>(step.einn_accesses.total()));
      result->inn_pages.Add(static_cast<double>(step.inn_accesses.total()));
      if (config_.paged_storage) {
        const uint64_t logical = step.einn_accesses.total();
        const uint64_t misses = step.einn_accesses.misses();
        result->einn_miss_pages.Add(static_cast<double>(misses));
        result->buffer.AddMisses(misses);
        result->buffer.AddHits(logical - misses);
      }
      break;
    case core::StepSource::kStepSourceCount:
      break;
  }
  result->continuous_region_pages += step.region_pages;
  if (cont->stats().regions_built > regions_before && cont->safe_region().Valid()) {
    result->continuous_region_area_m2.Add(cont->safe_region().Area());
  }
}

SimulationResult Simulator::Run() {
  const ParameterSet& p = config_.params;
  SimulationResult result;
  const double duration =
      config_.duration_s > 0 ? config_.duration_s : p.execution_hours * kSecondsPerHour;
  const double warmup_end = duration * config_.warmup_fraction;
  const double dt = std::max(config_.time_step_s, 1e-3);
  const double queries_per_second = p.queries_per_minute / kSecondsPerMinute;

  Rng workload_rng = rng_.Stream("workload");
  double now = 0.0;
  while (now < duration) {
    // Advance movement and keep the neighbor grid current.
    for (std::unique_ptr<MobileHost>& host : hosts_) {
      if (!host->moving()) continue;
      geom::Vec2 before = host->position();
      host->Advance(dt);
      grid_->Move(host->id(), before, host->position());
    }
    now += dt;

    // Query launches: a Poisson number of randomly selected hosts per step
    // (the paper draws interval lengths from a Poisson process and selects a
    // random subset sized by lambda_Query).
    uint64_t launches = workload_rng.Poisson(queries_per_second * dt);
    bool measuring = now >= warmup_end;
    for (uint64_t q = 0; q < launches; ++q) {
      MobileHost* host = hosts_[workload_rng.NextIndex(hosts_.size())].get();
      if (config_.continuous) {
        // Continuous mode: advance the host's long-lived query instead of
        // issuing an independent snapshot query.
        ExecuteContinuousStep(host, now, measuring, &result);
        continue;
      }
      int k = config_.randomize_k
                  ? static_cast<int>(workload_rng.UniformInt(config_.k_min, config_.k_max))
                  : p.k_nn;
      if (config_.server_batch > 1) {
        // Batched mode (either transport): pause server-bound queries at
        // the boundary and answer the whole step's crop together below.
        PendingQuery pq;
        PrepareQuery(host, now, k, &pq);
        pq.measuring = measuring;
        if (pq.pending.needs_server) {
          deferred_.push_back(std::move(pq));
          continue;
        }
        FinalizeQuery(&pq);
        AccountQuery(pq.pending.outcome, host, now, k, measuring, &result);
        continue;
      }
      core::SennOutcome outcome = ExecuteQuery(host, now, k);
      AccountQuery(outcome, host, now, k, measuring, &result);
    }
    if (config_.server_batch > 1) DrainBatch(&result);
  }

  result.simulated_seconds = duration;
  if (result.measured_queries > 0) {
    double n = static_cast<double>(result.measured_queries);
    result.pct_single_peer = 100.0 * static_cast<double>(result.by_single_peer) / n;
    result.pct_multi_peer = 100.0 * static_cast<double>(result.by_multi_peer) / n;
    result.pct_server = 100.0 * static_cast<double>(result.by_server) / n;
  }
  return result;
}

}  // namespace senn::sim
