#include "src/sim/trace.h"

#include <fstream>
#include <ostream>

namespace senn::sim {

Status QueryTrace::WriteCsv(std::ostream* out) const {
  *out << "time_s,host,k,resolution,peers,certain,einn_pages,inn_pages,measured\n";
  for (const QueryEvent& e : events_) {
    *out << e.time_s << ',' << e.host_id << ',' << e.k << ','
         << core::ResolutionName(e.resolution) << ',' << e.peers_in_range << ','
         << e.certain_count << ',' << e.einn_pages << ',' << e.inn_pages << ','
         << (e.measured ? 1 : 0) << '\n';
  }
  if (!out->good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Status QueryTrace::WriteCsvToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return Status::NotFound("cannot open for writing: " + path);
  return WriteCsv(&out);
}

}  // namespace senn::sim
