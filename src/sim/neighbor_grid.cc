#include "src/sim/neighbor_grid.h"

#include <algorithm>
#include <cmath>

namespace senn::sim {

NeighborGrid::NeighborGrid(double area_side_m, double cell_size_m)
    : cell_size_(std::max(cell_size_m, 1.0)) {
  cells_per_side_ = std::max(1, static_cast<int>(std::ceil(area_side_m / cell_size_)));
  cells_.resize(static_cast<size_t>(cells_per_side_) * static_cast<size_t>(cells_per_side_));
}

size_t NeighborGrid::CellIndex(geom::Vec2 p) const {
  int cx = std::clamp(static_cast<int>(p.x / cell_size_), 0, cells_per_side_ - 1);
  int cy = std::clamp(static_cast<int>(p.y / cell_size_), 0, cells_per_side_ - 1);
  return static_cast<size_t>(cy) * static_cast<size_t>(cells_per_side_) +
         static_cast<size_t>(cx);
}

void NeighborGrid::Insert(int32_t id, geom::Vec2 position) {
  cells_[CellIndex(position)].push_back(id);
  if (static_cast<size_t>(id) >= positions_.size()) {
    positions_.resize(static_cast<size_t>(id) + 1);
  }
  positions_[static_cast<size_t>(id)] = position;
  ++size_;
}

void NeighborGrid::Move(int32_t id, geom::Vec2 old_position, geom::Vec2 new_position) {
  positions_[static_cast<size_t>(id)] = new_position;
  size_t from = CellIndex(old_position);
  size_t to = CellIndex(new_position);
  if (from == to) return;
  std::vector<int32_t>& bucket = cells_[from];
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] == id) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      break;
    }
  }
  cells_[to].push_back(id);
}

void NeighborGrid::QueryRadius(geom::Vec2 center, double radius,
                               std::vector<int32_t>* out) const {
  double r2 = radius * radius;
  int cx0 = std::clamp(static_cast<int>((center.x - radius) / cell_size_), 0,
                       cells_per_side_ - 1);
  int cx1 = std::clamp(static_cast<int>((center.x + radius) / cell_size_), 0,
                       cells_per_side_ - 1);
  int cy0 = std::clamp(static_cast<int>((center.y - radius) / cell_size_), 0,
                       cells_per_side_ - 1);
  int cy1 = std::clamp(static_cast<int>((center.y + radius) / cell_size_), 0,
                       cells_per_side_ - 1);
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const std::vector<int32_t>& bucket =
          cells_[static_cast<size_t>(cy) * static_cast<size_t>(cells_per_side_) +
                 static_cast<size_t>(cx)];
      for (int32_t id : bucket) {
        if (geom::Dist2(positions_[static_cast<size_t>(id)], center) <= r2) {
          out->push_back(id);
        }
      }
    }
  }
}

}  // namespace senn::sim
