#include "src/sim/mobile_host.h"

namespace senn::sim {

MobileHost::MobileHost(int32_t id, std::unique_ptr<mobility::Mover> mover,
                       int cache_capacity, bool moving, Rng rng)
    : id_(id),
      mover_(std::move(mover)),
      cache_(cache_capacity),
      moving_(moving),
      rng_(rng) {}

}  // namespace senn::sim
