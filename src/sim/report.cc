#include "src/sim/report.h"

namespace senn::sim {

void PrintFigure(const std::string& title, const std::string& x_label,
                 const std::vector<FigureSeries>& series) {
  std::printf("=== %s ===\n", title.c_str());
  for (const FigureSeries& s : series) {
    std::printf("--- %s ---\n", s.label.c_str());
    std::printf("%14s %10s %14s %13s %10s\n", x_label.c_str(), "server%", "single-peer%",
                "multi-peer%", "queries");
    for (const FigureRow& row : s.rows) {
      std::printf("%14.1f %10.1f %14.1f %13.1f %10llu\n", row.x, row.result.pct_server,
                  row.result.pct_single_peer, row.result.pct_multi_peer,
                  static_cast<unsigned long long>(row.result.measured_queries));
    }
  }
  std::printf("csv,series,%s,server_pct,single_pct,multi_pct,queries\n", x_label.c_str());
  for (const FigureSeries& s : series) {
    for (const FigureRow& row : s.rows) {
      std::printf("csv,%s,%g,%.2f,%.2f,%.2f,%llu\n", s.label.c_str(), row.x,
                  row.result.pct_server, row.result.pct_single_peer,
                  row.result.pct_multi_peer,
                  static_cast<unsigned long long>(row.result.measured_queries));
    }
  }
  std::printf("\n");
}

void PrintPageAccessFigure(const std::string& title,
                           const std::vector<PageAccessSeries>& series) {
  std::printf("=== %s ===\n", title.c_str());
  for (const PageAccessSeries& s : series) {
    std::printf("--- %s ---\n", s.label.c_str());
    std::printf("%6s %12s %12s %10s\n", "k", "EINN pages", "INN pages", "saving%");
    for (const PageAccessRow& row : s.rows) {
      double saving =
          row.inn_pages > 0 ? 100.0 * (1.0 - row.einn_pages / row.inn_pages) : 0.0;
      std::printf("%6d %12.2f %12.2f %10.1f\n", row.k, row.einn_pages, row.inn_pages,
                  saving);
    }
  }
  std::printf("csv,series,k,einn_pages,inn_pages\n");
  for (const PageAccessSeries& s : series) {
    for (const PageAccessRow& row : s.rows) {
      std::printf("csv,%s,%d,%.3f,%.3f\n", s.label.c_str(), row.k, row.einn_pages,
                  row.inn_pages);
    }
  }
  std::printf("\n");
}

namespace {

void AppendKv(std::string* out, const char* key, double value, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.17g%s", key, value, comma ? "," : "");
  *out += buf;
}

void AppendKv(std::string* out, const char* key, uint64_t value, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu%s", key,
                static_cast<unsigned long long>(value), comma ? "," : "");
  *out += buf;
}

void AppendStats(std::string* out, const char* key, const RunningStats& s,
                 bool comma = true) {
  *out += '"';
  *out += key;
  *out += "\":{";
  AppendKv(out, "n", s.count());
  AppendKv(out, "mean", s.mean());
  AppendKv(out, "var", s.variance());
  AppendKv(out, "sum", s.sum());
  AppendKv(out, "min", s.min());
  AppendKv(out, "max", s.max(), false);
  *out += comma ? "}," : "}";
}

}  // namespace

std::string SimulationResultJson(const SimulationResult& r) {
  std::string out = "{";
  AppendKv(&out, "measured_queries", r.measured_queries);
  AppendKv(&out, "by_single_peer", r.by_single_peer);
  AppendKv(&out, "by_multi_peer", r.by_multi_peer);
  AppendKv(&out, "by_server", r.by_server);
  AppendKv(&out, "pct_single_peer", r.pct_single_peer);
  AppendKv(&out, "pct_multi_peer", r.pct_multi_peer);
  AppendKv(&out, "pct_server", r.pct_server);
  AppendStats(&out, "einn_pages", r.einn_pages);
  AppendStats(&out, "inn_pages", r.inn_pages);
  AppendStats(&out, "peers_in_range", r.peers_in_range);
  AppendStats(&out, "p2p_messages_per_query", r.p2p_messages_per_query);
  AppendStats(&out, "p2p_bytes_per_query", r.p2p_bytes_per_query);
  // Messaging-subsystem metrics (appended after the historical fields so
  // golden JSON captured before the net/ layer stays a field-wise prefix).
  AppendStats(&out, "query_latency_s", r.query_latency_s);
  AppendKv(&out, "latency_p50_s", r.latency_p50.value());
  AppendKv(&out, "latency_p95_s", r.latency_p95.value());
  AppendKv(&out, "latency_p99_s", r.latency_p99.value());
  AppendStats(&out, "retries_per_query", r.retries_per_query);
  AppendKv(&out, "transmissions_lost", r.transmissions_lost);
  AppendKv(&out, "replies_missed", r.replies_missed);
  AppendKv(&out, "loss_induced_server_fallbacks", r.loss_induced_server_fallbacks);
  // Storage-engine metrics (appended after the historical fields, same
  // prefix convention as above; all zero unless paged_storage is on).
  AppendStats(&out, "einn_miss_pages", r.einn_miss_pages);
  AppendKv(&out, "buffer_logical_accesses", r.buffer.total());
  AppendKv(&out, "buffer_hits", r.buffer.hits());
  AppendKv(&out, "buffer_misses", r.buffer.misses());
  AppendKv(&out, "buffer_hit_rate", r.buffer.rate());
  // Server-batching metrics (appended before the tail field, same golden
  // prefix convention; all zero unless server_batch > 1).
  AppendKv(&out, "batch_clusters", r.batch_clusters);
  AppendKv(&out, "batch_batched_queries", r.batch_batched_queries);
  AppendStats(&out, "batch_cluster_size", r.batch_cluster_size);
  AppendKv(&out, "batch_shared_miss_pages", r.batch_shared_miss_pages);
  AppendKv(&out, "batch_private_miss_pages", r.batch_private_miss_pages);
  // Continuous-query metrics (appended before the tail field, same golden
  // prefix convention; all zero unless `continuous` is on).
  AppendKv(&out, "continuous_steps", r.continuous_steps);
  AppendKv(&out, "continuous_safe_region_steps", r.continuous_safe_region_steps);
  AppendKv(&out, "continuous_peer_region_steps", r.continuous_peer_region_steps);
  AppendKv(&out, "continuous_own_cache_steps", r.continuous_own_cache_steps);
  AppendKv(&out, "continuous_peer_steps", r.continuous_peer_steps);
  AppendKv(&out, "continuous_uncertain_steps", r.continuous_uncertain_steps);
  AppendKv(&out, "continuous_server_steps", r.continuous_server_steps);
  AppendKv(&out, "continuous_region_pages", r.continuous_region_pages);
  AppendStats(&out, "continuous_region_area_m2", r.continuous_region_area_m2);
  AppendKv(&out, "simulated_seconds", r.simulated_seconds, false);
  out += "}";
  return out;
}

void PrintParameterSet(const ParameterSet& p) {
  std::printf("--- %s ---\n", p.name.c_str());
  std::printf("  %-22s %10.0f x %.0f miles\n", "Area", p.area_side_miles, p.area_side_miles);
  std::printf("  %-22s %10d\n", "POI Number", p.poi_number);
  std::printf("  %-22s %10d\n", "MH Number", p.mh_number);
  std::printf("  %-22s %10d POIs\n", "C_Size", p.cache_size);
  std::printf("  %-22s %10.0f %%\n", "M_Percentage", p.move_percentage * 100.0);
  std::printf("  %-22s %10.0f mph\n", "M_Velocity", p.velocity_mph);
  std::printf("  %-22s %10.1f /min\n", "lambda_Query", p.queries_per_minute);
  std::printf("  %-22s %10.0f m\n", "Tx_Range", p.tx_range_m);
  std::printf("  %-22s %10d\n", "lambda_kNN", p.k_nn);
  std::printf("  %-22s %10.1f hr\n", "T_execution", p.execution_hours);
}

}  // namespace senn::sim
