// Simulation parameter sets.
//
// Table 2 of the paper defines the parameter glossary; Tables 3 and 4 give
// the concrete values derived from real-world statistics (GasPriceWatch /
// CNN-Money POI densities, FedStats vehicle registrations, Caltrans traffic
// fractions) for the Los Angeles County, Riverside County, and blended
// Synthetic Suburbia settings, at two scales: a 2x2-mile area (Table 3) and
// a 30x30-mile area (Table 4). The values below are copied verbatim from
// the paper.
#pragma once

#include <string>

#include "src/common/units.h"

namespace senn::sim {

/// The three density regimes of Section 4.1.1.
enum class Region {
  kLosAngeles = 0,        // very dense urban
  kSyntheticSuburbia = 1, // blended suburban
  kRiverside = 2,         // low-density rural
};

const char* RegionName(Region region);

/// Movement generator modes (Section 4.1).
enum class MovementMode {
  kRoadNetwork = 0,  // hosts follow the road network at segment speed limits
  kFreeMovement = 1, // obstacle-free random waypoint at fixed velocity
};

const char* MovementModeName(MovementMode mode);

/// One column of Table 3 / Table 4.
struct ParameterSet {
  std::string name;
  double area_side_miles = 2.0;  // simulation area is area_side x area_side
  int poi_number = 16;           // POI Number
  int mh_number = 463;           // MH Number
  int cache_size = 10;           // C_Size (POIs per host cache)
  double move_percentage = 0.8;  // M_Percentage (fraction of hosts moving)
  double velocity_mph = 30.0;    // M_Velocity
  double queries_per_minute = 23.0;  // lambda_Query (system-wide)
  double tx_range_m = 200.0;     // Tx_Range
  int k_nn = 3;                  // lambda_kNN (requested neighbors)
  double execution_hours = 1.0;  // T_execution

  double AreaSideMeters() const { return MilesToMeters(area_side_miles); }
  double VelocityMps() const { return MphToMps(velocity_mph); }
};

/// The 2x2-mile parameter sets (Table 3).
ParameterSet Table3(Region region);
/// The 30x30-mile parameter sets (Table 4).
ParameterSet Table4(Region region);

}  // namespace senn::sim
