// Row printers for the benchmark binaries: every table/figure bench emits
// the same aligned "series" rows the paper plots, plus a machine-readable
// CSV block for downstream tooling.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace senn::sim {

/// One X point of a Figure 9-16 style plot.
struct FigureRow {
  double x = 0.0;
  SimulationResult result;
};

/// One measured series (e.g., "Los Angeles County").
struct FigureSeries {
  std::string label;
  std::vector<FigureRow> rows;
};

/// Prints a whole figure: per-series aligned rows with the
/// server/single-peer/multi-peer percentage split, then a CSV block.
void PrintFigure(const std::string& title, const std::string& x_label,
                 const std::vector<FigureSeries>& series);

/// Prints a Figure 17-style page-access comparison (EINN vs INN by k).
struct PageAccessRow {
  int k = 0;
  double einn_pages = 0.0;
  double inn_pages = 0.0;
};
struct PageAccessSeries {
  std::string label;
  std::vector<PageAccessRow> rows;
};
void PrintPageAccessFigure(const std::string& title,
                           const std::vector<PageAccessSeries>& series);

/// Prints one parameter set as a Table 3/4 style column.
void PrintParameterSet(const ParameterSet& params);

/// Serializes every metric of a result as one JSON object. Doubles are
/// rendered with %.17g (round-trip exact), so two results are bit-identical
/// iff their JSON strings are byte-identical — the determinism tests compare
/// thread-count variants through this.
std::string SimulationResultJson(const SimulationResult& result);

}  // namespace senn::sim
