// Per-query event tracing for the simulator: an optional sink that records
// one row per executed query (time, host, k, resolution, peers in range,
// page accesses) plus a CSV writer. Used for offline analysis of simulation
// runs and by tests that assert fine-grained behaviour the aggregate
// SimulationResult cannot express.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/senn.h"

namespace senn::sim {

/// One executed query.
struct QueryEvent {
  double time_s = 0.0;
  int32_t host_id = -1;
  int k = 0;
  core::Resolution resolution = core::Resolution::kServer;
  int peers_in_range = 0;
  int certain_count = 0;
  uint64_t einn_pages = 0;  // 0 unless the query reached the server
  uint64_t inn_pages = 0;
  bool measured = false;  // false during warm-up
};

/// Append-only in-memory trace. The simulator fills it when attached.
class QueryTrace {
 public:
  void Record(QueryEvent event) { events_.push_back(event); }
  const std::vector<QueryEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  /// Writes "time_s,host,k,resolution,peers,certain,einn_pages,inn_pages,
  /// measured" rows with a header line.
  Status WriteCsv(std::ostream* out) const;
  Status WriteCsvToFile(const std::string& path) const;

 private:
  std::vector<QueryEvent> events_;
};

}  // namespace senn::sim
