#include "src/sim/params.h"

namespace senn::sim {

const char* RegionName(Region region) {
  switch (region) {
    case Region::kLosAngeles:
      return "Los Angeles County";
    case Region::kSyntheticSuburbia:
      return "Synthetic Suburbia";
    case Region::kRiverside:
      return "Riverside County";
  }
  return "unknown";
}

const char* MovementModeName(MovementMode mode) {
  switch (mode) {
    case MovementMode::kRoadNetwork:
      return "road network";
    case MovementMode::kFreeMovement:
      return "free movement";
  }
  return "unknown";
}

ParameterSet Table3(Region region) {
  ParameterSet p;
  p.area_side_miles = 2.0;
  p.cache_size = 10;
  p.move_percentage = 0.8;
  p.velocity_mph = 30.0;
  p.tx_range_m = 200.0;
  p.k_nn = 3;
  p.execution_hours = 1.0;
  switch (region) {
    case Region::kLosAngeles:
      p.name = "Los Angeles County (2x2 mi)";
      p.poi_number = 16;
      p.mh_number = 463;
      p.queries_per_minute = 23.0;
      break;
    case Region::kSyntheticSuburbia:
      p.name = "Synthetic Suburbia (2x2 mi)";
      p.poi_number = 11;
      p.mh_number = 257;
      p.queries_per_minute = 13.0;
      break;
    case Region::kRiverside:
      p.name = "Riverside County (2x2 mi)";
      p.poi_number = 5;
      p.mh_number = 50;
      p.queries_per_minute = 2.5;
      break;
  }
  return p;
}

ParameterSet Table4(Region region) {
  ParameterSet p;
  p.area_side_miles = 30.0;
  p.cache_size = 20;
  p.move_percentage = 0.8;
  p.velocity_mph = 30.0;
  p.tx_range_m = 200.0;
  p.k_nn = 5;
  p.execution_hours = 5.0;
  switch (region) {
    case Region::kLosAngeles:
      p.name = "Los Angeles County (30x30 mi)";
      p.poi_number = 4050;
      p.mh_number = 121500;
      p.queries_per_minute = 8100.0;
      break;
    case Region::kSyntheticSuburbia:
      p.name = "Synthetic Suburbia (30x30 mi)";
      p.poi_number = 3105;
      p.mh_number = 66600;
      p.queries_per_minute = 4440.0;
      break;
    case Region::kRiverside:
      p.name = "Riverside County (30x30 mi)";
      p.poi_number = 2160;
      p.mh_number = 11700;
      p.queries_per_minute = 780.0;
      break;
  }
  return p;
}

}  // namespace senn::sim
