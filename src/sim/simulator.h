// The simulation engine of Section 4.1: a mobile host module (movement and
// query launch patterns for every host) and a server module (R*-tree spatial
// searches with page-access accounting), wired together through the SENN
// query processor.
//
// Differences from the paper's setup, made for laptop-scale reproduction and
// recorded in EXPERIMENTS.md:
//  * `duration_s` can shorten T_execution; to still measure steady-state
//    rates, caches can be warm-started: each host is primed with the exact
//    kNN result of a query issued at a synthetic past location (its own
//    position displaced by a random draw of the time since its last query
//    times its speed). Stationary hosts are primed at their position, which
//    is exactly their steady state.
//  * the road network is synthesized (see roadnet/generator.h) instead of
//    digitized from TIGER/LINE files.
//
// RNG stream layout. All randomness derives from `SimulationConfig::seed`
// through named counter-based streams (Rng::Stream), never from draw order:
//   "world/poi"   POI placement
//   "world/road"  road-network synthesis
//   "host", i     host i's placement, M_Percentage draw, and movement
//   "warmstart"   warm-start replay order
//   "workload"    query launch times, querying host, and per-query k
//   "net", n      channel draws (loss, latency) of the n-th executed query
// Consequently a run is a pure function of its config: two Run()s with equal
// configs produce bit-identical SimulationResults, regardless of how many
// simulations execute concurrently elsewhere in the process (see sim/sweep.h).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/batch_server.h"
#include "src/core/senn.h"
#include "src/core/server.h"
#include "src/mobility/road_mover.h"
#include "src/net/channel.h"
#include "src/obs/trace.h"
#include "src/net/exchange.h"
#include "src/mobility/waypoint.h"
#include "src/roadnet/generator.h"
#include "src/roadnet/locate.h"
#include "src/rpc/client.h"
#include "src/rpc/loopback.h"
#include "src/rpc/service.h"
#include "src/sim/mobile_host.h"
#include "src/sim/neighbor_grid.h"
#include "src/sim/params.h"
#include "src/sim/trace.h"

namespace senn::sim {

/// How the M_Percentage parameter is realized. The paper says only "mobile
/// host movement percentage"; the duty-cycle reading (every host moves
/// M_Percentage of the time, pausing in between) reproduces the paper's
/// reported server-load levels, while the population reading (a fixed
/// 1 - M_Percentage of hosts never move) leaves permanently-stationary
/// cache providers and noticeably lowers server load. Duty cycle is the
/// default; bench_ablation_mpercentage contrasts the two.
enum class MPercentageMode {
  kDutyCycle = 0,
  kStationaryFraction = 1,
};

/// How the simulator's server contacts reach the spatial server.
enum class ServerTransport {
  /// Direct in-process calls (SpatialServer::QueryKnn / BatchServer) — the
  /// historical path.
  kInProcess = 0,
  /// Every server contact travels the full rpc wire path in process:
  /// encode -> frame -> decode -> validate -> dispatch through
  /// rpc::LoopbackTransport and rpc::QueryService (src/rpc/). Deterministic
  /// and BYTE-IDENTICAL to kInProcess — report JSONs match bit for bit
  /// (golden-tested) — because the wire ships doubles as IEEE-754 bit
  /// patterns, a blocking contact is a dispatch group of one (a verbatim
  /// QueryKnn), and a batched drain is one pipelined group answered by the
  /// same BatchServer::AnswerBatch call the in-process path makes.
  kLoopback = 1,
};

/// Full configuration of one simulation run.
struct SimulationConfig {
  ParameterSet params;
  MovementMode mode = MovementMode::kRoadNetwork;
  MPercentageMode m_percentage_mode = MPercentageMode::kDutyCycle;
  uint64_t seed = 1;

  /// Simulated duration in seconds; <= 0 means the paper's full
  /// T_execution. Benches use shorter runs plus cache warm-start.
  double duration_s = -1.0;
  /// Fraction of the duration treated as warm-up (measurements discarded).
  double warmup_fraction = 0.2;
  /// Movement integration step (seconds).
  double time_step_s = 1.0;
  /// Prime host caches to approximate steady state (see header comment).
  bool warm_start = true;
  /// Mean pause at waypoints (seconds); <= 0 derives the pause from
  /// M_Percentage in duty-cycle mode (pause = trip_time * (1-M)/M).
  double mean_pause_s = -1.0;
  /// Preferred max trip length for road movement; <= 0 derives from area.
  double max_trip_m = -1.0;

  /// Draw each query's k uniformly from [k_min, k_max] instead of the fixed
  /// params.k_nn (Section 4.2.4 does this for the k sweep).
  bool randomize_k = false;
  int k_min = 1;
  int k_max = 9;

  /// SENN algorithm switches (multi-peer backend, ablations). The server
  /// request size is always overridden with params.cache_size (policy 2).
  core::SennOptions senn;

  /// Road generator overrides; negative block spacing derives a default
  /// from the region density.
  double road_block_spacing_m = -1.0;

  /// How the server charges R*-tree page accesses (Figure 17 uses
  /// kOnEnqueue; see rtree/knn.h for the two accounting styles).
  rtree::AccessCountMode page_count_mode = rtree::AccessCountMode::kOnExpand;

  /// Wireless channel of the P2P exchange (src/net/). The default is the
  /// ideal channel — lossless and instantaneous — which reproduces the
  /// pre-networking simulator bit-for-bit (golden-JSON tested). Warm-start
  /// priming always runs over an ideal channel: it models the steady state
  /// already accumulated before the measured window.
  net::ChannelConfig channel;

  /// Server-side batch answering (core/batch_server): each simulation
  /// step's scalar-protocol server contacts are deferred and answered
  /// together, clustered by query-point proximity (tiles of Tx_Range) into
  /// shared EINN traversals of at most `server_batch` queries. Per-query
  /// answers are bitwise identical to the sequential path; what changes is
  /// the server's page traffic (shared pages fetched once per cluster) and
  /// the reply timing model (replies arrive at step end). 1 — the default —
  /// keeps the sequential per-query path, byte-identical outputs included
  /// (golden-JSON tested).
  int server_batch = 1;

  /// When true the server answers through the paged storage engine
  /// (src/storage/): EINN traversals fetch R*-tree nodes through a buffer
  /// pool sized by `buffer`, and the result additionally reports physical
  /// misses and the pool hit rate. Logical page counts are unchanged — the
  /// default (off) and an unbounded pool both reproduce the historical
  /// metrics bit-for-bit (golden-JSON tested).
  bool paged_storage = false;
  storage::BufferPoolOptions buffer;

  /// Transport of the server contacts (see ServerTransport). Warm-start
  /// priming always runs in process: it models state accumulated before the
  /// measured window, and its page traffic is reset away regardless.
  ServerTransport server_transport = ServerTransport::kInProcess;

  /// Continuous-query mode: every host holds one core::ContinuousKnn (k =
  /// params.k_nn) across the whole run, and each launch advances that query
  /// at the host's current position instead of issuing an independent
  /// snapshot query. Steps resolve through (in order) the safe region, the
  /// Lemma 3.2 own-cache recheck, shared peer safe regions, peer caches,
  /// and finally the server. Requires the sequential in-process transport
  /// (server_batch == 1, kInProcess) and a fixed k (randomize_k == false).
  bool continuous = false;
  /// Safe-region construction maintained by continuous queries (see
  /// core/safe_region.h). Ignored unless `continuous` is set.
  core::SafeRegionMode safe_region = core::SafeRegionMode::kOff;
};

/// Aggregated outcome of a run (the quantities Figures 9-17 plot).
struct SimulationResult {
  uint64_t measured_queries = 0;
  uint64_t by_single_peer = 0;
  uint64_t by_multi_peer = 0;
  uint64_t by_server = 0;

  /// Percentages of measured queries (the Y axes of Figures 9-16).
  double pct_single_peer = 0.0;
  double pct_multi_peer = 0.0;
  double pct_server = 0.0;  // this is the SQRR metric

  /// R*-tree pages accessed per server-bound query (Figure 17 inputs).
  RunningStats einn_pages;
  RunningStats inn_pages;

  /// Storage-engine metrics (all zero unless `paged_storage` is on).
  /// Physical (buffer-pool miss) pages per server-bound EINN query; with an
  /// unbounded pool these are the cold first-touch reads only.
  RunningStats einn_miss_pages;
  /// Pool-wide hit/miss tally over the measured window (exact-merging
  /// across seed shards — counts are summed, the rate is recomputed).
  HitRate buffer;

  /// Peers reachable per query (diagnostic).
  RunningStats peers_in_range;

  /// P2P communication overhead ("it may increase the communication
  /// overheads among mobile hosts", Section 2): per query, broadcasts
  /// (including rebroadcast retries) plus every reply transmission put on
  /// the air; reply payloads carry the cached POIs (net::ReplyBytes).
  RunningStats p2p_messages_per_query;
  RunningStats p2p_bytes_per_query;

  /// Query latency over the messaging subsystem: exchange time (reply
  /// collection, timeouts, retries) plus the server round trip for
  /// server-resolved queries. All zero on the ideal channel.
  RunningStats query_latency_s;
  P2Quantile latency_p50{0.50};
  P2Quantile latency_p95{0.95};
  P2Quantile latency_p99{0.99};
  /// Silent collection rounds that triggered a rebroadcast.
  RunningStats retries_per_query;
  /// Transmissions the channel dropped (REQ receptions or replies).
  uint64_t transmissions_lost = 0;
  /// Candidate replies that never made any round's deadline (lost or late).
  uint64_t replies_missed = 0;
  /// Server contacts that the full peer set would have avoided — the
  /// channel, not the cache population, forced them.
  uint64_t loss_induced_server_fallbacks = 0;

  /// Server-batching metrics (all zero unless `server_batch` > 1).
  /// Shared traversals run / queries answered by one.
  uint64_t batch_clusters = 0;
  uint64_t batch_batched_queries = 0;
  /// Formed cluster sizes (singletons included).
  RunningStats batch_cluster_size;
  /// Buffer-pool misses of the shared traversals, split by whether the page
  /// was wanted by >= 2 queries of its cluster (zero without paged_storage).
  uint64_t batch_shared_miss_pages = 0;
  uint64_t batch_private_miss_pages = 0;

  /// Continuous-query metrics (all zero unless `continuous` is on). Steps
  /// partition exactly by answering source:
  /// continuous_steps == safe_region + peer_region + own_cache + peer +
  /// uncertain + server. Every step also counts as a measured query, and
  /// server-answered steps feed by_server / einn_pages, so pct_server stays
  /// the SQRR metric (server contacts per issued step).
  uint64_t continuous_steps = 0;
  uint64_t continuous_safe_region_steps = 0;
  uint64_t continuous_peer_region_steps = 0;
  uint64_t continuous_own_cache_steps = 0;
  uint64_t continuous_peer_steps = 0;
  uint64_t continuous_uncertain_steps = 0;
  uint64_t continuous_server_steps = 0;
  /// Logical R*-tree accesses of the INSQ rival fetches (they ride on
  /// answering server replies; kInsq mode only).
  uint64_t continuous_region_pages = 0;
  /// Area (m^2) of each safe region installed during the measured window.
  RunningStats continuous_region_area_m2;

  double simulated_seconds = 0.0;
};

/// Owns the world (POIs, server, road network, hosts) and runs the loop.
class Simulator {
 public:
  explicit Simulator(SimulationConfig config);
  ~Simulator();

  /// Runs the configured duration and returns the aggregated metrics.
  SimulationResult Run();

  /// Attaches an event sink that receives one QueryEvent per executed query
  /// (including warm-up queries, flagged unmeasured). Pass nullptr to
  /// detach. The trace must outlive the next Run() call.
  void AttachTrace(QueryTrace* trace) { trace_ = trace; }

  /// Attaches a structured span sink (src/obs/): every `sample_every`-th
  /// executed query (by query sequence number, so sampling is deterministic)
  /// emits per-phase spans with sim-time timestamps. Pass nullptr to detach.
  /// The sink must outlive the next Run() call. Warm-start priming runs
  /// before time zero and is never traced.
  void AttachSpanSink(obs::TraceSink* sink, uint64_t sample_every = 1) {
    span_sink_ = sink;
    span_sample_ = sample_every == 0 ? 1 : sample_every;
  }

  /// World accessors (used by the examples).
  const core::SpatialServer& server() const { return *server_; }
  const roadnet::Graph* graph() const { return graph_.get(); }
  const std::vector<std::unique_ptr<MobileHost>>& hosts() const { return hosts_; }
  const std::vector<core::Poi>& pois() const { return pois_; }

 private:
  /// One query paused at the server boundary (config_.server_batch > 1):
  /// the client-side stages already ran, the channel metrics are drawn, and
  /// the batched drain owes it a server reply.
  struct PendingQuery {
    MobileHost* host = nullptr;
    uint64_t qid = 0;
    double now = 0.0;
    int k = 0;
    bool measuring = false;
    geom::Vec2 q;
    core::PendingSenn pending;
    /// Kept alive across the defer (spans were all closed by Prepare).
    std::optional<obs::QueryTracer> tracer;
    // Channel metrics snapshot (the last_* values of the sequential path).
    double p2p_messages = 0.0;
    double p2p_bytes = 0.0;
    double latency_s = 0.0;
    int retries = 0;
    uint64_t transmissions_lost = 0;
    uint64_t replies_missed = 0;
    bool loss_induced = false;
  };

  void BuildWorld();
  void WarmStartCaches();
  /// Executes one query from `host` at simulation time `now`; returns the
  /// outcome for metric accounting. Exactly PrepareQuery + the sequential
  /// server contact + FinalizeQuery.
  core::SennOutcome ExecuteQuery(MobileHost* host, double now, int k);
  /// One blocking server contact over the loopback rpc client (the
  /// kLoopback replacement for the direct QueryKnn call).
  core::ServerReply KnnOverRpc(const core::PendingSenn& pending);
  /// Client-side half of ExecuteQuery: harvest, wireless exchange, SENN
  /// peer stages, channel draws (server RTT included — the "net" stream
  /// order must not depend on when the reply materializes).
  void PrepareQuery(MobileHost* host, double now, int k, PendingQuery* out);
  /// Server-independent tail: publishes the channel metrics to the last_*
  /// fields and applies cache policy 1.
  void FinalizeQuery(PendingQuery* pq);
  /// Metric/trace accounting of one completed query (reads the last_*
  /// fields; extracted from Run() so the batched drain shares it).
  void AccountQuery(const core::SennOutcome& outcome, MobileHost* host, double now,
                    int k, bool measuring, SimulationResult* result);
  /// Answers every deferred query through the BatchServer and completes it.
  void DrainBatch(SimulationResult* result);
  /// One launch of continuous mode: advances `host`'s ContinuousKnn at its
  /// current position (local fast paths first; otherwise the wireless
  /// exchange harvests peer caches AND peer safe regions) and accounts the
  /// step. The sequential-path replacement for ExecuteQuery + AccountQuery.
  void ExecuteContinuousStep(MobileHost* host, double now, bool measuring,
                             SimulationResult* result);

  SimulationConfig config_;
  Rng rng_;
  std::vector<core::Poi> pois_;
  std::unique_ptr<core::SpatialServer> server_;
  std::unique_ptr<core::SennProcessor> senn_;
  /// Batched answering path (null unless config_.server_batch > 1 on the
  /// in-process transport; the loopback transport batches inside its
  /// QueryService instead).
  std::unique_ptr<core::BatchServer> batch_server_;
  /// Loopback rpc path (all null unless server_transport is kLoopback).
  std::unique_ptr<rpc::QueryService> rpc_service_;
  std::unique_ptr<rpc::LoopbackTransport> rpc_transport_;
  std::unique_ptr<rpc::Client> rpc_client_;
  /// Queries of the current step awaiting the batched drain.
  std::vector<PendingQuery> deferred_;
  std::unique_ptr<roadnet::Graph> graph_;
  std::unique_ptr<roadnet::Router> router_;
  std::vector<std::unique_ptr<MobileHost>> hosts_;
  std::unique_ptr<NeighborGrid> grid_;
  QueryTrace* trace_ = nullptr;
  obs::TraceSink* span_sink_ = nullptr;
  uint64_t span_sample_ = 1;
  // Per-query metrics of the most recent ExecuteQuery (read by Run()).
  double last_p2p_messages_ = 0.0;
  double last_p2p_bytes_ = 0.0;
  double last_latency_s_ = 0.0;
  int last_retries_ = 0;
  uint64_t last_transmissions_lost_ = 0;
  uint64_t last_replies_missed_ = 0;
  bool last_loss_induced_fallback_ = false;
  /// Sequence number of the executed query; names its "net" RNG stream.
  uint64_t query_seq_ = 0;
  // Scratch buffers reused across queries.
  std::vector<int32_t> neighbor_ids_;
  std::vector<const core::CachedResult*> peer_caches_;
  std::vector<const core::CachedResult*> full_caches_;
  std::vector<net::PeerProfile> candidates_;
  std::vector<const core::CachedResult*> candidate_caches_;
  std::vector<char> arrived_;
  /// Continuous mode: safe regions of the harvested peers, aligned with
  /// peer_caches_ assembly (only regions whose reply arrived are visible).
  std::vector<const core::SafeRegion*> peer_regions_;
};

}  // namespace senn::sim
