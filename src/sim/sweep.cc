#include "src/sim/sweep.h"

#include <atomic>
#include <thread>

namespace senn::sim {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<SimulationResult> RunConfigs(const std::vector<SimulationConfig>& configs,
                                         const SweepOptions& options) {
  std::vector<SimulationResult> results(configs.size());
  if (configs.empty()) return results;
  int threads = ResolveThreads(options.threads);
  if (threads > static_cast<int>(configs.size())) threads = static_cast<int>(configs.size());

  // Work stealing over a shared index; each worker owns the full lifetime of
  // its runs (Simulator construction, Run, teardown), so no state is shared
  // between runs and the slot written is unique per index.
  std::atomic<size_t> next{0};
  auto worker = [&configs, &results, &next]() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs.size()) return;
      results[i] = Simulator(configs[i]).Run();
    }
  };
  if (threads == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

SimulationResult MergeResults(const std::vector<SimulationResult>& parts) {
  SimulationResult merged;
  for (const SimulationResult& part : parts) {
    merged.measured_queries += part.measured_queries;
    merged.by_single_peer += part.by_single_peer;
    merged.by_multi_peer += part.by_multi_peer;
    merged.by_server += part.by_server;
    merged.einn_pages.Merge(part.einn_pages);
    merged.inn_pages.Merge(part.inn_pages);
    merged.peers_in_range.Merge(part.peers_in_range);
    merged.p2p_messages_per_query.Merge(part.p2p_messages_per_query);
    merged.p2p_bytes_per_query.Merge(part.p2p_bytes_per_query);
    merged.query_latency_s.Merge(part.query_latency_s);
    merged.latency_p50.Merge(part.latency_p50);
    merged.latency_p95.Merge(part.latency_p95);
    merged.latency_p99.Merge(part.latency_p99);
    merged.retries_per_query.Merge(part.retries_per_query);
    merged.transmissions_lost += part.transmissions_lost;
    merged.replies_missed += part.replies_missed;
    merged.loss_induced_server_fallbacks += part.loss_induced_server_fallbacks;
    merged.einn_miss_pages.Merge(part.einn_miss_pages);
    merged.buffer.Merge(part.buffer);
    merged.batch_clusters += part.batch_clusters;
    merged.batch_batched_queries += part.batch_batched_queries;
    merged.batch_cluster_size.Merge(part.batch_cluster_size);
    merged.batch_shared_miss_pages += part.batch_shared_miss_pages;
    merged.batch_private_miss_pages += part.batch_private_miss_pages;
    merged.continuous_steps += part.continuous_steps;
    merged.continuous_safe_region_steps += part.continuous_safe_region_steps;
    merged.continuous_peer_region_steps += part.continuous_peer_region_steps;
    merged.continuous_own_cache_steps += part.continuous_own_cache_steps;
    merged.continuous_peer_steps += part.continuous_peer_steps;
    merged.continuous_uncertain_steps += part.continuous_uncertain_steps;
    merged.continuous_server_steps += part.continuous_server_steps;
    merged.continuous_region_pages += part.continuous_region_pages;
    merged.continuous_region_area_m2.Merge(part.continuous_region_area_m2);
    merged.simulated_seconds += part.simulated_seconds;
  }
  if (merged.measured_queries > 0) {
    double n = static_cast<double>(merged.measured_queries);
    merged.pct_single_peer = 100.0 * static_cast<double>(merged.by_single_peer) / n;
    merged.pct_multi_peer = 100.0 * static_cast<double>(merged.by_multi_peer) / n;
    merged.pct_server = 100.0 * static_cast<double>(merged.by_server) / n;
  }
  return merged;
}

SimulationConfig ShardConfig(const SimulationConfig& base, int shard) {
  SimulationConfig cfg = base;
  if (shard > 0) {
    cfg.seed = Rng(base.seed).Stream("shard", static_cast<uint64_t>(shard)).NextU64();
  }
  return cfg;
}

SimulationResult RunSeedShards(const SimulationConfig& base, int shards,
                               const SweepOptions& options) {
  if (shards < 1) shards = 1;
  std::vector<SimulationConfig> configs;
  configs.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) configs.push_back(ShardConfig(base, s));
  return MergeResults(RunConfigs(configs, options));
}

}  // namespace senn::sim
