// A simulated mobile host: identity, movement model, and NN result cache.
// "Each mobile host is an independent object which decides its movement
// autonomously" (Section 4.1); a per-host child RNG keeps decisions
// deterministic and independent of scheduling order.
#pragma once

#include <memory>

#include "src/cache/nn_cache.h"
#include "src/common/rng.h"
#include "src/core/continuous.h"
#include "src/mobility/mover.h"

namespace senn::sim {

/// One mobile host.
class MobileHost {
 public:
  /// `moving` reflects the M_Percentage draw; stationary hosts keep a
  /// StationaryMover.
  MobileHost(int32_t id, std::unique_ptr<mobility::Mover> mover, int cache_capacity,
             bool moving, Rng rng);

  int32_t id() const { return id_; }
  bool moving() const { return moving_; }
  geom::Vec2 position() const { return mover_->position(); }

  /// Advances the movement model by dt seconds.
  void Advance(double dt) { mover_->Advance(dt, &rng_); }

  cache::NnCache& cache() { return cache_; }
  const cache::NnCache& cache() const { return cache_; }
  Rng& rng() { return rng_; }

  /// Continuous-query mode (simulator.h): the host carries one ContinuousKnn
  /// across epochs instead of issuing independent snapshot queries. Null in
  /// snapshot mode.
  void AttachContinuous(std::unique_ptr<core::ContinuousKnn> continuous) {
    continuous_ = std::move(continuous);
  }
  core::ContinuousKnn* continuous() { return continuous_.get(); }
  const core::ContinuousKnn* continuous() const { return continuous_.get(); }

 private:
  int32_t id_;
  std::unique_ptr<mobility::Mover> mover_;
  cache::NnCache cache_;
  std::unique_ptr<core::ContinuousKnn> continuous_;
  bool moving_;
  Rng rng_;
};

}  // namespace senn::sim
