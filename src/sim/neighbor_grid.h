// Uniform-grid index over mobile host positions, used for peer discovery
// ("query moving object peers within the communication range"). Cell size is
// chosen near the transmission range so a radius query touches at most a
// 3x3 block of cells.
#pragma once

#include <cstdint>
#include <vector>

#include "src/geom/vec2.h"

namespace senn::sim {

/// Spatial hash of host ids with incremental position updates.
class NeighborGrid {
 public:
  /// Covers [0, area_side] x [0, area_side]; positions outside are clamped
  /// into the border cells.
  NeighborGrid(double area_side_m, double cell_size_m);

  /// Registers a host at a position. A host id must be inserted only once.
  void Insert(int32_t id, geom::Vec2 position);

  /// Updates a host's position (no-op when both map to the same cell).
  void Move(int32_t id, geom::Vec2 old_position, geom::Vec2 new_position);

  /// Appends the ids of all hosts within `radius` of `center` (including a
  /// host exactly at `center`, including the querying host itself — callers
  /// filter). Distances are exact; the grid only limits the candidate scan.
  void QueryRadius(geom::Vec2 center, double radius, std::vector<int32_t>* out) const;

  size_t size() const { return size_; }

 private:
  size_t CellIndex(geom::Vec2 p) const;

  double cell_size_;
  int cells_per_side_;
  std::vector<std::vector<int32_t>> cells_;
  std::vector<geom::Vec2> positions_;  // indexed by host id
  size_t size_ = 0;
};

}  // namespace senn::sim
