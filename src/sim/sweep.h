// Parallel sweep engine: runs many independent simulations across a thread
// pool with per-run isolation.
//
// Every figure of the paper is a parameter grid (Figures 9-17 sweep
// transmission range, cache size, velocity, and k over three regions), and
// each grid cell is one self-contained `Simulator` run. Because a run is a
// pure function of its `SimulationConfig` (see the RNG stream layout in
// simulator.h), cells can execute on any thread in any order and still
// produce bit-identical `SimulationResult`s: RunConfigs(configs, 1 thread)
// == RunConfigs(configs, N threads), element for element. The determinism
// test (tests/sim/determinism_test.cpp) pins this down.
//
// Seed sharding: one logical experiment can also be split into S runs with
// decorrelated seeds whose results are merged (counters summed, streaming
// stats combined via RunningStats::Merge) — variance reduction and
// parallelism for a single grid cell.
#pragma once

#include <vector>

#include "src/sim/simulator.h"

namespace senn::sim {

/// Thread-pool configuration for a sweep.
struct SweepOptions {
  /// Worker threads; <= 0 selects the hardware concurrency.
  int threads = 1;
};

/// Resolves `requested` threads (<= 0: hardware concurrency, floor 1).
int ResolveThreads(int requested);

/// Runs one isolated simulation per config and returns the results in input
/// order. Deterministic: the result vector depends only on `configs`, never
/// on `options.threads` or scheduling.
std::vector<SimulationResult> RunConfigs(const std::vector<SimulationConfig>& configs,
                                         const SweepOptions& options = {});

/// Merges shard results into one aggregate: query counters and simulated
/// seconds are summed, the RunningStats streams merged, and the percentage
/// split recomputed from the merged counters. Empty input yields a
/// default-constructed result.
SimulationResult MergeResults(const std::vector<SimulationResult>& parts);

/// Derives the config of shard `shard` of `base`: identical parameters with
/// a decorrelated seed drawn from base.seed's "shard" stream. Shard 0 keeps
/// base.seed itself so a 1-shard run equals the plain run.
SimulationConfig ShardConfig(const SimulationConfig& base, int shard);

/// Runs `shards` decorrelated copies of `base` across the pool and merges
/// them with MergeResults. Deterministic in (base, shards).
SimulationResult RunSeedShards(const SimulationConfig& base, int shards,
                               const SweepOptions& options = {});

}  // namespace senn::sim
