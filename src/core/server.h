// The remote spatial database server.
//
// Indexes the POI data set with an R*-tree (branching factor 30, as in the
// paper) and answers kNN queries with the best-first incremental NN
// algorithm. For every query it runs BOTH
//   * EINN — the extended algorithm with the client's pruning bounds
//     (Section 3.3), which produces the answer, and
//   * INN  — the original algorithm without bounds,
// recording the node (page) accesses of each, exactly like the paper's
// server module ("the server module executes both the original INN algorithm
// and our extended INN algorithm ... to compare the performance improvement
// with respect to page accesses", Section 4.4).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/types.h"
#include "src/geom/circle.h"
#include "src/geom/vec2.h"
#include "src/rtree/knn.h"
#include "src/rtree/rstar_tree.h"
#include "src/storage/node_pager.h"

namespace senn::obs {
class QueryTracer;
}

namespace senn::core {

/// Cumulative server-side counters (the PAR metric inputs).
struct ServerStats {
  uint64_t queries = 0;
  rtree::AccessCounter einn;
  rtree::AccessCounter inn;
};

/// One server reply.
struct ServerReply {
  /// Neighbors found by EINN, ascending by distance. When a lower bound was
  /// supplied, POIs at distance <= lower are omitted (the client certified
  /// them locally and merges them back).
  std::vector<RankedPoi> neighbors;
  /// Page accesses of the answering (EINN) run.
  rtree::AccessCounter einn_accesses;
  /// Page accesses the plain INN run needed for the same query.
  rtree::AccessCounter inn_accesses;

  /// Memberwise (bitwise for distances) equality; the rpc layer's
  /// loopback-determinism tests compare transported replies against the
  /// direct QueryKnn result with it.
  bool operator==(const ServerReply&) const = default;
};

/// The spatial database server.
class SpatialServer {
 public:
  /// Builds the R*-tree over the POI set. `tree_options` defaults to the
  /// paper's branching factor of 30.
  ///
  /// `storage`, when given, puts a paged storage engine (src/storage/)
  /// under the tree: every ANSWERING traversal (EINN, the pruned range
  /// scan) fetches nodes through a buffer pool, so the reply's access
  /// counters additionally report physical misses. The counterfactual
  /// comparison runs (plain INN / unpruned range) never touch the pool —
  /// they are hypothetical work and must neither warm nor thrash the real
  /// frames — so their miss counters stay zero. Logical access counts are
  /// identical with and without a pool.
  explicit SpatialServer(std::vector<Poi> pois,
                         rtree::RStarTree::Options tree_options = DefaultTreeOptions(),
                         rtree::AccessCountMode count_mode = rtree::AccessCountMode::kOnExpand,
                         std::optional<storage::BufferPoolOptions> storage = std::nullopt);

  static rtree::RStarTree::Options DefaultTreeOptions() {
    rtree::RStarTree::Options o;
    o.max_entries = 30;
    o.min_entries = 12;
    return o;
  }

  /// Answers a kNN query. `k` counts the client's locally-certified POIs:
  /// when `bounds.lower` is set and `certified` of the client's POIs lie at
  /// distance <= lower, the server needs to return only k - certified new
  /// neighbors; pass the number through `already_certified`.
  /// `tracer`, when given and a storage engine is configured, receives one
  /// buffer_fetch span bracketing the answering traversal's pool activity
  /// (hit/miss/eviction deltas); the comparison run is never traced.
  ServerReply QueryKnn(geom::Vec2 q, int k, rtree::PruneBounds bounds = {},
                       int already_certified = 0, obs::QueryTracer* tracer = nullptr);

  /// Region-aware kNN (extension beyond the paper's scalar bounds): the
  /// client ships its whole certain region R_c (the peer disks) plus the
  /// search horizon (its k-th candidate distance). The server runs a
  /// best-first search returning the nearest POIs that lie OUTSIDE the
  /// region — the client knows everything inside — with three prunings:
  /// the horizon, the running k-th-best distance over all objects seen
  /// (region-known ones count: they occupy client-side result ranks), and
  /// whole subtrees covered by the region (geom::MbrCoveredByDiskUnion).
  /// At most k POIs are returned — enough for the client to merge with its
  /// known set and take the exact top k. `einn_accesses` holds the pruned
  /// search's pages; `inn_accesses` the plain INN kNN cost for the same k.
  ServerReply QueryKnnWithRegion(geom::Vec2 q, int k, double horizon,
                                 const std::vector<geom::Circle>& region,
                                 obs::QueryTracer* tracer = nullptr);

  /// Answers a range query: every POI with inner < distance <= radius,
  /// ascending. `inner` is the client's certain radius (POIs inside it are
  /// already known to the client); subtrees fully inside the inner disk are
  /// pruned. As with QueryKnn, a comparison run without the inner disk is
  /// executed and both access counts are recorded.
  ServerReply QueryRange(geom::Vec2 q, double radius, double inner = 0.0);

  size_t poi_count() const { return pois_.size(); }
  const std::vector<Poi>& pois() const { return pois_; }
  const rtree::RStarTree& tree() const { return tree_; }
  const ServerStats& stats() const { return stats_; }
  rtree::AccessCountMode count_mode() const { return count_mode_; }
  /// The paged storage engine, or null when the server runs in-memory.
  /// Note ResetStats() clears the query counters but not the pool's
  /// residency: a warmed pool is the steady state being measured.
  const storage::NodePager* pager() const { return pager_.get(); }
  /// Mutable storage engine for traversals run OUTSIDE this class (the
  /// batched answering path in core/batch_server, which drives the tree and
  /// the pool directly). Same object as pager(); null when in-memory.
  storage::NodePager* mutable_pager() { return pager_.get(); }
  /// Folds one externally-answered query into the cumulative ServerStats —
  /// the batched path answers through its own traversal but must show up in
  /// the same PAR bookkeeping as QueryKnn-answered queries.
  void RecordAnsweredQuery(const rtree::AccessCounter& einn,
                           const rtree::AccessCounter& inn) {
    ++stats_.queries;
    stats_.einn += einn;
    stats_.inn += inn;
  }
  void ResetStats() { stats_ = ServerStats{}; }

 private:
  std::vector<Poi> pois_;
  rtree::RStarTree tree_;
  rtree::AccessCountMode count_mode_;
  std::unique_ptr<storage::NodePager> pager_;
  ServerStats stats_;
};

}  // namespace senn::core
