#include "src/core/candidate_heap.h"

#include <algorithm>
#include <cassert>

#include "src/obs/paranoid.h"

namespace senn::core {

namespace {

// Both lists are sorted by the system (distance, id) rank order. Sorting by
// distance alone would leave co-distant entries in insertion order, so the
// heap layout — and through it the certified ranks — would depend on which
// peer happened to answer first.
void InsertSorted(std::vector<RankedPoi>* v, const RankedPoi& poi) {
  v->insert(std::upper_bound(v->begin(), v->end(), poi,
                             [](const RankedPoi& a, const RankedPoi& b) {
                               return RanksBefore(a, b);
                             }),
            poi);
}

bool ContainsId(const std::vector<RankedPoi>& v, PoiId id) {
  return std::any_of(v.begin(), v.end(), [id](const RankedPoi& p) { return p.id == id; });
}

}  // namespace

const char* HeapStateName(HeapState state) {
  switch (state) {
    case HeapState::kSolved:
      return "solved";
    case HeapState::kFullMixed:
      return "full-mixed (state 1)";
    case HeapState::kFullUncertainOnly:
      return "full-uncertain (state 2)";
    case HeapState::kPartialMixed:
      return "partial-mixed (state 3)";
    case HeapState::kPartialCertainOnly:
      return "partial-certain (state 4)";
    case HeapState::kPartialUncertainOnly:
      return "partial-uncertain (state 5)";
    case HeapState::kEmpty:
      return "empty (state 6)";
  }
  return "unknown";
}

CandidateHeap::CandidateHeap(int capacity) : capacity_(std::max(capacity, 1)) {}

bool CandidateHeap::Contains(PoiId id) const {
  return ContainsId(certain_, id) || ContainsId(uncertain_, id);
}

void CandidateHeap::InsertCertain(const RankedPoi& poi) {
  auto existing = std::find_if(certain_.begin(), certain_.end(),
                               [&](const RankedPoi& p) { return p.id == poi.id; });
  if (existing != certain_.end()) {
    // Re-sighting of an already-certain id: peers measured the same POI
    // from the same query point, but a fresher (or better-positioned) cache
    // can report a smaller distance. Keep the minimum-distance sighting —
    // dropping the better one would inflate the lower bound shipped to the
    // server.
    if (!RanksBefore(poi, *existing)) return;
    certain_.erase(existing);
    InsertSorted(&certain_, poi);
    SENN_PARANOID_CHECK(static_cast<int>(certain_.size()) <= capacity_,
                        "certain list within capacity");
    return;
  }
  // A certain discovery supersedes an uncertain sighting of the same POI.
  uncertain_.erase(
      std::remove_if(uncertain_.begin(), uncertain_.end(),
                     [&](const RankedPoi& p) { return p.id == poi.id; }),
      uncertain_.end());
  if (static_cast<int>(certain_.size()) >= capacity_) {
    // A certified object can have any rank up to the certifying peer's cache
    // size, so a later peer may certify something CLOSER than the current
    // certain set. The union of certified sets is always a rank prefix
    // (DESIGN.md section 6), so keeping the closest `capacity` preserves
    // exact ranks.
    if (!RanksBefore(poi, certain_.back())) return;
    certain_.pop_back();
  }
  InsertSorted(&certain_, poi);
  while (IsFull() && !uncertain_.empty() && size() > capacity_) {
    uncertain_.pop_back();  // certain objects displace the farthest uncertain
  }
}

void CandidateHeap::InsertUncertain(const RankedPoi& poi) {
  if (Contains(poi.id)) return;
  if (static_cast<int>(certain_.size()) >= capacity_) return;
  if (IsFull()) {
    if (uncertain_.empty() || !RanksBefore(poi, uncertain_.back())) return;
    uncertain_.pop_back();
  }
  InsertSorted(&uncertain_, poi);
}

HeapState CandidateHeap::state() const {
  bool has_certain = !certain_.empty();
  bool has_uncertain = !uncertain_.empty();
  if (static_cast<int>(certain_.size()) >= capacity_) return HeapState::kSolved;
  if (IsFull()) {
    return has_certain ? HeapState::kFullMixed : HeapState::kFullUncertainOnly;
  }
  if (has_certain && has_uncertain) return HeapState::kPartialMixed;
  if (has_certain) return HeapState::kPartialCertainOnly;
  if (has_uncertain) return HeapState::kPartialUncertainOnly;
  return HeapState::kEmpty;
}

rtree::PruneBounds CandidateHeap::ComputeBounds() const {
  rtree::PruneBounds bounds;
  switch (state()) {
    case HeapState::kSolved:
    case HeapState::kFullMixed: {
      bounds.lower = certain_.back().distance;
      bounds.lower_id_cut = certain_.back().id;
      double last = certain_.back().distance;
      if (!uncertain_.empty()) last = std::max(last, uncertain_.back().distance);
      bounds.upper = last;
      break;
    }
    case HeapState::kFullUncertainOnly:
      bounds.upper = uncertain_.back().distance;
      break;
    case HeapState::kPartialMixed:
    case HeapState::kPartialCertainOnly:
      bounds.lower = certain_.back().distance;
      bounds.lower_id_cut = certain_.back().id;
      break;
    case HeapState::kPartialUncertainOnly:
    case HeapState::kEmpty:
      break;
  }
  SENN_PARANOID_CHECK(
      !bounds.lower.has_value() || !bounds.upper.has_value() || *bounds.lower <= *bounds.upper,
      "ComputeBounds lower <= upper");
  return bounds;
}

void CandidateHeap::AssertInvariants() const {
#if SENN_PARANOID_ENABLED
  auto check_list = [this](const std::vector<RankedPoi>& v) {
    for (size_t i = 1; i < v.size(); ++i) {
      SENN_PARANOID_CHECK(RanksBefore(v[i - 1], v[i]), "list sorted by (distance, id)");
    }
    for (const RankedPoi& p : v) {
      SENN_PARANOID_CHECK(p.distance >= 0.0, "non-negative distance");
    }
  };
  check_list(certain_);
  check_list(uncertain_);
  for (const RankedPoi& p : certain_) {
    SENN_PARANOID_CHECK(!ContainsId(uncertain_, p.id), "certain/uncertain ids disjoint");
  }
  SENN_PARANOID_CHECK(static_cast<int>(certain_.size()) <= capacity_,
                      "certain list within capacity");
  SENN_PARANOID_CHECK(uncertain_.empty() || size() <= capacity_,
                      "uncertain entries only while heap within capacity");
#endif
}

}  // namespace senn::core
