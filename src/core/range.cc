#include "src/core/range.h"

#include <algorithm>
#include <unordered_set>

#include "src/geom/disk_cover.h"

namespace senn::core {

const char* RangeResolutionName(RangeResolution r) {
  switch (r) {
    case RangeResolution::kSinglePeer:
      return "single-peer";
    case RangeResolution::kMultiPeer:
      return "multi-peer";
    case RangeResolution::kServer:
      return "server";
  }
  return "unknown";
}

RangeProcessor::RangeProcessor(SpatialServer* server, RangeOptions options)
    : server_(server), options_(options) {}

std::vector<RankedPoi> PrunedCircleQuery(const rtree::RStarTree& tree, geom::Vec2 q,
                                         double radius, double inner,
                                         rtree::AccessCounter* counter,
                                         rtree::NodePageHook* hook) {
  std::vector<RankedPoi> out;
  std::vector<const rtree::RStarTree::Node*> stack{tree.root()};
  while (!stack.empty()) {
    const rtree::RStarTree::Node* node = stack.back();
    stack.pop_back();
    const bool pinned = rtree::ChargeNodeAccess(node, counter, hook);
    for (const rtree::RStarTree::Slot& s : node->slots) {
      if (node->IsLeaf()) {
        double d = geom::Dist(q, s.object.position);
        // The inner exclusion is strict (POIs exactly at the certain radius
        // are the client's own boundary neighbors), but an inner of 0 means
        // "nothing known" and must not drop a POI at the query point itself.
        if (d <= radius && (inner <= 0.0 || d > inner)) {
          out.push_back({s.object.id, s.object.position, d});
        }
      } else {
        if (s.mbr.MinDist(q) > radius) continue;        // fully outside
        if (s.mbr.MaxDist(q) < inner) continue;         // fully known already
        stack.push_back(s.child.get());
      }
    }
    if (pinned) hook->Unpin(node);
  }
  std::sort(out.begin(), out.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return RanksBefore(a, b); });
  return out;
}

RangeOutcome RangeProcessor::Execute(
    geom::Vec2 q, double radius,
    const std::vector<const CachedResult*>& peer_caches) const {
  RangeOutcome outcome;
  geom::Circle query_disk(q, radius);

  // Collect peer disks and the deduplicated known POIs within the radius.
  std::vector<geom::Circle> region;
  std::vector<RankedPoi> known_in_range;
  std::unordered_set<PoiId> seen;
  bool single_peer_covers = false;
  for (const CachedResult* peer : peer_caches) {
    if (peer == nullptr || peer->Empty()) continue;
    ++outcome.peers_consulted;
    geom::Circle disk(peer->query_location, peer->Radius());
    single_peer_covers |= disk.ContainsCircle(query_disk);
    region.push_back(disk);
    for (const RankedPoi& n : peer->neighbors) {
      if (!seen.insert(n.id).second) continue;
      double d = geom::Dist(q, n.position);
      if (d <= radius) known_in_range.push_back({n.id, n.position, d});
    }
  }
  std::sort(known_in_range.begin(), known_in_range.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return RanksBefore(a, b); });

  // Completeness check: is the query disk covered by the certain region?
  if (!region.empty() && geom::DiskCoveredByUnion(query_disk, region)) {
    outcome.resolution =
        single_peer_covers ? RangeResolution::kSinglePeer : RangeResolution::kMultiPeer;
    outcome.certain_radius = radius;
    outcome.pois = std::move(known_in_range);
    return outcome;
  }

  // Partial answer: the largest certain radius becomes the server's inner
  // pruning disk; everything within it is already known and complete.
  outcome.resolution = RangeResolution::kServer;
  double rho = region.empty()
                   ? 0.0
                   : geom::MaxCoveredRadius(q, region, radius, options_.radius_precision);
  outcome.certain_radius = rho;

  ServerReply reply = server_->QueryRange(q, radius, rho);
  std::vector<RankedPoi> fresh = std::move(reply.neighbors);
  outcome.pruned_accesses = reply.einn_accesses;
  outcome.plain_accesses = reply.inn_accesses;

  // Merge: known POIs within rho are complete; known POIs beyond rho may
  // duplicate fresh server results (dedup by id).
  std::vector<RankedPoi> merged;
  std::unordered_set<PoiId> in_answer;
  for (const RankedPoi& n : known_in_range) {
    if (n.distance <= rho && in_answer.insert(n.id).second) merged.push_back(n);
  }
  for (const RankedPoi& n : fresh) {
    if (in_answer.insert(n.id).second) merged.push_back(n);
  }
  std::sort(merged.begin(), merged.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return RanksBefore(a, b); });
  outcome.pois = std::move(merged);
  return outcome;
}

}  // namespace senn::core
