// The candidate heap H of Section 3.2.1 / 3.3.
//
// H has a fixed capacity (the number of queried interest objects) and holds
// two classes of candidates discovered during peer verification:
//   * certain objects  — verified members of the query host's kNN set, kept
//     in ascending distance order (their order IS their exact rank, see
//     Lemma 3.7 and the rank-prefix argument in DESIGN.md), and
//   * uncertain objects — real POIs reported by peers that could not be
//     verified (Lemma 3.1); they are candidates and upper-bound witnesses.
// Uncertain objects exist in H only while the certain count is below the
// capacity; a newly discovered certain object displaces the farthest
// uncertain one (Table 1 of the paper illustrates the layout).
//
// After verification the heap is in one of six states (Section 3.3) that
// determine which branch-expanding bounds can be shipped to the server.
#pragma once

#include <vector>

#include "src/core/types.h"
#include "src/rtree/knn.h"

namespace senn::core {

/// The six terminal heap states of Section 3.3, plus kSolved for the case
/// where the heap holds a full set of certain objects (the query never
/// reaches the server then).
enum class HeapState {
  kSolved = 0,                 // capacity certain objects: query answered
  kFullMixed = 1,              // State 1: full, certain + uncertain
  kFullUncertainOnly = 2,      // State 2: full, only uncertain
  kPartialMixed = 3,           // State 3: not full, certain + uncertain
  kPartialCertainOnly = 4,     // State 4: not full, only certain
  kPartialUncertainOnly = 5,   // State 5: not full, only uncertain
  kEmpty = 6,                  // State 6: no entry
};

const char* HeapStateName(HeapState state);

/// Candidate heap with certain/uncertain classification.
class CandidateHeap {
 public:
  /// `capacity` is the total number of queried interest objects (>= 1).
  explicit CandidateHeap(int capacity);

  /// Inserts a verified (certain) candidate. Duplicates (by POI id) are
  /// ignored; a certain insert removes any uncertain entry with the same id.
  void InsertCertain(const RankedPoi& poi);

  /// Inserts an unverified candidate. Ignored if the id is already present
  /// (certain or uncertain) or if the heap is full and the candidate is no
  /// closer than the farthest uncertain entry.
  void InsertUncertain(const RankedPoi& poi);

  int capacity() const { return capacity_; }
  /// Certain entries, ascending by distance; index i is exact rank i+1.
  const std::vector<RankedPoi>& certain() const { return certain_; }
  /// Uncertain entries, ascending by distance.
  const std::vector<RankedPoi>& uncertain() const { return uncertain_; }

  int size() const { return static_cast<int>(certain_.size() + uncertain_.size()); }
  bool IsFull() const { return size() >= capacity_; }
  /// True iff at least k certain objects are present.
  bool HasCertain(int k) const { return static_cast<int>(certain_.size()) >= k; }

  /// The current heap state (Section 3.3).
  HeapState state() const;

  /// The branch-expanding bounds implied by the state (Section 3.3):
  ///   lower = distance of the last certain entry   (states 1, 3, 4)
  ///   upper = distance of the last entry overall   (states 1, 2)
  rtree::PruneBounds ComputeBounds() const;

  /// True iff a POI with this id is present (certain or uncertain).
  bool Contains(PoiId id) const;

  /// Paranoid-mode structural checks (no-op unless built with
  /// SENN_PARANOID): both lists (distance, id)-sorted, ids disjoint, sizes
  /// within capacity.
  void AssertInvariants() const;

 private:
  int capacity_;
  std::vector<RankedPoi> certain_;
  std::vector<RankedPoi> uncertain_;
};

}  // namespace senn::core
