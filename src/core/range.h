// Sharing-based range queries (SRQ) — the paper's stated future work
// ("We plan to extend our work to investigate other types of spatial
// queries, such as range ... searches"), built from the same primitives.
//
// A range query asks for ALL POIs within radius r of the query host Q.
// Membership of a known POI is trivially certain (its position is cached);
// the hard part is COMPLETENESS: the answer may be returned locally iff the
// query disk C(Q, r) is fully covered by the certain region R_c — then
// every POI in C(Q, r) lies inside some peer's fully-known disk and is
// therefore already cached.
//
// When coverage fails, the query goes to the server carrying a *certain
// radius* rho = the largest radius around Q that R_c does cover: the server
// skips everything within rho (downward pruning, exactly like EINN's lower
// bound) and the client merges its locally-known prefix.
#pragma once

#include <vector>

#include "src/core/server.h"
#include "src/core/types.h"
#include "src/geom/circle.h"
#include "src/rtree/rstar_tree.h"

namespace senn::core {

/// How a range query was resolved.
enum class RangeResolution {
  kSinglePeer = 0,  // one peer disk covered the whole query disk
  kMultiPeer = 1,   // the merged region covered it
  kServer = 2,      // completeness required the server
};

const char* RangeResolutionName(RangeResolution r);

/// Outcome of one sharing-based range query.
struct RangeOutcome {
  RangeResolution resolution = RangeResolution::kServer;
  /// All POIs within the query radius, ascending by distance. Exact.
  std::vector<RankedPoi> pois;
  /// The locally-certain radius rho (meters) around Q; 0 when nothing was
  /// verifiable. pois within rho came from peers even on the server path.
  double certain_radius = 0.0;
  /// Pages the server touched (server path only), with and without the
  /// certain-radius pruning.
  rtree::AccessCounter pruned_accesses;
  rtree::AccessCounter plain_accesses;
  int peers_consulted = 0;
};

/// Options for the range processor.
struct RangeOptions {
  /// Precision (meters) of the certain-radius bisection.
  double radius_precision = 0.5;
};

/// Executes sharing-based range queries against a fixed server.
class RangeProcessor {
 public:
  RangeProcessor(SpatialServer* server, RangeOptions options = {});

  /// All POIs within `radius` of q, harvesting the given peer caches first.
  RangeOutcome Execute(geom::Vec2 q, double radius,
                       const std::vector<const CachedResult*>& peer_caches) const;

  const RangeOptions& options() const { return options_; }

 private:
  SpatialServer* server_;
  RangeOptions options_;
};

/// Server-side circle query with a "known inner disk" exclusion: returns all
/// POIs with inner < dist <= radius, pruning subtrees fully inside the inner
/// disk (MAXDIST < inner) or fully outside the query disk (MINDIST >
/// radius). Exposed for tests and the server facade. When `hook` is set the
/// scan fetches each visited node through the storage engine (pinning the
/// page for the duration of the slot scan), and the counter additionally
/// records physical misses.
std::vector<RankedPoi> PrunedCircleQuery(const rtree::RStarTree& tree, geom::Vec2 q,
                                         double radius, double inner,
                                         rtree::AccessCounter* counter = nullptr,
                                         rtree::NodePageHook* hook = nullptr);

}  // namespace senn::core
