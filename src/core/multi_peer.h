// Multi-peer nearest-neighbor verification (kNN_multiple, Section 3.2.2).
//
// When no single peer disk certifies enough objects, the certain region
// R_c = union of all peer disks is used (Lemma 3.8): a candidate POI n is a
// certain NN of Q iff the disk C(Q, Dist(Q, n)) is fully covered by R_c —
// every POI closer to Q then lies inside some peer disk and is therefore
// already known, which also yields exact ranks by counting.
//
// Two coverage backends are provided:
//   * kExactDisk   — the arc-coverage test of geom/disk_cover.h (exact);
//   * kPolygonized — the paper's approach: polygonize the circles and merge
//     them MapOverlay-style (geom/region.h). Conservative: it can only
//     under-certify.
#pragma once

#include <vector>

#include "src/core/candidate_heap.h"
#include "src/core/types.h"
#include "src/geom/region.h"

namespace senn::core {

/// Which geometric coverage test backs Lemma 3.8.
enum class CoverageBackend {
  kExactDisk = 0,
  kPolygonized = 1,
};

/// Options for multi-peer verification.
struct MultiPeerOptions {
  CoverageBackend backend = CoverageBackend::kExactDisk;
  /// Polygon resolution etc. for the kPolygonized backend.
  geom::PolygonizeOptions polygonize;
};

/// Runs kNN_multiple: deduplicates the candidate POIs of all peers, orders
/// them by distance to q, certifies the covered prefix against the union of
/// peer disks, and files everything into `heap` (certain prefix first, then
/// uncertain candidates). Returns per-pass statistics.
VerifyStats VerifyMultiPeer(geom::Vec2 q, const std::vector<const CachedResult*>& peers,
                            CandidateHeap* heap, const MultiPeerOptions& options = {});

}  // namespace senn::core
