// Continuous kNN for a moving query point (k-NNMP), built on the sharing
// machinery. The related-work section of the paper contrasts naive
// multi-step search (re-issuing a kNN query at every sampled position) with
// approaches that reuse prior results; this module packages the paper's own
// mechanism as a continuous-query API: as the host moves, its previous
// result acts as a "peer cache" with a growing delta, and Lemma 3.2 decides
// locally — with zero communication — whether the cached result still
// certifies the current top k. Only when certification fails does the host
// fall back to the full SENN pipeline (peers, then server) and refresh its
// cache.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/senn.h"
#include "src/core/types.h"

namespace senn::core {

/// Who answered one continuous-query step.
enum class StepSource {
  kOwnCache = 0,   // certified from the host's own previous result; no I/O
  kSinglePeer = 1, // SENN: a peer cache certified it
  kMultiPeer = 2,  // SENN: the merged peer region certified it
  kServer = 3,     // SENN fell through to the server
};

const char* StepSourceName(StepSource s);

/// Result of one step of the continuous query.
struct StepResult {
  StepSource source = StepSource::kServer;
  /// Exact top-k at the step's position, ascending.
  std::vector<RankedPoi> neighbors;
};

/// Lifetime counters for a continuous query.
struct ContinuousStats {
  uint64_t steps = 0;
  uint64_t own_cache_hits = 0;
  uint64_t peer_answers = 0;
  uint64_t server_answers = 0;
};

/// A continuous k-nearest-neighbor query attached to one moving host.
///
/// Call Step() at every sampled position (with whatever peer caches are in
/// radio range there); the returned neighbors are always the exact top-k.
class ContinuousKnn {
 public:
  /// `senn` must outlive this object. `k` is fixed for the query's lifetime.
  ContinuousKnn(const SennProcessor* senn, int k);

  /// Advances the query to `position`. `peer_caches` may be empty.
  StepResult Step(geom::Vec2 position,
                  const std::vector<const CachedResult*>& peer_caches = {});

  const ContinuousStats& stats() const { return stats_; }
  /// The internally cached result (what this host would share as a peer).
  const CachedResult& cache() const { return cache_; }

 private:
  const SennProcessor* senn_;
  int k_;
  CachedResult cache_;
  ContinuousStats stats_;
};

}  // namespace senn::core
