// Continuous kNN for a moving query point (k-NNMP), built on the sharing
// machinery. The related-work section of the paper contrasts naive
// multi-step search (re-issuing a kNN query at every sampled position) with
// approaches that reuse prior results; this module packages the paper's own
// mechanism as a continuous-query API with a safe-region fast path in the
// spirit of INSQ (PAPERS.md): as the host moves, each answered query also
// yields a validity region whose covered disk guarantees the top-k locally
// computable (and whose inner cell guarantees it unchanged), so a step
// inside the region costs pure arithmetic — no heap, no communication. When
// the region test fails, the previous result still acts
// as a "peer cache" with a growing delta and Lemma 3.2 decides locally
// whether it certifies the current top k; only then does the host fall back
// to the full SENN pipeline (peers, then server) and refresh both cache and
// region.
//
// Exactness contract: every StepResult except StepSource::kUncertain carries
// the exact top-k at the step position. kUncertain can only occur when the
// underlying SennProcessor was built with `accept_uncertain = true` — its
// neighbors are best-effort (senn.h), and exact continuous operation
// REQUIRES `accept_uncertain = false`. The stats count uncertain steps
// separately so an accept_uncertain run can report how many of its answers
// were unverified.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/core/safe_region.h"
#include "src/core/senn.h"
#include "src/core/types.h"

namespace senn::core {

/// Who answered one continuous-query step. Numeric values are wire/report
/// stable; new sources append.
enum class StepSource {
  kOwnCache = 0,    // certified from the host's own previous result; no I/O
  kSinglePeer = 1,  // SENN: a peer cache certified it
  kMultiPeer = 2,   // SENN: the merged peer region certified it
  kServer = 3,      // SENN fell through to the server
  kSafeRegion = 4,  // inside the host's own safe region; pure arithmetic
  kPeerRegion = 5,  // inside a safe region shared by a peer
  kUncertain = 6,   // SENN accepted an unverified answer (best-effort!)
  kStepSourceCount = 7,
};

const char* StepSourceName(StepSource s);

/// Continuous-query tuning.
struct ContinuousOptions {
  /// Which safe-region construction to maintain after each resolved step.
  /// kInsq additionally fetches the rival set from the server's POI table on
  /// server-answered steps (riding on the reply; counted as region_pages)
  /// and degrades to the client-only disk when no server contact happens.
  SafeRegionMode safe_region = SafeRegionMode::kOff;
};

/// Result of one step of the continuous query.
struct StepResult {
  StepSource source = StepSource::kServer;
  /// Top-k at the step's position, ascending. Exact unless source ==
  /// StepSource::kUncertain (see the header contract).
  std::vector<RankedPoi> neighbors;
  /// Server page accesses (kServer steps only).
  rtree::AccessCounter einn_accesses;
  rtree::AccessCounter inn_accesses;
  /// Logical R*-tree accesses of the INSQ rival fetch (server-answered
  /// steps in kInsq mode only).
  uint64_t region_pages = 0;
  /// Peers SENN consulted on this step (0 on local steps).
  int peers_consulted = 0;
};

/// Lifetime counters for a continuous query. Invariant:
/// steps == safe_region_hits + peer_region_hits + own_cache_hits
///        + peer_answers + uncertain_answers + server_answers.
struct ContinuousStats {
  uint64_t steps = 0;
  uint64_t safe_region_hits = 0;
  uint64_t peer_region_hits = 0;
  uint64_t own_cache_hits = 0;
  uint64_t peer_answers = 0;       // kSinglePeer + kMultiPeer
  uint64_t uncertain_answers = 0;  // best-effort steps (accept_uncertain)
  uint64_t server_answers = 0;
  /// Valid safe regions installed (== the steps whose Area() is worth
  /// sampling for a mean-region-area metric).
  uint64_t regions_built = 0;
};

/// A continuous k-nearest-neighbor query attached to one moving host.
///
/// Call Step() at every sampled position (with whatever peer caches and peer
/// safe regions are in radio range there). Step is TryLocal() then
/// ResolveWithPeers(); drivers that must know whether communication is
/// needed BEFORE harvesting peers (the simulator's exchange protocol) call
/// the two halves directly.
class ContinuousKnn {
 public:
  /// Rejects degenerate result sizes, matching rpc::ValidateKnnRequest's
  /// convention. Callers constructing from untrusted input validate first;
  /// the constructor asserts the same precondition.
  static Status ValidateK(int k);

  /// `senn` must outlive this object. `k` is fixed for the query's lifetime
  /// and must be >= 1 (see ValidateK) — invalid k is a programming error
  /// here, not silently clamped.
  ContinuousKnn(const SennProcessor* senn, int k, ContinuousOptions options = {});

  /// The zero-communication half of a step: the safe region first (one
  /// arithmetic test), then the Lemma 3.2 recheck of the own cache. Returns
  /// nullopt when neither certifies — the caller then harvests peers and
  /// calls ResolveWithPeers with the SAME position.
  std::optional<StepResult> TryLocal(geom::Vec2 position);

  /// The communicating half: adoptable peer safe regions first (a region
  /// with k() >= our k containing `position` answers exactly, chosen
  /// deterministically independent of list order), then full SENN over the
  /// peer caches (the own cache joins the peer list). Refreshes the cache
  /// and rebuilds the safe region.
  StepResult ResolveWithPeers(
      geom::Vec2 position, const std::vector<const CachedResult*>& peer_caches = {},
      const std::vector<const SafeRegion*>& peer_regions = {});

  /// Advances the query to `position`: TryLocal, else ResolveWithPeers.
  StepResult Step(geom::Vec2 position,
                  const std::vector<const CachedResult*>& peer_caches = {},
                  const std::vector<const SafeRegion*>& peer_regions = {});

  /// Seeds the rolling cache from an externally-answered result (e.g. the
  /// simulator's warm start). `cache.neighbors` must be an exact rank prefix
  /// at `cache.query_location`; the safe region is rebuilt as if a server
  /// answer had just landed there.
  void Prime(const CachedResult& cache);

  const ContinuousStats& stats() const { return stats_; }
  /// What this host shares with peers: the rolling certified result. Its
  /// `query_location` is the position of the last RESOLVING step (the anchor
  /// of the prefix) — deliberately NOT advanced by local fast-path steps,
  /// which add no information; the anchor plus Radius() still bounds exactly
  /// the fully-known disk (the CachedResult invariant peers rely on).
  const CachedResult& shared_cache() const { return cache_; }
  /// The current safe region (possibly invalid), also shareable with peers.
  const SafeRegion& safe_region() const { return region_; }
  int k() const { return k_; }
  const ContinuousOptions& options() const { return options_; }

 private:
  /// Rebuilds region_ from the freshly-refreshed cache_ anchored at
  /// `position`. `server_grade` marks answers whose prefix came from the
  /// server (rival fetches are only sound there — the answering contact
  /// ships them); sets last_region_pages_.
  void RebuildRegion(geom::Vec2 position, bool server_grade);

  /// Deterministic choice among adoptable peer regions (Valid, k() >= k_,
  /// CoversExact(position)): prefer larger k(), then smaller center distance,
  /// then smaller center coordinates — invariant under list permutation.
  const SafeRegion* ChoosePeerRegion(
      geom::Vec2 position, const std::vector<const SafeRegion*>& peer_regions) const;

  const SennProcessor* senn_;
  int k_;
  ContinuousOptions options_;
  CachedResult cache_;
  SafeRegion region_;
  uint64_t last_region_pages_ = 0;
  ContinuousStats stats_;
};

}  // namespace senn::core
