// Server-side batch answering: one shared EINN traversal per cluster of
// co-located queries.
//
// Under heavy traffic many concurrent mobile hosts issue kNN queries whose
// search regions overlap the same R*-tree pages, yet SpatialServer::QueryKnn
// answers each with an independent traversal over the buffer pool (ROADMAP
// item 4; the paper's Figs. 13-16 are exactly this regime). BRkNN-light's
// trick applies: group queries by query-point proximity and answer a whole
// group with ONE best-first traversal that keeps per-query bounds, so a page
// wanted by several queries is fetched (and charged) once.
//
// Algorithm (per cluster of m >= 2 queries):
//  * a single priority queue of index nodes ordered by the MINIMUM MINDIST
//    over the queries that still want the node, equal keys popping in push
//    order (deterministic FIFO — node identity never enters the order);
//  * per query: the EINN prune state of the sequential iterator (static
//    lower/upper bounds with the lower-bound id cut, the dynamic top-k bag)
//    plus a bounded candidate max-heap under the system
//    core::RanksBefore (distance, id) rank;
//  * a node is skipped only when EVERY live query prunes it — by the upper
//    bound, by downward (MAXDIST < lower) pruning, or because the query's
//    candidate heap is full and MINDIST exceeds its worst candidate (a node
//    that cannot improve any query's answer is dead weight);
//  * each visited node is fetched ONCE through the storage engine and
//    charged once (rtree::ChargeBatchNodeAccess), attributed to the first
//    wanting query in cluster order and classified shared/private in the
//    cluster counter, so per-query miss counts sum exactly to the shared
//    traversal's unique-page count.
//
// Equivalence contract (enforced by tests/core/batch_diff_test.cpp, not by
// inspection): for system-consistent inputs — bounds computed by
// CandidateHeap::ComputeBounds from a certified rank prefix of
// `already_certified` POIs, as every SennProcessor server contact ships —
// the per-query replies are BITWISE identical to sequential
// SpatialServer::QueryKnn answers: the k - already_certified best POIs
// outside the client's certain set, ascending by (distance, id), with
// distances from the same geom::Dist evaluations. Singleton clusters (and
// max_group == 1) delegate to SpatialServer::QueryKnn verbatim, so a batch
// size of 1 is byte-identical to today's sequential path, accounting
// included.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/server.h"
#include "src/core/types.h"
#include "src/geom/vec2.h"
#include "src/rtree/knn.h"
#include "src/rtree/rstar_tree.h"

namespace senn::obs {
class MetricsRegistry;
class QueryTracer;
}  // namespace senn::obs

namespace senn::core {

/// One request of a batch: exactly the arguments of SpatialServer::QueryKnn.
struct BatchQuery {
  geom::Vec2 q;
  /// Total result size including the client's certified POIs (k <= 0 is a
  /// degenerate request answered with an empty reply).
  int k = 1;
  /// EINN prune bounds shipped by the client (Section 3.3).
  rtree::PruneBounds bounds;
  /// Client-certified POIs inside bounds.lower; the reply returns only
  /// k - already_certified new neighbors.
  int already_certified = 0;
};

/// Batch-answering knobs.
struct BatchOptions {
  /// Side of the square clustering tiles (the neighbor_grid idiom: queries
  /// whose points fall in the same tile share one traversal). Values <= 0
  /// clamp to 1 m.
  double cluster_cell_m = 500.0;
  /// Maximum queries per shared traversal; a tile with more splits into
  /// chunks of this size. 1 disables sharing (every query delegates to the
  /// sequential path).
  int max_group = 8;
};

/// Cumulative batch-path counters.
struct BatchStats {
  /// Queries answered through AnswerBatch (batched + singleton).
  uint64_t queries = 0;
  /// Shared traversals run (clusters of size >= 2).
  uint64_t clusters = 0;
  /// Queries answered by a shared traversal.
  uint64_t batched_queries = 0;
  /// Queries delegated to SpatialServer::QueryKnn (singleton clusters).
  uint64_t singleton_queries = 0;
  /// Cluster-level accesses of the shared traversals: each visited node
  /// counts once per cluster, misses split shared/private by how many
  /// queries wanted the page.
  rtree::AccessCounter shared_traversal;
};

/// Answers groups of kNN requests with shared traversals over a
/// SpatialServer's tree and storage engine. The server must outlive the
/// BatchServer. Not thread-safe (one batch at a time, like the server).
class BatchServer {
 public:
  explicit BatchServer(SpatialServer* server, BatchOptions options = {});

  /// Clusters `queries` (FormClusters) and answers every cluster with one
  /// shared traversal; `replies[i]` answers `queries[i]`. Singleton clusters
  /// delegate to SpatialServer::QueryKnn. Every answered query is folded
  /// into the server's ServerStats; shared traversals also run the per-query
  /// comparison INN pass (never through the buffer pool), exactly like the
  /// sequential server. `tracer`, when given, receives one server_batch_einn
  /// span per shared traversal (pages, misses, shared split); `metrics`
  /// collects per-cluster counters/histograms under "batch/". Pass
  /// `cluster_sizes` to observe the formed cluster sizes (appended in
  /// cluster order).
  std::vector<ServerReply> AnswerBatch(const std::vector<BatchQuery>& queries,
                                       obs::QueryTracer* tracer = nullptr,
                                       obs::MetricsRegistry* metrics = nullptr,
                                       std::vector<size_t>* cluster_sizes = nullptr);

  /// Deterministic cluster formation (exposed for the formation tests):
  /// queries map to square tiles of cluster_cell_m (floor division, so a
  /// point exactly on a tile boundary belongs to the higher tile), tiles are
  /// processed in (x-tile, y-tile) order, members within a tile are put in
  /// canonical content order (query point, k, bounds, certified count; ties
  /// by input index), and tiles larger than max_group split into chunks in
  /// that order. The assignment is a pure function of the query MULTISET:
  /// shuffling the input permutes only content-identical queries, which are
  /// interchangeable by construction.
  std::vector<std::vector<size_t>> FormClusters(
      const std::vector<BatchQuery>& queries) const;

  const BatchStats& stats() const { return stats_; }
  const BatchOptions& options() const { return options_; }
  void ResetStats() { stats_ = BatchStats{}; }

 private:
  void AnswerCluster(const std::vector<BatchQuery>& queries,
                     const std::vector<size_t>& members,
                     std::vector<ServerReply>* replies, obs::QueryTracer* tracer,
                     obs::MetricsRegistry* metrics);

  SpatialServer* server_;
  BatchOptions options_;
  BatchStats stats_;
};

}  // namespace senn::core
