// SNNN — Sharing-based Network distance Nearest Neighbor query
// (Algorithm 2 of the paper): the Incremental Euclidean Restriction (IER)
// pattern on top of SENN.
//
// The host retrieves k certain Euclidean NNs (via SENN), computes their
// network distances on its local road modeling graph, and then keeps pulling
// the next Euclidean NN — from peers or the server — refining the candidate
// set until the next Euclidean distance exceeds the current k-th network
// distance (the Euclidean lower bound property: ED(a,b) <= ND(a,b)).
#pragma once

#include <memory>
#include <vector>

#include "src/core/senn.h"
#include "src/core/types.h"
#include "src/roadnet/distance_oracle.h"
#include "src/roadnet/graph.h"
#include "src/roadnet/locate.h"
#include "src/roadnet/shortest_path.h"

namespace senn::core {

/// A POI with both distance metrics.
struct NetworkRankedPoi {
  PoiId id = kInvalidPoi;
  geom::Vec2 position;
  double euclidean = 0.0;
  double network = 0.0;
};

/// Incremental provider of *exact* Euclidean nearest neighbors, in the role
/// the paper assigns to "SENN(Q, k+i)": TopK(m) must return the true top-m
/// Euclidean NNs in ascending order (fewer if the data set is smaller).
class EuclideanNnSource {
 public:
  virtual ~EuclideanNnSource() = default;
  virtual std::vector<RankedPoi> TopK(int m) = 0;
};

/// Source backed by repeated SENN executions over a fixed peer snapshot.
/// The SennProcessor must not be configured with accept_uncertain (an
/// uncertain answer would violate the exactness contract).
class SennNnSource final : public EuclideanNnSource {
 public:
  SennNnSource(const SennProcessor* senn, geom::Vec2 q,
               std::vector<const CachedResult*> peers);
  std::vector<RankedPoi> TopK(int m) override;

  /// Resolution of the last SENN call (how the data was obtained).
  Resolution last_resolution() const { return last_resolution_; }

 private:
  const SennProcessor* senn_;
  geom::Vec2 q_;
  std::vector<const CachedResult*> peers_;
  Resolution last_resolution_ = Resolution::kServer;
};

/// Source that always asks the server directly (baseline / tests).
class ServerNnSource final : public EuclideanNnSource {
 public:
  ServerNnSource(SpatialServer* server, geom::Vec2 q);
  std::vector<RankedPoi> TopK(int m) override;

 private:
  SpatialServer* server_;
  geom::Vec2 q_;
};

/// SNNN tuning parameters.
struct SnnnOptions {
  /// Safety valve on the number of IER expansions (i in Algorithm 2).
  int max_expansions = 256;
};

/// Executes network-distance kNN queries over a road modeling graph. Each
/// mobile host retains the graph locally (Section 3.4), so the processor
/// borrows the graph and a prebuilt edge locator.
///
/// The network-distance backend is pluggable: pass a `roadnet::DistanceOracle`
/// (e.g. ch::BucketOracle over a prebuilt hierarchy) to replace the default
/// per-query Dijkstra. A null oracle means a fresh DijkstraOracle per
/// Execute — byte-identical to the historical behavior, so golden outputs
/// are unchanged. A non-null oracle is borrowed (not owned) and retargeted
/// via SetSource on every Execute; tests/core/snnn_oracle_test.cpp proves
/// the dijkstra and ch backends return identical result sets.
class SnnnProcessor {
 public:
  SnnnProcessor(const roadnet::Graph* graph, const roadnet::EdgeLocator* locator,
                SnnnOptions options = {},
                roadnet::DistanceOracle* oracle = nullptr);

  /// Runs Algorithm 2 for query point q: the k POIs nearest to q by network
  /// distance, ascending. POIs unreachable on the network sort last (their
  /// network distance is +infinity).
  std::vector<NetworkRankedPoi> Execute(geom::Vec2 q, int k,
                                        EuclideanNnSource* source) const;

 private:
  const roadnet::Graph* graph_;
  const roadnet::EdgeLocator* locator_;
  SnnnOptions options_;
  roadnet::DistanceOracle* oracle_;
};

}  // namespace senn::core
