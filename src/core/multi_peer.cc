#include "src/core/multi_peer.h"

#include <algorithm>
#include <unordered_set>

#include "src/geom/circle.h"
#include "src/geom/disk_cover.h"

namespace senn::core {

VerifyStats VerifyMultiPeer(geom::Vec2 q, const std::vector<const CachedResult*>& peers,
                            CandidateHeap* heap, const MultiPeerOptions& options) {
  VerifyStats stats;
  // The certain region R_c is the union of the peers' fully-known disks.
  std::vector<geom::Circle> region;
  region.reserve(peers.size());
  std::vector<RankedPoi> candidates;
  std::unordered_set<PoiId> seen;
  for (const CachedResult* peer : peers) {
    if (peer == nullptr || peer->Empty()) continue;
    region.emplace_back(peer->query_location, peer->Radius());
    for (const RankedPoi& n : peer->neighbors) {
      if (!seen.insert(n.id).second) continue;
      candidates.push_back({n.id, n.position, geom::Dist(q, n.position)});
    }
  }
  if (region.empty()) return stats;
  std::sort(candidates.begin(), candidates.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return RanksBefore(a, b); });

  auto covered = [&](double radius) {
    geom::Circle subject(q, radius);
    if (options.backend == CoverageBackend::kPolygonized) {
      return geom::PolygonizedDiskCoveredByUnion(subject, region, options.polygonize);
    }
    return geom::DiskCoveredByUnion(subject, region);
  };

  // Coverage is monotone in the radius, so the certified candidates form a
  // prefix of the distance-sorted list; stop at the first failure.
  stats.candidates = static_cast<int>(candidates.size());
  size_t i = 0;
  for (; i < candidates.size(); ++i) {
    if (!covered(candidates[i].distance)) break;
    heap->InsertCertain(candidates[i]);
    ++stats.certified;
  }
  for (; i < candidates.size(); ++i) {
    heap->InsertUncertain(candidates[i]);
    ++stats.uncertain;
  }
  return stats;
}

}  // namespace senn::core
