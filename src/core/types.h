// Core domain types shared by the verification algorithms, the server
// facade, and the simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rank.h"
#include "src/geom/vec2.h"

namespace senn::core {

/// Identifier of a point of interest (gas station, restaurant, ...).
using PoiId = int64_t;
inline constexpr PoiId kInvalidPoi = -1;

/// A stationary point of interest.
struct Poi {
  PoiId id = kInvalidPoi;
  geom::Vec2 position;
};

/// A POI together with its Euclidean distance to some reference point (a
/// query location). Results are kept in ascending distance order.
struct RankedPoi {
  PoiId id = kInvalidPoi;
  geom::Vec2 position;
  double distance = 0.0;

  /// Memberwise (bitwise for the doubles) equality — the rpc wire tests
  /// assert that a decoded reply is EXACTLY the encoded one; this is not a
  /// ranking comparison (see RanksBefore below for that).
  bool operator==(const RankedPoi&) const = default;
};

/// THE ranking order of the system: ascending distance, ties broken by
/// ascending POI id. The scalar form lives in src/common/rank.h (the bottom
/// of the layer DAG, so sub-core layers like rtree/ can rank without
/// including core); it is re-exported here so core callers keep spelling it
/// core::RanksBefore.
using ::senn::RanksBefore;
inline bool RanksBefore(const RankedPoi& a, const RankedPoi& b) {
  return RanksBefore(a.distance, a.id, b.distance, b.id);
}

/// A cached kNN result: the location the query was issued from plus the
/// certain nearest neighbors obtained, in ascending distance order.
///
/// Invariant (maintained by both the server and the verification paths, and
/// relied upon by Lemmas 3.1-3.8): `neighbors` is an exact rank prefix of
/// the true kNN at `query_location`, so the disk centered at
/// `query_location` with radius `Radius()` contains exactly these POIs.
struct CachedResult {
  geom::Vec2 query_location;
  std::vector<RankedPoi> neighbors;
  /// Simulation time the query was answered (bookkeeping only).
  double timestamp = 0.0;

  bool Empty() const { return neighbors.empty(); }
  /// Radius of the fully-known ("certain area") disk: the distance to the
  /// farthest cached neighbor.
  double Radius() const { return neighbors.empty() ? 0.0 : neighbors.back().distance; }
};

/// Statistics of one verification pass (diagnostics / ablation benches).
struct VerifyStats {
  int candidates = 0;
  int certified = 0;
  int uncertain = 0;
};

}  // namespace senn::core
