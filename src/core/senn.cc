#include "src/core/senn.h"

#include <algorithm>
#include <unordered_set>

#include "src/obs/trace.h"

namespace senn::core {

const char* ResolutionName(Resolution r) {
  switch (r) {
    case Resolution::kSinglePeer:
      return "single-peer";
    case Resolution::kMultiPeer:
      return "multi-peer";
    case Resolution::kUncertain:
      return "uncertain";
    case Resolution::kServer:
      return "server";
  }
  return "unknown";
}

SennProcessor::SennProcessor(SpatialServer* server, SennOptions options)
    : server_(server), options_(options) {}

std::vector<const CachedResult*> SennProcessor::UsablePeers(
    geom::Vec2 q, const std::vector<const CachedResult*>& peer_caches) const {
  // Heuristic 3.3: consult peers whose cached query locations are closest
  // to Q first.
  std::vector<const CachedResult*> peers;
  peers.reserve(peer_caches.size());
  for (const CachedResult* p : peer_caches) {
    if (p != nullptr && !p->Empty()) peers.push_back(p);
  }
  if (options_.sort_peers) {
    // Consult-order heuristic, not a result order: peers carry no POI id to
    // tie-break on, so a stable sort pins co-distant peers to their
    // deterministic harvest order. The answer itself stays peer-permutation
    // invariant through the RanksBefore heap (tie_break_test).
    // senn-lint: allow(L1-raw-order): consult-order heuristic over peers
    // (no ids exist); stable_sort keeps equal-distance peers in harvest
    // order and results are permutation-invariant regardless.
    std::stable_sort(peers.begin(), peers.end(),
                     [&](const CachedResult* a, const CachedResult* b) {
                       return geom::Dist2(q, a->query_location) <
                              geom::Dist2(q, b->query_location);
                     });
  }
  return peers;
}

bool SennProcessor::ResolvesLocally(
    geom::Vec2 q, int k, const std::vector<const CachedResult*>& peer_caches) const {
  const int heap_capacity = std::max(k, options_.server_request_k);
  CandidateHeap heap(heap_capacity);
  std::vector<const CachedResult*> peers = UsablePeers(q, peer_caches);
  for (const CachedResult* peer : peers) {
    if (options_.early_exit && heap.HasCertain(k)) break;
    VerifySinglePeer(q, *peer, &heap);
  }
  if (heap.HasCertain(k)) return true;
  if (options_.enable_multi_peer && peers.size() > 1) {
    VerifyMultiPeer(q, peers, &heap, options_.multi_peer);
    if (heap.HasCertain(k)) return true;
  }
  return options_.accept_uncertain && heap.IsFull();
}

SennOutcome SennProcessor::Execute(geom::Vec2 q, int k,
                                   const std::vector<const CachedResult*>& peer_caches,
                                   obs::QueryTracer* tracer) const {
  PendingSenn pending = Prepare(q, k, peer_caches, tracer);
  if (!pending.needs_server) return std::move(pending.outcome);
  // The span brackets the server contact and outlives the merge, exactly as
  // the monolithic Execute did (the merge emits no ticks, so span lifetime
  // beyond the reply is tick-invisible).
  obs::ScopedSpan server_span(tracer, obs::Phase::kServerEinn);
  const ServerReply reply =
      server_->QueryKnn(pending.q, pending.heap_capacity, pending.outcome.bounds,
                        static_cast<int>(pending.certain.size()), tracer);
  Finish(&pending, reply, &server_span);
  return std::move(pending.outcome);
}

PendingSenn SennProcessor::Prepare(geom::Vec2 q, int k,
                                   const std::vector<const CachedResult*>& peer_caches,
                                   obs::QueryTracer* tracer) const {
  PendingSenn pending;
  SennOutcome& outcome = pending.outcome;
  const int heap_capacity = std::max(k, options_.server_request_k);
  CandidateHeap heap(heap_capacity);

  std::vector<const CachedResult*> peers = UsablePeers(q, peer_caches);

  // Stage 1: kNN_single over each peer.
  {
    obs::ScopedSpan span(tracer, obs::Phase::kVerifySingle);
    for (const CachedResult* peer : peers) {
      if (options_.early_exit && heap.HasCertain(k)) break;
      VerifyStats s = VerifySinglePeer(q, *peer, &heap);
      outcome.single_peer_stats.candidates += s.candidates;
      outcome.single_peer_stats.certified += s.certified;
      outcome.single_peer_stats.uncertain += s.uncertain;
      ++outcome.peers_consulted;
    }
    heap.AssertInvariants();
    span.AddArg("peers", static_cast<uint64_t>(outcome.peers_consulted));
    span.AddArg("candidates", static_cast<uint64_t>(outcome.single_peer_stats.candidates));
    span.AddArg("certified", static_cast<uint64_t>(outcome.single_peer_stats.certified));
  }
  if (heap.HasCertain(k)) {
    outcome.resolution = Resolution::kSinglePeer;
    outcome.heap_state = heap.state();
    outcome.certain_prefix = heap.certain();
    outcome.neighbors.assign(heap.certain().begin(), heap.certain().begin() + k);
    return pending;
  }

  // Stage 2: kNN_multiple over the merged certain region.
  if (options_.enable_multi_peer && peers.size() > 1) {
    obs::ScopedSpan span(tracer, obs::Phase::kVerifyMulti);
    outcome.multi_peer_stats = VerifyMultiPeer(q, peers, &heap, options_.multi_peer);
    heap.AssertInvariants();
    span.AddArg("candidates", static_cast<uint64_t>(outcome.multi_peer_stats.candidates));
    span.AddArg("certified", static_cast<uint64_t>(outcome.multi_peer_stats.certified));
    span.AddArg("uncertain", static_cast<uint64_t>(outcome.multi_peer_stats.uncertain));
    if (heap.HasCertain(k)) {
      outcome.resolution = Resolution::kMultiPeer;
      outcome.heap_state = heap.state();
      outcome.certain_prefix = heap.certain();
      outcome.neighbors.assign(heap.certain().begin(), heap.certain().begin() + k);
      return pending;
    }
  }

  // The heap could not be solved locally: classify its terminal state
  // (Section 3.3). The solved early-return branches above never get here.
  {
    obs::ScopedSpan span(tracer, obs::Phase::kHeapClassify);
    outcome.heap_state = heap.state();
    span.AddArg("state", static_cast<uint64_t>(outcome.heap_state));
    span.AddArg("certain", static_cast<uint64_t>(heap.certain().size()));
    span.AddArg("uncertain", static_cast<uint64_t>(heap.uncertain().size()));
  }

  // Stage 3: optionally accept an uncertain answer (Algorithm 1, line 15).
  if (options_.accept_uncertain && heap.IsFull()) {
    outcome.resolution = Resolution::kUncertain;
    outcome.certain_prefix = heap.certain();
    std::vector<RankedPoi> merged = heap.certain();
    merged.insert(merged.end(), heap.uncertain().begin(), heap.uncertain().end());
    std::sort(merged.begin(), merged.end(),
              [](const RankedPoi& a, const RankedPoi& b) { return RanksBefore(a, b); });
    if (static_cast<int>(merged.size()) > k) merged.resize(static_cast<size_t>(k));
    outcome.neighbors = std::move(merged);
    return pending;
  }

  // Stage 4: forward to the server with the heap's pruning bounds and merge
  // its reply with the locally certified rank prefix.
  outcome.resolution = Resolution::kServer;
  outcome.bounds = heap.ComputeBounds();
  pending.q = q;
  pending.k = k;
  pending.heap_capacity = heap_capacity;
  pending.certain = heap.certain();

  if (options_.ship_region && outcome.bounds.upper.has_value()) {
    // Region protocol (extension): the server returns every POI within the
    // upper-bound horizon that lies outside R_c; the client merges with ALL
    // the POIs it knows (everything inside R_c is cached at some peer).
    // There is no batched region path, so the contact happens here and the
    // query comes back complete.
    obs::ScopedSpan server_span(tracer, obs::Phase::kServerEinn);
    std::vector<geom::Circle> region;
    region.reserve(peers.size());
    for (const CachedResult* peer : peers) {
      region.emplace_back(peer->query_location, peer->Radius());
    }
    const ServerReply reply = server_->QueryKnnWithRegion(
        q, heap_capacity, *outcome.bounds.upper, region, tracer);
    std::vector<RankedPoi> merged;
    std::unordered_set<PoiId> seen;
    for (const CachedResult* peer : peers) {
      for (const RankedPoi& n : peer->neighbors) {
        if (!seen.insert(n.id).second) continue;
        merged.push_back({n.id, n.position, geom::Dist(q, n.position)});
      }
    }
    for (const RankedPoi& n : reply.neighbors) {
      if (seen.insert(n.id).second) merged.push_back(n);
    }
    pending.certain = std::move(merged);  // Finish sorts/truncates/publishes
    Finish(&pending, reply, &server_span);
    return pending;
  }

  pending.needs_server = true;
  return pending;
}

void SennProcessor::Finish(PendingSenn* pending, const ServerReply& reply,
                           obs::ScopedSpan* span) const {
  SennOutcome& outcome = pending->outcome;
  std::vector<RankedPoi> merged = std::move(pending->certain);
  if (pending->needs_server) {
    // Scalar protocol: the reply holds only neighbors outside the certified
    // prefix, but replayed replies (a batched drain) may overlap — dedup by
    // id like the sequential merge always has.
    for (const RankedPoi& n : reply.neighbors) {
      bool duplicate = std::any_of(merged.begin(), merged.end(),
                                   [&](const RankedPoi& m) { return m.id == n.id; });
      if (!duplicate) merged.push_back(n);
    }
    pending->needs_server = false;
  }
  outcome.einn_accesses = reply.einn_accesses;
  outcome.inn_accesses = reply.inn_accesses;
  if (span != nullptr) {
    span->AddArg("einn_pages", reply.einn_accesses.total());
    span->AddArg("inn_pages", reply.inn_accesses.total());
    span->AddArg("returned", static_cast<uint64_t>(reply.neighbors.size()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return RanksBefore(a, b); });
  if (static_cast<int>(merged.size()) > pending->heap_capacity) {
    merged.resize(static_cast<size_t>(pending->heap_capacity));
  }
  outcome.certain_prefix = merged;  // server-backed: the whole set is exact
  outcome.neighbors = merged;
  if (static_cast<int>(outcome.neighbors.size()) > pending->k) {
    outcome.neighbors.resize(static_cast<size_t>(pending->k));
  }
}

}  // namespace senn::core
