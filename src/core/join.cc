#include "src/core/join.h"

#include <algorithm>

namespace senn::core {

SharingJoinProcessor::SharingJoinProcessor(SpatialServer* layer_a, SpatialServer* layer_b)
    : range_a_(layer_a), range_b_(layer_b) {}

JoinOutcome SharingJoinProcessor::Execute(
    geom::Vec2 q, double radius, double pair_distance,
    const std::vector<const CachedResult*>& peers_a,
    const std::vector<const CachedResult*>& peers_b) const {
  JoinOutcome outcome;
  // Side A: complete set within `radius`; side B: within radius + d (every
  // possible partner of an A-object lies there).
  RangeOutcome side_a = range_a_.Execute(q, radius, peers_a);
  RangeOutcome side_b = range_b_.Execute(q, radius + pair_distance, peers_b);
  outcome.a_resolution = side_a.resolution;
  outcome.b_resolution = side_b.resolution;
  outcome.fully_local = side_a.resolution != RangeResolution::kServer &&
                        side_b.resolution != RangeResolution::kServer;

  // Local nested-loop join; both sides are small (bounded by the radii).
  for (const RankedPoi& a : side_a.pois) {
    for (const RankedPoi& b : side_b.pois) {
      double d = geom::Dist(a.position, b.position);
      if (d <= pair_distance) outcome.pairs.push_back({a, b, d});
    }
  }
  std::sort(outcome.pairs.begin(), outcome.pairs.end(),
            [](const PoiPair& x, const PoiPair& y) {
              if (x.a.id != y.a.id) return x.a.id < y.a.id;
              return x.b.id < y.b.id;
            });
  return outcome;
}

}  // namespace senn::core
