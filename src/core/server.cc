#include "src/core/server.h"

#include <algorithm>
#include <queue>

#include "src/core/range.h"
#include "src/geom/region.h"
#include "src/obs/trace.h"
#include "src/rtree/bulk_load.h"

namespace senn::core {

SpatialServer::SpatialServer(std::vector<Poi> pois, rtree::RStarTree::Options tree_options,
                             rtree::AccessCountMode count_mode,
                             std::optional<storage::BufferPoolOptions> storage)
    : pois_(std::move(pois)), tree_(tree_options), count_mode_(count_mode) {
  // Static POI sets are packed with STR: tighter leaves and much faster
  // construction than one-at-a-time insertion for county-scale data.
  std::vector<rtree::ObjectEntry> entries;
  entries.reserve(pois_.size());
  for (const Poi& poi : pois_) entries.push_back({poi.position, poi.id});
  tree_ = rtree::BulkLoad(std::move(entries), tree_options);
  if (storage.has_value()) {
    pager_ = std::make_unique<storage::NodePager>(&tree_, *storage);
  }
}

ServerReply SpatialServer::QueryKnn(geom::Vec2 q, int k, rtree::PruneBounds bounds,
                                    int already_certified, obs::QueryTracer* tracer) {
  ServerReply reply;
  int needed = k - already_certified;
  if (needed < 0) needed = 0;

  {
    // Answering run: EINN with the client's bounds, through the storage
    // engine when one is configured. buffer_fetch brackets only this run's
    // pool activity — the comparison INN below never touches the pool.
    obs::ScopedSpan fetch(pager_ != nullptr ? tracer : nullptr, obs::Phase::kBufferFetch);
    const storage::BufferPoolStats before =
        fetch.active() ? pager_->pool().stats() : storage::BufferPoolStats{};
    rtree::BestFirstNnIterator einn(tree_, q, bounds, count_mode_, k, pager_.get());
    while (static_cast<int>(reply.neighbors.size()) < needed) {
      auto n = einn.Next();
      if (!n.has_value()) break;
      reply.neighbors.push_back({n->object.id, n->object.position, n->distance});
    }
    reply.einn_accesses = einn.accesses();
    if (fetch.active()) {
      const storage::BufferPoolStats& after = pager_->pool().stats();
      fetch.AddArg("hits", after.hits - before.hits);
      fetch.AddArg("misses", after.misses - before.misses);
      fetch.AddArg("evictions", after.evictions - before.evictions);
    }
  }

  // Comparison run: plain INN answering the full k-NN query without help.
  rtree::BestFirstNnIterator inn(tree_, q, rtree::PruneBounds{}, count_mode_, k);
  for (int i = 0; i < k; ++i) {
    if (!inn.Next().has_value()) break;
  }
  reply.inn_accesses = inn.accesses();

  ++stats_.queries;
  stats_.einn += reply.einn_accesses;
  stats_.inn += reply.inn_accesses;
  return reply;
}

ServerReply SpatialServer::QueryKnnWithRegion(geom::Vec2 q, int k, double horizon,
                                              const std::vector<geom::Circle>& region,
                                              obs::QueryTracer* tracer) {
  ServerReply reply;
  // Best-first search with three pruning sources: the client's horizon (its
  // k-th candidate distance), the running k-th-best distance over ALL seen
  // objects (region-known ones included — they occupy result ranks on the
  // client side), and region coverage of whole subtrees.
  struct Item {
    double key;
    const rtree::RStarTree::Node* node;  // null for objects
    RankedPoi poi;
  };
  // Same tie rule as BestFirstNnIterator: at equal key nodes pop before
  // objects (a node with MINDIST == d may hide a co-distant smaller-id
  // object), and co-distant objects pop in ascending id.
  auto greater = [](const Item& a, const Item& b) {
    // senn-lint: allow(L5-float-eq): strict-weak-order tie detection. Both
    // keys come from the same MinDist/Dist code path, so "equal" means
    // bit-identical, and exact ties must fall through to the id rules.
    if (a.key != b.key) return a.key > b.key;
    const bool a_object = a.node == nullptr;
    const bool b_object = b.node == nullptr;
    if (a_object != b_object) return a_object;
    if (a_object) return a.poi.id > b.poi.id;
    return false;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(greater)> queue(greater);
  std::priority_queue<double> best;  // max-heap of the k best seen distances
  auto effective_bound = [&]() {
    double bound = horizon;
    if (static_cast<int>(best.size()) >= k) bound = std::min(bound, best.top());
    return bound;
  };
  auto feed = [&](double d) {
    if (static_cast<int>(best.size()) < k) {
      best.push(d);
    } else if (d < best.top()) {
      best.pop();
      best.push(d);
    }
  };
  auto in_region = [&](geom::Vec2 p) {
    for (const geom::Circle& c : region) {
      if (c.Contains(p)) return true;
    }
    return false;
  };
  auto expand = [&](const rtree::RStarTree::Node* node) {
    const bool pinned = rtree::ChargeNodeAccess(node, &reply.einn_accesses, pager_.get());
    for (const rtree::RStarTree::Slot& s : node->slots) {
      if (node->IsLeaf()) {
        double d = geom::Dist(q, s.object.position);
        if (d > effective_bound()) continue;
        feed(d);
        if (!in_region(s.object.position)) {
          queue.push({d, nullptr, {s.object.id, s.object.position, d}});
        }
      } else {
        if (s.mbr.MinDist(q) > effective_bound()) continue;
        // Region-covered subtrees contain only client-known POIs. Skip them
        // only once the dynamic bound is saturated: before that, reading
        // them feeds the bound with true nearby distances (skipping early
        // would widen the search and cost more than it saves).
        if (static_cast<int>(best.size()) >= k &&
            geom::MbrCoveredByDiskUnion(s.mbr, region)) {
          continue;
        }
        queue.push({s.mbr.MinDist(q), s.child.get(), {}});
      }
    }
    if (pinned) pager_->Unpin(node);
  };
  {
    obs::ScopedSpan fetch(pager_ != nullptr ? tracer : nullptr, obs::Phase::kBufferFetch);
    const storage::BufferPoolStats before =
        fetch.active() ? pager_->pool().stats() : storage::BufferPoolStats{};
    expand(tree_.root());
    while (!queue.empty()) {
      Item item = queue.top();
      if (item.key > effective_bound() && item.node != nullptr) break;
      queue.pop();
      if (item.node != nullptr) {
        expand(item.node);
      } else {
        reply.neighbors.push_back(item.poi);
        if (static_cast<int>(reply.neighbors.size()) >= k) break;  // plenty for the merge
      }
    }
    if (fetch.active()) {
      const storage::BufferPoolStats& after = pager_->pool().stats();
      fetch.AddArg("hits", after.hits - before.hits);
      fetch.AddArg("misses", after.misses - before.misses);
      fetch.AddArg("evictions", after.evictions - before.evictions);
    }
  }

  // Baseline: plain best-first kNN for the same k.
  rtree::BestFirstNnIterator inn(tree_, q, rtree::PruneBounds{}, count_mode_, k);
  for (int i = 0; i < k; ++i) {
    if (!inn.Next().has_value()) break;
  }
  reply.inn_accesses = inn.accesses();

  ++stats_.queries;
  stats_.einn += reply.einn_accesses;
  stats_.inn += reply.inn_accesses;
  return reply;
}

ServerReply SpatialServer::QueryRange(geom::Vec2 q, double radius, double inner) {
  ServerReply reply;
  reply.neighbors =
      PrunedCircleQuery(tree_, q, radius, inner, &reply.einn_accesses, pager_.get());
  // Comparison run: the same range scan without the client's certain disk.
  PrunedCircleQuery(tree_, q, radius, 0.0, &reply.inn_accesses);
  ++stats_.queries;
  stats_.einn += reply.einn_accesses;
  stats_.inn += reply.inn_accesses;
  return reply;
}

}  // namespace senn::core
